// Congestion: reproduce the paper's Section IV-B scenario in miniature. A
// 4:1 hotspot aggressor switches on mid-run; ECN eventually throttles it,
// but in the baseline the victim's latency spikes during the transient.
// With congestion stashing the blocked packets are absorbed into idle
// stash buffers and the victim barely notices.
//
//	go run ./examples/congestion
package main

import (
	"fmt"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

const (
	aggressorStart = 6000 // cycles
	runCycles      = 50000
	binWidth       = 2600 // 2 us
)

func build(mode core.StashMode) *network.Network {
	cfg := core.TinyConfig()
	cfg.Mode = mode
	cfg.ECN = core.DefaultECN()
	n, err := network.New(cfg)
	if err != nil {
		panic(err)
	}
	n.Collectors.WithHist(proto.ClassVictim)
	n.Collectors.WithSeries(proto.ClassVictim, binWidth)
	rng := sim.NewRNG(3)
	hot := int32(7)
	srcs := map[int32]bool{20: true, 30: true, 40: true, 50: true}
	for _, ep := range n.Endpoints {
		switch {
		case srcs[ep.ID]:
			ep.Gen = traffic.Hotspot(hot, proto.MaxPacketFlits, proto.ClassAggressor, aggressorStart)
		case ep.ID == hot:
			// receiver only
		default:
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassVictim, 0)
		}
	}
	n.Run(runCycles)
	return n
}

func main() {
	base := build(core.StashOff)
	stash := build(core.StashCongestion)

	fmt.Println("victim mean latency per 2us bin (ns); aggressor starts at ~4.6us")
	fmt.Printf("%8s %14s %18s\n", "time_us", "baseline_ECN", "stash_congestion")
	bb, sb := base.Collector().Series[proto.ClassVictim].Bins(), stash.Collector().Series[proto.ClassVictim].Bins()
	for i := 0; i < len(bb) && i < len(sb); i++ {
		fmt.Printf("%8.1f %14.0f %18.0f\n", float64(i)*2, bb[i].Mean()/1.3, sb[i].Mean()/1.3)
	}

	report := func(name string, h *stats.Hist) {
		fmt.Printf("%-18s p50=%5.0fns  p90=%5.0fns  p99=%6.0fns  p99.9=%6.0fns\n",
			name,
			float64(h.Percentile(50))/1.3, float64(h.Percentile(90))/1.3,
			float64(h.Percentile(99))/1.3, float64(h.Percentile(99.9))/1.3)
	}
	fmt.Println("\nvictim latency distribution:")
	report("baseline ECN", base.Collector().LatHist[proto.ClassVictim])
	report("with stashing", stash.Collector().LatHist[proto.ClassVictim])

	c := stash.Counters()
	fmt.Printf("\nstash activity: %d packets absorbed, %d flits stored, %d retrieved, ECN marks %d\n",
		c.CongStashed, c.StashStores, c.StashRetrieves, c.ECNMarks)
}
