// Quickstart: build a small dragonfly of stashing switches, offer uniform
// random traffic, and print latency and throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

func main() {
	// A 72-endpoint canonical dragonfly (p=2, a=4, h=2) of tiled
	// switches with end-to-end reliability stashing enabled.
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := network.New(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(n.Describe())

	// Attach a Bernoulli uniform-random generator to every endpoint:
	// 40% of channel capacity, single-packet (24-flit) messages.
	rng := sim.NewRNG(7)
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.4, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
	}

	// Warm the network up, then measure for 20k cycles (~15 us).
	n.Warmup(5000)
	const measure = 20000
	n.Run(measure)

	lat := n.Collector().LatAcc[proto.ClassDefault]
	fmt.Printf("packets delivered:   %d\n", n.Collector().DeliveredPkts[proto.ClassDefault])
	fmt.Printf("mean packet latency: %.0f ns\n", lat.Mean()/1.3)
	fmt.Printf("offered load:        %.3f of capacity\n", n.NormalizedOffered(measure))
	fmt.Printf("accepted throughput: %.3f of capacity\n", n.NormalizedAccepted(measure))

	c := n.Counters()
	fmt.Printf("stash copies tracked: %d, freed by ACKs: %d, resident flits: %d\n",
		c.E2ETracked, c.E2EDeletes, n.TotalStashUsed())
}
