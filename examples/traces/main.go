// Traces: synthesize a DesignForward-like MPI trace (MiniFE, scaled to
// the network), replay it with the dependency-driven engine, and compare
// the runtime on the baseline and stashing networks — a single cell of
// the paper's Figure 6.
//
//	go run ./examples/traces
package main

import (
	"fmt"
	"os"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/trace"
	"stashsim/internal/tracegen"
)

func main() {
	scale := tracegen.DefaultScale()
	scale.Ranks = 72 // fit the tiny demo network
	app, err := tracegen.AppByName("MiniFE")
	if err != nil {
		panic(err)
	}
	tr := app.Generate(scale)
	fmt.Printf("trace %s: %d ranks, %d messages, %.2f MB\n",
		tr.Name, tr.Ranks, tr.TotalMessages(), float64(tr.TotalBytes())/(1<<20))

	// Persist the trace to show the on-disk format, then reload it.
	f, err := os.CreateTemp("", "minife-*.trace")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	if err := tr.Write(f); err != nil {
		panic(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		panic(err)
	}
	tr, err = trace.Read(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round-tripped through %s\n\n", f.Name())

	run := func(mode core.StashMode, capFrac float64, label string) int64 {
		cfg := core.TinyConfig()
		cfg.Mode = mode
		cfg.StashCapFrac = capFrac
		n, err := network.New(cfg)
		if err != nil {
			panic(err)
		}
		rp, err := trace.NewReplay(tr, n, 0)
		if err != nil {
			panic(err)
		}
		cycles, err := rp.Run(50_000_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %8d cycles  (%.1f us)\n", label, cycles, float64(cycles)/1300)
		return cycles
	}

	base := run(core.StashOff, 1, "baseline")
	full := run(core.StashE2E, 1, "stash 100% capacity")
	quarter := run(core.StashE2E, 0.25, "stash 25% capacity")
	fmt.Printf("\nnormalized runtime: stash100=%.3f stash25=%.3f (Figure 6 shape: ~1.0, then growing as capacity shrinks)\n",
		float64(full)/float64(base), float64(quarter)/float64(base))
}
