// Reliability: demonstrate end-to-end retransmission from stash buffers
// (the paper's Section IV-A, plus the retransmission path it describes but
// does not simulate). Destinations randomly corrupt 2% of packets and
// NACK them; the first-hop switch re-injects the stashed copy until the
// packet gets through. The run ends with every copy deleted — no storage
// leaks — and prints how stash occupancy tracks Little's law.
//
//	go run ./examples/reliability
package main

import (
	"fmt"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

func main() {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true // keep payloads so copies can be retransmitted
	cfg.ErrorRate = 0.02     // 2% of packets arrive corrupted and are NACKed
	n, err := network.New(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(n.Describe())

	rng := sim.NewRNG(11)
	load := 0.3
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			load, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
	}

	for phase := 0; phase < 5; phase++ {
		n.Run(8000)
		c := n.Counters()
		lat := n.Collector().LatAcc[proto.ClassDefault]
		fmt.Printf("t=%5.1fus stash=%6d flits  tracked=%5d  errors=%4d  retransmits=%4d  mean lat=%4.0fns\n",
			float64(n.Now)/1300, n.TotalStashUsed(), c.E2ETracked-c.E2EDeletes,
			n.Collector().Errors, c.E2ERetransmits, lat.Mean()/1.3)
	}

	// Little's law check: resident stash flits ~= injection rate x RTT.
	lat := n.Collector().LatAcc[proto.ClassDefault].Mean()
	rate := load * n.ChannelRate() * float64(len(n.Endpoints))
	rtt := lat * 2 // data latency out, ACK latency back (roughly symmetric)
	fmt.Printf("\nLittle's law: rate (%.1f flits/cyc) x RTT (%.0f cyc) = %.0f flits expected in stash\n",
		rate, rtt, rate*rtt)
	fmt.Printf("measured resident stash occupancy: %d flits\n", n.TotalStashUsed())

	// Stop traffic; every outstanding copy must drain.
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	n.RunUntil(500000, 2000, func() bool { return n.TotalStashUsed() == 0 })
	c := n.Counters()
	fmt.Printf("\nafter drain: stash=%d flits, tracked entries=%d, deletes=%d (== tracked: %v)\n",
		n.TotalStashUsed(), c.E2ETracked-c.E2EDeletes, c.E2EDeletes, c.E2EDeletes == c.E2ETracked)
}
