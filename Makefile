# Convenience targets for the stashsim reproduction.

GO ?= go

.PHONY: all build test vet lint race fault-smoke ec-smoke par-smoke obs-smoke pdes-smoke ckpt-smoke bench bench-all bench-diff figures figures-paper examples clean

all: build vet lint test race fault-smoke ec-smoke par-smoke obs-smoke pdes-smoke ckpt-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: one stashlint process runs all six
# analyzers (determinism, nilsafe, panicstyle, phasecheck, atomiccheck,
# allocfree) over the whole module, cmd/ included. The last three
# machine-check the executor's concurrency & zero-alloc contract (see
# DESIGN.md, "Concurrency contract"); the scopes live next to each
# analyzer. Suppress a finding with `//lint:allow <analyzer> -- reason`;
# `-json` emits findings as JSON for tooling.
lint:
	$(GO) run ./cmd/stashlint ./...

test:
	$(GO) test ./...

# Race-detector pass (tier-1 alongside vet); the parallel executor and the
# shared observability sinks (tracer) are the paths it guards. -short skips
# the multi-minute simulation sweeps (they run unshortened in `make test`
# and add no concurrency coverage), but internal/network's accumulated
# scenario tests (now including the checkpoint resume-equality grid) run
# ~15m under the ~10x race slowdown, so the per-package timeout is
# raised well past the 10m default to keep headroom on loaded machines.
race:
	$(GO) test -race -short -timeout 30m ./...

# Fault-injection smoke: a short e2e run with per-link packet drops, the
# invariant checker on, and a post-run drain that must end with every
# injected packet delivered exactly once (nonzero exit otherwise). Guards
# the recovery ladder (stash resend -> endpoint resend -> dedup) end to
# end through the real CLI.
fault-smoke:
	$(GO) run ./cmd/stashsim -preset tiny -mode e2e -load 0.2 -warmup 0 \
		-cycles 25000 -link-drop-rate 1e-3 -invariants \
		-drain 150000 -assert-delivery -json > /dev/null

# Erasure-coding smoke: the paper-scale switch geometry (small preset keeps
# it under a minute) with XOR parity groups over the stash banks, per-link
# drops keeping retained copies alive, and staggered bank failures striking
# mid-run. Exercises the reconstruction tier of the recovery ladder (retry
# -> reconstruct -> retransmit) under the invariant checker's parity law,
# and must still drain to exactly-once delivery.
ec-smoke:
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 5e-3 -stash-parity 4 \
		-stash-fail "0.0@4000,0.1@4500,1.0@5000,1.1@5500,2.0@6000,2.1@6500" \
		-invariants -drain 400000 -assert-delivery -json > /dev/null

# Parallel-executor smoke: the race-enabled tests that step a fully
# instrumented network with four workers and prove the serial/parallel
# bit-identity, plus the CLI-level workers=1 vs workers=4 -json comparison.
# Guards the executor's barrier protocol and the link inbox/shard design.
par-smoke:
	$(GO) test -race -count=1 -run 'TestParallelStepRace|TestParallelMatchesSerial' ./internal/network
	$(GO) test -count=1 -run 'TestWorkersDeterminism' ./cmd/stashsim

# Conservative-PDES smoke: the small preset (19 groups, 650-cycle global
# lookahead) under drops + bank failures with four epoch-synchronized
# group partitions, invariants auditing, and a drain that must end in
# exactly-once delivery — then the identical run serially, with the two
# -json summaries diffed byte-for-byte. Guards the epoch scheduler's
# lookahead clamping and SPSC link handoff at a scale where epochs
# actually free-run (tiny's 65-cycle lookahead is covered by par-smoke).
pdes-smoke:
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 1e-3 \
		-stash-fail "0.0@4000,1.1@5500,2.0@6001" \
		-epoch auto -workers 4 -invariants \
		-drain 400000 -assert-delivery -json > /tmp/pdes_epoch.json
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 1e-3 \
		-stash-fail "0.0@4000,1.1@5500,2.0@6001" \
		-epoch off -workers 1 -invariants \
		-drain 400000 -assert-delivery -json > /tmp/pdes_serial.json
	diff /tmp/pdes_epoch.json /tmp/pdes_serial.json

# Checkpoint/restore smoke: the pdes-smoke scenario with a checkpoint
# taken mid-run by the 4-worker epoch executor — between the first and
# second scheduled bank failures, with drop recovery in flight — then
# restored into a *serial* run. Both the checkpointing run and the
# restored run must produce -json summaries byte-identical to a serial
# straight-through run: one diff proves the snapshot is complete (every
# RNG stream, timer and queue captured) and mode-canonical (epoch-built
# bytes restore into the serial loop).
ckpt-smoke:
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 1e-3 \
		-stash-fail "0.0@4000,1.1@5500,2.0@6001" \
		-epoch auto -workers 4 -invariants \
		-checkpoint /tmp/ckpt_smoke.snap@4700 \
		-drain 400000 -assert-delivery -json > /tmp/ckpt_writer.json
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 1e-3 \
		-stash-fail "0.0@4000,1.1@5500,2.0@6001" \
		-epoch off -workers 1 -invariants \
		-restore /tmp/ckpt_smoke.snap \
		-drain 400000 -assert-delivery -json > /tmp/ckpt_resumed.json
	$(GO) run ./cmd/stashsim -preset small -mode e2e -load 0.2 -warmup 0 \
		-cycles 8000 -seed 13 -link-drop-rate 1e-3 \
		-stash-fail "0.0@4000,1.1@5500,2.0@6001" \
		-epoch off -workers 1 -invariants \
		-drain 400000 -assert-delivery -json > /tmp/ckpt_straight.json
	diff /tmp/ckpt_writer.json /tmp/ckpt_straight.json
	diff /tmp/ckpt_resumed.json /tmp/ckpt_straight.json

# Observability smoke: the live telemetry server scraped from concurrent
# goroutines while a two-worker profiled simulation runs, under the race
# detector. Guards the lock-light snapshot path, the profiler's atomic
# recording, and the watchdog/flight wiring end to end.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke|TestServeDoesNotPerturbDeterminism' ./internal/telemetry

# Hot-path benchmark grid: the parallel-executor scaling matrix and the
# per-cycle steady-state cost, converted to BENCH_hotpath.json (the
# committed perf-trajectory snapshot; regenerate and commit after any
# intentional hot-path change). Raw text goes to stderr for benchstat use.
# This host's clock is noisy (+/-30%); for before/after comparisons build
# both binaries and interleave runs rather than trusting two single shots.
bench:
	$(GO) test -bench 'BenchmarkParallelExecutor|BenchmarkHotPathSteadyState' \
		-benchmem -count=1 . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_hotpath.json

# Full reduced-scale benchmark harness: one benchmark per table/figure plus
# the ablations. Full datasets come from `make figures`.
bench-all:
	$(GO) test -bench=. -benchmem .

# Compare a fresh hot-path bench run against the committed snapshot without
# overwriting it: the table flags any allocs/op drift (real regressions) and
# shows ns/op deltas (noisy on this host — see the `bench` comment).
bench-diff:
	$(GO) test -bench 'BenchmarkParallelExecutor|BenchmarkHotPathSteadyState' \
		-benchmem -count=1 . | $(GO) run ./cmd/benchjson > /tmp/bench_new.json
	$(GO) run ./cmd/benchjson -diff BENCH_hotpath.json /tmp/bench_new.json

# Regenerate every table and figure on the scaled (342-endpoint) network.
figures:
	$(GO) run ./cmd/figures -exp all -preset small -out results/small

# The paper's full 3080-endpoint configuration (slow: hours on one core).
figures-paper:
	$(GO) run ./cmd/figures -exp all -preset paper -out results/paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reliability
	$(GO) run ./examples/congestion
	$(GO) run ./examples/traces

clean:
	rm -rf results
