# Convenience targets for the stashsim reproduction.

GO ?= go

.PHONY: all build test vet lint race bench figures figures-paper examples clean

all: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the stashlint analyzers machine-check
# the determinism, nil-safety and panic-style contracts (see DESIGN.md,
# "Correctness tooling"). Suppress a finding with
# `//lint:allow <analyzer> -- reason`.
lint:
	$(GO) run ./cmd/stashlint ./...

test:
	$(GO) test ./...

# Race-detector pass (tier-1 alongside vet); the parallel executor and the
# shared observability sinks (tracer) are the paths it guards. -short skips
# the multi-minute simulation sweeps (they run unshortened in `make test`
# and add no concurrency coverage) so the ~10x race slowdown stays within
# the default per-package test timeout.
race:
	$(GO) test -race -short ./...

# Reduced-scale benchmark harness: one benchmark per table/figure plus the
# ablations. Full datasets come from `make figures`.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure on the scaled (342-endpoint) network.
figures:
	$(GO) run ./cmd/figures -exp all -preset small -out results/small

# The paper's full 3080-endpoint configuration (slow: hours on one core).
figures-paper:
	$(GO) run ./cmd/figures -exp all -preset paper -out results/paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reliability
	$(GO) run ./examples/congestion
	$(GO) run ./examples/traces

clean:
	rm -rf results
