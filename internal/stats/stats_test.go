package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.N != 3 || a.Min != 1 || a.Max != 3 || a.Mean() != 2 {
		t.Fatalf("acc %+v mean %v", a, a.Mean())
	}
}

func TestAccMerge(t *testing.T) {
	var a, b Acc
	a.Add(1)
	a.Add(5)
	b.Add(3)
	b.Add(7)
	a.Merge(b)
	if a.N != 4 || a.Min != 1 || a.Max != 7 || a.Mean() != 4 {
		t.Fatalf("merged %+v", a)
	}
	var empty Acc
	empty.Merge(a)
	if empty != a {
		t.Fatal("merge into empty lost data")
	}
}

func TestAccEmptyMean(t *testing.T) {
	var a Acc
	if a.Mean() != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket decreased at %d", v)
		}
		prev = b
	}
}

func TestBucketLowInverts(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		v := int64(raw)
		b := bucketOf(v)
		lo := bucketLow(b)
		// The bucket's low bound maps back to the same bucket and does
		// not exceed the value.
		return bucketOf(lo) == b && lo <= v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistExactForSmallValues(t *testing.T) {
	var h Hist
	for v := int64(0); v < 32; v++ {
		h.Add(v)
	}
	for p := 1; p <= 100; p++ {
		got := h.Percentile(float64(p))
		want := int64(math.Ceil(float64(p)/100*32)) - 1
		if got != want {
			t.Fatalf("p%d = %d, want %d", p, got, want)
		}
	}
}

func TestHistPercentileAccuracy(t *testing.T) {
	var h Hist
	var sample []float64
	rng := uint64(99)
	for i := 0; i < 50000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int64(rng >> 44) // up to ~1M
		h.Add(v)
		sample = append(sample, float64(v))
	}
	exact := Quantiles(sample, 0.5, 0.9, 0.99)
	for i, p := range []float64{50, 90, 99} {
		got := float64(h.Percentile(p))
		if math.Abs(got-exact[i]) > 0.05*exact[i]+1 {
			t.Fatalf("p%.0f = %.0f, exact %.0f (err > 5%%)", p, got, exact[i])
		}
	}
}

func TestHistMeanExact(t *testing.T) {
	var h Hist
	sum := 0.0
	for i := int64(1); i <= 1000; i++ {
		h.Add(i * 7)
		sum += float64(i * 7)
	}
	if got := h.Mean(); math.Abs(got-sum/1000) > 1e-9 {
		t.Fatalf("mean %v want %v", got, sum/1000)
	}
	if h.Min() != 7 || h.Max() != 7000 {
		t.Fatal("min/max wrong")
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Percentile(100) != 0 {
		t.Fatal("negative not clamped to zero")
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := int64(0); i < 1000; i++ {
		a.Add(i)
		b.Add(i + 1000)
	}
	a.Merge(&b)
	if a.N() != 2000 {
		t.Fatal("merge lost counts")
	}
	if p := a.Percentile(50); p < 900 || p > 1100 {
		t.Fatalf("merged median %d", p)
	}
}

func TestInverseCDF(t *testing.T) {
	var h Hist
	for i := 0; i < 90; i++ {
		h.Add(10)
	}
	for i := 0; i < 10; i++ {
		h.Add(1000)
	}
	pts := h.InverseCDF()
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if math.Abs(pts[0].Fraction-0.10) > 1e-9 {
		t.Fatalf("fraction above first bucket %v, want 0.10", pts[0].Fraction)
	}
	if pts[1].Fraction != 0 {
		t.Fatalf("fraction above last bucket %v, want 0", pts[1].Fraction)
	}
	if h.InverseCDF()[0].Value > h.InverseCDF()[1].Value {
		t.Fatal("inverse CDF not sorted by value")
	}
}

func TestInverseCDFEmpty(t *testing.T) {
	var h Hist
	if h.InverseCDF() != nil {
		t.Fatal("empty histogram returned points")
	}
}

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(0, 1)
	ts.Add(99, 3)
	ts.Add(100, 10)
	ts.Add(350, 7)
	bins := ts.Bins()
	if len(bins) != 4 {
		t.Fatalf("%d bins", len(bins))
	}
	if bins[0].Mean() != 2 || bins[1].Mean() != 10 || bins[2].N != 0 || bins[3].Mean() != 7 {
		t.Fatalf("bins %+v", bins)
	}
	times, means := ts.Means()
	if len(times) != 3 || times[2] != 300 || means[0] != 2 {
		t.Fatalf("means %v %v", times, means)
	}
}

func TestTimeSeriesNegativeIgnored(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(-5, 1)
	if len(ts.Bins()) != 0 {
		t.Fatal("negative time created a bin")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"A", "LongHeader"}}
	tab.AddRow("x", "1")
	tab.AddRow("yyyy", "2")
	s := tab.String()
	if !strings.Contains(s, "LongHeader") || !strings.Contains(s, "yyyy") {
		t.Fatalf("render: %q", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "A,LongHeader\n") || !strings.Contains(csv, "yyyy,2\n") {
		t.Fatalf("csv: %q", csv)
	}
}

func TestHistPercentileSingleObservation(t *testing.T) {
	h := &Hist{}
	h.Add(42)
	for _, p := range []float64{0.001, 0.5, 1, 50, 99, 99.999, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("Percentile(%v) of single observation = %d, want 42", p, got)
		}
	}
}

func TestHistPercentileExtremes(t *testing.T) {
	h := &Hist{}
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	// p near 0 must land on the minimum: any positive p needs at least one
	// observation (target is clamped to 1).
	if got := h.Percentile(0.0001); got != 1 {
		t.Fatalf("Percentile(0.0001) = %d, want 1", got)
	}
	// p = 100 must cover the maximum (within bucket resolution, exact for
	// values below 2^subBucketBits... 100 > 32, allow bucket low bound).
	got := h.Percentile(100)
	if got < 96 || got > 100 {
		t.Fatalf("Percentile(100) = %d, want the top bucket (96..100)", got)
	}
	// p just under 100 must not exceed p = 100.
	if a, b := h.Percentile(99.999), h.Percentile(100); a > b {
		t.Fatalf("Percentile(99.999)=%d > Percentile(100)=%d", a, b)
	}
	if h.Percentile(50) > h.Percentile(90) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistPercentileEmpty(t *testing.T) {
	h := &Hist{}
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("Percentile on empty hist = %d, want 0", got)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := &Table{Header: []string{"label", "note"}}
	tab.AddRow("Stash 100% Cap., e2e", `say "hi"`)
	tab.AddRow("plain", "line\nbreak")
	csv := tab.CSV()
	want := "label,note\n" +
		"\"Stash 100% Cap., e2e\",\"say \"\"hi\"\"\"\n" +
		"plain,\"line\nbreak\"\n"
	if csv != want {
		t.Fatalf("CSV quoting:\n got %q\nwant %q", csv, want)
	}
}

func TestQuantilesExact(t *testing.T) {
	q := Quantiles([]float64{5, 1, 3, 2, 4}, 0.2, 0.5, 1.0)
	if q[0] != 1 || q[1] != 3 || q[2] != 5 {
		t.Fatalf("quantiles %v", q)
	}
}
