package stats

import "stashsim/internal/snapshot"

// Checkpoint hooks. Accumulators and histograms are captured exactly
// (histograms as sparse non-zero buckets over the fixed bucket array),
// so restored statistics continue bit-identically.

// EncodeState appends the accumulator's state.
func (a *Acc) EncodeState(w *snapshot.Writer) {
	w.I64(a.N)
	w.F64(a.Sum)
	w.F64(a.Min)
	w.F64(a.Max)
}

// DecodeState restores the accumulator's state.
func (a *Acc) DecodeState(r *snapshot.Reader) {
	a.N = r.I64()
	a.Sum = r.F64()
	a.Min = r.F64()
	a.Max = r.F64()
}

// EncodeState appends the histogram's state: the accumulator plus every
// non-zero bucket as (index, count) pairs in index order.
func (h *Hist) EncodeState(w *snapshot.Writer) {
	h.acc.EncodeState(w)
	n := 0
	for _, c := range h.buckets {
		if c != 0 {
			n++
		}
	}
	w.Count(n)
	for i := 0; i < numBuckets; i++ {
		if h.buckets[i] != 0 {
			w.U32(uint32(i))
			w.I64(h.buckets[i])
		}
	}
}

// DecodeState restores the histogram's state, zeroing buckets the
// snapshot does not mention.
func (h *Hist) DecodeState(r *snapshot.Reader) {
	h.acc.DecodeState(r)
	h.buckets = [numBuckets]int64{}
	n := r.Count(12)
	for k := 0; k < n; k++ {
		i := r.U32()
		if i >= numBuckets {
			r.Failf("stats: histogram bucket index %d out of range [0,%d)", i, numBuckets)
			return
		}
		h.buckets[i] = r.I64()
	}
}

// EncodeState appends the time series' state.
func (t *TimeSeries) EncodeState(w *snapshot.Writer) {
	w.I64(t.BinWidth)
	w.Count(len(t.bins))
	for i := range t.bins {
		t.bins[i].EncodeState(w)
	}
}

// DecodeState restores the time series' state, replacing the bins.
func (t *TimeSeries) DecodeState(r *snapshot.Reader) {
	bw := r.I64()
	if r.Err() != nil {
		return
	}
	if bw <= 0 {
		r.Failf("stats: non-positive time-series bin width %d", bw)
		return
	}
	n := r.Count(32)
	if r.Err() != nil {
		return
	}
	t.BinWidth = bw
	t.bins = make([]Acc, n)
	for i := range t.bins {
		t.bins[i].DecodeState(r)
	}
}
