// Package stats provides the measurement machinery used by the experiment
// harness: streaming accumulators, HDR-style log-bucketed latency
// histograms with percentile and inverse-CDF queries, fixed-bin time
// series, and gauge samplers for buffer-occupancy probes.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Acc is a streaming accumulator of a scalar quantity.
type Acc struct {
	N        int64
	Sum      float64
	Min, Max float64
}

// Add records one observation.
func (a *Acc) Add(x float64) {
	if a.N == 0 || x < a.Min {
		a.Min = x
	}
	if a.N == 0 || x > a.Max {
		a.Max = x
	}
	a.N++
	a.Sum += x
}

// Mean returns the running mean, or 0 when empty.
func (a *Acc) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Merge folds another accumulator into a.
func (a *Acc) Merge(b Acc) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.N += b.N
	a.Sum += b.Sum
}

// subBucketBits controls histogram resolution: each power-of-two range is
// split into 2^subBucketBits linear sub-buckets, bounding relative
// quantization error to ~1/2^subBucketBits.
const subBucketBits = 5

const numBuckets = 64 * (1 << subBucketBits)

// Hist is an HDR-style histogram of non-negative integer observations
// (latencies in cycles). Memory is fixed; relative error is ~3%.
type Hist struct {
	buckets [numBuckets]int64
	acc     Acc
}

func bucketOf(v int64) int {
	if v < 1<<subBucketBits {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int(v>>(uint(exp)-subBucketBits)) & (1<<subBucketBits - 1)
	return (exp-subBucketBits+1)<<subBucketBits + sub
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < 1<<subBucketBits {
		return int64(i)
	}
	exp := i>>subBucketBits + subBucketBits - 1
	sub := int64(i & (1<<subBucketBits - 1))
	return 1<<uint(exp) + sub<<(uint(exp)-subBucketBits)
}

// Add records one observation; negative values are clamped to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.acc.Add(float64(v))
}

// N returns the number of observations.
func (h *Hist) N() int64 { return h.acc.N }

// Mean returns the exact mean of all observations.
func (h *Hist) Mean() float64 { return h.acc.Mean() }

// Min returns the smallest observation, or 0 when empty.
func (h *Hist) Min() float64 { return h.acc.Min }

// Max returns the largest observation, or 0 when empty.
func (h *Hist) Max() float64 { return h.acc.Max }

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100),
// accurate to the bucket resolution.
func (h *Hist) Percentile(p float64) int64 {
	if h.acc.N == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(h.acc.N)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i]
		if seen >= target {
			return bucketLow(i)
		}
	}
	return int64(h.acc.Max)
}

// Merge folds another histogram into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.acc.Merge(o.acc)
}

// InverseCDFPoint is one point of an inverse cumulative distribution: the
// fraction of observations strictly greater than Value.
type InverseCDFPoint struct {
	Value    int64
	Fraction float64
}

// InverseCDF returns the inverse cumulative distribution (fraction of
// observations exceeding each occupied bucket boundary), the presentation
// used by the paper's Figure 7b.
func (h *Hist) InverseCDF() []InverseCDFPoint {
	if h.acc.N == 0 {
		return nil
	}
	var out []InverseCDFPoint
	remaining := h.acc.N
	for i := 0; i < numBuckets; i++ {
		if h.buckets[i] == 0 {
			continue
		}
		remaining -= h.buckets[i]
		out = append(out, InverseCDFPoint{
			Value:    bucketLow(i),
			Fraction: float64(remaining) / float64(h.acc.N),
		})
	}
	return out
}

// TimeSeries accumulates observations into fixed-width time bins,
// producing the latency-over-time curves of Figures 7a and 8.
type TimeSeries struct {
	BinWidth int64
	bins     []Acc
}

// NewTimeSeries returns a time series with the given bin width in cycles.
func NewTimeSeries(binWidth int64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: non-positive time-series bin width")
	}
	return &TimeSeries{BinWidth: binWidth}
}

// Add records an observation at the given time. Negative times (before
// the measurement origin) are ignored.
func (t *TimeSeries) Add(now int64, v float64) {
	if now < 0 {
		return
	}
	b := int(now / t.BinWidth)
	for len(t.bins) <= b {
		t.bins = append(t.bins, Acc{})
	}
	t.bins[b].Add(v)
}

// Bins returns the accumulated bins.
func (t *TimeSeries) Bins() []Acc { return t.bins }

// Merge folds another time series into t. Both series must share the same
// bin width; the result is as if every observation of o had been added to
// t directly.
func (t *TimeSeries) Merge(o *TimeSeries) {
	if o == nil {
		return
	}
	if o.BinWidth != t.BinWidth {
		panic(fmt.Sprintf("stats: merging time series with bin widths %d and %d", t.BinWidth, o.BinWidth))
	}
	for len(t.bins) < len(o.bins) {
		t.bins = append(t.bins, Acc{})
	}
	for i, b := range o.bins {
		t.bins[i].Merge(b)
	}
}

// Means returns (binStartTime, mean) pairs for every non-empty bin.
func (t *TimeSeries) Means() ([]int64, []float64) {
	var ts []int64
	var vs []float64
	for i, b := range t.bins {
		if b.N == 0 {
			continue
		}
		ts = append(ts, int64(i)*t.BinWidth)
		vs = append(vs, b.Mean())
	}
	return ts, vs
}

// Table is a tiny helper for rendering aligned experiment tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// csvCell escapes one CSV cell per RFC 4180: cells containing commas,
// quotes, or newlines are quoted, with embedded quotes doubled.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvCell(c))
	}
	b.WriteByte('\n')
}

// CSV renders the table as RFC 4180 comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

// Quantiles computes exact quantiles of a small sample (used in tests to
// validate the histogram approximation).
func Quantiles(sample []float64, qs ...float64) []float64 {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(s) == 0 {
			continue
		}
		k := int(math.Ceil(q*float64(len(s)))) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(s) {
			k = len(s) - 1
		}
		out[i] = s[k]
	}
	return out
}
