// Package proto defines the wire-level data types of the simulated network:
// flits, packet kinds, virtual-channel constants, and credit messages.
//
// Flits are plain value structs. Every flit of a packet carries the full
// packet metadata, so the simulator never allocates per-packet state on the
// hot path; buffers are rings of Flit values. Routing state (adaptive-path
// phase, Valiant intermediate group) lives in the head flit and is copied to
// body flits when the packet is segmented; only the head flit's copy is ever
// consulted.
package proto

// Architectural constants from the paper's Section V configuration.
const (
	// FlitBytes is the flit size in bytes (10 B at 10 GB/s and 1 GHz).
	FlitBytes = 10
	// MaxPacketFlits is the maximum data packet size in flits.
	MaxPacketFlits = 24
	// NumNetVCs is the number of network virtual channels used by the
	// PAR routing algorithm for deadlock avoidance.
	NumNetVCs = 6
	// VCStore is the internal storage ("S") virtual channel added by the
	// stashing architecture. It is not visible outside a switch.
	VCStore = NumNetVCs
	// VCRetrieve is the internal retrieval ("R") virtual channel.
	VCRetrieve = NumNetVCs + 1
	// NumVCs is the total number of VC indexes in switch-internal
	// structures (network VCs plus S and R).
	NumVCs = NumNetVCs + 2
)

// Kind discriminates packet types.
type Kind uint8

const (
	// Data is a normal data packet (1..MaxPacketFlits flits).
	Data Kind = iota
	// ACK is a single-flit, hardware-generated end-to-end acknowledgment.
	// Its PktID field names the data packet being acknowledged.
	ACK
)

// Flags is a bitset of per-flit attributes.
type Flags uint8

const (
	// FlagHead marks the first flit of a packet.
	FlagHead Flags = 1 << iota
	// FlagTail marks the last flit of a packet. A single-flit packet has
	// both FlagHead and FlagTail set.
	FlagTail
	// FlagECN is the explicit congestion notification mark, set by
	// congested switch input ports and copied into the ACK by the
	// destination endpoint.
	FlagECN
	// FlagNack marks an ACK as negative: the data packet arrived
	// corrupted (used by the error-injection extension) and must be
	// retransmitted from its stashed copy.
	FlagNack
	// FlagNonMinimal marks a packet routed over a Valiant path.
	FlagNonMinimal
	// FlagShared records that this flit occupies the downstream DAMQ's
	// shared pool rather than its per-VC reserved quota; the returned
	// credit must replenish the matching pool.
	FlagShared
	// FlagStashCopy marks the stash duplicate of a packet created by the
	// end-to-end reliability mechanism. Stash copies terminate at a
	// stash buffer and are never forwarded off-switch.
	FlagStashCopy
	// FlagRetransmit marks a re-injected packet (stash-copy resend or
	// source-endpoint retransmission). The destination uses it to account
	// recovery latency separately from first-attempt latency.
	FlagRetransmit
)

// Class labels traffic for statistics; it does not affect switching.
type Class uint8

const (
	// ClassDefault is plain synthetic traffic.
	ClassDefault Class = iota
	// ClassVictim is the measured traffic class in congestion studies.
	ClassVictim
	// ClassAggressor is the congestion-forming class.
	ClassAggressor
	// ClassTrace is trace-replay traffic.
	ClassTrace
	// NumClasses is the number of traffic classes.
	NumClasses
)

// RoutePhase tracks a packet's progress along its dragonfly path.
type RoutePhase uint8

const (
	// PhaseInject: the packet has not yet left its first-hop switch; the
	// minimal-vs-Valiant decision may still be (re)made progressively.
	PhaseInject RoutePhase = iota
	// PhaseToMid: committed to a Valiant path, heading to the
	// intermediate group.
	PhaseToMid
	// PhaseMinimal: heading to the destination group minimally.
	PhaseMinimal
)

// Flit is the unit of switching and flow control. It is a value type;
// buffers copy flits rather than sharing pointers.
type Flit struct {
	Src, Dst int32 // endpoint ids
	MsgID    uint32
	PktID    uint64 // globally unique: src<<32 | per-source sequence
	Birth    int64  // injection cycle of the packet's head flit

	Seq       uint8 // flit index within the packet
	Size      uint8 // packet size in flits
	VC        uint8 // VC occupied on the current channel / buffer
	RestoreVC uint8 // original VC of a stash-retrieved packet

	// Switch-internal routing state, valid between the input buffer and
	// the output buffer of one switch traversal.
	Out     uint8 // output port the flit is heading to inside the switch
	OrigOut uint8 // intended output port of a congestion-stashed packet

	Kind  Kind
	Flags Flags
	Class Class

	Phase    RoutePhase
	Hops     uint8 // switch-to-switch channels traversed so far
	MidGroup int16 // Valiant intermediate group; -1 when minimal

	// Csum is the packet checksum covering the flit's stable identity
	// fields (see FlitSum). The fault injector models payload bit errors
	// by perturbing it; the destination endpoint verifies it on ejection.
	Csum uint16
}

// Head reports whether f is a head flit.
//stashsim:noalloc
func (f *Flit) Head() bool { return f.Flags&FlagHead != 0 }

// Tail reports whether f is a tail flit.
//stashsim:noalloc
func (f *Flit) Tail() bool { return f.Flags&FlagTail != 0 }

// FlitSum computes the flit checksum over the fields that are immutable
// in flight: identity (Src, Dst, MsgID, PktID, Birth), position (Seq,
// Size), and type (Kind, Class). Mutable switching state — VC, flags,
// routing phase, hop count — is deliberately excluded, so the checksum
// survives re-routing, VC remapping, and stash store/retrieve untouched;
// only injected corruption invalidates it. FNV-1a folded to 16 bits.
func FlitSum(f *Flit) uint16 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(uint32(f.Src)))
	mix(uint64(uint32(f.Dst)))
	mix(uint64(f.MsgID))
	mix(f.PktID)
	mix(uint64(f.Birth))
	mix(uint64(f.Seq) | uint64(f.Size)<<8 | uint64(f.Kind)<<16 | uint64(f.Class)<<24)
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}

// MakePktID builds a globally unique packet id from a source endpoint and a
// per-source monotone sequence number.
func MakePktID(src int32, seq uint32) uint64 {
	return uint64(uint32(src))<<32 | uint64(seq)
}

// PktIDSrc extracts the source endpoint from a packet id.
func PktIDSrc(id uint64) int32 { return int32(uint32(id >> 32)) }

// Credit is a flow-control credit returned upstream when a flit leaves an
// input buffer. Shared indicates which DAMQ pool the freed slot belongs to.
type Credit struct {
	VC     uint8
	Shared bool
}

// Segment splits a message of the given size in flits into packet sizes of
// at most MaxPacketFlits, returned as a slice of per-packet flit counts.
// Messages are at least one flit; Segment panics on non-positive sizes to
// catch generator bugs early.
func Segment(flits int) []int {
	if flits <= 0 {
		panic("proto: message with non-positive flit count")
	}
	n := (flits + MaxPacketFlits - 1) / MaxPacketFlits
	out := make([]int, 0, n)
	for flits > 0 {
		s := flits
		if s > MaxPacketFlits {
			s = MaxPacketFlits
		}
		out = append(out, s)
		flits -= s
	}
	return out
}
