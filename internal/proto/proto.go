// Package proto defines the wire-level data types of the simulated network:
// flits, packet kinds, virtual-channel constants, and credit messages.
//
// Flits are plain value structs. Every flit of a packet carries the full
// packet metadata, so the simulator never allocates per-packet state on the
// hot path; buffers are rings of Flit values. Routing state (adaptive-path
// phase, Valiant intermediate group) lives in the head flit and is copied to
// body flits when the packet is segmented; only the head flit's copy is ever
// consulted.
package proto

// Architectural constants from the paper's Section V configuration.
const (
	// FlitBytes is the flit size in bytes (10 B at 10 GB/s and 1 GHz).
	FlitBytes = 10
	// MaxPacketFlits is the maximum data packet size in flits.
	MaxPacketFlits = 24
	// NumNetVCs is the number of network virtual channels used by the
	// PAR routing algorithm for deadlock avoidance.
	NumNetVCs = 6
	// VCStore is the internal storage ("S") virtual channel added by the
	// stashing architecture. It is not visible outside a switch.
	VCStore = NumNetVCs
	// VCRetrieve is the internal retrieval ("R") virtual channel.
	VCRetrieve = NumNetVCs + 1
	// NumVCs is the total number of VC indexes in switch-internal
	// structures (network VCs plus S and R).
	NumVCs = NumNetVCs + 2
)

// Kind discriminates packet types.
type Kind uint8

const (
	// Data is a normal data packet (1..MaxPacketFlits flits).
	Data Kind = iota
	// ACK is a single-flit, hardware-generated end-to-end acknowledgment.
	// Its PktID field names the data packet being acknowledged.
	ACK
)

// Flags is a bitset of per-flit attributes.
type Flags uint8

const (
	// FlagHead marks the first flit of a packet.
	FlagHead Flags = 1 << iota
	// FlagTail marks the last flit of a packet. A single-flit packet has
	// both FlagHead and FlagTail set.
	FlagTail
	// FlagECN is the explicit congestion notification mark, set by
	// congested switch input ports and copied into the ACK by the
	// destination endpoint.
	FlagECN
	// FlagNack marks an ACK as negative: the data packet arrived
	// corrupted (used by the error-injection extension) and must be
	// retransmitted from its stashed copy.
	FlagNack
	// FlagNonMinimal marks a packet routed over a Valiant path.
	FlagNonMinimal
	// FlagShared records that this flit occupies the downstream DAMQ's
	// shared pool rather than its per-VC reserved quota; the returned
	// credit must replenish the matching pool.
	FlagShared
	// FlagStashCopy marks the stash duplicate of a packet created by the
	// end-to-end reliability mechanism. Stash copies terminate at a
	// stash buffer and are never forwarded off-switch.
	FlagStashCopy
)

// Class labels traffic for statistics; it does not affect switching.
type Class uint8

const (
	// ClassDefault is plain synthetic traffic.
	ClassDefault Class = iota
	// ClassVictim is the measured traffic class in congestion studies.
	ClassVictim
	// ClassAggressor is the congestion-forming class.
	ClassAggressor
	// ClassTrace is trace-replay traffic.
	ClassTrace
	// NumClasses is the number of traffic classes.
	NumClasses
)

// RoutePhase tracks a packet's progress along its dragonfly path.
type RoutePhase uint8

const (
	// PhaseInject: the packet has not yet left its first-hop switch; the
	// minimal-vs-Valiant decision may still be (re)made progressively.
	PhaseInject RoutePhase = iota
	// PhaseToMid: committed to a Valiant path, heading to the
	// intermediate group.
	PhaseToMid
	// PhaseMinimal: heading to the destination group minimally.
	PhaseMinimal
)

// Flit is the unit of switching and flow control. It is a value type;
// buffers copy flits rather than sharing pointers.
type Flit struct {
	Src, Dst int32 // endpoint ids
	MsgID    uint32
	PktID    uint64 // globally unique: src<<32 | per-source sequence
	Birth    int64  // injection cycle of the packet's head flit

	Seq       uint8 // flit index within the packet
	Size      uint8 // packet size in flits
	VC        uint8 // VC occupied on the current channel / buffer
	RestoreVC uint8 // original VC of a stash-retrieved packet

	// Switch-internal routing state, valid between the input buffer and
	// the output buffer of one switch traversal.
	Out     uint8 // output port the flit is heading to inside the switch
	OrigOut uint8 // intended output port of a congestion-stashed packet

	Kind  Kind
	Flags Flags
	Class Class

	Phase    RoutePhase
	Hops     uint8 // switch-to-switch channels traversed so far
	MidGroup int16 // Valiant intermediate group; -1 when minimal
}

// Head reports whether f is a head flit.
func (f *Flit) Head() bool { return f.Flags&FlagHead != 0 }

// Tail reports whether f is a tail flit.
func (f *Flit) Tail() bool { return f.Flags&FlagTail != 0 }

// MakePktID builds a globally unique packet id from a source endpoint and a
// per-source monotone sequence number.
func MakePktID(src int32, seq uint32) uint64 {
	return uint64(uint32(src))<<32 | uint64(seq)
}

// PktIDSrc extracts the source endpoint from a packet id.
func PktIDSrc(id uint64) int32 { return int32(uint32(id >> 32)) }

// Credit is a flow-control credit returned upstream when a flit leaves an
// input buffer. Shared indicates which DAMQ pool the freed slot belongs to.
type Credit struct {
	VC     uint8
	Shared bool
}

// Segment splits a message of the given size in flits into packet sizes of
// at most MaxPacketFlits, returned as a slice of per-packet flit counts.
// Messages are at least one flit; Segment panics on non-positive sizes to
// catch generator bugs early.
func Segment(flits int) []int {
	if flits <= 0 {
		panic("proto: message with non-positive flit count")
	}
	n := (flits + MaxPacketFlits - 1) / MaxPacketFlits
	out := make([]int, 0, n)
	for flits > 0 {
		s := flits
		if s > MaxPacketFlits {
			s = MaxPacketFlits
		}
		out = append(out, s)
		flits -= s
	}
	return out
}
