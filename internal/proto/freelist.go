// Deterministic packet-buffer freelist.
//
// The steady-state simulation loop must not allocate: every per-packet
// structure the hot path creates is recycled through an explicit LIFO
// freelist rather than sync.Pool. sync.Pool is unusable here twice over —
// it drops cached objects at GC (so allocation behaviour depends on GC
// timing) and its per-P caches make reuse order depend on goroutine
// scheduling. A plain slice-backed stack is deterministic by construction:
// the same simulation always produces the same sequence of Get/Put pairs,
// and the parallel executor never shares a pool across workers (each switch
// owns its pools, and a switch is stepped by exactly one worker per cycle).
package proto

// PktBuf is a ref-counted buffer holding the flits of one packet. It backs
// the retained stash copies of the end-to-end reliability mechanism: the
// stash bank keeps one reference for as long as the copy is resident, and
// each retransmission takes a transient reference while it re-injects the
// flits. The buffer returns to its pool when the last reference drops, so a
// retransmission storm recycles the same handful of buffers instead of
// copying the payload once per resend.
type PktBuf struct {
	Flits []Flit
	refs  int32
	pool  *BufPool
}

// Refs returns the current reference count (0 means freed / pool-resident).
func (b *PktBuf) Refs() int { return int(b.refs) }

// Freed reports whether the buffer has been returned to its pool. A freed
// buffer must not be reachable from any stash bank; the invariant checker
// audits exactly that.
func (b *PktBuf) Freed() bool { return b.refs <= 0 }

// Retain takes an additional reference. Retaining a freed buffer is a
// use-after-free and panics immediately rather than corrupting the pool.
//
//stashsim:noalloc
func (b *PktBuf) Retain() {
	if b.refs <= 0 {
		panic("proto: Retain on freed PktBuf")
	}
	b.refs++
}

// Release drops one reference; when the last one goes the buffer is reset
// and pushed back on its pool's freelist. Releasing a freed buffer panics:
// a double release would let two packets share one buffer.
//
//stashsim:noalloc
func (b *PktBuf) Release() {
	if b.refs <= 0 {
		panic("proto: Release on freed PktBuf")
	}
	b.refs--
	if b.refs == 0 {
		b.Flits = b.Flits[:0]
		p := b.pool
		p.live--
		p.free = append(p.free, b)
	}
}

// BufPool is a deterministic LIFO freelist of PktBufs. The zero value is
// ready to use. Not safe for concurrent use; ownership follows the switch
// that embeds it.
type BufPool struct {
	free []*PktBuf
	// news counts buffers ever allocated, live the references currently
	// outstanding. In steady state news stops growing: every Get is
	// served from free.
	news int64
	live int64
}

// Get pops a buffer from the freelist (or allocates one on a cold pool)
// and hands it out with a reference count of one and zero length. Capacity
// is pre-sized to MaxPacketFlits so appending a packet never reallocates.
//
//stashsim:noalloc
func (p *BufPool) Get() *PktBuf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		b.refs = 1
		p.live++
		return b
	}
	p.news++
	p.live++
	//lint:allow allocfree -- cold-pool allocation; steady state is served from the freelist
	return &PktBuf{Flits: make([]Flit, 0, MaxPacketFlits), refs: 1, pool: p}
}

// Allocated returns how many buffers the pool has ever created. Flat under
// steady state; the zero-allocation benchmark relies on that.
func (p *BufPool) Allocated() int64 { return p.news }

// Live returns how many buffers are currently checked out.
func (p *BufPool) Live() int64 { return p.live }
