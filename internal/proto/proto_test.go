package proto

import (
	"testing"
	"testing/quick"
)

func TestSegmentSinglePacket(t *testing.T) {
	for flits := 1; flits <= MaxPacketFlits; flits++ {
		got := Segment(flits)
		if len(got) != 1 || got[0] != flits {
			t.Fatalf("Segment(%d) = %v", flits, got)
		}
	}
}

func TestSegmentMultiPacket(t *testing.T) {
	got := Segment(50)
	want := []int{24, 24, 2}
	if len(got) != len(want) {
		t.Fatalf("Segment(50) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Segment(50) = %v, want %v", got, want)
		}
	}
}

func TestSegmentConservesFlits(t *testing.T) {
	if err := quick.Check(func(raw uint16) bool {
		flits := int(raw)%5000 + 1
		total := 0
		for _, s := range Segment(flits) {
			if s < 1 || s > MaxPacketFlits {
				return false
			}
			total += s
		}
		return total == flits
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Segment(0)
}

func TestPktIDRoundTrip(t *testing.T) {
	if err := quick.Check(func(src int32, seq uint32) bool {
		if src < 0 {
			src = -src
		}
		id := MakePktID(src, seq)
		return PktIDSrc(id) == src && uint32(id) == seq
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPktIDUniqueAcrossSources(t *testing.T) {
	a := MakePktID(1, 5)
	b := MakePktID(2, 5)
	if a == b {
		t.Fatal("packet ids collide across sources")
	}
}

func TestFlitFlags(t *testing.T) {
	f := Flit{Flags: FlagHead}
	if !f.Head() || f.Tail() {
		t.Fatal("head flag misread")
	}
	f.Flags |= FlagTail
	if !f.Tail() {
		t.Fatal("tail flag misread")
	}
	f.Flags &^= FlagHead
	if f.Head() {
		t.Fatal("cleared head still set")
	}
}

func TestFlitSumStableUnderSwitching(t *testing.T) {
	f := Flit{
		Src: 3, Dst: 17, MsgID: 9, PktID: MakePktID(3, 40), Birth: 1234,
		Seq: 1, Size: 4, VC: 0, Kind: Data, Class: ClassDefault,
	}
	sum := FlitSum(&f)
	// Everything the network mutates in flight must not move the checksum.
	f.VC = 5
	f.RestoreVC = 2
	f.Out, f.OrigOut = 7, 3
	f.Flags |= FlagECN | FlagNonMinimal | FlagShared | FlagRetransmit
	f.Phase = PhaseMinimal
	f.Hops = 3
	f.MidGroup = 4
	if FlitSum(&f) != sum {
		t.Fatal("checksum covers mutable switching state")
	}
	// Identity fields must move it.
	g := f
	g.PktID++
	if FlitSum(&g) == sum {
		t.Fatal("checksum blind to PktID")
	}
	h := f
	h.Seq++
	if FlitSum(&h) == sum {
		t.Fatal("checksum blind to Seq")
	}
}

func TestFlitSumSpread(t *testing.T) {
	// Distinct flits should rarely collide; with 1000 sequential packets a
	// handful of 16-bit collisions is expected, but not mass collision.
	seen := make(map[uint16]int)
	for i := 0; i < 1000; i++ {
		f := Flit{Src: 1, Dst: 2, PktID: MakePktID(1, uint32(i)), Size: 1}
		seen[FlitSum(&f)]++
	}
	if len(seen) < 900 {
		t.Fatalf("checksum collapses: %d distinct sums over 1000 flits", len(seen))
	}
}

func TestVCConstants(t *testing.T) {
	if VCStore != NumNetVCs || VCRetrieve != NumNetVCs+1 || NumVCs != NumNetVCs+2 {
		t.Fatal("VC constant arithmetic broken")
	}
	if NumNetVCs != 6 {
		t.Fatalf("paper requires 6 network VCs, got %d", NumNetVCs)
	}
	if MaxPacketFlits != 24 || FlitBytes != 10 {
		t.Fatal("paper packet/flit sizing changed")
	}
}
