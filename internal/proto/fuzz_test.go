package proto

import (
	"bytes"
	"testing"
)

// fuzzSeedFlit is a representative valid flit used to seed the codec
// corpus alongside the committed files in testdata/fuzz.
func fuzzSeedFlit() Flit {
	return Flit{
		Src:       3,
		Dst:       7,
		MsgID:     42,
		PktID:     MakePktID(3, 9),
		Birth:     1234,
		Seq:       1,
		Size:      4,
		VC:        1,
		RestoreVC: 0,
		Out:       5,
		OrigOut:   5,
		Kind:      Data,
		Flags:     FlagTail,
		Class:     ClassDefault,
		Phase:     PhaseMinimal,
		Hops:      2,
		MidGroup:  -1,
		Csum:      0xBEEF,
	}
}

// FuzzFlitCodec checks the codec contract from both directions: every
// accepted byte string re-encodes to itself (the encoding is canonical),
// and every decoded flit survives an encode/decode round trip unchanged.
// Rejections must be clean errors with zero bytes consumed — never a
// panic, never partial progress.
func FuzzFlitCodec(f *testing.F) {
	seed := fuzzSeedFlit()
	f.Add(AppendFlit(nil, &seed))
	head := seed
	head.Seq = 0
	head.Flags = FlagHead
	head.Kind = ACK
	f.Add(AppendFlit(nil, &head))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, FlitWireSize))
	f.Add(AppendFlit(nil, &seed)[:FlitWireSize-1]) // truncated

	f.Fuzz(func(t *testing.T, b []byte) {
		fl, n, err := DecodeFlit(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("DecodeFlit consumed %d bytes alongside error %v", n, err)
			}
			return
		}
		if n != FlitWireSize {
			t.Fatalf("DecodeFlit consumed %d bytes, want %d", n, FlitWireSize)
		}
		re := AppendFlit(nil, &fl)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("encoding not canonical:\n accepted %x\n re-encoded %x", b[:n], re)
		}
		fl2, n2, err := DecodeFlit(re)
		if err != nil || n2 != n || fl2 != fl {
			t.Fatalf("round trip diverged: %+v / %d / %v, want %+v", fl2, n2, err, fl)
		}
	})
}

// FuzzFlitSum checks the checksum contract on every flit the codec
// accepts: FlitSum is a pure function of the identity fields, so mutating
// any field the switch legitimately rewrites in flight — VC, routing
// state, flags, hop count — must leave it unchanged.
func FuzzFlitSum(f *testing.F) {
	seed := fuzzSeedFlit()
	f.Add(AppendFlit(nil, &seed))
	f.Add(bytes.Repeat([]byte{0x01}, FlitWireSize))

	f.Fuzz(func(t *testing.T, b []byte) {
		fl, _, err := DecodeFlit(b)
		if err != nil {
			return
		}
		want := FlitSum(&fl)
		if got := FlitSum(&fl); got != want {
			t.Fatalf("FlitSum not deterministic: %#x then %#x", want, got)
		}
		mut := fl
		mut.VC = (mut.VC + 1) % NumVCs
		mut.RestoreVC = (mut.RestoreVC + 1) % NumVCs
		mut.Out ^= 0x3F
		mut.OrigOut ^= 0x3F
		mut.Flags ^= FlagECN | FlagNonMinimal | FlagStashCopy
		mut.Phase = (mut.Phase + 1) % (PhaseMinimal + 1)
		mut.Hops++
		mut.MidGroup ^= 0x55
		mut.Csum ^= 0xFFFF
		if got := FlitSum(&mut); got != want {
			t.Fatalf("FlitSum covers mutable state: %#x after mutation, want %#x", got, want)
		}
	})
}
