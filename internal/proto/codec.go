package proto

import (
	"encoding/binary"
	"fmt"
)

// Wire format for flits: a fixed-width little-endian encoding of every Flit
// field, in declaration order. It exists for tooling that moves flits across
// a process boundary — trace capture, golden corpora, and an eventual
// multi-process executor — and doubles as the fuzzing surface for the codec
// round-trip property: DecodeFlit(AppendFlit(f)) == f for every valid flit,
// and AppendFlit(DecodeFlit(b)) == b for every accepted byte string (the
// encoding is canonical: no padding, no redundant representations).

// FlitWireSize is the encoded size of one flit in bytes.
const FlitWireSize = 43

// AppendFlit appends f's wire encoding to dst and returns the extended
// slice. It never fails; every Flit value has an encoding.
func AppendFlit(dst []byte, f *Flit) []byte {
	var b [FlitWireSize]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(f.Src))
	binary.LittleEndian.PutUint32(b[4:], uint32(f.Dst))
	binary.LittleEndian.PutUint32(b[8:], f.MsgID)
	binary.LittleEndian.PutUint64(b[12:], f.PktID)
	binary.LittleEndian.PutUint64(b[20:], uint64(f.Birth))
	b[28] = f.Seq
	b[29] = f.Size
	b[30] = f.VC
	b[31] = f.RestoreVC
	b[32] = f.Out
	b[33] = f.OrigOut
	b[34] = uint8(f.Kind)
	b[35] = uint8(f.Flags)
	b[36] = uint8(f.Class)
	b[37] = uint8(f.Phase)
	b[38] = f.Hops
	binary.LittleEndian.PutUint16(b[39:], uint16(f.MidGroup))
	binary.LittleEndian.PutUint16(b[41:], f.Csum)
	return append(dst, b[:]...)
}

// DecodeFlit decodes one flit from the front of b, returning the flit and
// the number of bytes consumed. It rejects truncated input and any encoding
// whose enumerated fields are out of range, so a fuzzer feeding it garbage
// exercises every validation branch instead of producing impossible flits.
func DecodeFlit(b []byte) (Flit, int, error) {
	var f Flit
	if len(b) < FlitWireSize {
		return f, 0, fmt.Errorf("proto: short flit encoding: %d bytes, need %d", len(b), FlitWireSize)
	}
	f.Src = int32(binary.LittleEndian.Uint32(b[0:]))
	f.Dst = int32(binary.LittleEndian.Uint32(b[4:]))
	f.MsgID = binary.LittleEndian.Uint32(b[8:])
	f.PktID = binary.LittleEndian.Uint64(b[12:])
	f.Birth = int64(binary.LittleEndian.Uint64(b[20:]))
	f.Seq = b[28]
	f.Size = b[29]
	f.VC = b[30]
	f.RestoreVC = b[31]
	f.Out = b[32]
	f.OrigOut = b[33]
	f.Kind = Kind(b[34])
	f.Flags = Flags(b[35])
	f.Class = Class(b[36])
	f.Phase = RoutePhase(b[37])
	f.Hops = b[38]
	f.MidGroup = int16(binary.LittleEndian.Uint16(b[39:]))
	f.Csum = binary.LittleEndian.Uint16(b[41:])
	switch {
	case f.Kind > ACK:
		return Flit{}, 0, fmt.Errorf("proto: invalid flit kind %d", f.Kind)
	case f.Class >= NumClasses:
		return Flit{}, 0, fmt.Errorf("proto: invalid flit class %d", f.Class)
	case f.Phase > PhaseMinimal:
		return Flit{}, 0, fmt.Errorf("proto: invalid route phase %d", f.Phase)
	case f.VC >= NumVCs:
		return Flit{}, 0, fmt.Errorf("proto: invalid VC %d", f.VC)
	case f.RestoreVC >= NumVCs:
		return Flit{}, 0, fmt.Errorf("proto: invalid restore VC %d", f.RestoreVC)
	case f.Size == 0 || f.Size > MaxPacketFlits:
		return Flit{}, 0, fmt.Errorf("proto: invalid packet size %d flits", f.Size)
	case f.Seq >= f.Size:
		return Flit{}, 0, fmt.Errorf("proto: flit seq %d out of range for %d-flit packet", f.Seq, f.Size)
	}
	return f, FlitWireSize, nil
}
