package core

import (
	"strings"
	"testing"

	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// The core package panics only on contract violations that indicate a
// simulator bug, never on bad input. The panicstyle analyzer enforces the
// "pkg:"-prefixed constant message; these tests pin down that each guard
// actually fires and carries its documented message.
func TestCorePanicPaths(t *testing.T) {
	newSwitch := func() *Switch {
		cfg := TinyConfig()
		cfg.Mode = StashE2E
		return NewSwitch(0, cfg, sim.NewRNG(1))
	}
	cases := []struct {
		name string
		want string
		run  func()
	}{
		{
			name: "zero-latency link",
			want: "core: link latency must be at least one cycle",
			run:  func() { NewLink(0) },
		},
		{
			name: "drop with no due flit",
			want: "core: DropFlit with no due flit",
			run:  func() { NewLink(1).DropFlit(0) },
		},
		{
			name: "non-head flit at idle input VC",
			want: "core: non-head flit at idle input VC",
			run: func() {
				s := newSwitch()
				// A body flit can only appear at an idle VC if the wormhole
				// latch state was corrupted; inject one directly.
				s.in[0].buf.Push(proto.Flit{VC: 0, Size: 1})
				s.stepRowBus(0, &s.in[0])
			},
		},
		{
			name: "location message for untracked packet",
			want: "core: location message for untracked packet",
			run: func() {
				s := newSwitch()
				s.onLocation(0, sbMsg{kind: sbLocation, pktID: 99, dst: 0})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("panicked with %T (%v), want string", r, r)
				}
				if !strings.Contains(msg, tc.want) {
					t.Fatalf("panic %q does not contain %q", msg, tc.want)
				}
				if !strings.HasPrefix(msg, "core: ") {
					t.Fatalf("panic %q is not pkg-prefixed (panicstyle contract)", msg)
				}
			}()
			tc.run()
		})
	}
}
