package core

import (
	"testing"

	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

func TestConfigValidate(t *testing.T) {
	ok := PaperConfig()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperConfig()
	bad.Rows = 1 // 1x5 < radix 20
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted undersized tiling")
	}
	bad2 := PaperConfig()
	bad2.RateNum, bad2.RateDen = 13, 10
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted super-unity channel rate")
	}
	bad3 := PaperConfig()
	bad3.Mode = StashE2E
	bad3.AcksEnabled = false
	if err := bad3.Validate(); err == nil {
		t.Fatal("accepted E2E without ACKs")
	}
	bad4 := PaperConfig()
	bad4.ErrorRate = 0.1
	if err := bad4.Validate(); err == nil {
		t.Fatal("accepted error injection without payload retention")
	}
}

func TestPaperStashPartitioning(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	// Section V: 7/8 of 20KB on five end ports, 3/4 on ten local ports,
	// none on five global ports = 237.5 KB = 23750 flits per switch.
	if got := cfg.StashCap(topo.Endpoint); got != 1750 {
		t.Fatalf("endpoint stash %d flits, want 1750", got)
	}
	if got := cfg.StashCap(topo.Local); got != 1500 {
		t.Fatalf("local stash %d flits, want 1500", got)
	}
	if got := cfg.StashCap(topo.Global); got != 0 {
		t.Fatalf("global stash %d flits, want 0", got)
	}
	if got := cfg.SwitchStashCap(); got != 23750 {
		t.Fatalf("switch stash %d flits, want 23750 (237.5 KB)", got)
	}
	// Capacity restriction scales the usable pool only (truncated
	// per-port: 5x437 + 10x375 flits).
	cfg.StashCapFrac = 0.25
	if got := cfg.SwitchStashCap(); got != 5935 {
		t.Fatalf("restricted stash %d, want 5935", got)
	}
	// Normal partitions are unaffected by the restriction.
	if got := cfg.NormalInCap(topo.Endpoint); got != 125 {
		t.Fatalf("endpoint normal input %d flits, want 125", got)
	}
	if got := cfg.NormalInCap(topo.Global); got != 1000 {
		t.Fatalf("global normal input %d flits, want 1000", got)
	}
}

func TestBaselineHasNoStash(t *testing.T) {
	cfg := PaperConfig()
	if cfg.SwitchStashCap() != 0 {
		t.Fatal("baseline reserves stash capacity")
	}
	if cfg.NormalInCap(topo.Endpoint) != cfg.InputBufFlits {
		t.Fatal("baseline partitions the input buffer")
	}
}

func TestTilingMaps(t *testing.T) {
	cfg := PaperConfig()
	// 20 ports over 4x4 tiles of 5x5.
	for p := 0; p < cfg.Topo.Radix(); p++ {
		row, slot := cfg.RowOf(p), cfg.SlotOf(p)
		if row*cfg.TileIn+slot != p {
			t.Fatalf("input map broken at %d", p)
		}
		col, to := cfg.ColOf(p), cfg.TileOutOf(p)
		if col*cfg.TileOut+to != p {
			t.Fatalf("output map broken at %d", p)
		}
		if row >= cfg.Rows || col >= cfg.Cols {
			t.Fatalf("port %d maps outside tile array", p)
		}
	}
}

func TestLinkLatency(t *testing.T) {
	l := NewLink(5)
	l.SendFlit(10, proto.Flit{Seq: 1})
	if _, ok := l.RecvFlit(14); ok {
		t.Fatal("flit arrived early")
	}
	f, ok := l.RecvFlit(15)
	if !ok || f.Seq != 1 {
		t.Fatal("flit did not arrive on time")
	}
	l.SendCredit(20, proto.Credit{VC: 3})
	if _, ok := l.RecvCredit(24); ok {
		t.Fatal("credit arrived early")
	}
	c, ok := l.RecvCredit(25)
	if !ok || c.VC != 3 {
		t.Fatal("credit did not arrive on time")
	}
}

func TestLinkPeekDrop(t *testing.T) {
	l := NewLink(1)
	l.SendFlit(0, proto.Flit{Seq: 7})
	if l.PeekFlit(0) != nil {
		t.Fatal("peeked before arrival")
	}
	f := l.PeekFlit(1)
	if f == nil || f.Seq != 7 {
		t.Fatal("peek failed")
	}
	if l.InFlightFlits() != 1 {
		t.Fatal("in-flight count wrong")
	}
	l.DropFlit(1)
	if l.PeekFlit(1) != nil {
		t.Fatal("drop did not consume")
	}
}

func TestLinkRejectsZeroLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: zero latency breaks the parallel executor's lookahead")
		}
	}()
	NewLink(0)
}

func TestLinkFIFOOrder(t *testing.T) {
	l := NewLink(3)
	for i := 0; i < 10; i++ {
		l.SendFlit(int64(i), proto.Flit{Seq: uint8(i)})
	}
	for i := 0; i < 10; i++ {
		f, ok := l.RecvFlit(int64(i) + 3)
		if !ok || int(f.Seq) != i {
			t.Fatalf("flit %d out of order", i)
		}
	}
}

func TestSwitchConstruction(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	s := NewSwitch(0, cfg, rngFor(cfg))
	if s.StashCapTotal() != 23750 {
		t.Fatalf("stash capacity %d", s.StashCapTotal())
	}
	if s.StashUsed() != 0 {
		t.Fatal("fresh switch has stash occupancy")
	}
	if s.TrackedPackets() != 0 {
		t.Fatal("fresh switch tracks packets")
	}
	if got := s.OutputQueue(0); got != 0 {
		t.Fatalf("fresh output queue %d", got)
	}
}

func TestJSQPicksEmptiestColumn(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	s := NewSwitch(0, cfg, rngFor(cfg))
	// Consume most of the stash on the ports of columns 0-2, leaving
	// column 3 (ports 15-19, but those are global=0...) — use column 0
	// vs column 1: drain column 1's best pool lower than column 0's.
	for q := 0; q < cfg.Topo.Radix(); q++ {
		pool := s.PortStash(q)
		if pool.Capacity() == 0 {
			continue
		}
		if cfg.ColOf(q) != 2 {
			pool.Reserve(pool.Capacity() - 100) // leave 100 free
		}
	}
	col, ok := s.jsqColumn(0, 0, 24)
	if !ok {
		t.Fatal("no column found")
	}
	if col != 2 {
		t.Fatalf("JSQ chose column %d, want the emptiest (2)", col)
	}
}

func TestJSQRespectsSizeRequirement(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	s := NewSwitch(0, cfg, rngFor(cfg))
	for q := 0; q < cfg.Topo.Radix(); q++ {
		pool := s.PortStash(q)
		if pool.Capacity() > 0 {
			pool.Reserve(pool.Capacity() - 10) // 10 free everywhere
		}
	}
	if _, ok := s.jsqColumn(0, 0, 24); ok {
		t.Fatal("JSQ found space for a 24-flit packet with only 10 free")
	}
	if _, ok := s.jsqColumn(0, 0, 10); !ok {
		t.Fatal("JSQ rejected a 10-flit packet with exactly 10 free")
	}
}

func TestJSQOmitsGlobalPorts(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	s := NewSwitch(0, cfg, rngFor(cfg))
	// Exhaust everything except global ports (cap 0 anyway): no column
	// may be selected via global ports.
	for q := 0; q < cfg.Topo.Radix(); q++ {
		pool := s.PortStash(q)
		if pool.Capacity() > 0 {
			pool.Reserve(pool.Capacity())
		}
	}
	if _, ok := s.jsqColumn(0, 0, 1); ok {
		t.Fatal("JSQ selected a path with zero stash capacity everywhere")
	}
}

func TestSidebandDelivery(t *testing.T) {
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	cfg.SidebandLat = 10
	s := NewSwitch(0, cfg, rngFor(cfg))
	// Simulate a stash copy completion then a location message.
	pool := s.PortStash(7)
	pool.Reserve(4)
	for i := 0; i < 4; i++ {
		pool.PutCopy(proto.Flit{PktID: proto.MakePktID(0, 1), Size: 4, Seq: uint8(i)})
	}
	s.track[0][proto.MakePktID(0, 1)] = &e2eEntry{size: 4, stashPort: -1}
	s.sbSend(100, sbLocation, proto.MakePktID(0, 1), 0, 7, 4)
	s.stepSideband(109)
	if e := s.track[0][proto.MakePktID(0, 1)]; e.stashPort != -1 {
		t.Fatal("location delivered early")
	}
	s.stepSideband(110)
	if e := s.track[0][proto.MakePktID(0, 1)]; e.stashPort != 7 {
		t.Fatalf("location not applied: %+v", e)
	}
}

func TestE2EAckBeforeLocation(t *testing.T) {
	// Section IV-A's race: the ACK returns before the location message.
	cfg := PaperConfig()
	cfg.Mode = StashE2E
	s := NewSwitch(0, cfg, rngFor(cfg))
	pkt := proto.MakePktID(0, 2)
	s.track[0][pkt] = &e2eEntry{size: 8, stashPort: -1}
	pool := s.PortStash(9)
	pool.Reserve(8)
	for i := 0; i < 8; i++ {
		pool.PutCopy(proto.Flit{PktID: pkt, Size: 8, Seq: uint8(i)})
	}
	ack := &proto.Flit{PktID: pkt, Kind: proto.ACK, Flags: proto.FlagHead | proto.FlagTail}
	s.e2eOnAck(50, 0, ack)
	if e := s.track[0][pkt]; e == nil || !e.acked {
		t.Fatal("early ACK not remembered")
	}
	// Location arrives later; the entry must resolve to a delete.
	s.sbSend(60, sbLocation, pkt, 0, 9, 8)
	s.stepSideband(60 + cfg.SidebandLat)
	if s.track[0][pkt] != nil {
		t.Fatal("entry not cleaned up after late location")
	}
	// The delete must free the pool after its side-band latency.
	s.stepSideband(60 + 2*cfg.SidebandLat)
	if pool.Used() != 0 {
		t.Fatalf("stash not freed: %d flits", pool.Used())
	}
	if s.Counters.E2EDeletes != 1 {
		t.Fatalf("deletes %d", s.Counters.E2EDeletes)
	}
}

func rngFor(cfg *Config) *sim.RNG { return sim.NewRNG(cfg.Seed) }
