package core

import (
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// stepTile performs one tile crossbar cycle: collect per-(slot, output)
// candidate streams, run the separable output-first allocator, and move
// the granted flits from row buffers to column buffers.
//
// Row buffers are indexed by arrival stream; the flit's VC field carries
// the internal/outgoing VC, which keys the per-(tile output, VC) wormhole
// locks and the column buffers. Storage-VC head flits perform the second
// join-shortest-queue stage here, choosing the column channel (and thus
// the stash port) with the most free storage credits, and reserve a full
// packet of pool space on grant.
//
//stashsim:noalloc
func (s *Switch) stepTile(now sim.Tick, t *tile) {
	if t.occupied == 0 {
		return
	}
	cfg := s.cfg
	for slot := 0; slot < cfg.TileIn; slot++ {
		t.reqScr[slot] = 0
		occ := t.slotOcc[slot]
		if occ == 0 {
			continue
		}
		cand := t.candScr[slot]
		base := t.vcNext[slot]
		for k := 0; k < proto.NumVCs; k++ {
			stream := base + k
			if stream >= proto.NumVCs {
				stream -= proto.NumVCs
			}
			if occ&(1<<uint(stream)) == 0 {
				continue
			}
			rb := &t.rowBufs[slot][stream]
			f := rb.Front()
			var port int
			if stream == proto.VCStore {
				sl := &t.sLatch[slot]
				if sl.active {
					port = int(sl.port)
				} else {
					if !f.Head() {
						panic("core: storage-VC body flit without latch")
					}
					pp, ok := s.jsqPort(t, int(f.Size))
					if !ok {
						continue
					}
					port = pp
				}
			} else {
				port = int(f.Out)
			}
			o := cfg.TileOutOf(port)
			if t.reqScr[slot]&(1<<uint(o)) != 0 {
				continue // an earlier stream in rotation already requests o
			}
			vc := int(f.VC)
			lk := &t.outLock[o][vc]
			if f.Head() {
				if lk.active {
					continue
				}
			} else if !lk.active || lk.pkt != f.PktID {
				continue
			}
			if s.out[port].colBufs[t.row][vc].Len() >= cfg.ColBufFlits {
				continue
			}
			cand[o] = uint8(stream)
			t.reqScr[slot] |= 1 << uint(o)
		}
	}
	grants := t.alloc.Allocate(t.reqScr)
	for o, slot := range grants {
		if slot < 0 {
			continue
		}
		t.grants.Inc()
		s.m.colFlits.Inc()
		stream := int(t.candScr[slot][o])
		switch stream {
		case proto.VCStore:
			s.m.svcFlits.Inc()
		case proto.VCRetrieve:
			s.m.rvcFlits.Inc()
		}
		rb := &t.rowBufs[slot][stream]
		f := rb.Pop()
		if rb.Empty() {
			t.slotOcc[slot] &^= 1 << uint(stream)
		}
		t.occupied--
		port := t.col*cfg.TileOut + o
		if stream == proto.VCStore {
			sl := &t.sLatch[slot]
			if f.Head() {
				s.stash[port].Reserve(int(f.Size))
				sl.port, sl.active = uint8(port), true
			}
			f.Out = uint8(port)
			if f.Tail() {
				sl.active = false
			}
		}
		vc := int(f.VC)
		lk := &t.outLock[o][vc]
		if f.Head() {
			lk.pkt, lk.active = f.PktID, true
		}
		if f.Tail() {
			lk.active = false
		}
		op := &s.out[port]
		op.colBufs[t.row][vc].Push(f)
		op.colOcc++
		op.colMask |= 1 << uint(t.row*proto.NumVCs+vc)
		s.muxOcc |= 1 << uint(port)
		t.vcNext[slot] = stream + 1
		if t.vcNext[slot] == proto.NumVCs {
			t.vcNext[slot] = 0
		}
	}
	if t.occupied == 0 {
		s.tileOcc &^= 1 << uint(t.row*s.cfg.Cols+t.col)
	}
}

// jsqPort is the second join-shortest-queue stage: among this tile
// column's output ports, pick the one with the most free stash capacity
// that can hold the whole packet and whose storage column channel is
// usable (lock free, column buffer space).
//
//stashsim:noalloc
func (s *Switch) jsqPort(t *tile, size int) (int, bool) {
	cfg := s.cfg
	bestPort, bestFree := -1, size-1
	feasible := 0
	lo := t.col * cfg.TileOut
	hi := lo + cfg.TileOut
	if hi > s.radix {
		hi = s.radix
	}
	for q := lo; q < hi; q++ {
		if s.stash[q].Capacity() == 0 {
			continue
		}
		if t.outLock[cfg.TileOutOf(q)][proto.VCStore].active {
			continue
		}
		if s.out[q].colBufs[t.row][proto.VCStore].Len() >= cfg.ColBufFlits {
			continue
		}
		free := s.stash[q].Free()
		if free < size {
			continue
		}
		if cfg.RandomStashPlacement {
			// Ablation: reservoir-sample a feasible port uniformly.
			feasible++
			if s.rng.Intn(feasible) == 0 {
				bestPort = q
			}
			continue
		}
		if free > bestFree {
			bestFree = free
			bestPort = q
		}
	}
	return bestPort, bestPort >= 0
}
