package core

import (
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// The side-band network of Section IV-A: a dedicated low-bandwidth path
// carrying bookkeeping messages between the ports of one switch. Messages
// are small (packet tracking index, port numbers, stash buffer index) and
// experience a fixed latency. Because the latency is constant the queue is
// FIFO in delivery time.

type sbKind uint8

const (
	// sbLocation: stash port -> originating end port, reporting where a
	// completed end-to-end copy was stored.
	sbLocation sbKind = iota
	// sbDelete: end port -> stash port, freeing an acknowledged copy.
	sbDelete
	// sbRetransmit: end port -> stash port, requesting re-injection of a
	// NACKed packet's copy.
	sbRetransmit
)

//stashsim:owner partition
type sbMsg struct {
	at    int64
	kind  sbKind
	pktID uint64
	dst   uint8 // destination port of the message
	aux   uint8 // location: stash port; others unused
	size  uint8
}

// sbRing is a growable FIFO of side-band messages.
//
//stashsim:owner partition
type sbRing struct {
	buf  []sbMsg
	head int
	n    int
}

//stashsim:noalloc
func (r *sbRing) push(m sbMsg) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		//lint:allow allocfree -- amortized doubling; steady state stays within the high-water capacity
		nb := make([]sbMsg, size)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

//stashsim:noalloc
func (r *sbRing) popDue(now int64) (sbMsg, bool) {
	if r.n == 0 || r.buf[r.head].at > now {
		return sbMsg{}, false
	}
	m := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return m, true
}

// sbSend enqueues a side-band message for delivery after the configured
// side-band latency.
//
//stashsim:noalloc
func (s *Switch) sbSend(now sim.Tick, kind sbKind, pktID uint64, dst, aux, size uint8) {
	s.sideband.push(sbMsg{at: now + s.cfg.SidebandLat, kind: kind, pktID: pktID, dst: dst, aux: aux, size: size})
	s.Counters.SidebandMsgs++
}

// stepSideband delivers due side-band messages.
//
//stashsim:noalloc
func (s *Switch) stepSideband(now sim.Tick) {
	for {
		m, ok := s.sideband.popDue(now)
		if !ok {
			return
		}
		switch m.kind {
		case sbLocation:
			s.onLocation(now, m)
		case sbDelete:
			if s.stash[m.dst].Delete(m.pktID, int(m.size)) && s.parity != nil {
				// The freed member leaves its parity group; freed space
				// may also let a deferred group seal.
				minted, sealed := s.parity.OnDelete(m.pktID)
				s.created += int64(minted)
				s.Counters.ParityGroupsSealed += int64(sealed)
				s.m.paritySealed.Add(int64(sealed))
			}
		case sbRetransmit:
			s.retransmit(now, int(m.dst), m.pktID)
		}
	}
}

// onLocation processes a stash-location report at the originating end
// port, resolving any ACK/NACK that raced ahead of it (Section IV-A's
// "ACK could return before the location message" case).
//
//stashsim:noalloc
func (s *Switch) onLocation(now sim.Tick, m sbMsg) {
	e := s.track[m.dst][m.pktID]
	if e == nil {
		if s.cfg.Retrans.Enabled || s.cfg.FaultActive() {
			// The entry was abandoned (retry exhaustion) while the
			// location report was in flight: free the orphan copy.
			s.sbSend(now, sbDelete, m.pktID, m.aux, 0, m.size)
			return
		}
		panic("core: location message for untracked packet")
	}
	if e.lost {
		// The copy this report names was invalidated by a bank failure
		// while the report was in flight; recording its location would
		// resurrect a pointer into a dead pool.
		return
	}
	switch {
	case e.acked:
		s.sbSend(now, sbDelete, m.pktID, m.aux, 0, e.size)
		s.dropEntry(int(m.dst), m.pktID, e)
		s.Counters.E2EDeletes++
	case e.nacked:
		e.stashPort = int16(m.aux)
		e.nacked = false
		s.sbSend(now, sbRetransmit, m.pktID, m.aux, m.dst, e.size)
	default:
		e.stashPort = int16(m.aux)
	}
}

// e2eOnAck handles an end-to-end ACK observed at the originating end port
// as it exits toward the source endpoint.
//
//stashsim:noalloc
func (s *Switch) e2eOnAck(now sim.Tick, port int, f *proto.Flit) {
	e := s.track[port][f.PktID]
	if e == nil {
		// Duplicate ACK after completion (possible with
		// retransmissions); nothing left to do.
		return
	}
	if e.lost {
		// No stash copy remains. A positive ACK settles the entry with
		// nothing to free; a NACK leaves recovery to the source
		// endpoint's timer.
		if f.Flags&proto.FlagNack == 0 {
			s.dropEntry(port, f.PktID, e)
		}
		return
	}
	if f.Flags&proto.FlagNack != 0 {
		if s.cfg.Retrans.Enabled && !s.armRetry(now, port, f.PktID, e) {
			return
		}
		if e.stashPort >= 0 {
			s.sbSend(now, sbRetransmit, f.PktID, uint8(e.stashPort), uint8(port), e.size)
		} else {
			e.nacked = true
		}
		return
	}
	if e.stashPort >= 0 {
		s.sbSend(now, sbDelete, f.PktID, uint8(e.stashPort), 0, e.size)
		s.dropEntry(port, f.PktID, e)
		s.Counters.E2EDeletes++
	} else {
		e.acked = true
	}
}

// armRetry charges one retry attempt to a tracked entry and re-arms its
// ACK timer with exponential backoff. It returns false when the retry
// budget is exhausted, in which case the entry has been abandoned (stash
// copy freed, recovery left to the source endpoint's timer).
//
//stashsim:noalloc
func (s *Switch) armRetry(now sim.Tick, port int, pktID uint64, e *e2eEntry) bool {
	rp := &s.cfg.Retrans
	if int(e.retries) >= rp.SwitchRetries {
		s.abandonEntry(now, port, pktID, e)
		return false
	}
	e.retries++
	e.deadline = now + fault.Backoff(rp.SwitchTimeout, int(e.retries))
	s.retryQ = append(s.retryQ, retryRec{deadline: e.deadline, pktID: pktID, port: uint8(port)})
	return true
}

// abandonEntry gives up on local (stash) recovery of a tracked packet:
// the copy's space is freed and the tracking entry removed. The source
// endpoint's retransmission timer is now the packet's only cover.
//
//stashsim:noalloc
func (s *Switch) abandonEntry(now sim.Tick, port int, pktID uint64, e *e2eEntry) {
	if e.stashPort >= 0 && !e.lost {
		s.sbSend(now, sbDelete, pktID, uint8(e.stashPort), 0, e.size)
	}
	s.dropEntry(port, pktID, e)
	s.Counters.RetryAbandoned++
}

// stepRetry scans the armed ACK timers every Retrans.ScanEvery cycles.
// Stale records (entry settled, or re-armed under a different deadline)
// are dropped; due records trigger a stash resend and re-arm with
// backoff, or abandon the entry once the retry budget is spent.
//
//stashsim:noalloc
func (s *Switch) stepRetry(now sim.Tick) {
	rp := &s.cfg.Retrans
	if !rp.Enabled || len(s.retryQ) == 0 {
		return
	}
	if rp.ScanEvery > 1 && now%rp.ScanEvery != 0 {
		return
	}
	n := len(s.retryQ)
	w := 0
	for i := 0; i < n; i++ {
		rec := s.retryQ[i]
		e := s.track[rec.port][rec.pktID]
		if e == nil || e.deadline != rec.deadline {
			continue
		}
		if rec.deadline > now {
			s.retryQ[w] = rec
			w++
			continue
		}
		s.Counters.RetryTimeouts++
		if e.lost {
			s.abandonEntry(now, int(rec.port), rec.pktID, e)
			continue
		}
		if !s.armRetry(now, int(rec.port), rec.pktID, e) {
			continue
		}
		if e.stashPort >= 0 {
			s.sbSend(now, sbRetransmit, rec.pktID, uint8(e.stashPort), rec.port, e.size)
		}
		// stashPort < 0: the location report is still in flight (it
		// cannot be lost — the side band is fault-free); the re-armed
		// timer covers the wait.
	}
	// Keep the records armed during this scan, then drop the consumed
	// prefix.
	//lint:allow allocfree -- in-place compaction: appends a suffix of the same backing array, cap always suffices
	s.retryQ = append(s.retryQ[:w], s.retryQ[n:]...)
}

// findEntry locates the tracking entry of a packet across the end ports,
// returning the entry and its port (-1 when untracked).
//
//stashsim:noalloc
func (s *Switch) findEntry(pktID uint64) (*e2eEntry, int) {
	for p := range s.track {
		if e := s.track[p][pktID]; e != nil {
			return e, p
		}
	}
	return nil, -1
}

// reconRec is one in-flight parity reconstruction: at due, the rebuilt
// copy (payload carried in buf when retention is on) lands in the target
// bank and a fresh location report heads to the originating end port.
// Records are appended only by the serial fault hook (FailStashBank) and
// drained by Step, so the queue is partition-private like retryQ.
//
//stashsim:owner partition
type reconRec struct {
	due    int64
	pktID  uint64
	size   uint8
	origin uint8          // end port owning the tracking entry at begin time
	target uint8          // bank receiving the rebuilt copy (space reserved)
	buf    *proto.PktBuf  // retained payload extracted from the failed bank; may be nil
}

// FailStashBank injects a stash-bank failure at the given port. With
// parity groups enabled, the middle rung of the recovery ladder fires
// first: every completed copy in the failing bank that belongs to a
// sealed group — and still covers an unsettled tracked packet — is
// rebuilt from its k-1 survivors + parity into another bank, after a
// latency modeling the side-band reads. Everything else is invalidated
// and its tracking entry marked lost, degrading those packets to
// endpoint-timer recovery exactly as before. It returns the number of
// copies the failure destroyed (reconstructed or not) and how many of
// them were scheduled for reconstruction.
//
//stashsim:phase serial -- fault injection runs from the harness between cycles, never inside Step
func (s *Switch) FailStashBank(now sim.Tick, port int) (lost, reconstructed int) {
	pool := s.stash[port]
	if s.parity != nil {
		for _, pktID := range s.parity.FailCandidates(port) {
			e, ep := s.findEntry(pktID)
			if e == nil || e.acked || e.lost || e.recon {
				continue // settled, already degraded, or rebuilding: nothing to protect
			}
			size, ok := pool.CopySize(pktID)
			if !ok {
				continue // membership implies a completed copy; defensive
			}
			target, ok := s.parity.PickTarget(pktID, int(size), port)
			if !ok {
				continue // no bank can hold the rebuild: degrade to endpoint recovery
			}
			buf, _ := pool.ExtractCopy(pktID)
			s.stash[target].Reserve(int(size))
			s.parity.BeginRecon(pktID)
			e.recon = true
			e.stashPort = -1
			// The rebuild reads the k-1 surviving members plus parity over
			// the side band: one side-band traversal plus a flit-serial XOR
			// pass over the survivors.
			due := now + s.cfg.SidebandLat + int64(s.cfg.StashParity-1)*int64(size)
			s.reconQ = append(s.reconQ, reconRec{
				due: due, pktID: pktID, size: size,
				origin: uint8(ep), target: uint8(target), buf: buf,
			})
			reconstructed++
		}
	}
	lostIDs := pool.FailBank()
	for _, pktID := range lostIDs {
		if s.parity != nil {
			minted, sealed, protected := s.parity.OnCopyLost(pktID)
			s.created += int64(minted)
			s.Counters.ParityGroupsSealed += int64(sealed)
			s.m.paritySealed.Add(int64(sealed))
			if protected {
				s.Counters.StashReconFailed++
				s.m.reconFailed.Inc()
			}
		}
		e, p := s.findEntry(pktID)
		if e == nil {
			continue
		}
		if e.acked {
			// The ACK already settled delivery and was waiting for the
			// location report to free the copy; the failure freed it, so
			// the entry is complete.
			s.dropEntry(p, pktID, e)
		} else {
			e.lost = true
			e.stashPort = -1
		}
	}
	if s.parity != nil {
		// Space freed by the failure may let deferred groups seal; retried
		// only now so fresh parity was never placed into the failing bank.
		minted, sealed := s.parity.RetrySeals()
		s.created += int64(minted)
		s.Counters.ParityGroupsSealed += int64(sealed)
		s.m.paritySealed.Add(int64(sealed))
	}
	lost = len(lostIDs) + reconstructed
	s.Counters.StashCopiesLost += int64(lost)
	s.Counters.StashReconstructed += int64(reconstructed)
	s.m.reconStarted.Add(int64(reconstructed))
	return lost, reconstructed
}

// stepRecon completes due parity reconstructions, compacting the queue in
// place (records are only appended between cycles by the serial fault
// hook, so the scan never races an insertion).
//
//stashsim:noalloc
func (s *Switch) stepRecon(now sim.Tick) {
	w := 0
	for i := 0; i < len(s.reconQ); i++ {
		rec := s.reconQ[i]
		if rec.due > now {
			s.reconQ[w] = rec
			w++
			continue
		}
		s.finishRecon(now, rec)
	}
	s.reconQ = s.reconQ[:w]
}

// finishRecon lands one rebuilt copy: the reservation converts into a
// live copy in the target bank, the copy re-enrolls into a fresh parity
// group, and a location report re-enters the normal ACK/delete machinery
// at the originating end port (any ACK/NACK that raced the rebuild is
// resolved there exactly like a raced location report). When the tracked
// entry settled — or was replaced by a fresh source retransmission —
// while the rebuild was in flight, the orphan copy is dropped instead.
//
//stashsim:noalloc
func (s *Switch) finishRecon(now sim.Tick, rec reconRec) {
	e, ep := s.findEntry(rec.pktID)
	if e == nil || !e.recon || ep != int(rec.origin) {
		s.stash[rec.target].Unreserve(int(rec.size))
		if rec.buf != nil {
			rec.buf.Release()
		}
		return
	}
	e.recon = false
	s.stash[rec.target].InstallCopy(rec.pktID, int(rec.size), rec.buf)
	s.created += int64(rec.size)
	minted, sealed := s.parity.OnStore(rec.pktID, rec.size, int(rec.target))
	s.created += int64(minted)
	s.Counters.ParityGroupsSealed += int64(sealed)
	s.m.paritySealed.Add(int64(sealed))
	s.sbSend(now, sbLocation, rec.pktID, rec.origin, rec.target, rec.size)
}

// retransmit re-injects a retained stash copy into the network from the
// stash port holding it (error-injection extension; the paper identifies
// the mechanism but does not simulate it). The copy is re-routed from this
// switch as a fresh packet and flows out through the retrieval VC; its
// stash space stays committed until the eventual positive ACK deletes it.
//
//stashsim:noalloc
func (s *Switch) retransmit(now sim.Tick, stashPort int, pktID uint64) {
	pool := s.stash[stashPort]
	buf, ok := pool.TakeCopy(pktID)
	if !ok {
		return // copy already deleted by a racing positive ACK
	}
	// The buffer stays owned by the store entry; this reference covers the
	// re-injection read. Flits are copied by value into the retrieval queue
	// with their routing state rebuilt, so the retained payload is never
	// mutated and a later retry starts from the same bytes.
	s.Counters.E2ERetransmits++
	h := buf.Flits[0]
	s.tracer.Record(now, metrics.EvRetransmit, pktID, int32(s.ID), int32(stashPort), h.Src, h.Dst)
	h.Hops = 0
	h.Phase = proto.PhaseInject
	h.MidGroup = -1
	h.Flags &^= proto.FlagNonMinimal | proto.FlagECN
	dec := s.router.Route(&h, s.ID, s)
	nextVC := dec.NextVC
	if dec.Eject {
		nextVC = 0
	}
	for i := range buf.Flits {
		fl := buf.Flits[i]
		fl.Hops = 0
		fl.Phase = dec.Phase
		fl.MidGroup = dec.MidGroup
		fl.Flags = (fl.Flags &^ (proto.FlagNonMinimal | proto.FlagECN)) |
			proto.FlagStashCopy | proto.FlagRetransmit
		if dec.NonMinimal {
			fl.Flags |= proto.FlagNonMinimal
		}
		fl.OrigOut = uint8(dec.Out)
		fl.RestoreVC = nextVC
		pool.PushRetr(fl)
	}
	// The copy is queued for retrieval over the stash port's row bus.
	s.inActive |= 1 << uint(stashPort)
	s.created += int64(len(buf.Flits))
	buf.Release()
}
