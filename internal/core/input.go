package core

import (
	"stashsim/internal/buffer"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// tileAt returns the tile at (row, col).
//
//stashsim:noalloc
func (s *Switch) tileAt(row, col int) *tile {
	return &s.tiles[row*s.cfg.Cols+col]
}

// pushTile enqueues a flit into a tile's row buffer for the given input
// slot and stream, marking the tile in the switch's active-set mask. Row
// buffers are indexed by the *arrival* stream (the VC the packet occupied
// in the input buffer, or the S/R internal streams), never by the outgoing
// VC: two packets from one input port on different arrival VCs may share an
// outgoing VC (an ejecting packet keeps its arrival VC while a transit
// packet is upgraded), and indexing by outgoing VC would interleave them in
// one FIFO and corrupt the wormhole.
//
//stashsim:noalloc
func (s *Switch) pushTile(t *tile, f proto.Flit, slot, stream int) {
	t.rowBufs[slot][stream].Push(f)
	t.slotOcc[slot] |= 1 << uint(stream)
	t.occupied++
	s.tileOcc |= 1 << uint(t.row*s.cfg.Cols+t.col)
}

// rowBufSpace reports whether the row buffer at (row, col, slot, stream)
// can accept one more flit.
//
//stashsim:noalloc
func (s *Switch) rowBufSpace(row, col, slot, stream int) bool {
	return s.tileAt(row, col).rowBufs[slot][stream].Len() < s.cfg.RowBufFlits
}

// stepArrivals drains flits that have arrived on the input link into the
// input buffer. Space is guaranteed by upstream credits; the only possible
// stall is a bank conflict on the port memory write.
//
//stashsim:noalloc
func (s *Switch) stepArrivals(now sim.Tick, p *inPort) {
	for {
		f := p.link.PeekFlit(now)
		if f == nil {
			return
		}
		if !p.mem.Request(now, buffer.WriteNormal) {
			return
		}
		ff := *f
		p.link.DropFlit(now)
		p.buf.Push(ff)
	}
}

// stepRowBus performs one input port's row-bus cycle: update the ECN
// congested state, route newly-exposed head packets, evaluate the stash
// decisions of Section IV, arbitrate among the input VCs and the stash
// retrieval queue, and move the winning flit (plus its multi-drop stash
// duplicate, when end-to-end reliability is active) into row buffers.
//
//stashsim:noalloc
func (s *Switch) stepRowBus(now sim.Tick, p *inPort) {
	cfg := s.cfg
	if cfg.ECN.Enabled {
		p.congested = p.buf.Used() > p.congestAt
		if p.congested {
			s.Counters.CongestedCycles++
		}
	}
	pool := s.stash[p.id]
	hasRetr := pool.RetrLen() > 0
	occ := p.buf.Occupied()
	if occ == 0 && !hasRetr {
		return
	}

	row := cfg.RowOf(p.id)
	slot := cfg.SlotOf(p.id)
	var req [proto.NumNetVCs + 1]bool
	any := false
	for vc := 0; vc < proto.NumNetVCs; vc++ {
		if occ&(1<<uint(vc)) == 0 {
			continue
		}
		f := p.buf.Front(vc)
		lt := &p.latch[vc]
		if !lt.active {
			if !f.Head() {
				panic("core: non-head flit at idle input VC")
			}
			dec := s.router.Route(f, s.ID, s)
			s.tracer.Record(now, metrics.EvRoute, f.PktID, int32(s.ID), int32(dec.Out), f.Src, f.Dst)
			ivc := dec.NextVC
			if dec.Eject {
				// Ejecting packets keep their arrival VC through the
				// switch internals so packets from different arrival
				// VCs never interleave in one internal queue.
				ivc = f.VC
			}
			f.Phase = dec.Phase
			f.MidGroup = dec.MidGroup
			if dec.NonMinimal {
				f.Flags |= proto.FlagNonMinimal
			}
			*lt = routeLatch{
				active:   true,
				eject:    dec.Eject,
				out:      uint8(dec.Out),
				vc:       ivc,
				stashCol: -1,
			}
		}

		ok := false
		if lt.started {
			if lt.redirect {
				ok = s.rowBufSpace(row, int(lt.stashCol), slot, proto.VCStore)
			} else {
				ok = s.rowBufSpace(row, cfg.ColOf(int(lt.out)), slot, vc)
				if ok && lt.stashCol >= 0 {
					ok = s.rowBufSpace(row, int(lt.stashCol), slot, proto.VCStore)
				}
			}
		} else {
			// Head flit: (re)evaluate the stash decision this cycle.
			lt.stashCol = -1
			lt.redirect = false
			normalOK := s.rowBufSpace(row, cfg.ColOf(int(lt.out)), slot, vc)
			// The storage stream of this input's row buffers is a
			// single FIFO; only one input VC may hold it at a time
			// (wormhole), or stash packets from different VCs would
			// interleave and wedge the tile locks.
			sFree := p.sVC == -1 || p.sVC == int8(vc)
			switch {
			case cfg.Mode == StashE2E && p.isEnd && f.Kind == proto.Data:
				if s.track[p.id][f.PktID] != nil {
					// A source retransmission of a packet whose tracking
					// entry is still live (its stash copy covers it, or
					// the entry is marked lost awaiting abandonment):
					// forward without minting a second copy, or the pool
					// would leak one reservation per duplicate.
					ok = normalOK
					break
				}
				// Section IV-A: the packet advances only when both the
				// normal path and a storage path are unblocked.
				col, found := s.jsqColumn(row, slot, int(f.Size))
				if !found {
					if cfg.StashBypass {
						// Graceful degradation: forward uncovered; the
						// source endpoint's timer is the packet's only
						// recovery. Counted per packet in moveFromInput.
						ok = normalOK
						break
					}
					s.Counters.StashFullStalls++
					s.m.stashFullStalls.Inc()
				} else if normalOK && sFree {
					lt.stashCol = int8(col)
					ok = true
				}
			case cfg.Mode == StashCongestion && p.congested && lt.eject &&
				f.Kind == proto.Data && !normalOK && sFree:
				// Section IV-B: all four stash conditions hold —
				// congested input, destined to an end port, blocked on
				// the normal VC, storage path available.
				if col, found := s.jsqColumn(row, slot, int(f.Size)); found {
					lt.stashCol = int8(col)
					lt.redirect = true
					ok = true
				}
			default:
				ok = normalOK
			}
		}
		if ok {
			req[vc] = true
			any = true
		}
	}
	if hasRetr {
		f := pool.RetrFront()
		if s.rowBufSpace(row, cfg.ColOf(int(f.OrigOut)), slot, proto.VCRetrieve) {
			req[proto.NumNetVCs] = true
			any = true
		}
	}
	if !any {
		return
	}
	w := p.arbiter.Grant(req[:])
	if w < 0 {
		return
	}
	if w == proto.NumNetVCs {
		// Stash retrieval shares the row bus with normal input traffic.
		// The stored flits live in the port's output-side memory (they
		// arrived through the output multiplexer), so the retrieval read
		// contends there with the transmission read — this is the
		// four-port scenario the two-bank organization of Section III-B
		// resolves.
		if !s.out[p.id].mem.Request(now, buffer.ReadStash) {
			// Busy-bank conflict. With parity groups, a read of a member
			// of a sealed group is served degraded instead: the flit is
			// reconstructed by XOR of the k-1 survivors + parity sitting
			// in other (idle) banks — Cohen & Cassuto's coded-read case.
			// The survivors' bank budgets are not charged; the model
			// claims only that the conflicted bank is not touched.
			if s.parity == nil || !s.parity.CanServeDegraded(pool.RetrFront().PktID) {
				return
			}
			s.Counters.StashDegradedReads++
			s.m.degradedReads.Inc()
		}
		f := pool.RetrPop()
		s.Counters.StashRetrieves++
		s.m.stashRetrieves.Inc()
		if f.Head() {
			s.tracer.Record(now, metrics.EvStashRetrieve, f.PktID, int32(s.ID), int32(p.id), f.Src, f.Dst)
		}
		f.VC = proto.VCRetrieve
		f.Out = f.OrigOut
		s.pushTile(s.tileAt(row, cfg.ColOf(int(f.Out))), f, slot, proto.VCRetrieve)
		return
	}
	if !p.mem.Request(now, buffer.ReadNormal) {
		return
	}
	s.moveFromInput(now, p, w, row, slot)
}

// moveFromInput transfers the winning VC's front flit across the row bus,
// returning a credit upstream, applying ECN marking, and exploiting the
// row bus's multi-drop broadcast to deposit the end-to-end stash duplicate
// in the same cycle.
//
//stashsim:noalloc
func (s *Switch) moveFromInput(now sim.Tick, p *inPort, vc, row, slot int) {
	cfg := s.cfg
	lt := &p.latch[vc]
	f, credit := p.buf.Pop(vc)
	p.link.SendCredit(now, credit)
	s.Counters.FlitsSwitched++
	if cfg.ECN.Enabled && p.congested && f.Kind == proto.Data && f.Head() {
		f.Flags |= proto.FlagECN
		s.Counters.ECNMarks++
	}
	if lt.redirect {
		// Congestion stashing: the whole packet is absorbed on the
		// storage VC; its intended output and VC travel along for the
		// later retrieval.
		if f.Head() {
			s.Counters.HoLAbsorbed++
			s.m.holAbsorbed.Inc()
			if s.m.jsqPick != nil {
				s.m.jsqPick[lt.stashCol].Inc()
			}
		}
		f.OrigOut = lt.out
		f.RestoreVC = lt.vc
		f.Out = 0xFF // decided by JSQ at the tile
		f.VC = proto.VCStore
		s.pushTile(s.tileAt(row, int(lt.stashCol)), f, slot, proto.VCStore)
	} else {
		nf := f
		nf.Out = lt.out
		nf.VC = lt.vc
		s.pushTile(s.tileAt(row, cfg.ColOf(int(lt.out))), nf, slot, vc)
		if lt.stashCol >= 0 {
			// Multi-drop broadcast: the stash copy rides the same bus
			// cycle into a second tile's storage VC.
			cp := f
			cp.Flags |= proto.FlagStashCopy
			cp.Out = 0xFF
			cp.VC = proto.VCStore
			s.created++
			s.pushTile(s.tileAt(row, int(lt.stashCol)), cp, slot, proto.VCStore)
			if f.Head() {
				e := s.newEntry()
				e.size = f.Size
				e.stashPort = -1
				if cfg.Retrans.Enabled {
					e.deadline = now + cfg.Retrans.SwitchTimeout
					s.retryQ = append(s.retryQ, retryRec{
						deadline: e.deadline, pktID: f.PktID, port: uint8(p.id)})
				}
				s.track[p.id][f.PktID] = e
				s.Counters.E2ETracked++
				if s.m.jsqPick != nil {
					s.m.jsqPick[lt.stashCol].Inc()
				}
			}
		} else if cfg.Mode == StashE2E && p.isEnd && f.Kind == proto.Data &&
			f.Head() && s.track[p.id][f.PktID] == nil {
			// Bypass: an untracked data packet advanced without a stash
			// copy (StashBypass on a full stash).
			s.Counters.StashBypassed++
		}
	}
	if lt.redirect || lt.stashCol >= 0 {
		if f.Tail() {
			p.sVC = -1
		} else {
			p.sVC = int8(vc)
		}
	}
	if f.Tail() {
		lt.active = false
	} else {
		lt.started = true
	}
}

// jsqColumn implements the first stage of join-shortest-queue stash path
// selection (Section III-A): among the tile columns reachable from this
// input's row whose storage-VC row buffer has space, pick the one whose
// best port has the most free stash capacity, requiring at least size
// flits. Ports without stash buffers are statically omitted.
//
//stashsim:noalloc
func (s *Switch) jsqColumn(row, slot, size int) (int, bool) {
	cfg := s.cfg
	if cfg.RandomStashPlacement {
		// Ablation: uniform choice among feasible columns.
		feasible := 0
		pick := -1
		for c := 0; c < cfg.Cols; c++ {
			if !s.rowBufSpace(row, c, slot, proto.VCStore) || s.bestStashInColumn(c) < size {
				continue
			}
			feasible++
			if s.rng.Intn(feasible) == 0 {
				pick = c
			}
		}
		return pick, pick >= 0
	}
	bestCol, bestFree := -1, size-1
	for c := 0; c < cfg.Cols; c++ {
		if !s.rowBufSpace(row, c, slot, proto.VCStore) {
			continue
		}
		free := s.bestStashInColumn(c)
		if free > bestFree {
			bestFree = free
			bestCol = c
		}
	}
	return bestCol, bestCol >= 0
}

// bestStashInColumn returns the largest free stash capacity among the
// output ports served by tile column c.
//
//stashsim:noalloc
func (s *Switch) bestStashInColumn(c int) int {
	cfg := s.cfg
	best := 0
	lo := c * cfg.TileOut
	hi := lo + cfg.TileOut
	if hi > s.radix {
		hi = s.radix
	}
	for q := lo; q < hi; q++ {
		if s.stash[q].Capacity() == 0 {
			continue
		}
		if free := s.stash[q].Free(); free > best {
			best = free
		}
	}
	return best
}
