package core

import (
	"math/bits"

	"stashsim/internal/buffer"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// effVC returns the output-buffer VC a column-buffer flit is heading to:
// retrieval flits are returned to their original VC after the multiplexer
// (Section III-A); everything else keeps its VC.
//
//stashsim:noalloc
func effVC(f *proto.Flit) int {
	if f.VC == proto.VCRetrieve {
		return int(f.RestoreVC)
	}
	return int(f.VC)
}

// stepMux performs one output-multiplexer cycle: round-robin among the
// (row, VC) column buffer heads, moving one flit into the output buffer or
// — for storage-VC flits — into the port's stash pool.
//
//stashsim:noalloc
func (s *Switch) stepMux(now sim.Tick, op *outPort) {
	if op.colOcc == 0 {
		return
	}
	cfg := s.cfg
	n := cfg.Rows * proto.NumVCs
	a := &op.muxArb
	start := a.Next()
	// Walk only the non-empty column buffers, in round-robin order from the
	// arbiter pointer: rotate the occupancy mask so bit k stands for index
	// (start+k) mod n, then peel set bits. Visiting order is identical to
	// the full scan, so arbitration outcomes are unchanged.
	rot := op.colMask >> uint(start)
	if start > 0 {
		rot |= op.colMask << uint(n-start)
	}
	if n < 64 {
		rot &= uint64(1)<<uint(n) - 1
	}
	for ; rot != 0; rot &= rot - 1 {
		idx := start + bits.TrailingZeros64(rot)
		if idx >= n {
			idx -= n
		}
		row := idx / proto.NumVCs
		vc := idx % proto.NumVCs
		rb := &op.colBufs[row][vc]
		f := rb.Front()
		ev := effVC(f)
		lk := &op.muxLock[ev]
		if f.Head() {
			if lk.active {
				continue
			}
		} else if !lk.active || lk.pkt != f.PktID || lk.row != int8(row) {
			continue
		}
		if vc == proto.VCStore {
			// Stash arrival: pool space was reserved at the tile.
			if !op.mem.Request(now, buffer.WriteStash) {
				continue
			}
		} else {
			if op.buf.Free() <= 0 {
				continue
			}
			if !op.mem.Request(now, buffer.WriteNormal) {
				continue
			}
		}
		// Grant.
		ff := rb.Pop()
		op.colOcc--
		if op.colOcc == 0 {
			s.muxOcc &^= 1 << uint(op.id)
		}
		if rb.Empty() {
			op.colMask &^= 1 << uint(idx)
		}
		if ff.Head() {
			lk.row, lk.pkt, lk.active = int8(row), ff.PktID, true
		}
		if ff.Tail() {
			lk.active = false
		}
		a.Advance(idx)
		if vc == proto.VCStore {
			s.stashArrival(now, op, ff)
		} else {
			if ff.VC == proto.VCRetrieve {
				ff.VC = ff.RestoreVC
			}
			op.buf.Push(ff)
			s.outActive |= 1 << uint(op.id)
		}
		return
	}
}

// stashArrival deposits one storage-VC flit into the port's stash pool.
// Completed end-to-end copies trigger the side-band location message back
// to the originating end port.
//
//stashsim:noalloc
func (s *Switch) stashArrival(now sim.Tick, op *outPort, f proto.Flit) {
	pool := s.stash[op.id]
	s.Counters.StashStores++
	s.m.stashStores.Inc()
	if f.Head() {
		s.tracer.Record(now, metrics.EvStashStore, f.PktID, int32(s.ID), int32(op.id), f.Src, f.Dst)
	}
	if f.Flags&proto.FlagStashCopy != 0 {
		if pool.PutCopy(f) {
			if s.parity != nil {
				// The completed copy enrolls into a parity group; filling
				// one mints its XOR parity flit run in another bank.
				minted, sealed := s.parity.OnStore(f.PktID, f.Size, op.id)
				s.created += int64(minted)
				s.Counters.ParityGroupsSealed += int64(sealed)
				s.m.paritySealed.Add(int64(sealed))
			}
			origin := int(f.Src) % s.cfg.Topo.P
			s.sbSend(now, sbLocation, f.PktID, uint8(origin), uint8(op.id), f.Size)
		}
		return
	}
	pool.PutCongested(f)
	// The flit is now queued for retrieval over the port's row bus.
	s.inActive |= 1 << uint(op.id)
	if f.Head() {
		s.Counters.CongStashed++
		if f.Class == proto.ClassVictim {
			s.Counters.CongStashedVict++
		}
	}
}

// stepOutput performs one output-port cycle: release flits whose
// link-level retention window has passed and — when the serialization
// accumulator allows — transmit one flit, observing end-to-end ACKs at end
// ports on the way out. Returned credits are folded into the counter by the
// caller's CreditPending/RecvCreditsInto pair before this runs.
//
// Active-set scheduling may skip an idle port for whole stretches of
// cycles, so the serialization accumulator advances by formula rather than
// by per-cycle increment: each elapsed cycle would have added RateNum while
// acc was below RateDen, and the closed form reproduces that exactly (an
// idle port cannot have sent, so no cycle in the gap decremented acc).
//
//stashsim:noalloc
func (s *Switch) stepOutput(now sim.Tick, op *outPort) {
	cfg := s.cfg
	op.buf.Release(now)
	elapsed := now - op.accTick
	op.accTick = now
	if op.acc < cfg.RateDen {
		need := int64((cfg.RateDen - op.acc + cfg.RateNum - 1) / cfg.RateNum)
		if elapsed > need {
			elapsed = need
		}
		op.acc += int(elapsed) * cfg.RateNum
	}
	if op.acc < cfg.RateDen {
		return
	}
	occ := op.buf.Occupied()
	if occ == 0 {
		return
	}
	var req [proto.NumNetVCs]bool
	any := false
	for vc := 0; vc < proto.NumNetVCs; vc++ {
		if occ&(1<<uint(vc)) == 0 {
			continue
		}
		if op.credits != nil && op.credits.Avail(vc) <= 0 {
			continue
		}
		req[vc] = true
		any = true
	}
	if !any {
		// Flits are queued but every occupied VC is blocked on downstream
		// credits: a credit-stall cycle on this output.
		s.CreditStallCycles++
		s.m.creditStalls.Inc()
		return
	}
	vc := op.sendArb.Grant(req[:])
	if vc < 0 {
		return
	}
	if !op.mem.Request(now, buffer.ReadNormal) {
		return
	}
	f := op.buf.Send(vc, now+op.rtt)
	if op.credits != nil {
		op.credits.Take(&f)
	}
	if op.isEnd && cfg.Mode == StashE2E && f.Kind == proto.ACK && f.Head() {
		s.e2eOnAck(now, op.id, &f)
	}
	if op.class != topo.Endpoint {
		f.Hops++
	}
	op.link.SendFlit(now, f)
	if op.link.synth.n > 0 {
		// A fault drop synthesized a future credit on this link; keep the
		// port in the credit-armed set until it drains (no wake flag will
		// announce a producer-side synthesized credit).
		s.armedCred |= 1 << uint(op.id)
	}
	op.acc -= cfg.RateDen
	s.Counters.FlitsSent++
}
