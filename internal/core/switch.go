package core

import (
	"fmt"
	"math/bits"

	"stashsim/internal/arb"
	"stashsim/internal/buffer"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/route"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// Counters aggregates per-switch event counts for probes and tests.
// Written only by the owning switch's Step; probes read them while the
// workers are parked at the barrier.
//
//stashsim:owner partition
type Counters struct {
	FlitsSwitched   int64 // flits that crossed the row bus
	FlitsSent       int64 // flits transmitted on output links
	StashStores     int64 // flits written into stash pools
	StashRetrieves  int64 // flits read back out of stash pools
	ECNMarks        int64 // packets marked by congested inputs
	CongestedCycles int64 // port-cycles spent in the congested state
	StashFullStalls int64 // cycles an input stalled on storage-VC backpressure
	E2ETracked      int64 // packets entered into end-to-end tracking
	E2EDeletes      int64 // stash copies freed by positive ACKs
	E2ERetransmits  int64 // retransmissions triggered by NACKs
	SidebandMsgs    int64 // bookkeeping messages carried by the side-band network
	CongStashed     int64 // packets absorbed by congestion stashing
	CongStashedVict int64 // victim-class packets absorbed (diagnostics)
	HoLAbsorbed     int64 // HoL-blocked packets diverted to stash at the input
	RetryTimeouts   int64 // switch-side ACK timeouts fired
	RetryAbandoned  int64 // tracked packets abandoned after retry exhaustion or copy loss
	StashCopiesLost int64 // live stash copies invalidated by injected bank failures
	StashBypassed   int64 // packets forwarded without a stash copy (bypass on full stash)

	// Erasure-coded stash banks (StashParity > 0).
	StashReconstructed int64 // bank-failed copies scheduled for rebuild from parity-group survivors
	StashReconFailed   int64 // parity-protected copies lost anyway (no rebuild space, or >=2 group losses)
	ParityGroupsSealed int64 // parity groups sealed (one XOR parity flit run minted each)
	StashDegradedReads int64 // stash read flits served via parity despite a busy bank
}

// switchMetrics holds the per-switch registry handles. It is a value
// struct whose fields stay nil when metrics are disabled (the default):
// every handle method is nil-receiver-safe, so instrumentation sites cost
// one predictable branch and zero allocations on the disabled path.
type switchMetrics struct {
	cycles          *metrics.Counter   // switch cycles stepped
	svcFlits        *metrics.Counter   // storage-VC flits crossing tile column channels
	rvcFlits        *metrics.Counter   // retrieval-VC flits crossing tile column channels
	colFlits        *metrics.Counter   // all flits crossing tile column channels
	creditStalls    *metrics.Counter   // output cycles stalled with flits queued but no credits
	holAbsorbed     *metrics.Counter   // packets absorbed by congestion stashing (HoL events)
	stashStores     *metrics.Counter   // flits written into stash pools
	stashRetrieves  *metrics.Counter   // flits read back out of stash pools
	stashFullStalls *metrics.Counter   // cycles an input stalled on storage-path backpressure
	reconStarted    *metrics.Counter   // parity reconstructions begun after bank failures
	reconFailed     *metrics.Counter   // parity-protected copies lost without reconstruction
	paritySealed    *metrics.Counter   // parity groups sealed
	degradedReads   *metrics.Counter   // stash read flits served via parity on busy banks
	jsqPick         []*metrics.Counter // JSQ column-pick distribution (per tile column)
}

// routeLatch is the per-(input,VC) wormhole state holding the routing
// decision of the packet currently crossing the row bus.
//
//stashsim:owner partition
type routeLatch struct {
	active   bool
	started  bool // head flit has left the input buffer
	eject    bool
	redirect bool  // congestion mode: packet diverted entirely to stash
	out      uint8 // output port of the normal path
	vc       uint8 // switch-internal (and outgoing-channel) VC
	stashCol int8  // tile column of the stash path; -1 when none
}

//stashsim:owner partition
type inPort struct {
	id        int
	class     topo.LinkClass
	isEnd     bool
	link      *Link
	buf       *buffer.DAMQ
	latch     [proto.NumNetVCs]routeLatch
	arbiter   arb.RoundRobin // NumNetVCs input VCs + 1 retrieval candidate
	congested bool
	congestAt int  // occupancy threshold in flits
	sVC       int8 // input VC holding the storage stream (-1 free)
	mem       buffer.BankedMem
}

// tileLock serializes packets per (tile output, VC) so flits of different
// packets never interleave on one column channel VC.
//
//stashsim:owner partition
type tileLock struct {
	pkt    uint64
	active bool
}

// stashLatch pins the JSQ-chosen stash port for the S-VC packet currently
// crossing a tile from one input slot.
//
//stashsim:owner partition
type stashLatch struct {
	port   uint8
	active bool
}

//stashsim:owner partition
type tile struct {
	row, col int
	rowBufs  [][]buffer.Ring // [TileIn][NumVCs]
	alloc    *arb.Separable
	vcNext   []int        // per-slot stream rotation pointer
	outLock  [][]tileLock // [TileOut][NumVCs]
	sLatch   []stashLatch // per slot
	occupied int          // total queued flits (activity gate)
	slotOcc  []uint16     // per-slot bitmask of non-empty streams
	reqScr   []uint64     // scratch request masks
	candScr  [][]uint8    // scratch candidate stream per (slot, out)
	grants   *metrics.Counter
}

// muxLock serializes packets per output-buffer VC across the R column
// channels feeding one output multiplexer.
//
//stashsim:owner partition
type muxLock struct {
	row    int8
	pkt    uint64
	active bool
}

//stashsim:owner partition
type outPort struct {
	id      int
	class   topo.LinkClass
	isEnd   bool
	link    *Link
	buf     *buffer.OutBuf
	colBufs [][]buffer.Ring // [Rows][NumVCs]
	colOcc  int             // total flits in column buffers (activity gate)
	colMask uint64          // bitmask of non-empty (row*NumVCs+vc) buffers
	muxLock [proto.NumVCs]muxLock
	muxArb  arb.RoundRobin // Rows*NumVCs candidates
	sendArb arb.RoundRobin // network VCs
	credits *buffer.CreditCounter
	acc     int
	accTick int64 // last cycle the serialization accumulator advanced
	mem     buffer.BankedMem
	rtt     int64
}

// e2eEntry tracks one outstanding packet at its originating end port.
//
//stashsim:owner partition
type e2eEntry struct {
	size      uint8
	stashPort int16 // -1 until the location message arrives
	acked     bool
	nacked    bool

	// Retransmission-timer state (Retrans.Enabled only).
	deadline int64 // cycle the armed ACK timer fires; doubles per retry
	retries  uint8 // stash resends attempted so far
	lost     bool  // the stash copy was invalidated by a bank failure
	recon    bool  // a parity reconstruction of the copy is in flight
}

// retryRec is one armed switch-side ACK timer. Records live in an
// append-ordered slice scanned lazily: a record whose entry has settled,
// or whose deadline no longer matches the entry (re-armed with backoff),
// is stale and dropped on the next scan. This keeps the timer wheel free
// of map iteration, preserving the determinism contract.
//
//stashsim:owner partition
type retryRec struct {
	deadline int64
	pktID    uint64
	port     uint8
}

// Switch is one tiled (optionally stashing) switch instance. All of its
// state is private to the partition whose worker steps it; cross-switch
// traffic goes through Link rings, never through another Switch's fields.
//
//stashsim:owner partition
type Switch struct {
	ID     int
	cfg    *Config
	router *route.Router
	rng    *sim.RNG

	// CreditStallCycles counts output cycles stalled with flits queued but
	// no downstream credits. It is a plain always-on tap for the flight
	// recorder (the metrics counter equivalent only exists when a registry
	// is attached) and is deliberately NOT part of Counters, whose JSON
	// shape is pinned by the golden tests. Written only by this switch's
	// Step; read from the serial PostCycle hook.
	CreditStallCycles int64

	radix int
	in    []inPort
	out   []outPort
	tiles []tile              // Rows*Cols, row-major
	stash []*buffer.StashPool // per port; nil-capacity pools allowed

	sideband sbRing
	track    []map[uint64]*e2eEntry // per end port
	retryQ   []retryRec             // armed switch-side ACK timers

	// Erasure-coded stash banks (cfg.StashParity > 0): parity tracks the
	// groups striped across this switch's banks; reconQ holds in-flight
	// reconstructions of bank-failed members (populated only by the serial
	// fault hook, drained by Step).
	parity *buffer.ParityTracker
	reconQ []reconRec

	// Active-set masks: tileOcc has a bit per tile with queued flits, muxOcc
	// a bit per output port with occupied column buffers, inActive a bit per
	// input port with buffered flits or pending stash retrievals, outActive
	// a bit per output port with queued or retention-held flits. Step walks
	// their set bits instead of touching every tile and port struct, so a
	// quiet region of the switch costs no cache traffic at all.
	tileOcc   uint64
	muxOcc    uint64
	inActive  uint64
	outActive uint64

	// Link wake state. flitWake and credWake are the parity wake boards the
	// attached links' producers write into (see Link); Step scans slab
	// (now+1)&1 each cycle — one cache line — instead of probing every link
	// struct. armedIn and armedCred carry over the ports whose link rings
	// still hold entries not yet due, which no future wake flag will
	// re-announce.
	flitWake  [2][64]bool
	credWake  [2][64]bool
	armedIn   uint64
	armedCred uint64

	// entryFree recycles settled e2eEntry records (LIFO), so steady-state
	// tracking churn allocates nothing once the high-water mark is reached.
	entryFree []*e2eEntry

	// created counts flits minted inside this switch: end-to-end stash
	// duplicates dropped off the row bus and retransmission copies taken
	// from retained store entries. The invariant checker balances it
	// against the stash pools' freed counts and the resident population.
	created int64

	Counters Counters

	m      switchMetrics
	tracer *metrics.Tracer
}

// NewSwitch builds switch id under the shared configuration. Links are
// attached afterwards by the network wiring (AttachInLink/AttachOutLink).
func NewSwitch(id int, cfg *Config, rng *sim.RNG) *Switch {
	d := cfg.Topo
	radix := d.Radix()
	if cfg.Rows*cfg.Cols > 64 || radix > 64 {
		panic("core: switch exceeds the 64-tile/64-port active-set masks")
	}
	s := &Switch{
		ID:     id,
		cfg:    cfg,
		router: route.New(d, cfg.Route, rng.Derive(uint64(id)*2+1)),
		rng:    rng.Derive(uint64(id) * 2),
		radix:  radix,
		in:     make([]inPort, radix),
		out:    make([]outPort, radix),
		tiles:  make([]tile, cfg.Rows*cfg.Cols),
		stash:  make([]*buffer.StashPool, radix),
		track:  make([]map[uint64]*e2eEntry, d.P),
	}
	for p := 0; p < radix; p++ {
		class := d.PortClass(p)
		ip := &s.in[p]
		ip.id = p
		ip.class = class
		ip.isEnd = class == topo.Endpoint
		ip.buf = buffer.NewDAMQ(cfg.NormalInCap(class), proto.NumNetVCs)
		ip.arbiter = arb.NewRoundRobin(proto.NumNetVCs + 1)
		ip.congestAt = int(cfg.ECN.CongestFrac * float64(ip.buf.Capacity()))
		ip.sVC = -1
		ip.mem.Ideal = !cfg.BankModel

		op := &s.out[p]
		op.id = p
		op.class = class
		op.isEnd = class == topo.Endpoint
		op.buf = buffer.NewOutBuf(cfg.NormalOutCap(class), proto.NumNetVCs)
		op.colBufs = make([][]buffer.Ring, cfg.Rows)
		for r := range op.colBufs {
			op.colBufs[r] = make([]buffer.Ring, proto.NumVCs)
		}
		op.muxArb = arb.NewRoundRobin(cfg.Rows * proto.NumVCs)
		op.sendArb = arb.NewRoundRobin(proto.NumNetVCs)
		op.mem.Ideal = !cfg.BankModel
		op.rtt = 2 * cfg.Lat.Of(class)
		op.accTick = -1

		s.stash[p] = buffer.NewStashPool(cfg.StashCap(class), cfg.RetainPayload)
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			t := &s.tiles[r*cfg.Cols+c]
			t.row, t.col = r, c
			t.rowBufs = make([][]buffer.Ring, cfg.TileIn)
			t.candScr = make([][]uint8, cfg.TileIn)
			for i := range t.rowBufs {
				t.rowBufs[i] = make([]buffer.Ring, proto.NumVCs)
				t.candScr[i] = make([]uint8, cfg.TileOut)
			}
			t.alloc = arb.NewSeparable(cfg.TileIn, cfg.TileOut)
			t.vcNext = make([]int, cfg.TileIn)
			t.outLock = make([][]tileLock, cfg.TileOut)
			for o := range t.outLock {
				t.outLock[o] = make([]tileLock, proto.NumVCs)
			}
			t.sLatch = make([]stashLatch, cfg.TileIn)
			t.slotOcc = make([]uint16, cfg.TileIn)
			t.reqScr = make([]uint64, cfg.TileIn)
		}
	}
	for p := 0; p < d.P; p++ {
		s.track[p] = make(map[uint64]*e2eEntry)
	}
	if cfg.StashParity > 0 {
		s.parity = buffer.NewParityTracker(cfg.StashParity, s.stash)
	}
	return s
}

// AttachInLink wires the incoming link of input port p and registers this
// switch's flit wake board with it, so the link's producer announces sends
// instead of the switch probing the link every cycle.
func (s *Switch) AttachInLink(p int, l *Link) {
	s.in[p].link = l
	l.flitWake = &s.flitWake
	l.flitPort = uint8(p)
}

// AttachOutLink wires the outgoing link of output port p. The credit
// counter mirrors the downstream input buffer; pass zero capacity for
// endpoint-facing ports (endpoints sink flits without credits). The
// switch's credit wake board is registered with the link so the
// downstream receiver announces credit returns.
func (s *Switch) AttachOutLink(p int, l *Link, downstreamCap int) {
	s.out[p].link = l
	l.credWake = &s.credWake
	l.credPort = uint8(p)
	if downstreamCap > 0 {
		s.out[p].credits = buffer.NewCreditCounter(downstreamCap, proto.NumNetVCs)
	}
}

// DrainEpochFlits folds one epoch's staged arrivals on input port p into
// the port's ring and arms the port if anything is now pending. It runs on
// the switch's owning partition worker at an epoch boundary, after the
// epoch barrier ordered the remote producer's slab writes before this
// read (the slab index is (epoch-1)&1 — the slab producers are no longer
// filling).
//
//stashsim:phase parallel
//stashsim:noalloc
func (s *Switch) DrainEpochFlits(p int, slab int) {
	l := s.in[p].link
	l.drainEpochFlits(slab)
	if l.flits.Len() > 0 {
		s.armedIn |= 1 << uint(p)
	}
}

// DrainEpochCredits is DrainEpochFlits for the reverse path of output
// port p: it folds the consumer's returned credits staged last epoch and
// arms the credit scan if any credit (returned or fault-synthesized) is
// outstanding.
//
//stashsim:phase parallel
//stashsim:noalloc
func (s *Switch) DrainEpochCredits(p int, slab int) {
	l := s.out[p].link
	l.drainEpochCredits(slab)
	if l.credits.n > 0 || l.synth.n > 0 {
		s.armedCred |= 1 << uint(p)
	}
}

// ReannounceIn arms input port p if its link ring holds undelivered flits.
// Used when a link changes delivery mode between runs: wake flags raised
// under the old mode may already be consumed, so pending work is
// re-announced directly.
//
//stashsim:phase serial
func (s *Switch) ReannounceIn(p int) {
	if s.in[p].link.flits.Len() > 0 {
		s.armedIn |= 1 << uint(p)
	}
}

// ReannounceCred is ReannounceIn for the credit path of output port p.
//
//stashsim:phase serial
func (s *Switch) ReannounceCred(p int) {
	l := s.out[p].link
	if l.credits.n > 0 || l.synth.n > 0 {
		s.armedCred |= 1 << uint(p)
	}
}

// Config returns the shared configuration.
func (s *Switch) Config() *Config { return s.cfg }

// OutputQueue implements route.Oracle: the occupancy signal used by the
// adaptive routing decision is the count of flits awaiting transmission at
// an output port plus its column-buffer backlog.
func (s *Switch) OutputQueue(port int) int {
	return s.out[port].buf.Queued() + s.out[port].colOcc
}

// InputOccupancy returns the occupancy of an input port's normal buffer.
func (s *Switch) InputOccupancy(port int) int { return s.in[port].buf.Used() }

// Congested reports whether an input port is in the ECN congested state.
func (s *Switch) Congested(port int) bool { return s.in[port].congested }

// StashUsed returns the committed stash occupancy in flits across the
// switch (including packet reservations in flight).
func (s *Switch) StashUsed() int {
	total := 0
	for _, p := range s.stash {
		total += p.Used()
	}
	return total
}

// StashReserved returns the switch-wide total of in-flight stash
// reservations (granted, not yet fully arrived).
func (s *Switch) StashReserved() int {
	total := 0
	for _, p := range s.stash {
		total += p.Reserved()
	}
	return total
}

// StashCapTotal returns the switch's total usable stash capacity.
func (s *Switch) StashCapTotal() int {
	total := 0
	for _, p := range s.stash {
		total += p.Capacity()
	}
	return total
}

// PortStash exposes a port's stash pool for tests and probes.
func (s *Switch) PortStash(port int) *buffer.StashPool { return s.stash[port] }

// Parity exposes the parity tracker (nil unless StashParity > 0) for
// tests and probes.
func (s *Switch) Parity() *buffer.ParityTracker { return s.parity }

// PendingReconstructions returns the number of in-flight parity rebuilds,
// reported by the stall watchdog's Note hook during bank-failure drains.
func (s *Switch) PendingReconstructions() int { return len(s.reconQ) }

// TrackedPackets returns the number of outstanding end-to-end tracking
// entries across all end ports.
func (s *Switch) TrackedPackets() int {
	n := 0
	for _, m := range s.track {
		n += len(m)
	}
	return n
}

// AuditInBuf exposes an input port's normal buffer for the invariant
// checker's credit-conservation audit.
func (s *Switch) AuditInBuf(port int) *buffer.DAMQ { return s.in[port].buf }

// AuditOutCredits exposes an output port's credit counter (nil for
// endpoint-facing ports, which sink flits without credits).
func (s *Switch) AuditOutCredits(port int) *buffer.CreditCounter { return s.out[port].credits }

// AuditOutLink exposes an output port's link (nil when unwired).
func (s *Switch) AuditOutLink(port int) *Link { return s.out[port].link }

// auditResident counts every flit resident in the switch's structures:
// input DAMQs, tile row buffers, column buffers, output queues (the
// retention window holds placeholders, not flits), and stash pools.
func (s *Switch) auditResident() int {
	n := 0
	for p := range s.in {
		n += s.in[p].buf.Used()
	}
	for t := range s.tiles {
		n += s.tiles[t].occupied
	}
	for p := range s.out {
		n += s.out[p].colOcc + s.out[p].buf.Queued()
	}
	for _, pool := range s.stash {
		n += pool.PresentFlits()
	}
	return n
}

// auditFreed returns the cumulative flits destroyed by stash deletions.
func (s *Switch) auditFreed() int64 {
	var n int64
	for _, pool := range s.stash {
		n += pool.FreedFlits()
	}
	return n
}

// BankConflicts returns the total bank-conflict stalls across all port
// memories.
func (s *Switch) BankConflicts() int64 {
	var n int64
	for p := range s.in {
		n += s.in[p].mem.Conflicts + s.out[p].mem.Conflicts
	}
	return n
}

// EnableMetrics registers this switch's counters and gauges under scope
// "sw<id>" (and per-tile "sw<id>.tile<r>.<c>" scopes) of the given
// registry. A nil registry leaves all handles nil: the disabled fast path.
// Call before the simulation starts; handles are resolved once.
func (s *Switch) EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	sc := reg.Scope(fmt.Sprintf("sw%d", s.ID))
	s.m = switchMetrics{
		cycles:          sc.Counter("cycles"),
		svcFlits:        sc.Counter("svc.flits"),
		rvcFlits:        sc.Counter("rvc.flits"),
		colFlits:        sc.Counter("col.flits"),
		creditStalls:    sc.Counter("credit.stall.cycles"),
		holAbsorbed:     sc.Counter("hol.absorbed"),
		stashStores:     sc.Counter("stash.stores"),
		stashRetrieves:  sc.Counter("stash.retrieves"),
		stashFullStalls: sc.Counter("stash.full.stalls"),
		jsqPick:         make([]*metrics.Counter, s.cfg.Cols),
	}
	if s.parity != nil {
		s.m.reconStarted = sc.Counter("stash.recon.started")
		s.m.reconFailed = sc.Counter("stash.recon.failed")
		s.m.paritySealed = sc.Counter("stash.parity.sealed")
		s.m.degradedReads = sc.Counter("stash.degraded.reads")
	}
	for c := range s.m.jsqPick {
		s.m.jsqPick[c] = sc.Counter(fmt.Sprintf("jsq.pick.col%d", c))
	}
	// Column-bandwidth utilization: fraction of tile->column channel slots
	// that carried a flit. The denominator is the aggregate column channel
	// capacity (one flit per tile output per row per cycle).
	m := s.m
	colChans := float64(s.cfg.Rows * s.cfg.Cols * s.cfg.TileOut)
	sc.Gauge("col.util", func() float64 {
		cyc := m.cycles.Value()
		if cyc == 0 {
			return 0
		}
		return float64(m.colFlits.Value()) / (float64(cyc) * colChans)
	})
	sc.Gauge("stash.fill", func() float64 {
		if cap := s.StashCapTotal(); cap > 0 {
			return float64(s.StashUsed()) / float64(cap)
		}
		return 0
	})
	for ti := range s.tiles {
		t := &s.tiles[ti]
		t.grants = reg.Scope(fmt.Sprintf("sw%d.tile%d.%d", s.ID, t.row, t.col)).Counter("grants")
	}
}

// SetTracer attaches (or, with nil, detaches) the packet-lifecycle tracer.
func (s *Switch) SetTracer(t *metrics.Tracer) { s.tracer = t }

// Busy reports whether any flit is resident anywhere inside the switch
// (input buffers, tiles, column buffers, or output buffers). Used by the
// stall watchdog to pick which switches to dump.
func (s *Switch) Busy() bool {
	for p := range s.in {
		if s.in[p].buf.Used() > 0 {
			return true
		}
	}
	for t := range s.tiles {
		if s.tiles[t].occupied > 0 {
			return true
		}
	}
	for p := range s.out {
		if s.out[p].colOcc > 0 || s.out[p].buf.Used() > 0 {
			return true
		}
	}
	return false
}

// BufferFill returns the aggregate normal input- and output-buffer
// occupancy and capacity in flits, for the occupancy sampler.
func (s *Switch) BufferFill() (inUsed, inCap, outUsed, outCap int) {
	for p := range s.in {
		inUsed += s.in[p].buf.Used()
		inCap += s.in[p].buf.Capacity()
	}
	for p := range s.out {
		outUsed += s.out[p].buf.Used()
		outCap += s.out[p].buf.Capacity()
	}
	return
}

// The switch is a sim.Stepper so the network can drive it through the
// parallel executor; it communicates only over latency>=1 links, which is
// the property the executor's partitioning relies on.
var _ sim.Stepper = (*Switch)(nil)

// Step advances the switch one cycle. Stages run in reverse pipeline order
// so a flit advances at most one stage per cycle; arrivals are folded in
// last so flits that land at cycle t first compete for the row bus at t+1.
//
// Each stage iterates only its active set: a port or tile is stepped when
// an event is pending for it — a link wake flag or armed ring, queued or
// retention-held flits, a non-empty retrieval queue — and costs nothing
// otherwise, so an idle region of the network is skipped outright
// (work-proportional stepping). Pending-ness is announced, not probed:
// link producers raise parity wake flags (see Link) that Step scans as
// one cache line per direction, the armed masks carry ports whose link
// rings hold entries not yet due, and the activity masks are maintained
// by the owner at every site that queues work for a port. Any per-cycle
// state a skipped stage would have advanced is reconstructed
// deterministically on wake — the output serialization accumulator
// catches up in stepOutput (accTick), and an idle input port's ECN
// congested flag is cleared when its activity bit clears, which is
// exactly what stepRowBus would compute for an empty buffer. Skipped
// stages are otherwise provably no-ops: every arbiter pointer advances
// only on grants, and grants require a non-empty request set.
//
// Step is the switch's parallel-phase entry: it runs concurrently with
// every other component's Step and must stay allocation-free in the
// steady state (sim.Stepper's contract).
//
//stashsim:phase parallel
//stashsim:noalloc
func (s *Switch) Step(now sim.Tick) {
	s.m.cycles.Inc()
	s.stepRetry(now)
	if len(s.reconQ) > 0 {
		s.stepRecon(now)
	}
	if s.sideband.n > 0 {
		s.stepSideband(now)
	}
	// Fold announced credit returns straight into the counters. The wake
	// slab holds flags producers raised last cycle; the armed mask re-visits
	// links whose folded batches are not yet due (future deadlines, synth).
	cw := &s.credWake[(now+1)&1]
	cm := s.armedCred
	for p := 0; p < s.radix; p++ {
		if cw[p] {
			cw[p] = false
			cm |= 1 << uint(p)
		}
	}
	s.armedCred = 0
	for m := cm; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		op := &s.out[p]
		l := op.link
		l.foldWakeCredits(now)
		if op.credits != nil && (l.credits.frontDue(now) || l.synth.frontDue(now)) {
			l.RecvCreditsInto(now, op.credits)
		}
		if l.credits.n > 0 || l.synth.n > 0 {
			s.armedCred |= 1 << uint(p)
		}
	}
	// Mask walks visit active ports/tiles in ascending index order — the
	// same order the full scans visited, so arbitration is unchanged. Bits
	// set mid-walk (a tile feeding a mux) are picked up next cycle, exactly
	// as the one-stage-per-cycle pipeline requires.
	for m := s.outActive; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		op := &s.out[p]
		// A port with only retention-held flits sleeps until its front
		// entry is due; the activity bit keeps it in the walk meanwhile.
		if op.buf.Queued() == 0 && !op.buf.ReleaseDue(now) {
			continue
		}
		s.stepOutput(now, op)
		if op.buf.Queued() == 0 && op.buf.Retained() == 0 {
			s.outActive &^= 1 << uint(p)
		}
	}
	for m := s.muxOcc; m != 0; m &= m - 1 {
		s.stepMux(now, &s.out[bits.TrailingZeros64(m)])
	}
	for m := s.tileOcc; m != 0; m &= m - 1 {
		s.stepTile(now, &s.tiles[bits.TrailingZeros64(m)])
	}
	for m := s.inActive; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		ip := &s.in[p]
		s.stepRowBus(now, ip)
		if ip.buf.Used() == 0 && s.stash[p].RetrLen() == 0 {
			s.inActive &^= 1 << uint(p)
			// An empty buffer is never over the ECN threshold.
			ip.congested = false
		}
	}
	// Arrivals: announced sends plus armed links with flits still in
	// flight. A port absent from both sets provably has an empty ring and
	// an empty foldable inbox slot, so skipping its fold is safe.
	fw := &s.flitWake[(now+1)&1]
	am := s.armedIn
	for p := 0; p < s.radix; p++ {
		if fw[p] {
			fw[p] = false
			am |= 1 << uint(p)
		}
	}
	s.armedIn = 0
	for m := am; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		ip := &s.in[p]
		l := ip.link
		l.foldWakeFlits(now)
		if l.flits.FrontDue(now) {
			s.stepArrivals(now, ip)
			if ip.buf.Used() > 0 {
				s.inActive |= 1 << uint(p)
			}
		}
		if l.flits.Len() > 0 {
			s.armedIn |= 1 << uint(p)
		}
	}
}

// newEntry takes a tracking entry from the freelist, or allocates one on a
// cold list. The entry comes back zeroed.
//
//stashsim:noalloc
func (s *Switch) newEntry() *e2eEntry {
	if n := len(s.entryFree); n > 0 {
		e := s.entryFree[n-1]
		s.entryFree = s.entryFree[:n-1]
		*e = e2eEntry{}
		return e
	}
	//lint:allow allocfree -- amortized: recycled via entryFree once the high-water mark is reached
	return &e2eEntry{}
}

// dropEntry removes a settled tracking entry from its end-port map and
// recycles it. The caller must not touch e afterwards.
//
//stashsim:noalloc
func (s *Switch) dropEntry(port int, pktID uint64, e *e2eEntry) {
	delete(s.track[port], pktID)
	s.entryFree = append(s.entryFree, e)
}
