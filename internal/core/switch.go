package core

import (
	"stashsim/internal/arb"
	"stashsim/internal/buffer"
	"stashsim/internal/proto"
	"stashsim/internal/route"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// Counters aggregates per-switch event counts for probes and tests.
type Counters struct {
	FlitsSwitched   int64 // flits that crossed the row bus
	FlitsSent       int64 // flits transmitted on output links
	StashStores     int64 // flits written into stash pools
	StashRetrieves  int64 // flits read back out of stash pools
	ECNMarks        int64 // packets marked by congested inputs
	CongestedCycles int64 // port-cycles spent in the congested state
	StashFullStalls int64 // cycles an input stalled on storage-VC backpressure
	E2ETracked      int64 // packets entered into end-to-end tracking
	E2EDeletes      int64 // stash copies freed by positive ACKs
	E2ERetransmits  int64 // retransmissions triggered by NACKs
	SidebandMsgs    int64 // bookkeeping messages carried by the side-band network
	CongStashed     int64 // packets absorbed by congestion stashing
	CongStashedVict int64 // victim-class packets absorbed (diagnostics)
}

// routeLatch is the per-(input,VC) wormhole state holding the routing
// decision of the packet currently crossing the row bus.
type routeLatch struct {
	active   bool
	started  bool // head flit has left the input buffer
	eject    bool
	redirect bool  // congestion mode: packet diverted entirely to stash
	out      uint8 // output port of the normal path
	vc       uint8 // switch-internal (and outgoing-channel) VC
	stashCol int8  // tile column of the stash path; -1 when none
}

type inPort struct {
	id        int
	class     topo.LinkClass
	isEnd     bool
	link      *Link
	buf       *buffer.DAMQ
	latch     [proto.NumNetVCs]routeLatch
	arbiter   arb.RoundRobin // NumNetVCs input VCs + 1 retrieval candidate
	congested bool
	congestAt int  // occupancy threshold in flits
	sVC       int8 // input VC holding the storage stream (-1 free)
	mem       buffer.BankedMem
}

// tileLock serializes packets per (tile output, VC) so flits of different
// packets never interleave on one column channel VC.
type tileLock struct {
	pkt    uint64
	active bool
}

// stashLatch pins the JSQ-chosen stash port for the S-VC packet currently
// crossing a tile from one input slot.
type stashLatch struct {
	port   uint8
	active bool
}

type tile struct {
	row, col int
	rowBufs  [][]buffer.Ring // [TileIn][NumVCs]
	alloc    *arb.Separable
	vcNext   []int        // per-slot stream rotation pointer
	outLock  [][]tileLock // [TileOut][NumVCs]
	sLatch   []stashLatch // per slot
	occupied int          // total queued flits (activity gate)
	slotOcc  []uint16     // per-slot bitmask of non-empty streams
	reqScr   []uint64     // scratch request masks
	candScr  [][]uint8    // scratch candidate stream per (slot, out)
}

// muxLock serializes packets per output-buffer VC across the R column
// channels feeding one output multiplexer.
type muxLock struct {
	row    int8
	pkt    uint64
	active bool
}

type outPort struct {
	id      int
	class   topo.LinkClass
	isEnd   bool
	link    *Link
	buf     *buffer.OutBuf
	colBufs [][]buffer.Ring // [Rows][NumVCs]
	colOcc  int             // total flits in column buffers (activity gate)
	colMask uint64          // bitmask of non-empty (row*NumVCs+vc) buffers
	muxLock [proto.NumVCs]muxLock
	muxArb  arb.RoundRobin // Rows*NumVCs candidates
	sendArb arb.RoundRobin // network VCs
	credits *buffer.CreditCounter
	acc     int
	mem     buffer.BankedMem
	rtt     int64
}

// e2eEntry tracks one outstanding packet at its originating end port.
type e2eEntry struct {
	size      uint8
	stashPort int16 // -1 until the location message arrives
	acked     bool
	nacked    bool
}

// Switch is one tiled (optionally stashing) switch instance.
type Switch struct {
	ID     int
	cfg    *Config
	router *route.Router
	rng    *sim.RNG

	radix int
	in    []inPort
	out   []outPort
	tiles []tile              // Rows*Cols, row-major
	stash []*buffer.StashPool // per port; nil-capacity pools allowed

	sideband sbRing
	track    []map[uint64]*e2eEntry // per end port

	Counters Counters
}

// NewSwitch builds switch id under the shared configuration. Links are
// attached afterwards by the network wiring (AttachInLink/AttachOutLink).
func NewSwitch(id int, cfg *Config, rng *sim.RNG) *Switch {
	d := cfg.Topo
	radix := d.Radix()
	s := &Switch{
		ID:     id,
		cfg:    cfg,
		router: route.New(d, cfg.Route, rng.Derive(uint64(id)*2+1)),
		rng:    rng.Derive(uint64(id) * 2),
		radix:  radix,
		in:     make([]inPort, radix),
		out:    make([]outPort, radix),
		tiles:  make([]tile, cfg.Rows*cfg.Cols),
		stash:  make([]*buffer.StashPool, radix),
		track:  make([]map[uint64]*e2eEntry, d.P),
	}
	for p := 0; p < radix; p++ {
		class := d.PortClass(p)
		ip := &s.in[p]
		ip.id = p
		ip.class = class
		ip.isEnd = class == topo.Endpoint
		ip.buf = buffer.NewDAMQ(cfg.NormalInCap(class), proto.NumNetVCs)
		ip.arbiter = arb.NewRoundRobin(proto.NumNetVCs + 1)
		ip.congestAt = int(cfg.ECN.CongestFrac * float64(ip.buf.Capacity()))
		ip.sVC = -1
		ip.mem.Ideal = !cfg.BankModel

		op := &s.out[p]
		op.id = p
		op.class = class
		op.isEnd = class == topo.Endpoint
		op.buf = buffer.NewOutBuf(cfg.NormalOutCap(class), proto.NumNetVCs)
		op.colBufs = make([][]buffer.Ring, cfg.Rows)
		for r := range op.colBufs {
			op.colBufs[r] = make([]buffer.Ring, proto.NumVCs)
		}
		op.muxArb = arb.NewRoundRobin(cfg.Rows * proto.NumVCs)
		op.sendArb = arb.NewRoundRobin(proto.NumNetVCs)
		op.mem.Ideal = !cfg.BankModel
		op.rtt = 2 * cfg.Lat.Of(class)

		s.stash[p] = buffer.NewStashPool(cfg.StashCap(class), cfg.RetainPayload)
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			t := &s.tiles[r*cfg.Cols+c]
			t.row, t.col = r, c
			t.rowBufs = make([][]buffer.Ring, cfg.TileIn)
			t.candScr = make([][]uint8, cfg.TileIn)
			for i := range t.rowBufs {
				t.rowBufs[i] = make([]buffer.Ring, proto.NumVCs)
				t.candScr[i] = make([]uint8, cfg.TileOut)
			}
			t.alloc = arb.NewSeparable(cfg.TileIn, cfg.TileOut)
			t.vcNext = make([]int, cfg.TileIn)
			t.outLock = make([][]tileLock, cfg.TileOut)
			for o := range t.outLock {
				t.outLock[o] = make([]tileLock, proto.NumVCs)
			}
			t.sLatch = make([]stashLatch, cfg.TileIn)
			t.slotOcc = make([]uint16, cfg.TileIn)
			t.reqScr = make([]uint64, cfg.TileIn)
		}
	}
	for p := 0; p < d.P; p++ {
		s.track[p] = make(map[uint64]*e2eEntry)
	}
	return s
}

// AttachInLink wires the incoming link of input port p.
func (s *Switch) AttachInLink(p int, l *Link) { s.in[p].link = l }

// AttachOutLink wires the outgoing link of output port p. The credit
// counter mirrors the downstream input buffer; pass zero capacity for
// endpoint-facing ports (endpoints sink flits without credits).
func (s *Switch) AttachOutLink(p int, l *Link, downstreamCap int) {
	s.out[p].link = l
	if downstreamCap > 0 {
		s.out[p].credits = buffer.NewCreditCounter(downstreamCap, proto.NumNetVCs)
	}
}

// Config returns the shared configuration.
func (s *Switch) Config() *Config { return s.cfg }

// OutputQueue implements route.Oracle: the occupancy signal used by the
// adaptive routing decision is the count of flits awaiting transmission at
// an output port plus its column-buffer backlog.
func (s *Switch) OutputQueue(port int) int {
	return s.out[port].buf.Queued() + s.out[port].colOcc
}

// InputOccupancy returns the occupancy of an input port's normal buffer.
func (s *Switch) InputOccupancy(port int) int { return s.in[port].buf.Used() }

// Congested reports whether an input port is in the ECN congested state.
func (s *Switch) Congested(port int) bool { return s.in[port].congested }

// StashUsed returns the committed stash occupancy in flits across the
// switch (including packet reservations in flight).
func (s *Switch) StashUsed() int {
	total := 0
	for _, p := range s.stash {
		total += p.Used()
	}
	return total
}

// StashReserved returns the switch-wide total of in-flight stash
// reservations (granted, not yet fully arrived).
func (s *Switch) StashReserved() int {
	total := 0
	for _, p := range s.stash {
		total += p.Reserved()
	}
	return total
}

// StashCapTotal returns the switch's total usable stash capacity.
func (s *Switch) StashCapTotal() int {
	total := 0
	for _, p := range s.stash {
		total += p.Capacity()
	}
	return total
}

// PortStash exposes a port's stash pool for tests and probes.
func (s *Switch) PortStash(port int) *buffer.StashPool { return s.stash[port] }

// TrackedPackets returns the number of outstanding end-to-end tracking
// entries across all end ports.
func (s *Switch) TrackedPackets() int {
	n := 0
	for _, m := range s.track {
		n += len(m)
	}
	return n
}

// BankConflicts returns the total bank-conflict stalls across all port
// memories.
func (s *Switch) BankConflicts() int64 {
	var n int64
	for p := range s.in {
		n += s.in[p].mem.Conflicts + s.out[p].mem.Conflicts
	}
	return n
}

// Step advances the switch one cycle. Stages run in reverse pipeline order
// so a flit advances at most one stage per cycle; arrivals are folded in
// last so flits that land at cycle t first compete for the row bus at t+1.
func (s *Switch) Step(now sim.Tick) {
	s.stepSideband(now)
	for p := range s.out {
		s.stepOutput(now, &s.out[p])
	}
	for p := range s.out {
		s.stepMux(now, &s.out[p])
	}
	for t := range s.tiles {
		s.stepTile(now, &s.tiles[t])
	}
	for p := range s.in {
		s.stepRowBus(now, &s.in[p])
	}
	for p := range s.in {
		s.stepArrivals(now, &s.in[p])
	}
}
