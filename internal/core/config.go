// Package core implements the paper's contribution: the tiled high-radix
// switch microarchitecture (Section II) and its stashing extension
// (Section III). A Switch models, cycle by cycle: per-port DAMQ input
// buffers, multi-drop row buses, an R×C array of tile crossbars with
// virtual-output-queued row buffers and separable output-first allocation,
// column channels into per-output multiplexers, and output buffers that
// retain transmitted flits for one link round-trip (link-level
// retransmission). The stashing extension adds the storage (S) and
// retrieval (R) internal virtual channels, per-port stash partitions
// managed as pools, two-stage join-shortest-queue stash path selection,
// row-bus broadcast duplication for free packet copies, a side-band
// bookkeeping network, and the end-to-end reliability and congestion
// mitigation engines of Section IV.
package core

import (
	"fmt"

	"stashsim/internal/buffer"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
	"stashsim/internal/route"
	"stashsim/internal/topo"
)

// MaxStashParity bounds Config.StashParity; it mirrors the buffer layer's
// fixed parity-group slab width.
const MaxStashParity = buffer.MaxParityWidth

// StashMode selects which use case (if any) drives the stash buffers.
type StashMode uint8

const (
	// StashOff is the baseline tiled switch.
	StashOff StashMode = iota
	// StashE2E duplicates every data packet injected at an end port into
	// a stash buffer until the destination's ACK returns (Section IV-A).
	StashE2E
	// StashCongestion absorbs HoL-blocked packets at congested inputs
	// while ECN throttles the sources (Section IV-B).
	StashCongestion
)

// String returns the mode name.
func (m StashMode) String() string {
	switch m {
	case StashOff:
		return "baseline"
	case StashE2E:
		return "e2e"
	case StashCongestion:
		return "congestion"
	}
	return fmt.Sprintf("StashMode(%d)", uint8(m))
}

// ECNParams configures explicit congestion notification (Section IV-B).
type ECNParams struct {
	// Enabled turns on congestion detection and packet marking in the
	// switches and window management at the endpoints.
	Enabled bool
	// CongestFrac is the input-buffer occupancy fraction above which a
	// port enters the congested state (0.5 in the paper).
	CongestFrac float64
	// WindowMax is the initial/maximum per-destination transmission
	// window in flits (4096).
	WindowMax int
	// WindowFloor is the minimum window in flits (one max packet).
	WindowFloor int
	// DecreaseNum/DecreaseDen scale the window on every marked ACK
	// (4/5 = the paper's 80%).
	DecreaseNum, DecreaseDen int
	// RecoverPeriod is the number of cycles per one-flit window
	// recovery increment (30).
	RecoverPeriod int64
}

// DefaultECN returns the paper's ECN parameters.
func DefaultECN() ECNParams {
	return ECNParams{
		Enabled:       true,
		CongestFrac:   0.5,
		WindowMax:     4096,
		WindowFloor:   proto.MaxPacketFlits,
		DecreaseNum:   4,
		DecreaseDen:   5,
		RecoverPeriod: 30,
	}
}

// RetransParams configures the timeout-driven retransmission ladder that
// makes injected loss survivable: the first-hop switch resends its stash
// copy after an ACK timeout (bounded retries, exponential backoff), and
// the source endpoint retransmits as graceful degradation when no stash
// copy covers the packet (stash full at injection, bank failed, or a
// non-stashing mode). The zero value disables both timers, preserving
// the pre-fault behavior exactly.
type RetransParams struct {
	// Enabled arms the switch-side and endpoint-side ACK timers.
	Enabled bool
	// SwitchTimeout is the base ACK timeout in cycles for the first-hop
	// stash resend timer; each retry doubles it (exponential backoff).
	SwitchTimeout int64
	// SwitchRetries bounds stash resends; after exhaustion the switch
	// abandons the copy and leaves recovery to the source endpoint.
	SwitchRetries int
	// EndpointTimeout is the base ACK timeout in cycles for source
	// retransmission. It should comfortably exceed the switch timer's
	// full backoff ladder so local recovery wins when possible.
	EndpointTimeout int64
	// EndpointRetries bounds source retransmissions per packet.
	EndpointRetries int
	// ScanEvery is the timer scan interval in cycles; timers fire on the
	// first scan at or after their deadline.
	ScanEvery int64
}

// DefaultRetrans returns enabled timers with defaults sized for the
// simulated latencies: the switch timer covers several network RTTs, and
// the endpoint timer exceeds the switch timer's full backoff ladder.
func DefaultRetrans() RetransParams {
	return RetransParams{
		Enabled:         true,
		SwitchTimeout:   8192,
		SwitchRetries:   5,
		EndpointTimeout: 65536,
		EndpointRetries: 5,
		ScanEvery:       64,
	}
}

// Config describes one network build: topology, switch microarchitecture,
// stashing mode, and protocol parameters. It is shared read-only by every
// switch and endpoint.
type Config struct {
	Topo topo.Dragonfly
	Lat  topo.Latencies

	// Tiling. Rows*TileIn and Cols*TileOut must cover the radix; excess
	// tile inputs/outputs are left unconnected (padding for radixes that
	// do not factor evenly).
	Rows, Cols, TileIn, TileOut int

	// Port memory in flits: each port has InputBufFlits of input buffer
	// and OutputBufFlits of output buffer (1000 + 1000 = 2×10 KB at
	// 10 B/flit in the paper).
	InputBufFlits, OutputBufFlits int
	// RowBufFlits / ColBufFlits are per-VC row and column buffer sizes
	// (4 packets = 96 flits).
	RowBufFlits, ColBufFlits int

	// RateNum/RateDen is the channel (and endpoint injection) rate in
	// flits per internal cycle: 10/13 models the paper's 1.3× internal
	// speedup. Setting 1/1 models no speedup (ablation).
	RateNum, RateDen int

	Mode StashMode
	// StashCapFrac artificially restricts the usable stash capacity
	// (1.0, 0.5, 0.25 in the paper's sensitivity study).
	StashCapFrac float64
	// StashFracEndpoint/StashFracLocal are the fractions of port memory
	// partitioned for stashing on endpoint and local ports (7/8, 3/4).
	// Global ports never stash.
	StashFracEndpoint, StashFracLocal float64

	ECN   ECNParams
	Route route.Params

	// SidebandLat is the latency in cycles of the dedicated side-band
	// bookkeeping network between ports of one switch.
	SidebandLat int64

	// BankModel enables the two-bank interleaved port memory admission
	// gate; false models ideal multiported memory.
	BankModel bool

	// RandomStashPlacement replaces the two-stage join-shortest-queue
	// stash path selection with a uniformly random choice among feasible
	// paths (ablation of Section III-A's JSQ policy).
	RandomStashPlacement bool

	// RetainPayload keeps stash-copy payloads for the retransmission
	// extension (required when error injection is enabled).
	RetainPayload bool

	// AcksEnabled makes destinations acknowledge every data packet.
	AcksEnabled bool

	// ErrorRate is the per-packet probability that a destination
	// endpoint NACKs a data packet (error-injection extension).
	ErrorRate float64

	// Retrans configures the timeout-driven recovery ladder.
	Retrans RetransParams

	// Fault, when non-nil and active, is the deterministic fault plan the
	// network wiring materializes onto links and stash banks.
	Fault *fault.Plan

	// StashBypass lets a StashE2E end port forward a packet without a
	// stash copy when join-shortest-queue finds no storage path, instead
	// of stalling until space frees. Bypassed packets are covered by the
	// source endpoint's retransmission timer only, so it requires
	// Retrans.Enabled.
	StashBypass bool

	// StashParity, when positive, stripes completed end-to-end stash
	// copies into parity groups of this width k with one XOR parity flit
	// run per group, stored in a bank outside the member set. A single
	// lost member (bank failure, busy-bank read) is then reconstructed
	// from the k-1 survivors + parity instead of degrading to endpoint
	// retransmission. 0 (the default) disables erasure coding entirely.
	// Requires StashE2E and at least k+1 stash-capable banks.
	StashParity int

	Seed uint64
}

// FaultActive reports whether an attached fault plan injects anything.
//stashsim:noalloc
func (c *Config) FaultActive() bool { return c.Fault.Active() }

// VerifyChecksums reports whether destination endpoints must verify flit
// checksums on ejection (the fault plan can corrupt payloads).
func (c *Config) VerifyChecksums() bool {
	return c.Fault != nil && c.Fault.CorruptRate > 0
}

// DedupDelivery reports whether destination endpoints must suppress
// duplicate packet deliveries by PktID: any configuration that can
// retransmit on a timer may race an original with its retransmit.
func (c *Config) DedupDelivery() bool {
	return c.Retrans.Enabled || c.FaultActive()
}

// Validate checks structural consistency.
func (c *Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	radix := c.Topo.Radix()
	if c.Rows*c.TileIn < radix {
		return fmt.Errorf("core: %d tile rows x %d inputs cannot cover radix %d", c.Rows, c.TileIn, radix)
	}
	if c.Cols*c.TileOut < radix {
		return fmt.Errorf("core: %d tile cols x %d outputs cannot cover radix %d", c.Cols, c.TileOut, radix)
	}
	if c.RateNum <= 0 || c.RateDen <= 0 || c.RateNum > c.RateDen {
		return fmt.Errorf("core: invalid channel rate %d/%d", c.RateNum, c.RateDen)
	}
	if c.Mode != StashOff && c.StashCapFrac <= 0 {
		return fmt.Errorf("core: stashing enabled with non-positive capacity fraction")
	}
	if c.Mode == StashE2E && !c.AcksEnabled {
		return fmt.Errorf("core: end-to-end reliability requires ACKs")
	}
	if c.ErrorRate > 0 && !c.RetainPayload {
		return fmt.Errorf("core: error injection requires RetainPayload for retransmission")
	}
	if c.Retrans.Enabled {
		if !c.AcksEnabled {
			return fmt.Errorf("core: retransmission timers require ACKs (nothing would ever settle)")
		}
		if c.Retrans.SwitchTimeout <= 0 || c.Retrans.EndpointTimeout <= 0 {
			return fmt.Errorf("core: retransmission timers require positive timeouts")
		}
		if c.Retrans.ScanEvery <= 0 {
			return fmt.Errorf("core: retransmission timers require a positive scan interval")
		}
		if c.Mode == StashE2E && !c.RetainPayload {
			return fmt.Errorf("core: stash resend timers require RetainPayload")
		}
	}
	if c.StashBypass && !c.Retrans.Enabled {
		return fmt.Errorf("core: stash bypass forwards uncovered packets and requires retransmission timers")
	}
	if c.StashParity != 0 {
		if c.StashParity < 2 || c.StashParity > MaxStashParity {
			return fmt.Errorf("core: stash parity width %d outside [2, %d]", c.StashParity, MaxStashParity)
		}
		if c.Mode != StashE2E {
			return fmt.Errorf("core: stash parity groups require end-to-end stashing mode")
		}
		// Members occupy k distinct banks and the parity flit run a
		// further one; only endpoint and local ports contribute stash
		// capacity.
		banks := c.Topo.P + c.Topo.A - 1
		if banks < c.StashParity+1 {
			return fmt.Errorf("core: stash parity width %d needs %d stash-capable banks, topology has %d",
				c.StashParity, c.StashParity+1, banks)
		}
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.FaultActive() && !c.Retrans.Enabled && c.Mode == StashE2E {
		// Without timers, an in-flight drop of a tracked packet would
		// leave its stash entry resident forever and eventually wedge the
		// pool. Corruption-only plans are fine: the NACK path recovers.
		if c.Fault.LinkDropRate > 0 || len(c.Fault.Outages) > 0 {
			return fmt.Errorf("core: fault plans that drop packets require Retrans.Enabled in e2e mode")
		}
	}
	return nil
}

// stashFrac returns the fraction of a port's memory partitioned for
// stashing, before the capacity restriction.
func (c *Config) stashFrac(class topo.LinkClass) float64 {
	if c.Mode == StashOff {
		return 0
	}
	switch class {
	case topo.Endpoint:
		return c.StashFracEndpoint
	case topo.Local:
		return c.StashFracLocal
	default:
		return 0
	}
}

// NormalInCap returns the normal (non-stash) input-buffer capacity in
// flits for a port of the given class.
func (c *Config) NormalInCap(class topo.LinkClass) int {
	return c.InputBufFlits - int(float64(c.InputBufFlits)*c.stashFrac(class))
}

// NormalOutCap returns the normal output-buffer capacity in flits.
func (c *Config) NormalOutCap(class topo.LinkClass) int {
	return c.OutputBufFlits - int(float64(c.OutputBufFlits)*c.stashFrac(class))
}

// StashCap returns the usable stash-pool capacity in flits for a port of
// the given class, after the capacity restriction.
func (c *Config) StashCap(class topo.LinkClass) int {
	part := float64(c.InputBufFlits+c.OutputBufFlits) * c.stashFrac(class)
	return int(part * c.StashCapFrac)
}

// SwitchStashCap returns the total usable stash capacity of one switch.
func (c *Config) SwitchStashCap() int {
	d := c.Topo
	return d.P*c.StashCap(topo.Endpoint) + (d.A-1)*c.StashCap(topo.Local) + d.H*c.StashCap(topo.Global)
}

// RowOf returns the tile row serving an input port.
//stashsim:noalloc
func (c *Config) RowOf(in int) int { return in / c.TileIn }

// SlotOf returns the tile-input slot of an input port within its row.
//stashsim:noalloc
func (c *Config) SlotOf(in int) int { return in % c.TileIn }

// ColOf returns the tile column serving an output port.
//stashsim:noalloc
func (c *Config) ColOf(out int) int { return out / c.TileOut }

// TileOutOf returns the tile-output index of an output port within its
// column.
//stashsim:noalloc
func (c *Config) TileOutOf(out int) int { return out % c.TileOut }

// PaperConfig returns the full-scale configuration of Section V: a
// 3080-node dragonfly of 20-port switches with 4×4 tiles of 5×5 crossbars.
func PaperConfig() *Config {
	return &Config{
		Topo:              topo.Dragonfly{P: 5, A: 11, H: 5},
		Lat:               topo.PaperLatencies(),
		Rows:              4,
		Cols:              4,
		TileIn:            5,
		TileOut:           5,
		InputBufFlits:     1000,
		OutputBufFlits:    1000,
		RowBufFlits:       4 * proto.MaxPacketFlits,
		ColBufFlits:       4 * proto.MaxPacketFlits,
		RateNum:           10,
		RateDen:           13,
		Mode:              StashOff,
		StashCapFrac:      1.0,
		StashFracEndpoint: 7.0 / 8.0,
		StashFracLocal:    3.0 / 4.0,
		ECN:               ECNParams{Enabled: false},
		Route:             route.DefaultParams(),
		SidebandLat:       13,
		AcksEnabled:       true,
		Seed:              1,
	}
}

// SmallConfig returns a scaled-down canonical dragonfly (342 nodes,
// radix-11 switches, 3×3 tiles) with the same per-port resources, latency
// structure and protocol parameters. Experiments on this preset preserve
// the paper's qualitative shapes at ~1/10 the simulation cost.
func SmallConfig() *Config {
	c := PaperConfig()
	c.Topo = topo.Dragonfly{P: 3, A: 6, H: 3}
	// Keep the paper's 4x4 tile array (radix 11 padded into 4x3 tiles)
	// so the internal-bandwidth overprovisioning ratio R and the number
	// of stash columns match the paper's switch.
	c.Rows, c.Cols, c.TileIn, c.TileOut = 4, 4, 3, 3
	return c
}

// TinyConfig returns a 72-node dragonfly for unit and integration tests,
// with shortened links so its small buffers still cover the link RTTs.
func TinyConfig() *Config {
	c := PaperConfig()
	c.Topo = topo.Dragonfly{P: 2, A: 4, H: 2}
	// 4x4 tile array (radix 7 padded into 4x2 tiles): same R and column
	// count as the paper's switch.
	c.Rows, c.Cols, c.TileIn, c.TileOut = 4, 4, 2, 2
	c.InputBufFlits = 256
	c.OutputBufFlits = 256
	c.Lat = topo.Latencies{Endpoint: 7, Local: 13, Global: 65}
	return c
}
