package core

import (
	"stashsim/internal/buffer"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
)

// Link is one directed channel between two components (switch→switch,
// endpoint→switch or switch→endpoint) together with its reverse credit
// path. Flits written at cycle t become visible to the receiver at
// t+Latency; credits likewise. Because Latency >= 1, a link may safely be
// written by its producer and read by its consumer within the same parallel
// simulation cycle (one-cycle lookahead).
type Link struct {
	Latency int64

	// Fault, when non-nil, screens every transmitted flit for injected
	// drops, outages, and corruption. Credited marks links whose producer
	// runs credit-based flow control (endpoint→switch and switch→switch);
	// on those, a dropped flit's credit is synthesized onto the reverse
	// ring so the producer's credit count stays conserved.
	Fault    *fault.LinkFault
	Credited bool

	flits   buffer.TimedRing
	credits timedCreditRing

	// faultDropped counts flits destroyed on this link by injected
	// faults, the per-edge destruction term of the conservation law.
	faultDropped int64
}

// NewLink builds a link with the given one-way latency in cycles.
func NewLink(latency int64) *Link {
	if latency < 1 {
		panic("core: link latency must be at least one cycle")
	}
	return &Link{Latency: latency}
}

// SendFlit transmits a flit at cycle now; it arrives at now+Latency.
// When a fault injector is attached, the flit may be dropped on the wire
// (whole packets at a time — see fault.LinkFault) or corrupted in place.
// The producer has already taken a downstream credit for a dropped flit,
// so on credited links the credit the receiver would have returned is
// synthesized at the time it would have come back (one round trip);
// without it the producer's credit pool would leak one slot per drop.
func (l *Link) SendFlit(now int64, f proto.Flit) {
	if l.Fault != nil && l.Fault.OnFlit(now, &f) {
		l.faultDropped++
		if l.Credited {
			l.credits.push(timedCredit{
				at: now + 2*l.Latency,
				c:  proto.Credit{VC: f.VC, Shared: f.Flags&proto.FlagShared != 0},
			})
		}
		return
	}
	l.flits.Push(buffer.TimedFlit{At: now + l.Latency, Flit: f})
}

// FaultDropped returns the number of flits destroyed on this link by
// injected faults.
func (l *Link) FaultDropped() int64 { return l.faultDropped }

// RecvFlit returns the next flit whose arrival time has passed.
func (l *Link) RecvFlit(now int64) (proto.Flit, bool) {
	t, ok := l.flits.PopDue(now)
	return t.Flit, ok
}

// PeekFlit returns a pointer to the next arrived flit without consuming
// it, or nil. Used when the receiver may have to stall the write (bank
// conflicts).
func (l *Link) PeekFlit(now int64) *proto.Flit {
	if l.flits.Empty() {
		return nil
	}
	front := l.flits.Front()
	if front.At > now {
		return nil
	}
	return &front.Flit
}

// DropFlit consumes the flit previously returned by PeekFlit.
func (l *Link) DropFlit(now int64) {
	if _, ok := l.flits.PopDue(now); !ok {
		panic("core: DropFlit with no due flit")
	}
}

// InFlightFlits returns the number of flits on the wire.
func (l *Link) InFlightFlits() int { return l.flits.Len() }

// auditFlits calls fn for every flit currently on the wire, oldest first.
// Used by the invariant checker only; fn must not mutate the flit.
func (l *Link) auditFlits(fn func(*proto.Flit)) {
	for i := 0; i < l.flits.Len(); i++ {
		fn(&l.flits.At(i).Flit)
	}
}

// auditCredits calls fn for every credit currently on the wire.
func (l *Link) auditCredits(fn func(proto.Credit)) {
	for i := 0; i < l.credits.n; i++ {
		fn(l.credits.at(i).c)
	}
}

// SendCredit returns a credit to the link's producer; it arrives after the
// same latency as the forward path.
func (l *Link) SendCredit(now int64, c proto.Credit) {
	l.credits.push(timedCredit{at: now + l.Latency, c: c})
}

// RecvCredit returns the next credit whose arrival time has passed.
func (l *Link) RecvCredit(now int64) (proto.Credit, bool) {
	return l.credits.popDue(now)
}

type timedCredit struct {
	at int64
	c  proto.Credit
}

// timedCreditRing is a growable FIFO of in-flight credits.
type timedCreditRing struct {
	buf  []timedCredit
	head int
	n    int
}

func (r *timedCreditRing) push(t timedCredit) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		nb := make([]timedCredit, size)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *timedCreditRing) at(i int) *timedCredit {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *timedCreditRing) popDue(now int64) (proto.Credit, bool) {
	if r.n == 0 || r.buf[r.head].at > now {
		return proto.Credit{}, false
	}
	c := r.buf[r.head].c
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return c, true
}
