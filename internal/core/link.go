package core

import (
	"stashsim/internal/buffer"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
)

// Link is one directed channel between two components (switch→switch,
// endpoint→switch or switch→endpoint) together with its reverse credit
// path. Flits written at cycle t become visible to the receiver at
// t+Latency; credits likewise. Because Latency >= 1, a link may safely be
// written by its producer and read by its consumer within the same parallel
// simulation cycle (one-cycle lookahead).
//
// Concretely, each direction is a single-producer single-consumer pair of
// parity inboxes plus an owner-private ring. A push during cycle t appends
// to inbox slot t&1; the ring's owner folds slot (t+1)&1 — everything the
// remote side wrote during cycle t-1 — on its first access of cycle t. The
// executor's inter-cycle barrier orders those cycle-t-1 writes before the
// cycle-t fold, and the two sides never touch the same slot within a
// cycle, so the link is race-free without locks. An entry pushed at t is
// folded at t+1 and due at t+Latency >= t+1, so the fold is never late —
// provided the owner touches the link every cycle, which every switch and
// endpoint step does unconditionally (stepArrivals, stepOutput, stepRecv,
// stepInject). Sparse direct use (unit tests) instead merges both slots by
// arrival time, which equals push order because Latency is constant.
type Link struct {
	Latency int64

	// Fault, when non-nil, screens every transmitted flit for injected
	// drops, outages, and corruption. Credited marks links whose producer
	// runs credit-based flow control (endpoint→switch and switch→switch);
	// on those, a dropped flit's credit is synthesized onto the producer's
	// private synth ring so the producer's credit count stays conserved.
	Fault    *fault.LinkFault
	Credited bool

	// Forward path: producer appends to flitIn[now&1] (SendFlit); the
	// consumer folds into flits and pops (RecvFlit/PeekFlit/DropFlit).
	flits       buffer.TimedRing
	flitIn      [2][]buffer.TimedFlit
	flitDrained int64

	// Reverse path: the forward-consumer appends to credIn[now&1]
	// (SendCredit); the forward-producer folds into credits and pops
	// (RecvCredit). synth carries the credits synthesized for faulted
	// drops — pushed and popped by the forward-producer alone, so it
	// needs no inbox.
	credits     timedCreditRing
	credIn      [2][]timedCredit
	credDrained int64
	synth       timedCreditRing

	// faultDropped counts flits destroyed on this link by injected
	// faults, the per-edge destruction term of the conservation law.
	faultDropped int64
}

// NewLink builds a link with the given one-way latency in cycles.
func NewLink(latency int64) *Link {
	if latency < 1 {
		panic("core: link latency must be at least one cycle")
	}
	return &Link{Latency: latency, flitDrained: -1, credDrained: -1}
}

// SendFlit transmits a flit at cycle now; it arrives at now+Latency.
// When a fault injector is attached, the flit may be dropped on the wire
// (whole packets at a time — see fault.LinkFault) or corrupted in place.
// The producer has already taken a downstream credit for a dropped flit,
// so on credited links the credit the receiver would have returned is
// synthesized at the time it would have come back (one round trip);
// without it the producer's credit pool would leak one slot per drop.
func (l *Link) SendFlit(now int64, f proto.Flit) {
	if l.Fault != nil && l.Fault.OnFlit(now, &f) {
		l.faultDropped++
		if l.Credited {
			l.synth.push(timedCredit{
				at: now + 2*l.Latency,
				c:  proto.Credit{VC: f.VC, Shared: f.Flags&proto.FlagShared != 0},
			})
		}
		return
	}
	s := now & 1
	l.flitIn[s] = append(l.flitIn[s], buffer.TimedFlit{At: now + l.Latency, Flit: f})
}

// drainFlits folds arrived inbox entries into the consumer's ring, once
// per cycle. The every-cycle fast path touches only the slot the producer
// filled last cycle; the sparse path (owner skipped one or more cycles —
// never under the executor) merges both slots by arrival time.
func (l *Link) drainFlits(now int64) {
	if now == l.flitDrained {
		return
	}
	if now == l.flitDrained+1 {
		prev := (now & 1) ^ 1
		for i := range l.flitIn[prev] {
			l.flits.Push(l.flitIn[prev][i])
		}
		l.flitIn[prev] = l.flitIn[prev][:0]
	} else {
		a, b := l.flitIn[0], l.flitIn[1]
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			if j == len(b) || (i < len(a) && a[i].At <= b[j].At) {
				l.flits.Push(a[i])
				i++
			} else {
				l.flits.Push(b[j])
				j++
			}
		}
		l.flitIn[0], l.flitIn[1] = a[:0], b[:0]
	}
	l.flitDrained = now
}

// drainCredits is drainFlits for the reverse path.
func (l *Link) drainCredits(now int64) {
	if now == l.credDrained {
		return
	}
	if now == l.credDrained+1 {
		prev := (now & 1) ^ 1
		for i := range l.credIn[prev] {
			l.credits.push(l.credIn[prev][i])
		}
		l.credIn[prev] = l.credIn[prev][:0]
	} else {
		a, b := l.credIn[0], l.credIn[1]
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			if j == len(b) || (i < len(a) && a[i].at <= b[j].at) {
				l.credits.push(a[i])
				i++
			} else {
				l.credits.push(b[j])
				j++
			}
		}
		l.credIn[0], l.credIn[1] = a[:0], b[:0]
	}
	l.credDrained = now
}

// FaultDropped returns the number of flits destroyed on this link by
// injected faults.
func (l *Link) FaultDropped() int64 { return l.faultDropped }

// RecvFlit returns the next flit whose arrival time has passed.
func (l *Link) RecvFlit(now int64) (proto.Flit, bool) {
	l.drainFlits(now)
	t, ok := l.flits.PopDue(now)
	return t.Flit, ok
}

// PeekFlit returns a pointer to the next arrived flit without consuming
// it, or nil. Used when the receiver may have to stall the write (bank
// conflicts).
func (l *Link) PeekFlit(now int64) *proto.Flit {
	l.drainFlits(now)
	if l.flits.Empty() {
		return nil
	}
	front := l.flits.Front()
	if front.At > now {
		return nil
	}
	return &front.Flit
}

// DropFlit consumes the flit previously returned by PeekFlit.
func (l *Link) DropFlit(now int64) {
	l.drainFlits(now)
	if _, ok := l.flits.PopDue(now); !ok {
		panic("core: DropFlit with no due flit")
	}
}

// InFlightFlits returns the number of flits on the wire, folded or not.
// Audit-only: call it only while no component is stepping (between runs,
// or from the executor's serial PreCycle/PostCycle hooks).
func (l *Link) InFlightFlits() int {
	return l.flits.Len() + len(l.flitIn[0]) + len(l.flitIn[1])
}

// auditFlits calls fn for every flit currently on the wire, including
// entries still in the parity inboxes. Used by the invariant checker only
// (fn must not mutate the flit), under the same quiescence rule as
// InFlightFlits; the visit order is deterministic but not arrival order.
func (l *Link) auditFlits(fn func(*proto.Flit)) {
	for i := 0; i < l.flits.Len(); i++ {
		fn(&l.flits.At(i).Flit)
	}
	for s := range l.flitIn {
		for i := range l.flitIn[s] {
			fn(&l.flitIn[s][i].Flit)
		}
	}
}

// auditCredits calls fn for every credit currently on the wire.
func (l *Link) auditCredits(fn func(proto.Credit)) {
	for i := 0; i < l.credits.n; i++ {
		fn(l.credits.at(i).c)
	}
	for i := 0; i < l.synth.n; i++ {
		fn(l.synth.at(i).c)
	}
	for s := range l.credIn {
		for i := range l.credIn[s] {
			fn(l.credIn[s][i].c)
		}
	}
}

// SendCredit returns a credit to the link's producer; it arrives after the
// same latency as the forward path.
func (l *Link) SendCredit(now int64, c proto.Credit) {
	s := now & 1
	l.credIn[s] = append(l.credIn[s], timedCredit{at: now + l.Latency, c: c})
}

// RecvCredit returns the next credit whose arrival time has passed: the
// earlier-due of the receiver's returned credits and the synthesized
// fault-drop credits, ties going to the receiver's. Due-time order (rather
// than a single interleaved FIFO) keeps the result independent of how the
// two push sides interleave within a cycle, which the parallel executor
// does not define.
func (l *Link) RecvCredit(now int64) (proto.Credit, bool) {
	l.drainCredits(now)
	cf, cok := l.credits.front()
	sf, sok := l.synth.front()
	switch {
	case cok && cf.at <= now && (!sok || cf.at <= sf.at):
		return l.credits.popDue(now)
	case sok && sf.at <= now:
		return l.synth.popDue(now)
	}
	return proto.Credit{}, false
}

type timedCredit struct {
	at int64
	c  proto.Credit
}

// timedCreditRing is a growable FIFO of in-flight credits.
type timedCreditRing struct {
	buf  []timedCredit
	head int
	n    int
}

func (r *timedCreditRing) push(t timedCredit) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		nb := make([]timedCredit, size)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *timedCreditRing) at(i int) *timedCredit {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *timedCreditRing) front() (timedCredit, bool) {
	if r.n == 0 {
		return timedCredit{}, false
	}
	return r.buf[r.head], true
}

func (r *timedCreditRing) popDue(now int64) (proto.Credit, bool) {
	if r.n == 0 || r.buf[r.head].at > now {
		return proto.Credit{}, false
	}
	c := r.buf[r.head].c
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return c, true
}
