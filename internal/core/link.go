package core

import (
	"sync/atomic"

	"stashsim/internal/buffer"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
)

// Link is one directed channel between two components (switch→switch,
// endpoint→switch or switch→endpoint) together with its reverse credit
// path. Flits written at cycle t become visible to the receiver at
// t+Latency; credits likewise. Because Latency >= 1, a link may safely be
// written by its producer and read by its consumer within the same parallel
// simulation cycle (one-cycle lookahead).
//
// Concretely, each direction is a single-producer single-consumer pair of
// parity inboxes plus an owner-private ring. A push during cycle t appends
// to inbox slot t&1; the ring's owner folds slot (t+1)&1 — everything the
// remote side wrote during cycle t-1 — on its first access of cycle t. The
// executor's inter-cycle barrier orders those cycle-t-1 writes before the
// cycle-t fold, and the two sides never touch the same slot within a
// cycle, so the link is race-free without locks. An entry pushed at t is
// folded at t+1 and due at t+Latency >= t+1, so the fold is never late —
// provided the owner touches the link every cycle, which every switch and
// endpoint step does unconditionally: the active-set idle probes
// (FlitPending, CreditPending) fold the inbox even when the rest of the
// port's work is skipped. Sparse direct use (unit tests) instead merges
// both slots by arrival time, which equals push order because Latency is
// constant.
//
// Link fields are parallel-phase state by design: they ARE the inbox
// mediation the rest of the contract leans on, race-free by the parity
// protocol above rather than by ownership.
//
//stashsim:phase parallel
type Link struct {
	Latency int64

	// Fault, when non-nil, screens every transmitted flit for injected
	// drops, outages, and corruption. Credited marks links whose producer
	// runs credit-based flow control (endpoint→switch and switch→switch);
	// on those, a dropped flit's credit is synthesized onto the producer's
	// private synth ring so the producer's credit count stays conserved.
	Fault    *fault.LinkFault
	Credited bool

	// Forward path: producer appends to flitIn[now&1] (SendFlit); the
	// consumer folds into flits and pops (RecvFlit/PeekFlit/DropFlit).
	flits       buffer.TimedRing
	flitIn      [2][]buffer.TimedFlit
	flitDrained int64

	// Reverse path: the forward-consumer appends to credIn[now&1]
	// (SendCredit); the forward-producer folds into credits and pops
	// (RecvCredit / RecvCreditsInto). Credits are carried as per-cycle
	// batches — SendCredit coalesces every credit returned during one
	// cycle into one entry of per-VC and shared counts — so a cycle costs
	// one ring slot however many credits it returns, and the receiving
	// side replenishes its counter with a handful of integer adds. synth
	// carries the credits synthesized for faulted drops — pushed and
	// popped by the forward-producer alone, so it needs no inbox.
	credits     timedCreditRing
	credIn      [2][]creditBatch
	credDrained int64
	synth       timedCreditRing

	// faultDropped counts flits destroyed on this link by injected
	// faults, the per-edge destruction term of the conservation law.
	faultDropped int64

	// Wake boards let a consumer switch skip idle links entirely instead
	// of probing each one every cycle. A producer push at cycle t raises
	// the port's flag in slab t&1 of the consumer's board; the consumer
	// scans and clears slab (t+1)&1 at cycle t — the slab producers are
	// *not* writing this cycle — so the flags are race-free by the same
	// parity argument as the inboxes, and pending-ness for a whole switch
	// collapses into one consumer-owned cache line. Boards are wired by
	// AttachInLink (flit side) and AttachOutLink (credit side); links used
	// outside a switch (endpoint-consumed sides, unit tests) leave them
	// nil and keep the probe-every-cycle discipline.
	flitWake *[2][64]bool
	flitPort uint8
	credWake *[2][64]bool
	credPort uint8

	// epochClock, when non-nil, switches the link into epoch-batched
	// delivery for conservative-PDES partitioning (see EnableEpochDelivery):
	// the producer stages pushes in slab epoch&1 and the consumer's
	// partition drains slab (epoch-1)&1 once at the start of each epoch, so
	// the two sides never touch the same slab between epoch barriers and no
	// per-cycle fold or wake-board write crosses the partition boundary
	// mid-epoch. The pointer itself is written only while the simulation is
	// quiescent (executor wiring/teardown); the pointee is the executor's
	// atomic epoch counter.
	epochClock *atomic.Int64
}

// NewLink builds a link with the given one-way latency in cycles.
func NewLink(latency int64) *Link {
	if latency < 1 {
		panic("core: link latency must be at least one cycle")
	}
	return &Link{Latency: latency, flitDrained: -1, credDrained: -1}
}

// SendFlit transmits a flit at cycle now; it arrives at now+Latency.
// When a fault injector is attached, the flit may be dropped on the wire
// (whole packets at a time — see fault.LinkFault) or corrupted in place.
// The producer has already taken a downstream credit for a dropped flit,
// so on credited links the credit the receiver would have returned is
// synthesized at the time it would have come back (one round trip);
// without it the producer's credit pool would leak one slot per drop.
//stashsim:noalloc
func (l *Link) SendFlit(now int64, f proto.Flit) {
	if l.Fault != nil && l.Fault.OnFlit(now, &f) {
		l.faultDropped++
		if l.Credited {
			l.synth.add(now+2*l.Latency, proto.Credit{VC: f.VC, Shared: f.Flags&proto.FlagShared != 0})
		}
		return
	}
	if c := l.epochClock; c != nil {
		// Epoch mode: stage into the current epoch's slab and skip the
		// wake board — the consumer lives in another partition and its
		// board must not be written mid-epoch. The drain at the next
		// epoch boundary arms the port instead.
		s := c.Load() & 1
		l.flitIn[s] = append(l.flitIn[s], buffer.TimedFlit{At: now + l.Latency, Flit: f})
		return
	}
	s := now & 1
	l.flitIn[s] = append(l.flitIn[s], buffer.TimedFlit{At: now + l.Latency, Flit: f})
	if l.flitWake != nil {
		l.flitWake[s][l.flitPort] = true
	}
}

// drainFlits folds arrived inbox entries into the consumer's ring, once
// per cycle. The every-cycle fast path touches only the slot the producer
// filled last cycle; the sparse path (owner skipped one or more cycles —
// never under the executor) merges both slots by arrival time.
//stashsim:noalloc
func (l *Link) drainFlits(now int64) {
	if now == l.flitDrained {
		return
	}
	if now == l.flitDrained+1 {
		prev := (now & 1) ^ 1
		for i := range l.flitIn[prev] {
			l.flits.Push(l.flitIn[prev][i])
		}
		l.flitIn[prev] = l.flitIn[prev][:0]
	} else {
		l.mergeFlitSlabs()
	}
	l.flitDrained = now
}

// mergeFlitSlabs folds both inbox slabs into the ring, merged by arrival
// time. Callers must hold both slabs quiescent (sparse serial use, or the
// epoch-mode enable/disable flush between runs).
//
//stashsim:noalloc
func (l *Link) mergeFlitSlabs() {
	a, b := l.flitIn[0], l.flitIn[1]
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j == len(b) || (i < len(a) && a[i].At <= b[j].At) {
			l.flits.Push(a[i])
			i++
		} else {
			l.flits.Push(b[j])
			j++
		}
	}
	l.flitIn[0], l.flitIn[1] = a[:0], b[:0]
}

// drainCredits is drainFlits for the reverse path.
//
//stashsim:noalloc
func (l *Link) drainCredits(now int64) {
	if now == l.credDrained {
		return
	}
	if now == l.credDrained+1 {
		prev := (now & 1) ^ 1
		for i := range l.credIn[prev] {
			l.credits.push(l.credIn[prev][i])
		}
		l.credIn[prev] = l.credIn[prev][:0]
	} else {
		l.mergeCredSlabs()
	}
	l.credDrained = now
}

// mergeCredSlabs is mergeFlitSlabs for the reverse path.
//
//stashsim:noalloc
func (l *Link) mergeCredSlabs() {
	a, b := l.credIn[0], l.credIn[1]
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j == len(b) || (i < len(a) && a[i].at <= b[j].at) {
			l.credits.push(a[i])
			i++
		} else {
			l.credits.push(b[j])
			j++
		}
	}
	l.credIn[0], l.credIn[1] = a[:0], b[:0]
}

// foldFlits is the inline fast path of the once-per-cycle inbox fold: when
// the owner touched the link last cycle and nothing arrived since, it
// reduces to one flag store with no call. Every other case — entries to
// fold, a repeated touch this cycle, or a sparse gap — falls through to
// drainFlits, which handles them all.
//stashsim:noalloc
func (l *Link) foldFlits(now int64) {
	if l.epochClock != nil {
		return
	}
	if now != l.flitDrained+1 || len(l.flitIn[(now&1)^1]) != 0 {
		l.drainFlits(now)
		return
	}
	l.flitDrained = now
}

// foldCredits is foldFlits for the reverse path.
//
//stashsim:noalloc
func (l *Link) foldCredits(now int64) {
	if l.epochClock != nil {
		return
	}
	if now != l.credDrained+1 || len(l.credIn[(now&1)^1]) != 0 {
		l.drainCredits(now)
		return
	}
	l.credDrained = now
}

// foldWakeFlits folds the foldable parity slot, tolerating arbitrarily
// many skipped owner cycles. It is safe only for wake-gated owners: every
// producer push raises the port's wake flag for the following cycle, so a
// cycle the owner skipped provably had nothing to fold, and the opposite
// slot — the one producers may be appending to right now — is never read.
//stashsim:noalloc
func (l *Link) foldWakeFlits(now int64) {
	if l.epochClock != nil {
		return
	}
	prev := (now + 1) & 1
	if len(l.flitIn[prev]) != 0 {
		for i := range l.flitIn[prev] {
			l.flits.Push(l.flitIn[prev][i])
		}
		l.flitIn[prev] = l.flitIn[prev][:0]
	}
	l.flitDrained = now
}

// foldWakeCredits is foldWakeFlits for the reverse path.
//
//stashsim:noalloc
func (l *Link) foldWakeCredits(now int64) {
	if l.epochClock != nil {
		return
	}
	prev := (now + 1) & 1
	if len(l.credIn[prev]) != 0 {
		for i := range l.credIn[prev] {
			l.credits.push(l.credIn[prev][i])
		}
		l.credIn[prev] = l.credIn[prev][:0]
	}
	l.credDrained = now
}

// EnableEpochDelivery switches the link into epoch-batched delivery for
// conservative-PDES partitioning: pushes go to inbox slab clock&1 without
// raising wake boards, per-cycle folds become no-ops, and the consumer's
// partition drains slab (epoch-1)&1 once at each epoch boundary
// (DrainEpochFlits/DrainEpochCredits on the owning switch). Exactness
// follows from the lookahead rule — every epoch is at most as long as this
// link's Latency, so an entry staged during epoch e cannot become due
// before epoch e+1 starts, and arrival times stay monotone across drains.
// Call only while the simulation is quiescent (executor wiring); any
// entries still staged from cycle-mode running are folded into the rings
// first so nothing is stranded.
//
//stashsim:phase serial
func (l *Link) EnableEpochDelivery(clock *atomic.Int64) {
	l.mergeFlitSlabs()
	l.mergeCredSlabs()
	l.epochClock = clock
}

// DisableEpochDelivery returns the link to per-cycle parity delivery.
// resumeAt is the next cycle the simulation will run; the drained markers
// are set so the first fold of that cycle takes the race-free fast path
// (only the slab producers are not writing). Staged epoch entries are
// folded into the rings first. Quiescent-only, like EnableEpochDelivery.
//
//stashsim:phase serial
func (l *Link) DisableEpochDelivery(resumeAt int64) {
	l.mergeFlitSlabs()
	l.mergeCredSlabs()
	l.epochClock = nil
	l.flitDrained = resumeAt - 1
	l.credDrained = resumeAt - 1
}

// EpochDelivery reports whether the link is in epoch-batched mode.
func (l *Link) EpochDelivery() bool { return l.epochClock != nil }

// drainEpochFlits folds one parity slab into the consumer's ring at an
// epoch boundary. The caller (the consumer partition's drain, running
// after the epoch barrier) passes the slab the producer filled during the
// *previous* epoch; the producer is now staging into the other slab, so
// the access is single-threaded by the same parity argument as the
// per-cycle folds. Entries come out in push order, which is arrival-time
// order because Latency is constant.
//
//stashsim:noalloc
func (l *Link) drainEpochFlits(slab int) {
	in := l.flitIn[slab]
	for i := range in {
		l.flits.Push(in[i])
	}
	l.flitIn[slab] = in[:0]
}

// drainEpochCredits is drainEpochFlits for the reverse path.
//
//stashsim:noalloc
func (l *Link) drainEpochCredits(slab int) {
	in := l.credIn[slab]
	for i := range in {
		l.credits.push(in[i])
	}
	l.credIn[slab] = in[:0]
}

// FlitPending reports whether a flit is due for the consumer at now. It is
// the consumer-side idle probe behind active-set scheduling: a few loads on
// an idle link. Calling it also performs the once-per-cycle inbox fold, so a
// port that consults it every cycle keeps the link on the race-free
// fast-path fold even when the rest of its step is skipped.
//stashsim:noalloc
func (l *Link) FlitPending(now int64) bool {
	l.foldFlits(now)
	return l.flits.FrontDue(now)
}

// CreditPending is FlitPending for the reverse (credit) path.
//
//stashsim:noalloc
func (l *Link) CreditPending(now int64) bool {
	l.foldCredits(now)
	return l.credits.frontDue(now) || l.synth.frontDue(now)
}

// FaultDropped returns the number of flits destroyed on this link by
// injected faults.
func (l *Link) FaultDropped() int64 { return l.faultDropped }

// RecvFlit returns the next flit whose arrival time has passed.
//
//stashsim:noalloc
func (l *Link) RecvFlit(now int64) (proto.Flit, bool) {
	l.foldFlits(now)
	t, ok := l.flits.PopDue(now)
	return t.Flit, ok
}

// PeekFlit returns a pointer to the next arrived flit without consuming
// it, or nil. Used when the receiver may have to stall the write (bank
// conflicts).
//
//stashsim:noalloc
func (l *Link) PeekFlit(now int64) *proto.Flit {
	l.foldFlits(now)
	if l.flits.Empty() {
		return nil
	}
	front := l.flits.Front()
	if front.At > now {
		return nil
	}
	return &front.Flit
}

// DropFlit consumes the flit previously returned by PeekFlit.
//
//stashsim:noalloc
func (l *Link) DropFlit(now int64) {
	l.foldFlits(now)
	if _, ok := l.flits.PopDue(now); !ok {
		panic("core: DropFlit with no due flit")
	}
}

// InFlightFlits returns the number of flits on the wire, folded or not.
// Audit-only: call it only while no component is stepping (between runs,
// or from the executor's serial PreCycle/PostCycle hooks).
func (l *Link) InFlightFlits() int {
	return l.flits.Len() + len(l.flitIn[0]) + len(l.flitIn[1])
}

// auditFlits calls fn for every flit currently on the wire, including
// entries still in the parity inboxes. Used by the invariant checker only
// (fn must not mutate the flit), under the same quiescence rule as
// InFlightFlits; the visit order is deterministic but not arrival order.
func (l *Link) auditFlits(fn func(*proto.Flit)) {
	for i := 0; i < l.flits.Len(); i++ {
		fn(&l.flits.At(i).Flit)
	}
	for s := range l.flitIn {
		for i := range l.flitIn[s] {
			fn(&l.flitIn[s][i].Flit)
		}
	}
}

// auditCredits calls fn once per credit currently on the wire, expanding
// the per-cycle batches.
func (l *Link) auditCredits(fn func(proto.Credit)) {
	audit := func(b *creditBatch) {
		for vc := range b.resv {
			for k := uint16(0); k < b.resv[vc]; k++ {
				fn(proto.Credit{VC: uint8(vc)})
			}
		}
		for k := uint16(0); k < b.shared; k++ {
			fn(proto.Credit{Shared: true})
		}
	}
	for i := 0; i < l.credits.n; i++ {
		audit(l.credits.at(i))
	}
	for i := 0; i < l.synth.n; i++ {
		audit(l.synth.at(i))
	}
	for s := range l.credIn {
		for i := range l.credIn[s] {
			audit(&l.credIn[s][i])
		}
	}
}

// SendCredit returns a credit to the link's producer; it arrives after the
// same latency as the forward path. Credits sent during the same cycle
// coalesce into one batch entry.
//stashsim:noalloc
func (l *Link) SendCredit(now int64, c proto.Credit) {
	at := now + l.Latency
	if ec := l.epochClock; ec != nil {
		// Epoch mode: same staging rule as SendFlit — current epoch's
		// slab, no cross-partition wake-board write.
		s := ec.Load() & 1
		if n := len(l.credIn[s]); n > 0 && l.credIn[s][n-1].at == at {
			l.credIn[s][n-1].add(c)
			return
		}
		l.credIn[s] = append(l.credIn[s], newCreditBatch(at, c))
		return
	}
	s := now & 1
	if l.credWake != nil {
		l.credWake[s][l.credPort] = true
	}
	if n := len(l.credIn[s]); n > 0 && l.credIn[s][n-1].at == at {
		l.credIn[s][n-1].add(c)
		return
	}
	l.credIn[s] = append(l.credIn[s], newCreditBatch(at, c))
}

// RecvCredit returns the next credit whose arrival time has passed: the
// earlier-due of the receiver's returned credits and the synthesized
// fault-drop credits, ties going to the receiver's. Within one batch
// (one sending cycle) credits come out reserved-VC-ascending, then shared;
// every consumer folds them into a commutative counter, so the intra-cycle
// order carries no information. Due-time order across the two rings keeps
// the result independent of how the two push sides interleave within a
// cycle, which the parallel executor does not define.
//stashsim:noalloc
func (l *Link) RecvCredit(now int64) (proto.Credit, bool) {
	l.foldCredits(now)
	cf, cok := l.credits.front()
	sf, sok := l.synth.front()
	switch {
	case cok && cf.at <= now && (!sok || cf.at <= sf.at):
		return l.credits.popOneDue(now)
	case sok && sf.at <= now:
		return l.synth.popOneDue(now)
	}
	return proto.Credit{}, false
}

// RecvCreditsInto folds every due credit — receiver-returned and
// fault-synthesized — into cc and returns how many were applied. This is
// the hot-path form of RecvCredit: one inbox fold and a few integer adds
// per sending cycle, instead of one ring pop per credit. Equivalent to
// draining RecvCredit in a loop because CreditCounter.Return is
// commutative.
//stashsim:noalloc
func (l *Link) RecvCreditsInto(now int64, cc *buffer.CreditCounter) int {
	l.foldCredits(now)
	return l.credits.popDueInto(now, cc) + l.synth.popDueInto(now, cc)
}

// creditBatch holds every credit that one cycle returned over a link: a
// count per reserved VC plus a shared-pool count, all due at the same time.
//
//stashsim:phase parallel
type creditBatch struct {
	at     int64
	resv   [proto.NumNetVCs]uint16
	shared uint16
}

//stashsim:noalloc
func newCreditBatch(at int64, c proto.Credit) creditBatch {
	b := creditBatch{at: at}
	b.add(c)
	return b
}

//stashsim:noalloc
func (b *creditBatch) add(c proto.Credit) {
	if c.Shared {
		b.shared++
		return
	}
	if c.VC >= proto.NumNetVCs {
		panic("core: reserved credit for an internal VC")
	}
	b.resv[c.VC]++
}

// take removes one credit in the canonical order (reserved VCs ascending,
// then shared) and reports whether the batch is now empty.
//
//stashsim:noalloc
func (b *creditBatch) take() (proto.Credit, bool) {
	total := b.shared
	var c proto.Credit
	taken := false
	for vc := range b.resv {
		total += b.resv[vc]
		if !taken && b.resv[vc] > 0 {
			b.resv[vc]--
			c = proto.Credit{VC: uint8(vc)}
			taken = true
			total--
		}
	}
	if !taken {
		if b.shared == 0 {
			panic("core: take from empty credit batch")
		}
		b.shared--
		c = proto.Credit{Shared: true}
		total--
	}
	return c, total == 0
}

// timedCreditRing is a growable FIFO of in-flight credit batches. nextAt
// mirrors the front batch's due time so the per-cycle probes stay on the
// ring header (see buffer.TimedRing).
//
//stashsim:phase parallel
type timedCreditRing struct {
	buf    []creditBatch
	head   int
	n      int
	nextAt int64
}

// add coalesces a credit into the tail batch when the due times match,
// otherwise appends a new batch.
//
//stashsim:noalloc
func (r *timedCreditRing) add(at int64, c proto.Credit) {
	if r.n > 0 {
		tail := r.at(r.n - 1)
		if tail.at == at {
			tail.add(c)
			return
		}
	}
	r.push(newCreditBatch(at, c))
}

//stashsim:noalloc
func (r *timedCreditRing) push(t creditBatch) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		//lint:allow allocfree -- amortized doubling; steady state stays within the high-water capacity
		nb := make([]creditBatch, size)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = nb
		r.head = 0
	}
	if r.n == 0 {
		r.nextAt = t.at
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

//stashsim:noalloc
func (r *timedCreditRing) at(i int) *creditBatch {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

//stashsim:noalloc
func (r *timedCreditRing) front() (*creditBatch, bool) {
	if r.n == 0 {
		return nil, false
	}
	return &r.buf[r.head], true
}

// frontDue reports whether the front batch is due; small enough to inline
// into the per-cycle CreditPending probe, and header-only via nextAt.
//
//stashsim:noalloc
func (r *timedCreditRing) frontDue(now int64) bool {
	return r.n > 0 && r.nextAt <= now
}

// popOneDue removes a single credit from the front batch if it is due.
//
//stashsim:noalloc
func (r *timedCreditRing) popOneDue(now int64) (proto.Credit, bool) {
	if r.n == 0 || r.nextAt > now {
		return proto.Credit{}, false
	}
	c, empty := r.buf[r.head].take()
	if empty {
		r.head = (r.head + 1) & (len(r.buf) - 1)
		r.n--
		if r.n > 0 {
			r.nextAt = r.buf[r.head].at
		}
	}
	return c, true
}

// popDueInto folds every due batch into cc and returns the credit count.
//
//stashsim:noalloc
func (r *timedCreditRing) popDueInto(now int64, cc *buffer.CreditCounter) int {
	total := 0
	for r.n > 0 && r.nextAt <= now {
		b := &r.buf[r.head]
		for vc := range b.resv {
			if n := int(b.resv[vc]); n > 0 {
				cc.ReturnN(vc, n)
				total += n
			}
		}
		if n := int(b.shared); n > 0 {
			cc.ReturnShared(n)
			total += n
		}
		*b = creditBatch{}
		r.head = (r.head + 1) & (len(r.buf) - 1)
		r.n--
		if r.n > 0 {
			r.nextAt = r.buf[r.head].at
		}
	}
	return total
}
