package core

import "testing"

// TestConfigValidateStashParity covers the erasure-coding knob: the group
// width must fit the bank budget (k members plus one parity flit run, all
// in distinct banks) and only makes sense with end-to-end stashing.
func TestConfigValidateStashParity(t *testing.T) {
	ok := TinyConfig() // P=2, A=4: 5 stash-capable banks per switch
	ok.Mode = StashE2E
	ok.StashParity = 4
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Config){
		"width-one":      func(c *Config) { c.StashParity = 1 },
		"width-over-max": func(c *Config) { c.StashParity = MaxStashParity + 1 },
		"not-e2e":        func(c *Config) { c.Mode = StashOff },
		"too-few-banks":  func(c *Config) { c.StashParity = 5 }, // needs 6 banks, tiny has 5
	} {
		t.Run(name, func(t *testing.T) {
			cfg := TinyConfig()
			cfg.Mode = StashE2E
			cfg.StashParity = 4
			mutate(cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("invalid parity config accepted: %+v", cfg.StashParity)
			}
		})
	}
}
