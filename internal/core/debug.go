package core

import (
	"fmt"
	"strings"

	"stashsim/internal/proto"
)

// DumpState renders the switch's internal occupancy for debugging stalls.
func (s *Switch) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %d\n", s.ID)
	for p := range s.in {
		ip := &s.in[p]
		if ip.buf.Used() == 0 {
			continue
		}
		fmt.Fprintf(&b, " in%d(%s) used=%d occ=%b", p, ip.class, ip.buf.Used(), ip.buf.Occupied())
		for vc := 0; vc < proto.NumNetVCs; vc++ {
			f := ip.buf.Front(vc)
			if f == nil {
				continue
			}
			lt := &ip.latch[vc]
			fmt.Fprintf(&b, " [vc%d len=%d pkt=%x seq=%d/%d hops=%d lat={act:%v start:%v out:%d vc:%d ej:%v}]",
				vc, ip.buf.Len(vc), f.PktID, f.Seq, f.Size, f.Hops, lt.active, lt.started, lt.out, lt.vc, lt.eject)
		}
		b.WriteByte('\n')
	}
	for ti := range s.tiles {
		t := &s.tiles[ti]
		if t.occupied == 0 {
			continue
		}
		fmt.Fprintf(&b, " tile(%d,%d) occ=%d", t.row, t.col, t.occupied)
		for slot := 0; slot < s.cfg.TileIn; slot++ {
			for vc := 0; vc < proto.NumVCs; vc++ {
				rb := &t.rowBufs[slot][vc]
				if rb.Empty() {
					continue
				}
				f := rb.Front()
				lk := &t.outLock[s.cfg.TileOutOf(int(f.Out))][vc]
				fmt.Fprintf(&b, " [s%d vc%d len=%d out=%d pkt=%x seq=%d lock={%x %v}]",
					slot, vc, rb.Len(), f.Out, f.PktID, f.Seq, lk.pkt, lk.active)
			}
		}
		b.WriteByte('\n')
	}
	for p := range s.out {
		op := &s.out[p]
		if op.colOcc == 0 && op.buf.Used() == 0 {
			continue
		}
		avail := -1
		if op.credits != nil {
			avail = op.credits.SharedFree()
		}
		fmt.Fprintf(&b, " out%d(%s) colocc=%d queued=%d used=%d/%d sharedCred=%d acc=%d",
			p, op.class, op.colOcc, op.buf.Queued(), op.buf.Used(), op.buf.Capacity(), avail, op.acc)
		for r := 0; r < s.cfg.Rows; r++ {
			for vc := 0; vc < proto.NumVCs; vc++ {
				rb := &op.colBufs[r][vc]
				if rb.Empty() {
					continue
				}
				f := rb.Front()
				lk := &op.muxLock[effVC(f)]
				fmt.Fprintf(&b, " [r%d vc%d len=%d pkt=%x seq=%d lock={r%d %x %v}]",
					r, vc, rb.Len(), f.PktID, f.Seq, lk.row, lk.pkt, lk.active)
			}
		}
		occ := op.buf.Occupied()
		for vc := 0; vc < proto.NumNetVCs; vc++ {
			if occ&(1<<uint(vc)) == 0 {
				continue
			}
			f := op.buf.Front(vc)
			av := -1
			if op.credits != nil {
				av = op.credits.Avail(vc)
			}
			fmt.Fprintf(&b, " {obuf vc%d pkt=%x seq=%d cred=%d}", vc, f.PktID, f.Seq, av)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpLocks renders every active wormhole lock and stash latch.
func (s *Switch) DumpLocks() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %d locks\n", s.ID)
	for ti := range s.tiles {
		t := &s.tiles[ti]
		for o := range t.outLock {
			for vc := range t.outLock[o] {
				lk := &t.outLock[o][vc]
				if lk.active {
					fmt.Fprintf(&b, " tile(%d,%d) outLock[o=%d][vc=%d] pkt=%x\n", t.row, t.col, o, vc, lk.pkt)
				}
			}
		}
		for slot, sl := range t.sLatch {
			if sl.active {
				fmt.Fprintf(&b, " tile(%d,%d) sLatch[slot=%d] port=%d\n", t.row, t.col, slot, sl.port)
			}
		}
	}
	for p := range s.out {
		op := &s.out[p]
		for vc := range op.muxLock {
			lk := &op.muxLock[vc]
			if lk.active {
				fmt.Fprintf(&b, " out%d muxLock[vc=%d] row=%d pkt=%x\n", p, vc, lk.row, lk.pkt)
			}
		}
	}
	for p := range s.in {
		ip := &s.in[p]
		for vc := range ip.latch {
			lt := &ip.latch[vc]
			if lt.active && lt.started {
				fmt.Fprintf(&b, " in%d latch[vc=%d] out=%d ivc=%d redirect=%v stashCol=%d\n", p, vc, lt.out, lt.vc, lt.redirect, lt.stashCol)
			}
		}
	}
	return b.String()
}
