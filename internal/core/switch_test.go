package core

import (
	"testing"

	"stashsim/internal/buffer"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// swHarness wires a lone switch with externally driven links. Injection
// respects the switch's credit flow control via per-port mirrors of its
// input buffers, emulating a well-behaved upstream device.
type swHarness struct {
	s        *Switch
	cfg      *Config
	in       []*Link // we write flits here (toward the switch)
	out      []*Link // the switch writes flits here
	credits  []*buffer.CreditCounter
	returned []int // credits received back per port
	pending  [][]proto.Flit
	now      sim.Tick
}

func newSwHarness(t *testing.T, mutate func(*Config)) *swHarness {
	t.Helper()
	cfg := TinyConfig()
	if mutate != nil {
		mutate(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewSwitch(0, cfg, sim.NewRNG(cfg.Seed))
	h := &swHarness{s: s, cfg: cfg}
	radix := cfg.Topo.Radix()
	for p := 0; p < radix; p++ {
		in := NewLink(1)
		out := NewLink(1)
		s.AttachInLink(p, in)
		cap := 0
		if cfg.Topo.PortClass(p) != topo.Endpoint {
			cap = cfg.NormalInCap(cfg.Topo.PortClass(p))
		}
		s.AttachOutLink(p, out, cap)
		h.in = append(h.in, in)
		h.out = append(h.out, out)
		h.credits = append(h.credits,
			buffer.NewCreditCounter(cfg.NormalInCap(cfg.Topo.PortClass(p)), proto.NumNetVCs))
		h.returned = append(h.returned, 0)
		h.pending = append(h.pending, nil)
	}
	return h
}

// inject queues one whole packet for transmission into input port p. The
// run loop sends pending flits at one per cycle per port, gated on the
// switch's returned credits like a real upstream device.
func (h *swHarness) inject(p int, f proto.Flit) {
	for seq := 0; seq < int(f.Size); seq++ {
		fl := f
		fl.Seq = uint8(seq)
		fl.Flags &^= proto.FlagHead | proto.FlagTail
		if seq == 0 {
			fl.Flags |= proto.FlagHead
		}
		if seq == int(f.Size)-1 {
			fl.Flags |= proto.FlagTail
		}
		h.pending[p] = append(h.pending[p], fl)
	}
}

// run steps the switch n cycles, collecting emitted flits per port.
func (h *swHarness) run(n int64) map[int][]proto.Flit {
	got := map[int][]proto.Flit{}
	for i := int64(0); i < n; i++ {
		// Upstream devices: drain returned credits, send pending flits.
		for p := range h.pending {
			for {
				c, ok := h.in[p].RecvCredit(h.now)
				if !ok {
					break
				}
				h.credits[p].Return(c)
				h.returned[p]++
			}
			if len(h.pending[p]) > 0 {
				f := h.pending[p][0]
				if h.credits[p].Avail(int(f.VC)) > 0 {
					h.credits[p].Take(&f)
					h.in[p].SendFlit(h.now, f)
					h.pending[p] = h.pending[p][1:]
				}
			}
		}
		h.s.Step(h.now)
		h.now++
		for p, l := range h.out {
			for {
				f, ok := l.RecvFlit(h.now)
				if !ok {
					break
				}
				got[p] = append(got[p], f)
				// Return a downstream credit so the switch can keep
				// sending (non-endpoint ports).
				if h.cfg.Topo.PortClass(p) != topo.Endpoint {
					l.SendCredit(h.now, proto.Credit{VC: f.VC, Shared: f.Flags&proto.FlagShared != 0})
				}
			}
		}
	}
	return got
}

func TestSwitchEjectsToAttachedEndpoint(t *testing.T) {
	h := newSwHarness(t, nil)
	// A packet arriving on a global port, destined to endpoint 1 of this
	// switch, must exit on endpoint port 1.
	gport := h.cfg.Topo.GlobalPort(0)
	h.inject(gport, proto.Flit{
		Src: 50, Dst: 1, PktID: proto.MakePktID(50, 1), Size: 4,
		Kind: proto.Data, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
	})
	got := h.run(100)
	if len(got[1]) != 4 {
		t.Fatalf("endpoint port 1 emitted %d flits, want 4 (all: %v)", len(got[1]), got)
	}
	for p, fl := range got {
		if p != 1 && len(fl) > 0 {
			t.Fatalf("flits leaked out of port %d", p)
		}
	}
	for i, f := range got[1] {
		if int(f.Seq) != i || f.PktID != proto.MakePktID(50, 1) {
			t.Fatalf("flit %d out of order: %+v", i, f)
		}
	}
}

func TestSwitchForwardsOnNextVC(t *testing.T) {
	h := newSwHarness(t, nil)
	// A committed-minimal transit packet arriving on VC1 with Hops=2,
	// destined to another group, must leave on a network port with VC=2
	// and Hops=3 (VC = channels traversed; monotone for deadlock
	// freedom).
	dst := int32(h.cfg.Topo.NumEndpoints() - 1)
	h.inject(h.cfg.Topo.GlobalPort(0), proto.Flit{
		Src: 50, Dst: dst, PktID: proto.MakePktID(50, 2), Size: 2,
		Kind: proto.Data, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
	})
	got := h.run(100)
	var flits []proto.Flit
	outPort := -1
	for p, fl := range got {
		if len(fl) > 0 {
			if outPort != -1 {
				t.Fatal("packet left through two ports")
			}
			outPort = p
			flits = fl
		}
	}
	if outPort < 0 || len(flits) != 2 {
		t.Fatalf("packet did not transit: %v", got)
	}
	if h.cfg.Topo.PortClass(outPort) == topo.Endpoint {
		t.Fatalf("transit packet ejected at endpoint port %d", outPort)
	}
	for _, f := range flits {
		if f.VC != 2 || f.Hops != 3 {
			t.Fatalf("flit left with VC=%d Hops=%d, want VC=2 Hops=3", f.VC, f.Hops)
		}
	}
}

func TestSwitchCreditsReturnUpstream(t *testing.T) {
	h := newSwHarness(t, nil)
	gport := h.cfg.Topo.GlobalPort(0)
	h.inject(gport, proto.Flit{
		Src: 50, Dst: 1, PktID: proto.MakePktID(50, 3), Size: 8,
		Kind: proto.Data, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
	})
	h.run(100)
	if h.returned[gport] != 8 {
		t.Fatalf("%d credits returned, want 8", h.returned[gport])
	}
}

func TestSwitchECNMarksAtCongestedInput(t *testing.T) {
	h := newSwHarness(t, func(c *Config) { c.ECN = DefaultECN() })
	gport := h.cfg.Topo.GlobalPort(0)
	// Oversubscribe ejection port 1 from one input at full line rate:
	// the 10/13-paced output backs the pipeline up into the input
	// buffer, which must cross the 50% threshold and start marking.
	for i := 0; i < 120; i++ {
		h.inject(gport, proto.Flit{
			Src: 50, Dst: 1, PktID: proto.MakePktID(50, 100+uint32(i)), Size: 24,
			Kind: proto.Data, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
		})
	}
	got := h.run(5000)
	if h.s.Counters.ECNMarks == 0 {
		t.Fatal("no ECN marks despite sustained oversubscription")
	}
	marked := 0
	for _, f := range got[1] {
		if f.Head() && f.Flags&proto.FlagECN != 0 {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("marks did not propagate to delivered heads")
	}
}

func TestSwitchE2EStashesInjectedPacket(t *testing.T) {
	h := newSwHarness(t, func(c *Config) { c.Mode = StashE2E })
	// A data packet injected at end port 0 gets a stash copy somewhere
	// and a tracking entry; the copy is deleted when the ACK returns.
	h.inject(0, proto.Flit{
		Src: 0, Dst: 1, PktID: proto.MakePktID(0, 1), Size: 6,
		Kind: proto.Data, VC: 0, Phase: proto.PhaseInject, MidGroup: -1,
	})
	h.run(200)
	if h.s.Counters.E2ETracked != 1 {
		t.Fatalf("tracked %d packets, want 1", h.s.Counters.E2ETracked)
	}
	if used := h.s.StashUsed(); used != 6 {
		t.Fatalf("stash holds %d flits, want 6", used)
	}
	// The ACK comes back through the fabric addressed to endpoint 0; it
	// arrives at this switch on some network port and ejects via end
	// port 0, where the tracker observes it.
	h.inject(h.cfg.Topo.GlobalPort(1), proto.Flit{
		Src: 1, Dst: 0, PktID: proto.MakePktID(0, 1), Size: 1,
		Kind: proto.ACK, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
	})
	h.run(200)
	if used := h.s.StashUsed(); used != 0 {
		t.Fatalf("stash still holds %d flits after ACK", used)
	}
	if h.s.Counters.E2EDeletes != 1 {
		t.Fatalf("deletes %d, want 1", h.s.Counters.E2EDeletes)
	}
	if h.s.TrackedPackets() != 0 {
		t.Fatal("tracking entry leaked")
	}
}

func TestSwitchOutputSerialization(t *testing.T) {
	h := newSwHarness(t, nil)
	// Saturate ejection port 0 and verify the paced 10/13 output rate.
	for i := 0; i < 15; i++ {
		h.inject(h.cfg.Topo.GlobalPort(0), proto.Flit{
			Src: 50, Dst: 0, PktID: proto.MakePktID(50, uint32(10+i)), Size: 24,
			Kind: proto.Data, VC: 1, Hops: 2, Phase: proto.PhaseMinimal, MidGroup: -1,
		})
	}
	start := h.now
	got := h.run(500)
	n := len(got[0])
	elapsed := float64(h.now - start)
	rate := float64(n) / elapsed
	if rate > 10.0/13.0+0.01 {
		t.Fatalf("ejection rate %.3f exceeds 10/13 flits/cycle", rate)
	}
	if n < 200 {
		t.Fatalf("ejected only %d flits in %v cycles", n, elapsed)
	}
}
