package core

import (
	"fmt"
	"io"
	"os"

	"stashsim/internal/buffer"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// Invariants is the runtime checker for the simulator's conservation
// laws. It is always compiled in but costs a single nil check per cycle
// when disabled; when enabled (the -invariants flag, or by default in
// the network tests) it audits the global state every Every cycles:
//
//  1. Flit conservation: flits injected by endpoints plus flits minted
//     inside switches (stash duplicates, retransmission copies) equal
//     flits ejected at endpoints plus flits freed by stash deletions
//     plus the population resident in links, buffers, tiles, and pools.
//  2. Credit conservation: on every credited edge, for each VC, the
//     sender's free reserved credits plus in-flight flits and credits
//     plus the receiver's reserved occupancy equal the reserved quota —
//     and likewise for the shared pool.
//  3. Stash occupancy: no pool exceeds its capacity, and a switch with
//     zero stash capacity holds no stashed flits.
//  4. S/R confinement: the storage and retrieval VCs are switch-internal;
//     no flit on any link carries one, and a switch without stash
//     capacity has no occupied S/R column streams.
//  5. Stash liveness: every payload buffer a stash bank references is
//     still alive — a bank holding a buffer that has been returned to
//     the freelist would serve recycled (corrupt) flits on retrieval.
//     With parity groups enabled the law extends to erasure coding:
//     every live parity flit's group is accounted — per-bank parity
//     occupancy equals the sealed groups' parity placed there, every
//     group member is a live completed copy in its recorded bank, the
//     membership index is consistent, and no in-flight reconstruction
//     carries a freed payload buffer. (Parity flits enter conservation
//     through the pools' PresentFlits/FreedFlits and the switches'
//     created counts, so law 1 already balances them.)
//
// The laws are state-based, so sparse audits (Every > 1) still converge
// on any corruption the next time they run. On the first violation the
// checker writes the offending switch's DumpState to Out (os.Stderr by
// default) and panics.
type Invariants struct {
	// Every is the audit interval in cycles; values below one audit every
	// cycle.
	Every int64

	// Out receives the violation report and state dump (default stderr).
	Out io.Writer

	// Switches and ExtLinks (the endpoint→switch injection links) cover
	// every flit-holding structure exactly once: each switch enumerates
	// its own out-links.
	Switches []*Switch
	ExtLinks []*Link

	// Edges lists every credited (sender, link, receiver-buffer) triple.
	Edges []CreditEdge

	// ExtCreated and ExtDestroyed report the cumulative flits injected
	// and ejected by the endpoints.
	ExtCreated   func() int64
	ExtDestroyed func() int64

	// Checks counts the audits performed (tests assert the checker ran).
	Checks int64
}

// CreditEdge is one credited link: the sender's credit counter, the wire
// (carrying flits forward and credits back), and the receiver's DAMQ the
// counter mirrors.
type CreditEdge struct {
	Name    string
	Credits *buffer.CreditCounter
	Link    *Link
	Buf     *buffer.DAMQ
}

// Check runs one audit when now falls on the interval. A nil receiver is
// the disabled fast path.
func (iv *Invariants) Check(now sim.Tick) {
	if iv == nil {
		return
	}
	if iv.Every > 1 && int64(now)%iv.Every != 0 {
		return
	}
	iv.Checks++
	iv.checkConservation(now)
	iv.checkCredits(now)
	iv.checkStash(now)
	iv.checkStashRefs(now)
	iv.checkParity(now)
}

// checkConservation enforces laws 1 and the link half of law 4.
func (iv *Invariants) checkConservation(now sim.Tick) {
	created := iv.ExtCreated()
	destroyed := iv.ExtDestroyed()
	resident := int64(0)
	for _, l := range iv.ExtLinks {
		resident += int64(l.InFlightFlits())
		destroyed += l.FaultDropped()
		iv.checkLinkVCs(now, nil, l)
	}
	for _, s := range iv.Switches {
		created += s.created
		destroyed += s.auditFreed()
		resident += int64(s.auditResident())
		for p := 0; p < s.radix; p++ {
			if l := s.out[p].link; l != nil {
				resident += int64(l.InFlightFlits())
				destroyed += l.FaultDropped()
				iv.checkLinkVCs(now, s, l)
			}
		}
	}
	if created != destroyed+resident {
		iv.fail(now, nil, fmt.Sprintf(
			"flit conservation: created %d != destroyed %d + resident %d (leak %d)",
			created, destroyed, resident, created-destroyed-resident))
	}
}

// checkLinkVCs enforces S/R confinement on one wire: the storage and
// retrieval VCs never leave a switch.
func (iv *Invariants) checkLinkVCs(now sim.Tick, s *Switch, l *Link) {
	bad := -1
	l.auditFlits(func(f *proto.Flit) {
		if int(f.VC) >= proto.NumNetVCs && bad < 0 {
			bad = int(f.VC)
		}
	})
	if bad >= 0 {
		iv.fail(now, s, fmt.Sprintf("S/R confinement: flit with internal VC %d on a link", bad))
	}
}

// checkCredits enforces law 2 on every credited edge.
func (iv *Invariants) checkCredits(now sim.Tick) {
	for i := range iv.Edges {
		e := &iv.Edges[i]
		var resv [proto.NumNetVCs]int
		shared := 0
		e.Link.auditFlits(func(f *proto.Flit) {
			if f.Flags&proto.FlagShared != 0 {
				shared++
			} else if int(f.VC) < proto.NumNetVCs {
				resv[f.VC]++
			}
		})
		e.Link.auditCredits(func(c proto.Credit) {
			if c.Shared {
				shared++
			} else if int(c.VC) < proto.NumNetVCs {
				resv[c.VC]++
			}
		})
		quota := e.Credits.Reserve()
		for vc := 0; vc < e.Credits.NumVCs(); vc++ {
			got := e.Credits.ResvFree(vc) + resv[vc] + e.Buf.ResvUsed(vc)
			if got != quota {
				iv.fail(now, nil, fmt.Sprintf(
					"credit conservation on %s vc %d: free %d + inflight %d + held %d != reserve %d",
					e.Name, vc, e.Credits.ResvFree(vc), resv[vc], e.Buf.ResvUsed(vc), quota))
			}
		}
		sharedTotal := e.Buf.Capacity() - e.Buf.NumVCs()*e.Buf.Reserve()
		if got := e.Credits.SharedFree() + shared + e.Buf.SharedUsed(); got != sharedTotal {
			iv.fail(now, nil, fmt.Sprintf(
				"credit conservation on %s shared pool: free %d + inflight %d + held %d != %d",
				e.Name, e.Credits.SharedFree(), shared, e.Buf.SharedUsed(), sharedTotal))
		}
	}
}

// checkStash enforces law 3 and the in-switch half of law 4.
func (iv *Invariants) checkStash(now sim.Tick) {
	srMask := uint64(1)<<proto.VCStore | uint64(1)<<proto.VCRetrieve
	for _, s := range iv.Switches {
		stashless := true
		for p, pool := range s.stash {
			if pool.Used() > pool.Capacity() {
				iv.fail(now, s, fmt.Sprintf(
					"stash occupancy: sw%d port %d uses %d of %d flits",
					s.ID, p, pool.Used(), pool.Capacity()))
			}
			if pool.Capacity() > 0 {
				stashless = false
			} else if pool.PresentFlits() > 0 || pool.Reserved() > 0 {
				iv.fail(now, s, fmt.Sprintf(
					"stash occupancy: sw%d port %d holds flits with zero capacity", s.ID, p))
			}
		}
		if !stashless {
			continue
		}
		for t := range s.tiles {
			for _, occ := range s.tiles[t].slotOcc {
				if uint64(occ)&srMask != 0 {
					iv.fail(now, s, fmt.Sprintf(
						"S/R confinement: sw%d tile %d has an occupied S/R stream with no stash", s.ID, t))
				}
			}
		}
		for p := 0; p < s.radix; p++ {
			var mask uint64
			for row := 0; row < s.cfg.Rows; row++ {
				mask |= srMask << uint(row*proto.NumVCs)
			}
			if s.out[p].colMask&mask != 0 {
				iv.fail(now, s, fmt.Sprintf(
					"S/R confinement: sw%d port %d has S/R column flits with no stash", s.ID, p))
			}
		}
	}
}

// checkStashRefs enforces law 5: no stash bank references a freed payload
// buffer. The reference-counted freelists make use-after-free silent — a
// recycled buffer holds a different packet's flits, so a stale bank entry
// would retransmit garbage with a valid-looking checksum. Catch it here,
// while the dangling reference still names the guilty pool.
func (iv *Invariants) checkStashRefs(now sim.Tick) {
	for _, s := range iv.Switches {
		for p, pool := range s.stash {
			bad := uint64(0)
			dead := false
			pool.AuditRetained(func(pktID uint64, b *proto.PktBuf) {
				if b != nil && b.Freed() && (!dead || pktID < bad) {
					bad, dead = pktID, true
				}
			})
			if dead {
				iv.fail(now, s, fmt.Sprintf(
					"stash liveness: sw%d port %d bank references freed buffer for pkt %#x",
					s.ID, p, bad))
			}
		}
	}
}

// checkParity enforces the erasure-coding half of law 5 on switches with
// parity groups enabled.
func (iv *Invariants) checkParity(now sim.Tick) {
	for _, s := range iv.Switches {
		t := s.parity
		if t == nil {
			continue
		}
		perBank := make([]int, s.radix)
		members := 0
		t.AuditParity(func(parityBank, paritySize int) {
			if parityBank < 0 || parityBank >= s.radix {
				iv.fail(now, s, fmt.Sprintf(
					"parity accounting: sw%d sealed group names bank %d outside the radix", s.ID, parityBank))
			}
			perBank[parityBank] += paritySize
		}, func(pktID uint64, bank int) {
			members++
			if bank < 0 || bank >= s.radix || !s.stash[bank].Live(pktID) {
				iv.fail(now, s, fmt.Sprintf(
					"parity membership: sw%d group member pkt %#x is not a live copy in bank %d",
					s.ID, pktID, bank))
			}
		})
		for p, pool := range s.stash {
			if pool.ParityFlits() != perBank[p] {
				iv.fail(now, s, fmt.Sprintf(
					"parity accounting: sw%d port %d holds %d parity flits, groups account %d",
					s.ID, p, pool.ParityFlits(), perBank[p]))
			}
		}
		if members != t.Members() {
			iv.fail(now, s, fmt.Sprintf(
				"parity membership: sw%d index tracks %d members, groups hold %d",
				s.ID, t.Members(), members))
		}
		for i := range s.reconQ {
			if b := s.reconQ[i].buf; b != nil && b.Freed() {
				iv.fail(now, s, fmt.Sprintf(
					"parity reconstruction: sw%d in-flight rebuild of pkt %#x references a freed buffer",
					s.ID, s.reconQ[i].pktID))
			}
		}
	}
}

// fail reports a violation, dumps the offending switch (when known), and
// panics: a broken conservation law means every later measurement is
// garbage, so the run must not continue.
func (iv *Invariants) fail(now sim.Tick, s *Switch, msg string) {
	out := iv.Out
	if out == nil {
		out = os.Stderr
	}
	fmt.Fprintf(out, "invariant violation at cycle %d: %s\n", now, msg)
	if s != nil {
		io.WriteString(out, s.DumpState())
	}
	panic(fmt.Sprintf("core: invariant violated at cycle %d: %s", now, msg))
}
