package core

import (
	"fmt"
	"sort"

	"stashsim/internal/buffer"
	"stashsim/internal/snapshot"
)

// Checkpoint hooks for the switch core. Everything here runs only at a
// serial cycle barrier (the network forces one with a 1-cycle epoch when
// checkpointing under the parallel executor), so every link inbox slab is
// quiescent and every switch field is safe to walk.
//
// Link ownership: a Link is shared by its producer and consumer, so each
// link must be captured exactly once. The convention is consumer-side:
// switch input ports encode their upstream links (covering endpoint->switch
// and switch->switch edges) and endpoints encode their fromSw links
// (covering switch->endpoint edges). The network's restore walk visits
// switches and endpoints in the same order as the checkpoint walk, so the
// streams line up by construction.
//
// The link encoding is mode-canonical: entries still staged in the parity
// (or epoch) inbox slabs are merged into the ring stream by arrival time,
// slab 0 winning ties — exactly the order mergeFlitSlabs/mergeCredSlabs
// would fold them, and, because at a barrier the slabs' entries are all
// newer than the ring's, also exactly the order the per-cycle and epoch
// drains would have produced. A checkpoint therefore serializes to the
// same bytes whether the run was in per-cycle or epoch-batched delivery,
// and restore always lands in the canonical "everything folded" state:
// rings hold all in-flight entries, slabs are empty, and pending work is
// re-announced from ring occupancy (ReannounceIn/ReannounceCred).

// EncodeState appends the link's in-flight flits, credits, synthesized
// credits, and fault-destruction count. Non-mutating: inbox slabs are
// merged into the output stream, not into the rings.
//
//stashsim:phase serial -- reads both inbox slabs; runs only at a cycle barrier
func (l *Link) EncodeState(w *snapshot.Writer) {
	w.Section("LINK")
	w.Count(l.flits.Len() + len(l.flitIn[0]) + len(l.flitIn[1]))
	for i := 0; i < l.flits.Len(); i++ {
		t := l.flits.At(i)
		w.I64(t.At)
		w.Flit(&t.Flit)
	}
	a, b := l.flitIn[0], l.flitIn[1]
	for i, j := 0, 0; i < len(a) || j < len(b); {
		if j == len(b) || (i < len(a) && a[i].At <= b[j].At) {
			w.I64(a[i].At)
			w.Flit(&a[i].Flit)
			i++
		} else {
			w.I64(b[j].At)
			w.Flit(&b[j].Flit)
			j++
		}
	}
	w.Count(l.credits.n + len(l.credIn[0]) + len(l.credIn[1]))
	for i := 0; i < l.credits.n; i++ {
		encodeCreditBatch(w, l.credits.at(i))
	}
	ca, cb := l.credIn[0], l.credIn[1]
	for i, j := 0, 0; i < len(ca) || j < len(cb); {
		if j == len(cb) || (i < len(ca) && ca[i].at <= cb[j].at) {
			encodeCreditBatch(w, &ca[i])
			i++
		} else {
			encodeCreditBatch(w, &cb[j])
			j++
		}
	}
	w.Count(l.synth.n)
	for i := 0; i < l.synth.n; i++ {
		encodeCreditBatch(w, l.synth.at(i))
	}
	w.I64(l.faultDropped)
}

// DecodeState restores the link into the canonical folded state: every
// in-flight entry in its ring, inbox slabs empty, drained markers set so
// the first fold of cycle resumeAt takes the race-free fast path, and
// per-cycle delivery mode (the epoch executor re-enables epoch delivery
// when it is rebuilt).
//
//stashsim:phase serial -- rewrites both paths; runs only before the restored run starts
func (l *Link) DecodeState(rd *snapshot.Reader, resumeAt int64) {
	rd.Section("LINK")
	n := rd.Count(8 + 43)
	l.flits = buffer.TimedRing{}
	l.flitIn[0] = l.flitIn[0][:0]
	l.flitIn[1] = l.flitIn[1][:0]
	for i := 0; i < n; i++ {
		at := rd.I64()
		f := rd.Flit()
		if rd.Err() != nil {
			return
		}
		l.flits.Push(buffer.TimedFlit{At: at, Flit: f})
	}
	n = rd.Count(creditBatchWireSize)
	l.credits = timedCreditRing{}
	l.credIn[0] = l.credIn[0][:0]
	l.credIn[1] = l.credIn[1][:0]
	for i := 0; i < n; i++ {
		b := decodeCreditBatch(rd)
		if rd.Err() != nil {
			return
		}
		l.credits.push(b)
	}
	n = rd.Count(creditBatchWireSize)
	l.synth = timedCreditRing{}
	for i := 0; i < n; i++ {
		b := decodeCreditBatch(rd)
		if rd.Err() != nil {
			return
		}
		l.synth.push(b)
	}
	l.faultDropped = rd.I64()
	l.flitDrained = resumeAt - 1
	l.credDrained = resumeAt - 1
	l.epochClock = nil
}

// creditBatchWireSize is the serialized size of one credit batch: due
// time, per-VC reserved counts, shared count.
const creditBatchWireSize = 8 + 2*len(creditBatch{}.resv) + 2

func encodeCreditBatch(w *snapshot.Writer, b *creditBatch) {
	w.I64(b.at)
	for vc := range b.resv {
		w.U16(b.resv[vc])
	}
	w.U16(b.shared)
}

func decodeCreditBatch(rd *snapshot.Reader) creditBatch {
	var b creditBatch
	b.at = rd.I64()
	for vc := range b.resv {
		b.resv[vc] = rd.U16()
	}
	b.shared = rd.U16()
	return b
}

// EncodeState appends the switch's full dynamic state. Scratch that every
// cycle recomputes from captured state is skipped: the allocator request
// masks, the e2eEntry freelist, and the wake boards and armed masks —
// after restore, pending link work is re-announced from ring occupancy
// (ReannounceIn/ReannounceCred), which at a barrier is exactly what the
// consumed wake flags and armed bits carried.
//
//stashsim:phase serial -- walks every partition-owned structure; runs only at a cycle barrier
func (s *Switch) EncodeState(w *snapshot.Writer) {
	w.Section("SWCH")
	w.U64(s.rng.State())
	s.router.EncodeState(w)
	w.I64(s.CreditStallCycles)
	w.I64(s.created)
	encodeCounters(w, &s.Counters)
	w.U64(s.tileOcc)
	w.U64(s.muxOcc)
	w.U64(s.inActive)
	w.U64(s.outActive)
	w.Count(s.radix)
	for p := 0; p < s.radix; p++ {
		ip := &s.in[p]
		ip.link.EncodeState(w)
		ip.buf.EncodeState(w)
		for vc := range ip.latch {
			encodeRouteLatch(w, &ip.latch[vc])
		}
		ip.arbiter.EncodeState(w)
		w.Bool(ip.congested)
		w.U8(uint8(ip.sVC))
		ip.mem.EncodeState(w)

		op := &s.out[p]
		op.buf.EncodeState(w)
		for r := range op.colBufs {
			for vc := range op.colBufs[r] {
				op.colBufs[r][vc].EncodeState(w)
			}
		}
		w.I64(int64(op.colOcc))
		w.U64(op.colMask)
		for vc := range op.muxLock {
			ml := &op.muxLock[vc]
			w.U8(uint8(ml.row))
			w.U64(ml.pkt)
			w.Bool(ml.active)
		}
		op.muxArb.EncodeState(w)
		op.sendArb.EncodeState(w)
		if op.credits != nil {
			op.credits.EncodeState(w)
		}
		w.I64(int64(op.acc))
		w.I64(op.accTick)
		op.mem.EncodeState(w)

		s.stash[p].EncodeState(w)
	}
	w.Count(len(s.tiles))
	for ti := range s.tiles {
		encodeTile(w, &s.tiles[ti])
	}
	w.Count(s.sideband.n)
	for i := 0; i < s.sideband.n; i++ {
		m := &s.sideband.buf[(s.sideband.head+i)&(len(s.sideband.buf)-1)]
		w.I64(m.at)
		w.U8(uint8(m.kind))
		w.U64(m.pktID)
		w.U8(m.dst)
		w.U8(m.aux)
		w.U8(m.size)
	}
	w.Count(len(s.track))
	for port := range s.track {
		encodeTrackMap(w, s.track[port])
	}
	w.Count(len(s.retryQ))
	for i := range s.retryQ {
		r := &s.retryQ[i]
		w.I64(r.deadline)
		w.U64(r.pktID)
		w.U8(r.port)
	}
	if s.parity != nil {
		s.parity.EncodeState(w)
	}
	w.Count(len(s.reconQ))
	for i := range s.reconQ {
		r := &s.reconQ[i]
		w.I64(r.due)
		w.U64(r.pktID)
		w.U8(r.size)
		w.U8(r.origin)
		w.U8(r.target)
		w.Bool(r.buf != nil)
		if r.buf != nil {
			w.Count(len(r.buf.Flits))
			for j := range r.buf.Flits {
				w.Flit(&r.buf.Flits[j])
			}
		}
	}
}

// DecodeState restores the switch's dynamic state into a freshly built
// switch of the identical configuration. resumeAt is the cycle the
// restored run will execute next; it parameterizes the links' drained
// markers.
//
//stashsim:phase serial -- rewrites every partition-owned structure; runs only before the restored run starts
func (s *Switch) DecodeState(rd *snapshot.Reader, resumeAt int64) {
	rd.Section("SWCH")
	s.rng.SetState(rd.U64())
	s.router.DecodeState(rd)
	s.CreditStallCycles = rd.I64()
	s.created = rd.I64()
	decodeCounters(rd, &s.Counters)
	s.tileOcc = rd.U64()
	s.muxOcc = rd.U64()
	s.inActive = rd.U64()
	s.outActive = rd.U64()
	if n := rd.Count(1); rd.Err() == nil && n != s.radix {
		rd.Failf("core: switch %d has radix %d, snapshot has %d", s.ID, s.radix, n)
	}
	if rd.Err() != nil {
		return
	}
	for p := 0; p < s.radix; p++ {
		ip := &s.in[p]
		ip.link.DecodeState(rd, resumeAt)
		ip.buf.DecodeState(rd)
		for vc := range ip.latch {
			decodeRouteLatch(rd, &ip.latch[vc])
		}
		ip.arbiter.DecodeState(rd)
		ip.congested = rd.Bool()
		ip.sVC = int8(rd.U8())
		ip.mem.DecodeState(rd)

		op := &s.out[p]
		op.buf.DecodeState(rd)
		for r := range op.colBufs {
			for vc := range op.colBufs[r] {
				op.colBufs[r][vc].DecodeState(rd)
			}
		}
		op.colOcc = int(rd.I64())
		op.colMask = rd.U64()
		for vc := range op.muxLock {
			ml := &op.muxLock[vc]
			ml.row = int8(rd.U8())
			ml.pkt = rd.U64()
			ml.active = rd.Bool()
		}
		op.muxArb.DecodeState(rd)
		op.sendArb.DecodeState(rd)
		if op.credits != nil {
			op.credits.DecodeState(rd)
		}
		op.acc = int(rd.I64())
		op.accTick = rd.I64()
		op.mem.DecodeState(rd)

		s.stash[p].DecodeState(rd)
		if rd.Err() != nil {
			return
		}
	}
	if n := rd.Count(1); rd.Err() == nil && n != len(s.tiles) {
		rd.Failf("core: switch %d has %d tiles, snapshot has %d", s.ID, len(s.tiles), n)
	}
	if rd.Err() != nil {
		return
	}
	for ti := range s.tiles {
		decodeTile(rd, &s.tiles[ti])
		if rd.Err() != nil {
			return
		}
	}
	n := rd.Count(8 + 1 + 8 + 1 + 1 + 1)
	s.sideband = sbRing{}
	for i := 0; i < n; i++ {
		var m sbMsg
		m.at = rd.I64()
		k := rd.U8()
		m.pktID = rd.U64()
		m.dst = rd.U8()
		m.aux = rd.U8()
		m.size = rd.U8()
		if rd.Err() != nil {
			return
		}
		if k > uint8(sbRetransmit) {
			rd.Failf("core: invalid side-band message kind %d", k)
			return
		}
		m.kind = sbKind(k)
		s.sideband.push(m)
	}
	if n := rd.Count(1); rd.Err() == nil && n != len(s.track) {
		rd.Failf("core: switch %d tracks %d end ports, snapshot has %d", s.ID, len(s.track), n)
	}
	if rd.Err() != nil {
		return
	}
	for port := range s.track {
		s.decodeTrackMap(rd, s.track[port])
		if rd.Err() != nil {
			return
		}
	}
	n = rd.Count(8 + 8 + 1)
	s.retryQ = s.retryQ[:0]
	for i := 0; i < n; i++ {
		var r retryRec
		r.deadline = rd.I64()
		r.pktID = rd.U64()
		r.port = rd.U8()
		if rd.Err() != nil {
			return
		}
		s.retryQ = append(s.retryQ, r)
	}
	if s.parity != nil {
		s.parity.DecodeState(rd)
		if rd.Err() != nil {
			return
		}
	}
	n = rd.Count(8 + 8 + 1 + 1 + 1 + 1)
	s.reconQ = s.reconQ[:0]
	for i := 0; i < n; i++ {
		var r reconRec
		r.due = rd.I64()
		r.pktID = rd.U64()
		r.size = rd.U8()
		r.origin = rd.U8()
		r.target = rd.U8()
		hasBuf := rd.Bool()
		if rd.Err() != nil {
			return
		}
		if int(r.target) >= s.radix {
			rd.Failf("core: reconstruction target bank %d out of range [0,%d)", r.target, s.radix)
			return
		}
		if hasBuf {
			r.buf = s.stash[r.target].DecodeRetainedPayload(rd)
			if rd.Err() != nil {
				return
			}
		}
		s.reconQ = append(s.reconQ, r)
	}
}

func encodeCounters(w *snapshot.Writer, c *Counters) {
	w.I64(c.FlitsSwitched)
	w.I64(c.FlitsSent)
	w.I64(c.StashStores)
	w.I64(c.StashRetrieves)
	w.I64(c.ECNMarks)
	w.I64(c.CongestedCycles)
	w.I64(c.StashFullStalls)
	w.I64(c.E2ETracked)
	w.I64(c.E2EDeletes)
	w.I64(c.E2ERetransmits)
	w.I64(c.SidebandMsgs)
	w.I64(c.CongStashed)
	w.I64(c.CongStashedVict)
	w.I64(c.HoLAbsorbed)
	w.I64(c.RetryTimeouts)
	w.I64(c.RetryAbandoned)
	w.I64(c.StashCopiesLost)
	w.I64(c.StashBypassed)
	w.I64(c.StashReconstructed)
	w.I64(c.StashReconFailed)
	w.I64(c.ParityGroupsSealed)
	w.I64(c.StashDegradedReads)
}

func decodeCounters(rd *snapshot.Reader, c *Counters) {
	c.FlitsSwitched = rd.I64()
	c.FlitsSent = rd.I64()
	c.StashStores = rd.I64()
	c.StashRetrieves = rd.I64()
	c.ECNMarks = rd.I64()
	c.CongestedCycles = rd.I64()
	c.StashFullStalls = rd.I64()
	c.E2ETracked = rd.I64()
	c.E2EDeletes = rd.I64()
	c.E2ERetransmits = rd.I64()
	c.SidebandMsgs = rd.I64()
	c.CongStashed = rd.I64()
	c.CongStashedVict = rd.I64()
	c.HoLAbsorbed = rd.I64()
	c.RetryTimeouts = rd.I64()
	c.RetryAbandoned = rd.I64()
	c.StashCopiesLost = rd.I64()
	c.StashBypassed = rd.I64()
	c.StashReconstructed = rd.I64()
	c.StashReconFailed = rd.I64()
	c.ParityGroupsSealed = rd.I64()
	c.StashDegradedReads = rd.I64()
}

func encodeRouteLatch(w *snapshot.Writer, l *routeLatch) {
	w.Bool(l.active)
	w.Bool(l.started)
	w.Bool(l.eject)
	w.Bool(l.redirect)
	w.U8(l.out)
	w.U8(l.vc)
	w.U8(uint8(l.stashCol))
}

func decodeRouteLatch(rd *snapshot.Reader, l *routeLatch) {
	l.active = rd.Bool()
	l.started = rd.Bool()
	l.eject = rd.Bool()
	l.redirect = rd.Bool()
	l.out = rd.U8()
	l.vc = rd.U8()
	l.stashCol = int8(rd.U8())
}

func encodeTile(w *snapshot.Writer, t *tile) {
	for i := range t.rowBufs {
		for vc := range t.rowBufs[i] {
			t.rowBufs[i][vc].EncodeState(w)
		}
	}
	t.alloc.EncodeState(w)
	for i := range t.vcNext {
		w.I64(int64(t.vcNext[i]))
	}
	for o := range t.outLock {
		for vc := range t.outLock[o] {
			w.U64(t.outLock[o][vc].pkt)
			w.Bool(t.outLock[o][vc].active)
		}
	}
	for i := range t.sLatch {
		w.U8(t.sLatch[i].port)
		w.Bool(t.sLatch[i].active)
	}
	w.I64(int64(t.occupied))
	for i := range t.slotOcc {
		w.U16(t.slotOcc[i])
	}
}

func decodeTile(rd *snapshot.Reader, t *tile) {
	for i := range t.rowBufs {
		for vc := range t.rowBufs[i] {
			t.rowBufs[i][vc].DecodeState(rd)
		}
	}
	t.alloc.DecodeState(rd)
	for i := range t.vcNext {
		t.vcNext[i] = int(rd.I64())
	}
	for o := range t.outLock {
		for vc := range t.outLock[o] {
			t.outLock[o][vc].pkt = rd.U64()
			t.outLock[o][vc].active = rd.Bool()
		}
	}
	for i := range t.sLatch {
		t.sLatch[i].port = rd.U8()
		t.sLatch[i].active = rd.Bool()
	}
	t.occupied = int(rd.I64())
	for i := range t.slotOcc {
		t.slotOcc[i] = rd.U16()
	}
}

// encodeTrackMap appends one end port's outstanding tracking entries in
// ascending packet-ID order.
func encodeTrackMap(w *snapshot.Writer, m map[uint64]*e2eEntry) {
	ids := make([]uint64, 0, len(m))
	//lint:allow determinism -- map-key collection, sorted before use
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Count(len(ids))
	for _, id := range ids {
		e := m[id]
		w.U64(id)
		w.U8(e.size)
		w.U16(uint16(e.stashPort))
		w.Bool(e.acked)
		w.Bool(e.nacked)
		w.I64(e.deadline)
		w.U8(e.retries)
		w.Bool(e.lost)
		w.Bool(e.recon)
	}
}

// decodeTrackMap restores one end port's tracking entries, drawing
// records from the entry freelist.
func (s *Switch) decodeTrackMap(rd *snapshot.Reader, m map[uint64]*e2eEntry) {
	n := rd.Count(8 + 1 + 2 + 1 + 1 + 8 + 1 + 1 + 1)
	if rd.Err() != nil {
		return
	}
	clear(m)
	for i := 0; i < n; i++ {
		id := rd.U64()
		e := s.newEntry()
		e.size = rd.U8()
		e.stashPort = int16(rd.U16())
		e.acked = rd.Bool()
		e.nacked = rd.Bool()
		e.deadline = rd.I64()
		e.retries = rd.U8()
		e.lost = rd.Bool()
		e.recon = rd.Bool()
		if rd.Err() != nil {
			return
		}
		m[id] = e
	}
}

// EncodeFingerprint appends the configuration fingerprint: a
// self-describing (name, value) pair list covering every parameter that
// shapes the simulated machine. Restore compares it positionally against
// the restoring run's configuration and reports the first differing axis.
func (c *Config) EncodeFingerprint(w *snapshot.Writer) {
	w.Section("CONF")
	pairs := c.fingerprintPairs()
	w.Count(len(pairs))
	for _, p := range pairs {
		w.Str(p[0])
		w.Str(p[1])
	}
}

// CheckFingerprint verifies the snapshot's configuration fingerprint
// against this configuration, failing the reader with a per-axis message
// on the first mismatch.
func (c *Config) CheckFingerprint(rd *snapshot.Reader) {
	rd.Section("CONF")
	pairs := c.fingerprintPairs()
	n := rd.Count(2 * 4)
	if rd.Err() != nil {
		return
	}
	if n != len(pairs) {
		rd.Failf("core: snapshot fingerprint has %d fields, this build compares %d — snapshot from a different build", n, len(pairs))
		return
	}
	for _, p := range pairs {
		name := rd.Str()
		val := rd.Str()
		if rd.Err() != nil {
			return
		}
		if name != p[0] {
			rd.Failf("core: snapshot fingerprint field %q where this build expects %q — snapshot from a different build", name, p[0])
			return
		}
		if val != p[1] {
			rd.Failf("core: config mismatch on %s: snapshot was taken with %s, this run has %s", name, val, p[1])
			return
		}
	}
}

func (c *Config) fingerprintPairs() [][2]string {
	f := fmt.Sprintf
	pairs := [][2]string{
		{"topo.p", f("%d", c.Topo.P)},
		{"topo.a", f("%d", c.Topo.A)},
		{"topo.h", f("%d", c.Topo.H)},
		{"lat.endpoint", f("%d", c.Lat.Endpoint)},
		{"lat.local", f("%d", c.Lat.Local)},
		{"lat.global", f("%d", c.Lat.Global)},
		{"tiles", f("%dx%d/%dx%d", c.Rows, c.Cols, c.TileIn, c.TileOut)},
		{"buf.in", f("%d", c.InputBufFlits)},
		{"buf.out", f("%d", c.OutputBufFlits)},
		{"buf.row", f("%d", c.RowBufFlits)},
		{"buf.col", f("%d", c.ColBufFlits)},
		{"rate", f("%d/%d", c.RateNum, c.RateDen)},
		{"mode", c.Mode.String()},
		{"stash.capfrac", f("%g", c.StashCapFrac)},
		{"stash.frac.endpoint", f("%g", c.StashFracEndpoint)},
		{"stash.frac.local", f("%g", c.StashFracLocal)},
		{"stash.banks", f("%d", c.Topo.P + c.Topo.A - 1)},
		{"ecn", f("%v/%g/%d/%d/%d:%d/%d", c.ECN.Enabled, c.ECN.CongestFrac, c.ECN.WindowMax,
			c.ECN.WindowFloor, c.ECN.DecreaseNum, c.ECN.DecreaseDen, c.ECN.RecoverPeriod)},
		{"route", f("%d/%d/%v", c.Route.Bias, c.Route.Threshold, c.Route.Adaptive)},
		{"sideband.lat", f("%d", c.SidebandLat)},
		{"bankmodel", f("%v", c.BankModel)},
		{"random.stash", f("%v", c.RandomStashPlacement)},
		{"retain.payload", f("%v", c.RetainPayload)},
		{"acks", f("%v", c.AcksEnabled)},
		{"error.rate", f("%g", c.ErrorRate)},
		{"retrans", f("%v/%d/%d/%d/%d/%d", c.Retrans.Enabled, c.Retrans.SwitchTimeout,
			c.Retrans.SwitchRetries, c.Retrans.EndpointTimeout, c.Retrans.EndpointRetries, c.Retrans.ScanEvery)},
		{"stash.bypass", f("%v", c.StashBypass)},
		{"stash.parity", f("%d", c.StashParity)},
		{"seed", f("%d", c.Seed)},
	}
	if c.Fault == nil {
		pairs = append(pairs, [2]string{"fault", "none"})
	} else {
		pairs = append(pairs,
			[2]string{"fault.seed", f("%d", c.Fault.Seed)},
			[2]string{"fault.droprate", f("%g", c.Fault.LinkDropRate)},
			[2]string{"fault.corruptrate", f("%g", c.Fault.CorruptRate)},
			[2]string{"fault.outages", f("%+v", c.Fault.Outages)},
			[2]string{"fault.stashfails", f("%+v", c.Fault.StashFailures)},
		)
	}
	return pairs
}
