// Package tracegen synthesizes MPI traces modeling the communication
// skeletons of the six DOE DesignForward applications of the paper's
// Table II. The real traces are large downloads tied to the SST/Macro
// toolchain; these generators reproduce the properties Figure 6 depends
// on — the communication pattern (all-to-all, halo, V-cycle, CG), the
// bandwidth-vs-latency character of each app, and the rank counts — from
// the apps' published descriptions. See DESIGN.md for the substitution
// rationale.
package tracegen

import (
	"math/bits"

	"stashsim/internal/trace"
)

// Builder incrementally constructs a trace with matched send/recv pairs
// and globally unique message ids.
type Builder struct {
	t    *trace.Trace
	next uint32
}

// NewBuilder starts a trace with the given name and rank count.
func NewBuilder(name string, ranks int) *Builder {
	return &Builder{t: &trace.Trace{
		Name:   name,
		Ranks:  ranks,
		Events: make([][]trace.Event, ranks),
	}}
}

// Trace returns the built trace.
func (b *Builder) Trace() *trace.Trace { return b.t }

// Message appends a send on src and the matching recv on dst.
func (b *Builder) Message(src, dst int32, bytes int) {
	id := b.next
	b.next++
	b.t.Events[src] = append(b.t.Events[src], trace.Event{Kind: trace.Send, Peer: dst, Bytes: bytes, MsgID: id})
	b.t.Events[dst] = append(b.t.Events[dst], trace.Event{Kind: trace.Recv, Peer: src, MsgID: id})
}

// Exchange appends a bidirectional message pair between a and b.
func (bl *Builder) Exchange(a, b int32, bytes int) {
	bl.Message(a, b, bytes)
	bl.Message(b, a, bytes)
}

// AllToAll appends a full exchange among the group: every rank sends
// bytesPerPair to every other rank (sends first, then receives — the
// eager/non-blocking MPI_Alltoall shape).
func (b *Builder) AllToAll(group []int32, bytesPerPair int) {
	ids := make(map[[2]int32]uint32, len(group)*len(group))
	for _, src := range group {
		for j := range group {
			// Rotate the target order by the source's position so the
			// instantaneous pattern is a shifting permutation, as real
			// all-to-all implementations schedule it.
			dst := group[(indexOf(group, src)+j+1)%len(group)]
			if dst == src {
				continue
			}
			id := b.next
			b.next++
			ids[[2]int32{src, dst}] = id
			b.t.Events[src] = append(b.t.Events[src], trace.Event{Kind: trace.Send, Peer: dst, Bytes: bytesPerPair, MsgID: id})
		}
	}
	for _, dst := range group {
		for j := range group {
			src := group[(indexOf(group, dst)+j+1)%len(group)]
			if src == dst {
				continue
			}
			b.t.Events[dst] = append(b.t.Events[dst], trace.Event{Kind: trace.Recv, Peer: src, MsgID: ids[[2]int32{src, dst}]})
		}
	}
}

func indexOf(group []int32, r int32) int {
	for i, g := range group {
		if g == r {
			return i
		}
	}
	panic("tracegen: rank not in group")
}

// Reduce appends a binomial-tree reduction of `bytes` onto group[0],
// ordered so every parent receives before sending upward.
func (b *Builder) Reduce(group []int32, bytes int) {
	n := len(group)
	if n < 2 {
		return
	}
	levels := bits.Len(uint(n - 1))
	// Process from the deepest level up so child receives precede parent
	// sends in each rank's event order.
	for l := 0; l < levels; l++ {
		stride := 1 << uint(l)
		for i := 0; i+stride < n; i += stride * 2 {
			b.Message(group[i+stride], group[i], bytes)
		}
	}
}

// Broadcast appends a binomial-tree broadcast of `bytes` from group[0].
func (b *Builder) Broadcast(group []int32, bytes int) {
	n := len(group)
	if n < 2 {
		return
	}
	levels := bits.Len(uint(n - 1))
	for l := levels - 1; l >= 0; l-- {
		stride := 1 << uint(l)
		for i := 0; i+stride < n; i += stride * 2 {
			b.Message(group[i], group[i+stride], bytes)
		}
	}
}

// AllReduce appends a reduce followed by a broadcast (the classic
// non-power-of-two-safe implementation).
func (b *Builder) AllReduce(group []int32, bytes int) {
	b.Reduce(group, bytes)
	b.Broadcast(group, bytes)
}

// Grid3D is a 3-D process grid with rank = (z*ny + y)*nx + x.
type Grid3D struct {
	NX, NY, NZ int
}

// Rank returns the rank at (x, y, z).
func (g Grid3D) Rank(x, y, z int) int32 {
	return int32((z*g.NY+y)*g.NX + x)
}

// Size returns the number of ranks in the grid.
func (g Grid3D) Size() int { return g.NX * g.NY * g.NZ }

// Halo appends a 6-point (face-neighbor) halo exchange over the grid at
// the given stride (stride > 1 models coarser multigrid levels where only
// every stride-th rank participates). bytes is the per-face message size.
func (b *Builder) Halo(g Grid3D, stride, bytes int) {
	for z := 0; z < g.NZ; z += stride {
		for y := 0; y < g.NY; y += stride {
			for x := 0; x < g.NX; x += stride {
				src := g.Rank(x, y, z)
				if x+stride < g.NX {
					b.Exchange(src, g.Rank(x+stride, y, z), bytes)
				}
				if y+stride < g.NY {
					b.Exchange(src, g.Rank(x, y+stride, z), bytes)
				}
				if z+stride < g.NZ {
					b.Exchange(src, g.Rank(x, y, z+stride), bytes)
				}
			}
		}
	}
}

// Group returns the ranks participating at the given stride.
func (g Grid3D) Group(stride int) []int32 {
	var out []int32
	for z := 0; z < g.NZ; z += stride {
		for y := 0; y < g.NY; y += stride {
			for x := 0; x < g.NX; x += stride {
				out = append(out, g.Rank(x, y, z))
			}
		}
	}
	return out
}
