package tracegen

import (
	"fmt"
	"math"

	"stashsim/internal/trace"
)

// Scale adjusts trace size: 1.0 reproduces the paper's rank counts
// (Table II); smaller values shrink both the process grids and message
// volumes proportionally so the same shapes run on scaled-down networks.
type Scale struct {
	// Ranks caps the rank count; generators pick the largest natural
	// grid that fits. Zero means the paper's count.
	Ranks int
	// Bytes multiplies message sizes (1.0 = nominal).
	Bytes float64
	// Iters multiplies iteration counts (1.0 = nominal).
	Iters float64
}

// DefaultScale reproduces the paper's Table II rank counts.
func DefaultScale() Scale { return Scale{Bytes: 1, Iters: 1} }

func (s Scale) iters(n int) int {
	k := int(math.Round(float64(n) * s.Iters))
	if k < 1 {
		k = 1
	}
	return k
}

func (s Scale) bytes(n int) int {
	k := int(math.Round(float64(n) * s.Bytes))
	if k < 10 {
		k = 10
	}
	return k
}

// cube returns the largest edge e with e^3 <= limit.
func cube(limit int) int {
	e := int(math.Cbrt(float64(limit)) + 1e-9)
	for (e+1)*(e+1)*(e+1) <= limit {
		e++
	}
	for e > 1 && e*e*e > limit {
		e--
	}
	return e
}

// square returns the largest edge e with e^2 <= limit.
func square(limit int) int {
	e := int(math.Sqrt(float64(limit)) + 1e-9)
	for (e+1)*(e+1) <= limit {
		e++
	}
	for e > 1 && e*e > limit {
		e--
	}
	return e
}

// AppInfo describes one generated application (Table II).
type AppInfo struct {
	Name        string
	Description string
	PaperRanks  int
	Generate    func(Scale) *trace.Trace
}

// Apps lists the six DesignForward applications in the paper's order.
func Apps() []AppInfo {
	return []AppInfo{
		{"BIGFFT", "3D FFT with 2D domain decomposition pattern, medium problem size", 1024, BigFFT},
		{"AMG", "Algebraic multigrid solver for unstructured mesh physics packages", 1728, AMG},
		{"MultiGrid", "Geometric multigrid V-Cycle from production elliptic solver (BoxLib)", 1000, MultiGrid},
		{"FillBoundary", "Halo update from production PDE solver code (BoxLib)", 1000, FillBoundary},
		{"AMR", "Full adaptive mesh refinement V-Cycle from production cosmology code (BoxLib/Castro)", 1728, AMR},
		{"MiniFE", "Finite element solver mini-application", 1152, MiniFE},
	}
}

// AppByName returns the generator for a Table II application.
func AppByName(name string) (AppInfo, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return AppInfo{}, fmt.Errorf("tracegen: unknown application %q", name)
}

// BigFFT models a 3-D FFT with 2-D ("pencil") domain decomposition: two
// transpose phases per iteration, each an all-to-all within process-grid
// rows respectively columns, with bandwidth-heavy messages. This is one of
// the paper's two bandwidth-bound traces.
func BigFFT(s Scale) *trace.Trace {
	limit := 1024
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	e := square(limit)
	b := NewBuilder("BIGFFT", e*e)
	perPair := s.bytes(16384 / e * 8) // transpose volume split across the row
	iters := s.iters(2)
	for it := 0; it < iters; it++ {
		// Row transposes.
		for r := 0; r < e; r++ {
			row := make([]int32, e)
			for c := 0; c < e; c++ {
				row[c] = int32(r*e + c)
			}
			b.AllToAll(row, perPair)
		}
		// Column transposes.
		for c := 0; c < e; c++ {
			col := make([]int32, e)
			for r := 0; r < e; r++ {
				col[r] = int32(r*e + c)
			}
			b.AllToAll(col, perPair)
		}
	}
	return b.Trace()
}

// AMG models an algebraic multigrid solve: V-cycles whose halo exchanges
// thin out (stride doubling) toward coarse levels, with a small allreduce
// per level transition and per iteration — latency-dominated.
func AMG(s Scale) *trace.Trace {
	limit := 1728
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	e := cube(limit)
	g := Grid3D{NX: e, NY: e, NZ: e}
	b := NewBuilder("AMG", g.Size())
	all := g.Group(1)
	iters := s.iters(3)
	for it := 0; it < iters; it++ {
		for stride := 1; stride < e; stride *= 2 {
			b.Halo(g, stride, s.bytes(2048/stride))
			b.AllReduce(all, 8)
		}
		for stride := e / 2; stride >= 1; stride /= 2 {
			b.Halo(g, stride, s.bytes(2048/stride))
		}
		b.AllReduce(all, 8)
	}
	return b.Trace()
}

// MultiGrid models a geometric multigrid V-cycle: fine-level halos are
// large, coarse-level halos small, one allreduce per cycle for the
// convergence check.
func MultiGrid(s Scale) *trace.Trace {
	limit := 1000
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	e := cube(limit)
	g := Grid3D{NX: e, NY: e, NZ: e}
	b := NewBuilder("MultiGrid", g.Size())
	iters := s.iters(3)
	for it := 0; it < iters; it++ {
		for stride := 1; stride < e; stride *= 2 {
			b.Halo(g, stride, s.bytes(4096/(stride*stride)))
		}
		for stride := e / 2; stride >= 1; stride /= 2 {
			b.Halo(g, stride, s.bytes(4096/(stride*stride)))
		}
		b.AllReduce(g.Group(1), 8)
	}
	return b.Trace()
}

// FillBoundary models BoxLib's single-level halo update: every rank
// exchanges large face messages with its six neighbors, repeatedly. With
// large faces and no intervening computation this is the paper's second
// bandwidth-bound trace.
func FillBoundary(s Scale) *trace.Trace {
	limit := 1000
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	e := cube(limit)
	g := Grid3D{NX: e, NY: e, NZ: e}
	b := NewBuilder("FillBoundary", g.Size())
	iters := s.iters(6)
	for it := 0; it < iters; it++ {
		b.Halo(g, 1, s.bytes(32768))
	}
	return b.Trace()
}

// AMR models an adaptive mesh refinement V-cycle: multigrid-style halos
// plus periodic regridding, in which a refined subregion redistributes
// its data across the machine (block transfers to strided partners).
func AMR(s Scale) *trace.Trace {
	limit := 1728
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	e := cube(limit)
	g := Grid3D{NX: e, NY: e, NZ: e}
	b := NewBuilder("AMR", g.Size())
	n := g.Size()
	iters := s.iters(2)
	for it := 0; it < iters; it++ {
		for stride := 1; stride < e && stride <= 4; stride *= 2 {
			b.Halo(g, stride, s.bytes(4096/stride))
		}
		// Regrid: the refined half redistributes to partners offset by
		// half the machine.
		for r := 0; r < n/2; r++ {
			b.Message(int32(r), int32(r+n/2), s.bytes(8192))
		}
		b.AllReduce(g.Group(1), 8)
	}
	return b.Trace()
}

// MiniFE models a conjugate-gradient solve: a halo exchange plus two
// scalar allreduces (the dot products) per iteration, over many
// iterations — the classic latency-bound CG signature.
func MiniFE(s Scale) *trace.Trace {
	limit := 1152
	if s.Ranks > 0 && s.Ranks < limit {
		limit = s.Ranks
	}
	// MiniFE's 1152 = 8x12x12; use that exact decomposition when it
	// fits, otherwise the largest modest-aspect box that does.
	gx, gy, gz := 8, 12, 12
	if limit < 1152 {
		gx, gy, gz = box3(limit)
	}
	g := Grid3D{NX: gx, NY: gy, NZ: gz}
	b := NewBuilder("MiniFE", g.Size())
	iters := s.iters(8)
	for it := 0; it < iters; it++ {
		b.Halo(g, 1, s.bytes(2048))
		b.AllReduce(g.Group(1), 8)
		b.AllReduce(g.Group(1), 8)
	}
	return b.Trace()
}

// box3 returns a 3-D box x<=y<=z with maximal volume <= limit and modest
// aspect ratio, mimicking MiniFE's non-cubic decompositions.
func box3(limit int) (int, int, int) {
	e := cube(limit)
	x, y, z := e, e, e
	// Try to extend z while staying within the limit.
	for x*y*(z+1) <= limit {
		z++
	}
	return x, y, z
}
