package tracegen

import (
	"bytes"
	"testing"

	"stashsim/internal/trace"
)

func TestAllAppsValidate(t *testing.T) {
	for _, app := range Apps() {
		tr := app.Generate(DefaultScale())
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if tr.Ranks > app.PaperRanks {
			t.Fatalf("%s: %d ranks exceeds paper's %d", app.Name, tr.Ranks, app.PaperRanks)
		}
		if tr.TotalMessages() == 0 {
			t.Fatalf("%s: empty trace", app.Name)
		}
	}
}

func TestPaperRankCounts(t *testing.T) {
	want := map[string]int{
		"BIGFFT": 1024, "AMG": 1728, "MultiGrid": 1000,
		"FillBoundary": 1000, "AMR": 1728, "MiniFE": 1152,
	}
	for _, app := range Apps() {
		tr := app.Generate(DefaultScale())
		if tr.Ranks != want[app.Name] {
			t.Fatalf("%s: %d ranks, want %d (Table II)", app.Name, tr.Ranks, want[app.Name])
		}
	}
}

func TestScalingShrinksRanks(t *testing.T) {
	s := DefaultScale()
	s.Ranks = 100
	for _, app := range Apps() {
		tr := app.Generate(s)
		if tr.Ranks > 100 {
			t.Fatalf("%s: %d ranks exceeds cap 100", app.Name, tr.Ranks)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s scaled: %v", app.Name, err)
		}
	}
}

func TestBandwidthCharacter(t *testing.T) {
	// The paper's two bandwidth-bound traces must carry substantially
	// more bytes per rank than the latency-bound ones.
	s := DefaultScale()
	s.Ranks = 350
	perRank := map[string]float64{}
	for _, app := range Apps() {
		tr := app.Generate(s)
		perRank[app.Name] = float64(tr.TotalBytes()) / float64(tr.Ranks)
	}
	for _, heavy := range []string{"BIGFFT", "FillBoundary"} {
		for _, light := range []string{"AMG", "MiniFE", "AMR"} {
			if perRank[heavy] < 2*perRank[light] {
				t.Fatalf("%s (%.0f B/rank) not clearly heavier than %s (%.0f B/rank)",
					heavy, perRank[heavy], light, perRank[light])
			}
		}
	}
}

func TestAllToAllComplete(t *testing.T) {
	b := NewBuilder("a2a", 4)
	b.AllToAll([]int32{0, 1, 2, 3}, 100)
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.TotalMessages() != 12 {
		t.Fatalf("%d messages, want 4*3", tr.TotalMessages())
	}
}

func TestAllReduceStructure(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 13} {
		b := NewBuilder("ar", n)
		group := make([]int32, n)
		for i := range group {
			group[i] = int32(i)
		}
		b.AllReduce(group, 8)
		tr := b.Trace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A tree reduce+broadcast uses 2(n-1) messages.
		if got := tr.TotalMessages(); got != 2*(n-1) {
			t.Fatalf("n=%d: %d messages, want %d", n, got, 2*(n-1))
		}
	}
}

func TestHaloNeighborCount(t *testing.T) {
	g := Grid3D{NX: 3, NY: 3, NZ: 3}
	b := NewBuilder("halo", g.Size())
	b.Halo(g, 1, 100)
	tr := b.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 faces x 2x3x3... links: (NX-1)*NY*NZ per axis = 18 each, 54
	// total, bidirectional = 108 messages.
	if got := tr.TotalMessages(); got != 108 {
		t.Fatalf("%d halo messages, want 108", got)
	}
	// The center rank has 6 neighbors = 6 sends + 6 recvs.
	center := g.Rank(1, 1, 1)
	sends := 0
	for _, ev := range tr.Events[center] {
		if ev.Kind == trace.Send {
			sends++
		}
	}
	if sends != 6 {
		t.Fatalf("center rank sends %d, want 6", sends)
	}
}

func TestHaloStrideThinning(t *testing.T) {
	g := Grid3D{NX: 4, NY: 4, NZ: 4}
	if got := len(g.Group(2)); got != 8 {
		t.Fatalf("stride-2 group has %d ranks, want 8", got)
	}
	b := NewBuilder("halo2", g.Size())
	b.Halo(g, 2, 100)
	if err := b.Trace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	s := DefaultScale()
	s.Ranks = 64
	tr := MiniFE(s)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Ranks != tr.Ranks ||
		got.TotalMessages() != tr.TotalMessages() || got.TotalBytes() != tr.TotalBytes() {
		t.Fatal("round trip changed the trace")
	}
	for r := range tr.Events {
		if len(got.Events[r]) != len(tr.Events[r]) {
			t.Fatalf("rank %d event count changed", r)
		}
	}
}

func TestAppByName(t *testing.T) {
	if _, err := AppByName("BIGFFT"); err != nil {
		t.Fatal(err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Fatal("accepted unknown app")
	}
}

func TestCubeAndSquare(t *testing.T) {
	cases := []struct{ limit, cube, square int }{
		{1, 1, 1}, {7, 1, 2}, {8, 2, 2}, {27, 3, 5}, {1000, 10, 31}, {1728, 12, 41},
	}
	for _, c := range cases {
		if got := cube(c.limit); got != c.cube {
			t.Fatalf("cube(%d)=%d want %d", c.limit, got, c.cube)
		}
		if got := square(c.limit); got != c.square {
			t.Fatalf("square(%d)=%d want %d", c.limit, got, c.square)
		}
	}
}
