// Package trace implements the MPI-like trace model and the
// dependency-driven replay engine used for the paper's Figure 6
// experiments (application traces on SST/Macro). A trace is a list of
// per-rank event sequences; the replay engine drives network endpoints,
// advancing each rank through its events: sends enqueue messages
// immediately, receives block until the matching message has fully
// arrived. Computation time is not modeled, matching the paper's
// methodology ("we did not model computation time in order to focus on the
// communication aspects").
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// EventKind discriminates trace events.
type EventKind uint8

const (
	// Send transmits a message to a peer rank. Non-blocking (eager).
	Send EventKind = iota
	// Recv blocks until the identified message has fully arrived.
	Recv
)

// Event is one entry in a rank's event sequence. Every message is
// identified by a globally unique MsgID assigned by the generator; the
// matching Recv on the peer names the same MsgID, so no runtime matching
// logic is needed.
type Event struct {
	Kind  EventKind
	Peer  int32  // peer rank (send destination / expected source)
	Bytes int    // message size in bytes (Send only)
	MsgID uint32 // unique message id
}

// Trace is a complete application trace.
type Trace struct {
	Name  string
	Ranks int
	// Events holds each rank's ordered event sequence.
	Events [][]Event
}

// Validate checks structural invariants: every Send has exactly one
// matching Recv on the peer with the same MsgID, peers are in range, and
// message ids are unique per direction.
func (t *Trace) Validate() error {
	if t.Ranks != len(t.Events) {
		return fmt.Errorf("trace %s: %d ranks but %d event lists", t.Name, t.Ranks, len(t.Events))
	}
	type key = uint32
	sends := make(map[key][2]int32) // msgID -> (src, dst)
	recvs := make(map[key][2]int32) // msgID -> (dst, src)
	for r, evs := range t.Events {
		for _, ev := range evs {
			if ev.Peer < 0 || int(ev.Peer) >= t.Ranks {
				return fmt.Errorf("trace %s: rank %d event peer %d out of range", t.Name, r, ev.Peer)
			}
			if ev.Peer == int32(r) {
				return fmt.Errorf("trace %s: rank %d self-message", t.Name, r)
			}
			switch ev.Kind {
			case Send:
				if ev.Bytes <= 0 {
					return fmt.Errorf("trace %s: rank %d sends %d bytes", t.Name, r, ev.Bytes)
				}
				if _, dup := sends[ev.MsgID]; dup {
					return fmt.Errorf("trace %s: duplicate send msg %d", t.Name, ev.MsgID)
				}
				sends[ev.MsgID] = [2]int32{int32(r), ev.Peer}
			case Recv:
				if _, dup := recvs[ev.MsgID]; dup {
					return fmt.Errorf("trace %s: duplicate recv msg %d", t.Name, ev.MsgID)
				}
				recvs[ev.MsgID] = [2]int32{int32(r), ev.Peer}
			}
		}
	}
	if len(sends) != len(recvs) {
		return fmt.Errorf("trace %s: %d sends but %d recvs", t.Name, len(sends), len(recvs))
	}
	for id, sd := range sends {
		rd, ok := recvs[id]
		if !ok {
			return fmt.Errorf("trace %s: send msg %d has no recv", t.Name, id)
		}
		if rd[0] != sd[1] || rd[1] != sd[0] {
			return fmt.Errorf("trace %s: msg %d endpoints mismatch", t.Name, id)
		}
	}
	return nil
}

// TotalMessages returns the number of messages in the trace.
func (t *Trace) TotalMessages() int {
	n := 0
	for _, evs := range t.Events {
		for _, ev := range evs {
			if ev.Kind == Send {
				n++
			}
		}
	}
	return n
}

// TotalBytes returns the total payload volume of the trace.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for _, evs := range t.Events {
		for _, ev := range evs {
			if ev.Kind == Send {
				n += int64(ev.Bytes)
			}
		}
	}
	return n
}

// Write serializes the trace in a simple line-oriented text format:
//
//	trace <name> <ranks>
//	r <rank>
//	s <peer> <bytes> <msgid>
//	v <peer> <msgid>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s %d\n", t.Name, t.Ranks)
	for r, evs := range t.Events {
		fmt.Fprintf(bw, "r %d\n", r)
		for _, ev := range evs {
			switch ev.Kind {
			case Send:
				fmt.Fprintf(bw, "s %d %d %d\n", ev.Peer, ev.Bytes, ev.MsgID)
			case Recv:
				fmt.Fprintf(bw, "v %d %d\n", ev.Peer, ev.MsgID)
			}
		}
	}
	return bw.Flush()
}

// MaxRanks bounds the rank count Read accepts, so a corrupt or hostile
// header cannot make it allocate an absurd event table.
const MaxRanks = 1 << 20

// Read parses a trace produced by Write. Malformed input — truncated
// records, event records before the header or outside a rank section,
// out-of-range rank counts — yields an error, never a panic.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	seenHeader := false
	cur := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "trace":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: malformed header %q", line)
			}
			if seenHeader {
				return nil, fmt.Errorf("trace: duplicate header %q", line)
			}
			t.Name = fields[1]
			if _, err := fmt.Sscanf(fields[2], "%d", &t.Ranks); err != nil {
				return nil, err
			}
			if t.Ranks < 1 || t.Ranks > MaxRanks {
				return nil, fmt.Errorf("trace: rank count %d out of range [1, %d]", t.Ranks, MaxRanks)
			}
			t.Events = make([][]Event, t.Ranks)
			seenHeader = true
		case "r":
			if !seenHeader {
				return nil, fmt.Errorf("trace: rank record before header: %q", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: malformed rank record %q", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &cur); err != nil {
				return nil, err
			}
			if cur < 0 || cur >= t.Ranks {
				return nil, fmt.Errorf("trace: rank %d out of range", cur)
			}
		case "s":
			if cur < 0 {
				return nil, fmt.Errorf("trace: send record outside a rank section: %q", line)
			}
			var peer, bytes int
			var id uint32
			if _, err := fmt.Sscanf(line, "s %d %d %d", &peer, &bytes, &id); err != nil {
				return nil, err
			}
			if peer < 0 || peer >= MaxRanks {
				return nil, fmt.Errorf("trace: send peer %d out of range", peer)
			}
			t.Events[cur] = append(t.Events[cur], Event{Kind: Send, Peer: int32(peer), Bytes: bytes, MsgID: id})
		case "v":
			if cur < 0 {
				return nil, fmt.Errorf("trace: recv record outside a rank section: %q", line)
			}
			var peer int
			var id uint32
			if _, err := fmt.Sscanf(line, "v %d %d", &peer, &id); err != nil {
				return nil, err
			}
			if peer < 0 || peer >= MaxRanks {
				return nil, fmt.Errorf("trace: recv peer %d out of range", peer)
			}
			t.Events[cur] = append(t.Events[cur], Event{Kind: Recv, Peer: int32(peer), MsgID: id})
		default:
			return nil, fmt.Errorf("trace: unknown record %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("trace: missing header")
	}
	return t, t.Validate()
}
