package trace

import (
	"fmt"

	"stashsim/internal/endpoint"
	"stashsim/internal/network"
	"stashsim/internal/proto"
)

// Replay drives a trace over a network: rank i runs on endpoint base+i
// (contiguous mapping, one rank per endpoint, as the paper's Figure 6
// methodology prescribes).
type Replay struct {
	tr  *Trace
	net *network.Network

	base        int32
	ptr         []int            // next event per rank
	expected    map[uint32]int   // msgID -> total flits
	got         map[uint32]int   // msgID -> flits arrived
	arrived     map[uint32]bool  // fully arrived messages
	waiter      map[uint32]int32 // msgID -> rank blocked on it
	outstanding int              // sends enqueued, not yet fully arrived
	doneRanks   int
}

// MsgFlits converts a message byte size to flits.
func MsgFlits(bytes int) int {
	f := (bytes + proto.FlitBytes - 1) / proto.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// NewReplay prepares a replay of tr on net, mapping rank 0 to endpoint
// base. It installs delivery hooks on the participating endpoints.
func NewReplay(tr *Trace, net *network.Network, base int32) (*Replay, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if int(base)+tr.Ranks > len(net.Endpoints) {
		return nil, fmt.Errorf("trace: %d ranks from base %d exceed %d endpoints",
			tr.Ranks, base, len(net.Endpoints))
	}
	r := &Replay{
		tr:       tr,
		net:      net,
		base:     base,
		ptr:      make([]int, tr.Ranks),
		expected: make(map[uint32]int),
		got:      make(map[uint32]int),
		arrived:  make(map[uint32]bool),
		waiter:   make(map[uint32]int32),
	}
	for _, evs := range tr.Events {
		for _, ev := range evs {
			if ev.Kind == Send {
				r.expected[ev.MsgID] = MsgFlits(ev.Bytes)
			}
		}
	}
	for rank := 0; rank < tr.Ranks; rank++ {
		ep := net.Endpoints[r.epOf(int32(rank))]
		ep.OnDelivered = r.onDelivered
	}
	return r, nil
}

func (r *Replay) epOf(rank int32) int32 { return r.base + rank }

func (r *Replay) rankOfMsgDst(msgID uint32) (int32, bool) {
	w, ok := r.waiter[msgID]
	return w, ok
}

// onDelivered accumulates packet arrivals into message completions and
// unblocks waiting ranks.
func (r *Replay) onDelivered(d endpoint.Delivery) {
	exp, ok := r.expected[d.MsgID]
	if !ok {
		return // non-trace traffic sharing the network
	}
	g := r.got[d.MsgID] + d.Flits
	if g < exp {
		r.got[d.MsgID] = g
		return
	}
	delete(r.got, d.MsgID)
	r.arrived[d.MsgID] = true
	r.outstanding--
	if rank, ok := r.rankOfMsgDst(d.MsgID); ok {
		delete(r.waiter, d.MsgID)
		r.advance(rank)
	}
}

// advance runs a rank forward: sends fire immediately, a recv blocks
// unless its message has already arrived.
func (r *Replay) advance(rank int32) {
	evs := r.tr.Events[rank]
	ep := r.net.Endpoints[r.epOf(rank)]
	for r.ptr[rank] < len(evs) {
		ev := evs[r.ptr[rank]]
		switch ev.Kind {
		case Send:
			flits := MsgFlits(ev.Bytes)
			ep.EnqueueMessage(r.epOf(ev.Peer), flits, proto.ClassTrace, ev.MsgID)
			r.outstanding++
			r.ptr[rank]++
		case Recv:
			if r.arrived[ev.MsgID] {
				delete(r.arrived, ev.MsgID)
				r.ptr[rank]++
				continue
			}
			r.waiter[ev.MsgID] = rank
			return
		}
	}
	r.doneRanks++
}

// Done reports whether every rank has finished and every message arrived.
func (r *Replay) Done() bool {
	return r.doneRanks == r.tr.Ranks && r.outstanding == 0
}

// Run replays the trace, returning the simulated cycles it took. It
// returns an error if the trace does not complete within maxCycles
// (deadlock or insufficient budget).
func (r *Replay) Run(maxCycles int64) (int64, error) {
	start := r.net.Now
	for rank := 0; rank < r.tr.Ranks; rank++ {
		r.advance(int32(rank))
	}
	for !r.Done() {
		if r.net.Now-start >= maxCycles {
			return 0, fmt.Errorf("trace %s: incomplete after %d cycles (%d/%d ranks done, %d msgs outstanding)",
				r.tr.Name, maxCycles, r.doneRanks, r.tr.Ranks, r.outstanding)
		}
		r.net.Step()
	}
	return r.net.Now - start, nil
}
