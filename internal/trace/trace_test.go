package trace

import (
	"strings"
	"testing"
)

func TestMsgFlits(t *testing.T) {
	cases := map[int]int{1: 1, 9: 1, 10: 1, 11: 2, 100: 10, 101: 11, 0: 1}
	for bytes, want := range cases {
		if got := MsgFlits(bytes); got != want {
			t.Fatalf("MsgFlits(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"trace x\n",                         // bad header arity
		"trace x 2\nr 5\n",                  // rank out of range
		"trace x 2\nr 0\ns 1\n",             // bad send arity
		"trace x 2\nr 0\nq 1 2\n",           // unknown record
		"trace x 2\nr 0\ns 1 100 0\n",       // unmatched send
		"trace x 2\nr 0\nv 1 0\nr 1\n",      // unmatched recv
		"trace x 1\nr 0\ns 0 10 0\nv 0 0\n", // self-message
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadAcceptsCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
trace demo 2
r 0
s 1 100 0

r 1
# another
v 0 0
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.TotalMessages() != 1 || tr.TotalBytes() != 100 {
		t.Fatalf("parsed %+v", tr)
	}
}

func TestValidateCatchesCrossedEndpoints(t *testing.T) {
	tr := &Trace{Name: "x", Ranks: 3, Events: [][]Event{
		{{Kind: Send, Peer: 1, Bytes: 10, MsgID: 0}},
		{},
		{{Kind: Recv, Peer: 0, MsgID: 0}}, // recv on the wrong rank
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("accepted recv on wrong rank")
	}
}

func TestValidateDuplicateMsgIDs(t *testing.T) {
	tr := &Trace{Name: "x", Ranks: 2, Events: [][]Event{
		{{Kind: Send, Peer: 1, Bytes: 10, MsgID: 0}, {Kind: Send, Peer: 1, Bytes: 10, MsgID: 0}},
		{{Kind: Recv, Peer: 0, MsgID: 0}, {Kind: Recv, Peer: 0, MsgID: 0}},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("accepted duplicate message ids")
	}
}
