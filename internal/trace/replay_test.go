package trace

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/network"
)

func tinyNet(t *testing.T, mode core.StashMode) *network.Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = mode
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestReplayPingPong(t *testing.T) {
	tr := &Trace{Name: "pingpong", Ranks: 2, Events: [][]Event{
		{{Kind: Send, Peer: 1, Bytes: 240, MsgID: 0}, {Kind: Recv, Peer: 1, MsgID: 1}},
		{{Kind: Recv, Peer: 0, MsgID: 0}, {Kind: Send, Peer: 0, Bytes: 240, MsgID: 1}},
	}}
	n := tinyNet(t, core.StashOff)
	r, err := NewReplay(tr, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := r.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	// A 24-flit round trip across at least two switches cannot complete
	// faster than four endpoint-link traversals plus serialization.
	if cycles < 4*n.Cfg.Lat.Endpoint {
		t.Fatalf("implausible round-trip: %d cycles", cycles)
	}
	t.Logf("pingpong completed in %d cycles", cycles)
}

func TestReplayDependencyOrdering(t *testing.T) {
	// Rank 2 forwards only after receiving; total time must exceed two
	// sequential message times.
	tr := &Trace{Name: "chain", Ranks: 3, Events: [][]Event{
		{{Kind: Send, Peer: 1, Bytes: 2400, MsgID: 0}},
		{{Kind: Recv, Peer: 0, MsgID: 0}, {Kind: Send, Peer: 2, Bytes: 2400, MsgID: 1}},
		{{Kind: Recv, Peer: 1, MsgID: 1}},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := tinyNet(t, core.StashOff)
	r, err := NewReplay(tr, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := r.Run(1000000)
	if err != nil {
		t.Fatal(err)
	}

	// The same two messages with no dependency overlap.
	tr2 := &Trace{Name: "parallel", Ranks: 3, Events: [][]Event{
		{{Kind: Send, Peer: 1, Bytes: 2400, MsgID: 0}},
		{{Kind: Recv, Peer: 0, MsgID: 0}, {Kind: Recv, Peer: 2, MsgID: 1}},
		{{Kind: Send, Peer: 1, Bytes: 2400, MsgID: 1}},
	}}
	n2 := tinyNet(t, core.StashOff)
	r2, err := NewReplay(tr2, n2, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := r2.Run(1000000)
	if err != nil {
		t.Fatal(err)
	}
	if chain <= par {
		t.Fatalf("dependency chain (%d) not slower than parallel (%d)", chain, par)
	}
}

func TestReplayIncompleteErrors(t *testing.T) {
	tr := &Trace{Name: "hang", Ranks: 2, Events: [][]Event{
		{{Kind: Recv, Peer: 1, MsgID: 0}},
		{{Kind: Recv, Peer: 0, MsgID: 1}},
	}}
	// Validation must reject recvs without sends.
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation error for unmatched recvs")
	}
}
