package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceRead feeds arbitrary text to the trace parser. Read must
// either return a validated trace or a clean error — the seed corpus
// includes the shapes that used to panic: a bare rank record (missing
// field), event records before any header, and headers with hostile rank
// counts. Every accepted trace must survive a Write/Read round trip
// unchanged, pinning the two directions of the text format to each other.
func FuzzTraceRead(f *testing.F) {
	var buf bytes.Buffer
	valid := &Trace{
		Name:  "ping",
		Ranks: 2,
		Events: [][]Event{
			{{Kind: Send, Peer: 1, Bytes: 64, MsgID: 1}, {Kind: Recv, Peer: 1, MsgID: 2}},
			{{Kind: Recv, Peer: 0, MsgID: 1}, {Kind: Send, Peer: 0, Bytes: 32, MsgID: 2}},
		},
	}
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("r\n")                    // truncated rank record
	f.Add("s 1 64 1\n")             // event before header
	f.Add("v 0 1\n")                // event before header
	f.Add("trace x -5\n")           // negative rank count
	f.Add("trace x 99999999999\n")  // absurd rank count
	f.Add("trace a 2\ntrace b 2\n") // duplicate header
	f.Add("trace x 2\ns 1 64 1\n")  // event outside a rank section
	f.Add("# comment\n\ntrace x 1\nr 0\n")

	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Read returned an invalid trace: %v", verr)
		}
		var out bytes.Buffer
		if werr := tr.Write(&out); werr != nil {
			t.Fatalf("Write failed on accepted trace: %v", werr)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read of written trace failed: %v\n%s", err, out.String())
		}
		if tr2.Name != tr.Name || tr2.Ranks != tr.Ranks || !reflect.DeepEqual(tr2.Events, tr.Events) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}
