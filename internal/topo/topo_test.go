package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func paperTopo() Dragonfly { return Dragonfly{P: 5, A: 11, H: 5} }

func TestPaperDimensions(t *testing.T) {
	d := paperTopo()
	if d.Groups() != 56 {
		t.Fatalf("groups %d, want 56", d.Groups())
	}
	if d.NumSwitches() != 616 {
		t.Fatalf("switches %d, want 616", d.NumSwitches())
	}
	if d.NumEndpoints() != 3080 {
		t.Fatalf("endpoints %d, want 3080 (paper)", d.NumEndpoints())
	}
	if d.Radix() != 20 {
		t.Fatalf("radix %d, want 20", d.Radix())
	}
}

func TestPortClassLayout(t *testing.T) {
	d := paperTopo()
	counts := map[LinkClass]int{}
	for p := 0; p < d.Radix(); p++ {
		counts[d.PortClass(p)]++
	}
	if counts[Endpoint] != 5 || counts[Local] != 10 || counts[Global] != 5 {
		t.Fatalf("port split %v, want 5/10/5", counts)
	}
}

func TestLocalPortSymmetry(t *testing.T) {
	d := paperTopo()
	for from := 0; from < d.A; from++ {
		for to := 0; to < d.A; to++ {
			if from == to {
				continue
			}
			p := d.LocalPortTo(from, to)
			if d.PortClass(p) != Local {
				t.Fatalf("LocalPortTo(%d,%d)=%d is not a local port", from, to, p)
			}
		}
	}
}

func TestLocalPortToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	paperTopo().LocalPortTo(3, 3)
}

func TestNeighborInvolution(t *testing.T) {
	// Following a link and following it back must return to the origin.
	for _, d := range []Dragonfly{paperTopo(), {P: 2, A: 4, H: 2}, {P: 3, A: 6, H: 3}} {
		for sw := 0; sw < d.NumSwitches(); sw++ {
			for p := d.P; p < d.Radix(); p++ {
				nsw, np := d.Neighbor(sw, p)
				if nsw == sw {
					t.Fatalf("self-link at switch %d port %d", sw, p)
				}
				bsw, bp := d.Neighbor(nsw, np)
				if bsw != sw || bp != p {
					t.Fatalf("link (%d,%d)->(%d,%d)->(%d,%d) not involutive",
						sw, p, nsw, np, bsw, bp)
				}
			}
		}
	}
}

func TestGlobalConnectivityCompletes(t *testing.T) {
	// Every pair of groups must be joined by exactly one global link.
	d := Dragonfly{P: 2, A: 4, H: 2}
	links := map[[2]int]int{}
	for sw := 0; sw < d.NumSwitches(); sw++ {
		for p := d.P + d.A - 1; p < d.Radix(); p++ {
			nsw, _ := d.Neighbor(sw, p)
			g1, g2 := d.Group(sw), d.Group(nsw)
			if g1 == g2 {
				t.Fatalf("global link within group %d", g1)
			}
			key := [2]int{min(g1, g2), max(g1, g2)}
			links[key]++
		}
	}
	want := d.Groups() * (d.Groups() - 1) / 2
	if len(links) != want {
		t.Fatalf("%d group pairs linked, want %d", len(links), want)
	}
	for pair, n := range links {
		if n != 2 { // seen once from each side
			t.Fatalf("pair %v seen %d times, want 2", pair, n)
		}
	}
}

func TestGlobalRouteConsistency(t *testing.T) {
	d := paperTopo()
	if err := quick.Check(func(a, b uint8) bool {
		g := int(a) % d.Groups()
		tg := int(b) % d.Groups()
		if g == tg {
			return true
		}
		swG, portG, swT, portT := d.GlobalRoute(g, tg)
		nsw, np := d.Neighbor(swG, portG)
		return nsw == swT && np == portT && d.Group(swG) == g && d.Group(swT) == tg
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointMapping(t *testing.T) {
	d := paperTopo()
	for ep := 0; ep < d.NumEndpoints(); ep++ {
		sw, port := d.EndpointSwitch(ep)
		if d.PortClass(port) != Endpoint {
			t.Fatalf("endpoint %d maps to non-endpoint port %d", ep, port)
		}
		if d.EndpointID(sw, port) != ep {
			t.Fatalf("endpoint %d mapping not invertible", ep)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Dragonfly{P: 0, A: 1, H: 1}).Validate(); err == nil {
		t.Fatal("accepted zero endpoints")
	}
	if err := paperTopo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperLatencies(t *testing.T) {
	l := PaperLatencies()
	// 5/40/500 ns at 1.3 cycles/ns, rounded up.
	if l.Endpoint != 7 || l.Local != 52 || l.Global != 650 {
		t.Fatalf("latencies %+v", l)
	}
	if l.Of(Endpoint) != 7 || l.Of(Local) != 52 || l.Of(Global) != 650 {
		t.Fatal("Of mismatch")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	m := PaperAsymmetry()
	rows := m.Rows()
	wantPct := []float64{25, 50, 25}
	wantUnder := []float64{0.99, 0.95, 0}
	for i, r := range rows {
		if math.Abs(r.PortsPercent*100-wantPct[i]) > 1e-9 {
			t.Fatalf("row %d pct %.1f want %.1f", i, r.PortsPercent*100, wantPct[i])
		}
		if math.Abs(r.Underutilized-wantUnder[i]) > 1e-9 {
			t.Fatalf("row %d under %.3f want %.3f", i, r.Underutilized, wantUnder[i])
		}
	}
	total := m.TotalUnderutilized()
	if total < 0.72 || total > 0.73 {
		t.Fatalf("total underutilization %.4f, paper says ~72%%", total)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestGlobalLinkInverses walks every (g, t) group pair of several
// topologies and asserts GlobalLinkIndex and GlobalLinkTarget are exact
// inverses, with indexes inside [0, A*H). Regression for the g == t hole:
// GlobalLinkIndex(g, g) used to return g-1 — a plausible, in-range index
// that silently aliases the link to group g-1 — instead of panicking the
// way LocalPortTo does on a self port.
func TestGlobalLinkInverses(t *testing.T) {
	for _, d := range []Dragonfly{paperTopo(), {P: 2, A: 4, H: 2}, {P: 3, A: 6, H: 3}, {P: 2, A: 32, H: 1}} {
		G := d.Groups()
		for g := 0; g < G; g++ {
			for tg := 0; tg < G; tg++ {
				if g == tg {
					continue
				}
				k := d.GlobalLinkIndex(g, tg)
				if k < 0 || k >= d.A*d.H {
					t.Fatalf("%+v: GlobalLinkIndex(%d,%d)=%d out of [0,%d)", d, g, tg, k, d.A*d.H)
				}
				if back := d.GlobalLinkTarget(g, k); back != tg {
					t.Fatalf("%+v: GlobalLinkTarget(%d, GlobalLinkIndex(%d,%d)=%d)=%d, want %d", d, g, g, tg, k, back, tg)
				}
			}
			for k := 0; k < d.A*d.H; k++ {
				tg := d.GlobalLinkTarget(g, k)
				if tg == g {
					t.Fatalf("%+v: GlobalLinkTarget(%d,%d) returned the source group", d, g, k)
				}
				if back := d.GlobalLinkIndex(g, tg); back != k {
					t.Fatalf("%+v: GlobalLinkIndex(%d, GlobalLinkTarget(%d,%d)=%d)=%d, want %d", d, g, g, k, tg, back, k)
				}
			}
		}
	}
}

// TestGlobalLinkSelfPanics pins the new guards: a self-group index query
// and an out-of-range link index must panic rather than alias a real link.
func TestGlobalLinkSelfPanics(t *testing.T) {
	d := paperTopo()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("GlobalLinkIndex self", func() { d.GlobalLinkIndex(3, 3) })
	mustPanic("GlobalLinkTarget negative", func() { d.GlobalLinkTarget(3, -1) })
	mustPanic("GlobalLinkTarget overflow", func() { d.GlobalLinkTarget(3, d.Groups()-1) })
}

// TestCrossGroupLookahead pins the PDES lookahead helper to the global
// latency (the only link class that crosses a group boundary).
func TestCrossGroupLookahead(t *testing.T) {
	d := paperTopo()
	if got := d.CrossGroupLookahead(PaperLatencies()); got != 650 {
		t.Fatalf("paper lookahead %d, want 650", got)
	}
	if got := d.CrossGroupLookahead(Latencies{Endpoint: 7, Local: 13, Global: 65}); got != 65 {
		t.Fatalf("tiny lookahead %d, want 65", got)
	}
}
