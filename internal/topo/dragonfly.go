// Package topo models the canonical dragonfly topology the paper evaluates
// on: groups of fully-connected switches, one global link per
// (group-pair), endpoints concentrated on every switch. It provides port
// maps, link classes with their physical latencies, and the analytic
// buffer-asymmetry model behind the paper's Table I.
package topo

import "fmt"

// LinkClass categorizes a switch port by what its link connects to.
type LinkClass uint8

const (
	// Endpoint ports connect to network endpoints (< 1 m links).
	Endpoint LinkClass = iota
	// Local ports connect switches within a group (< 5 m links).
	Local
	// Global ports connect groups over long optical links (< 100 m).
	Global
)

// String returns the class name.
func (c LinkClass) String() string {
	switch c {
	case Endpoint:
		return "endpoint"
	case Local:
		return "local"
	case Global:
		return "global"
	}
	return fmt.Sprintf("LinkClass(%d)", uint8(c))
}

// Dragonfly describes a canonical dragonfly: A switches per group, each
// with P endpoints and H global links; groups are fully connected pairwise
// by exactly one global link, giving G = A*H + 1 groups.
type Dragonfly struct {
	P int // endpoints per switch
	A int // switches per group
	H int // global links per switch
}

// Validate checks structural constraints.
func (d Dragonfly) Validate() error {
	if d.P <= 0 || d.A <= 0 || d.H <= 0 {
		return fmt.Errorf("topo: non-positive dragonfly parameter %+v", d)
	}
	return nil
}

// Groups returns the number of groups, A*H + 1.
func (d Dragonfly) Groups() int { return d.A*d.H + 1 }

// NumSwitches returns the total switch count.
func (d Dragonfly) NumSwitches() int { return d.Groups() * d.A }

// NumEndpoints returns the total endpoint count.
func (d Dragonfly) NumEndpoints() int { return d.NumSwitches() * d.P }

// Radix returns the switch radix: P endpoint + (A-1) local + H global.
func (d Dragonfly) Radix() int { return d.P + d.A - 1 + d.H }

// Port-range helpers. Ports are laid out per switch as
// [0,P) endpoints, [P, P+A-1) local, [P+A-1, radix) global.

// PortClass returns the link class of a port index.
func (d Dragonfly) PortClass(port int) LinkClass {
	switch {
	case port < d.P:
		return Endpoint
	case port < d.P+d.A-1:
		return Local
	default:
		return Global
	}
}

// EndpointPort returns the port index for the i-th endpoint of a switch.
func (d Dragonfly) EndpointPort(i int) int { return i }

// LocalPortTo returns the port on switch-in-group `from` that connects to
// switch-in-group `to` (both in [0,A), from != to).
func (d Dragonfly) LocalPortTo(from, to int) int {
	if from == to {
		panic("topo: local port to self")
	}
	if to < from {
		return d.P + to
	}
	return d.P + to - 1
}

// GlobalPort returns the port index of the k-th global link of a switch
// (k in [0,H)).
func (d Dragonfly) GlobalPort(k int) int { return d.P + d.A - 1 + k }

// Group returns the group of a switch id.
func (d Dragonfly) Group(sw int) int { return sw / d.A }

// SwitchInGroup returns a switch id's index within its group.
func (d Dragonfly) SwitchInGroup(sw int) int { return sw % d.A }

// SwitchID returns the switch id for (group, indexInGroup).
func (d Dragonfly) SwitchID(group, idx int) int { return group*d.A + idx }

// EndpointSwitch returns the switch an endpoint attaches to and its port.
func (d Dragonfly) EndpointSwitch(ep int) (sw, port int) {
	return ep / d.P, ep % d.P
}

// EndpointID returns the endpoint id attached to (switch, endpointIndex).
func (d Dragonfly) EndpointID(sw, i int) int { return sw*d.P + i }

// GlobalLinkIndex returns, for source group g and destination group t
// (g != t), the group-local global-link index k in [0, A*H) that carries
// traffic from g to t under the canonical consecutive allocation.
func (d Dragonfly) GlobalLinkIndex(g, t int) int {
	if g == t {
		panic("topo: global link to self group")
	}
	if t < g {
		return t
	}
	return t - 1
}

// GlobalLinkTarget returns the destination group of group-local global
// link k of group g under the canonical allocation (k in [0, A*H)).
func (d Dragonfly) GlobalLinkTarget(g, k int) int {
	if k < 0 || k >= d.Groups()-1 {
		panic("topo: global link index out of range")
	}
	if k < g {
		return k
	}
	return k + 1
}

// GlobalRoute resolves the switch and port at both ends of the global link
// between groups g and t: the switch in g owning the link to t, the port
// on that switch, and likewise for the reverse direction.
func (d Dragonfly) GlobalRoute(g, t int) (swG, portG, swT, portT int) {
	kg := d.GlobalLinkIndex(g, t)
	kt := d.GlobalLinkIndex(t, g)
	swG = d.SwitchID(g, kg/d.H)
	portG = d.GlobalPort(kg % d.H)
	swT = d.SwitchID(t, kt/d.H)
	portT = d.GlobalPort(kt % d.H)
	return
}

// Neighbor returns, for a switch and one of its non-endpoint ports, the
// connected switch and the port on that switch.
func (d Dragonfly) Neighbor(sw, port int) (nsw, nport int) {
	g, idx := d.Group(sw), d.SwitchInGroup(sw)
	switch d.PortClass(port) {
	case Local:
		to := port - d.P
		if to >= idx {
			to++
		}
		return d.SwitchID(g, to), d.LocalPortTo(to, idx)
	case Global:
		k := idx*d.H + (port - d.GlobalPort(0))
		t := d.GlobalLinkTarget(g, k)
		swG, portG, swT, portT := d.GlobalRoute(g, t)
		if swG != sw || portG != port {
			panic("topo: inconsistent global link mapping")
		}
		return swT, portT
	default:
		panic("topo: Neighbor called on an endpoint port")
	}
}

// Latencies holds one-way channel latencies in internal cycles per class.
type Latencies struct {
	Endpoint, Local, Global int64
}

// Of returns the latency for a link class.
func (l Latencies) Of(c LinkClass) int64 {
	switch c {
	case Endpoint:
		return l.Endpoint
	case Local:
		return l.Local
	default:
		return l.Global
	}
}

// CrossGroupLookahead returns the conservative-PDES lookahead, in cycles,
// for partitions made of whole dragonfly groups: the smallest one-way
// latency of any link that crosses a group boundary. Only global links
// cross groups (endpoint and local links stay inside one), so this is the
// global latency. A flit or credit staged on a cross-group link during an
// epoch of at most this many cycles cannot become due before the next
// epoch starts, which is what makes epoch-batched delivery exact.
func (d Dragonfly) CrossGroupLookahead(l Latencies) int64 { return l.Global }

// PaperLatencies converts the paper's one-way nanosecond latencies
// (5/40/500 ns) into internal 1.3 GHz cycles, rounding up.
func PaperLatencies() Latencies {
	conv := func(ns int64) int64 { return (ns*13 + 9) / 10 }
	return Latencies{Endpoint: conv(5), Local: conv(40), Global: conv(500)}
}
