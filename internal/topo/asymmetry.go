package topo

// This file implements the analytic model behind the paper's Table I:
// how much of a symmetric switch's port buffering is idle when the switch
// is deployed in an asymmetric topology.

// AsymmetryRow is one row of Table I.
type AsymmetryRow struct {
	Class         LinkClass
	MaxLengthM    float64 // maximum physical link length for this class
	PortsPercent  float64 // share of switch ports with this class
	Underutilized float64 // fraction of the port's buffering that is idle
}

// AsymmetryModel computes Table I for a dragonfly built from symmetric
// switches whose port buffers are provisioned for links of maxLengthM
// meters. Buffer demand is proportional to the link round-trip time, hence
// to physical length; a port on a link of length L needs only L/maxLength
// of its buffering.
type AsymmetryModel struct {
	Topology   Dragonfly
	MaxLengthM float64 // provisioning length (100 m for Omni-Path-class)
	// Per-class actual maximum link lengths in meters.
	EndpointM, LocalM, GlobalM float64
}

// PaperAsymmetry returns the canonical configuration of Table I: a 20-port
// switch (5 endpoint / 10 local / 5 global) provisioned for 100 m links,
// with <1 m endpoint, <5 m intra-group and <100 m inter-group cables.
func PaperAsymmetry() AsymmetryModel {
	return AsymmetryModel{
		Topology:   Dragonfly{P: 5, A: 11, H: 5},
		MaxLengthM: 100,
		EndpointM:  1,
		LocalM:     5,
		GlobalM:    100,
	}
}

// Rows returns the three Table I rows.
func (m AsymmetryModel) Rows() []AsymmetryRow {
	d := m.Topology
	radix := float64(d.Radix())
	under := func(length float64) float64 { return 1 - length/m.MaxLengthM }
	return []AsymmetryRow{
		{Endpoint, m.EndpointM, float64(d.P) / radix, under(m.EndpointM)},
		{Local, m.LocalM, float64(d.A-1) / radix, under(m.LocalM)},
		{Global, m.GlobalM, float64(d.H) / radix, under(m.GlobalM)},
	}
}

// TotalUnderutilized returns the port-share-weighted idle fraction of all
// switch buffering (the paper's "approximately 72%").
func (m AsymmetryModel) TotalUnderutilized() float64 {
	var total float64
	for _, r := range m.Rows() {
		total += r.PortsPercent * r.Underutilized
	}
	return total
}
