package traffic

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/endpoint"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

func testEndpoint(t *testing.T) *endpoint.Endpoint {
	t.Helper()
	cfg := core.TinyConfig()
	ep := endpoint.New(0, cfg, sim.NewRNG(1))
	ep.Collector = endpoint.NewCollector()
	ep.Attach(core.NewLink(1), core.NewLink(1), cfg.InputBufFlits)
	return ep
}

func TestUniformRate(t *testing.T) {
	ep := testEndpoint(t)
	rng := sim.NewRNG(2)
	load, rate := 0.5, 10.0/13.0
	gen := Uniform(rng, 72, nil, load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	const cycles = 200000
	for now := sim.Tick(0); now < cycles; now++ {
		gen(now, ep)
	}
	offered := float64(ep.Collector.TotalOfferedFlits())
	want := load * rate * cycles
	if offered < want*0.95 || offered > want*1.05 {
		t.Fatalf("offered %.0f flits, want ~%.0f", offered, want)
	}
}

func TestUniformStartDelay(t *testing.T) {
	ep := testEndpoint(t)
	rng := sim.NewRNG(3)
	gen := Uniform(rng, 72, nil, 1.0, 1.0, 24, proto.ClassDefault, 1000)
	for now := sim.Tick(0); now < 1000; now++ {
		gen(now, ep)
	}
	if ep.Collector.TotalOfferedFlits() != 0 {
		t.Fatal("generated before start time")
	}
	for now := sim.Tick(1000); now < 2000; now++ {
		gen(now, ep)
	}
	if ep.Collector.TotalOfferedFlits() == 0 {
		t.Fatal("nothing generated after start time")
	}
}

func TestUniformDestinationsValid(t *testing.T) {
	ep := testEndpoint(t)
	rng := sim.NewRNG(4)
	dests := []int32{5, 9, 13}
	// Full-rate so many messages get generated.
	gen := Uniform(rng, 72, dests, 1.0, 1.0, 24, proto.ClassDefault, 0)
	for now := sim.Tick(0); now < 5000; now++ {
		gen(now, ep)
	}
	// Destinations are internal to the endpoint's queues; instead verify
	// self-exclusion indirectly: endpoint 5 restricted to {5,9,13} must
	// never pick itself (EnqueueMessage would panic).
	cfg := core.TinyConfig()
	ep5 := endpoint.New(5, cfg, sim.NewRNG(8))
	ep5.Collector = endpoint.NewCollector()
	ep5.Attach(core.NewLink(1), core.NewLink(1), cfg.InputBufFlits)
	gen5 := Uniform(sim.NewRNG(6), 72, dests, 1.0, 1.0, 24, proto.ClassDefault, 0)
	for now := sim.Tick(0); now < 5000; now++ {
		gen5(now, ep5) // panics on self-message if exclusion fails
	}
}

func TestSaturatingKeepsBacklogShallow(t *testing.T) {
	ep := testEndpoint(t)
	rng := sim.NewRNG(5)
	gen := Saturating(rng, 72, nil, 48, proto.ClassAggressor, 0, 0)
	gen(0, ep)
	if q := ep.QueuedFlits(); q < 48 || q > 144 {
		t.Fatalf("backlog %d outside [48,144]", q)
	}
	// Without consumption, repeated calls do not grow the backlog.
	before := ep.QueuedFlits()
	for now := sim.Tick(1); now < 100; now++ {
		gen(now, ep)
	}
	if ep.QueuedFlits() != before {
		t.Fatal("saturating generator grew an unconsumed backlog")
	}
}

func TestSaturatingStopTime(t *testing.T) {
	ep := testEndpoint(t)
	rng := sim.NewRNG(6)
	gen := Saturating(rng, 72, nil, 24, proto.ClassAggressor, 0, 50)
	gen(49, ep)
	q := ep.QueuedFlits()
	gen(50, ep)
	gen(51, ep)
	if ep.QueuedFlits() != q {
		t.Fatal("generated after stop time")
	}
}

func TestHotspotFixedDestination(t *testing.T) {
	ep := testEndpoint(t)
	gen := Hotspot(9, 24, proto.ClassAggressor, 0)
	for now := sim.Tick(0); now < 10; now++ {
		gen(now, ep)
	}
	if ep.QueuedFlits() == 0 {
		t.Fatal("hotspot generated nothing")
	}
	// All offered load is aggressor class.
	if ep.Collector.OfferedFlits[proto.ClassAggressor] == 0 ||
		ep.Collector.OfferedFlits[proto.ClassDefault] != 0 {
		t.Fatal("hotspot used wrong class")
	}
}
