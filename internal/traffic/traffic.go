// Package traffic provides the synthetic workload generators of the
// paper's evaluation: uniform-random Bernoulli arrivals, saturating
// sources, hotspot aggressors, and bursty (multi-packet-message) variants.
// Generators are closures installed as endpoint.Endpoint.Gen hooks.
package traffic

import (
	"stashsim/internal/endpoint"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// Gen is the per-endpoint generator hook type.
type Gen = func(now sim.Tick, e *endpoint.Endpoint)

// Uniform returns a Bernoulli uniform-random generator: messages of
// msgFlits flits arrive with the probability that produces `load` fraction
// of channel capacity, each to a uniformly random other endpoint drawn
// from dests (pass nil for all endpoints).
//
// rate is the channel capacity in flits/cycle (RateNum/RateDen); start
// delays generation (cycles).
func Uniform(rng *sim.RNG, numEndpoints int, dests []int32, load, rate float64, msgFlits int, class proto.Class, start sim.Tick) Gen {
	p := load * rate / float64(msgFlits)
	return func(now sim.Tick, e *endpoint.Endpoint) {
		if now < start || !rng.Bernoulli(p) {
			return
		}
		dst := randomDest(rng, numEndpoints, dests, e.ID)
		e.EnqueueMessage(dst, msgFlits, class, 0)
	}
}

// Saturating returns a generator that keeps the endpoint's injection
// backlog topped up so it always injects at the maximum rate, sending
// msgFlits-flit messages to uniformly random destinations. The backlog is
// kept shallow (two messages) so stopping the generator drains quickly.
func Saturating(rng *sim.RNG, numEndpoints int, dests []int32, msgFlits int, class proto.Class, start, stop sim.Tick) Gen {
	return func(now sim.Tick, e *endpoint.Endpoint) {
		if now < start || (stop > 0 && now >= stop) {
			return
		}
		for e.QueuedFlits() < int64(2*msgFlits) {
			dst := randomDest(rng, numEndpoints, dests, e.ID)
			e.EnqueueMessage(dst, msgFlits, class, 0)
		}
	}
}

// Hotspot returns a generator for one aggressor source that streams
// msgFlits-flit messages to a single fixed destination at the maximum
// rate, beginning at start.
func Hotspot(dst int32, msgFlits int, class proto.Class, start sim.Tick) Gen {
	return func(now sim.Tick, e *endpoint.Endpoint) {
		if now < start {
			return
		}
		for e.QueuedFlits() < int64(2*msgFlits) {
			e.EnqueueMessage(dst, msgFlits, class, 0)
		}
	}
}

// Permutation returns a generator sending all traffic to one fixed partner
// at the given load (used by tests as an adversarial pattern).
func Permutation(rng *sim.RNG, partner int32, load, rate float64, msgFlits int, class proto.Class) Gen {
	p := load * rate / float64(msgFlits)
	return func(now sim.Tick, e *endpoint.Endpoint) {
		if rng.Bernoulli(p) {
			e.EnqueueMessage(partner, msgFlits, class, 0)
		}
	}
}

func randomDest(rng *sim.RNG, numEndpoints int, dests []int32, self int32) int32 {
	if dests == nil {
		for {
			d := int32(rng.Intn(numEndpoints))
			if d != self {
				return d
			}
		}
	}
	for {
		d := dests[rng.Intn(len(dests))]
		if d != self {
			return d
		}
	}
}
