package buffer

import (
	"sort"

	"stashsim/internal/proto"
	"stashsim/internal/snapshot"
)

// Checkpoint hooks for the storage structures. Structural parameters
// (capacities, VC counts, reserve quotas, parity width) are rebuilt from
// the configuration and verified, not serialized; only dynamic state is
// captured. Flits travel in the canonical proto wire encoding, so every
// decode path inherits the proto codec's range validation.

// EncodeState appends the ring's queued flits in FIFO order.
func (r *Ring) EncodeState(w *snapshot.Writer) {
	w.Count(r.n)
	for i := 0; i < r.n; i++ {
		w.Flit(r.At(i))
	}
}

// DecodeState replaces the ring's contents with the snapshot's.
func (r *Ring) DecodeState(rd *snapshot.Reader) {
	n := rd.Count(proto.FlitWireSize)
	*r = Ring{}
	for i := 0; i < n; i++ {
		f := rd.Flit()
		if rd.Err() != nil {
			return
		}
		r.Push(f)
	}
}

// EncodeState appends the DAMQ's dynamic state: per-VC queues, pool
// accounting, and the occupancy mask.
func (d *DAMQ) EncodeState(w *snapshot.Writer) {
	w.Section("DAMQ")
	w.Count(len(d.queues))
	for vc := range d.queues {
		d.queues[vc].EncodeState(w)
	}
	for vc := range d.resvUsed {
		w.I64(int64(d.resvUsed[vc]))
	}
	w.I64(int64(d.shared))
	w.I64(int64(d.used))
	w.U32(d.occupied)
}

// DecodeState restores the DAMQ's dynamic state into a buffer built with
// the identical structural parameters.
func (d *DAMQ) DecodeState(rd *snapshot.Reader) {
	rd.Section("DAMQ")
	if n := rd.Count(4); rd.Err() == nil && n != len(d.queues) {
		rd.Failf("buffer: DAMQ has %d VCs, snapshot has %d", len(d.queues), n)
	}
	if rd.Err() != nil {
		return
	}
	for vc := range d.queues {
		d.queues[vc].DecodeState(rd)
	}
	for vc := range d.resvUsed {
		d.resvUsed[vc] = int(rd.I64())
	}
	d.shared = int(rd.I64())
	d.used = int(rd.I64())
	d.occupied = rd.U32()
}

// EncodeState appends the credit counter's free-credit state.
func (c *CreditCounter) EncodeState(w *snapshot.Writer) {
	w.Count(len(c.resvFree))
	for vc := range c.resvFree {
		w.I64(int64(c.resvFree[vc]))
	}
	w.I64(int64(c.shared))
}

// DecodeState restores the credit counter's free-credit state.
func (c *CreditCounter) DecodeState(rd *snapshot.Reader) {
	if n := rd.Count(8); rd.Err() == nil && n != len(c.resvFree) {
		rd.Failf("buffer: credit counter has %d VCs, snapshot has %d", len(c.resvFree), n)
	}
	if rd.Err() != nil {
		return
	}
	for vc := range c.resvFree {
		c.resvFree[vc] = int(rd.I64())
	}
	c.shared = int(rd.I64())
}

// EncodeState appends the output buffer's dynamic state. Retained
// (in-flight) entries are placeholder flits carrying only a release
// deadline, so only the deadlines are serialized.
func (b *OutBuf) EncodeState(w *snapshot.Writer) {
	w.Section("OUTB")
	w.Count(len(b.queues))
	for vc := range b.queues {
		b.queues[vc].EncodeState(w)
	}
	w.I64(int64(b.queued))
	w.U32(b.occupied)
	w.Count(b.inflight.Len())
	for i := 0; i < b.inflight.Len(); i++ {
		w.I64(b.inflight.At(i).At)
	}
}

// DecodeState restores the output buffer's dynamic state.
func (b *OutBuf) DecodeState(rd *snapshot.Reader) {
	rd.Section("OUTB")
	if n := rd.Count(4); rd.Err() == nil && n != len(b.queues) {
		rd.Failf("buffer: output buffer has %d VCs, snapshot has %d", len(b.queues), n)
	}
	if rd.Err() != nil {
		return
	}
	for vc := range b.queues {
		b.queues[vc].DecodeState(rd)
	}
	b.queued = int(rd.I64())
	b.occupied = rd.U32()
	n := rd.Count(8)
	b.inflight = TimedRing{}
	for i := 0; i < n; i++ {
		b.inflight.Push(TimedFlit{At: rd.I64()})
	}
}

// sortedIDs collects a size map's keys in ascending order.
func sortedIDs(m map[uint64]uint8) []uint64 {
	ids := make([]uint64, 0, len(m))
	//lint:allow determinism -- map-key collection, sorted before use
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// encodeSizeMap appends a pktID -> flit-count map in ascending id order.
func encodeSizeMap(w *snapshot.Writer, m map[uint64]uint8) {
	ids := sortedIDs(m)
	w.Count(len(ids))
	for _, id := range ids {
		w.U64(id)
		w.U8(m[id])
	}
}

// decodeSizeMap restores a pktID -> flit-count map (nil when empty, like
// the lazily-allocated live maps).
func decodeSizeMap(rd *snapshot.Reader) map[uint64]uint8 {
	n := rd.Count(9)
	if rd.Err() != nil || n == 0 {
		return nil
	}
	m := make(map[uint64]uint8, n)
	for i := 0; i < n; i++ {
		id := rd.U64()
		m[id] = rd.U8()
	}
	return m
}

// encodeBufMap appends a pktID -> retained-payload map in ascending id
// order, payload flits in the canonical wire encoding.
func encodeBufMap(w *snapshot.Writer, m map[uint64]*proto.PktBuf) {
	ids := make([]uint64, 0, len(m))
	//lint:allow determinism -- map-key collection, sorted before use
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Count(len(ids))
	for _, id := range ids {
		b := m[id]
		w.U64(id)
		w.Count(len(b.Flits))
		for i := range b.Flits {
			w.Flit(&b.Flits[i])
		}
	}
}

// decodeBufMap restores a retained-payload map, drawing fresh buffers
// from the pool's freelist (each map entry owns exactly one reference at
// a cycle barrier — transient retransmission references never span one).
func (p *StashPool) decodeBufMap(rd *snapshot.Reader) map[uint64]*proto.PktBuf {
	n := rd.Count(12)
	if rd.Err() != nil || n == 0 {
		return nil
	}
	m := make(map[uint64]*proto.PktBuf, n)
	for i := 0; i < n; i++ {
		id := rd.U64()
		k := rd.Count(proto.FlitWireSize)
		if k > proto.MaxPacketFlits {
			rd.Failf("buffer: retained payload of %d flits exceeds the %d-flit packet bound", k, proto.MaxPacketFlits)
			return m
		}
		b := p.bufs.Get()
		for j := 0; j < k; j++ {
			f := rd.Flit()
			if rd.Err() != nil {
				return m
			}
			b.Flits = append(b.Flits, f)
		}
		m[id] = b
	}
	return m
}

// DecodeRetainedPayload restores one retained payload — a flit count
// followed by canonical wire flits — into a fresh buffer drawn from this
// pool's freelist. Used for in-flight reconstruction records, whose
// payloads are rebuilt into the target bank's pool.
func (p *StashPool) DecodeRetainedPayload(rd *snapshot.Reader) *proto.PktBuf {
	k := rd.Count(proto.FlitWireSize)
	if rd.Err() != nil {
		return nil
	}
	if k > proto.MaxPacketFlits {
		rd.Failf("buffer: retained payload of %d flits exceeds the %d-flit packet bound", k, proto.MaxPacketFlits)
		return nil
	}
	b := p.bufs.Get()
	for j := 0; j < k; j++ {
		f := rd.Flit()
		if rd.Err() != nil {
			return b
		}
		b.Flits = append(b.Flits, f)
	}
	return b
}

// EncodeState appends the stash pool's dynamic state.
func (p *StashPool) EncodeState(w *snapshot.Writer) {
	w.Section("STSH")
	w.I64(int64(p.reserved))
	w.I64(int64(p.used))
	w.I64(int64(p.parity))
	w.I64(int64(p.retrCopies))
	w.I64(p.freed)
	w.I64(int64(p.PeakUsed))
	encodeSizeMap(w, p.arrived)
	encodeSizeMap(w, p.copies)
	encodeSizeMap(w, p.dead)
	encodeBufMap(w, p.store)
	encodeBufMap(w, p.partial)
	p.retrQ.EncodeState(w)
}

// DecodeState restores the stash pool's dynamic state into a fresh pool
// built with the identical capacity and retention setting.
func (p *StashPool) DecodeState(rd *snapshot.Reader) {
	rd.Section("STSH")
	p.reserved = int(rd.I64())
	p.used = int(rd.I64())
	p.parity = int(rd.I64())
	p.retrCopies = int(rd.I64())
	p.freed = rd.I64()
	p.PeakUsed = int(rd.I64())
	if m := decodeSizeMap(rd); m != nil {
		p.arrived = m
	} else if rd.Err() == nil {
		clear(p.arrived)
	}
	p.copies = decodeSizeMap(rd)
	p.dead = decodeSizeMap(rd)
	p.store = p.decodeBufMap(rd)
	p.partial = p.decodeBufMap(rd)
	p.retrQ.DecodeState(rd)
}

// EncodeState appends the parity tracker's dynamic state: the full group
// slab (slot recycling order is behaviorally significant — FailCandidates
// and the audit walk it in slab order, and freeG's LIFO order decides
// which slot the next group reuses), the free/open/seal lists, and the
// cumulative counters. byPkt is derivable from live members and rebuilt
// on decode.
func (t *ParityTracker) EncodeState(w *snapshot.Writer) {
	w.Section("PRTY")
	w.Count(len(t.groups))
	for gi := range t.groups {
		g := &t.groups[gi]
		w.U8(g.n)
		w.U8(g.state)
		w.U64(g.bankSet)
		w.U16(uint16(g.parityBank))
		w.U8(g.paritySize)
		for i := 0; i < int(g.n); i++ {
			m := &g.members[i]
			w.U64(m.pktID)
			w.U8(m.size)
			w.U16(uint16(m.bank))
		}
	}
	encodeIdxList(w, t.freeG)
	encodeIdxList(w, t.openG)
	encodeIdxList(w, t.sealQ)
	w.I64(t.SealedGroups)
	w.I64(t.SealsDeferred)
	w.I64(t.GroupsDissolved)
}

// DecodeState restores the parity tracker's dynamic state.
func (t *ParityTracker) DecodeState(rd *snapshot.Reader) {
	rd.Section("PRTY")
	n := rd.Count(13)
	if rd.Err() != nil {
		return
	}
	t.groups = make([]parityGroup, n)
	clear(t.byPkt)
	for gi := range t.groups {
		g := &t.groups[gi]
		g.n = rd.U8()
		g.state = rd.U8()
		g.bankSet = rd.U64()
		g.parityBank = int16(rd.U16())
		g.paritySize = rd.U8()
		if rd.Err() != nil {
			return
		}
		if int(g.n) > MaxParityWidth {
			rd.Failf("buffer: parity group with %d members exceeds width bound %d", g.n, MaxParityWidth)
			return
		}
		if g.state > gSealed {
			rd.Failf("buffer: invalid parity group state %d", g.state)
			return
		}
		for i := 0; i < int(g.n); i++ {
			m := &g.members[i]
			m.pktID = rd.U64()
			m.size = rd.U8()
			m.bank = int16(rd.U16())
		}
		if g.state != gFree {
			for i := 0; i < int(g.n); i++ {
				t.byPkt[g.members[i].pktID] = int32(gi)
			}
		}
	}
	t.freeG = t.decodeIdxList(rd, t.freeG)
	t.openG = t.decodeIdxList(rd, t.openG)
	t.sealQ = t.decodeIdxList(rd, t.sealQ)
	t.SealedGroups = rd.I64()
	t.SealsDeferred = rd.I64()
	t.GroupsDissolved = rd.I64()
}

// encodeIdxList appends one group-index list.
func encodeIdxList(w *snapshot.Writer, l []int32) {
	w.Count(len(l))
	for _, gi := range l {
		w.U32(uint32(gi))
	}
}

// decodeIdxList restores one group-index list, validating every entry
// against the slab size.
func (t *ParityTracker) decodeIdxList(rd *snapshot.Reader, into []int32) []int32 {
	n := rd.Count(4)
	if rd.Err() != nil {
		return into[:0]
	}
	out := into[:0]
	for i := 0; i < n; i++ {
		gi := rd.U32()
		if int(gi) >= len(t.groups) {
			rd.Failf("buffer: parity group index %d out of range [0,%d)", gi, len(t.groups))
			return out
		}
		out = append(out, int32(gi))
	}
	return out
}

// EncodeState appends the banked-memory admission gate's dynamic state.
func (m *BankedMem) EncodeState(w *snapshot.Writer) {
	for i := range m.parity {
		w.U8(m.parity[i])
	}
	w.Bool(m.taken[0])
	w.Bool(m.taken[1])
	w.I64(m.cycle)
	w.I64(m.Conflicts)
	w.I64(m.Accesses)
}

// DecodeState restores the banked-memory admission gate's dynamic state.
func (m *BankedMem) DecodeState(rd *snapshot.Reader) {
	for i := range m.parity {
		m.parity[i] = rd.U8()
	}
	m.taken[0] = rd.Bool()
	m.taken[1] = rd.Bool()
	m.cycle = rd.I64()
	m.Conflicts = rd.I64()
	m.Accesses = rd.I64()
}
