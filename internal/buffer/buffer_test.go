package buffer

import (
	"testing"
	"testing/quick"

	"stashsim/internal/proto"
)

func flit(seq int) proto.Flit {
	return proto.Flit{PktID: 1, Seq: uint8(seq), Size: 24}
}

func TestRingFIFO(t *testing.T) {
	var r Ring
	for i := 0; i < 100; i++ {
		r.Push(flit(i % 250))
	}
	if r.Len() != 100 {
		t.Fatalf("len %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		f := r.Pop()
		if int(f.Seq) != i%250 {
			t.Fatalf("pop %d got seq %d", i, f.Seq)
		}
	}
	if !r.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestRingInterleavedPushPop(t *testing.T) {
	var r Ring
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			r.Push(flit(next % 200))
			next++
		}
		for i := 0; i < 5; i++ {
			f := r.Pop()
			if int(f.Seq) != expect%200 {
				t.Fatalf("expected %d got %d", expect%200, f.Seq)
			}
			expect++
		}
	}
	for expect < next {
		if int(r.Pop().Seq) != expect%200 {
			t.Fatal("drain order wrong")
		}
		expect++
	}
}

func TestRingFrontAndAt(t *testing.T) {
	var r Ring
	for i := 0; i < 10; i++ {
		r.Push(flit(i))
	}
	if r.Front().Seq != 0 {
		t.Fatal("front wrong")
	}
	for i := 0; i < 10; i++ {
		if int(r.At(i).Seq) != i {
			t.Fatalf("At(%d) wrong", i)
		}
	}
}

func TestRingPanics(t *testing.T) {
	var r Ring
	for _, f := range []func(){
		func() { r.Pop() },
		func() { r.Front() },
		func() { r.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on empty ring")
				}
			}()
			f()
		}()
	}
}

func TestTimedRingDelivery(t *testing.T) {
	var r TimedRing
	r.Push(TimedFlit{At: 10, Flit: flit(0)})
	r.Push(TimedFlit{At: 12, Flit: flit(1)})
	if _, ok := r.PopDue(9); ok {
		t.Fatal("delivered early")
	}
	if f, ok := r.PopDue(10); !ok || f.Flit.Seq != 0 {
		t.Fatal("first not delivered at deadline")
	}
	if _, ok := r.PopDue(11); ok {
		t.Fatal("second delivered early")
	}
	if f, ok := r.PopDue(20); !ok || f.Flit.Seq != 1 {
		t.Fatal("second not delivered late")
	}
}

func TestReserves(t *testing.T) {
	cases := []struct {
		cap, vcs, want int
	}{
		{1000, 6, 24}, // paper input buffer: full packet reserve
		{125, 6, 10},  // stashed endpoint partition: capped at cap/12
		{0, 6, 0},
		{12, 6, 1},
		{1000, 0, 0},
	}
	for _, c := range cases {
		if got := Reserves(c.cap, c.vcs); got != c.want {
			t.Fatalf("Reserves(%d,%d) = %d, want %d", c.cap, c.vcs, got, c.want)
		}
	}
}

// senderReceiver pairs a CreditCounter with a DAMQ the way a link does.
type senderReceiver struct {
	cc *CreditCounter
	dq *DAMQ
}

func newSR(capacity, vcs int) *senderReceiver {
	return &senderReceiver{NewCreditCounter(capacity, vcs), NewDAMQ(capacity, vcs)}
}

func (sr *senderReceiver) send(vc int) proto.Flit {
	f := proto.Flit{VC: uint8(vc), Flags: proto.FlagHead | proto.FlagTail, Size: 1}
	sr.cc.Take(&f)
	sr.dq.Push(f)
	return f
}

func (sr *senderReceiver) recv(vc int) {
	_, cr := sr.dq.Pop(vc)
	sr.cc.Return(cr)
}

func TestDAMQCreditConservation(t *testing.T) {
	sr := newSR(100, 4)
	// Drive a random workload and check sender/receiver agreement.
	rngState := uint64(12345)
	rnd := func(n int) int {
		rngState = rngState*6364136223846793005 + 1
		return int(rngState>>33) % n
	}
	queued := make([]int, 4)
	for step := 0; step < 100000; step++ {
		vc := rnd(4)
		if rnd(2) == 0 {
			if sr.cc.Avail(vc) > 0 {
				sr.send(vc)
				queued[vc]++
			}
		} else if queued[vc] > 0 {
			sr.recv(vc)
			queued[vc]--
		}
		if sr.dq.Avail(vc) < 0 {
			t.Fatal("negative availability")
		}
	}
	// Drain and verify full credit recovery.
	for vc := 0; vc < 4; vc++ {
		for queued[vc] > 0 {
			sr.recv(vc)
			queued[vc]--
		}
	}
	for vc := 0; vc < 4; vc++ {
		if sr.cc.Avail(vc) != sr.cc.resvFree[vc]+sr.cc.shared {
			t.Fatal("inconsistent counter")
		}
		if got := sr.cc.Avail(vc); got != Reserves(100, 4)+100-4*Reserves(100, 4) {
			t.Fatalf("vc %d: avail %d after drain", vc, got)
		}
	}
	if sr.dq.Used() != 0 {
		t.Fatal("DAMQ not empty after drain")
	}
}

func TestDAMQSingleVCCanUseShared(t *testing.T) {
	sr := newSR(100, 4)
	n := 0
	for sr.cc.Avail(0) > 0 {
		sr.send(0)
		n++
	}
	resv := Reserves(100, 4)
	want := resv + (100 - 4*resv)
	if n != want {
		t.Fatalf("single VC filled %d slots, want %d", n, want)
	}
	// Other VCs must still have their reserved quota.
	for vc := 1; vc < 4; vc++ {
		if sr.cc.Avail(vc) != resv {
			t.Fatalf("vc %d starved: avail %d", vc, sr.cc.Avail(vc))
		}
	}
}

func TestDAMQOccupiedMask(t *testing.T) {
	d := NewDAMQ(100, 4)
	f := proto.Flit{VC: 2}
	d.Push(f)
	if d.Occupied() != 1<<2 {
		t.Fatalf("mask %b", d.Occupied())
	}
	d.Pop(2)
	if d.Occupied() != 0 {
		t.Fatalf("mask %b after pop", d.Occupied())
	}
}

func TestDAMQPoolStampHonored(t *testing.T) {
	d := NewDAMQ(100, 2)
	shared := proto.Flit{VC: 0, Flags: proto.FlagShared}
	d.Push(shared)
	if d.resvUsed[0] != 0 || d.shared != 1 {
		t.Fatal("shared stamp not honored")
	}
	reserved := proto.Flit{VC: 0}
	d.Push(reserved)
	if d.resvUsed[0] != 1 {
		t.Fatal("reserved stamp not honored")
	}
	// Credits must carry the same pool back, in FIFO order.
	if _, cr := d.Pop(0); !cr.Shared {
		t.Fatal("first pop should return the shared-pool credit")
	}
	if _, cr := d.Pop(0); cr.Shared {
		t.Fatal("second pop should return the reserved-quota credit")
	}
}

func TestOutBufRetention(t *testing.T) {
	b := NewOutBuf(10, 2)
	for i := 0; i < 10; i++ {
		b.Push(proto.Flit{VC: 0})
	}
	if b.Free() != 0 {
		t.Fatal("should be full")
	}
	// Send 5 with release at t=100.
	for i := 0; i < 5; i++ {
		b.Send(0, 100)
	}
	if b.Free() != 0 {
		t.Fatal("retention must keep space occupied")
	}
	b.Release(99)
	if b.Free() != 0 {
		t.Fatal("released early")
	}
	b.Release(100)
	if b.Free() != 5 {
		t.Fatalf("free %d after release, want 5", b.Free())
	}
}

func TestOutBufOccupiedMask(t *testing.T) {
	b := NewOutBuf(10, 4)
	b.Push(proto.Flit{VC: 3})
	if b.Occupied() != 1<<3 {
		t.Fatalf("mask %b", b.Occupied())
	}
	b.Send(3, 50)
	if b.Occupied() != 0 {
		t.Fatal("mask not cleared")
	}
}

func TestStashPoolE2ELifecycle(t *testing.T) {
	p := NewStashPool(100, false)
	p.Reserve(24)
	if p.Free() != 76 {
		t.Fatalf("free %d after reserve", p.Free())
	}
	done := false
	for i := 0; i < 24; i++ {
		f := proto.Flit{PktID: 9, Size: 24, Seq: uint8(i)}
		done = p.PutCopy(f)
	}
	if !done {
		t.Fatal("tail did not complete the copy")
	}
	if p.Used() != 24 {
		t.Fatalf("used %d", p.Used())
	}
	p.Delete(9, 24)
	if p.Used() != 0 || p.Free() != 100 {
		t.Fatal("delete did not free space")
	}
}

func TestStashPoolCongestionFIFO(t *testing.T) {
	p := NewStashPool(100, false)
	p.Reserve(3)
	for i := 0; i < 3; i++ {
		p.PutCongested(proto.Flit{Seq: uint8(i), Size: 3})
	}
	if p.RetrLen() != 3 {
		t.Fatalf("retrQ %d", p.RetrLen())
	}
	for i := 0; i < 3; i++ {
		if f := p.RetrPop(); int(f.Seq) != i {
			t.Fatalf("retrieval out of order: %d", f.Seq)
		}
	}
	if p.Used() != 0 {
		t.Fatalf("used %d after retrieval", p.Used())
	}
}

func TestStashPoolRetainAndRetransmit(t *testing.T) {
	p := NewStashPool(100, true)
	p.Reserve(2)
	p.PutCopy(proto.Flit{PktID: 5, Size: 2, Seq: 0, Flags: proto.FlagStashCopy})
	p.PutCopy(proto.Flit{PktID: 5, Size: 2, Seq: 1, Flags: proto.FlagStashCopy})
	b, ok := p.TakeCopy(5)
	if !ok || len(b.Flits) != 2 {
		t.Fatalf("TakeCopy: %v %v", b, ok)
	}
	if b.Refs() != 2 {
		t.Fatalf("refs %d after TakeCopy, want 2 (store + caller)", b.Refs())
	}
	// Space stays committed; re-queue for retransmission by value.
	used := p.Used()
	for _, f := range b.Flits {
		p.PushRetr(f)
	}
	n := len(b.Flits)
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("refs %d after Release, want 1 (store)", b.Refs())
	}
	for i := 0; i < n; i++ {
		f := p.RetrPop()
		if f.Flags&proto.FlagStashCopy != 0 {
			t.Fatal("retransmit flit kept stash-copy flag")
		}
	}
	if p.Used() != used {
		t.Fatal("retransmission released store space")
	}
	p.Delete(5, 2)
	if p.Used() != 0 {
		t.Fatal("delete after retransmit did not free")
	}
}

func TestStashPoolDeleteIdempotent(t *testing.T) {
	p := NewStashPool(100, false)
	p.Reserve(4)
	for i := 0; i < 4; i++ {
		p.PutCopy(proto.Flit{PktID: 7, Size: 4, Seq: uint8(i)})
	}
	if !p.Live(7) {
		t.Fatal("completed copy not live")
	}
	p.Delete(7, 4)
	// A racing second delete (duplicate ACK, or sideband delete arriving
	// after a bank failure already freed the copy) must be a no-op, not an
	// underflow panic.
	p.Delete(7, 4)
	if p.Used() != 0 || p.Free() != 100 || p.Live(7) {
		t.Fatalf("pool state after double delete: used %d free %d", p.Used(), p.Free())
	}
}

func TestStashPoolFailBankCompleted(t *testing.T) {
	for _, retain := range []bool{false, true} {
		p := NewStashPool(100, retain)
		p.Reserve(3)
		for i := 0; i < 3; i++ {
			p.PutCopy(proto.Flit{PktID: 11, Size: 3, Seq: uint8(i)})
		}
		p.Reserve(2)
		for i := 0; i < 2; i++ {
			p.PutCopy(proto.Flit{PktID: 4, Size: 2, Seq: uint8(i)})
		}
		lost := p.FailBank()
		if len(lost) != 2 || lost[0] != 4 || lost[1] != 11 {
			t.Fatalf("retain=%v: lost %v, want [4 11] ascending", retain, lost)
		}
		if p.Used() != 0 || p.Free() != 100 {
			t.Fatalf("retain=%v: space not freed: used %d", retain, p.Used())
		}
		if retain {
			if _, ok := p.TakeCopy(11); ok {
				t.Fatal("failed bank still serves retained payload")
			}
		}
		// The later sideband delete for the lost copy must be a no-op.
		p.Delete(11, 3)
		if p.Used() != 0 {
			t.Fatalf("retain=%v: delete after failure moved occupancy", retain)
		}
	}
}

func TestStashPoolFailBankPartial(t *testing.T) {
	p := NewStashPool(100, true)
	p.Reserve(4)
	p.PutCopy(proto.Flit{PktID: 21, Size: 4, Seq: 0})
	p.PutCopy(proto.Flit{PktID: 21, Size: 4, Seq: 1})
	lost := p.FailBank()
	if len(lost) != 1 || lost[0] != 21 {
		t.Fatalf("lost %v, want [21]", lost)
	}
	// Two flits were resident (now freed); two still hold reservations.
	if p.Used() != 2 || p.Reserved() != 2 {
		t.Fatalf("used %d reserved %d after partial failure", p.Used(), p.Reserved())
	}
	// The stragglers arrive: each reservation converts to freed space, and
	// the copy never reports completion.
	if p.PutCopy(proto.Flit{PktID: 21, Size: 4, Seq: 2}) {
		t.Fatal("dead copy reported completion")
	}
	if p.PutCopy(proto.Flit{PktID: 21, Size: 4, Seq: 3}) {
		t.Fatal("dead copy reported completion at tail")
	}
	if p.Used() != 0 || p.Free() != 100 || p.Live(21) {
		t.Fatalf("pool not clean after stragglers: used %d free %d", p.Used(), p.Free())
	}
	if p.FreedFlits() != 4 {
		t.Fatalf("freed %d flits, want 4", p.FreedFlits())
	}
	// A fresh copy of the same packet (endpoint retransmission) stores
	// normally afterwards.
	p.Reserve(4)
	done := false
	for i := 0; i < 4; i++ {
		done = p.PutCopy(proto.Flit{PktID: 21, Size: 4, Seq: uint8(i)})
	}
	if !done || !p.Live(21) {
		t.Fatal("re-stash after bank failure broken")
	}
}

func TestStashPoolOverReservePanics(t *testing.T) {
	p := NewStashPool(10, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Reserve(11)
}

func TestBankedMemIdeal(t *testing.T) {
	m := BankedMem{Ideal: true}
	for i := 0; i < 10; i++ {
		if !m.Request(1, ReadNormal) || !m.Request(1, WriteStash) {
			t.Fatal("ideal memory denied access")
		}
	}
	if m.Conflicts != 0 {
		t.Fatal("ideal memory recorded conflicts")
	}
}

func TestBankedMemTwoAccessesPerCycle(t *testing.T) {
	var m BankedMem
	granted := 0
	if m.Request(5, ReadNormal) {
		granted++
	}
	if m.Request(5, ReadStash) {
		granted++
	}
	if m.Request(5, WriteNormal) {
		granted++
	}
	if granted > 2 {
		t.Fatalf("granted %d accesses in one cycle with two banks", granted)
	}
	if granted < 2 {
		t.Fatalf("granted only %d; banks underused", granted)
	}
	// Next cycle the denied stream must eventually proceed.
	if !m.Request(6, WriteNormal) {
		t.Fatal("stalled write not granted next cycle")
	}
}

func TestBankedMemSequentialStreamAlternates(t *testing.T) {
	var m BankedMem
	// A lone stream reading one flit per cycle never conflicts.
	for c := int64(0); c < 100; c++ {
		if !m.Request(c, ReadNormal) {
			t.Fatal("lone stream stalled")
		}
	}
	if m.Conflicts != 0 {
		t.Fatalf("%d conflicts for a lone stream", m.Conflicts)
	}
}

func TestBankedMemWriteAvoidance(t *testing.T) {
	var m BankedMem
	// Read takes its bank; a write whose preferred bank collides may
	// start on the other bank instead ("order of availability").
	m.parity[ReadNormal] = 0
	m.parity[WriteNormal] = 0
	if !m.Request(7, ReadNormal) {
		t.Fatal("read denied")
	}
	if !m.Request(7, WriteNormal) {
		t.Fatal("write should divert to the free bank")
	}
}

func TestRingQuickConservation(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		var r Ring
		pushed, popped := 0, 0
		for _, op := range ops {
			if op%3 != 0 {
				r.Push(flit(pushed % 250))
				pushed++
			} else if !r.Empty() {
				if int(r.Pop().Seq) != popped%250 {
					return false
				}
				popped++
			}
		}
		return r.Len() == pushed-popped
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
