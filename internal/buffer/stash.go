package buffer

import "stashsim/internal/proto"

// StashPool is the per-port stashing partition: the fraction of a port's
// combined input and output buffer memory repurposed as switch-wide
// supplemental storage. Space is reserved packet-at-a-time when a packet
// wins its storage-VC column channel (join-shortest-queue uses the free
// count as the "storage VC credits" of that column), filled as flits
// arrive, and freed either by an explicit delete (end-to-end reliability)
// or by FIFO retrieval (congestion mitigation).
type StashPool struct {
	capacity int
	reserved int // flits reserved by granted but not fully arrived packets
	used     int // flits physically present or committed

	// End-to-end reliability bookkeeping: arrived flit counts per stashed
	// packet. Payload flits are discarded on arrival (the copy is never
	// forwarded) unless retainPayload is set for the retransmission
	// extension, in which case complete packets are kept in store.
	arrived       map[uint64]uint8
	store         map[uint64][]proto.Flit
	partial       map[uint64][]proto.Flit
	retainPayload bool

	// Congestion-mitigation bookkeeping: stashed packets queued for
	// retrieval in FIFO order.
	retrQ Ring

	// Conservation bookkeeping for the invariant checker: retrCopies is
	// the number of retransmission copies sitting in retrQ without owning
	// pool space (their space belongs to the retained store entry), and
	// freed is the cumulative count of flits released by Delete.
	retrCopies int
	freed      int64

	// PeakUsed tracks the high-water mark for statistics.
	PeakUsed int
}

// NewStashPool builds a pool with the given capacity in flits. capacity may
// be zero (global ports contribute no stash storage).
func NewStashPool(capacity int, retainPayload bool) *StashPool {
	return &StashPool{
		capacity:      capacity,
		arrived:       make(map[uint64]uint8),
		retainPayload: retainPayload,
	}
}

// Capacity returns the pool capacity in flits.
func (p *StashPool) Capacity() int { return p.capacity }

// Used returns the committed occupancy (reserved plus present) in flits.
func (p *StashPool) Used() int { return p.used + p.reserved }

// Reserved returns the flits committed for granted packets whose flits
// have not all arrived yet.
func (p *StashPool) Reserved() int { return p.reserved }

// Free returns the number of uncommitted flits, the quantity advertised as
// storage-VC credits for join-shortest-queue selection.
func (p *StashPool) Free() int { return p.capacity - p.Used() }

// Reserve commits space for an entire packet of the given size. Callers
// gate on Free; Reserve panics on overflow.
func (p *StashPool) Reserve(size int) {
	if p.Free() < size {
		panic("buffer: stash pool over-reservation")
	}
	p.reserved += size
	if p.Used() > p.PeakUsed {
		p.PeakUsed = p.Used()
	}
}

// PutCopy stores one flit of an end-to-end reliability stash copy whose
// space was previously reserved. It returns true when the flit completes
// its packet, at which point the location message should be sent to the
// originating end port.
func (p *StashPool) PutCopy(f proto.Flit) bool {
	p.reserved--
	p.used++
	if p.retainPayload {
		if p.partial == nil {
			p.partial = make(map[uint64][]proto.Flit)
		}
		p.partial[f.PktID] = append(p.partial[f.PktID], f)
	}
	n := p.arrived[f.PktID] + 1
	if n == f.Size {
		delete(p.arrived, f.PktID)
		if p.retainPayload {
			if p.store == nil {
				p.store = make(map[uint64][]proto.Flit)
			}
			p.store[f.PktID] = p.partial[f.PktID]
			delete(p.partial, f.PktID)
		}
		return true
	}
	p.arrived[f.PktID] = n
	return false
}

// Delete frees the space of a completed stash copy (positive ACK seen at
// the originating end port).
func (p *StashPool) Delete(pktID uint64, size int) {
	p.used -= size
	p.freed += int64(size)
	if p.used < 0 {
		panic("buffer: stash pool delete underflow")
	}
	if p.retainPayload {
		delete(p.store, pktID)
	}
}

// TakeCopy removes and returns a retained stash copy for retransmission
// (error-injection extension). The space remains committed until the
// retransmitted packet is itself acknowledged and deleted; the returned
// flits are a fresh copy for injection into the retrieval VC.
func (p *StashPool) TakeCopy(pktID uint64) ([]proto.Flit, bool) {
	fl, ok := p.store[pktID]
	if !ok {
		return nil, false
	}
	out := make([]proto.Flit, len(fl))
	copy(out, fl)
	return out, true
}

// PutCongested stores one flit of a congestion-stashed packet. The packet
// becomes retrievable in FIFO order.
func (p *StashPool) PutCongested(f proto.Flit) {
	p.reserved--
	p.used++
	p.retrQ.Push(f)
}

// RetrFront returns the front flit awaiting retrieval, or nil.
func (p *StashPool) RetrFront() *proto.Flit {
	if p.retrQ.Empty() {
		return nil
	}
	return p.retrQ.Front()
}

// PushRetr queues a flit for retrieval without charging pool space. It is
// used by the retransmission extension: the retained store entry keeps
// owning the space, and the flit's FlagStashCopy marks it so RetrPop knows
// not to release anything.
func (p *StashPool) PushRetr(f proto.Flit) {
	if f.Flags&proto.FlagStashCopy != 0 {
		p.retrCopies++
	}
	p.retrQ.Push(f)
}

// RetrPop dequeues the front retrieval flit. Congestion-stashed flits free
// their space; retransmission flits (FlagStashCopy) do not — their space is
// owned by the retained store entry — and the flag is cleared so the flit
// re-enters the network as ordinary data.
func (p *StashPool) RetrPop() proto.Flit {
	f := p.retrQ.Pop()
	if f.Flags&proto.FlagStashCopy != 0 {
		f.Flags &^= proto.FlagStashCopy
		p.retrCopies--
		return f
	}
	p.used--
	if p.used < 0 {
		panic("buffer: stash pool retrieval underflow")
	}
	return f
}

// RetrLen returns the number of flits queued for retrieval.
func (p *StashPool) RetrLen() int { return p.retrQ.Len() }

// PresentFlits returns the number of flits physically resident in the
// pool for the invariant checker's conservation audit: the committed
// occupancy plus the retransmission copies queued in retrQ that do not
// own pool space. Reserved (granted but not yet arrived) space is
// excluded — those flits are still in flight inside the switch.
func (p *StashPool) PresentFlits() int { return p.used + p.retrCopies }

// FreedFlits returns the cumulative number of flits released by Delete,
// the stash-side destruction term of the conservation law.
func (p *StashPool) FreedFlits() int64 { return p.freed }
