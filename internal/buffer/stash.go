package buffer

import (
	"sort"

	"stashsim/internal/proto"
)

// StashPool is the per-port stashing partition: the fraction of a port's
// combined input and output buffer memory repurposed as switch-wide
// supplemental storage. Space is reserved packet-at-a-time when a packet
// wins its storage-VC column channel (join-shortest-queue uses the free
// count as the "storage VC credits" of that column), filled as flits
// arrive, and freed either by an explicit delete (end-to-end reliability)
// or by FIFO retrieval (congestion mitigation).
type StashPool struct {
	capacity int
	reserved int // flits reserved by granted but not fully arrived packets
	used     int // flits physically present or committed

	// End-to-end reliability bookkeeping: arrived flit counts per stashed
	// packet. Payload flits are discarded on arrival (the copy is never
	// forwarded) unless retainPayload is set for the retransmission
	// extension, in which case complete packets are kept in store. Retained
	// payloads live in ref-counted buffers drawn from bufs, the pool's
	// deterministic freelist: the store entry owns one reference, each
	// retransmission takes a transient one, and the buffer recycles when
	// the last drops — so steady-state retention churn allocates nothing.
	arrived       map[uint64]uint8
	store         map[uint64]*proto.PktBuf
	partial       map[uint64]*proto.PktBuf
	retainPayload bool
	bufs          proto.BufPool

	// copies records the size of every live completed end-to-end copy,
	// maintained whether or not the payload is retained. It makes Delete
	// idempotent (a racing sideband delete after a bank failure is a
	// no-op) and lets FailBank enumerate live copies without payload.
	copies map[uint64]uint8

	// dead tracks packets whose partially-arrived copy was invalidated by
	// a bank failure: the value is the arrived-flit count so far. Their
	// remaining in-flight flits still hold reservations; PutCopy converts
	// each straggler's reservation straight into freed space and never
	// reports completion for them.
	dead map[uint64]uint8

	// parity counts the flits of XOR parity runs placed in this bank by
	// the switch's ParityTracker. Parity occupies real space — it competes
	// with copies for capacity and JSQ credits — and is accounted like a
	// resident copy: minted into Used/PresentFlits by AddParity, moved to
	// freed by DropParity.
	parity int

	// Congestion-mitigation bookkeeping: stashed packets queued for
	// retrieval in FIFO order.
	retrQ Ring

	// Conservation bookkeeping for the invariant checker: retrCopies is
	// the number of retransmission copies sitting in retrQ without owning
	// pool space (their space belongs to the retained store entry), and
	// freed is the cumulative count of flits released by Delete.
	retrCopies int
	freed      int64

	// PeakUsed tracks the high-water mark for statistics.
	PeakUsed int
}

// NewStashPool builds a pool with the given capacity in flits. capacity may
// be zero (global ports contribute no stash storage).
func NewStashPool(capacity int, retainPayload bool) *StashPool {
	return &StashPool{
		capacity:      capacity,
		arrived:       make(map[uint64]uint8),
		retainPayload: retainPayload,
	}
}

// Capacity returns the pool capacity in flits.
//
//stashsim:noalloc
func (p *StashPool) Capacity() int { return p.capacity }

// Used returns the committed occupancy (reserved plus present plus
// parity) in flits.
//
//stashsim:noalloc
func (p *StashPool) Used() int { return p.used + p.reserved + p.parity }

// Reserved returns the flits committed for granted packets whose flits
// have not all arrived yet.
func (p *StashPool) Reserved() int { return p.reserved }

// Free returns the number of uncommitted flits, the quantity advertised as
// storage-VC credits for join-shortest-queue selection.
//
//stashsim:noalloc
func (p *StashPool) Free() int { return p.capacity - p.Used() }

// Reserve commits space for an entire packet of the given size. Callers
// gate on Free; Reserve panics on overflow.
//
//stashsim:noalloc
func (p *StashPool) Reserve(size int) {
	if p.Free() < size {
		panic("buffer: stash pool over-reservation")
	}
	p.reserved += size
	if p.Used() > p.PeakUsed {
		p.PeakUsed = p.Used()
	}
}

// PutCopy stores one flit of an end-to-end reliability stash copy whose
// space was previously reserved. It returns true when the flit completes
// its packet, at which point the location message should be sent to the
// originating end port.
//
//stashsim:noalloc
func (p *StashPool) PutCopy(f proto.Flit) bool {
	p.reserved--
	if n, ok := p.dead[f.PktID]; ok {
		// Straggler of a bank-failed partial copy: its reservation becomes
		// freed space immediately and the copy never completes.
		p.freed++
		if n+1 == f.Size {
			delete(p.dead, f.PktID)
		} else {
			p.dead[f.PktID] = n + 1
		}
		return false
	}
	p.used++
	if p.retainPayload {
		if p.partial == nil {
			//lint:allow allocfree -- one-time lazy init of the retention map
			p.partial = make(map[uint64]*proto.PktBuf)
		}
		b := p.partial[f.PktID]
		if b == nil {
			b = p.bufs.Get()
			p.partial[f.PktID] = b
		}
		b.Flits = append(b.Flits, f)
	}
	n := p.arrived[f.PktID] + 1
	if n == f.Size {
		delete(p.arrived, f.PktID)
		if p.retainPayload {
			if p.store == nil {
				//lint:allow allocfree -- one-time lazy init of the retention map
				p.store = make(map[uint64]*proto.PktBuf)
			}
			p.store[f.PktID] = p.partial[f.PktID]
			delete(p.partial, f.PktID)
		}
		if p.copies == nil {
			//lint:allow allocfree -- one-time lazy init of the live-copy map
			p.copies = make(map[uint64]uint8)
		}
		p.copies[f.PktID] = f.Size
		return true
	}
	p.arrived[f.PktID] = n
	return false
}

// Delete frees the space of a completed stash copy (positive ACK seen at
// the originating end port). It is idempotent: deleting a copy that is
// not live — already deleted, or invalidated by a bank failure — is a
// no-op, so racing sideband messages cannot underflow the pool. It
// reports whether a copy was actually freed, so the caller can keep
// parity-group membership in sync without double-processing races.
//
//stashsim:noalloc
func (p *StashPool) Delete(pktID uint64, size int) bool {
	if _, ok := p.copies[pktID]; !ok {
		return false
	}
	delete(p.copies, pktID)
	p.used -= size
	p.freed += int64(size)
	if p.used < 0 {
		panic("buffer: stash pool delete underflow")
	}
	if p.retainPayload {
		if b := p.store[pktID]; b != nil {
			delete(p.store, pktID)
			b.Release()
		}
	}
	return true
}

// CopySize returns the flit count of a live completed copy.
//
//stashsim:noalloc
func (p *StashPool) CopySize(pktID uint64) (uint8, bool) {
	size, ok := p.copies[pktID]
	return size, ok
}

// ExtractCopy removes a live completed copy from the pool without
// releasing its retained payload: ownership of the buffer (when payloads
// are retained) transfers to the caller, which carries it through an
// in-flight parity reconstruction and either InstallCopy's it into the
// target bank or Releases it. Conservation-wise the flits are destroyed
// here (freed) and re-minted by the installer, so a copy in flight
// between banks is accounted exactly like a reconstructed one.
func (p *StashPool) ExtractCopy(pktID uint64) (*proto.PktBuf, bool) {
	size, ok := p.copies[pktID]
	if !ok {
		return nil, false
	}
	delete(p.copies, pktID)
	p.used -= int(size)
	p.freed += int64(size)
	if p.used < 0 {
		panic("buffer: stash pool extract underflow")
	}
	var b *proto.PktBuf
	if p.retainPayload {
		if b = p.store[pktID]; b != nil {
			delete(p.store, pktID)
		}
	}
	return b, true
}

// InstallCopy converts a prior Reserve into a live completed copy: the
// landing point of a parity reconstruction. The buffer, when non-nil,
// becomes the store entry (the pool takes over the caller's reference).
//
//stashsim:noalloc
func (p *StashPool) InstallCopy(pktID uint64, size int, b *proto.PktBuf) {
	p.reserved -= size
	p.used += size
	if p.reserved < 0 {
		panic("buffer: stash pool install without reservation")
	}
	if p.copies == nil {
		//lint:allow allocfree -- one-time lazy init of the live-copy map
		p.copies = make(map[uint64]uint8)
	}
	p.copies[pktID] = uint8(size)
	if b != nil && p.retainPayload {
		if p.store == nil {
			//lint:allow allocfree -- one-time lazy init of the retention map
			p.store = make(map[uint64]*proto.PktBuf)
		}
		p.store[pktID] = b
	}
}

// Unreserve releases a reservation whose copy will never arrive (an
// aborted reconstruction).
//
//stashsim:noalloc
func (p *StashPool) Unreserve(size int) {
	p.reserved -= size
	if p.reserved < 0 {
		panic("buffer: stash pool unreserve underflow")
	}
}

// AddParity commits space for a parity flit run minted by the switch's
// parity tracker. Callers gate on Free; AddParity panics on overflow.
//
//stashsim:noalloc
func (p *StashPool) AddParity(size int) {
	if p.Free() < size {
		panic("buffer: stash pool parity over-commit")
	}
	p.parity += size
	if p.Used() > p.PeakUsed {
		p.PeakUsed = p.Used()
	}
}

// DropParity destroys a parity flit run (its group emptied, dissolved,
// or its bank failed); the flits move to the freed ledger.
//
//stashsim:noalloc
func (p *StashPool) DropParity(size int) {
	p.parity -= size
	p.freed += int64(size)
	if p.parity < 0 {
		panic("buffer: stash pool parity underflow")
	}
}

// ParityFlits returns the live parity flits resident in this bank.
//
//stashsim:noalloc
func (p *StashPool) ParityFlits() int { return p.parity }

// Live reports whether a completed copy of the packet is resident.
//
//stashsim:noalloc
func (p *StashPool) Live(pktID uint64) bool {
	_, ok := p.copies[pktID]
	return ok
}

// FailBank models a stash-bank failure: every live end-to-end copy —
// completed or still arriving — is invalidated and its space freed. It
// returns the packet ids of the lost copies in ascending order, so the
// switch can mark their tracking entries and recovery can fall back to
// source-endpoint retransmission. Flits of invalidated partial copies
// still in flight inside the switch are absorbed by PutCopy via the dead
// set. Congestion-stashed packets (retrQ) model a distinct FIFO structure
// and are not affected.
func (p *StashPool) FailBank() []uint64 {
	var lost []uint64
	//lint:allow determinism -- map-key collection, sorted before use
	for id, size := range p.copies {
		lost = append(lost, id)
		p.used -= int(size)
		p.freed += int64(size)
	}
	clear(p.copies)
	//lint:allow determinism -- map-key collection, sorted before use
	for id, n := range p.arrived {
		lost = append(lost, id)
		p.used -= int(n)
		p.freed += int64(n)
		if p.dead == nil {
			p.dead = make(map[uint64]uint8)
		}
		p.dead[id] = n
	}
	clear(p.arrived)
	if p.used < 0 {
		panic("buffer: stash pool bank-failure underflow")
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	if p.retainPayload {
		// Release the retained buffers in sorted id order so the freelist
		// reuses them in a deterministic sequence.
		for _, id := range lost {
			if b := p.store[id]; b != nil {
				delete(p.store, id)
				b.Release()
			}
			if b := p.partial[id]; b != nil {
				delete(p.partial, id)
				b.Release()
			}
		}
	}
	return lost
}

// TakeCopy returns the retained stash copy of a packet for retransmission
// (error-injection extension), with one reference taken for the caller.
// The store entry keeps its own reference (the space remains committed
// until the retransmitted packet is acknowledged and deleted); the caller
// reads the flits out by value and must Release the buffer when done —
// no per-retransmission payload copy is ever allocated.
//
//stashsim:noalloc
func (p *StashPool) TakeCopy(pktID uint64) (*proto.PktBuf, bool) {
	b, ok := p.store[pktID]
	if !ok {
		return nil, false
	}
	b.Retain()
	return b, true
}

// AuditRetained calls fn for every retained payload buffer (completed store
// entries and still-filling partials). Invariant-checker use only, under
// the same quiescence rule as the link audits; visit order is unspecified,
// which is acceptable because the checker inspects every entry regardless.
func (p *StashPool) AuditRetained(fn func(pktID uint64, b *proto.PktBuf)) {
	//lint:allow determinism -- audit-only traversal, order-insensitive
	for id, b := range p.store {
		fn(id, b)
	}
	//lint:allow determinism -- audit-only traversal, order-insensitive
	for id, b := range p.partial {
		fn(id, b)
	}
}

// RetainedBufs returns how many payload buffers the pool currently holds.
func (p *StashPool) RetainedBufs() int { return len(p.store) + len(p.partial) }

// PutCongested stores one flit of a congestion-stashed packet. The packet
// becomes retrievable in FIFO order.
//
//stashsim:noalloc
func (p *StashPool) PutCongested(f proto.Flit) {
	p.reserved--
	p.used++
	p.retrQ.Push(f)
}

// RetrFront returns the front flit awaiting retrieval, or nil.
//
//stashsim:noalloc
func (p *StashPool) RetrFront() *proto.Flit {
	if p.retrQ.Empty() {
		return nil
	}
	return p.retrQ.Front()
}

// PushRetr queues a flit for retrieval without charging pool space. It is
// used by the retransmission extension: the retained store entry keeps
// owning the space, and the flit's FlagStashCopy marks it so RetrPop knows
// not to release anything.
//
//stashsim:noalloc
func (p *StashPool) PushRetr(f proto.Flit) {
	if f.Flags&proto.FlagStashCopy != 0 {
		p.retrCopies++
	}
	p.retrQ.Push(f)
}

// RetrPop dequeues the front retrieval flit. Congestion-stashed flits free
// their space; retransmission flits (FlagStashCopy) do not — their space is
// owned by the retained store entry — and the flag is cleared so the flit
// re-enters the network as ordinary data.
//
//stashsim:noalloc
func (p *StashPool) RetrPop() proto.Flit {
	f := p.retrQ.Pop()
	if f.Flags&proto.FlagStashCopy != 0 {
		f.Flags &^= proto.FlagStashCopy
		p.retrCopies--
		return f
	}
	p.used--
	if p.used < 0 {
		panic("buffer: stash pool retrieval underflow")
	}
	return f
}

// RetrLen returns the number of flits queued for retrieval.
//
//stashsim:noalloc
func (p *StashPool) RetrLen() int { return p.retrQ.Len() }

// PresentFlits returns the number of flits physically resident in the
// pool for the invariant checker's conservation audit: the committed
// occupancy, the parity flit runs, plus the retransmission copies queued
// in retrQ that do not own pool space. Reserved (granted but not yet
// arrived) space is excluded — those flits are still in flight inside
// the switch.
func (p *StashPool) PresentFlits() int { return p.used + p.retrCopies + p.parity }

// FreedFlits returns the cumulative number of flits released by Delete,
// the stash-side destruction term of the conservation law.
func (p *StashPool) FreedFlits() int64 { return p.freed }
