package buffer

import (
	"sort"

	"stashsim/internal/proto"
)

// StashPool is the per-port stashing partition: the fraction of a port's
// combined input and output buffer memory repurposed as switch-wide
// supplemental storage. Space is reserved packet-at-a-time when a packet
// wins its storage-VC column channel (join-shortest-queue uses the free
// count as the "storage VC credits" of that column), filled as flits
// arrive, and freed either by an explicit delete (end-to-end reliability)
// or by FIFO retrieval (congestion mitigation).
type StashPool struct {
	capacity int
	reserved int // flits reserved by granted but not fully arrived packets
	used     int // flits physically present or committed

	// End-to-end reliability bookkeeping: arrived flit counts per stashed
	// packet. Payload flits are discarded on arrival (the copy is never
	// forwarded) unless retainPayload is set for the retransmission
	// extension, in which case complete packets are kept in store. Retained
	// payloads live in ref-counted buffers drawn from bufs, the pool's
	// deterministic freelist: the store entry owns one reference, each
	// retransmission takes a transient one, and the buffer recycles when
	// the last drops — so steady-state retention churn allocates nothing.
	arrived       map[uint64]uint8
	store         map[uint64]*proto.PktBuf
	partial       map[uint64]*proto.PktBuf
	retainPayload bool
	bufs          proto.BufPool

	// copies records the size of every live completed end-to-end copy,
	// maintained whether or not the payload is retained. It makes Delete
	// idempotent (a racing sideband delete after a bank failure is a
	// no-op) and lets FailBank enumerate live copies without payload.
	copies map[uint64]uint8

	// dead tracks packets whose partially-arrived copy was invalidated by
	// a bank failure: the value is the arrived-flit count so far. Their
	// remaining in-flight flits still hold reservations; PutCopy converts
	// each straggler's reservation straight into freed space and never
	// reports completion for them.
	dead map[uint64]uint8

	// Congestion-mitigation bookkeeping: stashed packets queued for
	// retrieval in FIFO order.
	retrQ Ring

	// Conservation bookkeeping for the invariant checker: retrCopies is
	// the number of retransmission copies sitting in retrQ without owning
	// pool space (their space belongs to the retained store entry), and
	// freed is the cumulative count of flits released by Delete.
	retrCopies int
	freed      int64

	// PeakUsed tracks the high-water mark for statistics.
	PeakUsed int
}

// NewStashPool builds a pool with the given capacity in flits. capacity may
// be zero (global ports contribute no stash storage).
func NewStashPool(capacity int, retainPayload bool) *StashPool {
	return &StashPool{
		capacity:      capacity,
		arrived:       make(map[uint64]uint8),
		retainPayload: retainPayload,
	}
}

// Capacity returns the pool capacity in flits.
//
//stashsim:noalloc
func (p *StashPool) Capacity() int { return p.capacity }

// Used returns the committed occupancy (reserved plus present) in flits.
//
//stashsim:noalloc
func (p *StashPool) Used() int { return p.used + p.reserved }

// Reserved returns the flits committed for granted packets whose flits
// have not all arrived yet.
func (p *StashPool) Reserved() int { return p.reserved }

// Free returns the number of uncommitted flits, the quantity advertised as
// storage-VC credits for join-shortest-queue selection.
//
//stashsim:noalloc
func (p *StashPool) Free() int { return p.capacity - p.Used() }

// Reserve commits space for an entire packet of the given size. Callers
// gate on Free; Reserve panics on overflow.
//
//stashsim:noalloc
func (p *StashPool) Reserve(size int) {
	if p.Free() < size {
		panic("buffer: stash pool over-reservation")
	}
	p.reserved += size
	if p.Used() > p.PeakUsed {
		p.PeakUsed = p.Used()
	}
}

// PutCopy stores one flit of an end-to-end reliability stash copy whose
// space was previously reserved. It returns true when the flit completes
// its packet, at which point the location message should be sent to the
// originating end port.
//
//stashsim:noalloc
func (p *StashPool) PutCopy(f proto.Flit) bool {
	p.reserved--
	if n, ok := p.dead[f.PktID]; ok {
		// Straggler of a bank-failed partial copy: its reservation becomes
		// freed space immediately and the copy never completes.
		p.freed++
		if n+1 == f.Size {
			delete(p.dead, f.PktID)
		} else {
			p.dead[f.PktID] = n + 1
		}
		return false
	}
	p.used++
	if p.retainPayload {
		if p.partial == nil {
			//lint:allow allocfree -- one-time lazy init of the retention map
			p.partial = make(map[uint64]*proto.PktBuf)
		}
		b := p.partial[f.PktID]
		if b == nil {
			b = p.bufs.Get()
			p.partial[f.PktID] = b
		}
		b.Flits = append(b.Flits, f)
	}
	n := p.arrived[f.PktID] + 1
	if n == f.Size {
		delete(p.arrived, f.PktID)
		if p.retainPayload {
			if p.store == nil {
				//lint:allow allocfree -- one-time lazy init of the retention map
				p.store = make(map[uint64]*proto.PktBuf)
			}
			p.store[f.PktID] = p.partial[f.PktID]
			delete(p.partial, f.PktID)
		}
		if p.copies == nil {
			//lint:allow allocfree -- one-time lazy init of the live-copy map
			p.copies = make(map[uint64]uint8)
		}
		p.copies[f.PktID] = f.Size
		return true
	}
	p.arrived[f.PktID] = n
	return false
}

// Delete frees the space of a completed stash copy (positive ACK seen at
// the originating end port). It is idempotent: deleting a copy that is
// not live — already deleted, or invalidated by a bank failure — is a
// no-op, so racing sideband messages cannot underflow the pool.
//
//stashsim:noalloc
func (p *StashPool) Delete(pktID uint64, size int) {
	if _, ok := p.copies[pktID]; !ok {
		return
	}
	delete(p.copies, pktID)
	p.used -= size
	p.freed += int64(size)
	if p.used < 0 {
		panic("buffer: stash pool delete underflow")
	}
	if p.retainPayload {
		if b := p.store[pktID]; b != nil {
			delete(p.store, pktID)
			b.Release()
		}
	}
}

// Live reports whether a completed copy of the packet is resident.
//
//stashsim:noalloc
func (p *StashPool) Live(pktID uint64) bool {
	_, ok := p.copies[pktID]
	return ok
}

// FailBank models a stash-bank failure: every live end-to-end copy —
// completed or still arriving — is invalidated and its space freed. It
// returns the packet ids of the lost copies in ascending order, so the
// switch can mark their tracking entries and recovery can fall back to
// source-endpoint retransmission. Flits of invalidated partial copies
// still in flight inside the switch are absorbed by PutCopy via the dead
// set. Congestion-stashed packets (retrQ) model a distinct FIFO structure
// and are not affected.
func (p *StashPool) FailBank() []uint64 {
	var lost []uint64
	//lint:allow determinism -- map-key collection, sorted before use
	for id, size := range p.copies {
		lost = append(lost, id)
		p.used -= int(size)
		p.freed += int64(size)
	}
	clear(p.copies)
	//lint:allow determinism -- map-key collection, sorted before use
	for id, n := range p.arrived {
		lost = append(lost, id)
		p.used -= int(n)
		p.freed += int64(n)
		if p.dead == nil {
			p.dead = make(map[uint64]uint8)
		}
		p.dead[id] = n
	}
	clear(p.arrived)
	if p.used < 0 {
		panic("buffer: stash pool bank-failure underflow")
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	if p.retainPayload {
		// Release the retained buffers in sorted id order so the freelist
		// reuses them in a deterministic sequence.
		for _, id := range lost {
			if b := p.store[id]; b != nil {
				delete(p.store, id)
				b.Release()
			}
			if b := p.partial[id]; b != nil {
				delete(p.partial, id)
				b.Release()
			}
		}
	}
	return lost
}

// TakeCopy returns the retained stash copy of a packet for retransmission
// (error-injection extension), with one reference taken for the caller.
// The store entry keeps its own reference (the space remains committed
// until the retransmitted packet is acknowledged and deleted); the caller
// reads the flits out by value and must Release the buffer when done —
// no per-retransmission payload copy is ever allocated.
//
//stashsim:noalloc
func (p *StashPool) TakeCopy(pktID uint64) (*proto.PktBuf, bool) {
	b, ok := p.store[pktID]
	if !ok {
		return nil, false
	}
	b.Retain()
	return b, true
}

// AuditRetained calls fn for every retained payload buffer (completed store
// entries and still-filling partials). Invariant-checker use only, under
// the same quiescence rule as the link audits; visit order is unspecified,
// which is acceptable because the checker inspects every entry regardless.
func (p *StashPool) AuditRetained(fn func(pktID uint64, b *proto.PktBuf)) {
	//lint:allow determinism -- audit-only traversal, order-insensitive
	for id, b := range p.store {
		fn(id, b)
	}
	//lint:allow determinism -- audit-only traversal, order-insensitive
	for id, b := range p.partial {
		fn(id, b)
	}
}

// RetainedBufs returns how many payload buffers the pool currently holds.
func (p *StashPool) RetainedBufs() int { return len(p.store) + len(p.partial) }

// PutCongested stores one flit of a congestion-stashed packet. The packet
// becomes retrievable in FIFO order.
//
//stashsim:noalloc
func (p *StashPool) PutCongested(f proto.Flit) {
	p.reserved--
	p.used++
	p.retrQ.Push(f)
}

// RetrFront returns the front flit awaiting retrieval, or nil.
//
//stashsim:noalloc
func (p *StashPool) RetrFront() *proto.Flit {
	if p.retrQ.Empty() {
		return nil
	}
	return p.retrQ.Front()
}

// PushRetr queues a flit for retrieval without charging pool space. It is
// used by the retransmission extension: the retained store entry keeps
// owning the space, and the flit's FlagStashCopy marks it so RetrPop knows
// not to release anything.
//
//stashsim:noalloc
func (p *StashPool) PushRetr(f proto.Flit) {
	if f.Flags&proto.FlagStashCopy != 0 {
		p.retrCopies++
	}
	p.retrQ.Push(f)
}

// RetrPop dequeues the front retrieval flit. Congestion-stashed flits free
// their space; retransmission flits (FlagStashCopy) do not — their space is
// owned by the retained store entry — and the flag is cleared so the flit
// re-enters the network as ordinary data.
//
//stashsim:noalloc
func (p *StashPool) RetrPop() proto.Flit {
	f := p.retrQ.Pop()
	if f.Flags&proto.FlagStashCopy != 0 {
		f.Flags &^= proto.FlagStashCopy
		p.retrCopies--
		return f
	}
	p.used--
	if p.used < 0 {
		panic("buffer: stash pool retrieval underflow")
	}
	return f
}

// RetrLen returns the number of flits queued for retrieval.
//
//stashsim:noalloc
func (p *StashPool) RetrLen() int { return p.retrQ.Len() }

// PresentFlits returns the number of flits physically resident in the
// pool for the invariant checker's conservation audit: the committed
// occupancy plus the retransmission copies queued in retrQ that do not
// own pool space. Reserved (granted but not yet arrived) space is
// excluded — those flits are still in flight inside the switch.
func (p *StashPool) PresentFlits() int { return p.used + p.retrCopies }

// FreedFlits returns the cumulative number of flits released by Delete,
// the stash-side destruction term of the conservation law.
func (p *StashPool) FreedFlits() int64 { return p.freed }
