package buffer

import "stashsim/internal/proto"

// OutBuf is a switch output buffer. Architecturally it provides link-level
// retransmission: a transmitted flit is retained until the link-level
// acknowledgment returns, one round-trip time after transmission. Because
// the simulated links are error-free, retention is modeled as a timed
// occupancy that drains RTT cycles after each send. Space is consumed when
// a flit is accepted from the column buffers and released when its
// retention deadline passes, which throttles a port to one RTT-window of
// data exactly as the paper's buffer sizing intends.
//
// Like the input buffer, the normal partition is a DAMQ shared by the
// network VCs.
type OutBuf struct {
	queues   []Ring // per-VC FIFOs awaiting transmission
	capacity int    // normal-partition capacity in flits
	queued   int    // flits awaiting transmission
	inflight TimedRing
	occupied uint32
}

// NewOutBuf builds an output buffer with the given normal-partition
// capacity in flits, shared by numVCs virtual channels.
func NewOutBuf(capacity, numVCs int) *OutBuf {
	return &OutBuf{
		queues:   make([]Ring, numVCs),
		capacity: capacity,
	}
}

// Capacity returns the normal-partition capacity in flits.
func (b *OutBuf) Capacity() int { return b.capacity }

// Used returns the total occupancy: queued plus retained flits.
//
//stashsim:noalloc
func (b *OutBuf) Used() int { return b.queued + b.inflight.Len() }

// Queued returns the number of flits awaiting transmission.
//
//stashsim:noalloc
func (b *OutBuf) Queued() int { return b.queued }

// Retained returns the number of sent flits still inside the link-level
// retention window. An output port with no queued and no retained flits
// has nothing to do until new flits or credits arrive.
//
//stashsim:noalloc
func (b *OutBuf) Retained() int { return b.inflight.Len() }

// Free returns the number of flits that can currently be accepted.
//
//stashsim:noalloc
func (b *OutBuf) Free() int { return b.capacity - b.Used() }

// Push accepts a flit from a column buffer. Callers gate on Free.
//
//stashsim:noalloc
func (b *OutBuf) Push(f proto.Flit) {
	if b.Free() <= 0 {
		panic("buffer: output buffer overflow")
	}
	b.queues[f.VC].Push(f)
	b.queued++
	b.occupied |= 1 << uint(f.VC)
}

// Front returns the front flit of vc, or nil when empty.
//
//stashsim:noalloc
func (b *OutBuf) Front(vc int) *proto.Flit {
	if b.queues[vc].Empty() {
		return nil
	}
	return b.queues[vc].Front()
}

// Occupied returns a bitmask of VCs with flits awaiting transmission.
//
//stashsim:noalloc
func (b *OutBuf) Occupied() uint32 { return b.occupied }

// Send dequeues the front flit of vc for transmission and retains its space
// until releaseAt (transmit time plus link RTT).
//
//stashsim:noalloc
func (b *OutBuf) Send(vc int, releaseAt int64) proto.Flit {
	f := b.queues[vc].Pop()
	b.queued--
	if b.queues[vc].Empty() {
		b.occupied &^= 1 << uint(vc)
	}
	b.inflight.Push(TimedFlit{At: releaseAt, Flit: proto.Flit{}})
	return f
}

// Release frees the space of every retained flit whose deadline has passed.
//
//stashsim:noalloc
func (b *OutBuf) Release(now int64) {
	for {
		if _, ok := b.inflight.PopDue(now); !ok {
			return
		}
	}
}

// ReleaseDue reports whether Release(now) would free anything: the
// active-set probe that lets an otherwise idle output port skip its step
// while retention deadlines are still in the future.
//
//stashsim:noalloc
func (b *OutBuf) ReleaseDue(now int64) bool {
	return b.inflight.FrontDue(now)
}
