package buffer

import "sort"

// Erasure-coded stash banks (Cohen & Cassuto, "Coding for Improved
// Throughput Performance in Network Switches"): completed end-to-end stash
// copies are striped into fixed-width parity groups of k members, one
// member per bank, plus one XOR parity flit run stored in yet another
// bank. Losing any single member — a bank failure, or a read blocked on a
// busy bank — can then be served by XOR of the k-1 survivors and the
// parity instead of falling back to source-endpoint retransmission.
//
// The tracker is pure bookkeeping: the simulator never XORs payload bytes.
// A reconstruction is modeled as a latency (reading k-1 survivors plus
// parity through the side band) after which the rebuilt copy appears in a
// fresh bank; the retained payload, when the pool keeps payloads, travels
// with the in-flight reconstruction record owned by the switch core.

// MaxParityWidth bounds the configurable group width k.
const MaxParityWidth = 16

// parityMember records one enrolled copy: which packet, how many flits,
// and which bank (stash port) holds it.
type parityMember struct {
	pktID uint64
	size  uint8
	bank  int16
}

// Parity-group lifecycle: a group opens, accumulates up to k members (one
// per bank), then seals by placing its parity flit run in a bank outside
// the member set. A full group that cannot find parity space waits in the
// seal queue and is retried whenever pool space frees.
const (
	gFree   uint8 = iota // on the free list
	gOpen   uint8 = iota // accepting members (n < k)
	gSealQ  uint8 = iota // full, awaiting parity placement
	gSealed uint8 = iota // parity resident; members reconstructable
)

type parityGroup struct {
	members    [MaxParityWidth]parityMember
	bankSet    uint64 // banks occupied by members (never the parity bank)
	n          uint8
	state      uint8
	parityBank int16 // -1 unless sealed
	paritySize uint8 // flits of parity = max member size at seal time
}

// ParityTracker maintains the parity groups of one switch's stash banks.
// It is owned by the switch partition exactly like the pools it fronts:
// mutated from the switch's Step and from the serial fault hooks, never
// concurrently.
type ParityTracker struct {
	k     int
	pools []*StashPool

	// groups is a recycled slab: freeG holds reusable indices, openG the
	// accepting groups in first-fit scan order, sealQ the full groups
	// awaiting parity space (records go stale when a queued group loses a
	// member; staleness is detected by state and dropped lazily).
	groups []parityGroup
	freeG  []int32
	openG  []int32
	sealQ  []int32
	byPkt  map[uint64]int32

	scratch []uint64 // FailCandidates result buffer, reused across failures

	// Cumulative event counts, read by telemetry and the audit.
	SealedGroups    int64 // seals performed (parity flit runs minted)
	SealsDeferred   int64 // full groups that had to wait for parity space
	GroupsDissolved int64 // sealed groups dissolved by an unrecoverable loss
}

// NewParityTracker builds a tracker of width k over the given per-port
// pools (indexed by bank). Pools with zero capacity never receive members
// or parity.
func NewParityTracker(k int, pools []*StashPool) *ParityTracker {
	if k < 2 || k > MaxParityWidth {
		panic("buffer: parity width outside [2, MaxParityWidth]")
	}
	if len(pools) > 64 {
		panic("buffer: parity tracker exceeds the 64-bank set mask")
	}
	return &ParityTracker{
		k:     k,
		pools: pools,
		byPkt: make(map[uint64]int32),
	}
}

// K returns the configured group width.
//
//stashsim:noalloc
func (t *ParityTracker) K() int { return t.k }

// Members returns the number of currently enrolled copies.
func (t *ParityTracker) Members() int { return len(t.byPkt) }

// OnStore enrolls a newly completed stash copy into a parity group. It
// returns the parity flits minted and groups sealed as a result (the new
// member may have filled a group), to be folded into the switch's created
// count and seal counter.
//
//stashsim:noalloc
func (t *ParityTracker) OnStore(pktID uint64, size uint8, bank int) (minted, sealed int) {
	if old, ok := t.byPkt[pktID]; ok {
		// A copy of this packet is already enrolled (a source-endpoint
		// retransmission re-stashed it); supersede the stale membership.
		t.removeMember(old, pktID)
	}
	return t.enroll(pktID, size, int16(bank))
}

// OnDelete removes a copy freed by a positive ACK from its group. The
// member's data was present, so the parity XOR-out is free and a sealed
// group stays sealed over the survivors. Freed space may unblock deferred
// seals, so the seal queue is retried; the minted/sealed results are
// accounted like OnStore's.
//
//stashsim:noalloc
func (t *ParityTracker) OnDelete(pktID uint64) (minted, sealed int) {
	if gi, ok := t.byPkt[pktID]; ok {
		t.removeMember(gi, pktID)
	}
	return t.retrySeals()
}

// OnCopyLost removes a copy destroyed by a bank failure. Unlike OnDelete
// the member's data is gone, so a sealed group's parity is permanently
// stale: the group dissolves and its survivors re-enroll into fresh
// groups (possibly minting new parity). protected reports whether the
// copy was parity-covered when it died — a reconstruction that should
// have happened but could not.
//
//stashsim:noalloc
func (t *ParityTracker) OnCopyLost(pktID uint64) (minted, sealed int, protected bool) {
	gi, ok := t.byPkt[pktID]
	if !ok {
		return 0, 0, false
	}
	g := &t.groups[gi]
	if g.state != gSealed {
		t.removeMember(gi, pktID)
		return 0, 0, false
	}
	t.pools[g.parityBank].DropParity(int(g.paritySize))
	var surv [MaxParityWidth]parityMember
	ns := 0
	for i := 0; i < int(g.n); i++ {
		m := g.members[i]
		delete(t.byPkt, m.pktID)
		if m.pktID != pktID {
			surv[ns] = m
			ns++
		}
	}
	g.n = 0
	t.freeGroup(gi)
	t.GroupsDissolved++
	for i := 0; i < ns; i++ {
		m2, s2 := t.enroll(surv[i].pktID, surv[i].size, surv[i].bank)
		minted += m2
		sealed += s2
	}
	return minted, sealed, true
}

// FailCandidates processes the parity side of a bank failure and returns
// the members that can be reconstructed, in ascending packet-id order.
// Groups whose parity flit lived in the failing bank lose it (and requeue
// for sealing elsewhere); members of still-sealed groups resident in the
// failing bank are reconstructable from their survivors + parity. The
// caller decides per candidate whether to reconstruct (ExtractCopy +
// BeginRecon) before invalidating the rest with the pool's FailBank.
// No seals are attempted here — retry them with RetrySeals after the
// failure has been fully applied, so fresh parity is never placed into
// the bank that is about to be cleared.
//
// The returned slice is reused by the next call.
func (t *ParityTracker) FailCandidates(bank int) []uint64 {
	for gi := range t.groups {
		g := &t.groups[gi]
		if g.state != gSealed || int(g.parityBank) != bank {
			continue
		}
		t.pools[bank].DropParity(int(g.paritySize))
		g.parityBank, g.paritySize = -1, 0
		if int(g.n) == t.k {
			g.state = gSealQ
			t.sealQ = append(t.sealQ, int32(gi))
			t.SealsDeferred++
		} else {
			g.state = gOpen
			t.openG = append(t.openG, int32(gi))
		}
	}
	t.scratch = t.scratch[:0]
	for gi := range t.groups {
		g := &t.groups[gi]
		if g.state != gSealed || g.bankSet&(1<<uint(bank)) == 0 {
			continue
		}
		for i := 0; i < int(g.n); i++ {
			if int(g.members[i].bank) == bank {
				t.scratch = append(t.scratch, g.members[i].pktID)
				break
			}
		}
	}
	sort.Slice(t.scratch, func(i, j int) bool { return t.scratch[i] < t.scratch[j] })
	return t.scratch
}

// PickTarget chooses the bank that will receive a reconstructed copy:
// outside the member's group (members and parity must stay on distinct
// banks for the rebuilt group to be re-protectable), not the failing
// bank, with the most free space that fits the copy; ties break to the
// lowest index. It reports false when no bank can hold the copy, in
// which case the loss degrades to endpoint recovery.
func (t *ParityTracker) PickTarget(pktID uint64, size, avoid int) (int, bool) {
	gi, ok := t.byPkt[pktID]
	if !ok {
		return -1, false
	}
	g := &t.groups[gi]
	best, bestFree := -1, size-1
	for b := range t.pools {
		if b == avoid || int16(b) == g.parityBank || g.bankSet&(1<<uint(b)) != 0 {
			continue
		}
		p := t.pools[b]
		if p.Capacity() == 0 {
			continue
		}
		if free := p.Free(); free > bestFree {
			best, bestFree = b, free
		}
	}
	return best, best >= 0
}

// BeginRecon removes a member whose reconstruction is starting. The group
// stays sealed over the survivors: the XOR-out is modeled as completing
// together with the rebuild, and the rebuilt copy re-enrolls fresh via
// OnStore when it lands.
//
//stashsim:noalloc
func (t *ParityTracker) BeginRecon(pktID uint64) {
	gi, ok := t.byPkt[pktID]
	if !ok {
		panic("buffer: BeginRecon for unenrolled copy")
	}
	t.removeMember(gi, pktID)
}

// CanServeDegraded reports whether a blocked read of this packet's copy
// could be served by reconstruction instead: the copy is a member of a
// sealed group, so the k-1 survivors + parity in other banks carry it.
//
//stashsim:noalloc
func (t *ParityTracker) CanServeDegraded(pktID uint64) bool {
	gi, ok := t.byPkt[pktID]
	return ok && t.groups[gi].state == gSealed
}

// RetrySeals retries the deferred seal queue (after a failure has freed
// space) and returns the minted/sealed totals like OnStore.
//
//stashsim:noalloc
func (t *ParityTracker) RetrySeals() (minted, sealed int) { return t.retrySeals() }

// ParityFlitsTotal sums the live parity flits across every sealed group;
// the invariant checker balances it against the pools' parity occupancy.
func (t *ParityTracker) ParityFlitsTotal() int {
	n := 0
	for gi := range t.groups {
		if g := &t.groups[gi]; g.state == gSealed {
			n += int(g.paritySize)
		}
	}
	return n
}

// AuditParity walks every live group in slab order for the invariant
// checker: groupFn once per sealed group (parity accounting), memberFn
// once per member of any live group (membership accounting). Audit-only.
func (t *ParityTracker) AuditParity(groupFn func(parityBank, paritySize int), memberFn func(pktID uint64, bank int)) {
	for gi := range t.groups {
		g := &t.groups[gi]
		if g.state == gFree {
			continue
		}
		if g.state == gSealed {
			groupFn(int(g.parityBank), int(g.paritySize))
		}
		for i := 0; i < int(g.n); i++ {
			memberFn(g.members[i].pktID, int(g.members[i].bank))
		}
	}
}

// enroll adds a copy to the first open group missing its bank, opening a
// new group when none fits, and attempts to seal a group it fills.
//
//stashsim:noalloc
func (t *ParityTracker) enroll(pktID uint64, size uint8, bank int16) (minted, sealed int) {
	gi := int32(-1)
	for _, idx := range t.openG {
		if t.groups[idx].bankSet&(1<<uint(bank)) == 0 {
			gi = idx
			break
		}
	}
	if gi < 0 {
		gi = t.allocGroup()
		//lint:allow allocfree -- amortized: the open list shrinks back as groups fill
		t.openG = append(t.openG, gi)
	}
	g := &t.groups[gi]
	g.members[g.n] = parityMember{pktID: pktID, size: size, bank: bank}
	g.n++
	g.bankSet |= 1 << uint(bank)
	t.byPkt[pktID] = gi
	if int(g.n) == t.k {
		t.removeOpen(gi)
		g.state = gSealQ
		if t.trySeal(gi) {
			return int(g.paritySize), 1
		}
		//lint:allow allocfree -- amortized: the seal queue drains as space frees
		t.sealQ = append(t.sealQ, gi)
		t.SealsDeferred++
	}
	return 0, 0
}

// trySeal places a full group's parity flit run: the bank must be outside
// the member set, stash-capable, and hold the group's widest member; the
// freest such bank wins (lowest index on ties), mirroring the JSQ bias.
//
//stashsim:noalloc
func (t *ParityTracker) trySeal(gi int32) bool {
	g := &t.groups[gi]
	size := 0
	for i := 0; i < int(g.n); i++ {
		if s := int(g.members[i].size); s > size {
			size = s
		}
	}
	best, bestFree := -1, size-1
	for b := range t.pools {
		if g.bankSet&(1<<uint(b)) != 0 {
			continue
		}
		p := t.pools[b]
		if p.Capacity() == 0 {
			continue
		}
		if free := p.Free(); free > bestFree {
			best, bestFree = b, free
		}
	}
	if best < 0 {
		return false
	}
	t.pools[best].AddParity(size)
	g.parityBank = int16(best)
	g.paritySize = uint8(size)
	g.state = gSealed
	t.SealedGroups++
	return true
}

// retrySeals re-attempts every queued group, compacting in place. Stale
// records — groups that reopened or dissolved while queued — are dropped
// by the state check.
//
//stashsim:noalloc
func (t *ParityTracker) retrySeals() (minted, sealed int) {
	w := 0
	for _, gi := range t.sealQ {
		g := &t.groups[gi]
		if g.state != gSealQ {
			continue
		}
		if t.trySeal(gi) {
			minted += int(g.paritySize)
			sealed++
			continue
		}
		t.sealQ[w] = gi
		w++
	}
	t.sealQ = t.sealQ[:w]
	return minted, sealed
}

// removeMember drops one member from its group and transitions the group:
// an emptied open group frees, a queued group reopens (its seal-queue
// record goes stale), a sealed group stays sealed over the survivors and
// frees — dropping its parity — only when the last member leaves.
//
//stashsim:noalloc
func (t *ParityTracker) removeMember(gi int32, pktID uint64) {
	g := &t.groups[gi]
	for i := 0; i < int(g.n); i++ {
		if g.members[i].pktID != pktID {
			continue
		}
		bank := g.members[i].bank
		g.n--
		g.members[i] = g.members[g.n]
		g.bankSet &^= 1 << uint(bank)
		delete(t.byPkt, pktID)
		switch g.state {
		case gOpen:
			if g.n == 0 {
				t.removeOpen(gi)
				t.freeGroup(gi)
			}
		case gSealQ:
			g.state = gOpen
			//lint:allow allocfree -- amortized: the open list shrinks back as groups fill
			t.openG = append(t.openG, gi)
		case gSealed:
			if g.n == 0 {
				t.pools[g.parityBank].DropParity(int(g.paritySize))
				t.freeGroup(gi)
			}
		}
		return
	}
	panic("buffer: parity member index out of sync")
}

// removeOpen drops a group from the open list preserving scan order.
//
//stashsim:noalloc
func (t *ParityTracker) removeOpen(gi int32) {
	for i, idx := range t.openG {
		if idx == gi {
			copy(t.openG[i:], t.openG[i+1:])
			t.openG = t.openG[:len(t.openG)-1]
			return
		}
	}
}

// allocGroup takes a group slot from the free list, growing the slab when
// it is empty. The slot comes back reset and open.
//
//stashsim:noalloc
func (t *ParityTracker) allocGroup() int32 {
	var gi int32
	if n := len(t.freeG); n > 0 {
		gi = t.freeG[n-1]
		t.freeG = t.freeG[:n-1]
	} else {
		//lint:allow allocfree -- amortized slab growth; groups recycle via freeG
		t.groups = append(t.groups, parityGroup{})
		gi = int32(len(t.groups) - 1)
	}
	t.groups[gi] = parityGroup{state: gOpen, parityBank: -1}
	return gi
}

// freeGroup recycles an emptied group slot.
//
//stashsim:noalloc
func (t *ParityTracker) freeGroup(gi int32) {
	t.groups[gi] = parityGroup{state: gFree, parityBank: -1}
	//lint:allow allocfree -- amortized: the free list caps at the group high-water mark
	t.freeG = append(t.freeG, gi)
}
