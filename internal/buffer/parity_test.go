package buffer

import (
	"testing"

	"stashsim/internal/proto"
)

// storeCopy reserves and completes an end-to-end stash copy in a pool.
func storeCopy(p *StashPool, id uint64, size int) {
	p.Reserve(size)
	for i := 0; i < size; i++ {
		p.PutCopy(proto.Flit{PktID: id, Size: uint8(size), Seq: uint8(i)})
	}
}

// mkPools builds n stash pools of the given capacity.
func mkPools(n, capacity int, retain bool) []*StashPool {
	pools := make([]*StashPool, n)
	for i := range pools {
		pools[i] = NewStashPool(capacity, retain)
	}
	return pools
}

func TestParityTrackerSealOnFill(t *testing.T) {
	pools := mkPools(3, 100, false)
	tr := NewParityTracker(2, pools)

	storeCopy(pools[0], 1, 4)
	if minted, sealed := tr.OnStore(1, 4, 0); minted != 0 || sealed != 0 {
		t.Fatalf("first member sealed early: minted %d sealed %d", minted, sealed)
	}
	storeCopy(pools[1], 2, 3)
	minted, sealed := tr.OnStore(2, 3, 1)
	if minted != 4 || sealed != 1 {
		t.Fatalf("fill: minted %d sealed %d, want 4 (max member size) and 1", minted, sealed)
	}
	// The parity landed in the only bank outside the member set.
	if pools[2].ParityFlits() != 4 || tr.ParityFlitsTotal() != 4 {
		t.Fatalf("parity flits: bank2 %d total %d", pools[2].ParityFlits(), tr.ParityFlitsTotal())
	}
	if tr.Members() != 2 || tr.SealedGroups != 1 {
		t.Fatalf("members %d sealed groups %d", tr.Members(), tr.SealedGroups)
	}
	if !tr.CanServeDegraded(1) || !tr.CanServeDegraded(2) {
		t.Fatal("sealed members not reconstructable")
	}
}

func TestParityTrackerOneMemberPerBank(t *testing.T) {
	pools := mkPools(3, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 2)
	storeCopy(pools[0], 2, 2)
	tr.OnStore(1, 2, 0)
	// Same bank: must open a second group instead of doubling up.
	if _, sealed := tr.OnStore(2, 2, 0); sealed != 0 {
		t.Fatal("two same-bank members sealed a group")
	}
	storeCopy(pools[1], 3, 2)
	// First-fit: joins pkt 1's older group and seals it.
	if _, sealed := tr.OnStore(3, 2, 1); sealed != 1 {
		t.Fatal("cross-bank member did not seal the first open group")
	}
	if tr.Members() != 3 || !tr.CanServeDegraded(1) || tr.CanServeDegraded(2) {
		t.Fatalf("membership after first-fit seal: %d members", tr.Members())
	}
}

func TestParityTrackerDeferredSealRetries(t *testing.T) {
	pools := mkPools(3, 4, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[2], 99, 4) // the only parity-capable bank is full
	storeCopy(pools[0], 1, 4)
	storeCopy(pools[1], 2, 4)
	tr.OnStore(1, 4, 0)
	if _, sealed := tr.OnStore(2, 4, 1); sealed != 0 {
		t.Fatal("sealed with no parity space")
	}
	if tr.SealsDeferred != 1 || tr.CanServeDegraded(1) {
		t.Fatalf("deferred %d", tr.SealsDeferred)
	}
	// Space frees in bank 2; the deferred seal completes on the next event.
	pools[2].Delete(99, 4)
	minted, sealed := tr.OnDelete(99)
	if minted != 4 || sealed != 1 || pools[2].ParityFlits() != 4 {
		t.Fatalf("retry after free: minted %d sealed %d bank2 parity %d",
			minted, sealed, pools[2].ParityFlits())
	}
	if !tr.CanServeDegraded(1) || !tr.CanServeDegraded(2) {
		t.Fatal("retried seal did not protect the members")
	}
}

func TestParityTrackerDeleteKeepsGroupSealed(t *testing.T) {
	pools := mkPools(3, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 4)
	storeCopy(pools[1], 2, 4)
	tr.OnStore(1, 4, 0)
	tr.OnStore(2, 4, 1)

	// A positive ACK frees one member; the XOR-out is free, the group
	// stays sealed over the survivor.
	pools[0].Delete(1, 4)
	tr.OnDelete(1)
	if tr.Members() != 1 || !tr.CanServeDegraded(2) {
		t.Fatal("sealed group did not survive a member delete")
	}
	if pools[2].ParityFlits() != 4 {
		t.Fatal("parity dropped while a member remained")
	}
	// The last member leaves: the group frees and the parity with it.
	pools[1].Delete(2, 4)
	tr.OnDelete(2)
	if tr.Members() != 0 || pools[2].ParityFlits() != 0 || tr.ParityFlitsTotal() != 0 {
		t.Fatalf("emptied group kept parity: bank2 %d", pools[2].ParityFlits())
	}
}

func TestParityTrackerCopyLostDissolvesGroup(t *testing.T) {
	pools := mkPools(4, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 4)
	storeCopy(pools[1], 2, 4)
	tr.OnStore(1, 4, 0)
	tr.OnStore(2, 4, 1)

	// The copy's data is gone, so the group's parity is stale: the group
	// dissolves, the survivor re-enrolls into a fresh open group.
	_, _, protected := tr.OnCopyLost(1)
	if !protected {
		t.Fatal("sealed member loss not reported as protected")
	}
	if tr.GroupsDissolved != 1 || tr.Members() != 1 {
		t.Fatalf("dissolved %d members %d", tr.GroupsDissolved, tr.Members())
	}
	if tr.ParityFlitsTotal() != 0 || pools[2].ParityFlits() != 0 {
		t.Fatal("stale parity survived the dissolve")
	}
	if tr.CanServeDegraded(2) {
		t.Fatal("survivor still claims protection after dissolve")
	}
	// An unsealed member's loss is not protected.
	if _, _, protected := tr.OnCopyLost(2); protected {
		t.Fatal("open-group member loss reported as protected")
	}
	if tr.Members() != 0 {
		t.Fatalf("members %d after both losses", tr.Members())
	}
}

func TestParityTrackerFailCandidatesAndRecon(t *testing.T) {
	pools := mkPools(4, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 4)
	storeCopy(pools[1], 2, 4)
	tr.OnStore(1, 4, 0)
	tr.OnStore(2, 4, 1) // seals; parity in bank 2 (lowest free bank outside {0,1})

	cands := tr.FailCandidates(0)
	if len(cands) != 1 || cands[0] != 1 {
		t.Fatalf("candidates %v, want [1]", cands)
	}
	// The rebuild target must avoid the failing bank, the surviving
	// members' banks, and the parity bank.
	target, ok := tr.PickTarget(1, 4, 0)
	if !ok || target != 3 {
		t.Fatalf("target %d ok %v, want bank 3", target, ok)
	}
	tr.BeginRecon(1)
	if tr.Members() != 1 || !tr.CanServeDegraded(2) {
		t.Fatal("group did not stay sealed over the survivor during recon")
	}
	// The rebuilt copy lands and re-enrolls like a fresh store.
	storeCopy(pools[3], 1, 4)
	tr.OnStore(1, 4, 3)
	if tr.Members() != 2 {
		t.Fatalf("members %d after rebuild landed", tr.Members())
	}
}

func TestParityTrackerFailCandidatesParityBank(t *testing.T) {
	pools := mkPools(3, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 4)
	storeCopy(pools[1], 2, 4)
	tr.OnStore(1, 4, 0)
	tr.OnStore(2, 4, 1) // parity in bank 2

	// Failing the parity's own bank unseals the group (no members lost)
	// and defers the reseal; nothing is reconstructable from it.
	if cands := tr.FailCandidates(2); len(cands) != 0 {
		t.Fatalf("candidates %v from a parity-only bank", cands)
	}
	if pools[2].ParityFlits() != 0 || tr.CanServeDegraded(1) {
		t.Fatal("dropped parity still accounted")
	}
	if tr.SealsDeferred != 1 {
		t.Fatalf("deferred %d, want the unsealed full group requeued", tr.SealsDeferred)
	}
	// After the failure is applied the bank is eligible again.
	if minted, sealed := tr.RetrySeals(); minted != 4 || sealed != 1 {
		t.Fatalf("reseal: minted %d sealed %d", minted, sealed)
	}
	if pools[2].ParityFlits() != 4 || !tr.CanServeDegraded(1) {
		t.Fatal("reseal did not restore protection")
	}
}

func TestParityTrackerRestashSupersedes(t *testing.T) {
	pools := mkPools(3, 100, false)
	tr := NewParityTracker(2, pools)
	storeCopy(pools[0], 1, 4)
	tr.OnStore(1, 4, 0)
	// A source-endpoint retransmission re-stashes the packet in another
	// bank; the stale membership is superseded, never duplicated.
	storeCopy(pools[1], 1, 4)
	tr.OnStore(1, 4, 1)
	if tr.Members() != 1 {
		t.Fatalf("members %d after re-stash", tr.Members())
	}
	storeCopy(pools[0], 2, 4)
	if _, sealed := tr.OnStore(2, 4, 0); sealed != 1 {
		t.Fatal("superseded membership blocked the banks")
	}
}

func TestParityTrackerWidthPanics(t *testing.T) {
	pools := mkPools(3, 100, false)
	for _, k := range []int{1, MaxParityWidth + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d did not panic", k)
				}
			}()
			NewParityTracker(k, pools)
		}()
	}
}

func TestParityTrackerBeginReconUnenrolledPanics(t *testing.T) {
	tr := NewParityTracker(2, mkPools(3, 100, false))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.BeginRecon(42)
}

// TestStashPoolFailBankReservedAndParity covers a bank failure striking a
// pool that holds, at once: a pure reservation (space granted, no flit
// arrived yet), a partial copy (header arrived, body pending), a completed
// copy, and a resident parity run. Only the copies with arrived flits are
// invalidated; the untouched reservation completes afterwards and the
// parity ledger is the tracker's to settle, not FailBank's.
func TestStashPoolFailBankReservedAndParity(t *testing.T) {
	p := NewStashPool(100, true)

	p.Reserve(4) // pkt 30: granted, no flits arrived yet
	p.Reserve(4) // pkt 31: header arrived, body pending
	p.PutCopy(proto.Flit{PktID: 31, Size: 4, Seq: 0})
	storeCopy(p, 32, 4) // completed
	p.AddParity(3)

	lost := p.FailBank()
	if len(lost) != 2 || lost[0] != 31 || lost[1] != 32 {
		t.Fatalf("lost %v, want [31 32]", lost)
	}
	if p.ParityFlits() != 3 {
		t.Fatalf("FailBank touched the parity ledger: %d", p.ParityFlits())
	}
	// pkt 30's reservation and pkt 31's three pending flits survive.
	if p.Reserved() != 4+3 {
		t.Fatalf("reserved %d after failure, want 7", p.Reserved())
	}
	// pkt 31's stragglers convert straight to freed space.
	for i := 1; i < 4; i++ {
		if p.PutCopy(proto.Flit{PktID: 31, Size: 4, Seq: uint8(i)}) {
			t.Fatal("dead partial copy reported completion")
		}
	}
	// pkt 30 arrives in full and completes normally.
	done := false
	for i := 0; i < 4; i++ {
		done = p.PutCopy(proto.Flit{PktID: 30, Size: 4, Seq: uint8(i)})
	}
	if !done || !p.Live(30) {
		t.Fatal("untouched reservation did not complete after the failure")
	}
	if p.Live(31) || p.Live(32) {
		t.Fatal("failed copies still live")
	}
	if want := int64(1 + 4 + 3); p.FreedFlits() != want {
		t.Fatalf("freed %d flits, want %d", p.FreedFlits(), want)
	}
	if p.Used() != 4+3 { // pkt 30's copy + parity
		t.Fatalf("used %d, want 7", p.Used())
	}
}

// TestStashPoolExtractInstall walks a copy through the in-flight half of a
// parity reconstruction: extracted from the failing bank (destroying its
// flits), carried with its retained payload, and re-minted into the target
// bank's reservation.
func TestStashPoolExtractInstall(t *testing.T) {
	src := NewStashPool(100, true)
	dst := NewStashPool(100, true)
	storeCopy(src, 7, 4)

	b, ok := src.ExtractCopy(7)
	if !ok || b == nil || len(b.Flits) != 4 {
		t.Fatalf("ExtractCopy: %v %v", b, ok)
	}
	if src.Live(7) || src.Used() != 0 || src.FreedFlits() != 4 {
		t.Fatalf("extract left source dirty: used %d freed %d", src.Used(), src.FreedFlits())
	}
	if b.Freed() {
		t.Fatal("extracted payload released")
	}

	dst.Reserve(4)
	dst.InstallCopy(7, 4, b)
	if !dst.Live(7) || dst.Used() != 4 || dst.Reserved() != 0 {
		t.Fatalf("install: live %v used %d reserved %d", dst.Live(7), dst.Used(), dst.Reserved())
	}
	// The installed copy retransmits like any stored one.
	if got, ok := dst.TakeCopy(7); !ok || len(got.Flits) != 4 {
		t.Fatal("installed copy not retrievable")
	} else {
		got.Release()
	}
	if !dst.Delete(7, 4) || dst.Used() != 0 {
		t.Fatal("installed copy did not delete cleanly")
	}
	// Extracting a copy that is not live reports false.
	if _, ok := src.ExtractCopy(7); ok {
		t.Fatal("extracted a dead copy")
	}
}

// TestStashPoolUnreserve covers the aborted-reconstruction path: the
// reservation releases without ever minting a copy.
func TestStashPoolUnreserve(t *testing.T) {
	p := NewStashPool(10, false)
	p.Reserve(4)
	p.Unreserve(4)
	if p.Used() != 0 || p.Free() != 10 {
		t.Fatalf("used %d free %d after unreserve", p.Used(), p.Free())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unreserve underflow did not panic")
		}
	}()
	p.Unreserve(1)
}
