package buffer

// BankedMem models the two-bank interleaved port memory of the paper's
// Section III-B. A port buffer augmented for stashing has four logical
// ports (read/write × normal/stash); the memory is split into an even and
// an odd bank, each serving one access per cycle, and multi-flit sequences
// alternate banks. Each logical stream therefore has a "current bank"
// parity that toggles on every granted access; an access is granted only if
// its bank has not been claimed this cycle.
//
// The model is an admission gate, not a data store: the switch consults it
// before moving flits and counts the denied cycles as bank-conflict stalls.
// Disabling it (Ideal) models 4-ported memory for the ablation study.
type BankedMem struct {
	// Ideal disables conflict modeling entirely; every access is granted.
	Ideal bool

	parity [4]uint8 // next bank per stream
	taken  [2]bool  // bank claimed this cycle
	cycle  int64

	// Conflicts counts denied accesses (stall cycles) since construction.
	Conflicts int64
	// Accesses counts granted accesses since construction.
	Accesses int64
}

// Access stream identifiers.
const (
	ReadNormal = iota
	WriteNormal
	ReadStash
	WriteStash
)

// Request asks for one flit access on the given stream during cycle now.
// It returns true and claims the stream's current bank when the access can
// proceed this cycle.
//
//stashsim:noalloc
func (m *BankedMem) Request(now int64, stream int) bool {
	if m.Ideal {
		m.Accesses++
		return true
	}
	if now != m.cycle {
		m.cycle = now
		m.taken[0] = false
		m.taken[1] = false
	}
	b := m.parity[stream] & 1
	if m.taken[b] {
		// Write sequences may instead start on the free bank and
		// remember their origin (the paper's "written in the order of
		// availability"); reads must follow their stored order.
		if (stream == WriteNormal || stream == WriteStash) && !m.taken[1-b] {
			m.parity[stream] = 1 - b
			b = 1 - b
		} else {
			m.Conflicts++
			return false
		}
	}
	m.taken[b] = true
	m.parity[stream] = (b + 1) & 1
	m.Accesses++
	return true
}
