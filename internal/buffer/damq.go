package buffer

import "stashsim/internal/proto"

// Reserves computes the per-VC reserved quota for a DAMQ of the given
// capacity. Each VC gets up to one maximum packet of private space so that a
// blocked VC can never be starved of buffer by the shared pool, but the
// total reservation is capped at half the capacity so small (heavily
// stashed) partitions still retain a useful shared region.
func Reserves(capacity, numVCs int) int {
	if numVCs <= 0 {
		return 0
	}
	r := proto.MaxPacketFlits
	if max := capacity / (2 * numVCs); r > max {
		r = max
	}
	if r < 1 && capacity >= numVCs {
		r = 1
	}
	return r
}

// DAMQ is a dynamically-allocated multi-queue input buffer: per-VC FIFOs
// drawing from one storage pool, with a small per-VC reserved quota and the
// remainder shared (Tamir & Frazier). The matching sender-side state is
// CreditCounter; both make the reserved-first allocation decision
// deterministically so their views never diverge.
type DAMQ struct {
	queues   []Ring
	capacity int
	reserve  int // per-VC reserved quota
	resvUsed []int
	shared   int // shared slots in use
	used     int
	occupied uint32 // bitmask of non-empty VCs
}

// NewDAMQ builds a DAMQ with the given total capacity (flits) shared by
// numVCs virtual channels.
func NewDAMQ(capacity, numVCs int) *DAMQ {
	return &DAMQ{
		queues:   make([]Ring, numVCs),
		capacity: capacity,
		reserve:  Reserves(capacity, numVCs),
		resvUsed: make([]int, numVCs),
	}
}

// Capacity returns the total pool capacity in flits.
func (d *DAMQ) Capacity() int { return d.capacity }

// Reserve returns the per-VC reserved quota in flits.
func (d *DAMQ) Reserve() int { return d.reserve }

// Used returns the total occupancy in flits.
//
//stashsim:noalloc
func (d *DAMQ) Used() int { return d.used }

// SharedFree returns the number of free shared-pool slots.
//
//stashsim:noalloc
func (d *DAMQ) SharedFree() int {
	return d.capacity - len(d.queues)*d.reserve - d.shared
}

// Avail returns the number of flits that could currently be enqueued on vc.
//
//stashsim:noalloc
func (d *DAMQ) Avail(vc int) int {
	return d.reserve - d.resvUsed[vc] + d.SharedFree()
}

// Push enqueues a flit on its VC. The pool (reserved vs shared) was chosen
// by the sender's CreditCounter and is carried in the flit's FlagShared bit;
// the receiver honors that stamp so the two sides never drift even though
// credit returns are delayed by the link latency. It panics on overflow,
// which indicates a flow-control bug.
//
//stashsim:noalloc
func (d *DAMQ) Push(f proto.Flit) bool {
	vc := int(f.VC)
	shared := f.Flags&proto.FlagShared != 0
	if shared {
		if d.SharedFree() <= 0 {
			panic("buffer: DAMQ shared-pool overflow")
		}
		d.shared++
	} else {
		if d.resvUsed[vc] >= d.reserve {
			panic("buffer: DAMQ reserved-quota overflow")
		}
		d.resvUsed[vc]++
	}
	d.used++
	d.queues[vc].Push(f)
	d.occupied |= 1 << uint(vc)
	return shared
}

// Pop dequeues the front flit of vc and returns it together with the credit
// that must be sent upstream.
//
//stashsim:noalloc
func (d *DAMQ) Pop(vc int) (proto.Flit, proto.Credit) {
	f := d.queues[vc].Pop()
	shared := f.Flags&proto.FlagShared != 0
	if shared {
		d.shared--
	} else {
		d.resvUsed[vc]--
	}
	d.used--
	if d.queues[vc].Empty() {
		d.occupied &^= 1 << uint(vc)
	}
	f.Flags &^= proto.FlagShared
	return f, proto.Credit{VC: uint8(vc), Shared: shared}
}

// Front returns the front flit of vc, or nil when the VC queue is empty.
//
//stashsim:noalloc
func (d *DAMQ) Front(vc int) *proto.Flit {
	if d.queues[vc].Empty() {
		return nil
	}
	return d.queues[vc].Front()
}

// Len returns the occupancy of one VC queue in flits.
//
//stashsim:noalloc
func (d *DAMQ) Len(vc int) int { return d.queues[vc].Len() }

// Occupied returns a bitmask of VCs with at least one queued flit.
//
//stashsim:noalloc
func (d *DAMQ) Occupied() uint32 { return d.occupied }

// NumVCs returns the number of virtual channels sharing the pool.
func (d *DAMQ) NumVCs() int { return len(d.queues) }

// ResvUsed returns the occupancy of vc's reserved quota, for the
// invariant checker's credit-conservation audit.
func (d *DAMQ) ResvUsed(vc int) int { return d.resvUsed[vc] }

// SharedUsed returns the shared-pool occupancy in flits.
func (d *DAMQ) SharedUsed() int { return d.shared }

// CreditCounter is the sender-side mirror of a downstream DAMQ. The sender
// decrements it when transmitting and the receiver's credits replenish it
// (after the link's credit-return latency). Both sides use the identical
// reserved-first policy, carried in the flit's FlagShared bit, so the
// counters track the receiver exactly.
type CreditCounter struct {
	reserve  int
	resvFree []int
	shared   int
}

// NewCreditCounter mirrors a DAMQ with the given capacity and VC count.
func NewCreditCounter(capacity, numVCs int) *CreditCounter {
	c := &CreditCounter{
		reserve:  Reserves(capacity, numVCs),
		resvFree: make([]int, numVCs),
	}
	for i := range c.resvFree {
		c.resvFree[i] = c.reserve
	}
	c.shared = capacity - numVCs*c.reserve
	return c
}

// Avail returns how many flits may currently be sent on vc.
//
//stashsim:noalloc
func (c *CreditCounter) Avail(vc int) int { return c.resvFree[vc] + c.shared }

// NumVCs returns the number of virtual channels mirrored.
func (c *CreditCounter) NumVCs() int { return len(c.resvFree) }

// Reserve returns the per-VC reserved quota being mirrored.
func (c *CreditCounter) Reserve() int { return c.reserve }

// ResvFree returns the free reserved-quota credits for vc.
func (c *CreditCounter) ResvFree(vc int) int { return c.resvFree[vc] }

// SharedFree returns the free shared-pool credit count.
func (c *CreditCounter) SharedFree() int { return c.shared }

// Take consumes one credit for vc, reserved-first, and stamps the flit's
// FlagShared to match. It panics when no credit is available.
//
//stashsim:noalloc
func (c *CreditCounter) Take(f *proto.Flit) {
	vc := int(f.VC)
	if c.resvFree[vc] > 0 {
		c.resvFree[vc]--
		f.Flags &^= proto.FlagShared
	} else if c.shared > 0 {
		c.shared--
		f.Flags |= proto.FlagShared
	} else {
		panic("buffer: credit underflow")
	}
}

// Return replenishes one credit as described by cr.
//
//stashsim:noalloc
func (c *CreditCounter) Return(cr proto.Credit) {
	if cr.Shared {
		c.shared++
	} else {
		c.resvFree[cr.VC]++
	}
}

// ReturnN replenishes n reserved credits for vc at once — the bulk form
// behind per-cycle credit batching. Equivalent to n Return calls because
// replenishment is a plain commutative increment.
//
//stashsim:noalloc
func (c *CreditCounter) ReturnN(vc, n int) { c.resvFree[vc] += n }

// ReturnShared replenishes n shared-pool credits at once.
//
//stashsim:noalloc
func (c *CreditCounter) ReturnShared(n int) { c.shared += n }
