// Package buffer implements the storage structures of the tiled switch:
// growable flit rings, DAMQ-style shared-pool buffers with per-VC reserved
// quotas, matching sender-side credit counters, the two-bank interleaved
// port memory of the paper's Section III-B, the output (link-level
// retransmission) buffer, and the per-port stash pool added by the stashing
// architecture.
package buffer

import "stashsim/internal/proto"

// Ring is a growable FIFO of flits. It grows geometrically on demand and
// never shrinks, so steady-state operation performs no allocation.
type Ring struct {
	buf  []proto.Flit
	head int
	n    int
}

// Len returns the number of queued flits.
//
//stashsim:noalloc
func (r *Ring) Len() int { return r.n }

// Empty reports whether the ring holds no flits.
//
//stashsim:noalloc
func (r *Ring) Empty() bool { return r.n == 0 }

// Push appends a flit.
//
//stashsim:noalloc
func (r *Ring) Push(f proto.Flit) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = f
	r.n++
}

// Pop removes and returns the oldest flit. It panics when empty.
//
//stashsim:noalloc
func (r *Ring) Pop() proto.Flit {
	if r.n == 0 {
		panic("buffer: pop from empty ring")
	}
	f := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return f
}

// Front returns a pointer to the oldest flit without removing it. The
// pointer is invalidated by the next Push or Pop. It panics when empty.
//
//stashsim:noalloc
func (r *Ring) Front() *proto.Flit {
	if r.n == 0 {
		panic("buffer: front of empty ring")
	}
	return &r.buf[r.head]
}

// At returns a pointer to the i-th oldest flit (0 = front).
//
//stashsim:noalloc
func (r *Ring) At(i int) *proto.Flit {
	if i < 0 || i >= r.n {
		panic("buffer: ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

//stashsim:noalloc
func (r *Ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	//lint:allow allocfree -- amortized doubling; steady state stays within the high-water capacity
	nb := make([]proto.Flit, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// TimedFlit is a flit with an associated deadline, used by link pipelines
// (arrival time) and output buffers (release time).
type TimedFlit struct {
	At   int64
	Flit proto.Flit
}

// TimedRing is a growable FIFO of TimedFlits. nextAt mirrors the front
// entry's deadline so the per-cycle due probes read only the ring header,
// never the backing array — one cache line instead of two.
type TimedRing struct {
	buf    []TimedFlit
	head   int
	n      int
	nextAt int64
}

// Len returns the number of queued entries.
//
//stashsim:noalloc
func (r *TimedRing) Len() int { return r.n }

// Empty reports whether the ring holds no entries.
//
//stashsim:noalloc
func (r *TimedRing) Empty() bool { return r.n == 0 }

// Push appends an entry. Deadlines must be monotonically non-decreasing;
// this holds for link pipelines (fixed latency) and RTT retention queues.
//
//stashsim:noalloc
func (r *TimedRing) Push(t TimedFlit) {
	if r.n == len(r.buf) {
		r.grow()
	}
	if r.n == 0 {
		r.nextAt = t.At
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

// PopDue removes and returns the front entry if its deadline is <= now.
//
//stashsim:noalloc
func (r *TimedRing) PopDue(now int64) (TimedFlit, bool) {
	if r.n == 0 || r.nextAt > now {
		return TimedFlit{}, false
	}
	t := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n > 0 {
		r.nextAt = r.buf[r.head].At
	}
	return t, true
}

// Front returns a pointer to the front entry; it panics when empty.
//
//stashsim:noalloc
func (r *TimedRing) Front() *TimedFlit {
	if r.n == 0 {
		panic("buffer: front of empty timed ring")
	}
	return &r.buf[r.head]
}

// FrontDue reports whether the front entry's deadline has passed; small
// enough to inline into per-cycle idle probes, and header-only thanks to
// the nextAt mirror.
//
//stashsim:noalloc
func (r *TimedRing) FrontDue(now int64) bool {
	return r.n > 0 && r.nextAt <= now
}

// At returns a pointer to the i-th oldest entry (0 = front).
//
//stashsim:noalloc
func (r *TimedRing) At(i int) *TimedFlit {
	if i < 0 || i >= r.n {
		panic("buffer: timed ring index out of range")
	}
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

//stashsim:noalloc
func (r *TimedRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	//lint:allow allocfree -- amortized doubling; steady state stays within the high-water capacity
	nb := make([]TimedFlit, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
