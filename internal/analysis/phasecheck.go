package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// phasecheck machine-checks the executor's two-phase concurrency contract
// (DESIGN.md, "Concurrency contract"). Each simulation cycle has a
// parallel phase — every component's Step runs concurrently, partitioned
// across workers — fenced by serial PreCycle/PostCycle hooks that the
// coordinator runs alone (plus the Run-after-Close serial fallback).
// Declarations opt into the contract with //stashsim: directives
// (directive.go); the analyzer then proves, by walking the parallel
// phase's intra-package call-graph closure, that:
//
//   - no function annotated `phase serial` is callable from the parallel
//     phase;
//   - no field annotated `phase serial` is touched from the parallel
//     phase;
//   - every field the parallel phase writes is accounted for: annotated
//     owner-private (`owner worker|partition`), annotated parallel-safe
//     (`phase parallel`: atomics, mutex-protected, parity inboxes), of a
//     sync/atomic type, or a local value;
//   - a type implementing an interface whose method is annotated with a
//     phase carries the same annotation on its own method, so the
//     contract follows dynamic dispatch (sim.Stepper.Step is the root).
//
// The proof direction is reachability from the parallel seeds: serial
// code may touch anything (the coordinator runs it exclusively), so only
// the parallel closure is constrained. Dynamic calls through unannotated
// function values or interface methods are a known hole; annotate the
// interface method to close it.

// phasePkgs are the packages that participate in the executor's phase
// contract: the executor itself, the switch model it steps, and the
// observability packages its hot path feeds.
var phasePkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/metrics",
	"internal/telemetry",
	"internal/network",
	// Checkpoint/Restore walk every component's private state and are
	// annotated serial: the phase proof keeps them unreachable from the
	// parallel stepping closure.
	"internal/snapshot",
}

// PhaseCheck enforces the //stashsim:phase / //stashsim:owner contract.
var PhaseCheck = &Analyzer{
	Name: "phasecheck",
	Doc: "Prove serial-annotated state is unreachable from the executor's parallel phase, " +
		"and that parallel-phase writes only touch owner-private, atomic or inbox-mediated state.",
	Scope: func(relPath string) bool { return pathIn(relPath, phasePkgs) },
	Run:   runPhaseCheck,
}

func runPhaseCheck(pass *Pass) error {
	facts := factsFor(pass)
	// phasecheck owns the directive vocabulary, so it reports the
	// malformed and misplaced directives collected while building facts.
	for _, b := range facts.bad[pass.PkgPath] {
		pass.Reportf(b.pos, "%s", b.msg)
	}

	decls := packageFuncDecls(pass)

	// Seed the closure with this package's `phase parallel` functions, in
	// file order for determinism.
	closure := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn != nil && facts.Ann(fn).Phase == "parallel" && !closure[fn] {
				closure[fn] = true
				queue = append(queue, fn)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		checkParallelBody(pass, facts, decls, fd, closure, &queue)
	}

	checkPhaseIfaceImpls(pass, facts)
	return nil
}

// packageFuncDecls indexes the package's function declarations by their
// types object, for call-graph expansion.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// checkParallelBody scans one parallel-closure function body: it flags
// serial calls and serial-field touches, validates every field write, and
// grows the closure through unannotated same-package callees.
func checkParallelBody(pass *Pass, facts *Facts, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl, closure map[*types.Func]bool, queue *[]*types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee == nil {
				return true
			}
			switch facts.Ann(callee).Phase {
			case "serial":
				pass.Reportf(n.Pos(), "parallel phase (via //stashsim:phase parallel %s) calls %s, which is annotated //stashsim:phase serial",
					fd.Name.Name, callee.Name())
			case "":
				// Unannotated same-package callee: part of the closure.
				if _, ok := decls[callee]; ok && !closure[callee] {
					closure[callee] = true
					*queue = append(*queue, callee)
				}
			}
		case *ast.SelectorExpr:
			if f := selectedField(pass.Info, n); f != nil && facts.Ann(f).Phase == "serial" {
				pass.Reportf(n.Sel.Pos(), "parallel phase (via %s) touches field %s, which is annotated //stashsim:phase serial",
					fd.Name.Name, f.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkParallelWrite(pass, facts, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkParallelWrite(pass, facts, fd, n.X)
		}
		return true
	})
}

// checkParallelWrite validates one parallel-phase write target: the
// written field must be owner-private, parallel-annotated, atomic, or a
// local value. Serial fields are already reported by the selector walk.
func checkParallelWrite(pass *Pass, facts *Facts, fd *ast.FuncDecl, lhs ast.Expr) {
	f, base := writtenField(pass.Info, lhs)
	if f == nil {
		return
	}
	ann := facts.Ann(f)
	if ann.Phase != "" || ann.Owner != "" {
		return // serial already flagged; parallel/owner is the contract
	}
	if isAtomicType(f.Type()) {
		return
	}
	// Only this package's fields: each package's own pass accounts for
	// its state, and unexported fields are unreachable elsewhere anyway.
	if f.Pkg() != pass.Pkg {
		return
	}
	if rootIsLocalValue(pass, base) {
		return
	}
	pass.Reportf(lhs.Pos(), "parallel phase (via %s) writes unannotated field %s; annotate it //stashsim:owner worker|partition or //stashsim:phase, or mediate the write through an inbox",
		fd.Name.Name, f.Name())
}

// calleeFunc resolves a call expression to the called function or method
// object, or nil for dynamic calls, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// selectedField resolves a selector to the struct field it names, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// writtenField unwraps an assignment target down to the struct field it
// mutates (element writes count as writes to the containing field) and
// returns the field plus the selector's base expression.
func writtenField(info *types.Info, lhs ast.Expr) (*types.Var, ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if f := selectedField(info, e); f != nil {
				return f, e.X
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// rootIsLocalValue reports whether the selector base bottoms out in a
// non-pointer local variable, so the write mutates a stack copy rather
// than shared state. Any pointer hop on the way down means the target may
// alias shared state, and the write stays flagged.
func rootIsLocalValue(pass *Pass, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return false
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			return false
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				return false
			}
			if v.Parent() == pass.Pkg.Scope() {
				return false // package-level state
			}
			if _, ok := v.Type().Underlying().(*types.Pointer); ok {
				return false
			}
			return true
		default:
			return false
		}
	}
}

// annotatedIfaceMethod is one interface method carrying a //stashsim:
// directive, against which implementations are checked.
type annotatedIfaceMethod struct {
	fn    *types.Func
	iface *types.Interface
	ann   Annotation
	label string // pkg.Interface.Method, for diagnostics
}

// annotatedIfaceMethods extracts the directive-carrying interface methods
// from the facts, sorted by position for deterministic checking.
func annotatedIfaceMethods(facts *Facts) []annotatedIfaceMethod {
	var out []annotatedIfaceMethod
	for obj, ann := range facts.ann {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		label := fn.Name()
		if named, ok := sig.Recv().Type().(*types.Named); ok {
			label = named.Obj().Name() + "." + label
		}
		if fn.Pkg() != nil {
			label = fn.Pkg().Name() + "." + label
		}
		out = append(out, annotatedIfaceMethod{fn, iface, ann, label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fn.Pos() < out[j].fn.Pos() })
	return out
}

// implMethodInPackage returns the method of T (or *T) that satisfies the
// annotated interface method m, provided that method is declared in pkg;
// nil otherwise.
func implMethodInPackage(T types.Type, m annotatedIfaceMethod, pkg *types.Package) *types.Func {
	ptr := types.NewPointer(T)
	if !types.Implements(T, m.iface) && !types.Implements(ptr, m.iface) {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.fn.Pkg(), m.fn.Name())
	impl, ok := obj.(*types.Func)
	if !ok || impl.Pkg() != pkg || impl == m.fn {
		return nil
	}
	return impl
}

// checkPhaseIfaceImpls requires implementations of phase-annotated
// interface methods (e.g. sim.Stepper.Step) to restate the phase on their
// own declaration, so the closure proof seeds every implementation.
func checkPhaseIfaceImpls(pass *Pass, facts *Facts) {
	methods := annotatedIfaceMethods(facts)
	if len(methods) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				T := tn.Type()
				if _, ok := T.Underlying().(*types.Interface); ok {
					continue
				}
				for _, m := range methods {
					if m.ann.Phase == "" {
						continue
					}
					impl := implMethodInPackage(T, m, pass.Pkg)
					if impl == nil {
						continue
					}
					if facts.Ann(impl).Phase != m.ann.Phase {
						pass.Reportf(impl.Pos(), "%s.%s implements %s, annotated //stashsim:phase %s, but does not restate the annotation",
							tn.Name(), impl.Name(), m.label, m.ann.Phase)
					}
				}
			}
		}
	}
}
