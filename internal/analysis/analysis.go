// Package analysis is the project's static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API (which
// is not vendored here) built directly on go/ast, go/parser and go/types,
// plus a loader that resolves package metadata through `go list`. It hosts
// the stashlint analyzers that machine-enforce the simulator's correctness
// contracts:
//
//   - determinism: simulation packages must not consult map iteration
//     order, wall-clock time, the global math/rand source, or spawn
//     unsynchronized goroutines (see determinism.go).
//   - nilsafe: exported pointer-receiver methods in internal/metrics must
//     begin with the nil-receiver guard that makes disabled observability
//     free (see nilsafe.go).
//   - panicstyle: panics in internal packages must carry the "pkg: ..."
//     constant-message format (see panicstyle.go).
//   - phasecheck: the executor's two-phase concurrency contract, declared
//     with //stashsim:phase and //stashsim:owner directives — serial-only
//     state must be unreachable from the parallel phase (see phasecheck.go,
//     directive.go).
//   - atomiccheck: a field accessed through sync/atomic anywhere must be
//     accessed atomically everywhere (see atomiccheck.go).
//   - allocfree: functions marked //stashsim:noalloc must not contain
//     allocating constructs, and their in-scope callees must be marked
//     too (see allocfree.go).
//
// A finding is suppressed by a directive comment on the same line or the
// line immediately above it:
//
//	//lint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a bare allow is ignored (and therefore still
// reported), so every suppression documents why the contract does not
// apply at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description of the contract it enforces.
	Doc string
	// Scope reports whether the analyzer applies to a package, given its
	// import path relative to the module root (e.g. "internal/core").
	// The driver consults it; fixture tests bypass it.
	Scope func(relPath string) bool
	// Run performs the analysis on one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path. Fixture tests load testdata
	// under a caller-chosen path, so path-dependent rules (like the
	// internal/sim goroutine exemption) are themselves testable.
	PkgPath string
	Info    *types.Info
	// Facts is the module-wide //stashsim: directive index shared by every
	// pass of a run so cross-package annotations resolve. When nil, the
	// directive-driven analyzers lazily build single-package facts.
	Facts *Facts

	diags   []Diagnostic
	allowed map[allowKey]bool
}

// allowKey locates one //lint:allow directive.
type allowKey struct {
	file string
	line int
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// allowRe matches a suppression directive. The reason after "--" is
// required, so suppressions are self-documenting.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)\s+--\s+\S`)

// NewPass prepares a pass, indexing the package's //lint:allow directives
// for this analyzer so Reportf can drop suppressed findings.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, pkgPath string, info *types.Info) *Pass {
	p := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		PkgPath:  pkgPath,
		Info:     info,
		allowed:  make(map[allowKey]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil || m[1] != a.Name {
					continue
				}
				pos := fset.Position(c.Pos())
				p.allowed[allowKey{pos.Filename, pos.Line}] = true
			}
		}
	}
	return p
}

// Reportf records a finding at pos unless a matching //lint:allow
// directive appears on the same line or the line directly above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed[allowKey{position.Filename, position.Line}] ||
		p.allowed[allowKey{position.Filename, position.Line - 1}] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the surviving findings sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// All returns the stashlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{Determinism, NilSafe, PanicStyle, PhaseCheck, AtomicCheck, AllocFree}
}

// pathIn reports whether relPath equals one of the listed package paths or
// sits beneath a listed prefix ending in "/".
func pathIn(relPath string, list []string) bool {
	for _, p := range list {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(relPath, p) {
				return true
			}
			continue
		}
		if relPath == p {
			return true
		}
	}
	return false
}
