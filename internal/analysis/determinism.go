package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the simulator's bit-identical-reproducibility
// contract: a run is a pure function of its configuration and seed. In
// simulation packages it forbids the four ways nondeterminism leaks in:
//
//   - ranging over a map (iteration order feeds whatever the loop body
//     touches — sort the keys or keep a slice alongside the map);
//   - wall-clock time (time.Now / time.Since);
//   - the global math/rand source (import the seeded sim.RNG instead);
//   - goroutine spawns outside internal/sim, whose executor owns the only
//     synchronization barrier the simulation loop recognizes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, wall-clock time, global math/rand and " +
		"unsynchronized goroutines in simulation packages",
	Scope: determinismScope,
	Run:   runDeterminism,
}

// determinismPkgs are the module-relative package paths the contract
// covers: every package that executes between seeding and summary output.
var determinismPkgs = []string{
	"internal/core",
	"internal/sim",
	"internal/route",
	"internal/buffer",
	"internal/arb",
	"internal/traffic",
	"internal/harness",
	"internal/endpoint",
	"internal/fault",
	"internal/proto",
	"internal/network",
	"internal/topo",
	"cmd/stashsim",
	"cmd/figures",
	"cmd/tracegen",
	"examples/",
}

func determinismScope(relPath string) bool { return pathIn(relPath, determinismPkgs) }

func runDeterminism(pass *Pass) error {
	// The executor package owns the worker-pool barrier; its goroutine
	// spawns are the synchronization everyone else must go through.
	goExempt := strings.HasSuffix(pass.PkgPath, "internal/sim")

	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of math/rand in a simulation package; use the seeded sim.RNG")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "range over map: iteration order is nondeterministic; sort the keys or iterate a slice")
					}
				}
			case *ast.GoStmt:
				if !goExempt {
					pass.Reportf(n.Pos(), "goroutine spawned outside internal/sim's executor barrier")
				}
			case *ast.SelectorExpr:
				if pkg, name := resolvePkgFunc(pass, n); pkg == "time" && (name == "Now" || name == "Since" || name == "Until") {
					pass.Reportf(n.Pos(), "time.%s in a simulation package: simulated time is sim.Tick, wall-clock time is nondeterministic", name)
				}
			}
			return true
		})
	}
	return nil
}

// resolvePkgFunc returns the (package path, selector name) of a
// pkg.Name selector, or ("", "") when sel.X is not a package qualifier.
func resolvePkgFunc(pass *Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
