package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the simulator's bit-identical-reproducibility
// contract: a run is a pure function of its configuration and seed. In
// simulation packages it forbids the four ways nondeterminism leaks in:
//
//   - ranging over a map (iteration order feeds whatever the loop body
//     touches — sort the keys or keep a slice alongside the map);
//   - wall-clock time (time.Now / time.Since);
//   - the global math/rand source (import the seeded sim.RNG instead);
//   - goroutine spawns outside internal/sim, whose executor owns the only
//     synchronization barrier the simulation loop recognizes;
//   - select statements and range-over-channel loops outside internal/sim:
//     both observe scheduling order (which case fired, which worker
//     finished first), the channel-shaped cousins of map iteration.
//
// The last two encode the parallel-shard rule: work fanned out over the
// executor or sim.ParallelFor must land in index-addressed slots (or
// per-worker shards folded in fixed shard order) and be assembled by
// index after the join — completion order must never reach output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, wall-clock time, global math/rand, " +
		"unsynchronized goroutines, selects and channel ranges in simulation packages",
	Scope: determinismScope,
	Run:   runDeterminism,
}

// determinismPkgs are the module-relative package paths the contract
// covers: every package that executes between seeding and summary output.
var determinismPkgs = []string{
	"internal/core",
	"internal/sim",
	"internal/route",
	"internal/buffer",
	"internal/arb",
	"internal/traffic",
	"internal/harness",
	"internal/endpoint",
	"internal/fault",
	"internal/proto",
	"internal/network",
	"internal/topo",
	// Collection paths added after the contract was first drawn: counter
	// aggregation feeds summary output, and the stats containers back it.
	// internal/telemetry stays out deliberately — it publishes on a
	// wall-clock cadence to a background HTTP server and never feeds
	// simulation state (see the package doc).
	"internal/metrics",
	"internal/stats",
	// The checkpoint codec serializes simulator state: a map iterated in
	// encode order would make snapshot bytes nondeterministic, breaking
	// the checkpoint -> restore -> checkpoint byte-identity contract.
	"internal/snapshot",
	"cmd/stashsim",
	"cmd/figures",
	"cmd/tracegen",
	"examples/",
}

func determinismScope(relPath string) bool { return pathIn(relPath, determinismPkgs) }

func runDeterminism(pass *Pass) error {
	// The executor package owns the worker-pool barrier; its goroutine
	// spawns, worker-feed channel ranges and selects are the
	// synchronization everyone else must go through.
	simExempt := strings.HasSuffix(pass.PkgPath, "internal/sim")

	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of math/rand in a simulation package; use the seeded sim.RNG")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						pass.Reportf(n.Pos(), "range over map: iteration order is nondeterministic; sort the keys or iterate a slice")
					case *types.Chan:
						if !simExempt {
							pass.Reportf(n.Pos(), "range over channel: completion order is scheduling-dependent; write results to index-addressed slots and assemble in index order")
						}
					}
				}
			case *ast.GoStmt:
				if !simExempt {
					pass.Reportf(n.Pos(), "goroutine spawned outside internal/sim's executor barrier")
				}
			case *ast.SelectStmt:
				if !simExempt {
					pass.Reportf(n.Pos(), "select in a simulation package: which case fires is scheduling-dependent; shard order must not reach output")
				}
			case *ast.SelectorExpr:
				if pkg, name := resolvePkgFunc(pass, n); pkg == "time" && (name == "Now" || name == "Since" || name == "Until") {
					pass.Reportf(n.Pos(), "time.%s in a simulation package: simulated time is sim.Tick, wall-clock time is nondeterministic", name)
				}
			}
			return true
		})
	}
	return nil
}

// resolvePkgFunc returns the (package path, selector name) of a
// pkg.Name selector, or ("", "") when sel.X is not a package qualifier.
func resolvePkgFunc(pass *Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
