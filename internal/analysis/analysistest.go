package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
)

// The fixture runner mirrors golang.org/x/tools/go/analysis/analysistest:
// fixture sources under testdata/ carry expectations as comments —
//
//	for k := range m { // want "range over map"
//
// — where each quoted string is a regexp that must match a diagnostic
// reported on that line. Every diagnostic must be wanted and every want
// must be matched; the mismatches are returned as errors for the test to
// report.

// wantRe matches one `// want "re" "re2"` expectation comment.
var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// wantStrRe extracts the individual quoted regexps.
var wantStrRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one unmatched want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// RunFixture loads the fixture directory as a package with import path
// asPath, runs the analyzer over it, and checks its diagnostics against
// the fixture's want comments. It returns the list of mismatches (empty
// on success).
func RunFixture(l *Loader, a *Analyzer, dir, asPath string) ([]string, error) {
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info)
	if err := a.Run(pass); err != nil {
		return nil, err
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantStrRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	var problems []string
	for _, d := range pass.Diagnostics() {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic %s", d))
		}
	}
	for _, w := range wants {
		if w.re != nil {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re))
		}
	}
	return problems, nil
}

// FixturePath returns the conventional fixture directory for a name.
func FixturePath(name string) string {
	return filepath.Join("testdata", "src", name)
}
