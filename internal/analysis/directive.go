package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //stashsim: directive family is the machine-readable half of the
// executor's concurrency and allocation contract (DESIGN.md, "Concurrency
// contract"). Directives annotate declarations; the phasecheck and
// allocfree analyzers consume them through a Facts index built over every
// loaded package, so cross-package calls see the callee's annotations.
//
// Vocabulary:
//
//	//stashsim:phase serial      (funcs, types, fields)
//	//stashsim:phase parallel    (funcs, types, fields)
//	//stashsim:owner worker      (types, fields)
//	//stashsim:owner partition   (types, fields)
//	//stashsim:noalloc           (funcs, interface methods)
//
// On a function, `phase serial` asserts it runs only in serial context
// (the executor's PreCycle/PostCycle hooks, between Runs, or the
// Run-after-Close fallback); `phase parallel` marks a parallel-phase
// root: it (and everything it reaches) may run concurrently with other
// components' steps. On a field, `phase serial` marks state that
// parallel-phase code must never touch, and `phase parallel` marks state
// safe for concurrent-phase access by construction (atomics, parity
// inboxes). `owner worker|partition` marks owner-private state: touched
// only by the goroutine (worker) or component (partition) that owns it
// during the parallel phase. A directive on a struct type applies to all
// its fields; a field-level directive overrides the type-level one
// attribute-by-attribute. `noalloc` asserts a function's steady-state
// body allocates nothing; the allocfree analyzer requires its module
// callees (within the checked packages) to carry the same annotation.
//
// An optional trailing " -- reason" documents the annotation:
//
//	//stashsim:phase serial -- runs from the PostCycle hook only

// directivePrefix introduces every stashsim annotation comment.
const directivePrefix = "//stashsim:"

// Annotation is the parsed directive set attached to one declaration.
type Annotation struct {
	Phase   string // "", "serial" or "parallel"
	Owner   string // "", "worker" or "partition"
	NoAlloc bool
}

// merge overlays field-level a over type-level base, attribute by
// attribute.
func (a Annotation) merge(base Annotation) Annotation {
	out := a
	if out.Phase == "" {
		out.Phase = base.Phase
	}
	if out.Owner == "" {
		out.Owner = base.Owner
	}
	out.NoAlloc = out.NoAlloc || base.NoAlloc
	return out
}

// zero reports whether no directive applies.
func (a Annotation) zero() bool {
	return a.Phase == "" && a.Owner == "" && !a.NoAlloc
}

// badDirective is one malformed or misplaced //stashsim: comment.
type badDirective struct {
	pos token.Pos
	msg string
}

// Facts indexes every //stashsim: directive of the loaded packages by the
// annotated object (functions, type names, struct fields, interface
// methods). Passes share one Facts so annotations are visible across
// package boundaries; fixture loads build it from the fixture alone.
type Facts struct {
	ann map[types.Object]Annotation
	// bad collects malformed or misplaced directives per package path;
	// phasecheck (the vocabulary owner) reports them.
	bad map[string][]badDirective
}

// Ann returns the annotation attached to obj (the zero Annotation when
// none).
func (f *Facts) Ann(obj types.Object) Annotation {
	if f == nil || obj == nil {
		return Annotation{}
	}
	return f.ann[obj]
}

// BuildFacts scans the packages' declarations for //stashsim: directives.
func BuildFacts(pkgs ...*Package) *Facts {
	f := &Facts{
		ann: make(map[types.Object]Annotation),
		bad: make(map[string][]badDirective),
	}
	for _, pkg := range pkgs {
		f.addPackage(pkg)
	}
	return f
}

// factsFor returns the pass's facts, building single-package facts as a
// fallback so analyzers work when no driver installed a module-wide index.
func factsFor(pass *Pass) *Facts {
	if pass.Facts != nil {
		return pass.Facts
	}
	pass.Facts = BuildFacts(&Package{
		Path:  pass.PkgPath,
		Fset:  pass.Fset,
		Files: pass.Files,
		Types: pass.Pkg,
		Info:  pass.Info,
	})
	return pass.Facts
}

func (f *Facts) addPackage(pkg *Package) {
	// consumed tracks comment groups attached to a supported declaration;
	// any remaining //stashsim: comment is misplaced and reported.
	consumed := make(map[*ast.CommentGroup]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				f.apply(pkg, pkg.Info.Defs[d.Name], "function "+d.Name.Name, consumed, d.Doc)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					tobj := pkg.Info.Defs[ts.Name]
					tann := f.apply(pkg, tobj, "type "+ts.Name.Name, consumed, doc, ts.Comment)
					f.applyMembers(pkg, ts, tann, consumed)
				}
			}
		}
		f.sweepMisplaced(pkg, file, consumed)
	}
}

// applyMembers distributes a type-level annotation over the struct's
// fields (or records interface-method directives), merging field-level
// directives over the inherited ones.
func (f *Facts) applyMembers(pkg *Package, ts *ast.TypeSpec, tann Annotation, consumed map[*ast.CommentGroup]bool) {
	var fields *ast.FieldList
	iface := false
	switch t := ts.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
		iface = true
	default:
		return
	}
	for _, fld := range fields.List {
		fann, bads := parseDirectives(consumed, fld.Doc, fld.Comment)
		what := "field"
		if iface {
			what = "interface method"
		}
		for _, b := range bads {
			f.bad[pkg.Path] = append(f.bad[pkg.Path], b)
		}
		for _, name := range fld.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			merged := fann.merge(tann)
			if fann.Phase == "serial" {
				// An explicit serial override sheds any inherited owner:
				// serial state has no parallel-phase owner.
				merged.Owner = fann.Owner
			}
			if !iface {
				// Type-level noalloc makes no sense on data; keep it off
				// fields so only the explicit function form is consumed.
				merged.NoAlloc = fann.NoAlloc
			}
			if !merged.zero() {
				f.check(pkg, obj, what+" "+name.Name, merged, fld.Pos())
				f.ann[obj] = merged
			}
		}
	}
}

// apply parses the declaration's directive comments and records the
// annotation on obj, validating directive/declaration compatibility.
func (f *Facts) apply(pkg *Package, obj types.Object, what string, consumed map[*ast.CommentGroup]bool, groups ...*ast.CommentGroup) Annotation {
	ann, bads := parseDirectives(consumed, groups...)
	for _, b := range bads {
		f.bad[pkg.Path] = append(f.bad[pkg.Path], b)
	}
	if ann.zero() || obj == nil {
		return ann
	}
	f.check(pkg, obj, what, ann, obj.Pos())
	f.ann[obj] = ann
	return ann
}

// check validates that the annotation makes sense on this kind of object.
func (f *Facts) check(pkg *Package, obj types.Object, what string, ann Annotation, pos token.Pos) {
	switch obj.(type) {
	case *types.Func:
		if ann.Owner != "" {
			f.bad[pkg.Path] = append(f.bad[pkg.Path], badDirective{pos,
				fmt.Sprintf("//stashsim:owner does not apply to %s; owner marks state, not code", what)})
		}
	default:
		if ann.NoAlloc {
			f.bad[pkg.Path] = append(f.bad[pkg.Path], badDirective{pos,
				fmt.Sprintf("//stashsim:noalloc does not apply to %s; it marks functions", what)})
		}
	}
	if ann.Phase == "serial" && ann.Owner != "" {
		f.bad[pkg.Path] = append(f.bad[pkg.Path], badDirective{pos,
			fmt.Sprintf("%s is annotated both phase serial and owner %s; serial state has no parallel-phase owner", what, ann.Owner)})
	}
}

// parseDirectives extracts the stashsim directives from the comment
// groups, marking each group consumed (even when it only carries prose:
// consumption is per-group, detection per-line).
func parseDirectives(consumed map[*ast.CommentGroup]bool, groups ...*ast.CommentGroup) (Annotation, []badDirective) {
	var ann Annotation
	var bads []badDirective
	for _, g := range groups {
		if g == nil {
			continue
		}
		consumed[g] = true
		for _, c := range g.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, directivePrefix)
			// An optional trailing " -- reason" documents the annotation.
			if i := strings.Index(body, " -- "); i >= 0 {
				body = body[:i]
			}
			fields := strings.Fields(body)
			if len(fields) == 0 {
				bads = append(bads, badDirective{c.Pos(), "empty //stashsim: directive"})
				continue
			}
			switch fields[0] {
			case "phase":
				if len(fields) != 2 || (fields[1] != "serial" && fields[1] != "parallel") {
					bads = append(bads, badDirective{c.Pos(),
						fmt.Sprintf("%q: //stashsim:phase takes exactly one of serial|parallel", c.Text)})
					continue
				}
				ann.Phase = fields[1]
			case "owner":
				if len(fields) != 2 || (fields[1] != "worker" && fields[1] != "partition") {
					bads = append(bads, badDirective{c.Pos(),
						fmt.Sprintf("%q: //stashsim:owner takes exactly one of worker|partition", c.Text)})
					continue
				}
				ann.Owner = fields[1]
			case "noalloc":
				if len(fields) != 1 {
					bads = append(bads, badDirective{c.Pos(),
						fmt.Sprintf("%q: //stashsim:noalloc takes no argument", c.Text)})
					continue
				}
				ann.NoAlloc = true
			default:
				bads = append(bads, badDirective{c.Pos(),
					fmt.Sprintf("unknown stashsim directive %q (known: phase, owner, noalloc)", fields[0])})
			}
		}
	}
	return ann, bads
}

// sweepMisplaced reports //stashsim: comments that were not attached to a
// function, type, struct field or interface method declaration — a
// directive floating in a body or above an unsupported declaration
// silently enforces nothing, which is worse than an error.
func (f *Facts) sweepMisplaced(pkg *Package, file *ast.File, consumed map[*ast.CommentGroup]bool) {
	for _, g := range file.Comments {
		if consumed[g] {
			continue
		}
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, directivePrefix) {
				f.bad[pkg.Path] = append(f.bad[pkg.Path], badDirective{c.Pos(),
					"misplaced //stashsim: directive: it must document a function, type, struct field or interface method declaration"})
			}
		}
	}
}
