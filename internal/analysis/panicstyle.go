package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicStyle enforces the diagnostic convention of the internal packages:
// a panic marks a simulator bug (flow-control violation, protocol
// corruption), and its message must identify the owning package and be
// greppable — a constant string (or a fmt.Sprintf with a constant format)
// prefixed "pkg: ", e.g.
//
//	panic("core: DropFlit with no due flit")
//	panic(fmt.Sprintf("harness: %v", err))
//
// Dynamic panic values (errors, recovered values) hide which invariant
// tripped and where; they are flagged.
var PanicStyle = &Analyzer{
	Name:  "panicstyle",
	Doc:   `panics in internal packages must carry a constant "pkg: ..."-prefixed message`,
	Scope: func(relPath string) bool { return strings.HasPrefix(relPath, "internal/") },
	Run:   runPanicStyle,
}

func runPanicStyle(pass *Pass) error {
	prefix := pass.Pkg.Name() + ": "
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
				return true // a shadowing declaration, not the builtin
			}
			arg := call.Args[0]
			if s, ok := constString(pass, arg); ok {
				if !strings.HasPrefix(s, prefix) {
					pass.Reportf(call.Pos(), "panic message %q is not pkg-prefixed; start it with %q", s, prefix)
				}
				return true
			}
			if inner, ok := arg.(*ast.CallExpr); ok {
				if sel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if pkg, name := resolvePkgFunc(pass, sel); pkg == "fmt" && name == "Sprintf" && len(inner.Args) > 0 {
						if s, ok := constString(pass, inner.Args[0]); ok {
							if !strings.HasPrefix(s, prefix) {
								pass.Reportf(call.Pos(), "panic format %q is not pkg-prefixed; start it with %q", s, prefix)
							}
							return true
						}
					}
				}
			}
			pass.Reportf(call.Pos(), `panic argument must be a constant string (or constant-format fmt.Sprintf) starting %q`, prefix)
			return true
		})
	}
	return nil
}

// constString returns the value of a constant string expression.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
