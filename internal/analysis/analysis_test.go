package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// runFixture runs one analyzer over one testdata fixture and reports the
// mismatches between its diagnostics and the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, fixture, asPath string) {
	t.Helper()
	l := NewLoader(moduleRoot(t))
	problems, err := RunFixture(l, a, FixturePath(fixture), asPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "determinism", "stashsim/internal/detfix")
}

// TestDeterminismSimExemption loads a fixture under the internal/sim
// path, where goroutine spawns are the executor barrier and permitted.
func TestDeterminismSimExemption(t *testing.T) {
	runFixture(t, Determinism, "determinism_sim", "stashsim/internal/sim")
}

func TestNilSafeFixture(t *testing.T) {
	runFixture(t, NilSafe, "nilsafe", "stashsim/internal/nsfix")
}

func TestPanicStyleFixture(t *testing.T) {
	runFixture(t, PanicStyle, "panicstyle", "stashsim/internal/panicfix")
}

func TestPhaseCheckFixture(t *testing.T) {
	runFixture(t, PhaseCheck, "phasecheck", "stashsim/internal/phasefix")
}

// The snapshot codec participates in both contracts: checkpoint bytes
// must be a deterministic function of state (no map-order iteration in
// encoders) and Checkpoint/Restore are serial-phase walks that the
// parallel closure must not reach. Each fixture pairs a true positive
// with the clean shape the real codec uses.
func TestDeterminismSnapshotFixture(t *testing.T) {
	runFixture(t, Determinism, "snapshot_determinism", "stashsim/internal/snapshot")
}

func TestPhaseCheckSnapshotFixture(t *testing.T) {
	runFixture(t, PhaseCheck, "snapshot_phase", "stashsim/internal/snapshot")
}

// TestPhaseCheckClean asserts a correctly annotated package carries zero
// findings (the fixture has no want comments, so any diagnostic fails).
func TestPhaseCheckClean(t *testing.T) {
	runFixture(t, PhaseCheck, "phasecheck_clean", "stashsim/internal/phasecleanfix")
}

func TestAtomicCheckFixture(t *testing.T) {
	runFixture(t, AtomicCheck, "atomiccheck", "stashsim/internal/atomfix")
}

func TestAtomicCheckClean(t *testing.T) {
	runFixture(t, AtomicCheck, "atomiccheck_clean", "stashsim/internal/atomcleanfix")
}

// TestAllocFreeFixture loads the fixture beneath internal/sim so the
// in-scope callee-closure rule applies to it.
func TestAllocFreeFixture(t *testing.T) {
	runFixture(t, AllocFree, "allocfree", "stashsim/internal/sim/allocfix")
}

func TestAllocFreeClean(t *testing.T) {
	runFixture(t, AllocFree, "allocfree_clean", "stashsim/internal/core/alloclean")
}

func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		rel      string
		want     bool
	}{
		{Determinism, "internal/core", true},
		{Determinism, "internal/sim", true},
		{Determinism, "cmd/stashsim", true},
		{Determinism, "examples/quickstart", true},
		{Determinism, "internal/metrics", true},
		{Determinism, "internal/stats", true},
		{Determinism, "internal/telemetry", false},
		{Determinism, "internal/trace", false},
		{Determinism, "internal/analysis", false},
		{NilSafe, "internal/metrics", true},
		{NilSafe, "internal/core", false},
		{PanicStyle, "internal/buffer", true},
		{PanicStyle, "cmd/stashsim", false},
		{PhaseCheck, "internal/sim", true},
		{PhaseCheck, "internal/core", true},
		{PhaseCheck, "internal/metrics", true},
		{PhaseCheck, "internal/telemetry", true},
		{PhaseCheck, "internal/network", true},
		{PhaseCheck, "internal/buffer", false},
		{AtomicCheck, "internal/core", true},
		{AtomicCheck, "cmd/stashsim", true},
		{AtomicCheck, "internal/analysis", true},
		{AllocFree, "internal/sim", true},
		{AllocFree, "internal/buffer", true},
		{AllocFree, "internal/proto", true},
		{AllocFree, "internal/metrics", false},
		{AllocFree, "cmd/stashsim", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(c.rel); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.analyzer.Name, c.rel, got, c.want)
		}
	}
}

// TestRepoClean is the in-process form of `make lint`: the whole module
// must carry zero findings. Skipped under -short (the race pass) — the
// full typecheck of the module plus its std dependencies takes seconds.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in short mode")
	}
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	// Module-wide facts, as the stashlint driver builds them, so phase and
	// noalloc annotations resolve across package boundaries.
	facts := BuildFacts(pkgs...)
	for _, pkg := range pkgs {
		for _, a := range All() {
			if pkg.Rel == "" || !a.Scope(pkg.Rel) {
				continue
			}
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info)
			pass.Facts = facts
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range pass.Diagnostics() {
				t.Errorf("%s", d)
			}
		}
	}
}
