package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocfree turns the PR-5/6 benchmark guarantee — the steady-state
// parallel cycle runs at 0 allocs/op (TestParallelSteadyStateAllocFree) —
// into a compile-time check. A function annotated //stashsim:noalloc must
// not contain allocating constructs, and the annotation is closed over
// the call graph: an in-scope module callee must itself be annotated, so
// deleting an annotation (or routing the hot path through a new helper)
// breaks the lint, not just the benchmark.
//
// Flagged constructs: make/new, slice and map literals, &composite
// literals, func literals (closures), go statements, string
// concatenation, string<->[]byte/[]rune conversions, values boxed into
// interface arguments or conversions, append that does not follow the
// sanctioned self-assign form `x = append(x, ...)` (amortized warm-cap
// growth), calls into non-allowlisted standard-library packages, calls to
// unannotated in-scope module functions, and dynamic calls through plain
// function values (unverifiable targets). Struct *value* literals, map
// index writes, channel operations, len/cap/copy/delete and panic are
// allowed: none of them heap-allocate in the steady state.
//
// Amortized or cold-path exceptions inside an annotated function are
// documented in place with `//lint:allow allocfree -- reason`.

// allocPkgs is the static closure the annotation may span: the executor
// spine (internal/sim), the switch hot path (internal/core) and the
// storage primitives it drives (internal/buffer, internal/proto). Calls
// to module packages outside this set are exempt — the runtime benchmark
// still covers them — so annotating the spine does not force annotations
// across the whole repo.
var allocPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/buffer",
	"internal/proto",
}

// allocStdlibAllow lists the standard-library packages whose functions
// are allocation-free by contract and common on the hot path.
var allocStdlibAllow = map[string]bool{
	"sync/atomic": true,
	"sync":        true,
	"math":        true,
	"math/bits":   true,
	"runtime":     true,
}

// AllocFree enforces //stashsim:noalloc bodies and their call-graph
// closure.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "Functions annotated //stashsim:noalloc must not allocate, and their in-scope " +
		"callees must carry the annotation too (the hot path stays provably allocation-free).",
	Scope: func(relPath string) bool { return pathIn(relPath, allocPkgs) },
	Run:   runAllocFree,
}

func runAllocFree(pass *Pass) error {
	facts := factsFor(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !facts.Ann(fn).NoAlloc {
				continue
			}
			checkNoAllocBody(pass, facts, fd)
		}
	}
	checkNoAllocIfaceImpls(pass, facts)
	return nil
}

// allocScoped reports whether a package path (module-relative or full)
// falls in the annotation's static closure; subdirectories count, so
// fixture packages can sit beneath a scoped path.
func allocScoped(pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, "stashsim/")
	for _, p := range allocPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

func checkNoAllocBody(pass *Pass, facts *Facts, fd *ast.FuncDecl) {
	// selfAppends are append calls in the sanctioned `x = append(x, ...)`
	// shape, collected so the call walk can skip them.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
					continue
				}
				if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
					selfAppends[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "noalloc function %s starts a goroutine (allocates a stack)", fd.Name.Name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "noalloc function %s contains a func literal (closures may allocate their captures)", fd.Name.Name)
			return false // don't double-report the closure's body
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "noalloc function %s builds a slice literal (allocates a backing array)", fd.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "noalloc function %s builds a map literal (allocates)", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "noalloc function %s takes the address of a composite literal (heap-allocates; recycle through a freelist instead)", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "noalloc function %s concatenates strings (allocates)", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, facts, fd, n, selfAppends)
		}
		return true
	})
}

// checkNoAllocCall classifies one call inside a noalloc body.
func checkNoAllocCall(pass *Pass, facts *Facts, fd *ast.FuncDecl, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[f.Sel]
	}

	// Conversions: T(x), both named (obj is a TypeName) and unnamed
	// ([]byte(s), recorded as a type expression).
	if tn, ok := obj.(*types.TypeName); ok {
		checkNoAllocConversion(pass, fd, call, tn.Type())
		return
	}
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		checkNoAllocConversion(pass, fd, call, tv.Type)
		return
	}
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make":
			pass.Reportf(call.Pos(), "noalloc function %s calls make (allocates)", fd.Name.Name)
		case "new":
			pass.Reportf(call.Pos(), "noalloc function %s calls new (heap-allocates; recycle through a freelist instead)", fd.Name.Name)
		case "append":
			if !selfAppends[call] {
				pass.Reportf(call.Pos(), "noalloc function %s uses append outside the sanctioned self-assign form x = append(x, ...)", fd.Name.Name)
			}
		}
		return
	}

	callee, _ := obj.(*types.Func)
	if callee == nil {
		// A dynamic call through a plain function value: the target is
		// unverifiable, so the closure proof stops here.
		pass.Reportf(call.Pos(), "noalloc function %s makes a dynamic call through a function value; the allocation contract cannot follow it", fd.Name.Name)
		return
	}

	checkBoxedArgs(pass, fd, call, callee)

	pkg := callee.Pkg()
	if pkg == nil {
		return // error.Error and other universe methods
	}
	switch {
	case allocScoped(pkg.Path()):
		if !facts.Ann(callee).NoAlloc {
			pass.Reportf(call.Pos(), "noalloc function %s calls %s, which is not annotated //stashsim:noalloc; annotate it or lift the call out of the hot path",
				fd.Name.Name, callee.Name())
		}
	case strings.HasPrefix(pkg.Path(), "stashsim/"):
		// Module package outside the closure's static scope: exempt; the
		// runtime benchmark still covers it.
	default:
		if !allocStdlibAllow[pkg.Path()] {
			pass.Reportf(call.Pos(), "noalloc function %s calls %s.%s; package %s is not on the allocation-free allowlist",
				fd.Name.Name, pkg.Name(), callee.Name(), pkg.Path())
		}
	}
}

// checkNoAllocConversion flags converting constructs: string <-> byte/rune
// slices copy, and conversion to an interface type boxes.
func checkNoAllocConversion(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch target.Underlying().(type) {
	case *types.Interface:
		if !types.IsInterface(src) {
			pass.Reportf(call.Pos(), "noalloc function %s converts a value to an interface (boxes, may allocate)", fd.Name.Name)
		}
	case *types.Slice:
		if isStringType(src) {
			pass.Reportf(call.Pos(), "noalloc function %s converts a string to a slice (copies and allocates)", fd.Name.Name)
		}
	default:
		if isStringType(target) && !isStringType(src) {
			pass.Reportf(call.Pos(), "noalloc function %s converts to string (copies and allocates)", fd.Name.Name)
		}
	}
}

// checkBoxedArgs flags concrete values passed where the callee takes an
// interface: the implicit conversion boxes and may allocate. panic and
// error cold paths are expected to suppress with //lint:allow.
func checkBoxedArgs(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		if pointerShaped(at) {
			// Pointers, channels, maps, funcs and unsafe.Pointers fit the
			// interface data word directly; storing one never allocates.
			continue
		}
		pass.Reportf(arg.Pos(), "noalloc function %s boxes a %s into interface parameter %d of %s (may allocate)",
			fd.Name.Name, at.String(), i, callee.Name())
	}
}

// checkNoAllocIfaceImpls requires implementations of noalloc-annotated
// interface methods (e.g. sim.Stepper.Step) declared in the allocfree
// scope to restate the annotation, so dynamic dispatch stays covered.
func checkNoAllocIfaceImpls(pass *Pass, facts *Facts) {
	methods := annotatedIfaceMethods(facts)
	if len(methods) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				T := tn.Type()
				if _, ok := T.Underlying().(*types.Interface); ok {
					continue
				}
				for _, m := range methods {
					if !m.ann.NoAlloc {
						continue
					}
					impl := implMethodInPackage(T, m, pass.Pkg)
					if impl == nil {
						continue
					}
					if !facts.Ann(impl).NoAlloc {
						pass.Reportf(impl.Pos(), "%s.%s implements %s, annotated //stashsim:noalloc, but does not restate the annotation",
							tn.Name(), impl.Name(), m.label)
					}
				}
			}
		}
	}
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t are a single pointer word, so
// converting one to an interface stores it inline without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
