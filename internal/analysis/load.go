package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The loader type-checks packages without golang.org/x/tools/go/packages:
// one `go list -json -deps` invocation supplies every package's file list,
// import graph and vendor remapping (ImportMap), and go/types checks the
// sources bottom-up. Dependency-only packages are checked with
// IgnoreFuncBodies (API surface only), so a whole-repo load stays cheap;
// the requested packages keep full bodies and a populated types.Info for
// the analyzers.

// Package is one fully loaded, analyzable package.
type Package struct {
	// Path is the package's import path; Rel is the path relative to the
	// module root ("" when the package is not part of the module), which
	// analyzer Scope functions consume.
	Path  string
	Rel   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// pkgMeta is the subset of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// Loader loads and type-checks packages of one module.
type Loader struct {
	// Dir is the directory `go list` runs in (anywhere inside the module).
	Dir string
	// Module is the module path, discovered on first Load.
	Module string

	fset  *token.FileSet
	metas map[string]*pkgMeta
	typed map[string]*types.Package
	full  map[string]*Package
	errs  map[string][]error // hard type errors per requested package
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		metas: make(map[string]*pkgMeta),
		typed: make(map[string]*types.Package),
		full:  make(map[string]*Package),
		errs:  make(map[string][]error),
	}
}

// goList runs `go list -json -deps args...` and merges the results into
// the loader's metadata table.
func (l *Loader) goList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-json", "-deps"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		m := &pkgMeta{}
		if err := dec.Decode(m); err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		if prev, ok := l.metas[m.ImportPath]; ok {
			// A package listed as a root in one invocation and a dep in
			// another keeps the root (DepOnly=false) marking.
			if prev.DepOnly && !m.DepOnly {
				prev.DepOnly = false
			}
			continue
		}
		l.metas[m.ImportPath] = m
		if l.Module == "" && m.Module != nil {
			l.Module = m.Module.Path
		}
	}
	return nil
}

// Load lists patterns (e.g. "./...") and returns each matched package
// fully type-checked, sorted by import path. It fails on parse or type
// errors in the matched packages; dependency errors are tolerated as long
// as the matched packages still check.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var roots []string
	for path, m := range l.metas {
		if !m.DepOnly && !m.Standard {
			roots = append(roots, path)
		}
	}
	sort.Strings(roots)
	var pkgs []*Package
	for _, path := range roots {
		if _, err := l.typecheck(path); err != nil {
			return nil, err
		}
		p := l.full[path]
		if errs := l.errs[path]; len(errs) > 0 {
			return nil, fmt.Errorf("package %s: %v", path, errs[0])
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// resolve maps an import spelled in pkg m to its actual import path,
// honoring go list's vendor/version remapping.
func (m *pkgMeta) resolve(imp string) string {
	if r, ok := m.ImportMap[imp]; ok {
		return r
	}
	return imp
}

// typecheck parses and checks one package (dependencies first).
func (l *Loader) typecheck(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if t, ok := l.typed[path]; ok {
		return t, nil
	}
	m := l.metas[path]
	if m == nil {
		return nil, fmt.Errorf("analysis: package %s not listed", path)
	}
	for _, imp := range m.Imports {
		if imp == "C" {
			continue
		}
		if _, err := l.typecheck(m.resolve(imp)); err != nil {
			return nil, err
		}
	}
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if m.DepOnly {
				continue // best effort for dependencies
			}
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if !m.DepOnly {
		info = newInfo()
	}
	conf := types.Config{
		Importer:         &mapImporter{l: l, m: m},
		FakeImportC:      true,
		IgnoreFuncBodies: m.DepOnly,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if !m.DepOnly {
				l.errs[path] = append(l.errs[path], err)
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s produced no package", path)
	}
	l.typed[path] = tpkg
	if !m.DepOnly {
		l.full[path] = &Package{
			Path:  path,
			Rel:   l.relPath(path),
			Fset:  l.fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		}
	}
	return tpkg, nil
}

// relPath strips the module prefix from an import path.
func (l *Loader) relPath(path string) string {
	if path == l.Module {
		return "."
	}
	if l.Module != "" && strings.HasPrefix(path, l.Module+"/") {
		return path[len(l.Module)+1:]
	}
	return ""
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// mapImporter resolves one package's imports against the loader's table
// of already-checked packages, applying that package's ImportMap.
type mapImporter struct {
	l *Loader
	m *pkgMeta
}

func (i *mapImporter) Import(path string) (*types.Package, error) {
	r := i.m.resolve(path)
	if r == "unsafe" {
		return types.Unsafe, nil
	}
	if t, ok := i.l.typed[r]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("analysis: import %s (as %s) not loaded", path, r)
}

// LoadDir parses and type-checks a single directory of Go files outside
// the module build graph — the analyzer fixture mode. The directory's
// files become a package with the given import path, so path-sensitive
// rules see whatever path the fixture claims. Imports are resolved by
// listing them through the module's `go list`.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var missing []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "C" || p == "unsafe" {
				continue
			}
			if _, ok := l.metas[p]; !ok {
				missing = append(missing, p)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		if err := l.goList(missing...); err != nil {
			return nil, err
		}
	}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "C" {
				continue
			}
			if _, err := l.typecheck(p); err != nil {
				return nil, err
			}
		}
	}
	info := newInfo()
	var terrs []error
	conf := types.Config{
		Importer:    &mapImporter{l: l, m: &pkgMeta{}},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		Error:       func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(asPath, l.fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("fixture %s: %v", dir, terrs[0])
	}
	return &Package{
		Path:  asPath,
		Rel:   l.relPath(asPath),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
