// Package snapphasefix exercises the phasecheck analyzer over the
// snapshot scope (loaded as stashsim/internal/snapshot): Checkpoint and
// Restore walk every component's private state, so they are annotated
// //stashsim:phase serial and must be unreachable from the parallel
// stepping closure.
package snapphasefix

type network struct {
	now int64
}

// Checkpoint mirrors the real network hook: a serial-only state walk.
//
//stashsim:phase serial -- walks every component's private state; runs only at a cycle barrier
func (n *network) Checkpoint() []byte {
	return []byte{byte(n.now)}
}

//stashsim:phase parallel
func step(n *network) {
	_ = n.Checkpoint() // want "calls Checkpoint, which is annotated //stashsim:phase serial"
}

// scheduled is the legal shape: the checkpoint fires from a serial hook
// (the barrier's PreCycle), never from the stepping closure.
//
//stashsim:phase serial
func scheduled(n *network) {
	_ = n.Checkpoint()
}
