// Package atomclean must carry zero atomiccheck findings: one field is a
// typed atomic (immune by construction), one is raw but touched only
// through sync/atomic, and one is plain everywhere.
package atomclean

import "sync/atomic"

type counters struct {
	hits  atomic.Int64
	raw   int64
	plain int64
}

func (c *counters) inc() {
	c.hits.Add(1)
	atomic.AddInt64(&c.raw, 1)
}

func (c *counters) read() (int64, int64) {
	return c.hits.Load(), atomic.LoadInt64(&c.raw)
}

func (c *counters) bump() {
	c.plain++
}
