// Package phaseclean is a fully annotated package that must carry zero
// phasecheck findings: every parallel-phase touch lands on owner-private,
// atomic, parallel-safe or local state, and serial state stays behind the
// serial hooks.
package phaseclean

import "sync/atomic"

// inbox is parity-slot mediated: the producer writes slot now&1 while the
// owner folds slot (now+1)&1, so concurrent-phase access is safe by
// construction.
//
//stashsim:phase parallel
type inbox struct {
	slots [2][]int
	n     int
}

// part is one partition; the type-level directive makes every field
// owner-private unless overridden.
//
//stashsim:owner partition
type part struct {
	ring  []int
	head  int
	count atomic.Int64
	in    inbox
	//stashsim:phase serial -- read by the between-cycles audit only
	auditNote string
}

//stashsim:phase parallel
func (p *part) step(now int) {
	p.head++
	p.ring[p.head%len(p.ring)] = now
	p.count.Add(1)
	fold(&p.in, now)
}

// fold is unannotated and checked as part of step's closure.
func fold(in *inbox, now int) {
	in.slots[now&1] = in.slots[now&1][:0]
	in.n++
}

//stashsim:phase serial
func audit(p *part) string {
	p.auditNote = "audited"
	return p.auditNote
}

// Stepper's phase annotation follows into every implementation.
type Stepper interface {
	//stashsim:phase parallel
	Step(now int)
}

type comp struct {
	//stashsim:owner partition
	ticks int
}

//stashsim:phase parallel
func (c *comp) Step(now int) { c.ticks += now }
