// Package phasefix exercises the phasecheck analyzer: the executor's
// serial/parallel phase contract declared with //stashsim: directives.
package phasefix

import "sync/atomic"

// state mixes serial-only, owner-private, atomic and unannotated fields.
type state struct {
	//stashsim:phase serial -- folded by the PostCycle hook only
	serialCount int
	//stashsim:owner partition
	mine int
	hits atomic.Int64
	// plain carries no annotation, so parallel-phase writes to it are
	// unaccounted for.
	plain int
}

//stashsim:phase serial
func serialFold(s *state) {
	s.serialCount++
}

//stashsim:phase parallel
func step(s *state) {
	serialFold(s) // want "calls serialFold, which is annotated //stashsim:phase serial"
	s.mine++
	s.hits.Add(1)
	helper(s)
}

// helper is unannotated but reached from step, so it is checked as part
// of the parallel closure.
func helper(s *state) {
	if s.serialCount > 0 { // want "touches field serialCount"
		return
	}
	s.plain = 1 // want "writes unannotated field plain"
	var scratch state
	scratch.plain = 2 // a local value: mutates a stack copy, no finding
}

//stashsim:phase parallel
func stepAllowed(s *state) {
	//lint:allow phasecheck -- quiescent read; workers are parked at the barrier here
	_ = s.serialCount
}

// notReached touches serial state too, but no parallel seed reaches it,
// so it carries no finding: the proof is reachability, not text search.
func notReached(s *state) {
	s.serialCount = 0
}

//stashsim:owner worker
func ownedFunc() {} // want "owner does not apply to function ownedFunc"

type conflicted struct {
	//stashsim:phase serial
	//stashsim:owner worker
	x int // want "annotated both phase serial and owner worker"
}

//stashsim:typo parallel // want "unknown stashsim directive"
func typoed() {}

func misplacedHost() {
	//stashsim:phase parallel // want "misplaced //stashsim: directive"
	_ = 0
}

// Stepper mirrors sim.Stepper: the phase annotation follows dynamic
// dispatch into every implementation.
type Stepper interface {
	//stashsim:phase parallel
	Step(now int)
}

type comp struct{ n int }

func (c *comp) Step(now int) {} // want "comp.Step implements phasefix.Stepper.Step, annotated //stashsim:phase parallel"
