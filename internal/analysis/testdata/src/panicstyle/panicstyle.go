// Package panicfix is the panicstyle analyzer fixture: panic messages in
// internal packages must be constant strings (or constant-format
// fmt.Sprintf calls) prefixed with the package name.
package panicfix

import (
	"errors"
	"fmt"
)

func check(x int) {
	if x < 0 {
		panic("panicfix: negative input") // canonical form
	}
	if x == 1 {
		panic("negative input") // want "not pkg-prefixed"
	}
	if x == 2 {
		panic("core: wrong package prefix") // want "not pkg-prefixed"
	}
	if x == 3 {
		panic(fmt.Sprintf("panicfix: x=%d out of range", x)) // constant format, prefixed
	}
	if x == 4 {
		panic(fmt.Sprintf("x=%d out of range", x)) // want "not pkg-prefixed"
	}
	if x == 5 {
		panic(errors.New("panicfix: wrapped")) // want "constant string"
	}
}

const sizeMsg = "panicfix: size overflow"

// constant identifiers count as constant strings.
func checkConst(ok bool) {
	if !ok {
		panic(sizeMsg)
	}
}

// repanic forwards a recovered value; the style contract does not apply,
// which the site must document.
func repanic(r any) {
	if r != nil {
		//lint:allow panicstyle -- re-raising a recovered value verbatim
		panic(r)
	}
}
