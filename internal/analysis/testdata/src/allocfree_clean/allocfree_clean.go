// Package alloclean must carry zero allocfree findings: an annotated hot
// path built from freelist-style reuse, self-assign appends, allowlisted
// stdlib calls and struct value literals.
package alloclean

import (
	"math/bits"
	"sync/atomic"
)

type entry struct{ due, val int }

type ring struct {
	buf  []entry
	head int
	n    atomic.Int64
}

//stashsim:noalloc
func (r *ring) push(e entry) {
	r.buf = append(r.buf, e)
	r.n.Add(1)
}

//stashsim:noalloc
func (r *ring) pop() (entry, bool) {
	if len(r.buf) == 0 {
		return entry{}, false
	}
	e := r.buf[len(r.buf)-1]
	r.buf = r.buf[:len(r.buf)-1]
	return e, true
}

//stashsim:noalloc
func (r *ring) occupancy() int {
	return bits.OnesCount64(uint64(r.head))
}

//stashsim:noalloc
func (r *ring) drain(dst []entry) []entry {
	for {
		e, ok := r.pop()
		if !ok {
			return dst
		}
		dst = append(dst, e) // self-assign append: sanctioned, no finding
	}
}

//stashsim:noalloc
func guard(ok bool) {
	if !ok {
		panic("alloclean: ring invariant violated")
	}
}

// Stepper's noalloc annotation is restated by the implementation.
type Stepper interface {
	//stashsim:noalloc
	Step(now int)
}

type comp struct{ r ring }

//stashsim:noalloc
func (c *comp) Step(now int) {
	c.r.push(entry{due: now})
}
