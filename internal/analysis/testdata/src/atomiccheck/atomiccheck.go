// Package atomfix exercises atomiccheck: a field accessed through
// sync/atomic anywhere must be accessed atomically everywhere.
package atomfix

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) flush() int64 {
	return atomic.SwapInt64(&c.hits, 0)
}

func (c *counters) peek() int64 {
	return c.hits // want "field hits is accessed via sync/atomic elsewhere"
}

func (c *counters) reset() {
	c.hits = 0 // want "field hits is accessed via sync/atomic elsewhere"
}

func (c *counters) coldBump() {
	c.cold++ // plain-only field: no finding
}

func (c *counters) peekJoined() int64 {
	//lint:allow atomiccheck -- workers are joined; this read is single-threaded teardown
	return c.hits
}
