// Package nsfix is the nilsafe analyzer fixture: handle types whose
// exported pointer-receiver methods must begin with the nil-receiver
// guard.
package nsfix

type Counter struct{ v int64 }

// Inc lacks the guard entirely.
func (c *Counter) Inc() { // want "nil-receiver guard"
	c.v++
}

// Add has the canonical guard.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value guards with a combined condition; the nil check still leads.
func (c *Counter) Value() int64 {
	if c == nil || c.v < 0 {
		return 0
	}
	return c.v
}

// Reversed spells the comparison nil-first; still a guard.
func (c *Counter) Reversed() int64 {
	if nil == c {
		return 0
	}
	return c.v
}

// Wrapped uses the inverted guard: the whole body inside `c != nil`.
func (c *Counter) Wrapped() {
	if c != nil {
		c.v++
	}
}

// Late guards, but not as the first statement.
func (c *Counter) Late() int64 { // want "nil-receiver guard"
	v := int64(0)
	if c == nil {
		return v
	}
	return c.v
}

// Snapshot has a value receiver: nil cannot reach it.
func (c Counter) Snapshot() int64 { return c.v }

// reset is unexported: internal callers own the nil handling.
func (c *Counter) reset() { c.v = 0 }

// Anonymous cannot name its receiver, so it cannot guard.
func (*Counter) Anonymous() {} // want "unnamed pointer receiver"

//lint:allow nilsafe -- constructor-returned handle, documented never nil
func (c *Counter) Bump() { c.v++ }
