// Package allocfix exercises the allocfree analyzer: every allocating
// construct inside a //stashsim:noalloc body is flagged, and the
// annotation is closed over in-scope callees.
package allocfix

import "fmt"

type entry struct{ due, val int }

type ring struct {
	buf []entry
	fn  func()
}

//stashsim:noalloc
func hotHelper() {}

// helper is in scope but unannotated, so noalloc callers may not use it.
func helper() {}

//stashsim:noalloc
func sink(v any) {}

//stashsim:noalloc
func constructs(r *ring, n int, s string, b []byte) {
	tmp := make([]entry, n) // want "calls make"
	_ = tmp
	p := new(entry) // want "calls new"
	_ = p
	sl := []int{1, 2} // want "builds a slice literal"
	_ = sl
	m := map[int]int{} // want "builds a map literal"
	_ = m
	e := &entry{due: n} // want "takes the address of a composite literal"
	_ = e
	f := func() {} // want "contains a func literal"
	_ = f
	go hotHelper()  // want "starts a goroutine"
	_ = s + "x"     // want "concatenates strings"
	_ = []byte(s)   // want "converts a string to a slice"
	_ = string(b)   // want "converts to string"
	_ = any(n)      // want "converts a value to an interface"
	sink(n)         // want "boxes a int into interface parameter 0 of sink"
	helper()        // want "calls helper, which is not annotated //stashsim:noalloc"
	_ = fmt.Sprint() // want "calls fmt.Sprint; package fmt is not on the allocation-free allowlist"
	r.fn()          // want "makes a dynamic call through a function value"
	hotHelper()     // annotated callee: fine
	v := entry{due: n} // struct value literal: no heap allocation
	_ = v
}

//stashsim:noalloc
func appends(r *ring, e entry, dst []entry) []entry {
	r.buf = append(r.buf, e) // self-assign: the sanctioned warm-cap form
	out := append(dst, e)    // want "uses append outside the sanctioned self-assign form"
	return out
}

//stashsim:noalloc
func warmGrow(n int) []entry {
	//lint:allow allocfree -- wiring-time warm-up; measured 0 allocs/op afterwards
	buf := make([]entry, 0, n)
	return buf
}

// coldPath is unannotated: it may allocate freely.
func coldPath(n int) []entry {
	return make([]entry, n)
}

// Stepper's noalloc annotation follows into implementations.
type Stepper interface {
	//stashsim:noalloc
	Step(now int)
}

type comp struct{ n int }

func (c *comp) Step(now int) { c.n = now } // want "comp.Step implements allocfix.Stepper.Step, annotated //stashsim:noalloc"
