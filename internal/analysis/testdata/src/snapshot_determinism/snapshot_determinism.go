// Package snapfix exercises the determinism analyzer over the snapshot
// codec scope: it is loaded under the fake import path
// stashsim/internal/snapshot. Checkpoint bytes must be a pure function
// of simulator state, so iterating a map in encode order is the codec's
// cardinal sin — two runs of the same state would serialize different
// bytes and break checkpoint -> restore -> checkpoint identity.
package snapfix

import "sort"

type writer struct{ buf []byte }

func (w *writer) u64(v uint64) { w.buf = append(w.buf, byte(v)) }

// encodeTracked serializes a tracking map in map order: flagged.
func encodeTracked(w *writer, track map[uint64]int) {
	for id, n := range track { // want "range over map"
		w.u64(id)
		w.u64(uint64(n))
	}
}

// encodeTrackedSorted is the codec's required shape: collect keys, sort,
// then emit in deterministic order. The collection loop documents itself
// with the suppression the real codec uses.
func encodeTrackedSorted(w *writer, track map[uint64]int) {
	ids := make([]uint64, 0, len(track))
	//lint:allow determinism -- map-key collection, sorted before use
	for id := range track {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w.u64(id)
		w.u64(uint64(track[id]))
	}
}
