// Package sim is the determinism fixture for the executor exemption: it
// is loaded under the fake import path stashsim/internal/sim, where
// goroutine spawns are the synchronization barrier itself and therefore
// permitted. The other determinism rules still apply.
package sim

import "sync"

type pool struct {
	wg sync.WaitGroup
}

// spawn is allowed here: internal/sim owns the worker barrier.
func (p *pool) spawn(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		fn()
	}()
}

// drain is allowed here too: the executor's worker-feed channels are the
// sanctioned synchronization, so ranging and selecting over them is the
// package's job.
func drain(cmds chan int, stop chan struct{}) {
	for range cmds {
		select {
		case <-stop:
			return
		default:
		}
	}
}

// mapOrder is still forbidden even inside internal/sim.
func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want "range over map"
		out = append(out, k)
	}
	return out
}
