// Package detfix is the determinism analyzer fixture. It is loaded under
// the fake import path stashsim/internal/detfix, i.e. as an ordinary
// simulation package (no internal/sim goroutine exemption).
package detfix

import (
	"math/rand" // want "import of math/rand"
	"sort"
	"time"
)

type state struct {
	weights map[int]int
	order   []int
}

// bad exercises every forbidden construct.
func (s *state) bad() {
	for k := range s.weights { // want "range over map"
		s.order = append(s.order, k)
	}
	_ = time.Now()              // want "time.Now"
	_ = time.Since(time.Time{}) // want "time.Since"
	_ = rand.Intn(4)
	go s.bad() // want "goroutine"
}

// sortedKeys ranges over a map too — the analyzer cannot see the sort
// that follows, so the site documents itself with a suppression.
func (s *state) sortedKeys() []int {
	keys := make([]int, 0, len(s.weights))
	//lint:allow determinism -- keys are sorted before use
	for k := range s.weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// allowedSameLine suppresses on the flagged line itself.
func (s *state) allowedSameLine() int {
	n := 0
	for range s.weights { //lint:allow determinism -- only counting, order-free
		n++
	}
	return n
}

// shardCollect exercises the parallel-shard rules: collecting fan-out
// results by completion order (range over a channel) or by first-ready
// (select) is forbidden outside internal/sim.
func (s *state) shardCollect(results chan int, other chan int) {
	for r := range results { // want "range over channel"
		s.order = append(s.order, r)
	}
	select { // want "select in a simulation package"
	case r := <-results:
		s.order = append(s.order, r)
	case r := <-other:
		s.order = append(s.order, r)
	}
}

// rangeOverSlice is the deterministic idiom and is not flagged.
func (s *state) rangeOverSlice() int {
	total := 0
	for _, k := range s.order {
		total += s.weights[k]
	}
	return total
}

// bareAllow lacks the mandatory reason, so the finding still fires.
func (s *state) bareAllow() {
	//lint:allow determinism
	for k := range s.weights { // want "range over map"
		delete(s.weights, k)
	}
}
