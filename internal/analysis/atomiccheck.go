package analysis

import (
	"go/ast"
	"go/types"
)

// atomiccheck enforces all-or-nothing atomicity per field: once any code
// in a package accesses a struct field through a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...), every
// other access to that field must go through sync/atomic too. A plain
// read racing an atomic write is still a data race, and it is exactly the
// kind that creeps in when a counter is "just read for a log line". The
// typed atomics (atomic.Int64 & friends) are immune by construction —
// their value is unexported — and are the repo's preferred form; this
// analyzer exists for the raw-pointer form so a future regression cannot
// mix the two idioms on one field.
//
// The check is per package, which is exactly the visibility of an
// unexported field; exported fields accessed raw-atomically across
// packages would evade it, but the repo has none (and should grow none —
// use a typed atomic).

// AtomicCheck flags mixed plain/atomic access to one field.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc: "A field accessed via sync/atomic anywhere must be accessed atomically everywhere; " +
		"mixed plain/atomic reads and writes race.",
	Scope: func(relPath string) bool { return relPath != "" },
	Run:   runAtomicCheck,
}

func runAtomicCheck(pass *Pass) error {
	// Pass 1: find every field whose address feeds a sync/atomic call,
	// remembering those selector nodes as sanctioned accesses.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := selectedField(pass.Info, sel); f != nil {
					atomicFields[f] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a mixed access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			f := selectedField(pass.Info, sel)
			if f == nil || !atomicFields[f] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed via sync/atomic elsewhere in this package; this plain access races with it (use sync/atomic here too, or a typed atomic)",
				f.Name())
			return true
		})
	}
	return nil
}
