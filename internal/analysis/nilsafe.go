package analysis

import (
	"go/ast"
)

// NilSafe enforces the observability layer's free-when-off contract: a
// nil metrics handle must behave as a no-op, so instrumentation can stay
// compiled into the simulation hot path unconditionally. Concretely,
// every exported method with a pointer receiver in internal/metrics must
// begin with the nil-receiver guard —
//
//	func (c *Counter) Inc() {
//		if c == nil {
//			return
//		}
//		...
//	}
//
// — as its first statement (an `if` whose condition checks the receiver
// against nil, possibly || / && combined with more conditions). The
// inverted form — the whole body wrapped in `if c != nil { ... }` — is
// accepted too. Value receivers and unexported methods are exempt.
var NilSafe = &Analyzer{
	Name:  "nilsafe",
	Doc:   "exported pointer-receiver methods in internal/metrics must begin with the nil-receiver guard",
	Scope: func(relPath string) bool { return relPath == "internal/metrics" },
	Run:   runNilSafe,
}

func runNilSafe(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recv := fn.Recv.List[0]
			if _, ok := recv.Type.(*ast.StarExpr); !ok {
				continue // value receiver: nil cannot reach it
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				pass.Reportf(fn.Pos(), "exported method %s has an unnamed pointer receiver and cannot guard against nil", fn.Name.Name)
				continue
			}
			if !startsWithNilGuard(fn.Body, recv.Names[0].Name) {
				pass.Reportf(fn.Pos(), "exported method %s does not begin with the nil-receiver guard (if %s == nil ...)",
					fn.Name.Name, recv.Names[0].Name)
			}
		}
	}
	return nil
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition tests the receiver against nil.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condChecksNil(ifStmt.Cond, recv)
}

// condChecksNil walks a condition's ||/&& structure looking for a
// `recv == nil` / `recv != nil` (either operand order) comparison. The
// `!=` form covers the wrapped-body guard `if c != nil { ... }`.
func condChecksNil(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "||", "&&":
			return condChecksNil(e.X, recv) || condChecksNil(e.Y, recv)
		case "==", "!=":
			return isIdent(e.X, recv) && isIdent(e.Y, "nil") ||
				isIdent(e.X, "nil") && isIdent(e.Y, recv)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
