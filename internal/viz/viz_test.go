package viz

import (
	"strings"
	"testing"
)

func TestRenderBasicShape(t *testing.T) {
	c := &Chart{Title: "t", Width: 20, Height: 5, XLabel: "x", YLabel: "y"}
	out := c.Render(Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	if !strings.Contains(out, "t\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(out, "\n")
	// Title + 5 rows + axis + x labels + legend.
	if len(lines) < 8 {
		t.Fatalf("too few lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(out, "* a") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Increasing series: marker in top row at right, bottom row at left.
	top, bottom := lines[1], lines[5]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("markers not at extremes:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("increasing series renders decreasing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{}
	out := c.Render(Series{Name: "empty"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data notice, got:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := &Chart{Width: 10, Height: 4}
	out := c.Render(Series{Name: "c", X: []float64{0, 1}, Y: []float64{5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series lost:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	c := &Chart{Width: 30, Height: 8, LogY: true}
	out := c.Render(Series{Name: "l", X: []float64{0, 1, 2}, Y: []float64{1, 100, 10000}})
	// Log scaling puts the middle point mid-height.
	if !strings.Contains(out, "*") {
		t.Fatal("log chart lost data")
	}
	// Non-positive values are skipped, not crashed on.
	out = c.Render(Series{Name: "z", X: []float64{0, 1}, Y: []float64{0, 10}})
	if !strings.Contains(out, "*") {
		t.Fatal("positive point dropped alongside non-positive")
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	out := c.Render(
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("series markers missing:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("runtimes", []string{"BIGFFT", "AMG"}, []string{"base", "stash"},
		[][]float64{{1.0, 1.02}, {1.0, 0.98}}, 20)
	if !strings.Contains(out, "BIGFFT") || !strings.Contains(out, "stash") {
		t.Fatalf("bars missing labels:\n%s", out)
	}
	if strings.Count(out, "|") != 4 {
		t.Fatalf("expected 4 bars:\n%s", out)
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		12345: "12345",
		42.5:  "42.5",
		1.234: "1.23",
		0:     "0.00",
	}
	for v, want := range cases {
		got := trimNum(v)
		if got != want && !(v == 0 && got == "0") {
			t.Fatalf("trimNum(%v) = %q, want %q", v, got, want)
		}
	}
}
