// Package viz renders experiment data as ASCII charts so cmd/figures can
// show the paper's figure shapes directly in a terminal, alongside the CSV
// output meant for real plotting.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers distinguish overlapping series in a chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart configures an ASCII plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	LogY   bool
}

func (c *Chart) dims() (int, int) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	return w, h
}

// Render draws the series into one fixed-width chart with axes, legend and
// linear (or log) y scaling.
func (c *Chart) Render(series ...Series) string {
	w, h := c.dims()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}

	yFmt := func(v float64) string {
		if c.LogY {
			v = math.Pow(10, v)
		}
		return trimNum(v)
	}
	topLabel := yFmt(maxY)
	botLabel := yFmt(minY)
	labW := len(topLabel)
	if len(botLabel) > labW {
		labW = len(botLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", labW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labW, topLabel)
		}
		if r == h-1 {
			label = fmt.Sprintf("%*s", labW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labW), strings.Repeat("-", w))
	left := trimNum(minX)
	right := trimNum(maxX)
	gap := w - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", labW), left, strings.Repeat(" ", gap), right)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	}
	b.WriteByte('\n')
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "y: %s;  ", c.YLabel)
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(legend, "   "))
	return b.String()
}

// Bars renders a grouped horizontal bar chart (used for the Figure 6
// normalized-runtime comparison).
func Bars(title string, labels []string, groups []string, values [][]float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxV := 0.0
	for _, row := range values {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	grpW := 0
	for _, g := range groups {
		if len(g) > grpW {
			grpW = len(g)
		}
	}
	for i, l := range labels {
		for j, g := range groups {
			v := 0.0
			if i < len(values) && j < len(values[i]) {
				v = values[i][j]
			}
			n := int(v / maxV * float64(width))
			name := ""
			if j == 0 {
				name = l
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s %s\n", labW, name, grpW, g,
				strings.Repeat("=", n), trimNum(v))
		}
	}
	return b.String()
}

// trimNum formats a float compactly.
func trimNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01 || av == 0:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}
