package arb

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinFairness(t *testing.T) {
	r := NewRoundRobin(4)
	req := []bool{true, true, true, true}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[r.Grant(req)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("requester %d won %d of 400", i, c)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	r := NewRoundRobin(3)
	req := []bool{false, true, false}
	for i := 0; i < 10; i++ {
		if w := r.Grant(req); w != 1 {
			t.Fatalf("granted %d, want 1", w)
		}
	}
}

func TestRoundRobinNoRequests(t *testing.T) {
	r := NewRoundRobin(3)
	if w := r.Grant([]bool{false, false, false}); w != -1 {
		t.Fatalf("granted %d with no requests", w)
	}
}

func TestRoundRobinPointerAdvances(t *testing.T) {
	r := NewRoundRobin(2)
	req := []bool{true, true}
	a := r.Grant(req)
	b := r.Grant(req)
	if a == b {
		t.Fatal("same requester won twice in a row under full load")
	}
}

func TestGrantMaskMatchesGrant(t *testing.T) {
	if err := quick.Check(func(mask uint8, seed uint8) bool {
		n := 8
		a := NewRoundRobin(n)
		b := NewRoundRobin(n)
		// Desynchronize both the same way.
		for i := 0; i < int(seed%7); i++ {
			a.Grant([]bool{true, true, true, true, true, true, true, true})
			b.GrantMask(0xFF)
		}
		req := make([]bool, n)
		for i := 0; i < n; i++ {
			req[i] = mask&(1<<uint(i)) != 0
		}
		return a.Grant(req) == b.GrantMask(uint64(mask))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdvance(t *testing.T) {
	r := NewRoundRobin(3)
	r.Advance(2)
	if r.Next() != 0 {
		t.Fatalf("Advance(2) left pointer at %d", r.Next())
	}
	r.Advance(0)
	if r.Next() != 1 {
		t.Fatalf("Advance(0) left pointer at %d", r.Next())
	}
}

// checkMatching verifies an allocation is a valid matching for req.
func checkMatching(t *testing.T, req []uint64, grants []int) {
	t.Helper()
	usedIn := map[int]bool{}
	for o, i := range grants {
		if i < 0 {
			continue
		}
		if req[i]&(1<<uint(o)) == 0 {
			t.Fatalf("output %d granted to non-requesting input %d", o, i)
		}
		if usedIn[i] {
			t.Fatalf("input %d matched twice", i)
		}
		usedIn[i] = true
	}
}

func TestSeparableValidMatching(t *testing.T) {
	s := NewSeparable(4, 4)
	if err := quick.Check(func(r0, r1, r2, r3 uint8) bool {
		req := []uint64{uint64(r0 & 0xF), uint64(r1 & 0xF), uint64(r2 & 0xF), uint64(r3 & 0xF)}
		grants := s.Allocate(req)
		usedIn := map[int]bool{}
		for o, i := range grants {
			if i < 0 {
				continue
			}
			if req[i]&(1<<uint(o)) == 0 || usedIn[i] {
				return false
			}
			usedIn[i] = true
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparableWorkConserving(t *testing.T) {
	// With a single requesting input, its request must be granted.
	s := NewSeparable(4, 4)
	for o := 0; o < 4; o++ {
		req := []uint64{0, 1 << uint(o), 0, 0}
		grants := s.Allocate(req)
		if grants[o] != 1 {
			t.Fatalf("lone request for output %d not granted: %v", o, grants)
		}
	}
}

func TestSeparablePermutationFullMatch(t *testing.T) {
	// A permutation request pattern must be fully matched.
	s := NewSeparable(4, 4)
	req := []uint64{1 << 2, 1 << 0, 1 << 3, 1 << 1}
	grants := s.Allocate(req)
	matched := 0
	for _, i := range grants {
		if i >= 0 {
			matched++
		}
	}
	if matched != 4 {
		t.Fatalf("permutation matched %d of 4: %v", matched, grants)
	}
	checkMatching(t, req, grants)
}

func TestSeparableHotOutputFairness(t *testing.T) {
	// All inputs requesting one output: over N rounds each wins equally.
	s := NewSeparable(4, 4)
	req := []uint64{1, 1, 1, 1}
	counts := make([]int, 4)
	for round := 0; round < 400; round++ {
		grants := s.Allocate(req)
		if grants[0] < 0 {
			t.Fatal("hot output not granted")
		}
		counts[grants[0]]++
	}
	for i, c := range counts {
		if c < 80 || c > 120 {
			t.Fatalf("input %d won %d of 400 (unfair)", i, c)
		}
	}
}

func TestSeparableConflictResolution(t *testing.T) {
	// Two inputs both requesting outputs {0,1}: both should be served in
	// one pass (input-stage conflict resolution finds the 2-matching at
	// least sometimes; over rounds, throughput must average > 1).
	s := NewSeparable(2, 2)
	req := []uint64{3, 3}
	total := 0
	for round := 0; round < 100; round++ {
		grants := s.Allocate(req)
		for _, i := range grants {
			if i >= 0 {
				total++
			}
		}
	}
	if total < 150 {
		t.Fatalf("separable allocator matched only %d of 200 possible", total)
	}
}
