// Package arb provides the arbitration primitives of the tiled switch: a
// round-robin arbiter and the separable output-first allocator used by the
// tile crossbars (Becker & Dally, "Allocator Implementations for
// Network-on-Chip Routers").
package arb

import "math/bits"

// RoundRobin is a work-conserving round-robin arbiter over n requesters.
// The grant pointer advances past the winner so every requester is served
// within n arbitration rounds (strong fairness under persistent requests).
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n requesters.
func NewRoundRobin(n int) RoundRobin { return RoundRobin{n: n} }

// Grant returns the index of the winning requester, scanning from the
// pointer, or -1 when no requests are asserted. req must have length n.
func (r *RoundRobin) Grant(req []bool) int {
	for i := 0; i < r.n; i++ {
		k := r.next + i
		if k >= r.n {
			k -= r.n
		}
		if req[k] {
			r.next = k + 1
			if r.next == r.n {
				r.next = 0
			}
			return k
		}
	}
	return -1
}

// Next returns the current scan-start position, for callers that fold the
// eligibility test into their own scan loop.
func (r *RoundRobin) Next() int { return r.next }

// Advance moves the pointer past an externally-chosen winner.
func (r *RoundRobin) Advance(winner int) {
	r.next = winner + 1
	if r.next >= r.n {
		r.next = 0
	}
}

// GrantMask is Grant over a bitmask of up to 64 requesters.
func (r *RoundRobin) GrantMask(req uint64) int {
	if req == 0 {
		return -1
	}
	for i := 0; i < r.n; i++ {
		k := r.next + i
		if k >= r.n {
			k -= r.n
		}
		if req&(1<<uint(k)) != 0 {
			r.next = k + 1
			if r.next == r.n {
				r.next = 0
			}
			return k
		}
	}
	return -1
}

// Separable is a separable output-first allocator matching I input
// requesters to O output resources. Each output has a round-robin arbiter
// over inputs and each input has a round-robin arbiter over outputs; a
// single allocation pass runs output arbitration first, then input
// arbitration over the provisional grants. The result is a conflict-free
// (partial) matching computed in one cycle.
type Separable struct {
	out  []RoundRobin // per-output arbiter over inputs
	in   []RoundRobin // per-input arbiter over outputs
	prov []int        // provisional winner per output (input index or -1)
	won  []uint64     // per-input bitmask of provisionally granted outputs
}

// NewSeparable builds an allocator with numIn inputs and numOut outputs.
// numOut must be at most 64.
func NewSeparable(numIn, numOut int) *Separable {
	if numOut > 64 {
		panic("arb: separable allocator limited to 64 outputs")
	}
	s := &Separable{
		out:  make([]RoundRobin, numOut),
		in:   make([]RoundRobin, numIn),
		prov: make([]int, numOut),
		won:  make([]uint64, numIn),
	}
	for i := range s.out {
		s.out[i] = NewRoundRobin(numIn)
	}
	for i := range s.in {
		s.in[i] = NewRoundRobin(numOut)
	}
	return s
}

// Allocate computes a matching. req[i] is the bitmask of outputs requested
// by input i. The returned slice maps each output to its matched input, or
// -1. The slice is reused across calls.
func (s *Separable) Allocate(req []uint64) []int {
	for o := range s.prov {
		s.prov[o] = -1
	}
	for i := range s.won {
		s.won[i] = 0
	}
	// Output stage: each output picks among requesting inputs.
	for o := range s.out {
		bit := uint64(1) << uint(o)
		a := &s.out[o]
		for k := 0; k < len(req); k++ {
			idx := a.next + k
			if idx >= len(req) {
				idx -= len(req)
			}
			if req[idx]&bit != 0 {
				s.prov[o] = idx
				s.won[idx] |= bit
				break
			}
		}
	}
	// Input stage: each input accepts one of its provisional grants.
	for i := range s.won {
		if s.won[i] == 0 {
			continue
		}
		o := s.in[i].GrantMask(s.won[i])
		// Cancel the grants this input declined and advance the
		// accepted output's pointer past the winner.
		for b := s.won[i]; b != 0; b &= b - 1 {
			oo := bits.TrailingZeros64(b)
			if oo != o {
				s.prov[oo] = -1
			}
		}
		a := &s.out[o]
		a.next = i + 1
		if a.next == len(req) {
			a.next = 0
		}
	}
	return s.prov
}
