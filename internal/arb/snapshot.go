package arb

import "stashsim/internal/snapshot"

// Checkpoint hooks. Arbiter pointers are part of the deterministic
// machine state: a restored switch must grant in exactly the order the
// original would have, so every round-robin pointer is captured. The
// Separable allocator's prov/won scratch is recomputed from scratch on
// every Allocate call and is not state.

// EncodeState appends the arbiter's grant pointer (the requester count
// is structural and comes from the rebuilt configuration).
func (r *RoundRobin) EncodeState(w *snapshot.Writer) {
	w.U32(uint32(r.next))
}

// DecodeState restores the grant pointer, validating it against the
// arbiter's structural size.
func (r *RoundRobin) DecodeState(rd *snapshot.Reader) {
	v := rd.U32()
	if rd.Err() != nil {
		return
	}
	if int(v) >= r.n && !(r.n == 0 && v == 0) {
		rd.Failf("arb: round-robin pointer %d out of range [0,%d)", v, r.n)
		return
	}
	r.next = int(v)
}

// EncodeState appends every per-output and per-input arbiter pointer.
func (s *Separable) EncodeState(w *snapshot.Writer) {
	w.Count(len(s.out))
	for i := range s.out {
		s.out[i].EncodeState(w)
	}
	w.Count(len(s.in))
	for i := range s.in {
		s.in[i].EncodeState(w)
	}
}

// DecodeState restores the arbiter pointers, validating the structural
// shape against the rebuilt allocator.
func (s *Separable) DecodeState(rd *snapshot.Reader) {
	if n := rd.Count(4); rd.Err() == nil && n != len(s.out) {
		rd.Failf("arb: separable allocator has %d outputs, snapshot has %d", len(s.out), n)
	}
	if rd.Err() != nil {
		return
	}
	for i := range s.out {
		s.out[i].DecodeState(rd)
	}
	if n := rd.Count(4); rd.Err() == nil && n != len(s.in) {
		rd.Failf("arb: separable allocator has %d inputs, snapshot has %d", len(s.in), n)
	}
	if rd.Err() != nil {
		return
	}
	for i := range s.in {
		s.in[i].DecodeState(rd)
	}
}
