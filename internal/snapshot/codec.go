// Package snapshot implements the low-level binary codec for bit-exact
// simulator checkpoints: a versioned, self-describing, little-endian
// format with section tags, length-guarded strings and counts, and a
// sticky-error reader that makes decode paths safe against truncated,
// version-skewed, or hostile input (no panics, no unbounded allocation).
//
// The package deliberately depends only on the standard library and
// internal/proto (for the canonical flit wire format): every stateful
// package encodes its own unexported fields through per-package
// EncodeState/DecodeState hooks that take a *snapshot.Writer /
// *snapshot.Reader, and internal/network orchestrates the whole-network
// capture. Higher layers never touch raw bytes.
//
// Format: a 14-byte header — magic "STAS" (u32), version (u16), total
// byte length including the header (u64) — followed by tagged sections.
// Integers are fixed-width little-endian; floats are IEEE-754 bit
// patterns; booleans are canonical 0/1 bytes; strings and repeated
// groups are length-prefixed with u32 counts validated against the
// bytes remaining, so a hostile count can never force an allocation
// larger than the input itself.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"

	"stashsim/internal/proto"
)

const (
	// Magic identifies a stashsim snapshot ("STAS", little-endian).
	Magic uint32 = 0x53544153
	// Version is the current snapshot format version. Readers reject any
	// other version: the format describes unexported simulator state, so
	// cross-version compatibility is out of scope by design.
	Version uint16 = 1
	// headerSize is magic + version + total length.
	headerSize = 4 + 2 + 8
)

// Writer builds one snapshot. Use NewWriter, append with the typed
// methods, and call Finish to patch the length header and obtain the
// bytes. The zero value is not usable.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the header fields pre-written (the
// total length is patched by Finish).
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.U32(Magic)
	w.U16(Version)
	w.U64(0) // total length, patched by Finish
	return w
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I32 appends an int32 as its two's-complement bits.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64 as its two's-complement bits.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a canonical 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Str appends a u32 length prefix followed by the string bytes.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Count appends a u32 element count for a repeated group.
func (w *Writer) Count(n int) { w.U32(uint32(n)) }

// Section appends a 4-character ASCII section tag. Tags make snapshots
// self-describing: a reader that desynchronizes fails loudly at the next
// tag instead of silently misinterpreting bytes.
func (w *Writer) Section(label string) {
	if len(label) != 4 {
		panic(fmt.Sprintf("snapshot: section label %q is not 4 bytes", label))
	}
	w.buf = append(w.buf, label...)
}

// Flit appends one flit in the canonical proto wire encoding.
func (w *Writer) Flit(f *proto.Flit) {
	w.buf = proto.AppendFlit(w.buf, f)
}

// Len returns the number of bytes written so far, header included.
func (w *Writer) Len() int { return len(w.buf) }

// Finish patches the total-length header and returns the snapshot bytes.
// The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	binary.LittleEndian.PutUint64(w.buf[6:], uint64(len(w.buf)))
	return w.buf
}

// Reader decodes one snapshot. Errors are sticky: after the first
// failure every getter returns a zero value and Err reports the cause,
// so decode paths read straight through without per-call error checks
// and validate once at the end (or at natural section boundaries).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the header (magic, version, and that the recorded
// total length matches the input exactly — no trailing garbage, no
// truncation) and positions the reader after it.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x (want %#x)", m, Magic)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", v, Version)
	}
	if n := binary.LittleEndian.Uint64(data[6:]); n != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: header declares %d bytes, input has %d", n, len(data))
	}
	return &Reader{buf: data, off: headerSize}, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Failf records a decode error (first one wins). Decode hooks use it to
// report semantic validation failures — out-of-range indexes, mismatched
// structure — through the same sticky channel as codec-level failures.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// Remaining returns the number of unread bytes (0 after an error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// need reserves n bytes, recording an error when fewer remain.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf)-r.off < n {
		r.Failf("truncated: need %d bytes at offset %d, %d remain", n, r.off, len(r.buf)-r.off)
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a canonical 0/1 byte; any other value is an error (the
// encoding is canonical so round-trips are byte-identical).
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.Failf("non-canonical bool byte %#x at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// Str reads a length-prefixed string. The length is validated against
// the remaining input before any allocation.
func (r *Reader) Str() string {
	n := r.Count(1)
	if r.err != nil || !r.need(n) {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Count reads a u32 element count and validates it against the bytes
// remaining: each element occupies at least elemMin bytes (use 1 for
// variable-size elements), so a hostile count can never drive an
// allocation beyond the input size.
func (r *Reader) Count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemMin) > int64(len(r.buf)-r.off) {
		r.Failf("count %d at offset %d exceeds remaining input (%d bytes, >=%d each)",
			n, r.off-4, len(r.buf)-r.off, elemMin)
		return 0
	}
	return int(n)
}

// Section consumes a 4-character section tag and verifies it matches.
func (r *Reader) Section(label string) {
	if len(label) != 4 {
		panic(fmt.Sprintf("snapshot: section label %q is not 4 bytes", label))
	}
	if !r.need(4) {
		return
	}
	got := r.buf[r.off : r.off+4]
	r.off += 4
	if string(got) != label {
		r.Failf("section tag %q at offset %d, want %q", printableTag(got), r.off-4, label)
	}
}

// Flit reads one flit in the canonical proto wire encoding, with the
// proto codec's full range validation.
func (r *Reader) Flit() proto.Flit {
	if r.err != nil {
		return proto.Flit{}
	}
	f, n, err := proto.DecodeFlit(r.buf[r.off:])
	if err != nil {
		r.Failf("flit at offset %d: %v", r.off, err)
		return proto.Flit{}
	}
	r.off += n
	return f
}

// Close verifies the whole input was consumed; trailing bytes mean the
// decode path and the snapshot disagree about structure.
func (r *Reader) Close() error {
	if r.err == nil && r.off != len(r.buf) {
		r.Failf("%d trailing bytes after decode", len(r.buf)-r.off)
	}
	return r.err
}

// printableTag renders a possibly-binary section tag for error messages.
func printableTag(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 0x20 && c < 0x7f {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
