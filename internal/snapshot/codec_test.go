package snapshot

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"stashsim/internal/proto"
)

// testFlit returns a representative valid flit for codec round trips.
func testFlit() proto.Flit {
	return proto.Flit{
		Src: 3, Dst: 7, MsgID: 42, PktID: proto.MakePktID(3, 9),
		Birth: 1234, Seq: 1, Size: 4, VC: 1, Out: 5, OrigOut: 5,
		Kind: proto.Data, Flags: proto.FlagTail, Class: proto.ClassDefault,
		Phase: proto.PhaseMinimal, Hops: 2, MidGroup: -1, Csum: 0xBEEF,
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("TEST")
	w.U8(0xAB)
	w.U16(0xCDEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.I32(-12345)
	w.I64(-1 << 60)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.Str("hello, snapshot")
	w.Str("")
	w.Count(3)
	f := testFlit()
	w.Flit(&f)
	data := w.Finish()

	if got := binary.LittleEndian.Uint64(data[6:]); got != uint64(len(data)) {
		t.Fatalf("Finish patched length %d, want %d", got, len(data))
	}

	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.Section("TEST")
	if v := rd.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := rd.U16(); v != 0xCDEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := rd.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := rd.U64(); v != 0x0102030405060708 {
		t.Errorf("U64 = %#x", v)
	}
	if v := rd.I32(); v != -12345 {
		t.Errorf("I32 = %d", v)
	}
	if v := rd.I64(); v != -1<<60 {
		t.Errorf("I64 = %d", v)
	}
	if v := rd.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := rd.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 inf = %v", v)
	}
	if !rd.Bool() || rd.Bool() {
		t.Error("Bool round trip failed")
	}
	if s := rd.Str(); s != "hello, snapshot" {
		t.Errorf("Str = %q", s)
	}
	if s := rd.Str(); s != "" {
		t.Errorf("empty Str = %q", s)
	}
	if n := rd.Count(1); n != 3 {
		t.Errorf("Count = %d", n)
	}
	if got := rd.Flit(); got != f {
		t.Errorf("Flit round trip: %+v != %+v", got, f)
	}
	if err := rd.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReaderRejectsBadHeaders(t *testing.T) {
	valid := func() []byte {
		w := NewWriter()
		w.U64(7)
		return w.Finish()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "shorter than"},
		{"short", valid()[:10], "shorter than"},
		{"bad-magic", func() []byte {
			d := append([]byte(nil), valid()...)
			d[0] ^= 0xFF
			return d
		}(), "bad magic"},
		{"version-skew", func() []byte {
			d := append([]byte(nil), valid()...)
			binary.LittleEndian.PutUint16(d[4:], Version+1)
			return d
		}(), "unsupported format version"},
		{"truncated-body", func() []byte {
			d := valid()
			return d[:len(d)-3]
		}(), "declares"},
		{"trailing-garbage", append(valid(), 0xFF), "declares"},
		{"hostile-length", func() []byte {
			d := append([]byte(nil), valid()...)
			binary.LittleEndian.PutUint64(d[6:], 1<<62)
			return d
		}(), "declares"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewReader(c.data)
			if err == nil {
				t.Fatal("NewReader accepted hostile input")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestReaderErrorsAreSticky(t *testing.T) {
	w := NewWriter()
	w.U32(5)
	data := w.Finish()
	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.U32()
	rd.U64() // truncated: only the header remains
	if rd.Err() == nil {
		t.Fatal("reading past the end did not error")
	}
	first := rd.Err()
	// Every later getter returns zero values and preserves the first error.
	if v := rd.U8(); v != 0 {
		t.Errorf("U8 after error = %d", v)
	}
	if v := rd.I64(); v != 0 {
		t.Errorf("I64 after error = %d", v)
	}
	if s := rd.Str(); s != "" {
		t.Errorf("Str after error = %q", s)
	}
	if n := rd.Count(1); n != 0 {
		t.Errorf("Count after error = %d", n)
	}
	if rd.Remaining() != 0 {
		t.Errorf("Remaining after error = %d", rd.Remaining())
	}
	rd.Failf("later failure")
	if rd.Err() != first {
		t.Errorf("first error was overwritten: %v", rd.Err())
	}
}

func TestCountGuardsOverAllocation(t *testing.T) {
	// A count claiming a billion 43-byte elements in a tiny input must be
	// rejected before any allocation sized from it.
	w := NewWriter()
	w.Count(1 << 30)
	data := w.Finish()
	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if n := rd.Count(43); n != 0 {
		t.Fatalf("hostile count passed the guard: %d", n)
	}
	if rd.Err() == nil || !strings.Contains(rd.Err().Error(), "exceeds remaining") {
		t.Fatalf("want over-allocation error, got %v", rd.Err())
	}

	// Same for strings: the length prefix is validated against the input.
	w = NewWriter()
	w.U32(1 << 31)
	data = w.Finish()
	rd, _ = NewReader(data)
	if s := rd.Str(); s != "" || rd.Err() == nil {
		t.Fatalf("hostile string length accepted: %q, %v", s, rd.Err())
	}
}

func TestSectionMismatchAndBadBool(t *testing.T) {
	w := NewWriter()
	w.Section("AAAA")
	w.U8(7) // non-canonical bool
	data := w.Finish()

	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.Section("BBBB")
	if rd.Err() == nil || !strings.Contains(rd.Err().Error(), `"AAAA"`) {
		t.Fatalf("section mismatch error: %v", rd.Err())
	}

	rd, _ = NewReader(data)
	rd.Section("AAAA")
	rd.Bool()
	if rd.Err() == nil || !strings.Contains(rd.Err().Error(), "non-canonical bool") {
		t.Fatalf("bad bool error: %v", rd.Err())
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	w := NewWriter()
	w.U32(1)
	w.U32(2)
	data := w.Finish()
	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.U32()
	if err := rd.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Close accepted trailing bytes: %v", err)
	}
}

func TestFlitDecodeValidates(t *testing.T) {
	// A flit slot filled with 0xFF must fail the proto codec's range
	// validation, not produce a garbage flit.
	w := NewWriter()
	for i := 0; i < proto.FlitWireSize; i++ {
		w.U8(0xFF)
	}
	data := w.Finish()
	rd, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rd.Flit()
	if rd.Err() == nil {
		t.Fatal("hostile flit bytes decoded without error")
	}
}
