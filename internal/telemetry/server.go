package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"stashsim/internal/metrics"
)

// Server is the live telemetry HTTP server. All fields are optional: a
// zero Server serves an empty exposition, a healthy /healthz and pprof.
// Start it once the simulation's sinks are wired; it only ever reads.
type Server struct {
	// Registry supplies live counter series for /metrics.
	Registry *metrics.Registry
	// Publisher supplies the quiescent snapshot for /snapshot and the
	// gauge/run-level series of /metrics.
	Publisher *Publisher
	// Watchdog drives /healthz: a current unexplained zero-delivery
	// window reports 503.
	Watchdog *metrics.Watchdog

	srv *http.Server
	ln  net.Listener
}

// Handler returns the server's routes on a private mux (also used by the
// httptest-based handler tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	samples := []metrics.Sample{{Name: "up", Value: 1, IsGauge: true}}
	samples = append(samples, s.Publisher.Latest().PromSamples()...)
	samples = append(samples, s.Registry.CounterSamples()...)
	samples = append(samples, s.Registry.HistSamples()...)
	metrics.WriteProm(w, samples)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.Publisher.Latest()
	if snap == nil {
		snap = &Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Watchdog.Stalled() {
		http.Error(w, "stalled: zero-delivery window with work pending", http.StatusServiceUnavailable)
		return
	}
	var cycle int64
	if snap := s.Publisher.Latest(); snap != nil {
		cycle = snap.Cycle
	}
	fmt.Fprintf(w, "ok cycle=%d\n", cycle)
}

// NotifyDumps installs a SIGQUIT handler that writes dump(w) on each
// signal and keeps the process running — a post-mortem peek at a live
// sim. It returns a stop function restoring default signal behavior.
func NotifyDumps(w io.Writer, dump func(io.Writer)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					return
				}
				dump(w)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
