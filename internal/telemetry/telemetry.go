// Package telemetry serves live observability for a running simulation:
// a stdlib-only HTTP server exposing the metrics registry in Prometheus
// text exposition format, a JSON state snapshot, watchdog-driven
// liveness, and pprof — the first concrete slice of simulation-as-a-
// service.
//
// The design splits reads by safety class. Registry counters are atomic
// and may be read at any instant, so /metrics reads them live. Gauges and
// network aggregates walk unsynchronized component state, so they are
// captured only from the serial PostCycle hook into an immutable Snapshot
// published through an atomic pointer; the HTTP goroutine only ever loads
// that pointer. The simulation therefore never blocks on a scrape, scrape
// results never tear, and determinism is untouched (the server performs
// no writes into simulation state). This package is intentionally outside
// the determinism-linted set: it may use goroutines, time and the
// network, and must never be imported by component code on the hot path —
// the network integrates with it only through nil-safe hook calls.
package telemetry

import (
	"sync/atomic"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/sim"
)

// WatchdogState is the liveness slice of a snapshot.
type WatchdogState struct {
	Stalled    bool  `json:"stalled"`
	Stalls     int64 `json:"stalls"`
	Suppressed int64 `json:"suppressed"`
}

// FlightTail is the flight recorder's recent-cycle table in a snapshot.
type FlightTail struct {
	Fields []string  `json:"fields"`
	Rows   [][]int64 `json:"rows"`
}

// Snapshot is one immutable published view of the simulation, built in
// the serial PostCycle hook (network quiescent) and handed to readers by
// pointer. Everything in it is a copy; readers never chase live state.
type Snapshot struct {
	Cycle             int64           `json:"cycle"`
	Counters          core.Counters   `json:"counters"`
	InjectedPkts      int64           `json:"injected_pkts"`
	DeliveredPkts     int64           `json:"delivered_pkts"`
	DupPkts           int64           `json:"dup_pkts"`
	AbandonedPkts     int64           `json:"abandoned_pkts"`
	DeliveredFlits    int64           `json:"delivered_flits"`
	QueuedFlits       int64           `json:"queued_flits"`
	StashUsed         int             `json:"stash_used"`
	CreditStallCycles int64           `json:"credit_stall_cycles"`
	Fault             *fault.Stats    `json:"fault,omitempty"`
	Watchdog          *WatchdogState  `json:"watchdog,omitempty"`
	ExecProfile       *sim.ExecReport `json:"exec_profile,omitempty"`
	Gauges            []GaugeSample   `json:"gauges,omitempty"`
	Flight            *FlightTail     `json:"flight,omitempty"`
}

// GaugeSample is one captured gauge value (JSON-friendly mirror of
// metrics.Sample).
type GaugeSample struct {
	Scope string  `json:"scope"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Publisher owns the snapshot hand-off between the simulation loop and
// the HTTP goroutine. Build runs on the simulation side (PostCycle, so it
// may walk live state freely); Latest is wait-free for readers. A nil
// *Publisher is a no-op, so the network's hook call costs one branch when
// telemetry is disabled.
type Publisher struct {
	build func() *Snapshot
	every int64
	cur   atomic.Pointer[Snapshot]
}

// NewPublisher returns a publisher that refreshes the snapshot every
// `every` cycles (values below one are clamped to 64). It publishes an
// initial snapshot immediately so readers never observe nil.
func NewPublisher(build func() *Snapshot, every int64) *Publisher {
	if every < 1 {
		every = 64
	}
	p := &Publisher{build: build, every: every}
	p.cur.Store(build())
	return p
}

// Every returns the publication interval in cycles.
func (p *Publisher) Every() int64 { return p.every }

// MaybePublish refreshes the snapshot at the publication interval. Called
// once per cycle from the serial PostCycle hook.
//
//stashsim:phase serial -- build() walks live simulation state; only the coordinator may run it
func (p *Publisher) MaybePublish(now int64) {
	if p == nil {
		return
	}
	if now%p.every == 0 {
		p.cur.Store(p.build())
	}
}

// Publish forces an immediate refresh (end of run, signal dump).
//
//stashsim:phase serial -- build() walks live simulation state; only the coordinator may run it
func (p *Publisher) Publish() {
	if p == nil {
		return
	}
	p.cur.Store(p.build())
}

// Latest returns the most recently published snapshot (nil only for a
// nil publisher).
//
//stashsim:phase parallel -- wait-free atomic pointer load; the HTTP goroutine's read side
func (p *Publisher) Latest() *Snapshot {
	if p == nil {
		return nil
	}
	return p.cur.Load()
}

// PromSamples flattens a snapshot into run-level exposition series:
// progress counters plus every captured gauge. Registry counters are NOT
// included — the server reads those live.
func (s *Snapshot) PromSamples() []metrics.Sample {
	if s == nil {
		return nil
	}
	out := []metrics.Sample{
		{Name: "cycle", Value: float64(s.Cycle), IsGauge: true},
		{Name: "injected_pkts_total", Value: float64(s.InjectedPkts)},
		{Name: "delivered_pkts_total", Value: float64(s.DeliveredPkts)},
		{Name: "dup_pkts_total", Value: float64(s.DupPkts)},
		{Name: "abandoned_pkts_total", Value: float64(s.AbandonedPkts)},
		{Name: "delivered_flits_total", Value: float64(s.DeliveredFlits)},
		{Name: "queued_flits", Value: float64(s.QueuedFlits), IsGauge: true},
		{Name: "stash_used", Value: float64(s.StashUsed), IsGauge: true},
		{Name: "credit_stall_cycles_total", Value: float64(s.CreditStallCycles)},
	}
	if s.Watchdog != nil {
		stalled := 0.0
		if s.Watchdog.Stalled {
			stalled = 1
		}
		out = append(out,
			metrics.Sample{Name: "watchdog_stalled", Value: stalled, IsGauge: true},
			metrics.Sample{Name: "watchdog_stalls_total", Value: float64(s.Watchdog.Stalls)},
		)
	}
	for _, g := range s.Gauges {
		out = append(out, metrics.Sample{Scope: g.Scope, Name: g.Name, Value: g.Value, IsGauge: true})
	}
	return out
}
