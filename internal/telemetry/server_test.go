package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/metrics"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/telemetry"
	"stashsim/internal/traffic"
)

// buildNet wires a tiny network with uniform traffic, mirroring the
// network package's own test harness.
func buildNet(t *testing.T, load float64, seed uint64) *network.Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := network.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := sim.NewRNG(seed)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	return n
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlers(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Scope("sw0").Counter("stash.stores").Add(5)
	snap := &telemetry.Snapshot{Cycle: 123, DeliveredPkts: 7}
	pub := telemetry.NewPublisher(func() *telemetry.Snapshot { return snap }, 64)
	srv := &telemetry.Server{Registry: reg, Publisher: pub}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts.Client(), ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"stashsim_up 1",
		"stashsim_cycle 123",
		"stashsim_delivered_pkts_total 7",
		`stashsim_stash_stores{scope="sw0"} 5`,
		"# TYPE stashsim_stash_stores counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts.Client(), ts.URL+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	var decoded telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if decoded.Cycle != 123 || decoded.DeliveredPkts != 7 {
		t.Fatalf("/snapshot decoded %+v", decoded)
	}

	code, body = get(t, ts.Client(), ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok cycle=123") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, _ = get(t, ts.Client(), ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestHealthzStalled(t *testing.T) {
	// Drive a real watchdog into a stall: pending work, zero deliveries.
	w := &metrics.Watchdog{
		Window:    5,
		Delivered: func() int64 { return 0 },
		Pending:   func() bool { return true },
	}
	for now := int64(0); now <= 10; now++ {
		w.Observe(now)
	}
	if !w.Stalled() {
		t.Fatal("watchdog should be stalled")
	}
	srv := &telemetry.Server{Watchdog: w}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := get(t, ts.Client(), ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "stalled") {
		t.Fatalf("/healthz on stall = %d %q", code, body)
	}
}

func TestZeroServer(t *testing.T) {
	ts := httptest.NewServer((&telemetry.Server{}).Handler())
	defer ts.Close()
	if code, _ := get(t, ts.Client(), ts.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics on zero server: %d", code)
	}
	if code, _ := get(t, ts.Client(), ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz on zero server: %d", code)
	}
}

// TestObsSmoke is the live end-to-end pass CI runs under -race: a real
// simulation serving /metrics and /healthz while scrapers hammer it from
// other goroutines. Any unsynchronized read between the HTTP path and the
// simulation loop is a race failure here.
func TestObsSmoke(t *testing.T) {
	n := buildNet(t, 0.3, 42)
	defer n.Close()
	reg := metrics.NewRegistry()
	n.EnableMetrics(reg)
	n.AttachWatchdog(2000, io.Discard)
	n.AttachFlight(256)
	// Two workers: the profiler's worker lanes record concurrently with
	// the scrapers reading Report() through the snapshot path.
	n.SetWorkers(2)
	n.EnableExecProfile(0)
	pub := n.AttachTelemetry(64)
	srv := &telemetry.Server{Registry: reg, Publisher: pub, Watchdog: n.Watchdog}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		client := &http.Client{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, path))
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	wg.Add(2)
	go scrape("/metrics")
	go scrape("/healthz")

	n.Run(8000)
	close(stop)
	wg.Wait()

	// After the run: one final publish, then assert the scrape views agree
	// with the simulation.
	pub.Publish()
	client := &http.Client{}
	code, body := get(t, client, fmt.Sprintf("http://%s/metrics", addr))
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "stashsim_cycle 8000") {
		t.Fatalf("final /metrics missing cycle:\n%.400s", body)
	}
	if n.TotalDeliveredFlits() == 0 {
		t.Fatal("smoke run delivered nothing")
	}
	if !strings.Contains(body, "stashsim_delivered_flits_total") {
		t.Fatalf("final /metrics missing delivered flits series")
	}
	code, body = get(t, client, fmt.Sprintf("http://%s/healthz", addr))
	if code != http.StatusOK {
		t.Fatalf("/healthz after run = %d %q", code, body)
	}
	code, body = get(t, client, fmt.Sprintf("http://%s/snapshot", addr))
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Cycle != 8000 || snap.DeliveredFlits != n.TotalDeliveredFlits() {
		t.Fatalf("snapshot disagrees with sim: cycle=%d flits=%d want %d",
			snap.Cycle, snap.DeliveredFlits, n.TotalDeliveredFlits())
	}
	if snap.ExecProfile == nil || snap.ExecProfile.Cycles != 8000 {
		t.Fatalf("snapshot exec profile missing or short: %+v", snap.ExecProfile)
	}
	if snap.Flight == nil || len(snap.Flight.Rows) == 0 {
		t.Fatal("snapshot missing flight tail")
	}
}

// TestServeDoesNotPerturbDeterminism runs the same seeded spec bare and
// fully instrumented (profiler, flight, telemetry, live scraping) and
// requires identical simulation outcomes.
func TestServeDoesNotPerturbDeterminism(t *testing.T) {
	outcome := func(instrument bool) string {
		n := buildNet(t, 0.25, 7)
		defer n.Close()
		var srv *telemetry.Server
		if instrument {
			reg := metrics.NewRegistry()
			n.EnableMetrics(reg)
			n.AttachFlight(128)
			n.EnableExecProfile(32)
			pub := n.AttachTelemetry(32)
			srv = &telemetry.Server{Registry: reg, Publisher: pub}
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				client := &http.Client{}
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, p := range []string{"/metrics", "/snapshot", "/healthz"} {
						if resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, p)); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}()
			defer func() { close(stop); <-done }()
		}
		n.Run(5000)
		c := n.Counters()
		inj, del, dups, ab := n.DeliveryTotals()
		b, err := json.Marshal(struct {
			C                  core.Counters
			Inj, Del, Dups, Ab int64
			Flits              int64
		}{c, inj, del, dups, ab, n.TotalDeliveredFlits()})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	bare := outcome(false)
	instrumented := outcome(true)
	if bare != instrumented {
		t.Fatalf("instrumentation changed outcomes:\nbare:  %s\nwired: %s", bare, instrumented)
	}
}

func TestNotifyDumpsStop(t *testing.T) {
	var mu sync.Mutex
	var dumped int
	stop := telemetry.NotifyDumps(io.Discard, func(io.Writer) {
		mu.Lock()
		dumped++
		mu.Unlock()
	})
	stop() // must not hang or panic; double-stop safety is not required
}
