// Package sim provides the low-level simulation substrate shared by every
// other package in the repository: the cycle clock, deterministic random
// number streams, and a reusable barrier for the optional parallel executor.
//
// The simulator is cycle-stepped. One Tick equals one internal switch cycle
// (1.3 GHz in the paper's configuration); network channels serialize flits
// at 10 flits per 13 ticks through rate accumulators, which reproduces the
// paper's "30% internal speedup" without a second clock domain.
package sim

// Tick is the simulation time unit: one internal switch cycle.
type Tick = int64

// RNG is a small, fast, deterministic random number generator (splitmix64).
// Every component that needs randomness owns its own RNG seeded from the
// experiment master seed, so simulations are reproducible and independent of
// component iteration order.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. Distinct seeds produce
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm the state so that nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Derive returns a new RNG whose stream is a deterministic function of the
// parent seed and the given stream identifier. It does not perturb the
// parent's state.
func (r *RNG) Derive(stream uint64) *RNG {
	return NewRNG(r.state ^ (stream+1)*0x9E3779B97F4A7C15)
}

// State returns the full generator state (splitmix64 is its own state),
// for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator state, restoring a checkpointed
// stream exactly where it left off.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 uniformly random bits.
//
//stashsim:noalloc
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
//
//stashsim:noalloc
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here;
	// the modulo bias for n << 2^64 is negligible for simulation purposes,
	// but we use the widening multiply to avoid it entirely.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Int63 returns a uniformly random non-negative int64.
//
//stashsim:noalloc
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly random float64 in [0, 1).
//
//stashsim:noalloc
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
//
//stashsim:noalloc
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
//
//stashsim:noalloc
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + (t >> 32) + (a0*b1+t&mask32)>>32
	return hi, lo
}
