package sim

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// The executor stall profiler answers "why doesn't parallel scale?": it
// attributes every nanosecond of a Run's wall time to phase work (stepping
// components), barrier waits (release wait — the shadow of the serial
// hooks — and publish wait — straggler skew), or the serial PreCycle /
// PostCycle hooks themselves. Recording is zero-allocation (fixed-size
// log2 histograms and a preallocated ring, all atomics), so a profiled
// run differs from an unprofiled one only by clock reads, and the
// profiler may be read concurrently with the run (the telemetry snapshot
// path does exactly that from the PostCycle hook while workers record
// their publish waits).
//
// Wall-clock time is inherently nondeterministic; it never feeds the
// simulation, only the report, which is why the determinism analyzer
// suppressions below are sound.

// profEpoch anchors the monotonic clock used for all profile timestamps.
//
//lint:allow determinism -- profiler-only wall clock; never feeds simulation state
var profEpoch = time.Now()

// nowNS returns monotonic nanoseconds since process start (profiling only).
//
//stashsim:phase parallel
//stashsim:noalloc
func nowNS() int64 {
	//lint:allow allocfree -- time.Since is an allocation-free clock read
	return int64(time.Since(profEpoch)) //lint:allow determinism -- profiler-only wall clock; never feeds simulation state
}

// Phase indexes one timed region of the executor cycle.
type Phase uint8

const (
	// PhaseWorkA is time spent stepping components below the executor's
	// phase split (the network maps these to endpoints).
	PhaseWorkA Phase = iota
	// PhaseWorkB is time spent stepping components at or above the phase
	// split (the network maps these to switches).
	PhaseWorkB
	// PhaseBarrierRelease is a worker's wait at the cycle-entry barrier:
	// the shadow of the coordinator's serial hooks plus scheduling delay.
	PhaseBarrierRelease
	// PhaseBarrierPublish is a worker's wait at the cycle-exit barrier
	// after finishing its own partition: pure straggler skew.
	PhaseBarrierPublish
	// PhasePreHook is the coordinator's serial PreCycle hook.
	PhasePreHook
	// PhasePostHook is the coordinator's serial PostCycle hook (sampler,
	// watchdog, invariants, flight recorder, telemetry publish).
	PhasePostHook
	// PhaseCycleSpan is the coordinator's span between releasing the
	// workers and the last worker arriving: the parallel section of the
	// cycle as the coordinator sees it.
	PhaseCycleSpan
	// PhaseEpochDrain is a worker's time folding cross-partition link
	// inboxes at an epoch boundary (epoch-synchronized executors only).
	PhaseEpochDrain
	// NumPhases is the number of timed phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"work-a", "work-b", "barrier-release", "barrier-publish",
	"pre-hook", "post-hook", "cycle-span", "epoch-drain",
}

// String returns the phase name used in reports and trace lanes.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// phaseBuckets is the histogram resolution: bucket i counts durations
// whose bit length is i, i.e. [2^(i-1), 2^i) ns; 40 buckets cover ~9 min.
const phaseBuckets = 40

// PhaseHist is a fixed-size log2 histogram of phase durations. All fields
// are atomics so workers can record while the coordinator (or the
// telemetry snapshot path) reads; recording never allocates.
type PhaseHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [phaseBuckets]atomic.Int64
}

// rec records one duration (negative clamps to zero).
//
//stashsim:phase parallel
//stashsim:noalloc
func (h *PhaseHist) rec(d int64) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(d)
	for {
		m := h.max.Load()
		if d <= m || h.max.CompareAndSwap(m, d) {
			break
		}
	}
	b := bits.Len64(uint64(d))
	if b >= phaseBuckets {
		b = phaseBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns the number of recorded durations.
func (h *PhaseHist) Count() int64 { return h.count.Load() }

// SumNS returns the total recorded nanoseconds.
func (h *PhaseHist) SumNS() int64 { return h.sum.Load() }

// MaxNS returns the largest recorded duration.
func (h *PhaseHist) MaxNS() int64 { return h.max.Load() }

// P99NS returns an upper bound (the containing power-of-two bucket edge)
// on the 99th-percentile duration.
func (h *PhaseHist) P99NS() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	// Rank of the p99 observation, 1-based.
	rank := (n*99 + 99) / 100
	var cum int64
	for b := 0; b < phaseBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= rank {
			if b == 0 {
				return 0
			}
			return int64(1) << uint(b)
		}
	}
	return h.max.Load()
}

// ringLaneWords is the per-(cycle, lane) ring record: cycle, start
// timestamp, and one duration per recorded sub-phase (worker lanes use
// release/work-a/work-b/publish; the coordinator lane uses
// pre/span/post and leaves the fourth zero).
const ringLaneWords = 6

// profRing retains the most recent cycles' per-lane timings for the
// Chrome trace lane export and post-mortem dumps. Slots are atomics:
// each (cycle, lane) slot has exactly one writer, but readers (telemetry
// snapshots) run concurrently.
type profRing struct {
	cycles int
	lanes  int
	slots  []atomic.Int64 // cycles × lanes × ringLaneWords
}

//stashsim:phase parallel
//stashsim:noalloc
func (r *profRing) put(cycle int64, lane int, start, d0, d1, d2, d3 int64) {
	if r == nil {
		return
	}
	base := ((int(cycle%int64(r.cycles)))*r.lanes + lane) * ringLaneWords
	s := r.slots[base : base+ringLaneWords]
	s[0].Store(cycle)
	s[1].Store(start)
	s[2].Store(d0)
	s[3].Store(d1)
	s[4].Store(d2)
	s[5].Store(d3)
}

// RingRec is one retained (cycle, lane) timing record.
type RingRec struct {
	Cycle int64
	Lane  int // 0..workers-1, or workers for the coordinator
	Start int64
	Durs  [4]int64
}

// ExecProfiler collects per-worker, per-phase executor timings. Lanes
// 0..workers-1 belong to the worker goroutines (or the single serial
// lane); lane `workers` is the coordinator. Construct with
// NewExecProfiler and attach to Executor.Profiler before the first Run.
// One profiler may be shared by several executors (the figures harness
// attaches one to every sweep network): all recording is atomic, so the
// totals aggregate across them.
type ExecProfiler struct {
	workers int
	lanes   [][NumPhases]PhaseHist
	wallNS  atomic.Int64
	cycles  atomic.Int64
	epochs  atomic.Int64 // barrier synchronizations (== cycles when per-cycle)
	ring    *profRing

	labelA, labelB string
}

// NewExecProfiler returns a profiler for an executor with the given
// worker count (values below one profile the serial path's single lane).
// ringCycles > 0 retains the most recent ringCycles cycles of raw lane
// timings for the Chrome trace export; 0 disables the ring.
func NewExecProfiler(workers, ringCycles int) *ExecProfiler {
	if workers < 1 {
		workers = 1
	}
	p := &ExecProfiler{
		workers: workers,
		lanes:   make([][NumPhases]PhaseHist, workers+1),
		labelA:  "work-a",
		labelB:  "work-b",
	}
	if ringCycles > 0 {
		p.ring = &profRing{
			cycles: ringCycles,
			lanes:  workers + 1,
			slots:  make([]atomic.Int64, ringCycles*(workers+1)*ringLaneWords),
		}
	}
	return p
}

// SetPhaseLabels names the two work sub-phases in reports and trace
// lanes (the network calls this with "endpoints", "switches").
func (p *ExecProfiler) SetPhaseLabels(a, b string) {
	if p == nil {
		return
	}
	p.labelA, p.labelB = a, b
}

// Workers returns the number of worker lanes.
func (p *ExecProfiler) Workers() int {
	if p == nil {
		return 0
	}
	return p.workers
}

// Hist returns the histogram for one lane and phase (lane p.Workers() is
// the coordinator). It panics on out-of-range lanes, like a slice index.
func (p *ExecProfiler) Hist(lane int, ph Phase) *PhaseHist {
	return &p.lanes[lane][ph]
}

// recWorker records one worker cycle's four sub-phase durations plus the
// ring entry.
//
//stashsim:phase parallel
//stashsim:noalloc
func (p *ExecProfiler) recWorker(cycle int64, lane int, start, dRel, dA, dB, dPub int64) {
	l := &p.lanes[lane]
	l[PhaseBarrierRelease].rec(dRel)
	l[PhaseWorkA].rec(dA)
	l[PhaseWorkB].rec(dB)
	l[PhaseBarrierPublish].rec(dPub)
	p.ring.put(cycle, lane, start, dRel, dA, dB, dPub)
}

// recCoord records one coordinator cycle: hooks, parallel span, wall.
// A per-cycle barrier round is one synchronization, so epochs advances
// alongside cycles.
//
//stashsim:phase serial
func (p *ExecProfiler) recCoord(cycle int64, start, dPre, dSpan, dPost int64) {
	l := &p.lanes[p.workers]
	l[PhasePreHook].rec(dPre)
	l[PhaseCycleSpan].rec(dSpan)
	l[PhasePostHook].rec(dPost)
	p.wallNS.Add(dPre + dSpan + dPost)
	p.cycles.Add(1)
	p.epochs.Add(1)
	p.ring.put(cycle, p.workers, start, dPre, dSpan, dPost, 0)
}

// recWorkerEpoch records one worker epoch: entry-barrier wait, the epoch
// drain, the accumulated work of the epoch's cycles, and the exit-barrier
// wait. The ring entry folds the drain into the release slot to keep the
// record four durations wide.
//
//stashsim:phase parallel
//stashsim:noalloc
func (p *ExecProfiler) recWorkerEpoch(cycle int64, lane int, start, dRel, dDrain, dA, dB, dPub int64) {
	l := &p.lanes[lane]
	l[PhaseBarrierRelease].rec(dRel)
	l[PhaseEpochDrain].rec(dDrain)
	l[PhaseWorkA].rec(dA)
	l[PhaseWorkB].rec(dB)
	l[PhaseBarrierPublish].rec(dPub)
	p.ring.put(cycle, lane, start, dRel+dDrain, dA, dB, dPub)
}

// recCoordEpoch records one coordinator epoch spanning `cycles` simulated
// cycles with a single barrier round.
//
//stashsim:phase serial
func (p *ExecProfiler) recCoordEpoch(cycle int64, start, dPre, dSpan, dPost, cycles int64) {
	l := &p.lanes[p.workers]
	l[PhasePreHook].rec(dPre)
	l[PhaseCycleSpan].rec(dSpan)
	l[PhasePostHook].rec(dPost)
	p.wallNS.Add(dPre + dSpan + dPost)
	p.cycles.Add(cycles)
	p.epochs.Add(1)
	p.ring.put(cycle, p.workers, start, dPre, dSpan, dPost, 0)
}

// recSerial records one serial-path cycle on lane 0 plus the coordinator
// hooks (no barrier phases exist on the serial path).
//
//stashsim:phase serial
func (p *ExecProfiler) recSerial(cycle int64, start, dPre, dA, dB, dPost int64) {
	l0 := &p.lanes[0]
	l0[PhaseWorkA].rec(dA)
	l0[PhaseWorkB].rec(dB)
	lc := &p.lanes[p.workers]
	lc[PhasePreHook].rec(dPre)
	lc[PhaseCycleSpan].rec(dA + dB)
	lc[PhasePostHook].rec(dPost)
	p.wallNS.Add(dPre + dA + dB + dPost)
	p.cycles.Add(1)
	if p.workers == 1 {
		p.ring.put(cycle, 0, start+dPre, 0, dA, dB, 0)
		p.ring.put(cycle, 1, start, dPre, dA+dB, dPost, 0)
	}
}

// Recent returns the retained ring records, oldest cycle first, skipping
// unwritten slots. It allocates and is meant for end-of-run export or
// snapshot paths, not the per-cycle path.
func (p *ExecProfiler) Recent() []RingRec {
	if p == nil || p.ring == nil {
		return nil
	}
	r := p.ring
	out := make([]RingRec, 0, r.cycles*r.lanes)
	for c := 0; c < r.cycles; c++ {
		for l := 0; l < r.lanes; l++ {
			base := (c*r.lanes + l) * ringLaneWords
			s := r.slots[base : base+ringLaneWords]
			start := s[1].Load()
			if start == 0 {
				continue // never written
			}
			rec := RingRec{Cycle: s[0].Load(), Lane: l, Start: start}
			rec.Durs = [4]int64{s[2].Load(), s[3].Load(), s[4].Load(), s[5].Load()}
			out = append(out, rec)
		}
	}
	sortRingRecs(out)
	return out
}

func sortRingRecs(rs []RingRec) {
	// Insertion sort by (cycle, lane); rings are small (≤ a few thousand).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && (rs[j].Cycle < rs[j-1].Cycle ||
			(rs[j].Cycle == rs[j-1].Cycle && rs[j].Lane < rs[j-1].Lane)); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// PhaseReport summarizes one lane's phase in the exported report.
type PhaseReport struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P99NS   int64   `json:"p99_ns"`
	MaxNS   int64   `json:"max_ns"`
}

// LaneReport is one lane (worker or coordinator) of the report.
type LaneReport struct {
	Lane   string        `json:"lane"`
	WorkNS int64         `json:"work_ns"`
	Phases []PhaseReport `json:"phases"`
}

// Attribution decomposes executor wall time. The worker-side percentages
// are normalized to workers × wall (total worker-lane capacity), so
// work + release-wait + publish-wait ≈ 100 for a parallel run; the hook
// percentages are fractions of coordinator wall and explain the
// release-wait share. Imbalance is (max-mean)/mean of per-worker work.
type Attribution struct {
	WallNS int64 `json:"wall_ns"`
	Cycles int64 `json:"cycles"`
	// Epochs counts barrier synchronizations; CyclesPerSync = Cycles /
	// Epochs is the epoch scheduler's headline number (1.0 means a global
	// barrier every cycle; the lookahead target is >= 50 at paper scale).
	Epochs         int64   `json:"epochs"`
	CyclesPerSync  float64 `json:"cycles_per_sync"`
	WorkPct        float64 `json:"work_pct"`
	ReleaseWaitPct float64 `json:"release_wait_pct"`
	PublishWaitPct float64 `json:"publish_wait_pct"`
	BarrierWaitPct float64 `json:"barrier_wait_pct"`
	PreHookPct     float64 `json:"pre_hook_pct"`
	PostHookPct    float64 `json:"post_hook_pct"`
	SerialHooksPct float64 `json:"serial_hooks_pct"`
	ImbalancePct   float64 `json:"imbalance_pct"`
	AttributedPct  float64 `json:"attributed_pct"`
}

// ExecReport is the exported profile: per-lane phase histogram summaries
// plus the wall-time attribution.
type ExecReport struct {
	Workers     int          `json:"workers"`
	Cycles      int64        `json:"cycles"`
	WallNS      int64        `json:"wall_ns"`
	Lanes       []LaneReport `json:"lanes"`
	Attribution Attribution  `json:"attribution"`
}

// phaseLabel maps a phase to its report name, applying the work labels.
func (p *ExecProfiler) phaseLabel(ph Phase) string {
	switch ph {
	case PhaseWorkA:
		return p.labelA
	case PhaseWorkB:
		return p.labelB
	}
	return ph.String()
}

// Report builds the profile report. Safe to call concurrently with
// recording (the telemetry snapshot path does); numbers are then a
// consistent-enough live view, not a quiescent one.
func (p *ExecProfiler) Report() *ExecReport {
	if p == nil {
		return nil
	}
	r := &ExecReport{
		Workers: p.workers,
		Cycles:  p.cycles.Load(),
		WallNS:  p.wallNS.Load(),
	}
	workerPhases := []Phase{PhaseBarrierRelease, PhaseEpochDrain, PhaseWorkA, PhaseWorkB, PhaseBarrierPublish}
	coordPhases := []Phase{PhasePreHook, PhaseCycleSpan, PhasePostHook}
	var sumWork, maxWork, sumRelease, sumPublish, sumAttr int64
	for w := 0; w < p.workers; w++ {
		lane := LaneReport{Lane: fmt.Sprintf("w%d", w)}
		var work int64
		for _, ph := range workerPhases {
			h := &p.lanes[w][ph]
			n, total := h.Count(), h.SumNS()
			if n == 0 && total == 0 {
				continue
			}
			pr := PhaseReport{
				Phase: p.phaseLabel(ph), Count: n, TotalNS: total,
				P99NS: h.P99NS(), MaxNS: h.MaxNS(),
			}
			if n > 0 {
				pr.MeanNS = float64(total) / float64(n)
			}
			lane.Phases = append(lane.Phases, pr)
			sumAttr += total
			switch ph {
			case PhaseWorkA, PhaseWorkB, PhaseEpochDrain:
				// The epoch drain delivers cross-partition flits — useful
				// work, not synchronization wait.
				work += total
			case PhaseBarrierRelease:
				sumRelease += total
			case PhaseBarrierPublish:
				sumPublish += total
			}
		}
		lane.WorkNS = work
		sumWork += work
		if work > maxWork {
			maxWork = work
		}
		r.Lanes = append(r.Lanes, lane)
	}
	coord := LaneReport{Lane: "coord"}
	var preNS, postNS int64
	for _, ph := range coordPhases {
		h := &p.lanes[p.workers][ph]
		n, total := h.Count(), h.SumNS()
		if n == 0 && total == 0 {
			continue
		}
		pr := PhaseReport{
			Phase: p.phaseLabel(ph), Count: n, TotalNS: total,
			P99NS: h.P99NS(), MaxNS: h.MaxNS(),
		}
		if n > 0 {
			pr.MeanNS = float64(total) / float64(n)
		}
		coord.Phases = append(coord.Phases, pr)
		switch ph {
		case PhasePreHook:
			preNS = total
		case PhasePostHook:
			postNS = total
		}
	}
	r.Lanes = append(r.Lanes, coord)

	a := &r.Attribution
	a.WallNS, a.Cycles = r.WallNS, r.Cycles
	a.Epochs = p.epochs.Load()
	if a.Epochs > 0 {
		a.CyclesPerSync = float64(a.Cycles) / float64(a.Epochs)
	}
	if r.WallNS > 0 {
		capacity := float64(p.workers) * float64(r.WallNS)
		pct := func(ns int64) float64 { return 100 * float64(ns) / capacity }
		a.WorkPct = pct(sumWork)
		a.ReleaseWaitPct = pct(sumRelease)
		a.PublishWaitPct = pct(sumPublish)
		a.BarrierWaitPct = a.ReleaseWaitPct + a.PublishWaitPct
		a.PreHookPct = 100 * float64(preNS) / float64(r.WallNS)
		a.PostHookPct = 100 * float64(postNS) / float64(r.WallNS)
		a.SerialHooksPct = a.PreHookPct + a.PostHookPct
		if p.workers > 1 {
			a.AttributedPct = pct(sumAttr)
		} else {
			// Serial path: no barrier phases; wall = hooks + work + loop ε.
			a.AttributedPct = 100 * float64(sumAttr+preNS+postNS) / float64(r.WallNS)
		}
	}
	if p.workers > 1 && sumWork > 0 {
		mean := float64(sumWork) / float64(p.workers)
		a.ImbalancePct = 100 * (float64(maxWork) - mean) / mean
	}
	return r
}

// Text renders the report as an aligned human-readable block.
func (r *ExecReport) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	a := r.Attribution
	fmt.Fprintf(&b, "executor profile: %d workers, %d cycles, wall %.3f ms\n",
		r.Workers, r.Cycles, float64(r.WallNS)/1e6)
	if a.Epochs > 0 && a.Epochs != a.Cycles {
		fmt.Fprintf(&b, "  epoch sync: %d epochs, %.1f cycles/sync\n", a.Epochs, a.CyclesPerSync)
	}
	fmt.Fprintf(&b, "  attribution (of %d worker-lanes x wall): work %.1f%%  barrier wait %.1f%% (release %.1f%%, publish/skew %.1f%%)  attributed %.1f%%\n",
		r.Workers, a.WorkPct, a.BarrierWaitPct, a.ReleaseWaitPct, a.PublishWaitPct, a.AttributedPct)
	fmt.Fprintf(&b, "  serial hooks (of wall): pre %.1f%%  post %.1f%%  | work imbalance (max-mean)/mean: %.1f%%\n",
		a.PreHookPct, a.PostHookPct, a.ImbalancePct)
	for _, lane := range r.Lanes {
		fmt.Fprintf(&b, "  lane %-6s work %.3f ms\n", lane.Lane, float64(lane.WorkNS)/1e6)
		for _, ph := range lane.Phases {
			fmt.Fprintf(&b, "    %-16s count %-9d total %10.3f ms  mean %8.0f ns  p99 %10d ns  max %10d ns\n",
				ph.Phase, ph.Count, float64(ph.TotalNS)/1e6, ph.MeanNS, ph.P99NS, ph.MaxNS)
		}
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *ExecReport) JSON() []byte {
	if r == nil {
		return nil
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic("sim: exec report marshal failed")
	}
	return b
}

// ChromeEvents emits the retained ring records as Chrome trace_event
// JSON objects via emit (one object per call, no separators), matching
// the packet tracer's timebase: one simulated cycle is one microsecond
// of trace time, and each cycle's lane timings are scaled into its 1 µs
// slot so executor lanes align with packet lifecycle events. Lanes land
// on pid 2 ("executor"); args carry the unscaled nanosecond durations.
func (p *ExecProfiler) ChromeEvents(emit func(format string, args ...any) error) error {
	if p == nil || p.ring == nil {
		return nil
	}
	if err := emit(`{"name":"process_name","ph":"M","pid":2,"args":{"name":"executor"}}`); err != nil {
		return err
	}
	for w := 0; w <= p.workers; w++ {
		name := fmt.Sprintf("w%d", w)
		if w == p.workers {
			name = "coord"
		}
		if err := emit(`{"name":"thread_name","ph":"M","pid":2,"tid":%d,"args":{"name":%q}}`, w, name); err != nil {
			return err
		}
	}
	recs := p.Recent()
	// Index the coordinator record per cycle: its span defines the cycle's
	// wall width, against which worker phases are scaled.
	coordStart := make(map[int64]int64)
	coordTotal := make(map[int64]int64)
	for _, rec := range recs {
		if rec.Lane == p.workers {
			coordStart[rec.Cycle] = rec.Start
			coordTotal[rec.Cycle] = rec.Durs[0] + rec.Durs[1] + rec.Durs[2] + rec.Durs[3]
		}
	}
	workerNames := [4]string{"barrier-release", p.labelA, p.labelB, "barrier-publish"}
	coordNames := [4]string{"pre-hook", "cycle-span", "post-hook", ""}
	for _, rec := range recs {
		total := coordTotal[rec.Cycle]
		t0 := coordStart[rec.Cycle]
		if total <= 0 {
			continue
		}
		names := &workerNames
		if rec.Lane == p.workers {
			names = &coordNames
		}
		off := rec.Start - t0
		for i, d := range rec.Durs {
			if d <= 0 || names[i] == "" {
				off += d
				continue
			}
			ts := float64(rec.Cycle) + float64(off)/float64(total)
			dur := float64(d) / float64(total)
			if err := emit(`{"name":%q,"cat":"executor","ph":"X","ts":%.6f,"dur":%.6f,"pid":2,"tid":%d,"args":{"ns":%d,"cycle":%d}}`,
				names[i], ts, dur, rec.Lane, d, rec.Cycle); err != nil {
				return err
			}
			off += d
		}
	}
	return nil
}
