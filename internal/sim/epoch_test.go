package sim

import (
	"sync/atomic"
	"testing"
)

// epochDrainRec records DrainEpoch invocations for one partition.
type epochDrainRec struct {
	epochs []int64
}

func (d *epochDrainRec) DrainEpoch(epoch int64) { d.epochs = append(d.epochs, epoch) }

// newEpochExecutor builds a 2-partition executor over countSteppers with
// per-partition drain recorders.
func newEpochExecutor(perPart int) (*Executor, [][]*countStepper, []*epochDrainRec) {
	cs := make([][]*countStepper, 2)
	parts := make([][]Stepper, 2)
	for p := range parts {
		for i := 0; i < perPart; i++ {
			c := &countStepper{}
			cs[p] = append(cs[p], c)
			parts[p] = append(parts[p], c)
		}
	}
	e := NewPartitionedExecutor(parts, []int{1, 1})
	drains := []*epochDrainRec{{}, {}}
	return e, cs, drains
}

// TestEpochExecutorStepsEveryCycle verifies the free-running epoch loop
// preserves the fundamental contract: every component steps exactly once
// per cycle, in cycle order, even though barriers only happen at epoch
// boundaries.
func TestEpochExecutorStepsEveryCycle(t *testing.T) {
	e, cs, recs := newEpochExecutor(3)
	far := func(from Tick) Tick { return from + 1<<30 }
	e.EnableEpochSync(7, far, []EpochDrainer{recs[0], recs[1]})
	e.Run(0, 40)
	e.Run(40, 53)
	e.Close()
	for p := range cs {
		for i, c := range cs[p] {
			if len(c.steps) != 53 {
				t.Fatalf("partition %d component %d stepped %d cycles, want 53", p, i, len(c.steps))
			}
			for j, s := range c.steps {
				if s != Tick(j) {
					t.Fatalf("partition %d component %d step %d saw tick %d", p, i, j, s)
				}
			}
		}
	}
	// With no serial events, 53 cycles at lookahead 7 is ceil(40/7) +
	// ceil(13/7) = 6+2 = 8 epochs; each partition drains once per epoch
	// with a strictly incrementing epoch counter.
	for p, r := range recs {
		if len(r.epochs) != 8 {
			t.Fatalf("partition %d drained %d epochs, want 8", p, len(r.epochs))
		}
		for i, ep := range r.epochs {
			if ep != int64(i+1) {
				t.Fatalf("partition %d drain %d saw epoch %d, want %d", p, i, ep, i+1)
			}
		}
	}
}

// TestEpochExecutorSerialEventClamping pins the clamping contract: hooks
// run exactly on the cycles nextEvent names (as 1-cycle epochs), never in
// between, and free-running epochs never cross one.
func TestEpochExecutorSerialEventClamping(t *testing.T) {
	e, _, recs := newEpochExecutor(2)
	// Serial events on every multiple of 10.
	every10 := func(from Tick) Tick {
		if from%10 == 0 {
			return from
		}
		return from + 10 - from%10
	}
	var pre, post []Tick
	var postEpoch []Tick
	e.PreCycle = func(now Tick) { pre = append(pre, now) }
	e.PostCycle = func(now Tick) { post = append(post, now) }
	e.PostEpoch = func(next Tick) { postEpoch = append(postEpoch, next) }
	e.EnableEpochSync(7, every10, []EpochDrainer{recs[0], recs[1]})
	e.Run(0, 50)
	e.Close()

	want := []Tick{0, 10, 20, 30, 40}
	if len(pre) != len(want) || len(post) != len(want) {
		t.Fatalf("hooks ran %d/%d times, want %d (pre=%v post=%v)", len(pre), len(post), len(want), pre, post)
	}
	for i, w := range want {
		if pre[i] != w || post[i] != w {
			t.Fatalf("hook %d ran at pre=%d post=%d, want %d", i, pre[i], post[i], w)
		}
	}
	// PostEpoch publishes a strictly increasing frontier ending at `to`.
	last := Tick(0)
	for i, v := range postEpoch {
		if v <= last {
			t.Fatalf("PostEpoch %d published %d after %d (not increasing)", i, v, last)
		}
		last = v
	}
	if last != 50 {
		t.Fatalf("final published frontier %d, want 50", last)
	}
}

// TestEpochExecutorHookOrdering extends the two-phase barrier contract to
// epoch mode: PreCycle sees all prior cycles complete, PostCycle sees its
// own cycle complete, with work free-running in between.
func TestEpochExecutorHookOrdering(t *testing.T) {
	const comps, cycles = 8, 60
	var total atomic.Int64
	parts := make([][]Stepper, 2)
	for i := 0; i < comps; i++ {
		parts[i%2] = append(parts[i%2], &tallyStepper{total: &total})
	}
	e := NewPartitionedExecutor(parts, []int{0, 0})
	var bad atomic.Int64
	e.PreCycle = func(now Tick) {
		if total.Load() != int64(now)*comps {
			bad.Add(1)
		}
	}
	e.PostCycle = func(now Tick) {
		if total.Load() != int64(now+1)*comps {
			bad.Add(1)
		}
	}
	every10 := func(from Tick) Tick {
		if from%10 == 0 {
			return from
		}
		return from + 10 - from%10
	}
	e.EnableEpochSync(7, every10, nil)
	e.Run(0, cycles)
	e.Close()
	if bad.Load() != 0 {
		t.Fatalf("%d hook-ordering violations", bad.Load())
	}
	if total.Load() != comps*cycles {
		t.Fatalf("%d total steps, want %d", total.Load(), comps*cycles)
	}
}

// TestEpochExecutorRunAfterClose: the serial fallback contract holds for
// the partitioned executor too (epoch wiring is bypassed, hooks run every
// cycle, all components still step).
func TestEpochExecutorRunAfterClose(t *testing.T) {
	e, cs, recs := newEpochExecutor(2)
	far := func(from Tick) Tick { return from + 1<<30 }
	e.EnableEpochSync(7, far, []EpochDrainer{recs[0], recs[1]})
	e.Run(0, 20)
	e.Close()
	e.Run(20, 30) // serial fallback
	for p := range cs {
		for i, c := range cs[p] {
			if len(c.steps) != 30 {
				t.Fatalf("partition %d component %d stepped %d cycles, want 30", p, i, len(c.steps))
			}
		}
	}
}

func mustPanicSim(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

// TestPartitionedExecutorValidation pins the constructor and
// EnableEpochSync argument contracts.
func TestPartitionedExecutorValidation(t *testing.T) {
	part := func() []Stepper { return []Stepper{&countStepper{}, &countStepper{}} }
	mustPanicSim(t, "single partition", func() {
		NewPartitionedExecutor([][]Stepper{part()}, []int{1})
	})
	mustPanicSim(t, "aCounts length mismatch", func() {
		NewPartitionedExecutor([][]Stepper{part(), part()}, []int{1})
	})
	mustPanicSim(t, "aCount out of range", func() {
		NewPartitionedExecutor([][]Stepper{part(), part()}, []int{1, 3})
	})

	far := func(from Tick) Tick { return from + 1<<30 }
	e := NewPartitionedExecutor([][]Stepper{part(), part()}, []int{1, 1})
	mustPanicSim(t, "lookahead < 2", func() { e.EnableEpochSync(1, far, nil) })
	mustPanicSim(t, "nil nextEvent", func() { e.EnableEpochSync(7, nil, nil) })
	mustPanicSim(t, "drains length mismatch", func() {
		e.EnableEpochSync(7, far, []EpochDrainer{&epochDrainRec{}})
	})
	mustPanicSim(t, "round-robin executor", func() {
		rr := NewExecutor(part(), 2)
		rr.EnableEpochSync(7, far, nil)
	})
	e2 := NewPartitionedExecutor([][]Stepper{part(), part()}, []int{1, 1})
	e2.EnableEpochSync(7, far, nil)
	e2.Run(0, 10)
	defer e2.Close()
	mustPanicSim(t, "EnableEpochSync after Run", func() { e2.EnableEpochSync(7, far, nil) })
}
