package sim

import "sync"

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines and returns when all calls have finished. With
// workers <= 1 it degrades to a plain loop on the calling goroutine.
//
// It is the sweep-level counterpart of Executor: the harness fans
// independent design points (each owning its config, network, RNG and
// collector) over it. Callers must keep results deterministic by writing
// fn's output to an index-addressed slot (results[i] = ...) and assembling
// output in index order after ParallelFor returns — never in completion
// order. It lives in internal/sim so the stashlint determinism analyzer's
// rule that simulation packages spawn no goroutines of their own stays
// machine-checkable.
func ParallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
