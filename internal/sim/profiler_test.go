package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestPhaseHistRecording(t *testing.T) {
	var h PhaseHist
	for _, d := range []int64{100, 200, 300, 400, 1 << 20} {
		h.rec(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if want := int64(100 + 200 + 300 + 400 + 1<<20); h.SumNS() != want {
		t.Fatalf("sum %d, want %d", h.SumNS(), want)
	}
	if h.MaxNS() != 1<<20 {
		t.Fatalf("max %d, want %d", h.MaxNS(), 1<<20)
	}
	if p99 := h.P99NS(); p99 < 1<<20 {
		t.Fatalf("p99 %d should cover the max observation's bucket", p99)
	}
	h.rec(-5) // negative clamps, must not corrupt sums
	if h.SumNS() < 0 || h.Count() != 6 {
		t.Fatalf("negative duration mishandled: sum=%d count=%d", h.SumNS(), h.Count())
	}
}

func TestPhaseHistP99Empty(t *testing.T) {
	var h PhaseHist
	if h.P99NS() != 0 {
		t.Fatalf("empty hist p99 = %d, want 0", h.P99NS())
	}
}

func TestExecProfilerSerial(t *testing.T) {
	const comps, cycles = 6, 50
	var steppers []Stepper
	for i := 0; i < comps; i++ {
		steppers = append(steppers, &countStepper{})
	}
	e := NewExecutor(steppers, 1)
	e.SplitAt = 2
	p := NewExecProfiler(1, 16)
	p.SetPhaseLabels("endpoints", "switches")
	e.Profiler = p
	pre, post := 0, 0
	e.PreCycle = func(Tick) { pre++ }
	e.PostCycle = func(Tick) { post++ }
	e.Run(0, cycles)
	r := p.Report()
	if r.Cycles != cycles {
		t.Fatalf("cycles %d, want %d", r.Cycles, cycles)
	}
	if r.WallNS <= 0 {
		t.Fatal("wall time not recorded")
	}
	if got := p.Hist(0, PhaseWorkA).Count(); got != cycles {
		t.Fatalf("work-a count %d, want %d", got, cycles)
	}
	if got := p.Hist(1, PhasePreHook).Count(); got != cycles {
		t.Fatalf("pre-hook count %d, want %d", got, cycles)
	}
	if r.Attribution.AttributedPct < 95 {
		t.Fatalf("serial attribution %.1f%%, want >= 95%%", r.Attribution.AttributedPct)
	}
	txt := r.Text()
	for _, want := range []string{"endpoints", "switches", "pre-hook", "post-hook", "lane coord"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text report missing %q:\n%s", want, txt)
		}
	}
	var decoded ExecReport
	if err := json.Unmarshal(r.JSON(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
}

func TestExecProfilerParallel(t *testing.T) {
	const comps, cycles, workers = 8, 40, 4
	var steppers []Stepper
	for i := 0; i < comps; i++ {
		steppers = append(steppers, &countStepper{})
	}
	e := NewExecutor(steppers, workers)
	e.SplitAt = 3
	p := NewExecProfiler(workers, 8)
	e.Profiler = p
	e.Run(0, cycles)
	e.Close()
	r := p.Report()
	if r.Cycles != cycles || r.Workers != workers {
		t.Fatalf("report cycles=%d workers=%d", r.Cycles, r.Workers)
	}
	for w := 0; w < workers; w++ {
		for _, ph := range []Phase{PhaseWorkA, PhaseWorkB, PhaseBarrierRelease, PhaseBarrierPublish} {
			if got := p.Hist(w, ph).Count(); got != cycles {
				t.Fatalf("worker %d phase %v count %d, want %d", w, ph, got, cycles)
			}
		}
	}
	// aCount distribution: SplitAt=3 over 4 partitions means workers 0-2
	// lead with one phase-A component, worker 3 with none — observational
	// only, but the report must attribute nearly all wall time.
	if a := r.Attribution; a.AttributedPct < 90 || a.AttributedPct > 120 {
		t.Fatalf("parallel attribution %.1f%% outside sanity band", a.AttributedPct)
	}
	recs := p.Recent()
	if len(recs) == 0 {
		t.Fatal("ring retained no records")
	}
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Lane <= a.Lane) {
			t.Fatalf("ring records not sorted: %+v then %+v", a, b)
		}
	}
}

// TestExecProfilerMismatchedWorkersPanics is the regression test for the
// silent-drop bug: a profiler sized for the wrong worker count used to be
// quietly ignored on the parallel path, yielding an unprofiled run with
// no diagnostic. The mismatch must now fail loudly before any cycle runs.
func TestExecProfilerMismatchedWorkersPanics(t *testing.T) {
	var steppers []Stepper
	for i := 0; i < 6; i++ {
		steppers = append(steppers, &countStepper{})
	}
	e := NewExecutor(steppers, 3)
	defer e.Close()
	e.Profiler = NewExecProfiler(2, 0) // wrong worker count
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched profiler was accepted silently")
		}
	}()
	e.Run(0, 10)
}

func TestExecProfilerChromeEvents(t *testing.T) {
	var steppers []Stepper
	for i := 0; i < 4; i++ {
		steppers = append(steppers, &countStepper{})
	}
	e := NewExecutor(steppers, 2)
	e.SplitAt = 2
	p := NewExecProfiler(2, 4)
	p.SetPhaseLabels("endpoints", "switches")
	e.Profiler = p
	e.Run(0, 6)
	e.Close()
	var buf bytes.Buffer
	err := p.ChromeEvents(func(format string, args ...any) error {
		fmt.Fprintf(&buf, format, args...)
		buf.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name":"executor"`, `"name":"coord"`, `"pid":2`, `"cat":"executor"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome events missing %s in:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSON event: %s", line)
		}
	}
}

func TestExecProfilerNilSafe(t *testing.T) {
	var p *ExecProfiler
	p.SetPhaseLabels("a", "b")
	if p.Workers() != 0 || p.Report() != nil || p.Recent() != nil {
		t.Fatal("nil profiler accessors must be inert")
	}
	if err := p.ChromeEvents(nil); err != nil {
		t.Fatal("nil profiler ChromeEvents must be a no-op")
	}
	var r *ExecReport
	if r.Text() != "" || r.JSON() != nil {
		t.Fatal("nil report renderers must be inert")
	}
}
