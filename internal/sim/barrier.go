package sim

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a reusable spinning barrier for the parallel cycle executor.
// It is designed for a small, fixed number of long-lived worker goroutines
// that synchronize once per simulated cycle; spinning with Gosched keeps the
// per-cycle overhead far below that of a channel or condition variable.
type Barrier struct {
	n       int32
	arrived atomic.Int32
	phase   atomic.Uint32
}

// NewBarrier returns a barrier for n participants. n must be positive.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier with non-positive participant count")
	}
	return &Barrier{n: int32(n)}
}

// Wait blocks until all n participants have called Wait for the current
// phase, then releases them all and advances to the next phase.
//
//stashsim:phase parallel
//stashsim:noalloc
func (b *Barrier) Wait() {
	phase := b.phase.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.phase.Add(1)
		return
	}
	for b.phase.Load() == phase {
		runtime.Gosched()
	}
}
