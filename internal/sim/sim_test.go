package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestRNGSeedSeparation(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	parent := NewRNG(42)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	c1again := parent.Derive(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Derive is not deterministic")
	}
	if c1.state == c2.state {
		t.Fatal("distinct streams share state")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw)%100 + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / samples
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("bucket %d has fraction %.3f, want ~0.1", i, frac)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := NewRNG(9)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < p-0.01 || got > p+0.01 {
		t.Fatalf("Bernoulli(%.1f) frequency %.3f", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBarrierSynchronizes(t *testing.T) {
	const workers, rounds = 4, 100
	b := NewBarrier(workers)
	var counter atomic.Int64
	done := make(chan bool)
	for w := 0; w < workers; w++ {
		go func() {
			for r := 0; r < rounds; r++ {
				counter.Add(1)
				b.Wait()
				// After the barrier, all workers must have counted
				// this round.
				if c := counter.Load(); c < int64((r+1)*workers) {
					t.Errorf("round %d: count %d", r, c)
				}
				b.Wait()
			}
			done <- true
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

type countStepper struct {
	steps []Tick
}

func (c *countStepper) Step(now Tick) { c.steps = append(c.steps, now) }

func TestExecutorSerial(t *testing.T) {
	cs := []*countStepper{{}, {}, {}}
	var steppers []Stepper
	for _, c := range cs {
		steppers = append(steppers, c)
	}
	e := NewExecutor(steppers, 1)
	e.Run(0, 10)
	e.Run(10, 15)
	for _, c := range cs {
		if len(c.steps) != 15 {
			t.Fatalf("component stepped %d times, want 15", len(c.steps))
		}
		for i, s := range c.steps {
			if s != Tick(i) {
				t.Fatalf("step %d saw tick %d", i, s)
			}
		}
	}
}

type atomicStepper struct {
	cur   *atomic.Int64
	fails atomic.Int64
}

func (a *atomicStepper) Step(now Tick) {
	if a.cur.Load() != int64(now) {
		a.fails.Add(1)
	}
}

type tallyStepper struct {
	total *atomic.Int64
}

func (s *tallyStepper) Step(now Tick) { s.total.Add(1) }

// TestExecutorHookOrdering verifies the two-phase barrier contract: within
// every cycle, PreCycle runs strictly before any component step and
// PostCycle strictly after all of them, for both execution modes.
func TestExecutorHookOrdering(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const comps, cycles = 8, 40
		var total atomic.Int64
		steppers := make([]Stepper, comps)
		for i := range steppers {
			steppers[i] = &tallyStepper{total: &total}
		}
		e := NewExecutor(steppers, workers)
		var bad atomic.Int64
		e.PreCycle = func(now Tick) {
			// Entering cycle `now`, exactly now*comps steps have happened.
			if total.Load() != int64(now)*comps {
				bad.Add(1)
			}
		}
		e.PostCycle = func(now Tick) {
			// Leaving cycle `now`, its comps steps are all complete.
			if total.Load() != int64(now+1)*comps {
				bad.Add(1)
			}
		}
		e.Run(0, cycles)
		e.Close()
		if bad.Load() != 0 {
			t.Fatalf("workers=%d: %d hook-ordering violations", workers, bad.Load())
		}
		if total.Load() != comps*cycles {
			t.Fatalf("workers=%d: %d total steps, want %d", workers, total.Load(), comps*cycles)
		}
	}
}

// TestExecutorRunAfterClose exercises the documented fallback: a closed
// executor still runs, serially, with identical step counts.
func TestExecutorRunAfterClose(t *testing.T) {
	var total atomic.Int64
	steppers := make([]Stepper, 6)
	for i := range steppers {
		steppers[i] = &tallyStepper{total: &total}
	}
	e := NewExecutor(steppers, 3)
	e.Run(0, 10)
	e.Close()
	e.Close() // idempotent
	e.Run(10, 20)
	if got := total.Load(); got != 6*20 {
		t.Fatalf("%d steps after close-and-run, want %d", got, 6*20)
	}
}

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		const n = 57
		results := make([]int, n)
		ParallelFor(workers, n, func(i int) { results[i] = i * i })
		for i, v := range results {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
	// Degenerate sizes must not hang or panic.
	ParallelFor(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ParallelFor(4, -3, func(int) { t.Fatal("fn called for n<0") })
}

func TestExecutorParallelCycleBoundary(t *testing.T) {
	// Every component must observe the same cycle value; the shared
	// atomic is advanced by a dedicated clock component stepped first in
	// partition 0... Instead, verify all components see `now` equal to
	// the loop cycle by having them check a shared value set serially
	// before Run of each single-cycle window.
	var cur atomic.Int64
	comps := make([]Stepper, 8)
	ss := make([]*atomicStepper, 8)
	for i := range comps {
		ss[i] = &atomicStepper{cur: &cur}
		comps[i] = ss[i]
	}
	e := NewExecutor(comps, 4)
	defer e.Close()
	for c := Tick(0); c < 50; c++ {
		cur.Store(int64(c))
		e.Run(c, c+1)
	}
	for i, s := range ss {
		if s.fails.Load() != 0 {
			t.Fatalf("component %d saw %d wrong cycles", i, s.fails.Load())
		}
	}
}
