package sim

import (
	"runtime"
	"sync"
)

// Stepper is a simulation component advanced once per cycle. Components may
// communicate only through latency>=1 channels, which gives the parallel
// executor one cycle of lookahead: values written at cycle t are never read
// before cycle t+1, so disjoint partitions can step concurrently.
type Stepper interface {
	Step(now Tick)
}

// Executor drives a set of components through simulated cycles, either
// serially (deterministic, lowest overhead on a single core) or with a fixed
// worker pool partitioned over the components.
type Executor struct {
	parts   [][]Stepper
	barrier *Barrier
	workers int

	// serial fast path
	all []Stepper

	mu      sync.Mutex
	started bool
	cmd     chan execCmd
	done    chan struct{}
}

type execCmd struct {
	from, to Tick
}

// NewExecutor builds an executor over the given components. workers <= 1
// selects the serial path; otherwise the components are partitioned
// round-robin across min(workers, GOMAXPROCS) long-lived goroutines.
func NewExecutor(components []Stepper, workers int) *Executor {
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(components) {
		workers = len(components)
	}
	e := &Executor{workers: workers, all: components}
	if workers > 1 {
		e.parts = make([][]Stepper, workers)
		for i, c := range components {
			w := i % workers
			e.parts[w] = append(e.parts[w], c)
		}
		e.barrier = NewBarrier(workers + 1)
		e.cmd = make(chan execCmd)
		e.done = make(chan struct{})
	}
	return e
}

// Run advances all components from cycle `from` (inclusive) to `to`
// (exclusive). Within each cycle every component steps exactly once.
func (e *Executor) Run(from, to Tick) {
	if e.workers <= 1 {
		for now := from; now < to; now++ {
			for _, c := range e.all {
				c.Step(now)
			}
		}
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started {
		e.started = true
		for w := 0; w < e.workers; w++ {
			go e.worker(e.parts[w])
		}
	}
	for w := 0; w < e.workers; w++ {
		e.cmd <- execCmd{from, to}
	}
	for now := from; now < to; now++ {
		e.barrier.Wait()
	}
	for w := 0; w < e.workers; w++ {
		<-e.done
	}
}

func (e *Executor) worker(mine []Stepper) {
	for cmd := range e.cmd {
		for now := cmd.from; now < cmd.to; now++ {
			for _, c := range mine {
				c.Step(now)
			}
			e.barrier.Wait()
		}
		e.done <- struct{}{}
	}
}

// Close shuts down the worker goroutines. The executor must not be used
// after Close.
func (e *Executor) Close() {
	if e.cmd != nil {
		e.mu.Lock()
		if e.started {
			close(e.cmd)
			e.started = false
		}
		e.mu.Unlock()
	}
}
