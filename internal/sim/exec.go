package sim

import (
	"sync"
	"sync/atomic"
)

// Stepper is a simulation component advanced once per cycle. Components may
// communicate only through latency>=1 channels, which gives the parallel
// executor one cycle of lookahead: values written at cycle t are never read
// before cycle t+1, so disjoint partitions can step concurrently.
type Stepper interface {
	// Step advances the component one cycle. It runs concurrently with
	// every other component's Step and must stay allocation-free in the
	// steady state; both annotations propagate to implementations.
	//
	//stashsim:phase parallel
	//stashsim:noalloc
	Step(now Tick)
}

// Executor drives a set of components through simulated cycles, either
// serially (deterministic, lowest overhead on a single core) or with a fixed
// worker pool partitioned over the components.
//
// Each cycle is bracketed by two barrier phases. The coordinator (the
// goroutine calling Run) executes PreCycle, releases the workers into the
// cycle at the first barrier, waits for them at the second, then executes
// PostCycle. The hooks therefore always run serially, with every component
// step of the cycle strictly between them — the place for per-cycle
// singletons such as fault injection (pre) and samplers, watchdogs and
// invariant audits (post). Both hooks are optional.
//
// Between Runs the workers park at the cycle-entry barrier, so the steady
// state is channel-free: the coordinator publishes the cycle number with an
// atomic store, and the barrier's own release edge orders that store before
// any worker reads it. No per-Run or per-cycle allocation occurs.
//
// Results are identical to serial execution for any worker count: each
// component is pinned to one partition (so its private state is touched by
// exactly one goroutine), the one-cycle-lookahead rule makes intra-cycle
// step order irrelevant, and the barriers order every hook with respect to
// every step.
type Executor struct {
	parts   [][]Stepper
	barrier *Barrier
	workers int

	// PreCycle, when non-nil, runs serially before any component steps in
	// a cycle. Set before the first Run.
	PreCycle func(now Tick)
	// PostCycle, when non-nil, runs serially after every component has
	// stepped a cycle. Set before the first Run.
	PostCycle func(now Tick)

	// SplitAt divides the component list into two profiled work
	// sub-phases: components[:SplitAt] are phase A, the rest phase B (the
	// network sets this to its endpoint count). Purely observational — it
	// does not change step order. Set before the first Run; 0 means all
	// work is phase B.
	SplitAt int

	// Profiler, when non-nil, receives per-worker per-phase cycle timings.
	// Set before the first Run. A profiler built for a different worker
	// count than this executor's is ignored on the parallel path.
	Profiler *ExecProfiler

	// serial fast path
	all []Stepper

	cur  atomic.Int64 // cycle the workers are released into
	quit atomic.Bool  // set by Close; workers observe it at the entry barrier

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewExecutor builds an executor over the given components. workers <= 1
// selects the serial path; otherwise the components are partitioned
// round-robin across min(workers, len(components)) long-lived goroutines.
// Worker counts above GOMAXPROCS are honored (the spinning barrier yields
// the processor, so oversubscribed workers still make progress); they buy
// nothing but remain deterministic.
func NewExecutor(components []Stepper, workers int) *Executor {
	if workers > len(components) {
		workers = len(components)
	}
	e := &Executor{workers: workers, all: components}
	if workers > 1 {
		e.parts = make([][]Stepper, workers)
		for i, c := range components {
			w := i % workers
			e.parts[w] = append(e.parts[w], c)
		}
		e.barrier = NewBarrier(workers + 1)
	}
	return e
}

// aCount returns how many of partition w's components fall below SplitAt.
// Round-robin partitioning preserves relative order, so a partition's
// phase-A components are exactly its leading ones.
func (e *Executor) aCount(w int) int {
	if e.SplitAt <= w {
		return 0
	}
	return (e.SplitAt - w + e.workers - 1) / e.workers
}

// Run advances all components from cycle `from` (inclusive) to `to`
// (exclusive). Within each cycle every component steps exactly once,
// bracketed by the PreCycle and PostCycle hooks. After Close, Run falls
// back to the serial path (same results, no worker pool).
//
//stashsim:phase serial
func (e *Executor) Run(from, to Tick) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.workers <= 1 || e.closed {
		e.runSerial(from, to)
		return
	}
	if !e.started {
		e.started = true
		prof := e.Profiler
		if prof != nil && prof.Workers() != e.workers {
			prof = nil
		}
		for w := 0; w < e.workers; w++ {
			go e.worker(w, e.parts[w], e.aCount(w), prof)
		}
	}
	prof := e.Profiler
	if prof != nil && prof.Workers() != e.workers {
		prof = nil
	}
	for now := from; now < to; now++ {
		if prof == nil {
			if e.PreCycle != nil {
				e.PreCycle(now)
			}
			e.cur.Store(int64(now))
			e.barrier.Wait() // release workers into cycle `now`
			e.barrier.Wait() // every component has stepped `now`
			if e.PostCycle != nil {
				e.PostCycle(now)
			}
			continue
		}
		t0 := nowNS()
		if e.PreCycle != nil {
			e.PreCycle(now)
		}
		t1 := nowNS()
		e.cur.Store(int64(now))
		e.barrier.Wait()
		e.barrier.Wait()
		t2 := nowNS()
		if e.PostCycle != nil {
			e.PostCycle(now)
		}
		t3 := nowNS()
		prof.recCoord(int64(now), t0, t1-t0, t2-t1, t3-t2)
	}
}

// runSerial is the single-goroutine path (workers <= 1, or after Close).
//
//stashsim:phase serial
func (e *Executor) runSerial(from, to Tick) {
	prof := e.Profiler
	if prof == nil {
		for now := from; now < to; now++ {
			if e.PreCycle != nil {
				e.PreCycle(now)
			}
			for _, c := range e.all {
				c.Step(now)
			}
			if e.PostCycle != nil {
				e.PostCycle(now)
			}
		}
		return
	}
	split := e.SplitAt
	if split < 0 {
		split = 0
	}
	if split > len(e.all) {
		split = len(e.all)
	}
	for now := from; now < to; now++ {
		t0 := nowNS()
		if e.PreCycle != nil {
			e.PreCycle(now)
		}
		t1 := nowNS()
		for _, c := range e.all[:split] {
			c.Step(now)
		}
		t2 := nowNS()
		for _, c := range e.all[split:] {
			c.Step(now)
		}
		t3 := nowNS()
		if e.PostCycle != nil {
			e.PostCycle(now)
		}
		t4 := nowNS()
		prof.recSerial(int64(now), t0, t1-t0, t2-t1, t3-t2, t4-t3)
	}
}

// worker is the long-lived loop for one partition. It parks at the
// cycle-entry barrier between cycles (and between Runs) and exits when
// Close releases it with quit set. This is the parallel cycle loop: the
// phasecheck closure and the zero-alloc steady-state contract both root
// here.
//
//stashsim:phase parallel
//stashsim:noalloc
func (e *Executor) worker(lane int, mine []Stepper, aCount int, prof *ExecProfiler) {
	for {
		if prof == nil {
			e.barrier.Wait() // wait for the coordinator's PreCycle
			if e.quit.Load() {
				return
			}
			now := Tick(e.cur.Load())
			for _, c := range mine {
				c.Step(now)
			}
			e.barrier.Wait() // publish this cycle's writes
			continue
		}
		t0 := nowNS()
		e.barrier.Wait()
		if e.quit.Load() {
			return
		}
		now := Tick(e.cur.Load())
		t1 := nowNS()
		for _, c := range mine[:aCount] {
			c.Step(now)
		}
		t2 := nowNS()
		for _, c := range mine[aCount:] {
			c.Step(now)
		}
		t3 := nowNS()
		e.barrier.Wait()
		t4 := nowNS()
		prof.recWorker(int64(now), lane, t0, t1-t0, t2-t1, t3-t2, t4-t3)
	}
}

// Close shuts down the worker goroutines. Calling Run after Close is safe:
// it executes serially with identical results. Close is idempotent.
//
//stashsim:phase serial
func (e *Executor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		e.quit.Store(true)
		e.barrier.Wait() // release parked workers; they observe quit and exit
		e.started = false
	}
}
