package sim

import "sync"

// Stepper is a simulation component advanced once per cycle. Components may
// communicate only through latency>=1 channels, which gives the parallel
// executor one cycle of lookahead: values written at cycle t are never read
// before cycle t+1, so disjoint partitions can step concurrently.
type Stepper interface {
	Step(now Tick)
}

// Executor drives a set of components through simulated cycles, either
// serially (deterministic, lowest overhead on a single core) or with a fixed
// worker pool partitioned over the components.
//
// Each cycle is bracketed by two barrier phases. The coordinator (the
// goroutine calling Run) executes PreCycle, releases the workers into the
// cycle at the first barrier, waits for them at the second, then executes
// PostCycle. The hooks therefore always run serially, with every component
// step of the cycle strictly between them — the place for per-cycle
// singletons such as fault injection (pre) and samplers, watchdogs and
// invariant audits (post). Both hooks are optional.
//
// Results are identical to serial execution for any worker count: each
// component is pinned to one partition (so its private state is touched by
// exactly one goroutine), the one-cycle-lookahead rule makes intra-cycle
// step order irrelevant, and the barriers order every hook with respect to
// every step.
type Executor struct {
	parts   [][]Stepper
	barrier *Barrier
	workers int

	// PreCycle, when non-nil, runs serially before any component steps in
	// a cycle. Set before the first Run.
	PreCycle func(now Tick)
	// PostCycle, when non-nil, runs serially after every component has
	// stepped a cycle. Set before the first Run.
	PostCycle func(now Tick)

	// serial fast path
	all []Stepper

	mu      sync.Mutex
	started bool
	closed  bool
	cmd     chan execCmd
	done    chan struct{}
}

type execCmd struct {
	from, to Tick
}

// NewExecutor builds an executor over the given components. workers <= 1
// selects the serial path; otherwise the components are partitioned
// round-robin across min(workers, len(components)) long-lived goroutines.
// Worker counts above GOMAXPROCS are honored (the spinning barrier yields
// the processor, so oversubscribed workers still make progress); they buy
// nothing but remain deterministic.
func NewExecutor(components []Stepper, workers int) *Executor {
	if workers > len(components) {
		workers = len(components)
	}
	e := &Executor{workers: workers, all: components}
	if workers > 1 {
		e.parts = make([][]Stepper, workers)
		for i, c := range components {
			w := i % workers
			e.parts[w] = append(e.parts[w], c)
		}
		e.barrier = NewBarrier(workers + 1)
		e.cmd = make(chan execCmd)
		e.done = make(chan struct{})
	}
	return e
}

// Run advances all components from cycle `from` (inclusive) to `to`
// (exclusive). Within each cycle every component steps exactly once,
// bracketed by the PreCycle and PostCycle hooks. After Close, Run falls
// back to the serial path (same results, no worker pool).
func (e *Executor) Run(from, to Tick) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.workers <= 1 || e.closed {
		for now := from; now < to; now++ {
			if e.PreCycle != nil {
				e.PreCycle(now)
			}
			for _, c := range e.all {
				c.Step(now)
			}
			if e.PostCycle != nil {
				e.PostCycle(now)
			}
		}
		return
	}
	if !e.started {
		e.started = true
		for w := 0; w < e.workers; w++ {
			go e.worker(e.parts[w])
		}
	}
	for w := 0; w < e.workers; w++ {
		e.cmd <- execCmd{from, to}
	}
	for now := from; now < to; now++ {
		if e.PreCycle != nil {
			e.PreCycle(now)
		}
		e.barrier.Wait() // release workers into cycle `now`
		e.barrier.Wait() // every component has stepped `now`
		if e.PostCycle != nil {
			e.PostCycle(now)
		}
	}
	for w := 0; w < e.workers; w++ {
		<-e.done
	}
}

func (e *Executor) worker(mine []Stepper) {
	for cmd := range e.cmd {
		for now := cmd.from; now < cmd.to; now++ {
			e.barrier.Wait() // wait for the coordinator's PreCycle
			for _, c := range mine {
				c.Step(now)
			}
			e.barrier.Wait() // publish this cycle's writes
		}
		e.done <- struct{}{}
	}
}

// Close shuts down the worker goroutines. Calling Run after Close is safe:
// it executes serially with identical results. Close is idempotent.
func (e *Executor) Close() {
	if e.cmd == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		if e.started {
			close(e.cmd)
			e.started = false
		}
	}
}
