package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stepper is a simulation component advanced once per cycle. Components may
// communicate only through latency>=1 channels, which gives the parallel
// executor one cycle of lookahead: values written at cycle t are never read
// before cycle t+1, so disjoint partitions can step concurrently.
type Stepper interface {
	// Step advances the component one cycle. It runs concurrently with
	// every other component's Step and must stay allocation-free in the
	// steady state; both annotations propagate to implementations.
	//
	//stashsim:phase parallel
	//stashsim:noalloc
	Step(now Tick)
}

// EpochDrainer delivers one partition's buffered cross-partition traffic
// at an epoch boundary (the network implements it over the epoch-mode
// links whose consumer side the partition owns). DrainEpoch runs on the
// partition's worker goroutine immediately after the epoch-entry barrier,
// before any component steps, with the epoch counter already advanced —
// so it drains the slab the producers filled during the previous epoch.
type EpochDrainer interface {
	// DrainEpoch folds the previous epoch's staged entries into the
	// partition's owner-private rings.
	//
	//stashsim:phase parallel
	//stashsim:noalloc
	DrainEpoch(epoch int64)
}

// Executor drives a set of components through simulated cycles, either
// serially (deterministic, lowest overhead on a single core) or with a fixed
// worker pool partitioned over the components.
//
// Each cycle is bracketed by two barrier phases. The coordinator (the
// goroutine calling Run) executes PreCycle, releases the workers into the
// cycle at the first barrier, waits for them at the second, then executes
// PostCycle. The hooks therefore always run serially, with every component
// step of the cycle strictly between them — the place for per-cycle
// singletons such as fault injection (pre) and samplers, watchdogs and
// invariant audits (post). Both hooks are optional.
//
// Between Runs the workers park at the cycle-entry barrier, so the steady
// state is channel-free: the coordinator publishes the cycle number with an
// atomic store, and the barrier's own release edge orders that store before
// any worker reads it. No per-Run or per-cycle allocation occurs.
//
// Results are identical to serial execution for any worker count: each
// component is pinned to one partition (so its private state is touched by
// exactly one goroutine), the one-cycle-lookahead rule makes intra-cycle
// step order irrelevant, and the barriers order every hook with respect to
// every step.
type Executor struct {
	parts   [][]Stepper
	barrier *Barrier
	workers int

	// PreCycle, when non-nil, runs serially before any component steps in
	// a cycle. Set before the first Run.
	PreCycle func(now Tick)
	// PostCycle, when non-nil, runs serially after every component has
	// stepped a cycle. Set before the first Run.
	PostCycle func(now Tick)

	// SplitAt divides the component list into two profiled work
	// sub-phases: components[:SplitAt] are phase A, the rest phase B (the
	// network sets this to its endpoint count). Purely observational — it
	// does not change step order. Set before the first Run; 0 means all
	// work is phase B.
	SplitAt int

	// Profiler, when non-nil, receives per-worker per-phase cycle timings.
	// Set before the first Run. A profiler sized for a different worker
	// count than this executor's makes the parallel Run panic: silently
	// dropping it produced unprofiled runs with no diagnostic (attach the
	// profiler after SetWorkers, or resize it).
	Profiler *ExecProfiler

	// PostEpoch, when non-nil, runs serially after each barrier round with
	// the first cycle the components have NOT yet stepped (from+1 per
	// cycle on the per-cycle path, the next epoch's start on the epoch
	// path). The network uses it to publish simulated progress. Set before
	// the first Run.
	PostEpoch func(next Tick)

	// serial fast path
	all []Stepper

	// aCounts, when non-nil (partitioned executors), holds each
	// partition's phase-A component count; otherwise aCount derives it
	// from the round-robin layout.
	aCounts []int

	// Epoch synchronization (EnableEpochSync): partitions free-run for up
	// to lookahead cycles per barrier round, clamped so any cycle with a
	// serial event (nextEvent) still runs the hooks exactly on it.
	lookahead Tick
	nextEvent func(from Tick) Tick
	drains    []EpochDrainer

	cur    atomic.Int64 // first cycle the workers are released into
	curLen atomic.Int64 // cycles in the released span (1 outside epoch mode)
	epoch  atomic.Int64 // barrier-round counter; parity picks link slabs
	quit   atomic.Bool  // set by Close; workers observe it at the entry barrier

	mu      sync.Mutex
	started bool
	closed  bool
}

// NewExecutor builds an executor over the given components. workers <= 1
// selects the serial path; otherwise the components are partitioned
// round-robin across min(workers, len(components)) long-lived goroutines.
// Worker counts above GOMAXPROCS are honored (the spinning barrier yields
// the processor, so oversubscribed workers still make progress); they buy
// nothing but remain deterministic.
func NewExecutor(components []Stepper, workers int) *Executor {
	if workers > len(components) {
		workers = len(components)
	}
	e := &Executor{workers: workers, all: components}
	if workers > 1 {
		e.parts = make([][]Stepper, workers)
		for i, c := range components {
			w := i % workers
			e.parts[w] = append(e.parts[w], c)
		}
		e.barrier = NewBarrier(workers + 1)
	}
	return e
}

// NewPartitionedExecutor builds an executor over caller-chosen partitions
// (the network passes one dragonfly group block per partition). Each
// partition's components must lead with its aCounts[w] phase-A components
// (endpoints); the serial fallback list is assembled all-A-first so
// SplitAt profiling still splits cleanly. Partition layout is part of the
// determinism contract only insofar as each component appears exactly
// once; results are identical for any layout.
func NewPartitionedExecutor(parts [][]Stepper, aCounts []int) *Executor {
	if len(parts) < 2 {
		panic("sim: partitioned executor needs at least two partitions")
	}
	if len(aCounts) != len(parts) {
		panic("sim: aCounts length must match partition count")
	}
	e := &Executor{workers: len(parts), parts: parts, aCounts: aCounts}
	total, splitAt := 0, 0
	for w, p := range parts {
		if aCounts[w] < 0 || aCounts[w] > len(p) {
			panic("sim: partition phase-A count out of range")
		}
		total += len(p)
		splitAt += aCounts[w]
	}
	e.all = make([]Stepper, 0, total)
	for w, p := range parts {
		e.all = append(e.all, p[:aCounts[w]]...)
	}
	for w, p := range parts {
		e.all = append(e.all, p[aCounts[w]:]...)
	}
	e.SplitAt = splitAt
	e.barrier = NewBarrier(len(parts) + 1)
	return e
}

// EnableEpochSync switches the parallel path to epoch-synchronized
// conservative execution: each barrier round releases the partitions into
// a span of up to `lookahead` cycles instead of one. nextEvent returns
// the next cycle >= from on which a serial event (fault injection,
// sampler, watchdog, invariants, telemetry, flight recorder) must run;
// epochs are clamped to end at such cycles, and a cycle that *is* one
// runs as a 1-cycle epoch with the PreCycle/PostCycle hooks — so hook
// semantics stay cycle-exact. drains[w], when non-nil, delivers partition
// w's buffered cross-partition traffic at each epoch entry. Call before
// the first Run on a partitioned executor; lookahead must be at least the
// smallest cross-partition link latency for results to stay exact (the
// network derives it from the topology).
//
//stashsim:phase serial
func (e *Executor) EnableEpochSync(lookahead Tick, nextEvent func(from Tick) Tick, drains []EpochDrainer) {
	if e.aCounts == nil {
		panic("sim: epoch sync requires a NewPartitionedExecutor (round-robin partitions are not causally isolated)")
	}
	if lookahead < 2 {
		panic("sim: epoch lookahead must be at least two cycles")
	}
	if nextEvent == nil {
		panic("sim: epoch sync requires a next-event function")
	}
	if drains != nil && len(drains) != e.workers {
		panic("sim: epoch drain list must match partition count")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("sim: EnableEpochSync after the first Run")
	}
	e.lookahead = lookahead
	e.nextEvent = nextEvent
	e.drains = drains
}

// EpochClock exposes the executor's barrier-round counter; epoch-mode
// links index their staging slabs by its parity.
func (e *Executor) EpochClock() *atomic.Int64 { return &e.epoch }

// aCount returns how many of partition w's components fall below SplitAt.
// Caller-partitioned executors carry explicit counts; round-robin
// partitioning preserves relative order, so a partition's phase-A
// components are exactly its leading ones.
func (e *Executor) aCount(w int) int {
	if e.aCounts != nil {
		return e.aCounts[w]
	}
	if e.SplitAt <= w {
		return 0
	}
	return (e.SplitAt - w + e.workers - 1) / e.workers
}

// Run advances all components from cycle `from` (inclusive) to `to`
// (exclusive). Within each cycle every component steps exactly once,
// bracketed by the PreCycle and PostCycle hooks. After Close, Run falls
// back to the serial path (same results, no worker pool).
//
//stashsim:phase serial
func (e *Executor) Run(from, to Tick) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.workers <= 1 || e.closed {
		e.runSerial(from, to)
		return
	}
	prof := e.Profiler
	if prof != nil && prof.Workers() != e.workers {
		panic(fmt.Sprintf("sim: profiler sized for %d workers attached to a %d-worker executor; attach it after the worker count is final",
			prof.Workers(), e.workers))
	}
	if !e.started {
		e.started = true
		epoch := e.lookahead > 1
		for w := 0; w < e.workers; w++ {
			if epoch {
				var drain EpochDrainer
				if e.drains != nil {
					drain = e.drains[w]
				}
				go e.epochWorker(w, e.parts[w], e.aCount(w), drain, prof)
			} else {
				go e.worker(w, e.parts[w], e.aCount(w), prof)
			}
		}
	}
	if e.lookahead > 1 {
		e.runEpochs(from, to, prof)
		return
	}
	for now := from; now < to; now++ {
		if prof == nil {
			if e.PreCycle != nil {
				e.PreCycle(now)
			}
			e.cur.Store(int64(now))
			e.curLen.Store(1)
			e.barrier.Wait() // release workers into cycle `now`
			e.barrier.Wait() // every component has stepped `now`
			if e.PostCycle != nil {
				e.PostCycle(now)
			}
			if e.PostEpoch != nil {
				e.PostEpoch(now + 1)
			}
			continue
		}
		t0 := nowNS()
		if e.PreCycle != nil {
			e.PreCycle(now)
		}
		t1 := nowNS()
		e.cur.Store(int64(now))
		e.curLen.Store(1)
		e.barrier.Wait()
		e.barrier.Wait()
		t2 := nowNS()
		if e.PostCycle != nil {
			e.PostCycle(now)
		}
		if e.PostEpoch != nil {
			e.PostEpoch(now + 1)
		}
		t3 := nowNS()
		prof.recCoord(int64(now), t0, t1-t0, t2-t1, t3-t2)
	}
}

// runEpochs is the epoch-synchronized coordinator loop. Every barrier
// round covers [now, now+L): L is the lookahead clamped to the Run bound
// and to the next serial event. A cycle carrying a serial event runs as a
// 1-cycle epoch bracketed by the hooks, exactly as the per-cycle path
// would run it; event-free stretches run hook-free at full lookahead.
// The epoch counter advances before the entry barrier so workers and the
// links' staging slabs agree on the round's parity.
//
//stashsim:phase serial
func (e *Executor) runEpochs(from, to Tick, prof *ExecProfiler) {
	for now := from; now < to; {
		next := e.nextEvent(now)
		hooks := next <= now
		L := Tick(1)
		if !hooks {
			L = e.lookahead
			if now+L > next {
				L = next - now
			}
			if now+L > to {
				L = to - now
			}
		}
		if prof == nil {
			if hooks && e.PreCycle != nil {
				e.PreCycle(now)
			}
			e.cur.Store(int64(now))
			e.curLen.Store(int64(L))
			e.epoch.Add(1)
			e.barrier.Wait() // release partitions into [now, now+L)
			e.barrier.Wait() // every partition has stepped the span
			if hooks && e.PostCycle != nil {
				e.PostCycle(now)
			}
			if e.PostEpoch != nil {
				e.PostEpoch(now + L)
			}
			now += L
			continue
		}
		t0 := nowNS()
		if hooks && e.PreCycle != nil {
			e.PreCycle(now)
		}
		t1 := nowNS()
		e.cur.Store(int64(now))
		e.curLen.Store(int64(L))
		e.epoch.Add(1)
		e.barrier.Wait()
		e.barrier.Wait()
		t2 := nowNS()
		if hooks && e.PostCycle != nil {
			e.PostCycle(now)
		}
		if e.PostEpoch != nil {
			e.PostEpoch(now + L)
		}
		t3 := nowNS()
		prof.recCoordEpoch(int64(now), t0, t1-t0, t2-t1, t3-t2, int64(L))
		now += L
	}
}

// runSerial is the single-goroutine path (workers <= 1, or after Close).
//
//stashsim:phase serial
func (e *Executor) runSerial(from, to Tick) {
	prof := e.Profiler
	if prof == nil {
		for now := from; now < to; now++ {
			if e.PreCycle != nil {
				e.PreCycle(now)
			}
			for _, c := range e.all {
				c.Step(now)
			}
			if e.PostCycle != nil {
				e.PostCycle(now)
			}
		}
		return
	}
	split := e.SplitAt
	if split < 0 {
		split = 0
	}
	if split > len(e.all) {
		split = len(e.all)
	}
	for now := from; now < to; now++ {
		t0 := nowNS()
		if e.PreCycle != nil {
			e.PreCycle(now)
		}
		t1 := nowNS()
		for _, c := range e.all[:split] {
			c.Step(now)
		}
		t2 := nowNS()
		for _, c := range e.all[split:] {
			c.Step(now)
		}
		t3 := nowNS()
		if e.PostCycle != nil {
			e.PostCycle(now)
		}
		t4 := nowNS()
		prof.recSerial(int64(now), t0, t1-t0, t2-t1, t3-t2, t4-t3)
	}
}

// worker is the long-lived loop for one partition. It parks at the
// cycle-entry barrier between cycles (and between Runs) and exits when
// Close releases it with quit set. This is the parallel cycle loop: the
// phasecheck closure and the zero-alloc steady-state contract both root
// here.
//
//stashsim:phase parallel
//stashsim:noalloc
func (e *Executor) worker(lane int, mine []Stepper, aCount int, prof *ExecProfiler) {
	for {
		if prof == nil {
			e.barrier.Wait() // wait for the coordinator's PreCycle
			if e.quit.Load() {
				return
			}
			now := Tick(e.cur.Load())
			for _, c := range mine {
				c.Step(now)
			}
			e.barrier.Wait() // publish this cycle's writes
			continue
		}
		t0 := nowNS()
		e.barrier.Wait()
		if e.quit.Load() {
			return
		}
		now := Tick(e.cur.Load())
		t1 := nowNS()
		for _, c := range mine[:aCount] {
			c.Step(now)
		}
		t2 := nowNS()
		for _, c := range mine[aCount:] {
			c.Step(now)
		}
		t3 := nowNS()
		e.barrier.Wait()
		t4 := nowNS()
		prof.recWorker(int64(now), lane, t0, t1-t0, t2-t1, t3-t2, t4-t3)
	}
}

// epochWorker is the epoch-mode partition loop: park at the entry
// barrier, drain the previous epoch's cross-partition traffic, then
// free-run the partition through the released span with no further
// synchronization. Determinism holds because the lookahead rule
// guarantees nothing staged by a concurrent partition this epoch is due
// before the next one, so every flit and credit is folded before its due
// cycle, in per-link FIFO order, for any worker interleaving.
//
//stashsim:phase parallel
//stashsim:noalloc
func (e *Executor) epochWorker(lane int, mine []Stepper, aCount int, drain EpochDrainer, prof *ExecProfiler) {
	for {
		if prof == nil {
			e.barrier.Wait() // wait for the coordinator's hooks
			if e.quit.Load() {
				return
			}
			now := Tick(e.cur.Load())
			end := now + Tick(e.curLen.Load())
			if drain != nil {
				drain.DrainEpoch(e.epoch.Load())
			}
			for ; now < end; now++ {
				for _, c := range mine {
					c.Step(now)
				}
			}
			e.barrier.Wait() // publish this epoch's writes
			continue
		}
		t0 := nowNS()
		e.barrier.Wait()
		if e.quit.Load() {
			return
		}
		start := Tick(e.cur.Load())
		end := start + Tick(e.curLen.Load())
		t1 := nowNS()
		if drain != nil {
			drain.DrainEpoch(e.epoch.Load())
		}
		t2 := nowNS()
		var dA, dB int64
		for now := start; now < end; now++ {
			u0 := nowNS()
			for _, c := range mine[:aCount] {
				c.Step(now)
			}
			u1 := nowNS()
			for _, c := range mine[aCount:] {
				c.Step(now)
			}
			dA += u1 - u0
			dB += nowNS() - u1
		}
		t3 := nowNS()
		e.barrier.Wait()
		t4 := nowNS()
		prof.recWorkerEpoch(int64(start), lane, t0, t1-t0, t2-t1, dA, dB, t4-t3)
	}
}

// Close shuts down the worker goroutines. Calling Run after Close is safe:
// it executes serially with identical results. Close is idempotent.
//
//stashsim:phase serial
func (e *Executor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		e.quit.Store(true)
		e.barrier.Wait() // release parked workers; they observe quit and exit
		e.started = false
	}
}
