package network

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// buildLoaded constructs a tiny e2e-stashing network with a fault plan and
// uniform traffic, identical for every call with the same seed.
func buildLoaded(t *testing.T, seed uint64) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.Seed = seed
	cfg.Fault = &fault.Plan{Seed: seed + 101, LinkDropRate: 1e-3, CorruptRate: 5e-4}
	cfg.Retrans = core.DefaultRetrans()
	cfg.RetainPayload = true
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := sim.NewRNG(seed + 77)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.25, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	return n
}

// TestParallelMatchesSerial is the core determinism claim of the parallel
// executor: the same configuration stepped by one goroutine and by four
// produces bit-identical counters, fault statistics, and latency moments.
func TestParallelMatchesSerial(t *testing.T) {
	serial := buildLoaded(t, 3)
	serial.Warmup(500)
	serial.Run(6000)

	par := buildLoaded(t, 3)
	par.SetWorkers(4)
	defer par.Close()
	par.Warmup(500)
	par.Run(6000)

	if cs, cp := serial.Counters(), par.Counters(); cs != cp {
		t.Fatalf("counter divergence:\nserial   %+v\nparallel %+v", cs, cp)
	}
	if fs, fp := serial.FaultStats(), par.FaultStats(); fs != fp {
		t.Fatalf("fault stat divergence:\nserial   %+v\nparallel %+v", fs, fp)
	}
	ls, lp := serial.Collector().LatAcc[proto.ClassDefault], par.Collector().LatAcc[proto.ClassDefault]
	if ls != lp {
		t.Fatalf("latency divergence:\nserial   %+v\nparallel %+v", ls, lp)
	}
	if s, p := serial.NormalizedAccepted(6000), par.NormalizedAccepted(6000); s != p {
		t.Fatalf("accepted divergence: %v vs %v", s, p)
	}
	if serial.Now != par.Now {
		t.Fatalf("clock divergence: %d vs %d", serial.Now, par.Now)
	}
}

// TestParallelStepRace steps a fully instrumented network — metrics, tracer,
// sampler, watchdog, invariants, and fault injection all live — with four
// workers. Run under -race (make par-smoke / CI) it is the synchronization
// proof for the whole hot path; without -race it still covers the barrier
// hooks firing alongside concurrent component steps.
func TestParallelStepRace(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	n := buildLoaded(t, 11)
	n.EnableMetrics(metrics.NewRegistry())
	n.EnableTracing(metrics.NewTracer(1 << 12))
	n.AttachSampler(250)
	var out bytes.Buffer
	n.AttachWatchdog(50000, &out)
	n.EnableInvariants(64)
	n.SetWorkers(4)
	defer n.Close()

	n.Warmup(200)
	n.Run(1500)
	if err := n.SanityCheck(); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	if n.Collectors.TotalDeliveredFlits() == 0 {
		t.Fatal("instrumented parallel run delivered nothing")
	}
	if out.Len() != 0 {
		t.Fatalf("watchdog fired:\n%s", out.String())
	}
}

// TestRunUntilNonPositiveCheckEvery is the regression test for the spin bug:
// RunUntil with checkEvery <= 0 used to loop forever without advancing a
// cycle. It must clamp to one and respect the budget.
func TestRunUntilNonPositiveCheckEvery(t *testing.T) {
	for _, every := range []int64{0, -7} {
		cfg := core.TinyConfig()
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// done never fires: the call must still return after the budget.
		if n.RunUntil(10, every, func() bool { return false }) {
			t.Fatalf("checkEvery=%d: done reported without firing", every)
		}
		if n.Now != 10 {
			t.Fatalf("checkEvery=%d: advanced %d cycles, want 10", every, n.Now)
		}
		// And an immediately-true predicate fires on the first check.
		if !n.RunUntil(10, every, func() bool { return true }) {
			t.Fatalf("checkEvery=%d: true predicate not observed", every)
		}
	}
}

// TestNormalizedZeroCycles guards the division: a zero or negative measured
// window must yield 0, never NaN (which would poison -json summaries).
func TestNormalizedZeroCycles(t *testing.T) {
	cfg := core.TinyConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cycles := range []int64{0, -100} {
		if v := n.NormalizedAccepted(cycles); v != 0 || math.IsNaN(v) {
			t.Fatalf("NormalizedAccepted(%d) = %v, want 0", cycles, v)
		}
		if v := n.NormalizedOffered(cycles); v != 0 || math.IsNaN(v) {
			t.Fatalf("NormalizedOffered(%d) = %v, want 0", cycles, v)
		}
	}
}

// TestWarmupNilCollectors verifies Warmup (and the normalization totals) are
// safe on a network whose collector set has been detached.
func TestWarmupNilCollectors(t *testing.T) {
	cfg := core.TinyConfig()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Collectors = nil
	for _, ep := range n.Endpoints {
		ep.Collector = nil
	}
	n.Warmup(100) // must not panic
	if v := n.NormalizedAccepted(100); v != 0 {
		t.Fatalf("collector-less NormalizedAccepted = %v, want 0", v)
	}
	if n.Now != 100 {
		t.Fatalf("Warmup advanced %d cycles, want 100", n.Now)
	}
}
