// Package network assembles a complete simulated system: a dragonfly of
// tiled (optionally stashing) switches, endpoints, and the latency links
// between them, plus the warmup/measure phasing used by the experiments.
package network

import (
	"fmt"
	"io"
	"sync/atomic"

	"stashsim/internal/core"
	"stashsim/internal/endpoint"
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/telemetry"
	"stashsim/internal/topo"
)

// Network is one fully wired simulated system.
type Network struct {
	Cfg       *core.Config
	Switches  []*core.Switch
	Endpoints []*endpoint.Endpoint

	// Collectors holds one measurement shard per endpoint (endpoint i
	// records only into shard i), so the parallel executor can step
	// endpoints concurrently with no synchronization on the recording
	// path. Read aggregates through Collector(), which merges the shards
	// in fixed shard order — the order that keeps float accumulation, and
	// therefore -json output, bit-identical across worker counts.
	Collectors *endpoint.CollectorSet

	// Observability sinks; all nil (disabled) by default. See the
	// EnableMetrics/EnableTracing/AttachSampler/AttachWatchdog wiring
	// helpers.
	Metrics  *metrics.Registry
	Tracer   *metrics.Tracer
	Sampler  *metrics.Sampler
	Watchdog *metrics.Watchdog

	// Profiler, when non-nil (EnableExecProfile / SetExecProfiler),
	// receives per-worker per-phase executor timings; it also routes Run
	// through the executor on the serial path so single-worker runs are
	// profiled too.
	Profiler *sim.ExecProfiler

	// Flight, when non-nil (AttachFlight), records per-cycle aggregate
	// deltas into a ring dumped by the watchdog and SIGQUIT.
	Flight *metrics.FlightRecorder

	// Telemetry, when non-nil (AttachTelemetry), republishes a quiescent
	// snapshot for the live HTTP server at its publication interval.
	Telemetry *telemetry.Publisher

	// Invariants, when non-nil (EnableInvariants), audits the
	// conservation laws at the end of each Step.
	Invariants *core.Invariants

	// Injector, when non-nil (Cfg.Fault active), owns the fault schedule:
	// the per-link fault states were handed out at wiring time, and the
	// stash-bank failure events are applied by Step.
	Injector *fault.Injector

	Now sim.Tick

	// workers selects the cycle-level execution mode (SetWorkers); exec is
	// the lazily built parallel executor over all endpoints and switches.
	workers int
	exec    *sim.Executor

	// epochPolicy selects the parallel synchronization scheme
	// (SetEpochPolicy): 0 auto, -1 per-cycle barrier, >0 epoch-length cap.
	// epochLinks and epochLookahead describe the active epoch wiring —
	// nil/0 unless the built executor runs epoch sync; teardownExec
	// restores the links to per-cycle delivery.
	epochPolicy    int64
	epochLinks     []epochLink
	epochLookahead int64

	// profOwned marks Profiler as built by EnableExecProfile (ring size
	// profRing), which SetWorkers then resizes to follow the worker count.
	profOwned bool
	profRing  int

	// cycleDone counts completed cycles, stored from the serial postCycle
	// hook. Unlike Now — which the executor path writes back only when Run
	// returns — it is current mid-run, and atomic so the SIGQUIT handler
	// and telemetry snapshots read it from other goroutines safely.
	cycleDone atomic.Int64

	// ckptFn, when non-nil, is the pending checkpoint action scheduled by
	// ScheduleCheckpoint: preCycle invokes it once at the first cycle
	// >= ckptAt, before any fault event or component step of that cycle.
	// Under epoch synchronization, nextSerialEvent clamps an epoch to end
	// there, so the hook runs at a true serial barrier in every execution
	// mode and the snapshot equals the one a serial run would take.
	ckptAt int64
	ckptFn func(now sim.Tick)
}

// New builds and wires a network from the configuration.
func New(cfg *core.Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Topo
	rng := sim.NewRNG(cfg.Seed)
	n := &Network{
		Cfg:        cfg,
		Switches:   make([]*core.Switch, d.NumSwitches()),
		Endpoints:  make([]*endpoint.Endpoint, d.NumEndpoints()),
		Collectors: endpoint.NewCollectorSet(d.NumEndpoints()),
	}
	swRNG := rng.Derive(1)
	epRNG := rng.Derive(2)
	for i := range n.Switches {
		n.Switches[i] = core.NewSwitch(i, cfg, swRNG)
	}
	for i := range n.Endpoints {
		ep := endpoint.New(int32(i), cfg, epRNG)
		ep.Collector = n.Collectors.Shard(i)
		n.Endpoints[i] = ep
	}
	if cfg.FaultActive() {
		n.Injector = fault.NewInjector(*cfg.Fault)
		for _, sf := range cfg.Fault.StashFailures {
			if sf.Switch >= len(n.Switches) || sf.Port >= d.Radix() {
				return nil, fmt.Errorf("network: stash failure at sw%d.%d outside the %d-switch radix-%d topology",
					sf.Switch, sf.Port, len(n.Switches), d.Radix())
			}
		}
	}
	// Wire every directed link exactly once, as seen from its producer.
	// Fault states are attached by the invariant checker's edge names;
	// endpoint->switch and switch->switch links run credit flow control,
	// so drops on them synthesize the lost credit.
	for sw := 0; sw < d.NumSwitches(); sw++ {
		s := n.Switches[sw]
		for port := 0; port < d.Radix(); port++ {
			class := d.PortClass(port)
			if class == topo.Endpoint {
				ep := n.Endpoints[d.EndpointID(sw, port)]
				up := core.NewLink(cfg.Lat.Endpoint)   // endpoint -> switch
				down := core.NewLink(cfg.Lat.Endpoint) // switch -> endpoint
				up.Fault = n.Injector.Link(fmt.Sprintf("ep%d->sw%d.%d", ep.ID, sw, port))
				up.Credited = true
				down.Fault = n.Injector.Link(fmt.Sprintf("sw%d.%d->ep%d", sw, port, ep.ID))
				s.AttachInLink(port, up)
				s.AttachOutLink(port, down, 0)
				ep.Attach(up, down, cfg.NormalInCap(topo.Endpoint))
				continue
			}
			nsw, nport := d.Neighbor(sw, port)
			l := core.NewLink(cfg.Lat.Of(class))
			l.Fault = n.Injector.Link(fmt.Sprintf("sw%d.%d->sw%d.%d", sw, port, nsw, nport))
			l.Credited = true
			s.AttachOutLink(port, l, cfg.NormalInCap(d.PortClass(nport)))
			n.Switches[nsw].AttachInLink(nport, l)
		}
	}
	if missing := n.Injector.UnmatchedOutages(); len(missing) > 0 {
		return nil, fmt.Errorf("network: fault plan names links that do not exist: %v", missing)
	}
	return n, nil
}

// EnableMetrics registers every switch's counters and gauges in reg and
// remembers it on the network. Call before the run; pass the registry to
// later reporting. A nil registry is a no-op.
func (n *Network) EnableMetrics(reg *metrics.Registry) {
	n.Metrics = reg
	for _, s := range n.Switches {
		s.EnableMetrics(reg)
	}
}

// EnableTracing attaches the packet-lifecycle tracer to every switch and
// endpoint. A nil tracer detaches.
func (n *Network) EnableTracing(tr *metrics.Tracer) {
	n.Tracer = tr
	for _, s := range n.Switches {
		s.SetTracer(tr)
	}
	for _, ep := range n.Endpoints {
		ep.Tracer = tr
	}
}

// AttachSampler installs an occupancy sampler polled every `every` cycles
// with the standard network probes: network-wide stash fill, normal
// input/output buffer fill, and the endpoint injection backlog (flits).
func (n *Network) AttachSampler(every int64) *metrics.Sampler {
	sp := metrics.NewSampler(every)
	sp.Probe("stash.fill", func() float64 {
		used, cap := 0, 0
		for _, s := range n.Switches {
			used += s.StashUsed()
			cap += s.StashCapTotal()
		}
		if cap == 0 {
			return 0
		}
		return float64(used) / float64(cap)
	})
	sp.Probe("in.buf.fill", func() float64 {
		used, cap := 0, 0
		for _, s := range n.Switches {
			u, c, _, _ := s.BufferFill()
			used += u
			cap += c
		}
		if cap == 0 {
			return 0
		}
		return float64(used) / float64(cap)
	})
	sp.Probe("out.buf.fill", func() float64 {
		used, cap := 0, 0
		for _, s := range n.Switches {
			_, _, u, c := s.BufferFill()
			used += u
			cap += c
		}
		if cap == 0 {
			return 0
		}
		return float64(used) / float64(cap)
	})
	sp.Probe("inject.backlog", func() float64 {
		return float64(n.TotalQueuedFlits())
	})
	n.Sampler = sp
	return sp
}

// AttachWatchdog installs a stall watchdog: if window cycles pass with no
// flit delivered at any endpoint while work is pending, it dumps the state
// of every non-idle switch to out instead of spinning silently.
func (n *Network) AttachWatchdog(window int64, out io.Writer) *metrics.Watchdog {
	w := &metrics.Watchdog{
		Window: window,
		Out:    out,
		Delivered: func() int64 {
			var total int64
			for _, ep := range n.Endpoints {
				total += ep.RecvFlits
			}
			return total
		},
		Pending: func() bool {
			if n.TotalQueuedFlits() > 0 {
				return true
			}
			for _, s := range n.Switches {
				if s.Busy() {
					return true
				}
			}
			return false
		},
		// Compose the dump at call time so a flight recorder attached in
		// either order (before or after the watchdog) contributes its
		// recent-cycle table; Dump on a nil recorder is a no-op.
		Dump: func(w io.Writer) {
			n.Flight.Dump(w, 64)
			n.DumpNonIdle(w)
		},
	}
	if n.Injector != nil {
		// Fault recovery masquerading as a stall: report active outage
		// windows, in-flight parity reconstructions, and recent stash-bank
		// failures (whose drains flow through retry/reconstruction timers)
		// instead of dumping switch state.
		w.Note = func(from, to int64) string {
			if note := n.Injector.OutageNote(from, to); note != "" {
				return note
			}
			if pending := n.PendingReconstructions(); pending > 0 {
				return fmt.Sprintf("%d stash reconstruction(s) in flight", pending)
			}
			return n.Injector.StashFailNote(from, to)
		}
	}
	n.Watchdog = w
	return w
}

// PendingReconstructions returns the network-wide count of in-flight
// parity rebuilds (0 unless StashParity is enabled and a bank recently
// failed).
func (n *Network) PendingReconstructions() int {
	total := 0
	for _, s := range n.Switches {
		total += s.PendingReconstructions()
	}
	return total
}

// EnableInvariants installs the runtime invariant checker, auditing the
// conservation laws every `every` cycles (values below one audit every
// cycle). It re-walks the topology to enumerate every credited edge:
// switch→switch links paired with the downstream input buffer, and
// endpoint→switch injection links paired with the end-port buffer.
func (n *Network) EnableInvariants(every int64) *core.Invariants {
	d := n.Cfg.Topo
	iv := &core.Invariants{
		Every:    every,
		Switches: n.Switches,
		ExtCreated: func() int64 {
			var total int64
			for _, ep := range n.Endpoints {
				total += ep.SentFlits
			}
			return total
		},
		ExtDestroyed: func() int64 {
			var total int64
			for _, ep := range n.Endpoints {
				total += ep.RecvFlits
			}
			return total
		},
	}
	for _, ep := range n.Endpoints {
		toSw, _ := ep.AuditLinks()
		iv.ExtLinks = append(iv.ExtLinks, toSw)
	}
	for sw := 0; sw < d.NumSwitches(); sw++ {
		s := n.Switches[sw]
		for port := 0; port < d.Radix(); port++ {
			if d.PortClass(port) == topo.Endpoint {
				ep := n.Endpoints[d.EndpointID(sw, port)]
				toSw, _ := ep.AuditLinks()
				iv.Edges = append(iv.Edges, core.CreditEdge{
					Name:    fmt.Sprintf("ep%d->sw%d.%d", ep.ID, sw, port),
					Credits: ep.AuditCredits(),
					Link:    toSw,
					Buf:     s.AuditInBuf(port),
				})
				continue
			}
			nsw, nport := d.Neighbor(sw, port)
			iv.Edges = append(iv.Edges, core.CreditEdge{
				Name:    fmt.Sprintf("sw%d.%d->sw%d.%d", sw, port, nsw, nport),
				Credits: s.AuditOutCredits(port),
				Link:    s.AuditOutLink(port),
				Buf:     n.Switches[nsw].AuditInBuf(nport),
			})
		}
	}
	n.Invariants = iv
	return iv
}

// DumpNonIdle writes DumpState for every switch still holding flits.
func (n *Network) DumpNonIdle(w io.Writer) {
	for _, s := range n.Switches {
		if s.Busy() {
			io.WriteString(w, s.DumpState())
		}
	}
}

// preCycle applies the per-cycle singleton work that must precede any
// component step: due stash-bank failure events. Under the parallel
// executor it runs serially at the cycle barrier (the coordinator's
// PreCycle hook).
//
//stashsim:phase serial -- fault injection mutates arbitrary switches; only the coordinator may run it
func (n *Network) preCycle(now sim.Tick) {
	// The checkpoint fires before due stash failures so an event scheduled
	// at this cycle is still unfired in the snapshot and re-fires in the
	// restored run's first preCycle — the restored run replays this cycle.
	if fn := n.ckptFn; fn != nil && int64(now) >= n.ckptAt {
		n.ckptFn = nil
		fn(now)
	}
	if n.Injector.HasStashFails() {
		for _, sf := range n.Injector.DueStashFails(int64(now)) {
			lost, reconstructed := n.Switches[sf.Switch].FailStashBank(now, sf.Port)
			n.Injector.AddStashCopiesLost(int64(lost))
			n.Injector.AddStashReconstructed(int64(reconstructed))
		}
	}
}

// postCycle runs the per-cycle singleton observers after every component
// has stepped: sampler, watchdog, invariant audit. Under the parallel
// executor it runs serially at the cycle barrier (the coordinator's
// PostCycle hook), so the probes see a quiescent network.
//
//stashsim:phase serial -- the observers walk live state; only the coordinator may run it
func (n *Network) postCycle(now sim.Tick) {
	n.cycleDone.Store(int64(now) + 1)
	n.Flight.Record(int64(now)) // before the watchdog so stall dumps include this cycle
	n.Sampler.MaybeSample(now)
	n.Watchdog.Observe(now)
	n.Invariants.Check(now)
	n.Telemetry.MaybePublish(int64(now))
}

// Step advances the whole network one cycle on the calling goroutine.
func (n *Network) Step() {
	now := n.Now
	n.preCycle(now)
	for _, ep := range n.Endpoints {
		ep.Step(now)
	}
	for _, s := range n.Switches {
		s.Step(now)
	}
	n.postCycle(now)
	n.Now++
}

// SetWorkers selects the cycle-level execution mode for Run: workers <= 1
// (the default) steps every component serially on the calling goroutine;
// workers > 1 partitions endpoints and switches across that many
// long-lived goroutines (by dragonfly group with epoch synchronization
// when the count and topology allow it — see SetEpochPolicy — otherwise
// round-robin with a per-cycle barrier; see sim.Executor). Components
// communicate only over latency>=1 links, so intra-cycle step order is
// irrelevant and results are bit-identical for any worker count and
// either synchronization scheme. Call before Run; call Close when done
// with a parallel network to release the worker goroutines.
//
// A profiler the network built itself (EnableExecProfile) is resized to
// the new worker count, so EnableExecProfile and SetWorkers compose in
// either order; an externally attached profiler (SetExecProfiler) is
// left alone and must already match.
func (n *Network) SetWorkers(workers int) {
	if workers == n.workers {
		return
	}
	n.teardownExec()
	n.workers = workers
	if n.profOwned && n.Profiler != nil {
		w := workers
		if w < 1 {
			w = 1
		}
		if n.Profiler.Workers() != w {
			p := sim.NewExecProfiler(w, n.profRing)
			p.SetPhaseLabels("endpoints", "switches")
			n.Profiler = p
		}
	}
}

// executor lazily builds the parallel executor over every endpoint and
// switch, with the per-cycle singletons installed as barrier hooks.
// Group-aligned worker counts get the epoch-synchronized partition
// build; everything else falls back to round-robin per-cycle sync.
func (n *Network) executor() *sim.Executor {
	if n.exec == nil {
		if e := n.buildEpochExecutor(); e != nil {
			n.exec = e
			return n.exec
		}
		comps := make([]sim.Stepper, 0, len(n.Endpoints)+len(n.Switches))
		for _, ep := range n.Endpoints {
			comps = append(comps, ep)
		}
		for _, s := range n.Switches {
			comps = append(comps, s)
		}
		n.exec = sim.NewExecutor(comps, n.workers)
		n.exec.PreCycle = n.preCycle
		n.exec.PostCycle = n.postCycle
		n.exec.SplitAt = len(n.Endpoints)
		n.exec.Profiler = n.Profiler
	}
	return n.exec
}

// Close releases the parallel executor's worker goroutines, if any, and
// drops the network back to serial execution: the worker count resets to
// one, so later runs step on the calling goroutine until SetWorkers
// re-enables a pool. (Closing used to keep the old worker count, so the
// next Run silently rebuilt the executor and re-spawned the goroutines
// this call had just released.)
func (n *Network) Close() {
	n.teardownExec()
	if n.workers > 1 {
		n.SetWorkers(1) // also resizes a network-owned profiler
	}
}

// Run advances the network by the given number of cycles, using the
// parallel executor when SetWorkers enabled it.
func (n *Network) Run(cycles int64) {
	if cycles <= 0 {
		return
	}
	// A profiled serial run also routes through the executor, whose
	// instrumented serial path times the hooks and both work sub-phases.
	if n.workers > 1 || n.Profiler != nil {
		from := n.Now
		n.executor().Run(from, from+sim.Tick(cycles))
		n.Now = from + sim.Tick(cycles)
		return
	}
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// RunUntil advances the network until done() reports true or the budget
// of cycles is exhausted, checking every checkEvery cycles (values below
// one are clamped to one — a non-positive interval must not spin the loop
// forever without advancing). It returns whether done() fired.
func (n *Network) RunUntil(budget, checkEvery int64, done func() bool) bool {
	if checkEvery < 1 {
		checkEvery = 1
	}
	for spent := int64(0); spent < budget; spent += checkEvery {
		step := checkEvery
		if rem := budget - spent; step > rem {
			step = rem
		}
		n.Run(step)
		if done() {
			return true
		}
	}
	return done()
}

// Warmup runs the network with measurement disabled, then clears and
// re-enables the collectors. Experiments call this before their measured
// window so statistics reflect steady state. Safe on a network without
// collectors (every CollectorSet method is nil-receiver-safe).
func (n *Network) Warmup(cycles int64) {
	n.Collectors.SetEnabled(false)
	n.Run(cycles)
	n.Collectors.Reset()
	n.Collectors.SetEnabled(true)
}

// ChannelRate returns the channel capacity in flits per internal cycle.
func (n *Network) ChannelRate() float64 {
	return float64(n.Cfg.RateNum) / float64(n.Cfg.RateDen)
}

// Collector returns a merged snapshot of every endpoint's measurement
// shard, folded in fixed shard order. Call it after (or between) runs;
// the snapshot does not track later recording.
func (n *Network) Collector() *endpoint.Collector {
	return n.Collectors.Merged()
}

// NormalizedAccepted returns delivered data flits per node per cycle over
// the measured window, normalized so 1.0 is full channel capacity. A
// non-positive window or an endpoint-less network yields 0, not NaN.
func (n *Network) NormalizedAccepted(cycles int64) float64 {
	if cycles <= 0 || len(n.Endpoints) == 0 {
		return 0
	}
	per := float64(n.Collectors.TotalDeliveredFlits()) / float64(cycles) / float64(len(n.Endpoints))
	return per / n.ChannelRate()
}

// NormalizedOffered returns generated data flits per node per cycle over
// the measured window, normalized to channel capacity. A non-positive
// window or an endpoint-less network yields 0, not NaN.
func (n *Network) NormalizedOffered(cycles int64) float64 {
	if cycles <= 0 || len(n.Endpoints) == 0 {
		return 0
	}
	per := float64(n.Collectors.TotalOfferedFlits()) / float64(cycles) / float64(len(n.Endpoints))
	return per / n.ChannelRate()
}

// TotalStashUsed sums committed stash occupancy over all switches.
func (n *Network) TotalStashUsed() int {
	total := 0
	for _, s := range n.Switches {
		total += s.StashUsed()
	}
	return total
}

// TotalQueuedFlits sums endpoint injection backlogs.
func (n *Network) TotalQueuedFlits() int64 {
	var total int64
	for _, ep := range n.Endpoints {
		total += ep.QueuedFlits()
	}
	return total
}

// DeliveryTotals sums the exactly-once accounting across endpoints:
// distinct data packets injected, first deliveries, suppressed duplicate
// deliveries, and packets abandoned after retry exhaustion. None of the
// counts are gated by measurement warmup.
func (n *Network) DeliveryTotals() (injected, delivered, dups, abandoned int64) {
	for _, ep := range n.Endpoints {
		injected += ep.InjectedPkts
		delivered += ep.DeliveredUnique
		dups += ep.DupDelivered
		abandoned += ep.Abandoned
	}
	return
}

// Drain runs the network until every injected packet has been delivered
// exactly once or abandoned, up to budget extra cycles, and reports
// whether the network fully drained. Fault-recovery experiments call it
// after the measured window so delivery assertions cover in-flight and
// timer-pending packets.
func (n *Network) Drain(budget int64) bool {
	return n.RunUntil(budget, 256, func() bool {
		if n.TotalQueuedFlits() > 0 {
			return false
		}
		injected, delivered, _, abandoned := n.DeliveryTotals()
		return delivered+abandoned >= injected
	})
}

// FaultStats returns the injected-fault counts merged across the per-link
// shards, or the zero value when no fault plan is active.
func (n *Network) FaultStats() fault.Stats {
	return n.Injector.Snapshot()
}

// Counters sums the per-switch counters.
func (n *Network) Counters() core.Counters {
	var c core.Counters
	for _, s := range n.Switches {
		sc := s.Counters
		c.FlitsSwitched += sc.FlitsSwitched
		c.FlitsSent += sc.FlitsSent
		c.StashStores += sc.StashStores
		c.StashRetrieves += sc.StashRetrieves
		c.ECNMarks += sc.ECNMarks
		c.CongestedCycles += sc.CongestedCycles
		c.StashFullStalls += sc.StashFullStalls
		c.E2ETracked += sc.E2ETracked
		c.E2EDeletes += sc.E2EDeletes
		c.E2ERetransmits += sc.E2ERetransmits
		c.SidebandMsgs += sc.SidebandMsgs
		c.CongStashed += sc.CongStashed
		c.CongStashedVict += sc.CongStashedVict
		c.HoLAbsorbed += sc.HoLAbsorbed
		c.RetryTimeouts += sc.RetryTimeouts
		c.RetryAbandoned += sc.RetryAbandoned
		c.StashCopiesLost += sc.StashCopiesLost
		c.StashBypassed += sc.StashBypassed
		c.StashReconstructed += sc.StashReconstructed
		c.StashReconFailed += sc.StashReconFailed
		c.ParityGroupsSealed += sc.ParityGroupsSealed
		c.StashDegradedReads += sc.StashDegradedReads
	}
	return c
}

// Describe returns a one-line summary of the configuration.
func (n *Network) Describe() string {
	d := n.Cfg.Topo
	return fmt.Sprintf("dragonfly p=%d a=%d h=%d (%d endpoints, %d switches, radix %d), mode=%s stash=%.0f%%",
		d.P, d.A, d.H, d.NumEndpoints(), d.NumSwitches(), d.Radix(),
		n.Cfg.Mode, n.Cfg.StashCapFrac*100)
}

// SanityCheck verifies cross-component invariants after a run; tests call
// it to catch flow-control leaks. It returns an error when an invariant is
// violated.
func (n *Network) SanityCheck() error {
	cls := proto.NumClasses
	_ = cls
	for _, s := range n.Switches {
		if used := s.StashUsed(); used < 0 || used > s.StashCapTotal() {
			return fmt.Errorf("switch %d stash occupancy %d outside [0,%d]", s.ID, used, s.StashCapTotal())
		}
	}
	return nil
}
