package network

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

// The resume-equality harness. Every grid point builds three identically
// configured networks: a straight-through golden run, a run that
// checkpoints mid-flight (and must be unperturbed by doing so), and a
// fresh network restored from that checkpoint which runs only the
// remaining cycles. All three must end in the same state, compared via
// the strongest observable available — the checkpoint bytes of the final
// state, which cover every counter, buffer, timer, and RNG stream.

// snapScenario names a workload/fault shape of the grid.
type snapScenario struct {
	name   string
	mode   core.StashMode
	parity int
	ecn    bool
	fault  *fault.Plan
	load   float64
}

func snapScenarios(failAt int64) []snapScenario {
	return []snapScenario{
		// Drops plus a scheduled bank failure: the checkpoint lands with
		// retry timers armed (mid-backoff) and the failure still pending.
		{name: "faults", mode: core.StashE2E, load: 0.25,
			fault: &fault.Plan{Seed: 9, LinkDropRate: 2e-3,
				StashFailures: []fault.StashFail{{Switch: 0, Port: 0, At: failAt}}}},
		// Parity groups with two bank failures bracketing the checkpoint:
		// the first one's reconstruction is in flight when the snapshot is
		// taken, the second fires after restore.
		{name: "parity", mode: core.StashE2E, parity: 4, load: 0.25,
			fault: &fault.Plan{Seed: 9, LinkDropRate: 1e-3,
				StashFailures: []fault.StashFail{
					{Switch: 0, Port: 1, At: failAt - 3},
					{Switch: 1, Port: 0, At: failAt + 400},
				}}},
		// Congestion stashing with ECN windows and per-destination state.
		{name: "ecn", mode: core.StashCongestion, ecn: true, load: 0.45},
	}
}

// snapConfig materializes one scenario on one preset.
func snapConfig(preset string, sc snapScenario) *core.Config {
	var cfg *core.Config
	if preset == "small" {
		cfg = core.SmallConfig()
	} else {
		cfg = core.TinyConfig()
	}
	cfg.Mode = sc.mode
	if sc.ecn {
		cfg.ECN = core.DefaultECN()
	}
	cfg.StashParity = sc.parity
	if sc.fault != nil {
		plan := *sc.fault
		cfg.Fault = &plan
		cfg.Retrans = core.DefaultRetrans()
		if sc.mode == core.StashE2E {
			cfg.RetainPayload = true
		}
	}
	return cfg
}

// buildSnapNet builds a network for the scenario with the full observer
// set attached (so the snapshot covers metrics, sampler, watchdog, and
// invariant state) and uniform traffic wired with restorable RNG streams.
func buildSnapNet(t *testing.T, cfg *core.Config, sc snapScenario) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableInvariants(64)
	n.EnableMetrics(metrics.NewRegistry())
	n.AttachSampler(250)
	n.AttachWatchdog(100000, io.Discard)
	wireSnapTraffic(n, cfg, sc)
	return n
}

// wireSnapTraffic installs the grid's uniform workload with restorable
// per-endpoint RNG streams.
func wireSnapTraffic(n *Network, cfg *core.Config, sc snapScenario) {
	rng := sim.NewRNG(cfg.Seed + 77)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		gen := rng.Derive(uint64(ep.ID))
		ep.Gen = traffic.Uniform(gen, len(n.Endpoints), nil,
			sc.load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		ep.GenRNG = gen
	}
}

// runSnapNet advances the network to absolute cycle `upto` under the
// given execution mode.
func runSnapNet(n *Network, workers int, epoch int64, upto int64) {
	n.SetEpochPolicy(epoch)
	if workers > 1 {
		n.SetWorkers(workers)
	}
	n.Run(upto - int64(n.Now))
}

// finalState returns the network's complete end-of-run state as bytes.
func finalState(n *Network) []byte {
	return n.Checkpoint(n.Now)
}

// TestResumeEquality is the grid: presets x workers {1,4} x epoch
// {off,auto} x {faults, parity, ecn}, each point checkpointing mid-run —
// at a cycle chosen to land mid-epoch, mid-retry-backoff, and (for the
// parity scenario) mid-reconstruction — and requiring the checkpointing
// run and the restored run to finish byte-identical to straight-through.
// The restored run deliberately executes under a different worker/epoch
// combination than the run that took the checkpoint: snapshots are
// mode-canonical.
func TestResumeEquality(t *testing.T) {
	type point struct {
		preset  string
		workers int
		epoch   int64 // -1 = off, 0 = auto
	}
	points := []point{
		{"tiny", 1, -1},
		{"tiny", 4, -1},
		{"tiny", 1, 0},
		{"tiny", 4, 0},
	}
	if !testing.Short() {
		points = append(points, point{"small", 4, 0}, point{"small", 1, -1})
	}
	const total, ckptAt = 3000, 1337 // odd cycle: never an epoch boundary
	for _, pt := range points {
		for _, sc := range snapScenarios(ckptAt) {
			pt, sc := pt, sc
			name := pt.preset + "/" + sc.name + "/w" + string(rune('0'+pt.workers))
			if pt.epoch < 0 {
				name += "/off"
			} else {
				name += "/auto"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := snapConfig(pt.preset, sc)

				golden := buildSnapNet(t, cfg, sc)
				defer golden.Close()
				runSnapNet(golden, pt.workers, pt.epoch, total)
				want := finalState(golden)

				// The checkpointing run: taking a snapshot must not
				// perturb the simulation.
				ck := buildSnapNet(t, snapConfig(pt.preset, sc), sc)
				defer ck.Close()
				var snap []byte
				ck.ScheduleCheckpoint(ckptAt, func(now sim.Tick) {
					if int64(now) != ckptAt {
						t.Errorf("checkpoint fired at cycle %d, want %d", now, ckptAt)
					}
					snap = ck.Checkpoint(now)
				})
				runSnapNet(ck, pt.workers, pt.epoch, total)
				if snap == nil {
					t.Fatal("checkpoint hook never fired")
				}
				if got := finalState(ck); !bytes.Equal(got, want) {
					t.Fatalf("checkpointing run diverged from straight-through (%d vs %d state bytes)", len(got), len(want))
				}

				// The restored run, under the opposite execution mode.
				rw, re := 4, int64(0)
				if pt.workers == 4 {
					rw = 1
				}
				if pt.epoch == 0 {
					re = -1
				}
				rn := buildSnapNet(t, snapConfig(pt.preset, sc), sc)
				defer rn.Close()
				if err := rn.Restore(snap); err != nil {
					t.Fatalf("Restore: %v", err)
				}
				if int64(rn.Now) != ckptAt {
					t.Fatalf("restored clock at %d, want %d", rn.Now, ckptAt)
				}
				runSnapNet(rn, rw, re, total)
				if got := finalState(rn); !bytes.Equal(got, want) {
					t.Fatalf("restored run diverged from straight-through (%d vs %d state bytes)", len(got), len(want))
				}
			})
		}
	}
}

// TestCheckpointRoundTrip: Checkpoint -> Restore -> Checkpoint produces
// identical bytes, and a checkpoint of the same cycle is byte-identical
// whether taken under the serial or the epoch-parallel executor (the
// mode-canonical link encoding).
func TestCheckpointRoundTrip(t *testing.T) {
	sc := snapScenarios(900)[0]
	const ckptAt = 1111

	take := func(workers int, epoch int64) []byte {
		n := buildSnapNet(t, snapConfig("tiny", sc), sc)
		defer n.Close()
		var snap []byte
		n.ScheduleCheckpoint(ckptAt, func(now sim.Tick) { snap = n.Checkpoint(now) })
		runSnapNet(n, workers, epoch, ckptAt+1)
		if snap == nil {
			t.Fatal("checkpoint hook never fired")
		}
		return snap
	}

	serial := take(1, -1)
	epoch := take(4, 0)
	if !bytes.Equal(serial, epoch) {
		t.Fatalf("checkpoint bytes differ across executors: %d serial vs %d epoch", len(serial), len(epoch))
	}

	rn := buildSnapNet(t, snapConfig("tiny", sc), sc)
	defer rn.Close()
	if err := rn.Restore(serial); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	again := rn.Checkpoint(rn.Now)
	if !bytes.Equal(serial, again) {
		t.Fatalf("restore -> checkpoint not byte-identical: %d vs %d bytes", len(serial), len(again))
	}
}

// TestRestoreRejectsMismatchedConfig exercises every fingerprint axis a
// user can realistically get wrong: each mutated configuration must be
// rejected loudly, never half-restored.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	sc := snapScenarios(900)[0]
	src := buildSnapNet(t, snapConfig("tiny", sc), sc)
	defer src.Close()
	var snap []byte
	src.ScheduleCheckpoint(500, func(now sim.Tick) { snap = src.Checkpoint(now) })
	runSnapNet(src, 1, -1, 600)
	if snap == nil {
		t.Fatal("checkpoint hook never fired")
	}

	axes := []struct {
		name   string
		mutate func(*core.Config)
	}{
		// One more global link per switch: radix 8 still fits the tiny
		// preset's 4x2 tile array, so only the fingerprint can object.
		{"topology", func(c *core.Config) { c.Topo = topo.Dragonfly{P: 2, A: 4, H: 3} }},
		{"mode", func(c *core.Config) { c.Mode = core.StashCongestion; c.ECN = core.DefaultECN() }},
		{"seed", func(c *core.Config) { c.Seed++ }},
		{"capfrac", func(c *core.Config) { c.StashCapFrac = 0.5 }},
		{"parity", func(c *core.Config) { c.StashParity = 4 }},
		{"banks", func(c *core.Config) { c.BankModel = true }},
		{"fault-plan", func(c *core.Config) { c.Fault.LinkDropRate = 5e-3 }},
		{"no-fault", func(c *core.Config) {
			c.Fault = nil
			c.Retrans = core.RetransParams{}
			c.RetainPayload = false
		}},
	}
	for _, ax := range axes {
		t.Run(ax.name, func(t *testing.T) {
			cfg := snapConfig("tiny", sc)
			ax.mutate(cfg)
			n, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer n.Close()
			err = n.Restore(snap)
			if err == nil {
				t.Fatal("Restore accepted a mismatched config")
			}
			if !strings.Contains(err.Error(), "mismatch") && !strings.Contains(err.Error(), "different build") {
				t.Fatalf("mismatch error not loud enough: %v", err)
			}
		})
	}

	t.Run("observer-mismatch", func(t *testing.T) {
		cfg := snapConfig("tiny", sc)
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer n.Close()
		// Same workload wiring, but the source had metrics/sampler/
		// watchdog/invariants attached and this network has none.
		wireSnapTraffic(n, cfg, sc)
		err = n.Restore(snap)
		if err == nil || !strings.Contains(err.Error(), "identical observability flags") {
			t.Fatalf("observer mismatch not rejected loudly: %v", err)
		}
	})

	t.Run("stepped-network", func(t *testing.T) {
		n := buildSnapNet(t, snapConfig("tiny", sc), sc)
		defer n.Close()
		n.Run(10)
		if err := n.Restore(snap); err == nil ||
			!strings.Contains(err.Error(), "freshly built") {
			t.Fatalf("stepped network not rejected: %v", err)
		}
	})
}

// TestRestoreReschedulesSerialSingletons pins down satellite coverage for
// the serial-singleton schedules: the sampler's fixed intervals, the
// invariant auditor, the watchdog's window clock, and a scheduled
// stash-bank failure must all fire on the same absolute cycles in a
// restored run as in the straight-through run. Interval observers fire on
// now%every==0 and the stash failure on its planned cycle, so any
// rescheduling bug shows up as a diverging sample row, audit count, stall
// count, or fault statistic.
func TestRestoreReschedulesSerialSingletons(t *testing.T) {
	sc := snapScenario{name: "faults", mode: core.StashE2E, load: 0.25,
		fault: &fault.Plan{Seed: 9, LinkDropRate: 1e-3,
			StashFailures: []fault.StashFail{{Switch: 0, Port: 0, At: 2600}}}}
	const total, ckptAt = 4000, 2500 // checkpoint before the scheduled failure

	golden := buildSnapNet(t, snapConfig("tiny", sc), sc)
	defer golden.Close()
	runSnapNet(golden, 4, 0, total)

	src := buildSnapNet(t, snapConfig("tiny", sc), sc)
	defer src.Close()
	var snap []byte
	src.ScheduleCheckpoint(ckptAt, func(now sim.Tick) { snap = src.Checkpoint(now) })
	runSnapNet(src, 4, 0, total)
	if snap == nil {
		t.Fatal("checkpoint hook never fired")
	}

	rn := buildSnapNet(t, snapConfig("tiny", sc), sc)
	defer rn.Close()
	if err := rn.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	runSnapNet(rn, 1, -1, total)

	if g, r := golden.Sampler.CSV(), rn.Sampler.CSV(); g != r {
		t.Errorf("sampler rows diverged after restore:\n--- straight-through ---\n%s--- restored ---\n%s", g, r)
	}
	if g, r := golden.Invariants.Checks, rn.Invariants.Checks; g != r {
		t.Errorf("invariant audit count diverged: straight-through %d, restored %d", g, r)
	}
	if g, r := golden.Watchdog.NextEventAt(int64(total)), rn.Watchdog.NextEventAt(int64(total)); g != r {
		t.Errorf("watchdog window clock diverged: next event at %d vs %d", g, r)
	}
	if g, r := golden.Watchdog.Stalls, rn.Watchdog.Stalls; g != r {
		t.Errorf("watchdog stall count diverged: %d vs %d", g, r)
	}
	if g, r := golden.FaultStats(), rn.FaultStats(); g != r {
		t.Errorf("fault statistics diverged (stash failure re-fired or skipped): %+v vs %+v", g, r)
	}
	if g, r := golden.Counters(), rn.Counters(); g != r {
		t.Errorf("counters diverged: %+v vs %+v", g, r)
	}
}
