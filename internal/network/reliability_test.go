package network

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// TestRetransmissionRecoversFromErrors exercises the paper's end-to-end
// retransmission mechanism end to end (the extension the paper describes
// but does not simulate): destinations NACK a fraction of packets, the
// first-hop switch re-injects the stashed copy, and every message is
// eventually delivered exactly as many times as it was NACK-free.
func TestRetransmissionRecoversFromErrors(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	cfg.ErrorRate = 0.05
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(16)
	rng := sim.NewRNG(21)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.15, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(20000)
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	ok := n.RunUntil(300000, 2000, func() bool {
		if n.TotalStashUsed() != 0 || n.TotalQueuedFlits() != 0 {
			return false
		}
		for _, s := range n.Switches {
			if s.TrackedPackets() != 0 {
				return false
			}
		}
		return true
	})
	c := n.Counters()
	if !ok {
		t.Fatalf("network did not quiesce: stash=%d queued=%d counters=%+v",
			n.TotalStashUsed(), n.TotalQueuedFlits(), c)
	}
	if n.Collector().Errors == 0 {
		t.Fatal("no errors were injected")
	}
	if c.E2ERetransmits == 0 {
		t.Fatal("no retransmissions occurred")
	}
	// Every tracked packet must eventually be deleted after a positive
	// ACK — deletes equal tracked packets exactly once the system drains.
	if c.E2EDeletes != c.E2ETracked {
		t.Fatalf("tracked %d packets but deleted %d copies", c.E2ETracked, c.E2EDeletes)
	}
	t.Logf("errors=%d retransmits=%d tracked=%d", n.Collector().Errors, c.E2ERetransmits, c.E2ETracked)
}

// TestFlitConservation verifies no flits are created or lost: everything
// injected is eventually delivered once generators stop.
func TestFlitConservation(t *testing.T) {
	for _, mode := range []core.StashMode{core.StashOff, core.StashE2E, core.StashCongestion} {
		cfg := core.TinyConfig()
		cfg.Mode = mode
		if mode == core.StashCongestion {
			cfg.ECN = core.DefaultECN()
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(31)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.35, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(15000)
		for _, ep := range n.Endpoints {
			ep.Gen = nil
		}
		if !n.RunUntil(300000, 2000, func() bool {
			return n.Collectors.TotalDeliveredFlits() == n.Collectors.TotalOfferedFlits()
		}) {
			t.Fatalf("mode %v: delivered %d of %d offered flits after drain",
				mode, n.Collectors.TotalDeliveredFlits(), n.Collectors.TotalOfferedFlits())
		}
	}
}

// TestAdversarialPermutationNoDeadlock drives a permutation pattern (every
// endpoint hammers one partner) at full load — the worst case for wormhole
// deadlock — and checks the network keeps making progress.
func TestAdversarialPermutationNoDeadlock(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(41)
	rate := n.ChannelRate()
	num := len(n.Endpoints)
	perm := rng.Perm(num)
	// Make it a derangement pairing.
	for i, p := range perm {
		if p == i {
			j := (i + 1) % num
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Permutation(rng.Derive(uint64(ep.ID)), int32(perm[ep.ID]),
			1.0, rate, 10*proto.MaxPacketFlits, proto.ClassDefault)
	}
	last := int64(0)
	for i := 0; i < 10; i++ {
		n.Run(3000)
		cur := n.Collectors.TotalDeliveredFlits()
		if cur == last && i > 1 {
			t.Fatalf("no progress in window %d: %s", i, n.Switches[0].DumpState())
		}
		last = cur
	}
	if err := n.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestBankModelRuns verifies the two-bank memory gate does not deadlock
// the switch, and that the four-port scenario (send read + retrieval read
// + mux writes on one port memory) produces measurable conflicts under
// congestion stashing — the case Section III-B's banking resolves.
func TestBankModelRuns(t *testing.T) {
	// E2E mode first: writes can always divert to the free bank, so a
	// read+write workload should see (almost) no stalls.
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.BankModel = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(51)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.5, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(15000)
	if n.Collectors.TotalDeliveredFlits() == 0 {
		t.Fatal("bank-modeled network delivered nothing")
	}

	// Congestion mode: retrieval reads contend with transmission reads
	// on the output memory; conflicts must occur and be survivable.
	var conflicts int64
	cfg2 := core.TinyConfig()
	cfg2.Mode = core.StashCongestion
	cfg2.ECN = core.DefaultECN()
	cfg2.BankModel = true
	n2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := sim.NewRNG(99)
	hot := int32(7)
	srcs := map[int32]bool{20: true, 30: true, 40: true, 50: true}
	for _, ep := range n2.Endpoints {
		if srcs[ep.ID] {
			ep.Gen = traffic.Hotspot(hot, proto.MaxPacketFlits, proto.ClassAggressor, 1000)
		} else if ep.ID != hot {
			ep.Gen = traffic.Uniform(rng2.Derive(uint64(ep.ID)), len(n2.Endpoints), nil,
				0.3, rate, proto.MaxPacketFlits, proto.ClassVictim, 0)
		}
	}
	n2.Run(30000)
	for _, s := range n2.Switches {
		conflicts += s.BankConflicts()
	}
	if n2.Counters().StashRetrieves == 0 {
		t.Skip("no retrievals in this run")
	}
	t.Logf("bank conflicts under congestion stashing: %d", conflicts)
	if conflicts == 0 {
		t.Fatal("no bank conflicts despite concurrent send and retrieval reads")
	}
}

// TestEndpointPortsNeverCongest checks a modeling invariant: ejection-side
// stash absorption never pushes flits back into the network (retrieval
// strictly drains toward the original output).
func TestCongestionRetrievalTargetsOriginalOutput(t *testing.T) {
	n := buildHotspot(t, core.StashCongestion, 1000)
	n.Run(30000)
	c := n.Counters()
	if c.CongStashed == 0 {
		t.Skip("no congestion stashing in this run")
	}
	// Retrieved flits equal stored flits minus still-resident ones
	// (excluding reservations for packets still crossing the crossbar,
	// whose flits have not been counted as stores yet).
	resident := int64(n.TotalStashUsed())
	var reserved int64
	for _, s := range n.Switches {
		reserved += int64(s.StashReserved())
	}
	if c.StashRetrieves+resident-reserved != c.StashStores {
		t.Fatalf("flit leak in stash: stored %d, retrieved %d, resident %d, reserved %d",
			c.StashStores, c.StashRetrieves, resident, reserved)
	}
}
