package network

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/sim"
	"stashsim/internal/snapshot"
	"stashsim/internal/topo"
)

// microSnapConfig is the smallest network worth fuzzing against: a
// 3-group, 6-switch, 6-endpoint dragonfly in e2e mode with drops and
// retry timers, so a checkpoint of it exercises every section kind
// (links, switches, stash, tracking, endpoints, injector, collectors)
// while staying a few tens of kilobytes.
func microSnapConfig() *core.Config {
	cfg := core.TinyConfig()
	cfg.Topo = topo.Dragonfly{P: 1, A: 2, H: 1}
	cfg.Rows, cfg.Cols, cfg.TileIn, cfg.TileOut = 2, 2, 2, 2
	cfg.Mode = core.StashE2E
	cfg.Fault = &fault.Plan{Seed: 5, LinkDropRate: 1e-2,
		StashFailures: []fault.StashFail{{Switch: 0, Port: 0, At: 150}}}
	cfg.Retrans = core.DefaultRetrans()
	cfg.RetainPayload = true
	return cfg
}

// microSnapNet builds the fuzz target network; every call produces an
// identically configured fresh instance.
func microSnapNet(t testing.TB) *Network {
	n, err := New(microSnapConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableInvariants(64)
	wireSnapTraffic(n, n.Cfg, snapScenario{load: 0.4})
	return n
}

// microSnapshot runs the micro network past its scheduled bank failure
// and returns a mid-run checkpoint.
func microSnapshot(t testing.TB) []byte {
	n := microSnapNet(t)
	var snap []byte
	n.ScheduleCheckpoint(200, func(now sim.Tick) { snap = n.Checkpoint(now) })
	n.Run(260)
	if snap == nil {
		t.Fatal("checkpoint hook never fired")
	}
	return snap
}

// FuzzSnapshotDecode feeds arbitrary bytes to Network.Restore: hostile
// input must produce a clean error or a fully consistent restore — never
// a panic, and never an allocation driven past the input size (the
// codec's Count guard). When a mutated snapshot is accepted, the restored
// state must itself checkpoint and restore cleanly.
func FuzzSnapshotDecode(f *testing.F) {
	valid := microSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-body
	f.Add(valid[:14])            // header only
	f.Add([]byte{})              // empty
	f.Add([]byte("STAS happens to start like a snapshot"))
	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[4:], snapshot.Version+1)
	f.Add(skew) // version skew
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[6:], 1<<62)
	f.Add(huge) // hostile declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		n := microSnapNet(t)
		defer n.Close()
		if err := n.Restore(data); err != nil {
			return
		}
		// Accepted: the restored state must be internally consistent
		// enough to round-trip through the codec again.
		ck := n.Checkpoint(n.Now)
		n2 := microSnapNet(t)
		defer n2.Close()
		if err := n2.Restore(ck); err != nil {
			t.Fatalf("re-checkpoint of an accepted restore failed to decode: %v", err)
		}
	})
}

// TestWriteSnapshotFuzzCorpus regenerates the checked-in seed corpus for
// FuzzSnapshotDecode. It is a maintenance tool, not a test: run with
// WRITE_SNAPSHOT_CORPUS=1 after a format change to refresh testdata.
func TestWriteSnapshotFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_SNAPSHOT_CORPUS") == "" {
		t.Skip("set WRITE_SNAPSHOT_CORPUS=1 to regenerate the seed corpus")
	}
	valid := microSnapshot(t)
	skew := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(skew[4:], snapshot.Version+1)
	seeds := [][]byte{
		valid,
		valid[:len(valid)/2],
		valid[:14],
		skew,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		name := filepath.Join(dir, "seed"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(s))
	}
}
