package network

import (
	"fmt"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// testRetrans returns timer parameters sized for the tiny network's round
// trips so recovery ladders complete within a test-sized drain budget.
func testRetrans() core.RetransParams {
	return core.RetransParams{
		Enabled:         true,
		SwitchTimeout:   2048,
		SwitchRetries:   4,
		EndpointTimeout: 8192,
		EndpointRetries: 6,
		ScanEvery:       16,
	}
}

// buildFaulted wires a tiny StashE2E network with the recovery ladder
// active under the given fault plan, uniform load, and sparse invariant
// audits.
func buildFaulted(t *testing.T, plan *fault.Plan, load float64, mutate func(*core.Config)) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	cfg.Retrans = testRetrans()
	cfg.Fault = plan
	if mutate != nil {
		mutate(cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(64)
	rng := sim.NewRNG(11)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	return n
}

// assertExactlyOnce stops traffic generation, drains the network, and
// asserts the exactly-once delivery property: every injected packet was
// delivered exactly once (no losses, no double deliveries) or explicitly
// abandoned.
func assertExactlyOnce(t *testing.T, n *Network, drainBudget int64) {
	t.Helper()
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	if !n.Drain(drainBudget) {
		injected, delivered, dups, abandoned := n.DeliveryTotals()
		t.Fatalf("network did not drain in %d cycles: injected %d delivered %d dups %d abandoned %d backlog %d",
			drainBudget, injected, delivered, dups, abandoned, n.TotalQueuedFlits())
	}
	injected, delivered, dups, abandoned := n.DeliveryTotals()
	if delivered+abandoned != injected {
		t.Fatalf("delivery accounting broken: injected %d != delivered %d + abandoned %d",
			injected, delivered, abandoned)
	}
	if abandoned != 0 {
		t.Fatalf("%d packets abandoned under a recoverable fault plan", abandoned)
	}
	// Duplicates were suppressed, never delivered to the application.
	if dups != n.Collector().DuplicatesSuppressed {
		t.Fatalf("endpoint dup count %d != collector %d", dups, n.Collector().DuplicatesSuppressed)
	}
	if err := n.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestExactlyOnceUnderDrops is the core recovery property test: with
// Bernoulli packet drops on every link, every injected packet is still
// delivered exactly once via stash or source retransmission.
func TestExactlyOnceUnderDrops(t *testing.T) {
	plan := &fault.Plan{Seed: 21, LinkDropRate: 2e-3}
	n := buildFaulted(t, plan, 0.2, nil)
	n.Run(12000)
	assertExactlyOnce(t, n, 600_000)
	st := n.FaultStats()
	if st.PktsDropped == 0 {
		t.Fatal("fault plan injected no drops; the property was not exercised")
	}
	c := n.Counters()
	if c.E2ERetransmits == 0 && n.Collector().EndpointRetransmits == 0 {
		t.Fatal("drops recovered without any retransmission path firing")
	}
	t.Logf("dropped %d pkts (%d flits); stash resends %d, endpoint resends %d, dups suppressed %d",
		st.PktsDropped, st.FlitsDropped, c.E2ERetransmits,
		n.Collector().EndpointRetransmits, n.Collector().DuplicatesSuppressed)
}

// TestExactlyOnceUnderOutage blacks out one switch-to-switch channel for
// a window mid-run; packets routed across it during the window are lost
// on the wire and must be recovered.
func TestExactlyOnceUnderOutage(t *testing.T) {
	d := core.TinyConfig().Topo
	// First local channel out of switch 0.
	port := d.P
	nsw, nport := d.Neighbor(0, port)
	link := fmt.Sprintf("sw0.%d->sw%d.%d", port, nsw, nport)
	plan := &fault.Plan{Seed: 3, Outages: []fault.Outage{{Link: link, Start: 2000, End: 6000}}}
	n := buildFaulted(t, plan, 0.25, nil)
	n.Run(10000)
	assertExactlyOnce(t, n, 600_000)
	st := n.FaultStats()
	if st.OutagePkts == 0 {
		t.Fatalf("no packet crossed %s during the outage; widen the window", link)
	}
}

// TestOutageOnInjectionLinkFallsBackToSource drops everything an endpoint
// injects for a window. The first-hop switch never sees those packets, so
// only the source endpoint's timer can recover them — the graceful
// degradation path.
func TestOutageOnInjectionLinkFallsBackToSource(t *testing.T) {
	plan := &fault.Plan{Seed: 5, Outages: []fault.Outage{{Link: "ep0->sw0.0", Start: 500, End: 4500}}}
	n := buildFaulted(t, plan, 0.15, nil)
	n.Run(8000)
	assertExactlyOnce(t, n, 600_000)
	if n.FaultStats().OutagePkts == 0 {
		t.Fatal("endpoint 0 injected nothing during its outage window")
	}
	if n.Collector().EndpointRetransmits == 0 {
		t.Fatal("injection-link outage recovered without source retransmission")
	}
}

// TestExactlyOnceUnderBankFailure fails the stash banks of switch 0's end
// ports mid-run while drops are active: entries whose copies vanished must
// fall back to the source timer instead of resending from the dead bank.
func TestExactlyOnceUnderBankFailure(t *testing.T) {
	plan := &fault.Plan{
		Seed:         9,
		LinkDropRate: 2e-3,
		StashFailures: []fault.StashFail{
			{Switch: 0, Port: 0, At: 4000},
			{Switch: 0, Port: 1, At: 4000},
		},
	}
	n := buildFaulted(t, plan, 0.25, nil)
	n.Run(9000)
	assertExactlyOnce(t, n, 600_000)
	if n.FaultStats().StashCopiesLost == 0 {
		t.Fatal("bank failures invalidated no live copies; raise the load or delay the failure")
	}
	if n.Counters().StashCopiesLost != n.FaultStats().StashCopiesLost {
		t.Fatalf("switch counter %d != injector stat %d",
			n.Counters().StashCopiesLost, n.FaultStats().StashCopiesLost)
	}
}

// TestCorruptionDetectedAndRecovered flips checksums on the wire; the
// destinations must NACK every corrupted packet and a clean copy must
// still deliver exactly once.
func TestCorruptionDetectedAndRecovered(t *testing.T) {
	plan := &fault.Plan{Seed: 13, CorruptRate: 1e-3}
	n := buildFaulted(t, plan, 0.2, nil)
	n.Run(10000)
	assertExactlyOnce(t, n, 600_000)
	st := n.FaultStats()
	if st.FlitsCorrupted == 0 {
		t.Fatal("corruption rate injected nothing")
	}
	if n.Collector().CorruptPkts == 0 {
		t.Fatal("corrupted flits were never detected at a destination")
	}
}

// TestFaultScheduleIsDeterministic runs the same faulted configuration
// twice and requires identical fault injections, recoveries, and
// deliveries — the reproducibility contract extends to fault plans.
func TestFaultScheduleIsDeterministic(t *testing.T) {
	run := func() (fault.Stats, core.Counters, [4]int64) {
		plan := &fault.Plan{Seed: 17, LinkDropRate: 3e-3, CorruptRate: 5e-4}
		n := buildFaulted(t, plan, 0.2, nil)
		n.Run(8000)
		var d [4]int64
		d[0], d[1], d[2], d[3] = n.DeliveryTotals()
		return n.FaultStats(), n.Counters(), d
	}
	s1, c1, d1 := run()
	s2, c2, d2 := run()
	if s1 != s2 {
		t.Fatalf("fault stats diverged:\n%+v\n%+v", s1, s2)
	}
	if c1 != c2 {
		t.Fatalf("switch counters diverged:\n%+v\n%+v", c1, c2)
	}
	if d1 != d2 {
		t.Fatalf("delivery totals diverged: %v vs %v", d1, d2)
	}
}

// TestUnknownOutageLinkRejected catches plan typos at build time.
func TestUnknownOutageLinkRejected(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	cfg.Retrans = testRetrans()
	cfg.Fault = &fault.Plan{Seed: 1, Outages: []fault.Outage{{Link: "sw0.99->sw1.0", Start: 0, End: 10}}}
	if _, err := New(cfg); err == nil {
		t.Fatal("plan naming a nonexistent link was accepted")
	}
}
