package network

import (
	"fmt"

	"stashsim/internal/metrics"
	"stashsim/internal/sim"
	"stashsim/internal/telemetry"
)

// This file wires the observability-layer extras introduced with the
// executor profiler and the live telemetry server: all opt-in, all nil
// (disabled) by default, and none of them mutate simulation state — so
// -json output is byte-identical with or without them.

// EnableExecProfile creates and attaches an executor stall profiler sized
// for the network's current worker count; a later SetWorkers resizes it,
// so the call order does not matter. ringCycles > 0 additionally retains
// the most recent ringCycles cycles of raw lane timings for the Chrome
// trace export. Must be called before the first Run so the lazily built
// executor picks it up.
func (n *Network) EnableExecProfile(ringCycles int) *sim.ExecProfiler {
	w := n.workers
	if w < 1 {
		w = 1
	}
	p := sim.NewExecProfiler(w, ringCycles)
	n.Profiler = p
	n.profOwned = true
	n.profRing = ringCycles
	p.SetPhaseLabels("endpoints", "switches")
	n.teardownExec()
	return p
}

// SetExecProfiler attaches an existing profiler (the figures harness
// shares one across every sweep network so the totals aggregate), or
// detaches profiling when p is nil. The profiler's worker lane count
// must match a multi-worker network's worker count; a mismatch returns
// an error instead of being silently dropped at Run time, as it once
// was. Unlike EnableExecProfile, the attached profiler is caller-owned:
// SetWorkers will not resize it.
func (n *Network) SetExecProfiler(p *sim.ExecProfiler) error {
	if p == nil {
		n.Profiler = nil
		n.profOwned = false
		n.teardownExec()
		return nil
	}
	if n.workers > 1 && p.Workers() != n.workers {
		return fmt.Errorf("network: profiler sized for %d workers attached to a %d-worker network (size it with sim.NewExecProfiler(%d, ...) or use EnableExecProfile)",
			p.Workers(), n.workers, n.workers)
	}
	n.Profiler = p
	n.profOwned = false
	p.SetPhaseLabels("endpoints", "switches")
	n.teardownExec()
	return nil
}

// CyclesDone reports completed simulation cycles. It is safe to call
// from any goroutine at any time, and — unlike Now, which the executor
// path writes back only when Run returns — it is current mid-run.
func (n *Network) CyclesDone() int64 { return n.cycleDone.Load() }

// TotalCreditStallCycles sums the always-on credit-stall tap across
// switches (output cycles with flits queued but no downstream credits).
func (n *Network) TotalCreditStallCycles() int64 {
	var total int64
	for _, s := range n.Switches {
		total += s.CreditStallCycles
	}
	return total
}

// TotalDeliveredFlits sums flits received at endpoints over the whole
// run (not gated by measurement warmup, unlike the collector view).
func (n *Network) TotalDeliveredFlits() int64 {
	var total int64
	for _, ep := range n.Endpoints {
		total += ep.RecvFlits
	}
	return total
}

// AttachFlight installs a flight recorder retaining the last `rows`
// cycles of aggregate deltas: deliveries, stash stores/retrieves, credit
// stalls (per-cycle deltas) and stash occupancy plus injection backlog
// (absolute gauges). Recorded once per cycle from the serial PostCycle
// hook; dumped by the watchdog on stalls and by SIGQUIT.
func (n *Network) AttachFlight(rows int) *metrics.FlightRecorder {
	f := metrics.NewFlightRecorder(rows,
		metrics.FlightField{Name: "delivered", Read: n.TotalDeliveredFlits},
		metrics.FlightField{Name: "stash.stores", Read: func() int64 {
			var t int64
			for _, s := range n.Switches {
				t += s.Counters.StashStores
			}
			return t
		}},
		metrics.FlightField{Name: "stash.retrieves", Read: func() int64 {
			var t int64
			for _, s := range n.Switches {
				t += s.Counters.StashRetrieves
			}
			return t
		}},
		metrics.FlightField{Name: "credit.stalls", Read: n.TotalCreditStallCycles},
		metrics.FlightField{Name: "stash.used", Gauge: true, Read: func() int64 {
			return int64(n.TotalStashUsed())
		}},
		metrics.FlightField{Name: "inject.backlog", Gauge: true, Read: n.TotalQueuedFlits},
	)
	n.Flight = f
	return f
}

// TelemetrySnapshot captures the full quiescent view the live server
// publishes: counters, delivery totals, fault and watchdog state, the
// executor profile, every registered gauge, and the flight recorder
// tail. Call only while the network is quiescent (the publisher's Build
// hook runs in PostCycle; CLIs also call it after a run).
func (n *Network) TelemetrySnapshot() *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Cycle:             n.CyclesDone(),
		Counters:          n.Counters(),
		DeliveredFlits:    n.TotalDeliveredFlits(),
		QueuedFlits:       n.TotalQueuedFlits(),
		StashUsed:         n.TotalStashUsed(),
		CreditStallCycles: n.TotalCreditStallCycles(),
	}
	s.InjectedPkts, s.DeliveredPkts, s.DupPkts, s.AbandonedPkts = n.DeliveryTotals()
	if n.Injector != nil {
		fs := n.FaultStats()
		s.Fault = &fs
	}
	if n.Watchdog != nil {
		s.Watchdog = &telemetry.WatchdogState{
			Stalled:    n.Watchdog.Stalled(),
			Stalls:     n.Watchdog.Stalls,
			Suppressed: n.Watchdog.Suppressed,
		}
	}
	if n.Profiler != nil {
		s.ExecProfile = n.Profiler.Report()
	}
	for _, g := range n.Metrics.GaugeSamples() {
		s.Gauges = append(s.Gauges, telemetry.GaugeSample{Scope: g.Scope, Name: g.Name, Value: g.Value})
	}
	if n.Flight != nil {
		s.Flight = &telemetry.FlightTail{
			Fields: n.Flight.FieldNames(),
			Rows:   n.Flight.Snapshot(64),
		}
	}
	return s
}

// AttachTelemetry creates and attaches a snapshot publisher over
// TelemetrySnapshot, refreshed every `every` cycles from the PostCycle
// hook. The returned publisher feeds a telemetry.Server.
func (n *Network) AttachTelemetry(every int64) *telemetry.Publisher {
	p := telemetry.NewPublisher(n.TelemetrySnapshot, every)
	n.Telemetry = p
	return p
}
