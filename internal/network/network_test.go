package network

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// runUR builds a tiny network in the given mode and runs uniform traffic,
// returning it for inspection.
func runUR(t *testing.T, mode core.StashMode, load float64, cycles int64) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = mode
	if mode == core.StashCongestion {
		cfg.ECN = core.DefaultECN()
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n.EnableInvariants(16)
	rng := sim.NewRNG(42)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(cycles)
	if err := n.SanityCheck(); err != nil {
		t.Fatalf("sanity: %v", err)
	}
	return n
}

func TestBaselineDeliversUniformTraffic(t *testing.T) {
	n := runUR(t, core.StashOff, 0.2, 20000)
	c := n.Collector()
	if c.DeliveredPkts[proto.ClassDefault] == 0 {
		t.Fatal("no packets delivered")
	}
	// At 20% load the network is far from saturation: nearly everything
	// offered should be delivered (modulo in-flight tail).
	del := c.TotalDeliveredFlits()
	off := c.TotalOfferedFlits()
	if float64(del) < 0.9*float64(off) {
		t.Fatalf("delivered %d of %d offered flits", del, off)
	}
	// Latency must be at least the minimum channel traversal.
	if c.LatAcc[proto.ClassDefault].Min < float64(2*n.Cfg.Lat.Endpoint) {
		t.Fatalf("implausibly low min latency %.0f", c.LatAcc[proto.ClassDefault].Min)
	}
}

func TestE2EStashTracksOutstandingPackets(t *testing.T) {
	n := runUR(t, core.StashE2E, 0.2, 20000)
	cnt := n.Counters()
	if cnt.E2ETracked == 0 {
		t.Fatal("no packets tracked")
	}
	if cnt.StashStores == 0 {
		t.Fatal("no flits stashed")
	}
	if cnt.E2EDeletes == 0 {
		t.Fatal("no stash copies deleted by ACKs")
	}
	// Tracked entries should be created for every delivered data packet
	// (all injections come from end ports).
	if cnt.E2ETracked < n.Collector().DeliveredPkts[proto.ClassDefault] {
		t.Fatalf("tracked %d < delivered %d", cnt.E2ETracked, n.Collector().DeliveredPkts[proto.ClassDefault])
	}
}

func TestE2EStashDrainsWhenTrafficStops(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.3, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(5000)
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	// After the network drains, every stash copy must have been deleted
	// and no tracking entries may remain.
	ok := n.RunUntil(200000, 1000, func() bool {
		if n.TotalStashUsed() != 0 {
			return false
		}
		for _, s := range n.Switches {
			if s.TrackedPackets() != 0 {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("stash did not drain: %d flits committed, counters %+v",
			n.TotalStashUsed(), n.Counters())
	}
}

func TestDeterminism(t *testing.T) {
	a := runUR(t, core.StashE2E, 0.25, 8000)
	b := runUR(t, core.StashE2E, 0.25, 8000)
	ca, cb := a.Counters(), b.Counters()
	if ca != cb {
		t.Fatalf("counter divergence:\n%+v\n%+v", ca, cb)
	}
	if a.Collectors.TotalDeliveredFlits() != b.Collectors.TotalDeliveredFlits() {
		t.Fatal("delivered flit divergence")
	}
	la, lb := a.Collector().LatAcc[proto.ClassDefault], b.Collector().LatAcc[proto.ClassDefault]
	if la != lb {
		t.Fatalf("latency divergence: %+v vs %+v", la, lb)
	}
}
