package network

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

// TestTopologyShapeSweep builds dragonflies of assorted shapes — including
// radixes that do not divide evenly into the tile array (padding) — and
// checks the conservation property on each: after generators stop, every
// offered flit is delivered.
func TestTopologyShapeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	shapes := []struct {
		p, a, h               int
		rows, cols, tin, tout int
		mode                  core.StashMode
	}{
		{2, 3, 2, 2, 2, 3, 3, core.StashOff},        // radix 6, exact tiling
		{2, 4, 2, 4, 4, 2, 2, core.StashE2E},        // radix 7, padded
		{1, 5, 2, 3, 3, 3, 3, core.StashE2E},        // radix 7, single endpoint/switch
		{3, 5, 1, 2, 4, 4, 2, core.StashCongestion}, // radix 8, asymmetric tiles
		{2, 2, 3, 3, 2, 2, 3, core.StashOff},        // radix 6, more globals than locals
	}
	for _, sh := range shapes {
		cfg := core.TinyConfig()
		cfg.Topo = topo.Dragonfly{P: sh.p, A: sh.a, H: sh.h}
		cfg.Rows, cfg.Cols, cfg.TileIn, cfg.TileOut = sh.rows, sh.cols, sh.tin, sh.tout
		cfg.Mode = sh.mode
		if sh.mode == core.StashCongestion {
			cfg.ECN = core.DefaultECN()
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("shape %+v: %v", sh, err)
		}
		n.EnableInvariants(64)
		rng := sim.NewRNG(uint64(sh.p*100 + sh.a*10 + sh.h))
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(8000)
		for _, ep := range n.Endpoints {
			ep.Gen = nil
		}
		if !n.RunUntil(200000, 2000, func() bool {
			return n.Collectors.TotalDeliveredFlits() == n.Collectors.TotalOfferedFlits()
		}) {
			t.Fatalf("shape %+v: delivered %d of %d after drain", sh,
				n.Collectors.TotalDeliveredFlits(), n.Collectors.TotalOfferedFlits())
		}
		if err := n.SanityCheck(); err != nil {
			t.Fatalf("shape %+v: %v", sh, err)
		}
	}
}

// TestSeedSweepDeterminismAndDelivery runs several seeds through a short
// e2e-mode simulation; each must deliver everything and distinct seeds
// must explore distinct schedules.
func TestSeedSweepDeliveryAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	var delivered []int64
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		cfg.Seed = seed
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.EnableInvariants(64)
		rng := sim.NewRNG(seed * 997)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.4, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(10000)
		for _, ep := range n.Endpoints {
			ep.Gen = nil
		}
		if !n.RunUntil(200000, 2000, func() bool {
			return n.Collectors.TotalDeliveredFlits() == n.Collectors.TotalOfferedFlits()
		}) {
			t.Fatalf("seed %d: not all flits delivered", seed)
		}
		delivered = append(delivered, n.Collectors.TotalDeliveredFlits())
	}
	allSame := true
	for _, d := range delivered[1:] {
		if d != delivered[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatalf("all seeds produced identical workloads: %v", delivered)
	}
}
