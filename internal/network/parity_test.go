package network

import (
	"io"
	"strings"
	"testing"

	"stashsim/internal/buffer"
	"stashsim/internal/core"
	"stashsim/internal/fault"
)

// withParity enables the erasure-coded stash tier at the given width.
func withParity(k int) func(*core.Config) {
	return func(cfg *core.Config) { cfg.StashParity = k }
}

// TestReconstructionUnderBankFailure is the tentpole property test: with
// drops keeping retained copies alive and parity groups sealed, failing
// stash banks mid-run must rebuild the protected copies from their
// parity-group survivors — and the run still delivers exactly once.
func TestReconstructionUnderBankFailure(t *testing.T) {
	plan := &fault.Plan{
		Seed:         9,
		LinkDropRate: 4e-3,
		StashFailures: []fault.StashFail{
			{Switch: 0, Port: 0, At: 4000},
			{Switch: 0, Port: 1, At: 4500},
			{Switch: 1, Port: 0, At: 5000},
			{Switch: 1, Port: 1, At: 5500},
			{Switch: 2, Port: 0, At: 6000},
			{Switch: 2, Port: 1, At: 6500},
		},
	}
	n := buildFaulted(t, plan, 0.25, withParity(4))
	n.Run(9000)
	assertExactlyOnce(t, n, 600_000)

	st := n.FaultStats()
	c := n.Counters()
	if st.StashCopiesLost == 0 {
		t.Fatal("bank failures invalidated no live copies; raise the load or delay the failures")
	}
	if c.StashReconstructed == 0 {
		t.Fatal("no copy was reconstructed from parity; the tier never fired")
	}
	if st.StashCopiesReconstructed != c.StashReconstructed {
		t.Fatalf("injector stat %d != switch counter %d",
			st.StashCopiesReconstructed, c.StashReconstructed)
	}
	if c.ParityGroupsSealed == 0 {
		t.Fatal("no parity group ever sealed")
	}
	t.Logf("lost %d copies, reconstructed %d (failed %d); %d groups sealed",
		st.StashCopiesLost, c.StashReconstructed, c.StashReconFailed, c.ParityGroupsSealed)
}

// TestParityInvariantsHoldEveryCycle audits every conservation law —
// including the parity extension of law 5 — on every cycle while groups
// seal, members delete, banks fail, and rebuilds land.
func TestParityInvariantsHoldEveryCycle(t *testing.T) {
	plan := &fault.Plan{
		Seed:         3,
		LinkDropRate: 2e-3,
		StashFailures: []fault.StashFail{
			{Switch: 0, Port: 0, At: 2000},
			{Switch: 1, Port: 1, At: 3000},
		},
	}
	n := buildFaulted(t, plan, 0.2, withParity(4))
	n.Invariants.Every = 1
	n.Run(5000)
	if n.Invariants.Checks != 5000 {
		t.Fatalf("audited %d of 5000 cycles", n.Invariants.Checks)
	}
	sealed := int64(0)
	for _, s := range n.Switches {
		if tr := s.Parity(); tr != nil {
			sealed += tr.SealedGroups
		}
	}
	if sealed == 0 {
		t.Fatal("per-cycle audit never saw a sealed group")
	}
}

// TestDegradedReadsWithBankModel layers the banked-memory conflict model
// on top of parity: a retrieval blocked on a busy bank may proceed as a
// degraded read served from the group's survivors.
func TestDegradedReadsWithBankModel(t *testing.T) {
	plan := &fault.Plan{Seed: 17, LinkDropRate: 4e-3}
	n := buildFaulted(t, plan, 0.3, func(cfg *core.Config) {
		cfg.StashParity = 4
		cfg.BankModel = true
	})
	n.Run(10000)
	assertExactlyOnce(t, n, 600_000)
	// Degraded reads depend on a retransmission colliding with a busy
	// bank, which the seed above does produce; the hard property is that
	// they never break exactly-once delivery or the conservation laws.
	t.Logf("degraded reads: %d", n.Counters().StashDegradedReads)
}

// TestInvariantsCatchParityMismatch corrupts the parity ledger of a bank
// behind the tracker's back; the law-5 parity audit must name it.
func TestInvariantsCatchParityMismatch(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	cfg.StashParity = 4
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(1)
	n.Run(500)
	n.Invariants.Out = io.Discard
	// A parity flit the groups do not account for. Compensate the global
	// flit count so only the parity law trips.
	var pool *buffer.StashPool
	for p := 0; p < n.Cfg.Topo.Radix() && pool == nil; p++ {
		if cand := n.Switches[0].PortStash(p); cand.Capacity() > 0 {
			pool = cand
		}
	}
	if pool == nil {
		t.Fatal("no stash-capable port on sw0")
	}
	pool.AddParity(1)
	orig := n.Invariants.ExtCreated
	n.Invariants.ExtCreated = func() int64 { return orig() + 1 }
	expectViolation(t, "parity accounting", func() { n.Invariants.Check(n.Now) })
}

// TestWatchdogNotesReconstruction: during a bank-failure drain the stall
// watchdog must explain the delivery lull — an in-flight rebuild, or the
// recent failure itself — instead of producing a false stall dump.
func TestWatchdogNotesReconstruction(t *testing.T) {
	plan := &fault.Plan{
		Seed:          7,
		LinkDropRate:  2e-3,
		StashFailures: []fault.StashFail{{Switch: 0, Port: 0, At: 3000}},
	}
	n := buildFaulted(t, plan, 0.25, withParity(4))
	n.AttachWatchdog(1_000_000, io.Discard) // huge window: never fires, we only probe Note
	if n.Watchdog.Note == nil {
		t.Fatal("watchdog Note hook not wired")
	}
	n.Run(3000)
	// Step cycle-by-cycle through the failure so an in-flight rebuild is
	// observable before its sideband completes.
	sawRecon := false
	for i := 0; i < 200 && !sawRecon; i++ {
		n.Step()
		if n.PendingReconstructions() > 0 {
			sawRecon = true
			if note := n.Watchdog.Note(int64(n.Now)-100, int64(n.Now)); !strings.Contains(note, "reconstruction") {
				t.Fatalf("note during in-flight rebuild: %q", note)
			}
		}
	}
	// Whether or not a rebuild was in flight at the instant we probed,
	// the recent bank failure itself must be reported for windows near it.
	if note := n.Watchdog.Note(2900, 3400); !strings.Contains(note, "sw0.0@3000") {
		t.Fatalf("note near the failure: %q", note)
	}
	if sawRecon {
		t.Log("observed an in-flight reconstruction note")
	}
}
