package network

import (
	"encoding/json"
	"strings"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// TestObservabilityEndToEnd runs a tiny e2e-mode network with the full
// observability stack attached and checks that every sink captures what the
// legacy counters say happened.
func TestObservabilityEndToEnd(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := metrics.NewRegistry()
	n.EnableMetrics(reg)
	tr := metrics.NewTracer(1 << 14)
	n.EnableTracing(tr)
	n.AttachSampler(500)

	rng := sim.NewRNG(42)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.2, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(20000)
	if err := n.SanityCheck(); err != nil {
		t.Fatalf("sanity: %v", err)
	}

	// Registry totals must mirror the legacy switch counters.
	cnt := n.Counters()
	if cnt.StashStores == 0 {
		t.Fatal("e2e run stashed nothing; test is vacuous")
	}
	if got := reg.Sum("stash.stores"); got != cnt.StashStores {
		t.Fatalf("registry stash.stores = %d, legacy counter = %d", got, cnt.StashStores)
	}
	if got := reg.Sum("svc.flits"); got == 0 {
		t.Fatal("no S-VC flit traversals recorded")
	}
	if got := reg.Sum("cycles"); got == 0 {
		t.Fatal("no cycles counted")
	}

	// Tracer must have seen the packet lifecycle ends.
	var sawInject, sawEject, sawStore bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case metrics.EvInject:
			sawInject = true
		case metrics.EvEject:
			sawEject = true
		case metrics.EvStashStore:
			sawStore = true
		}
	}
	if !sawInject || !sawEject || !sawStore {
		t.Fatalf("tracer missing lifecycle events: inject=%v eject=%v store=%v",
			sawInject, sawEject, sawStore)
	}

	// Sampler must have produced rows and a parseable CSV.
	csv := n.Sampler.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("sampler CSV has no data rows:\n%s", csv)
	}
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Fatalf("sampler CSV header: %q", lines[0])
	}
	if n.Sampler.Series("stash.fill") == nil {
		t.Fatal("sampler missing stash.fill probe")
	}

	// The trace must survive a round trip through both export formats.
	var jb strings.Builder
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(jb.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("JSONL line %d invalid: %s", i, line)
		}
	}
	var cb strings.Builder
	if err := tr.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(cb.String())) {
		t.Fatal("chrome trace is not valid JSON")
	}
}

// TestObservabilityDisabledIdentical verifies that attaching no sinks leaves
// simulation results bit-identical to a run that never imported them — i.e.
// the nil fast path cannot perturb outcomes.
func TestObservabilityDisabledIdentical(t *testing.T) {
	run := func(observe bool) *Network {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			n.EnableMetrics(metrics.NewRegistry())
			n.EnableTracing(metrics.NewTracer(1 << 12))
			n.AttachSampler(1000)
		}
		rng := sim.NewRNG(7)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.25, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(8000)
		return n
	}
	plain, observed := run(false), run(true)
	if plain.Counters() != observed.Counters() {
		t.Fatalf("observability changed simulation outcome:\n%+v\n%+v",
			plain.Counters(), observed.Counters())
	}
	if plain.Collectors.TotalDeliveredFlits() != observed.Collectors.TotalDeliveredFlits() {
		t.Fatal("delivered flits diverged with observability attached")
	}
}

// TestWatchdogQuietOnHealthyRun attaches the watchdog to a healthy run and
// requires zero false positives.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n.AttachWatchdog(2000, &out)
	rng := sim.NewRNG(3)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.2, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(20000)
	if n.Watchdog.Stalls != 0 {
		t.Fatalf("healthy run raised %d watchdog stalls:\n%s", n.Watchdog.Stalls, out.String())
	}
}
