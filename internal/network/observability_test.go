package network

import (
	"encoding/json"
	"strings"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// TestObservabilityEndToEnd runs a tiny e2e-mode network with the full
// observability stack attached and checks that every sink captures what the
// legacy counters say happened.
func TestObservabilityEndToEnd(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := metrics.NewRegistry()
	n.EnableMetrics(reg)
	tr := metrics.NewTracer(1 << 14)
	n.EnableTracing(tr)
	n.AttachSampler(500)

	rng := sim.NewRNG(42)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.2, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(20000)
	if err := n.SanityCheck(); err != nil {
		t.Fatalf("sanity: %v", err)
	}

	// Registry totals must mirror the legacy switch counters.
	cnt := n.Counters()
	if cnt.StashStores == 0 {
		t.Fatal("e2e run stashed nothing; test is vacuous")
	}
	if got := reg.Sum("stash.stores"); got != cnt.StashStores {
		t.Fatalf("registry stash.stores = %d, legacy counter = %d", got, cnt.StashStores)
	}
	if got := reg.Sum("svc.flits"); got == 0 {
		t.Fatal("no S-VC flit traversals recorded")
	}
	if got := reg.Sum("cycles"); got == 0 {
		t.Fatal("no cycles counted")
	}

	// Tracer must have seen the packet lifecycle ends.
	var sawInject, sawEject, sawStore bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case metrics.EvInject:
			sawInject = true
		case metrics.EvEject:
			sawEject = true
		case metrics.EvStashStore:
			sawStore = true
		}
	}
	if !sawInject || !sawEject || !sawStore {
		t.Fatalf("tracer missing lifecycle events: inject=%v eject=%v store=%v",
			sawInject, sawEject, sawStore)
	}

	// Sampler must have produced rows and a parseable CSV.
	csv := n.Sampler.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		t.Fatalf("sampler CSV has no data rows:\n%s", csv)
	}
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Fatalf("sampler CSV header: %q", lines[0])
	}
	if n.Sampler.Series("stash.fill") == nil {
		t.Fatal("sampler missing stash.fill probe")
	}

	// The trace must survive a round trip through both export formats.
	var jb strings.Builder
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(jb.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("JSONL line %d invalid: %s", i, line)
		}
	}
	var cb strings.Builder
	if err := tr.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(cb.String())) {
		t.Fatal("chrome trace is not valid JSON")
	}
}

// TestObservabilityDisabledIdentical verifies that attaching no sinks leaves
// simulation results bit-identical to a run that never imported them — i.e.
// the nil fast path cannot perturb outcomes.
func TestObservabilityDisabledIdentical(t *testing.T) {
	run := func(observe bool) *Network {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			n.EnableMetrics(metrics.NewRegistry())
			n.EnableTracing(metrics.NewTracer(1 << 12))
			n.AttachSampler(1000)
		}
		rng := sim.NewRNG(7)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.25, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(8000)
		return n
	}
	plain, observed := run(false), run(true)
	if plain.Counters() != observed.Counters() {
		t.Fatalf("observability changed simulation outcome:\n%+v\n%+v",
			plain.Counters(), observed.Counters())
	}
	if plain.Collectors.TotalDeliveredFlits() != observed.Collectors.TotalDeliveredFlits() {
		t.Fatal("delivered flits diverged with observability attached")
	}
}

// TestWatchdogQuietOnHealthyRun attaches the watchdog to a healthy run and
// requires zero false positives.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n.AttachWatchdog(2000, &out)
	rng := sim.NewRNG(3)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.2, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(20000)
	if n.Watchdog.Stalls != 0 {
		t.Fatalf("healthy run raised %d watchdog stalls:\n%s", n.Watchdog.Stalls, out.String())
	}
}

// TestExecProfileAndFlightEndToEnd wires the stall profiler and flight
// recorder into a real run and checks they agree with the simulation:
// profiled cycles match the run length, the flight tail's delivery deltas
// sum near the endpoint totals, and the telemetry snapshot ties it all
// together. It also pins the determinism guarantee: a profiled parallel
// run must produce the same outcomes as a bare serial one.
func TestExecProfileAndFlightEndToEnd(t *testing.T) {
	build := func() *Network {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rng := sim.NewRNG(42)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		return n
	}

	const cycles = 8000
	bare := build()
	bare.Run(cycles)

	n := build()
	defer n.Close()
	reg := metrics.NewRegistry()
	n.EnableMetrics(reg)
	n.SetWorkers(2)
	prof := n.EnableExecProfile(64)
	flight := n.AttachFlight(512)
	n.AttachTelemetry(128)
	n.Run(cycles)

	wantC, _ := json.Marshal(bare.Counters())
	gotC, _ := json.Marshal(n.Counters())
	if string(wantC) != string(gotC) {
		t.Fatalf("profiled parallel run diverged:\nbare:     %s\nprofiled: %s", wantC, gotC)
	}

	rep := prof.Report()
	if rep.Cycles != cycles {
		t.Fatalf("profiler saw %d cycles, want %d", rep.Cycles, cycles)
	}
	if rep.Attribution.AttributedPct < 90 {
		t.Fatalf("attribution only %.1f%% of wall", rep.Attribution.AttributedPct)
	}
	if len(prof.Recent()) == 0 {
		t.Fatal("profiler ring empty")
	}

	if flight.Len() != 512 {
		t.Fatalf("flight retained %d rows, want 512", flight.Len())
	}
	rows := flight.Snapshot(0)
	var deltaSum int64
	for _, row := range rows {
		deltaSum += row[1] // "delivered" column
	}
	if deltaSum <= 0 || deltaSum > n.TotalDeliveredFlits() {
		t.Fatalf("flight delivery deltas sum %d vs total %d", deltaSum, n.TotalDeliveredFlits())
	}

	snap := n.TelemetrySnapshot()
	if snap.Cycle != cycles || snap.ExecProfile == nil || snap.Flight == nil {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	if snap.DeliveredFlits != n.TotalDeliveredFlits() {
		t.Fatalf("snapshot flits %d, want %d", snap.DeliveredFlits, n.TotalDeliveredFlits())
	}
	if snap.CreditStallCycles != n.TotalCreditStallCycles() {
		t.Fatalf("snapshot credit stalls %d, want %d", snap.CreditStallCycles, n.TotalCreditStallCycles())
	}
}
