package network

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// buildLoadedWith is buildLoaded with a configuration hook applied before
// wiring, for tests that vary latencies or the fault plan.
func buildLoadedWith(t *testing.T, seed uint64, mutate func(cfg *core.Config)) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.Seed = seed
	cfg.Fault = &fault.Plan{Seed: seed + 101, LinkDropRate: 1e-3, CorruptRate: 5e-4}
	cfg.Retrans = core.DefaultRetrans()
	cfg.RetainPayload = true
	if mutate != nil {
		mutate(cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := sim.NewRNG(seed + 77)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.25, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	return n
}

// mustMatchSerial runs par and a serial twin for the same cycles and
// fails on any observable divergence.
func mustMatchSerial(t *testing.T, par *Network, seed uint64, mutate func(cfg *core.Config), warm, run int64) {
	t.Helper()
	serial := buildLoadedWith(t, seed, mutate)
	serial.Warmup(warm)
	serial.Run(run)
	par.Warmup(warm)
	par.Run(run)
	if cs, cp := serial.Counters(), par.Counters(); cs != cp {
		t.Fatalf("counter divergence:\nserial %+v\npar    %+v", cs, cp)
	}
	if fs, fp := serial.FaultStats(), par.FaultStats(); fs != fp {
		t.Fatalf("fault stat divergence:\nserial %+v\npar    %+v", fs, fp)
	}
	ls, lp := serial.Collector().LatAcc[proto.ClassDefault], par.Collector().LatAcc[proto.ClassDefault]
	if ls != lp {
		t.Fatalf("latency divergence:\nserial %+v\npar    %+v", ls, lp)
	}
	if serial.Now != par.Now {
		t.Fatalf("clock divergence: %d vs %d", serial.Now, par.Now)
	}
}

// TestEpochMatchesSerial is the determinism claim for the epoch-synchronized
// executor: group partitions free-running for full-lookahead epochs produce
// bit-identical results to the serial network, at every group-aligned
// worker count.
func TestEpochMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 9} {
		par := buildLoadedWith(t, 5, nil)
		par.SetWorkers(workers)
		if la := par.EpochLookahead(); la != par.Cfg.Lat.Global {
			t.Fatalf("workers=%d: lookahead %d, want global latency %d", workers, la, par.Cfg.Lat.Global)
		}
		mustMatchSerial(t, par, 5, nil, 500, 6000)
		par.Close()
	}
}

// TestEpochPolicyOffMatches pins the per-cycle fallback: with the policy
// forced off the executor must report no lookahead and still match.
func TestEpochPolicyOffMatches(t *testing.T) {
	par := buildLoadedWith(t, 6, nil)
	par.SetWorkers(4)
	par.SetEpochPolicy(-1)
	defer par.Close()
	if la := par.EpochLookahead(); la != 0 {
		t.Fatalf("policy off: lookahead %d, want 0", la)
	}
	mustMatchSerial(t, par, 6, nil, 300, 3000)
}

// TestEpochPolicyCap pins the explicit epoch-length cap: a positive policy
// bounds the epoch below the topological lookahead and stays exact.
func TestEpochPolicyCap(t *testing.T) {
	par := buildLoadedWith(t, 7, nil)
	par.SetWorkers(4)
	par.SetEpochPolicy(7)
	defer par.Close()
	if la := par.EpochLookahead(); la != 7 {
		t.Fatalf("policy 7: lookahead %d, want 7", la)
	}
	mustMatchSerial(t, par, 7, nil, 300, 3000)
}

// TestEpochGlobalLatencyOneDegrades forces the degenerate topology where
// the lookahead would be a single cycle: epoch sync must refuse (per-cycle
// sync instead) and the run must stay identical to serial.
func TestEpochGlobalLatencyOneDegrades(t *testing.T) {
	squash := func(cfg *core.Config) { cfg.Lat.Global = 1 }
	par := buildLoadedWith(t, 8, squash)
	par.SetWorkers(4)
	defer par.Close()
	if la := par.EpochLookahead(); la != 0 {
		t.Fatalf("global latency 1: lookahead %d, want 0 (per-cycle sync)", la)
	}
	mustMatchSerial(t, par, 8, squash, 300, 3000)
}

// TestEpochWorkersExceedGroups pins the round-robin fallback for worker
// counts that cannot be group-aligned (tiny has 9 groups).
func TestEpochWorkersExceedGroups(t *testing.T) {
	par := buildLoadedWith(t, 9, nil)
	par.SetWorkers(12)
	defer par.Close()
	if la := par.EpochLookahead(); la != 0 {
		t.Fatalf("workers>groups: lookahead %d, want 0 (round-robin)", la)
	}
	mustMatchSerial(t, par, 9, nil, 300, 3000)
}

// TestEpochMidEpochFaultExact schedules stash-bank failures on cycles that
// are not multiples of the 65-cycle tiny lookahead: the scheduler must clamp
// epochs so each failure lands on its exact cycle, leaving every counter —
// including the loss/reconstruction accounting — identical to serial.
func TestEpochMidEpochFaultExact(t *testing.T) {
	failPlan := func(cfg *core.Config) {
		cfg.Fault.StashFailures = []fault.StashFail{
			{Switch: 0, Port: 1, At: 137},
			{Switch: 7, Port: 2, At: 611},
			{Switch: 12, Port: 0, At: 612},
		}
	}
	par := buildLoadedWith(t, 10, failPlan)
	par.SetWorkers(4)
	defer par.Close()
	if la := par.EpochLookahead(); la != 65 {
		t.Fatalf("lookahead %d, want 65", la)
	}
	mustMatchSerial(t, par, 10, failPlan, 0, 4000)
	if _, ok := par.Injector.NextStashFailAt(4000); ok {
		t.Fatal("scheduled stash-bank failures were not all delivered by cycle 4000")
	}
}

// TestEpochObserversExact runs sampler + invariants + watchdog with
// intervals coprime to the lookahead and compares the sampled series
// byte-for-byte: interval observers must fire on their exact cycles from a
// quiescent barrier, not at epoch granularity.
func TestEpochObserversExact(t *testing.T) {
	serial := buildLoadedWith(t, 11, nil)
	spS := serial.AttachSampler(97)
	serial.EnableInvariants(129)
	var outS bytes.Buffer
	serial.AttachWatchdog(1000, &outS)
	serial.Run(3000)

	par := buildLoadedWith(t, 11, nil)
	par.SetWorkers(4)
	defer par.Close()
	spP := par.AttachSampler(97)
	par.EnableInvariants(129)
	var outP bytes.Buffer
	par.AttachWatchdog(1000, &outP)
	par.Run(3000)

	if la := par.EpochLookahead(); la != 65 {
		t.Fatalf("lookahead %d, want 65", la)
	}
	if s, p := spS.CSV(), spP.CSV(); s != p {
		t.Fatalf("sampled series diverge:\nserial:\n%s\nepoch:\n%s", s, p)
	}
	if serial.Watchdog.Stalls != par.Watchdog.Stalls {
		t.Fatalf("watchdog stalls diverge: %d vs %d", serial.Watchdog.Stalls, par.Watchdog.Stalls)
	}
	if !bytes.Equal(outS.Bytes(), outP.Bytes()) {
		t.Fatalf("watchdog dumps diverge:\nserial:\n%s\nepoch:\n%s", outS.String(), outP.String())
	}
}

// TestEpochWatchdogStallExact starves the network (every link drops every
// flit) so the watchdog genuinely fires, and requires the stall count and
// the dump bytes — which embed the exact stall cycles — to match serial.
func TestEpochWatchdogStallExact(t *testing.T) {
	starve := func(cfg *core.Config) { cfg.Fault.LinkDropRate = 1.0 }

	serial := buildLoadedWith(t, 12, starve)
	var outS bytes.Buffer
	serial.AttachWatchdog(300, &outS)
	serial.Run(2000)

	par := buildLoadedWith(t, 12, starve)
	par.SetWorkers(4)
	defer par.Close()
	var outP bytes.Buffer
	par.AttachWatchdog(300, &outP)
	par.Run(2000)

	if serial.Watchdog.Stalls == 0 {
		t.Fatal("starved network never stalled; the test is vacuous")
	}
	if serial.Watchdog.Stalls != par.Watchdog.Stalls {
		t.Fatalf("stall counts diverge: serial %d, epoch %d", serial.Watchdog.Stalls, par.Watchdog.Stalls)
	}
	if !bytes.Equal(outS.Bytes(), outP.Bytes()) {
		t.Fatalf("stall dumps diverge:\nserial:\n%s\nepoch:\n%s", outS.String(), outP.String())
	}
}

// TestCloseFallsBackToSerial is the regression test for the silent
// executor rebuild: Close promises serial fallback, but it used to keep
// the worker count, so the next Run quietly re-spawned a fresh pool. After
// the fix, a closed network must not grow its goroutine count on Run — and
// the epoch-mode teardown must hand the in-flight traffic to the serial
// path exactly (same results as an uninterrupted serial run).
func TestCloseFallsBackToSerial(t *testing.T) {
	serial := buildLoadedWith(t, 13, nil)
	serial.Run(2400)

	par := buildLoadedWith(t, 13, nil)
	par.SetWorkers(4)
	par.Run(1200) // epoch executor active, traffic in flight
	par.Close()

	// Workers exit asynchronously after Close releases the barrier; wait
	// for the count to settle before taking the baseline.
	base := runtime.NumGoroutine()
	for i := 0; i < 100 && base > runtime.NumGoroutine(); i++ {
		time.Sleep(time.Millisecond)
		base = runtime.NumGoroutine()
	}

	par.Run(1200) // must run serially on this goroutine
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("Run after Close spawned goroutines: %d -> %d", base, g)
	}
	if cs, cp := serial.Counters(), par.Counters(); cs != cp {
		t.Fatalf("mid-run Close diverged from serial:\nserial %+v\nclosed %+v", cs, cp)
	}
	if fs, fp := serial.FaultStats(), par.FaultStats(); fs != fp {
		t.Fatalf("mid-run Close fault divergence:\nserial %+v\nclosed %+v", fs, fp)
	}
}

// TestSetWorkersMidRunExact covers the reverse hand-off: serial first
// half, epoch second half, still bit-identical to an uninterrupted serial
// run (the epoch build re-announces traffic already riding the links).
func TestSetWorkersMidRunExact(t *testing.T) {
	serial := buildLoadedWith(t, 14, nil)
	serial.Run(2400)

	par := buildLoadedWith(t, 14, nil)
	par.Run(1200)
	par.SetWorkers(4)
	defer par.Close()
	par.Run(1200)
	if la := par.EpochLookahead(); la != 65 {
		t.Fatalf("lookahead %d, want 65", la)
	}
	if cs, cp := serial.Counters(), par.Counters(); cs != cp {
		t.Fatalf("mid-run SetWorkers diverged:\nserial %+v\npar    %+v", cs, cp)
	}
}

// TestSetExecProfilerNilDetaches pins the nil contract: nil detaches
// cleanly (no panic, profiling off) instead of dereferencing p.
func TestSetExecProfilerNilDetaches(t *testing.T) {
	n := buildLoadedWith(t, 15, nil)
	n.EnableExecProfile(0)
	if err := n.SetExecProfiler(nil); err != nil {
		t.Fatalf("SetExecProfiler(nil): %v", err)
	}
	if n.Profiler != nil {
		t.Fatal("nil attach left a profiler installed")
	}
	n.Run(100) // plain serial path; must not profile or panic
	if n.Now != 100 {
		t.Fatalf("run advanced %d cycles, want 100", n.Now)
	}
}

// TestSetExecProfilerMismatchError pins the loud-failure contract: a
// profiler sized for the wrong worker count is rejected at attach time
// (it used to be silently dropped by Executor.Run, yielding an unprofiled
// parallel run with no diagnostic).
func TestSetExecProfilerMismatchError(t *testing.T) {
	n := buildLoadedWith(t, 16, nil)
	n.SetWorkers(4)
	defer n.Close()
	if err := n.SetExecProfiler(sim.NewExecProfiler(2, 0)); err == nil {
		t.Fatal("mismatched profiler accepted silently")
	}
	if err := n.SetExecProfiler(sim.NewExecProfiler(4, 0)); err != nil {
		t.Fatalf("matched profiler rejected: %v", err)
	}
}

// TestEnableExecProfileBeforeSetWorkers pins the resize contract for the
// other half of the satellite: EnableExecProfile before SetWorkers used to
// leave a 1-lane profiler attached to a 4-worker run, which Executor.Run
// silently dropped. Now SetWorkers resizes the network-owned profiler and
// the parallel run is actually profiled.
func TestEnableExecProfileBeforeSetWorkers(t *testing.T) {
	n := buildLoadedWith(t, 17, nil)
	n.EnableExecProfile(0)
	n.SetWorkers(4)
	defer n.Close()
	if w := n.Profiler.Workers(); w != 4 {
		t.Fatalf("profiler lanes %d after SetWorkers(4), want 4", w)
	}
	n.Run(500)
	rep := n.Profiler.Report()
	if rep.Attribution.Cycles != 500 {
		t.Fatalf("profiled %d cycles, want 500", rep.Attribution.Cycles)
	}
	if rep.Attribution.Epochs == 0 || rep.Attribution.CyclesPerSync <= 1 {
		t.Fatalf("epoch run not profiled as epochs: %+v", rep)
	}
}

// TestEpochProfilerSyncAttribution is the acceptance check at test scale:
// with no serial observers attached, a tiny epoch run must synchronize at
// most once per full lookahead (65 cycles), i.e. CyclesPerSync == 65.
func TestEpochProfilerSyncAttribution(t *testing.T) {
	n := buildLoadedWith(t, 18, nil)
	n.SetWorkers(4)
	defer n.Close()
	n.EnableExecProfile(0)
	n.Run(6500)
	rep := n.Profiler.Report()
	if rep.Attribution.Epochs != 100 {
		t.Fatalf("6500 cycles at lookahead 65 took %d epochs, want 100", rep.Attribution.Epochs)
	}
	if rep.Attribution.CyclesPerSync != 65 {
		t.Fatalf("cycles/sync = %v, want 65", rep.Attribution.CyclesPerSync)
	}
}
