package network

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"stashsim/internal/buffer"
	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

// buildChecked builds a tiny network in the given mode with traffic and
// the invariant checker auditing every cycle.
func buildChecked(t *testing.T, mode core.StashMode) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = mode
	if mode == core.StashCongestion {
		cfg.ECN = core.DefaultECN()
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(1)
	rng := sim.NewRNG(7)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.3, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	return n
}

// TestInvariantsHoldInAllModes drives every stash mode under load with a
// per-cycle audit: any conservation-law break panics the run.
func TestInvariantsHoldInAllModes(t *testing.T) {
	for _, mode := range []core.StashMode{core.StashOff, core.StashE2E, core.StashCongestion} {
		t.Run(fmt.Sprintf("%v", mode), func(t *testing.T) {
			n := buildChecked(t, mode)
			n.Run(5000)
			if n.Invariants.Checks != 5000 {
				t.Fatalf("audited %d of 5000 cycles", n.Invariants.Checks)
			}
		})
	}
}

// TestInvariantsHoldUnderErrorInjection covers retransmission, the
// hardest conservation case: copies are minted from retained store
// entries and freed by later ACKs.
func TestInvariantsHoldUnderErrorInjection(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	cfg.ErrorRate = 0.05
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(1)
	rng := sim.NewRNG(3)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.15, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(8000)
	if n.Invariants.Checks == 0 {
		t.Fatal("checker never ran")
	}
}

// expectViolation runs fn and asserts it panics with an invariant
// message containing want.
func expectViolation(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want invariant violation containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "core: invariant violated") || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not contain %q", r, want)
		}
	}()
	fn()
}

func TestInvariantsCatchFlitLeak(t *testing.T) {
	n := buildChecked(t, core.StashOff)
	n.Run(100)
	n.Invariants.Out = io.Discard
	orig := n.Invariants.ExtCreated
	n.Invariants.ExtCreated = func() int64 { return orig() + 1 }
	expectViolation(t, "flit conservation", func() { n.Step() })
}

func TestInvariantsCatchSRVCOnLink(t *testing.T) {
	n := buildChecked(t, core.StashOff)
	n.Run(100)
	n.Invariants.Out = io.Discard
	toSw, _ := n.Endpoints[0].AuditLinks()
	toSw.SendFlit(int64(n.Now), proto.Flit{VC: proto.VCStore, Size: 1})
	expectViolation(t, "S/R confinement", func() { n.Step() })
}

func TestInvariantsCatchCreditMismatch(t *testing.T) {
	n := buildChecked(t, core.StashOff)
	n.Run(100)
	n.Invariants.Out = io.Discard
	// Steal one reserved credit on the first switch-to-switch edge: the
	// sender now undercounts the downstream buffer's free space.
	d := n.Cfg.Topo
	port := d.P // first non-endpoint port
	if d.PortClass(port) == topo.Endpoint {
		t.Fatalf("port %d is endpoint-facing", port)
	}
	f := proto.Flit{VC: 0, Size: 1}
	n.Switches[0].AuditOutCredits(port).Take(&f)
	expectViolation(t, "credit conservation", func() { n.Step() })
}

func TestInvariantsCatchStashInStashlessSwitch(t *testing.T) {
	n := buildChecked(t, core.StashOff)
	n.Run(100)
	n.Invariants.Out = io.Discard
	// Force a flit into a zero-capacity pool, compensating the global
	// flit count so only the stash law trips. The audit runs directly —
	// stepping would let the input stage retrieve the flit into a tile
	// first (tripping the tile-side S/R law instead).
	n.Switches[0].PortStash(0).PutCongested(proto.Flit{VC: 0, Size: 1})
	orig := n.Invariants.ExtCreated
	n.Invariants.ExtCreated = func() int64 { return orig() + 1 }
	expectViolation(t, "zero capacity", func() { n.Invariants.Check(n.Now) })
}

func TestInvariantsCatchStashOverflow(t *testing.T) {
	n := buildChecked(t, core.StashCongestion)
	n.Run(100)
	n.Invariants.Out = io.Discard
	// Find a pool with real capacity and stuff it past its limit.
	var pool *buffer.StashPool
	for p := 0; p < n.Cfg.Topo.Radix() && pool == nil; p++ {
		if cand := n.Switches[0].PortStash(p); cand.Capacity() > 0 {
			pool = cand
		}
	}
	if pool == nil {
		t.Fatal("no stash-capable port on sw0")
	}
	// A negative-size delete is the signature of corrupted size metadata;
	// it inflates the occupancy past capacity (and is self-compensating
	// in the flit-conservation law, isolating the occupancy law). Delete
	// ignores packets without a live copy, so fabricate one first and
	// compensate its flit in the global count.
	pool.PutCopy(proto.Flit{PktID: 0, Size: 1})
	orig := n.Invariants.ExtCreated
	n.Invariants.ExtCreated = func() int64 { return orig() + 1 }
	pool.Delete(0, -(pool.Capacity() - pool.Used() + 1))
	expectViolation(t, "stash occupancy", func() { n.Invariants.Check(n.Now) })
}

func TestInvariantsCatchFreedBufInBank(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	cfg.RetainPayload = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableInvariants(1)
	n.Run(100)
	n.Invariants.Out = io.Discard
	var pool *buffer.StashPool
	for p := 0; p < n.Cfg.Topo.Radix() && pool == nil; p++ {
		if cand := n.Switches[0].PortStash(p); cand.Capacity() > 0 {
			pool = cand
		}
	}
	if pool == nil {
		t.Fatal("no stash-capable port on sw0")
	}
	// Complete a one-flit stash copy so the bank retains its payload
	// buffer, compensating the fabricated flit in the global count.
	pool.PutCopy(proto.Flit{PktID: 7, Size: 1})
	orig := n.Invariants.ExtCreated
	n.Invariants.ExtCreated = func() int64 { return orig() + 1 }
	n.Invariants.Check(n.Now) // healthy retained copy passes the audit
	// Now corrupt it: drop the bank's reference behind the pool's back.
	// TakeCopy hands us a second reference; releasing both frees the
	// buffer to the freelist while the store entry still points at it —
	// the exact use-after-free the liveness law exists to catch.
	b, ok := pool.TakeCopy(7)
	if !ok {
		t.Fatal("stash copy not retained")
	}
	b.Release()
	b.Release()
	expectViolation(t, "stash liveness", func() { n.Invariants.Check(n.Now) })
}

// TestInvariantsNilAndSparse covers the disabled fast path and the
// sparse-audit interval.
func TestInvariantsNilAndSparse(t *testing.T) {
	var iv *core.Invariants
	iv.Check(0) // nil receiver: no-op
	n := buildChecked(t, core.StashOff)
	n.Invariants.Every = 10
	n.Run(100)
	if got := n.Invariants.Checks; got != 10 {
		t.Fatalf("sparse audit ran %d times, want 10", got)
	}
}
