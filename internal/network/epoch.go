package network

import (
	"fmt"
	"strconv"

	"stashsim/internal/core"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// Epoch-synchronized conservative execution (PDES with lookahead). The
// dragonfly's own geometry supplies the lookahead: partitions are whole
// groups, the only links crossing a partition boundary are global links,
// and a global link costs hundreds of cycles — so partitions may free-run
// for up to that many cycles between barriers without reordering any
// delivery. Cross-partition links switch into epoch-batched delivery
// (core.Link.EnableEpochDelivery): producers stage an epoch's flits and
// credits into per-link SPSC parity slabs, and each partition's worker
// drains the previous epoch's slab right after the epoch barrier. Serial
// per-cycle singletons (fault events, sampler, watchdog, invariants,
// telemetry, flight recorder) keep their cycle-exact semantics because
// epochs are additionally clamped to end on the next such event, which
// then runs as a 1-cycle epoch bracketed by the usual hooks.

// epochPortRef names one (switch, port) side of an epoch-mode link.
//
//stashsim:owner partition
type epochPortRef struct {
	sw   *core.Switch
	port int
}

// epochLink records one cross-partition link's wiring for teardown and
// drain construction.
type epochLink struct {
	link     *core.Link
	prod     *core.Switch
	prodPort int
	cons     *core.Switch
	consPort int
	prodPart int
	consPart int
}

// partitionDrainer delivers one partition's share of the epoch-batched
// traffic: the flit side of every cross-partition link whose consumer the
// partition owns, and the credit side of every one whose producer it
// owns. Both sides fold into rings owned by this partition's switches, so
// the drain is single-writer by construction.
//
//stashsim:owner partition
type partitionDrainer struct {
	flits []epochPortRef
	creds []epochPortRef
}

// DrainEpoch implements sim.EpochDrainer: fold the slab the remote sides
// filled during the previous epoch ((epoch-1)&1 — producers now stage
// into the other slab) and arm the owning switches' active sets.
//
//stashsim:phase parallel
//stashsim:noalloc
func (d *partitionDrainer) DrainEpoch(epoch int64) {
	slab := int((epoch - 1) & 1)
	for _, r := range d.flits {
		r.sw.DrainEpochFlits(r.port, slab)
	}
	for _, r := range d.creds {
		r.sw.DrainEpochCredits(r.port, slab)
	}
}

// ParseEpochPolicy parses the CLI-facing -epoch value into a policy for
// SetEpochPolicy: "auto" (or empty) selects epoch sync whenever it
// applies, "off" forces the per-cycle barrier, and a positive integer
// caps the epoch length at that many cycles.
func ParseEpochPolicy(s string) (int64, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "off":
		return -1, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("network: epoch policy %q is not auto, off, or a positive cycle count", s)
	}
	return v, nil
}

// SetEpochPolicy selects the synchronization scheme for parallel runs:
// v == 0 (the default) picks epoch synchronization automatically whenever
// the worker count allows group-aligned partitions and the topology
// grants a lookahead of at least two cycles; v < 0 forces the per-cycle
// barrier; v > 0 additionally caps the epoch length at v cycles (still
// clamped to the safe lookahead). Call before Run; changing the policy
// tears down any built executor.
func (n *Network) SetEpochPolicy(v int64) {
	if v == n.epochPolicy {
		return
	}
	n.teardownExec()
	n.epochPolicy = v
}

// EpochLookahead reports the epoch length cap of the active executor in
// cycles, forcing the lazy build; 0 means per-cycle synchronization
// (serial, round-robin fallback, or epoch sync disabled/inapplicable).
func (n *Network) EpochLookahead() int64 {
	if n.workers > 1 {
		n.executor()
	}
	return n.epochLookahead
}

// buildEpochExecutor constructs the group-partitioned epoch executor, or
// returns nil when epoch sync does not apply: serial mode, policy off,
// more workers than groups (round-robin remains the fallback for
// non-group-aligned counts), or an effective lookahead below two cycles.
func (n *Network) buildEpochExecutor() *sim.Executor {
	if n.workers <= 1 || n.epochPolicy < 0 {
		return nil
	}
	d := n.Cfg.Topo
	W, G := n.workers, d.Groups()
	if W > G {
		return nil
	}

	// Contiguous whole-group blocks: partition w owns groups
	// [w*G/W, (w+1)*G/W). Every partition gets at least one group.
	groupPart := make([]int, G)
	for w := 0; w < W; w++ {
		for g := w * G / W; g < (w+1)*G/W; g++ {
			groupPart[g] = w
		}
	}
	partOfSwitch := func(sw int) int { return groupPart[d.Group(sw)] }

	// Enumerate cross-partition links (producer view, same walk as New).
	// Only global links can cross — endpoints and local links stay inside
	// one group — and the lookahead is the smallest latency among them.
	var links []epochLink
	lookahead := int64(0)
	for sw := 0; sw < d.NumSwitches(); sw++ {
		s := n.Switches[sw]
		for port := 0; port < d.Radix(); port++ {
			if d.PortClass(port) == topo.Endpoint {
				continue
			}
			nsw, nport := d.Neighbor(sw, port)
			pp, cp := partOfSwitch(sw), partOfSwitch(nsw)
			if pp == cp {
				continue
			}
			l := s.AuditOutLink(port)
			links = append(links, epochLink{
				link: l, prod: s, prodPort: port,
				cons: n.Switches[nsw], consPort: nport,
				prodPart: pp, consPart: cp,
			})
			if lookahead == 0 || l.Latency < lookahead {
				lookahead = l.Latency
			}
		}
	}
	if cap := n.epochPolicy; cap > 0 && cap < lookahead {
		lookahead = cap
	}
	if lookahead < 2 {
		return nil
	}

	// Per-partition component lists, endpoints first (the profiled
	// phase-A/phase-B split), both in ID order for determinism of the
	// profiling attribution; results are order-independent.
	parts := make([][]sim.Stepper, W)
	aCounts := make([]int, W)
	for i, ep := range n.Endpoints {
		sw, _ := d.EndpointSwitch(i)
		w := partOfSwitch(sw)
		parts[w] = append(parts[w], ep)
		aCounts[w]++
	}
	for sw, s := range n.Switches {
		parts[partOfSwitch(sw)] = append(parts[partOfSwitch(sw)], s)
	}

	drainers := make([]partitionDrainer, W)
	for _, el := range links {
		drainers[el.consPart].flits = append(drainers[el.consPart].flits, epochPortRef{el.cons, el.consPort})
		drainers[el.prodPart].creds = append(drainers[el.prodPart].creds, epochPortRef{el.prod, el.prodPort})
	}
	drains := make([]sim.EpochDrainer, W)
	for w := range drainers {
		drains[w] = &drainers[w]
	}

	exec := sim.NewPartitionedExecutor(parts, aCounts)
	exec.PreCycle = n.preCycle
	exec.PostCycle = n.postCycle
	exec.PostEpoch = func(next sim.Tick) { n.cycleDone.Store(int64(next)) }
	exec.Profiler = n.Profiler
	exec.EnableEpochSync(sim.Tick(lookahead), n.nextSerialEvent, drains)

	clock := exec.EpochClock()
	for _, el := range links {
		el.link.EnableEpochDelivery(clock)
		// Wake flags raised under cycle mode may already be consumed;
		// re-announce any traffic still riding the rings.
		el.cons.ReannounceIn(el.consPort)
		el.prod.ReannounceCred(el.prodPort)
	}
	n.epochLinks = links
	n.epochLookahead = lookahead
	return exec
}

// teardownExec closes the worker pool, if any, and unwinds epoch-mode
// link wiring: every cross-partition link returns to per-cycle parity
// delivery (staged traffic folded through, owners re-armed) so a serial
// or round-robin run picks up exactly where the epoch executor stopped.
func (n *Network) teardownExec() {
	if n.exec != nil {
		n.exec.Close()
		n.exec = nil
	}
	if n.epochLinks == nil {
		return
	}
	resume := int64(n.Now)
	for _, el := range n.epochLinks {
		el.link.DisableEpochDelivery(resume)
		el.cons.ReannounceIn(el.consPort)
		el.prod.ReannounceCred(el.prodPort)
	}
	n.epochLinks = nil
	n.epochLookahead = 0
}

// nextSerialEvent returns the next cycle >= from on which a serial
// singleton must run at the barrier: a due (or overdue) stash-bank
// failure, a sampler / invariant-audit / telemetry interval boundary, a
// watchdog window boundary, or — when a flight recorder is attached —
// every cycle (it records per-cycle deltas). The epoch scheduler clamps
// epochs to end on the returned cycle and runs it as a 1-cycle epoch with
// the hooks, so every observer keeps its per-cycle-execution semantics.
//
//stashsim:phase serial -- reads observer schedules; runs on the coordinator between epochs
func (n *Network) nextSerialEvent(from sim.Tick) sim.Tick {
	if n.Flight != nil {
		return from
	}
	f := int64(from)
	next := int64(1) << 62
	if n.ckptFn != nil {
		at := n.ckptAt
		if at < f {
			at = f
		}
		if at < next {
			next = at
		}
	}
	if at, ok := n.Injector.NextStashFailAt(f); ok && at < next {
		next = at
	}
	if n.Sampler != nil {
		if at := nextMultiple(f, n.Sampler.Every()); at < next {
			next = at
		}
	}
	if n.Invariants != nil {
		every := n.Invariants.Every
		if every <= 1 {
			return from // audits every cycle
		}
		if at := nextMultiple(f, every); at < next {
			next = at
		}
	}
	if at := n.Watchdog.NextEventAt(f); at < next {
		next = at
	}
	if n.Telemetry != nil {
		if at := nextMultiple(f, n.Telemetry.Every()); at < next {
			next = at
		}
	}
	return sim.Tick(next)
}

// nextMultiple returns the smallest multiple of every that is >= from
// (the next firing cycle of a now%every==0 observer).
func nextMultiple(from, every int64) int64 {
	if every < 1 {
		return from
	}
	if r := from % every; r != 0 {
		return from + every - r
	}
	return from
}
