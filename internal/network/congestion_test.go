package network

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// buildHotspot creates a tiny network with victim uniform traffic plus a
// 4:1 hotspot aggressor starting at cycle `start`.
func buildHotspot(t *testing.T, mode core.StashMode, start int64) *Network {
	t.Helper()
	cfg := core.TinyConfig()
	cfg.Mode = mode
	cfg.ECN = core.DefaultECN()
	// The tiny network's RTTs are short; speed ECN recovery up a little
	// to match its scale.
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse audit: these runs are long (60k cycles) and the laws are
	// state-based, so corruption is still caught at the next interval.
	n.EnableInvariants(64)
	rng := sim.NewRNG(99)
	rate := n.ChannelRate()
	hot := int32(7) // hotspot destination endpoint
	srcs := map[int32]bool{20: true, 30: true, 40: true, 50: true}
	for _, ep := range n.Endpoints {
		if srcs[ep.ID] {
			ep.Gen = traffic.Hotspot(hot, proto.MaxPacketFlits, proto.ClassAggressor, start)
		} else if ep.ID != hot {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, rate, proto.MaxPacketFlits, proto.ClassVictim, 0)
		}
	}
	return n
}

func TestECNThrottlesHotspot(t *testing.T) {
	n := buildHotspot(t, core.StashOff, 2000)
	n.Run(60000)
	c := n.Counters()
	if c.ECNMarks == 0 {
		t.Fatal("no ECN marks under a 4:1 hotspot")
	}
	if n.Collector().WindowShrinks == 0 {
		t.Fatal("no window shrinks despite marked ACKs")
	}
	// The aggressor sources' windows for the hotspot must have been
	// squeezed well below the maximum.
	sq := 0
	for _, src := range []int32{20, 30, 40, 50} {
		if n.Endpoints[src].WindowOf(7) < n.Cfg.ECN.WindowMax/2 {
			sq++
		}
	}
	if sq == 0 {
		t.Fatal("no aggressor window squeezed below half maximum")
	}
	if err := n.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestCongestionStashAbsorbsHotspot(t *testing.T) {
	n := buildHotspot(t, core.StashCongestion, 2000)
	n.Run(60000)
	c := n.Counters()
	if c.CongStashed == 0 {
		t.Fatal("no packets were congestion-stashed")
	}
	if c.StashRetrieves == 0 {
		t.Fatal("stashed packets were never retrieved")
	}
	// Every stashed flit must eventually be retrieved (stores include
	// those still resident; retrieval may lag but not by more than the
	// current occupancy).
	if c.StashRetrieves > c.StashStores {
		t.Fatalf("retrieved %d > stored %d", c.StashRetrieves, c.StashStores)
	}
	if err := n.SanityCheck(); err != nil {
		t.Fatal(err)
	}
	// After the aggressor's ECN throttling converges and traffic stops,
	// the stash must drain completely.
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	if !n.RunUntil(200000, 1000, func() bool { return n.TotalStashUsed() == 0 }) {
		t.Fatalf("congestion stash did not drain: %d flits", n.TotalStashUsed())
	}
}

func TestCongestionStashImprovesVictimLatency(t *testing.T) {
	base := buildHotspot(t, core.StashOff, 2000)
	base.Collectors.WithHist(proto.ClassVictim)
	base.Run(40000)
	stash := buildHotspot(t, core.StashCongestion, 2000)
	stash.Collectors.WithHist(proto.ClassVictim)
	stash.Run(40000)

	b99 := base.Collector().LatHist[proto.ClassVictim].Percentile(99)
	s99 := stash.Collector().LatHist[proto.ClassVictim].Percentile(99)
	t.Logf("victim p99: baseline=%d stash=%d; mean baseline=%.0f stash=%.0f",
		b99, s99,
		base.Collector().LatAcc[proto.ClassVictim].Mean(),
		stash.Collector().LatAcc[proto.ClassVictim].Mean())
	if s99 > b99 {
		t.Fatalf("stashing worsened victim tail latency: %d > %d", s99, b99)
	}
}
