package network

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/traffic"
)

// TestPaperScaleConstruction builds the full 3080-endpoint configuration
// of Section V and runs it briefly: the wiring invariants (3080 endpoints,
// 616 switches, 237.5 KB stash per switch) and basic traffic flow must
// hold at full scale, not just on the scaled presets.
func TestPaperScaleConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale network")
	}
	cfg := core.PaperConfig()
	cfg.Mode = core.StashE2E
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Endpoints) != 3080 || len(n.Switches) != 616 {
		t.Fatalf("%d endpoints / %d switches", len(n.Endpoints), len(n.Switches))
	}
	for _, s := range n.Switches {
		if s.StashCapTotal() != 23750 {
			t.Fatalf("switch %d stash capacity %d, want 23750 flits (237.5KB)",
				s.ID, s.StashCapTotal())
		}
	}
	rng := sim.NewRNG(1)
	rate := n.ChannelRate()
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.3, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	// 4000 cycles ≈ 3 µs: enough for global-link round trips and first
	// deliveries.
	n.Run(4000)
	if n.Collector().DeliveredPkts[proto.ClassDefault] == 0 {
		t.Fatal("no deliveries at paper scale")
	}
	c := n.Counters()
	if c.E2ETracked == 0 || c.StashStores == 0 {
		t.Fatal("stashing inactive at paper scale")
	}
	if err := n.SanityCheck(); err != nil {
		t.Fatal(err)
	}
}
