package network

import (
	"fmt"

	"stashsim/internal/sim"
	"stashsim/internal/snapshot"
)

// Bit-exact checkpoint/restore. A checkpoint captures the complete
// dynamic state of the simulated machine — switches, endpoints, links
// (including traffic still staged in their inbox slabs), fault injector,
// collectors, and the stateful observers — at a serial cycle barrier, so
// a run restored from it continues byte-identically to one that never
// stopped, in every execution mode (the link codec is mode-canonical; see
// the core package's snapshot hooks).
//
// Not captured: the tracer, flight recorder, telemetry publisher, and
// executor profiler. They are debugging sinks whose output streams cannot
// meaningfully resume mid-run; a restored run may re-attach fresh ones,
// but resume-equality of their outputs is out of scope.

// ScheduleCheckpoint arranges for fn to run once, at the serial barrier
// before the first cycle >= at is executed. Under the parallel executor
// the epoch scheduler clamps an epoch to end there (nextSerialEvent), so
// fn always observes a fully quiescent network. fn typically calls
// Checkpoint and writes the bytes out. Call before Run.
func (n *Network) ScheduleCheckpoint(at int64, fn func(now sim.Tick)) {
	n.ckptAt = at
	n.ckptFn = fn
}

// Checkpoint serializes the network's complete dynamic state as of cycle
// now — the next cycle to execute. Call it only from a ScheduleCheckpoint
// hook or between runs (now == n.Now); the walk assumes every component
// is quiescent.
//
//stashsim:phase serial -- walks every component's private state; runs only at a cycle barrier
func (n *Network) Checkpoint(now sim.Tick) []byte {
	w := snapshot.NewWriter()
	n.Cfg.EncodeFingerprint(w)
	w.Section("NETW")
	w.I64(int64(now))
	if n.Injector != nil {
		n.Injector.EncodeState(w)
	}
	for _, s := range n.Switches {
		s.EncodeState(w)
	}
	for _, ep := range n.Endpoints {
		ep.EncodeState(w)
	}
	n.Collectors.EncodeState(w)
	w.Bool(n.Metrics != nil)
	if n.Metrics != nil {
		n.Metrics.EncodeState(w)
	}
	w.Bool(n.Sampler != nil)
	if n.Sampler != nil {
		n.Sampler.EncodeState(w)
	}
	w.Bool(n.Watchdog != nil)
	if n.Watchdog != nil {
		n.Watchdog.EncodeState(w)
	}
	w.Bool(n.Invariants != nil)
	if n.Invariants != nil {
		w.I64(n.Invariants.Checks)
	}
	w.Section("ENDS")
	return w.Finish()
}

// Restore loads a checkpoint into this network, which must be freshly
// built (never stepped) from the identical configuration and with the
// identical observers attached — the fingerprint and the per-subsystem
// structural checks fail loudly on any mismatch. On success the network's
// clock stands at the checkpointed cycle and Run continues the simulation
// byte-identically, under any worker count and epoch policy.
//
//stashsim:phase serial -- rewrites every component's private state; runs only before any Run
func (n *Network) Restore(data []byte) error {
	if n.Now != 0 || n.exec != nil {
		return fmt.Errorf("network: restore requires a freshly built network (clock at 0, no executor)")
	}
	rd, err := snapshot.NewReader(data)
	if err != nil {
		return err
	}
	n.Cfg.CheckFingerprint(rd)
	if err := rd.Err(); err != nil {
		return err
	}
	rd.Section("NETW")
	now := rd.I64()
	if err := rd.Err(); err != nil {
		return err
	}
	if now < 0 {
		return fmt.Errorf("snapshot: negative checkpoint cycle %d", now)
	}
	if n.Injector != nil {
		n.Injector.DecodeState(rd)
	}
	for _, s := range n.Switches {
		s.DecodeState(rd, now)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	for _, ep := range n.Endpoints {
		ep.DecodeState(rd, now)
		if err := rd.Err(); err != nil {
			return err
		}
	}
	n.Collectors.DecodeState(rd)
	if err := n.decodeObserver(rd, "metrics registry", n.Metrics != nil, func() {
		n.Metrics.DecodeState(rd)
	}); err != nil {
		return err
	}
	if err := n.decodeObserver(rd, "occupancy sampler", n.Sampler != nil, func() {
		n.Sampler.DecodeState(rd)
	}); err != nil {
		return err
	}
	if err := n.decodeObserver(rd, "stall watchdog", n.Watchdog != nil, func() {
		n.Watchdog.DecodeState(rd)
	}); err != nil {
		return err
	}
	if err := n.decodeObserver(rd, "invariant checker", n.Invariants != nil, func() {
		n.Invariants.Checks = rd.I64()
	}); err != nil {
		return err
	}
	rd.Section("ENDS")
	if err := rd.Close(); err != nil {
		return err
	}

	n.Now = sim.Tick(now)
	n.cycleDone.Store(now)
	// Wake flags consumed before the checkpoint are gone; re-announce all
	// pending link work from ring occupancy (the codec folded every
	// staged entry into the rings). The serial-singleton schedules need no
	// rescheduling: they fire on absolute-cycle arithmetic (now%every,
	// windowStart), which the restored clock and watchdog state satisfy.
	for _, s := range n.Switches {
		for p := 0; p < n.Cfg.Topo.Radix(); p++ {
			s.ReannounceIn(p)
			s.ReannounceCred(p)
		}
	}
	return nil
}

// decodeObserver checks an observer's presence flag against this
// network's wiring and runs its decoder when present on both sides.
func (n *Network) decodeObserver(rd *snapshot.Reader, name string, attached bool, decode func()) error {
	has := rd.Bool()
	if err := rd.Err(); err != nil {
		return err
	}
	if has != attached {
		if has {
			return fmt.Errorf("snapshot: checkpointed run had a %s attached, this run does not — pass identical observability flags", name)
		}
		return fmt.Errorf("snapshot: this run has a %s attached, the checkpointed run did not — pass identical observability flags", name)
	}
	if has {
		decode()
	}
	return rd.Err()
}
