package fault

import "stashsim/internal/snapshot"

// Checkpoint hooks. The fault plan itself is configuration (the network
// fingerprint covers it); the injector's dynamic state is the stats
// shards, the stash-failure delivery cursor, and every per-link RNG
// stream and wormhole drop latch. Links are captured in wiring order,
// which the rebuilt network reproduces exactly.

// encodeStats appends one stats shard.
func encodeStats(w *snapshot.Writer, s *Stats) {
	w.I64(s.PktsDropped)
	w.I64(s.FlitsDropped)
	w.I64(s.OutagePkts)
	w.I64(s.FlitsCorrupted)
	w.I64(s.StashCopiesLost)
	w.I64(s.StashCopiesReconstructed)
}

// decodeStats restores one stats shard.
func decodeStats(r *snapshot.Reader, s *Stats) {
	s.PktsDropped = r.I64()
	s.FlitsDropped = r.I64()
	s.OutagePkts = r.I64()
	s.FlitsCorrupted = r.I64()
	s.StashCopiesLost = r.I64()
	s.StashCopiesReconstructed = r.I64()
}

// EncodeState appends the injector's dynamic state.
//
//stashsim:phase serial -- walks unsynchronized per-link shards; runs only at a cycle barrier
func (in *Injector) EncodeState(w *snapshot.Writer) {
	w.Section("FALT")
	encodeStats(w, &in.local)
	w.U32(uint32(in.failNext))
	w.Count(len(in.links))
	for _, lf := range in.links {
		encodeStats(w, &lf.stats)
		w.U64(lf.rng.State())
		for vc := 0; vc < len(lf.dropPkt); vc++ {
			w.U64(lf.dropPkt[vc])
			w.Bool(lf.dropActive[vc])
		}
	}
}

// DecodeState restores the injector's dynamic state into an injector
// built from the identical plan and wired in the identical order.
//
//stashsim:phase serial -- mutates unsynchronized per-link shards; runs only before the restored run starts
func (in *Injector) DecodeState(r *snapshot.Reader) {
	r.Section("FALT")
	decodeStats(r, &in.local)
	next := r.U32()
	if r.Err() != nil {
		return
	}
	if int(next) > len(in.fails) {
		r.Failf("fault: stash-failure cursor %d beyond %d scheduled failures", next, len(in.fails))
		return
	}
	in.failNext = int(next)
	n := r.Count(57)
	if r.Err() != nil {
		return
	}
	if n != len(in.links) {
		r.Failf("fault: snapshot has %d faulted links, wiring produced %d", n, len(in.links))
		return
	}
	for _, lf := range in.links {
		decodeStats(r, &lf.stats)
		lf.rng.SetState(r.U64())
		for vc := 0; vc < len(lf.dropPkt); vc++ {
			lf.dropPkt[vc] = r.U64()
			lf.dropActive[vc] = r.Bool()
		}
	}
}
