package fault

import (
	"os"
	"path/filepath"
	"testing"

	"stashsim/internal/proto"
)

// mkFlit builds the i-th flit of an n-flit packet.
func mkFlit(pktID uint64, vc uint8, i, n int) *proto.Flit {
	f := &proto.Flit{PktID: pktID, VC: vc, Seq: uint8(i), Size: uint8(n)}
	if i == 0 {
		f.Flags |= proto.FlagHead
	}
	if i == n-1 {
		f.Flags |= proto.FlagTail
	}
	return f
}

// TestDropIsWholePacket verifies the per-VC drop latch: once a head flit
// is dropped, every remaining flit of that packet on the same VC is
// dropped, and the next packet gets a fresh decision.
func TestDropIsWholePacket(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, LinkDropRate: 0.5})
	lf := in.Link("sw0.0->sw1.0")
	if lf == nil {
		t.Fatal("expected active link fault")
	}
	const pkts, size = 2000, 4
	for p := 0; p < pkts; p++ {
		dropped := 0
		for i := 0; i < size; i++ {
			if lf.OnFlit(0, mkFlit(uint64(p+1), 0, i, size)) {
				dropped++
			}
		}
		if dropped != 0 && dropped != size {
			t.Fatalf("packet %d partially dropped: %d of %d flits", p, dropped, size)
		}
	}
	st := in.Snapshot()
	if st.PktsDropped == 0 || st.PktsDropped == pkts {
		t.Fatalf("drop rate 0.5 dropped %d of %d packets", st.PktsDropped, pkts)
	}
	if st.FlitsDropped != st.PktsDropped*size {
		t.Fatalf("flit count %d inconsistent with %d dropped packets of size %d",
			st.FlitsDropped, st.PktsDropped, size)
	}
}

// TestDropLatchPerVC verifies that a drop on one VC does not leak onto an
// interleaved packet on another VC of the same link.
func TestDropLatchPerVC(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Outages: []Outage{{Link: "l", Start: 0, End: 10}}})
	lf := in.Link("l")
	// Head of packet 1 on VC 0 inside the outage: dropped, latch armed.
	if !lf.OnFlit(5, mkFlit(1, 0, 0, 3)) {
		t.Fatal("head inside outage not dropped")
	}
	// Packet 2's body flits on VC 1 after the outage must pass.
	if lf.OnFlit(20, mkFlit(2, 1, 1, 3)) {
		t.Fatal("unrelated VC caught by drop latch")
	}
	// Packet 1's remaining flits on VC 0 are dropped even after the window.
	if !lf.OnFlit(20, mkFlit(1, 0, 1, 3)) || !lf.OnFlit(21, mkFlit(1, 0, 2, 3)) {
		t.Fatal("latched packet flits not dropped")
	}
	// A fresh packet on VC 0 after the tail cleared the latch passes.
	if lf.OnFlit(30, mkFlit(3, 0, 0, 1)) {
		t.Fatal("latch not cleared by tail")
	}
}

// TestOutageWindow verifies the [start, end) boundary semantics.
func TestOutageWindow(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Outages: []Outage{{Link: "l", Start: 100, End: 200}}})
	lf := in.Link("l")
	cases := []struct {
		now  int64
		drop bool
	}{{99, false}, {100, true}, {199, true}, {200, false}}
	for i, c := range cases {
		got := lf.OnFlit(c.now, mkFlit(uint64(i+1), 0, 0, 1))
		if got != c.drop {
			t.Errorf("cycle %d: drop=%v, want %v", c.now, got, c.drop)
		}
	}
	if note := in.OutageNote(150, 160); note == "" {
		t.Error("no outage note inside the window")
	}
	if note := in.OutageNote(300, 400); note != "" {
		t.Errorf("spurious outage note outside the window: %q", note)
	}
}

// TestCorruptionFlipsChecksum verifies corruption leaves the flit
// deliverable but checksum-invalid.
func TestCorruptionFlipsChecksum(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, CorruptRate: 1})
	lf := in.Link("l")
	f := mkFlit(1, 0, 0, 1)
	f.Csum = proto.FlitSum(f)
	if lf.OnFlit(0, f) {
		t.Fatal("corruption-only plan dropped a flit")
	}
	if f.Csum == proto.FlitSum(f) {
		t.Fatal("corrupted flit still has a valid checksum")
	}
	if got := in.Snapshot().FlitsCorrupted; got != 1 {
		t.Fatalf("FlitsCorrupted = %d, want 1", got)
	}
}

// TestDeterministicStreams verifies that the same plan yields identical
// decisions per link, and that distinct links get independent streams.
func TestDeterministicStreams(t *testing.T) {
	decisions := func(link string) []bool {
		lf := NewInjector(Plan{Seed: 9, LinkDropRate: 0.3}).Link(link)
		var ds []bool
		for p := 0; p < 200; p++ {
			ds = append(ds, lf.OnFlit(int64(p), mkFlit(uint64(p+1), 0, 0, 1)))
		}
		return ds
	}
	a, b := decisions("sw0.0->sw1.0"), decisions("sw0.0->sw1.0")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same link diverged at packet %d", i)
		}
	}
	c := decisions("sw2.0->sw1.0")
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct links produced identical fault streams")
	}
}

// TestInactiveLink verifies plans return nil link state when they inject
// nothing on that link, and that nil receivers are safe.
func TestInactiveLink(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Outages: []Outage{{Link: "a", Start: 0, End: 1}}})
	if lf := in.Link("b"); lf != nil {
		t.Fatal("outage-only plan produced fault state for an uninvolved link")
	}
	var lf *LinkFault
	if lf.OnFlit(0, mkFlit(1, 0, 0, 1)) {
		t.Fatal("nil LinkFault dropped a flit")
	}
	var nilInj *Injector
	if nilInj.Link("x") != nil || nilInj.OutageNote(0, 1) != "" || nilInj.DueStashFails(1) != nil {
		t.Fatal("nil Injector not inert")
	}
}

// TestUnmatchedOutages flags plan typos after wiring.
func TestUnmatchedOutages(t *testing.T) {
	in := NewInjector(Plan{Outages: []Outage{
		{Link: "good", Start: 0, End: 1},
		{Link: "typo", Start: 0, End: 1},
	}})
	in.Link("good")
	missing := in.UnmatchedOutages()
	if len(missing) != 1 || missing[0] != "typo" {
		t.Fatalf("UnmatchedOutages = %v, want [typo]", missing)
	}
}

// TestDueStashFails verifies ordering and one-shot semantics.
func TestDueStashFails(t *testing.T) {
	in := NewInjector(Plan{StashFailures: []StashFail{
		{Switch: 2, Port: 0, At: 50},
		{Switch: 1, Port: 3, At: 10},
		{Switch: 1, Port: 1, At: 10},
	}})
	if !in.HasStashFails() {
		t.Fatal("HasStashFails false with scheduled failures")
	}
	if got := in.DueStashFails(5); got != nil {
		t.Fatalf("failures fired early: %v", got)
	}
	got := in.DueStashFails(10)
	if len(got) != 2 || got[0].Port != 1 || got[1].Port != 3 {
		t.Fatalf("due at 10 = %v, want ports 1 then 3", got)
	}
	if again := in.DueStashFails(10); again != nil {
		t.Fatalf("failures fired twice: %v", again)
	}
	if got := in.DueStashFails(100); len(got) != 1 || got[0].Switch != 2 {
		t.Fatalf("due at 100 = %v, want switch 2", got)
	}
}

// TestBackoff verifies exponential growth and saturation.
func TestBackoff(t *testing.T) {
	cases := []struct {
		retry int
		want  int64
	}{{-1, 100}, {0, 100}, {1, 200}, {3, 800}, {20, 100 << 20}, {25, 100 << 20}}
	for _, c := range cases {
		if got := Backoff(100, c.retry); got != c.want {
			t.Errorf("Backoff(100, %d) = %d, want %d", c.retry, got, c.want)
		}
	}
}

// TestValidate exercises plan validation errors.
func TestValidate(t *testing.T) {
	bad := []Plan{
		{LinkDropRate: -0.1},
		{LinkDropRate: 1.5},
		{CorruptRate: 2},
		{Outages: []Outage{{Link: "", Start: 0, End: 1}}},
		{Outages: []Outage{{Link: "l", Start: 5, End: 5}}},
		{StashFailures: []StashFail{{Switch: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	good := Plan{Seed: 1, LinkDropRate: 0.001, Outages: []Outage{{Link: "l", Start: 0, End: 9}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !good.Active() {
		t.Error("non-trivial plan reported inactive")
	}
	var zero Plan
	if zero.Active() {
		t.Error("zero plan reported active")
	}
}

// TestLoadPlan round-trips a JSON plan file.
func TestLoadPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	body := `{
  "seed": 7,
  "link_drop_rate": 0.001,
  "outages": [{"link": "sw0.3->sw1.2", "start": 1000, "end": 3000}],
  "stash_failures": [{"switch": 0, "port": 1, "at": 5000}]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.LinkDropRate != 0.001 ||
		len(p.Outages) != 1 || p.Outages[0].End != 3000 ||
		len(p.StashFailures) != 1 || p.StashFailures[0].At != 5000 {
		t.Fatalf("loaded plan mismatch: %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"drop": 1}`), 0o644)
	if _, err := LoadPlan(bad); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestParseOutages and TestParseStashFails cover the flag-spec parsers.
func TestParseOutages(t *testing.T) {
	out, err := ParseOutages("sw0.3->sw1.2@1000-3000, ep5->sw1.0@500-900")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Link != "sw0.3->sw1.2" || out[0].Start != 1000 ||
		out[1].Link != "ep5->sw1.0" || out[1].End != 900 {
		t.Fatalf("parsed %+v", out)
	}
	if got, err := ParseOutages(""); err != nil || got != nil {
		t.Errorf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"nolink", "l@x-5", "l@5"} {
		if _, err := ParseOutages(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseStashFails(t *testing.T) {
	out, err := ParseStashFails("0.1@5000,3.0@9000")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != (StashFail{Switch: 0, Port: 1, At: 5000}) ||
		out[1] != (StashFail{Switch: 3, Port: 0, At: 9000}) {
		t.Fatalf("parsed %+v", out)
	}
	for _, bad := range []string{"1@5", "1.x@5", "1.2@z"} {
		if _, err := ParseStashFails(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
