package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// LoadPlan reads a JSON fault plan from path and validates it. The format
// mirrors the Plan struct:
//
//	{
//	  "seed": 7,
//	  "link_drop_rate": 0.001,
//	  "corrupt_rate": 0,
//	  "outages": [{"link": "sw0.3->sw1.2", "start": 1000, "end": 3000}],
//	  "stash_failures": [{"switch": 0, "port": 1, "at": 5000}]
//	}
func LoadPlan(path string) (Plan, error) {
	var p Plan
	b, err := os.ReadFile(path)
	if err != nil {
		return p, fmt.Errorf("fault plan: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return p, fmt.Errorf("fault plan %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("fault plan %s: %w", path, err)
	}
	return p, nil
}

// ParseOutages parses a comma-separated flag spec of outage windows, each
// "link@start-end", e.g. "sw0.3->sw1.2@1000-3000,ep5->sw1.0@500-900".
func ParseOutages(spec string) ([]Outage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []Outage
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		at := strings.LastIndex(item, "@")
		if at < 0 {
			return nil, fmt.Errorf("outage %q: want link@start-end", item)
		}
		link, window := item[:at], item[at+1:]
		dash := strings.Index(window, "-")
		if dash < 0 {
			return nil, fmt.Errorf("outage %q: want link@start-end", item)
		}
		start, err := strconv.ParseInt(window[:dash], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage %q: bad start: %w", item, err)
		}
		end, err := strconv.ParseInt(window[dash+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("outage %q: bad end: %w", item, err)
		}
		out = append(out, Outage{Link: link, Start: start, End: end})
	}
	return out, nil
}

// ParseStashFails parses a comma-separated flag spec of stash-bank
// failures, each "switch.port@cycle", e.g. "0.1@5000,3.0@9000". Listing
// the same switch.port@cycle twice is rejected: the duplicate would
// double-fire the bank-failure event (Plan.Validate enforces the same
// rule on JSON plans).
func ParseStashFails(spec string) ([]StashFail, error) {
	if spec == "" {
		return nil, nil
	}
	var out []StashFail
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		at := strings.Index(item, "@")
		if at < 0 {
			return nil, fmt.Errorf("stash-fail %q: want switch.port@cycle", item)
		}
		loc, cyc := item[:at], item[at+1:]
		dot := strings.Index(loc, ".")
		if dot < 0 {
			return nil, fmt.Errorf("stash-fail %q: want switch.port@cycle", item)
		}
		sw, err := strconv.Atoi(loc[:dot])
		if err != nil {
			return nil, fmt.Errorf("stash-fail %q: bad switch: %w", item, err)
		}
		port, err := strconv.Atoi(loc[dot+1:])
		if err != nil {
			return nil, fmt.Errorf("stash-fail %q: bad port: %w", item, err)
		}
		cycle, err := strconv.ParseInt(cyc, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stash-fail %q: bad cycle: %w", item, err)
		}
		sf := StashFail{Switch: sw, Port: port, At: cycle}
		for _, prev := range out {
			if prev == sf {
				return nil, fmt.Errorf("stash-fail %q: duplicate failure coordinates", item)
			}
		}
		out = append(out, sf)
	}
	return out, nil
}
