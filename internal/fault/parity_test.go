package fault

import (
	"fmt"
	"strings"
	"testing"
)

// TestValidateDuplicateStashFail: listing the same switch.port@cycle twice
// would double-fire the bank-failure event.
func TestValidateDuplicateStashFail(t *testing.T) {
	p := Plan{StashFailures: []StashFail{
		{Switch: 0, Port: 1, At: 5000},
		{Switch: 3, Port: 0, At: 9000},
		{Switch: 0, Port: 1, At: 5000},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate stash failure accepted: %v", err)
	}
	// Same bank at a different cycle is a legitimate repeat failure.
	ok := Plan{StashFailures: []StashFail{
		{Switch: 0, Port: 1, At: 5000},
		{Switch: 0, Port: 1, At: 9000},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("distinct-cycle repeat rejected: %v", err)
	}
}

func TestParseStashFailsDuplicate(t *testing.T) {
	if _, err := ParseStashFails("0.1@5000,3.0@9000,0.1@5000"); err == nil {
		t.Fatal("duplicate coordinates accepted")
	}
	out, err := ParseStashFails("0.1@5000,0.1@9000")
	if err != nil || len(out) != 2 {
		t.Fatalf("distinct-cycle repeat rejected: %v %v", out, err)
	}
}

func TestStashFailNote(t *testing.T) {
	in := NewInjector(Plan{StashFailures: []StashFail{{Switch: 2, Port: 1, At: 5000}}})
	// The failure sits inside the stall window, or in the equally long
	// window just before it: both plausibly explain a delivery lull.
	for _, w := range [][2]int64{{4000, 6000}, {5500, 7000}} {
		if note := in.StashFailNote(w[0], w[1]); !strings.Contains(note, "sw2.1@5000") {
			t.Errorf("window %v: note %q", w, note)
		}
	}
	// Long past the failure, the note must clear so real stalls surface.
	if note := in.StashFailNote(9000, 10000); note != "" {
		t.Errorf("stale note %q", note)
	}
	var nilIn *Injector
	if nilIn.StashFailNote(0, 1) != "" {
		t.Error("nil injector produced a note")
	}
}

// FuzzParseStashFails: the parser either errors or returns a spec that
// round-trips — every entry has in-range coordinates, re-encodes to a
// parseable item, and no two entries collide (the duplicate rule).
func FuzzParseStashFails(f *testing.F) {
	f.Add("0.1@5000,3.0@9000")
	f.Add("0.1@5000,0.1@5000")
	f.Add(" 1.2@3 ,, 4.5@6 ")
	f.Add("1@5")
	f.Add("1.x@5")
	f.Add("-1.-2@-3")
	f.Add("")
	f.Fuzz(func(t *testing.T, spec string) {
		out, err := ParseStashFails(spec)
		if err != nil {
			if out != nil {
				t.Fatalf("error %v returned alongside output %v", err, out)
			}
			return
		}
		for i, sf := range out {
			for _, prev := range out[:i] {
				if prev == sf {
					t.Fatalf("duplicate %+v survived parsing %q", sf, spec)
				}
			}
			item := fmt.Sprintf("%d.%d@%d", sf.Switch, sf.Port, sf.At)
			re, err := ParseStashFails(item)
			if err != nil || len(re) != 1 || re[0] != sf {
				t.Fatalf("entry %+v does not round-trip (%v, %v)", sf, re, err)
			}
		}
	})
}
