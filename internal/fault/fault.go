// Package fault implements deterministic fault injection for the
// simulated network: per-link Bernoulli packet drops, per-flit payload
// corruption (caught by the packet checksum in internal/proto), transient
// link-outage windows on named dragonfly links, and stash-bank failures
// that invalidate live end-to-end copies.
//
// A fault Plan is a pure value: the same plan and seed produce the same
// fault schedule on every run, so the simulator's bit-identical
// reproducibility contract (TestRunIsDeterministic, the stashlint
// determinism analyzer) holds under fault injection. Each link owns its
// own RNG stream derived from the plan seed and the link's name, so fault
// decisions are independent of link wiring or iteration order.
//
// Links are named exactly as the invariant checker names its credited
// edges: "ep5->sw1.0" for an injection link, "sw1.0->ep5" for an ejection
// link, and "sw0.3->sw4.2" for a switch-to-switch channel.
package fault

import (
	"fmt"

	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// Outage is a transient full-loss window [Start, End) on one named link:
// every packet whose head flit is transmitted inside the window is dropped
// whole. A packet whose head was already committed to the wire before
// Start finishes delivery (the wormhole tail straggles out), keeping
// downstream wormhole state consistent.
type Outage struct {
	Link  string `json:"link"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// StashFail is one stash-bank failure: at cycle At, the stash pool of the
// given (switch, port) loses every live end-to-end copy it holds. Copies
// stored after At land in the replacement bank and are unaffected.
type StashFail struct {
	Switch int   `json:"switch"`
	Port   int   `json:"port"`
	At     int64 `json:"at"`
}

// Plan is a complete, deterministic fault schedule. The zero value injects
// nothing.
type Plan struct {
	// Seed seeds the per-link fault RNG streams. Independent of the
	// simulation master seed so fault schedules can be varied in isolation.
	Seed uint64 `json:"seed"`
	// LinkDropRate is the per-packet Bernoulli drop probability applied on
	// every link traversal (the decision is made at the head flit and
	// applies to the whole packet, preserving wormhole integrity).
	LinkDropRate float64 `json:"link_drop_rate"`
	// CorruptRate is the per-flit Bernoulli payload-corruption probability:
	// a corrupted flit's checksum no longer matches its payload, which the
	// destination detects and NACKs.
	CorruptRate float64 `json:"corrupt_rate"`
	// Outages lists transient link-outage windows.
	Outages []Outage `json:"outages,omitempty"`
	// StashFailures lists stash-bank failure events.
	StashFailures []StashFail `json:"stash_failures,omitempty"`
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.LinkDropRate > 0 || p.CorruptRate > 0 ||
		len(p.Outages) > 0 || len(p.StashFailures) > 0
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.LinkDropRate < 0 || p.LinkDropRate > 1 {
		return fmt.Errorf("fault: link drop rate %v outside [0,1]", p.LinkDropRate)
	}
	if p.CorruptRate < 0 || p.CorruptRate > 1 {
		return fmt.Errorf("fault: corrupt rate %v outside [0,1]", p.CorruptRate)
	}
	for _, o := range p.Outages {
		if o.Link == "" {
			return fmt.Errorf("fault: outage with empty link name")
		}
		if o.Start < 0 || o.End <= o.Start {
			return fmt.Errorf("fault: outage window [%d,%d) on %s is empty or negative", o.Start, o.End, o.Link)
		}
	}
	for i, sf := range p.StashFailures {
		if sf.Switch < 0 || sf.Port < 0 || sf.At < 0 {
			return fmt.Errorf("fault: negative stash-failure coordinates %+v", sf)
		}
		// Duplicate coordinates would double-fire the bank-failure event:
		// the second firing finds an empty bank, but double-counts the
		// event and, with parity enabled, would double-process groups.
		for _, prev := range p.StashFailures[:i] {
			if prev == sf {
				return fmt.Errorf("fault: duplicate stash-failure %d.%d@%d", sf.Switch, sf.Port, sf.At)
			}
		}
	}
	return nil
}

// Stats aggregates injected-fault counts across all links of one injector.
type Stats struct {
	// PktsDropped counts whole packets dropped (Bernoulli and outage).
	PktsDropped int64
	// FlitsDropped counts individual flits destroyed by drops; this is the
	// fault term of the invariant checker's flit-conservation law.
	FlitsDropped int64
	// OutagePkts counts the subset of PktsDropped caused by outage windows.
	OutagePkts int64
	// FlitsCorrupted counts flits whose checksum was invalidated.
	FlitsCorrupted int64
	// StashCopiesLost counts live end-to-end copies invalidated by
	// stash-bank failures.
	StashCopiesLost int64
	// StashCopiesReconstructed counts the subset of StashCopiesLost
	// rebuilt from parity-group survivors instead of degrading to
	// endpoint retransmission (StashParity configurations only).
	StashCopiesReconstructed int64
}

// merge folds another stats value into s.
func (s *Stats) merge(o Stats) {
	s.PktsDropped += o.PktsDropped
	s.FlitsDropped += o.FlitsDropped
	s.OutagePkts += o.OutagePkts
	s.FlitsCorrupted += o.FlitsCorrupted
	s.StashCopiesLost += o.StashCopiesLost
	s.StashCopiesReconstructed += o.StashCopiesReconstructed
}

// Injector materializes a plan: it hands out per-link fault state at
// wiring time and schedules the stash-bank failure events. A nil
// *Injector is inactive.
//
// Fault counts are sharded for the parallel executor: every LinkFault owns
// its own Stats (incremented only by the goroutine stepping the link's
// producer), plus one coordinator-owned shard for stash-bank failures
// applied at the cycle barrier. Snapshot merges the shards in wiring order.
type Injector struct {
	plan Plan
	// local is the coordinator-owned stats shard (stash-bank failures are
	// applied serially between cycles).
	local Stats
	// links holds every handed-out per-link fault state in wiring order,
	// the order Snapshot merges them in.
	links []*LinkFault

	matched  map[string]bool // outage link names seen at wiring time
	fails    []StashFail     // sorted by At
	failNext int
}

// NewInjector builds an injector for the plan.
func NewInjector(plan Plan) *Injector {
	in := &Injector{plan: plan, matched: make(map[string]bool)}
	in.fails = append(in.fails, plan.StashFailures...)
	// Stable sort by (At, Switch, Port) so same-cycle failures apply in a
	// deterministic order.
	for i := 1; i < len(in.fails); i++ {
		for j := i; j > 0 && failLess(in.fails[j], in.fails[j-1]); j-- {
			in.fails[j], in.fails[j-1] = in.fails[j-1], in.fails[j]
		}
	}
	return in
}

func failLess(a, b StashFail) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Switch != b.Switch {
		return a.Switch < b.Switch
	}
	return a.Port < b.Port
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Link builds the fault state for the named link, or nil when the plan
// injects nothing on it (the zero-cost path for outage-only plans).
func (in *Injector) Link(name string) *LinkFault {
	if in == nil {
		return nil
	}
	var outages []Outage
	for _, o := range in.plan.Outages {
		if o.Link == name {
			outages = append(outages, o)
			in.matched[o.Link] = true
		}
	}
	if in.plan.LinkDropRate == 0 && in.plan.CorruptRate == 0 && len(outages) == 0 {
		return nil
	}
	lf := &LinkFault{
		rng:     sim.NewRNG(in.plan.Seed ^ hashName(name)),
		drop:    in.plan.LinkDropRate,
		corrupt: in.plan.CorruptRate,
		outages: outages,
	}
	in.links = append(in.links, lf)
	return lf
}

// Snapshot merges the coordinator shard and every per-link shard, in
// wiring order, into one aggregate Stats. Call it between runs or at a
// cycle barrier; it must not race with in-flight link traffic.
func (in *Injector) Snapshot() Stats {
	if in == nil {
		return Stats{}
	}
	s := in.local
	for _, lf := range in.links {
		s.merge(lf.stats)
	}
	return s
}

// AddStashCopiesLost records copies invalidated by a stash-bank failure on
// the coordinator shard (failures apply serially between cycles).
func (in *Injector) AddStashCopiesLost(n int64) {
	in.local.StashCopiesLost += n
}

// AddStashReconstructed records copies scheduled for parity
// reconstruction after a stash-bank failure, on the coordinator shard.
func (in *Injector) AddStashReconstructed(n int64) {
	in.local.StashCopiesReconstructed += n
}

// UnmatchedOutages returns the outage link names that no wired link
// claimed — almost certainly a typo in the plan. Call after wiring.
func (in *Injector) UnmatchedOutages() []string {
	if in == nil {
		return nil
	}
	var missing []string
	seen := make(map[string]bool)
	for _, o := range in.plan.Outages {
		if !in.matched[o.Link] && !seen[o.Link] {
			seen[o.Link] = true
			missing = append(missing, o.Link)
		}
	}
	return missing
}

// DueStashFails returns the stash-bank failures scheduled at or before
// now that have not been handed out yet, in deterministic order.
func (in *Injector) DueStashFails(now int64) []StashFail {
	if in == nil || in.failNext >= len(in.fails) || in.fails[in.failNext].At > now {
		return nil
	}
	start := in.failNext
	for in.failNext < len(in.fails) && in.fails[in.failNext].At <= now {
		in.failNext++
	}
	return in.fails[start:in.failNext]
}

// HasStashFails reports whether the plan schedules any stash-bank failure.
func (in *Injector) HasStashFails() bool { return in != nil && len(in.fails) > 0 }

// NextStashFailAt returns the cycle of the next undelivered stash-bank
// failure, clamped to at least `from` (an overdue event must fire on the
// next cycle that runs). ok is false when the schedule is exhausted or nil.
// Epoch-synchronized executors use it to end epochs exactly on failure
// cycles so DueStashFails keeps its per-cycle semantics.
func (in *Injector) NextStashFailAt(from int64) (at int64, ok bool) {
	if in == nil || in.failNext >= len(in.fails) {
		return 0, false
	}
	at = in.fails[in.failNext].At
	if at < from {
		at = from
	}
	return at, true
}

// OutageNote returns a human-readable description of any outage window
// overlapping [from, to], or "" when none does. The stall watchdog uses it
// to report "outage active" instead of dumping switch state during a
// configured zero-delivery window.
func (in *Injector) OutageNote(from, to int64) string {
	if in == nil {
		return ""
	}
	for _, o := range in.plan.Outages {
		if o.Start <= to && o.End > from {
			return fmt.Sprintf("outage active on link %s [%d,%d)", o.Link, o.Start, o.End)
		}
	}
	return ""
}

// StashFailNote returns a human-readable description of a recent
// stash-bank failure whose drain could plausibly still be in progress —
// one scheduled inside [from, to] or in the window of equal length just
// before it — or "" when none is. Like OutageNote, the stall watchdog
// uses it so bank-failure recovery does not masquerade as a stall.
func (in *Injector) StashFailNote(from, to int64) string {
	if in == nil {
		return ""
	}
	lo := from - (to - from)
	for _, sf := range in.fails {
		if sf.At >= lo && sf.At <= to {
			return fmt.Sprintf("stash-bank failure at sw%d.%d@%d still draining", sf.Switch, sf.Port, sf.At)
		}
	}
	return ""
}

// LinkFault is the per-link fault state consulted on every transmitted
// flit. A nil *LinkFault delivers everything untouched. Each LinkFault is
// touched only by the goroutine stepping the link's producer, so its stats
// shard needs no synchronization.
type LinkFault struct {
	stats   Stats
	rng     *sim.RNG
	drop    float64
	corrupt float64
	outages []Outage

	// Per-VC whole-packet drop latch: once a head flit is dropped, the
	// packet's remaining flits on that VC are dropped too, so downstream
	// wormhole state never sees a headless or truncated packet. Packets on
	// one link VC cannot interleave (per-VC wormhole), so one latch per VC
	// suffices; the +1 slot covers out-of-range VCs defensively.
	dropPkt    [proto.NumVCs + 1]uint64
	dropActive [proto.NumVCs + 1]bool
}

// inOutage reports whether now falls inside one of the link's windows.
func (lf *LinkFault) inOutage(now int64) bool {
	for _, o := range lf.outages {
		if now >= o.Start && now < o.End {
			return true
		}
	}
	return false
}

// OnFlit screens one flit about to be transmitted at cycle now. It
// returns true when the flit must be dropped; corruption is applied to
// the flit in place. A nil receiver delivers everything.
func (lf *LinkFault) OnFlit(now int64, f *proto.Flit) (drop bool) {
	if lf == nil {
		return false
	}
	vc := int(f.VC)
	if vc > proto.NumVCs {
		vc = proto.NumVCs
	}
	if f.Head() {
		lf.dropActive[vc] = false
		switch {
		case lf.inOutage(now):
			lf.stats.OutagePkts++
			drop = true
		case lf.drop > 0 && lf.rng.Bernoulli(lf.drop):
			drop = true
		}
		if drop {
			lf.stats.PktsDropped++
			if !f.Tail() {
				lf.dropActive[vc] = true
				lf.dropPkt[vc] = f.PktID
			}
		}
	} else if lf.dropActive[vc] && lf.dropPkt[vc] == f.PktID {
		drop = true
		if f.Tail() {
			lf.dropActive[vc] = false
		}
	}
	if drop {
		lf.stats.FlitsDropped++
		return true
	}
	if lf.corrupt > 0 && lf.rng.Bernoulli(lf.corrupt) {
		// Model a payload bit error: the checksum no longer matches the
		// (conceptual) payload, which the destination's verification
		// catches.
		f.Csum ^= 0x5555
		lf.stats.FlitsCorrupted++
	}
	return false
}

// hashName is FNV-1a over the link name, used to derive per-link RNG
// streams from the plan seed.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Backoff returns the exponential-backoff timeout for the given retry
// attempt: base << retry, saturating at 1<<20 times the base so repeated
// exhaustion cannot overflow.
func Backoff(base int64, retry int) int64 {
	if retry < 0 {
		retry = 0
	}
	if retry > 20 {
		retry = 20
	}
	return base << uint(retry)
}
