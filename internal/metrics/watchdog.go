package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Watchdog detects zero-delivery windows: if a full Window of cycles
// passes in which the network delivered nothing while work was pending,
// it writes a diagnostic dump of every non-idle component instead of
// letting the simulation spin silently. It is polled once per cycle by
// the driving loop and does real work only at window boundaries. A nil
// *Watchdog is a no-op.
type Watchdog struct {
	// Window is the stall-detection window in cycles.
	Window int64
	// Out receives the diagnostic dumps.
	Out io.Writer
	// Delivered returns a monotone count of delivered flits/packets. It
	// must advance whenever traffic makes end-to-end progress, and must
	// not be gated by measurement warmup.
	Delivered func() int64
	// Pending reports whether undelivered work exists (queued or
	// in-flight). A quiet network with nothing pending is not a stall.
	Pending func() bool
	// Dump writes the per-component diagnostic state (e.g. DumpState of
	// every non-idle switch).
	Dump func(w io.Writer)
	// MaxDumps bounds how many stall dumps are written (0 = 3).
	MaxDumps int
	// Note, when non-nil, is consulted before declaring a stall: a
	// nonempty string names a benign cause for the zero-delivery window
	// (e.g. a fault plan's link outage), which is reported as a one-line
	// note instead of a stall dump. The arguments are the window bounds.
	Note func(from, to int64) string

	windowStart   int64
	started       bool
	lastDelivered int64
	stalled       atomic.Bool
	// Stalls counts detected zero-delivery windows.
	Stalls int64
	// Suppressed counts zero-delivery windows explained away by Note.
	Suppressed int64
}

// Stalled reports whether the most recent completed window was an
// unexplained zero-delivery window. It is the /healthz liveness signal
// and is safe to read from a scraping goroutine while the simulation
// runs; it clears as soon as a window sees deliveries again.
//
//stashsim:phase parallel -- atomic load; the /healthz read side
func (w *Watchdog) Stalled() bool {
	if w == nil {
		return false
	}
	return w.stalled.Load()
}

// NextEventAt returns the next cycle >= from on which Observe does real
// work: the first call of a run (initialization) or a window boundary.
// Between boundaries Observe is a strict no-op, so an epoch-synchronized
// executor that runs its serial hooks exactly on the returned cycles
// reproduces the per-cycle watchdog behavior bit-for-bit.
//
//stashsim:phase serial -- reads the unsynchronized window bookkeeping
func (w *Watchdog) NextEventAt(from int64) int64 {
	if w == nil {
		return from + (1 << 62)
	}
	if !w.started {
		return from
	}
	if at := w.windowStart + w.Window; at > from {
		return at
	}
	return from
}

// Observe advances the watchdog to cycle now.
//
//stashsim:phase serial -- window bookkeeping is unsynchronized; runs from the PostCycle hook only
func (w *Watchdog) Observe(now int64) {
	if w == nil {
		return
	}
	if !w.started {
		w.started = true
		w.windowStart = now
		w.lastDelivered = w.Delivered()
		return
	}
	if now-w.windowStart < w.Window {
		return
	}
	d := w.Delivered()
	if d != w.lastDelivered || w.Pending == nil || !w.Pending() {
		w.stalled.Store(false)
	}
	if d == w.lastDelivered && w.Pending != nil && w.Pending() {
		if w.Note != nil {
			if note := w.Note(w.windowStart, now); note != "" {
				w.Suppressed++
				w.stalled.Store(false)
				if w.Out != nil {
					fmt.Fprintf(w.Out, "watchdog: no deliveries in %d cycles at cycle %d, explained: %s\n",
						w.Window, now, note)
				}
				w.lastDelivered = d
				w.windowStart = now
				return
			}
		}
		w.Stalls++
		w.stalled.Store(true)
		max := w.MaxDumps
		if max == 0 {
			max = 3
		}
		if w.Out != nil && w.Stalls <= int64(max) {
			fmt.Fprintf(w.Out, "watchdog: no deliveries in %d cycles at cycle %d with work pending (stall #%d); non-idle state:\n",
				w.Window, now, w.Stalls)
			if w.Dump != nil {
				w.Dump(w.Out)
			}
		}
	}
	w.lastDelivered = d
	w.windowStart = now
}
