package metrics

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPromGolden pins the Prometheus text exposition byte-for-byte:
// family ordering, series ordering within a family, HELP/TYPE headers,
// name sanitization and label escaping. Regenerate with UPDATE_GOLDEN=1.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	// Registration order is deliberately NOT sorted, and the scope names
	// exercise the label escaper (backslash, quote, newline).
	sw1 := r.Scope("sw1")
	sw0 := r.Scope("sw0")
	nasty := r.Scope("row\\0 \"hot\"\nspot")
	sw1.Counter("stash.stores").Add(7)
	sw1.Counter("delivered").Add(41)
	sw0.Counter("stash.stores").Add(3)
	sw0.Counter("credit-stalls").Add(9)
	nasty.Counter("stash.stores").Add(1)
	sw0.Gauge("occupancy%", func() float64 { return 12.5 })
	sw1.Hist("queue.depth") // empty histogram still exposes summary series
	sw1.Hist("queue.depth").Observe(4)
	sw1.Hist("queue.depth").Observe(8)

	var buf bytes.Buffer
	samples := append(r.CounterSamples(), r.GaugeSamples()...)
	samples = append(samples, r.HistSamples()...)
	samples = append(samples, Sample{Name: "up", Value: 1, IsGauge: true})
	if err := WriteProm(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "prom_exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from golden.\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestPromEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []Sample{{Scope: `a\b"c` + "\nd", Name: "weird metric!", Value: 2}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `stashsim_weird_metric_{scope="a\\b\"c\nd"} 2`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestPromFamilyOrderingStable(t *testing.T) {
	samples := []Sample{
		{Scope: "z", Name: "beta", Value: 1},
		{Scope: "a", Name: "beta", Value: 2},
		{Scope: "m", Name: "alpha", Value: 3},
	}
	var b1, b2 bytes.Buffer
	if err := WriteProm(&b1, samples); err != nil {
		t.Fatal(err)
	}
	// Same samples in a different arrival order must serialize identically.
	rev := []Sample{samples[2], samples[1], samples[0]}
	if err := WriteProm(&b2, rev); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("ordering unstable:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	alpha := strings.Index(b1.String(), "stashsim_alpha")
	beta := strings.Index(b1.String(), "stashsim_beta")
	if alpha == -1 || beta == -1 || alpha > beta {
		t.Fatalf("families not sorted:\n%s", b1.String())
	}
}

func TestFlightRecorderDeltasAndWrap(t *testing.T) {
	var total, depth int64
	f := NewFlightRecorder(4,
		FlightField{Name: "delivered", Read: func() int64 { return total }},
		FlightField{Name: "queue", Gauge: true, Read: func() int64 { return depth }},
	)
	for cycle := int64(0); cycle < 10; cycle++ {
		total += cycle // deliver `cycle` flits this cycle
		depth = 100 - cycle
		f.Record(cycle)
	}
	if f.Len() != 4 {
		t.Fatalf("len %d, want ring cap 4", f.Len())
	}
	rows := f.Snapshot(0)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Oldest retained row is cycle 6: delta 6, gauge 94.
	for i, row := range rows {
		cycle := int64(6 + i)
		if row[0] != cycle || row[1] != cycle || row[2] != 100-cycle {
			t.Fatalf("row %d = %v, want [%d %d %d]", i, row, cycle, cycle, 100-cycle)
		}
	}
	if rows := f.Snapshot(2); len(rows) != 2 || rows[1][0] != 9 {
		t.Fatalf("bounded snapshot wrong: %v", rows)
	}
}

func TestFlightRecorderRecordAllocFree(t *testing.T) {
	var total int64
	f := NewFlightRecorder(64,
		FlightField{Name: "delivered", Read: func() int64 { return total }},
	)
	allocs := testing.AllocsPerRun(200, func() {
		total += 3
		f.Record(total)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	var total int64
	f := NewFlightRecorder(8,
		FlightField{Name: "delivered", Read: func() int64 { return total }},
	)
	for c := int64(0); c < 3; c++ {
		total += 5
		f.Record(c)
	}
	var buf bytes.Buffer
	f.Dump(&buf, 0)
	out := buf.String()
	for _, want := range []string{"last 3 cycles", "delivered", "5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestWatchdogFlightDump wires a flight recorder into a watchdog dump the
// way the network does: a stall dump must carry the recent-cycle table.
func TestWatchdogFlightDump(t *testing.T) {
	var delivered int64
	f := NewFlightRecorder(16,
		FlightField{Name: "delivered", Read: func() int64 { return delivered }},
	)
	var out bytes.Buffer
	w := &Watchdog{
		Window:    10,
		Out:       &out,
		Delivered: func() int64 { return delivered },
		Pending:   func() bool { return true },
		Dump: func(wr io.Writer) {
			f.Dump(wr, 8)
		},
	}
	for now := int64(0); now <= 30; now++ {
		f.Record(now)
		w.Observe(now)
	}
	if w.Stalls == 0 {
		t.Fatal("expected a stall")
	}
	if !w.Stalled() {
		t.Fatal("Stalled() must report the live stall")
	}
	if !strings.Contains(out.String(), "flight recorder: last") {
		t.Fatalf("stall dump missing flight table:\n%s", out.String())
	}
	// Deliveries resume: the liveness signal must clear at the next window.
	delivered = 50
	for now := int64(31); now <= 45; now++ {
		w.Observe(now)
	}
	if w.Stalled() {
		t.Fatal("Stalled() must clear once deliveries resume")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(1)
	if f.Len() != 0 || f.Snapshot(0) != nil || f.FieldNames() != nil {
		t.Fatal("nil recorder accessors must be inert")
	}
	var buf bytes.Buffer
	f.Dump(&buf, 0)
	if buf.Len() != 0 {
		t.Fatal("nil recorder Dump must write nothing")
	}
}

func TestChromeTraceWithExtras(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(1, EvInject, 0xabc, 3, -1, 3, 7)
	tr.Record(5, EvEject, 0xabc, 7, -1, 3, 7)
	var buf bytes.Buffer
	err := tr.WriteChromeTraceWith(&buf, func(emit func(format string, args ...any) error) error {
		return emit(`{"name":"process_name","ph":"M","pid":2,"args":{"name":"executor"}}`)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"executor"`) {
		t.Fatalf("extra events missing:\n%s", out)
	}
	if strings.Contains(out, "}{") || strings.Contains(out, "},\n,") {
		t.Fatalf("comma separation broken:\n%s", out)
	}
}
