package metrics

import "stashsim/internal/snapshot"

// Checkpoint hooks for the observability subsystem. A fresh network
// re-registers the identical scope/metric names in the identical order,
// so the codec walks the registration-order slices, verifies every name,
// and transfers only values: the snapshot stays self-describing (a
// wiring drift between recorder and restorer fails loudly on the first
// mismatched name) without serializing any wiring.

// EncodeState appends every scope's counters and histograms in
// registration order. Gauges are evaluated live and carry no state.
//
//stashsim:phase serial -- cross-scope walk; runs only at a cycle barrier
func (r *Registry) EncodeState(w *snapshot.Writer) {
	if r == nil {
		return
	}
	w.Section("METR")
	r.mu.Lock()
	defer r.mu.Unlock()
	w.Count(len(r.sorder))
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		w.Str(sn)
		w.Count(len(s.corder))
		for _, cn := range s.corder {
			w.Str(cn)
			w.I64(s.counters[cn].Value())
		}
		w.Count(len(s.horder))
		for _, hn := range s.horder {
			w.Str(hn)
			h := s.hists[hn]
			h.mu.Lock()
			h.h.EncodeState(w)
			h.mu.Unlock()
		}
	}
}

// DecodeState restores counter and histogram values into a registry
// whose scopes and metrics were re-registered identically.
//
//stashsim:phase serial -- cross-scope walk; runs only before the restored run starts
func (r *Registry) DecodeState(rd *snapshot.Reader) {
	if r == nil {
		return
	}
	rd.Section("METR")
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := rd.Count(8); rd.Err() == nil && n != len(r.sorder) {
		rd.Failf("metrics: registry has %d scopes, snapshot has %d", len(r.sorder), n)
	}
	if rd.Err() != nil {
		return
	}
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		if got := rd.Str(); rd.Err() == nil && got != sn {
			rd.Failf("metrics: scope %q in snapshot, registry has %q", got, sn)
		}
		if n := rd.Count(12); rd.Err() == nil && n != len(s.corder) {
			rd.Failf("metrics: scope %q has %d counters, snapshot has %d", sn, len(s.corder), n)
		}
		if rd.Err() != nil {
			return
		}
		for _, cn := range s.corder {
			if got := rd.Str(); rd.Err() == nil && got != cn {
				rd.Failf("metrics: counter %q in snapshot, scope %q has %q", got, sn, cn)
			}
			if rd.Err() != nil {
				return
			}
			s.counters[cn].v.Store(rd.I64())
		}
		if n := rd.Count(4); rd.Err() == nil && n != len(s.horder) {
			rd.Failf("metrics: scope %q has %d histograms, snapshot has %d", sn, len(s.horder), n)
		}
		if rd.Err() != nil {
			return
		}
		for _, hn := range s.horder {
			if got := rd.Str(); rd.Err() == nil && got != hn {
				rd.Failf("metrics: histogram %q in snapshot, scope %q has %q", got, sn, hn)
			}
			if rd.Err() != nil {
				return
			}
			h := s.hists[hn]
			h.mu.Lock()
			h.h.DecodeState(rd)
			h.mu.Unlock()
		}
	}
}

// EncodeState appends the sampler's accumulated probe series.
func (s *Sampler) EncodeState(w *snapshot.Writer) {
	if s == nil {
		return
	}
	w.Section("SMPL")
	w.I64(s.every)
	w.Count(len(s.names))
	for i, name := range s.names {
		w.Str(name)
		s.series[i].EncodeState(w)
	}
}

// DecodeState restores the probe series into a sampler re-registered
// with the identical probes and interval.
func (s *Sampler) DecodeState(rd *snapshot.Reader) {
	if s == nil {
		return
	}
	rd.Section("SMPL")
	if every := rd.I64(); rd.Err() == nil && every != s.every {
		rd.Failf("metrics: sampler interval %d in snapshot, this run samples every %d", every, s.every)
	}
	if n := rd.Count(4); rd.Err() == nil && n != len(s.names) {
		rd.Failf("metrics: sampler has %d probes, snapshot has %d", len(s.names), n)
	}
	if rd.Err() != nil {
		return
	}
	for i, name := range s.names {
		if got := rd.Str(); rd.Err() == nil && got != name {
			rd.Failf("metrics: sampler probe %q in snapshot, this run has %q", got, name)
		}
		if rd.Err() != nil {
			return
		}
		s.series[i].DecodeState(rd)
	}
}

// EncodeState appends the watchdog's window bookkeeping so a restored
// run observes window boundaries on the same absolute cycles.
//
//stashsim:phase serial -- reads the unsynchronized window bookkeeping at a cycle barrier
func (w *Watchdog) EncodeState(sw *snapshot.Writer) {
	if w == nil {
		return
	}
	sw.Section("WDOG")
	sw.Bool(w.started)
	sw.I64(w.windowStart)
	sw.I64(w.lastDelivered)
	sw.Bool(w.stalled.Load())
	sw.I64(w.Stalls)
	sw.I64(w.Suppressed)
}

// DecodeState restores the watchdog's window bookkeeping.
//
//stashsim:phase serial -- mutates the unsynchronized window bookkeeping before the restored run starts
func (w *Watchdog) DecodeState(rd *snapshot.Reader) {
	if w == nil {
		return
	}
	rd.Section("WDOG")
	w.started = rd.Bool()
	w.windowStart = rd.I64()
	w.lastDelivered = rd.I64()
	w.stalled.Store(rd.Bool())
	w.Stalls = rd.I64()
	w.Suppressed = rd.I64()
}
