package metrics

import (
	"fmt"

	"stashsim/internal/stats"
)

// Sampler polls a set of named probes at a fixed cycle interval from the
// simulation loop, accumulating each probe into a stats.TimeSeries. A nil
// *Sampler is a no-op, so the poll site can stay unconditional. Probes
// are registered before the run; MaybeSample is called once per cycle by
// the driving loop (single-threaded).
type Sampler struct {
	every  int64
	names  []string
	fns    []func() float64
	series []*stats.TimeSeries
}

// NewSampler returns a sampler firing every `every` cycles (every <= 0
// panics: a zero interval would sample every Step).
func NewSampler(every int64) *Sampler {
	if every <= 0 {
		panic("metrics: non-positive sampling interval")
	}
	return &Sampler{every: every}
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() int64 {
	if s == nil {
		return 0
	}
	return s.every
}

// Probe registers one named probe function.
//
//stashsim:phase serial -- probes are registered before the run starts
func (s *Sampler) Probe(name string, fn func() float64) {
	if s == nil {
		return
	}
	s.names = append(s.names, name)
	s.fns = append(s.fns, fn)
	s.series = append(s.series, stats.NewTimeSeries(s.every))
}

// MaybeSample polls every probe when now falls on the sampling interval.
//
//stashsim:phase serial -- probes walk live component state; runs from the PostCycle hook only
func (s *Sampler) MaybeSample(now int64) {
	if s == nil || now%s.every != 0 {
		return
	}
	for i, fn := range s.fns {
		s.series[i].Add(now, fn())
	}
}

// Series returns the time series of the named probe, or nil.
func (s *Sampler) Series(name string) *stats.TimeSeries {
	if s == nil {
		return nil
	}
	for i, n := range s.names {
		if n == name {
			return s.series[i]
		}
	}
	return nil
}

// Table renders all probes as one table with a shared cycle column; bins
// a probe missed (registered late) render as empty cells.
func (s *Sampler) Table() *stats.Table {
	if s == nil {
		return &stats.Table{Header: []string{"cycle"}}
	}
	t := &stats.Table{Header: []string{"cycle"}}
	t.Header = append(t.Header, s.names...)
	maxBins := 0
	for _, ts := range s.series {
		if n := len(ts.Bins()); n > maxBins {
			maxBins = n
		}
	}
	for b := 0; b < maxBins; b++ {
		row := []string{fmt.Sprintf("%d", int64(b)*s.every)}
		keep := false
		for _, ts := range s.series {
			bins := ts.Bins()
			if b < len(bins) && bins[b].N > 0 {
				row = append(row, fmt.Sprintf("%.4f", bins[b].Mean()))
				keep = true
			} else {
				row = append(row, "")
			}
		}
		if keep {
			t.AddRow(row...)
		}
	}
	return t
}

// CSV renders the sample table as RFC 4180 CSV.
func (s *Sampler) CSV() string {
	if s == nil {
		return (&stats.Table{Header: []string{"cycle"}}).CSV()
	}
	return s.Table().CSV()
}
