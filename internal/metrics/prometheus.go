package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sample is one exposition series: a metric name, the scope it came from
// (exposed as the "scope" label), and its value at read time.
type Sample struct {
	Scope   string
	Name    string
	Value   float64
	IsGauge bool
}

// CounterSamples reads every counter in the registry. Counter reads are
// atomic, so this is safe to call from a scraping goroutine while the
// simulation is mid-cycle (values may be torn *across* counters, never
// within one).
func (r *Registry) CounterSamples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, cn := range s.corder {
			out = append(out, Sample{Scope: sn, Name: cn, Value: float64(s.counters[cn].Value())})
		}
	}
	return out
}

// GaugeSamples evaluates every registered gauge. Gauge functions read
// live component state without synchronization, so this must only be
// called while the simulation is quiescent (between cycles, from the
// PostCycle hook, or after a run) — the telemetry snapshot path captures
// these into its published snapshot for exactly that reason.
func (r *Registry) GaugeSamples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, gn := range s.gorder {
			out = append(out, Sample{Scope: sn, Name: gn, Value: s.gauges[gn](), IsGauge: true})
		}
	}
	return out
}

// HistSamples summarizes every histogram as _count/_mean/_p99 gauge
// series. Histogram snapshots take the handle mutex, so this is safe at
// any time.
func (r *Registry) HistSamples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type entry struct{ scope, name string }
	var handles []entry
	hs := make([]*Hist, 0)
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, hn := range s.horder {
			handles = append(handles, entry{sn, hn})
			hs = append(hs, s.hists[hn])
		}
	}
	r.mu.Unlock()
	var out []Sample
	for i, e := range handles {
		snap := hs[i].Snapshot()
		out = append(out,
			Sample{Scope: e.scope, Name: e.name + "_count", Value: float64(snap.N()), IsGauge: true},
			Sample{Scope: e.scope, Name: e.name + "_mean", Value: snap.Mean(), IsGauge: true},
			Sample{Scope: e.scope, Name: e.name + "_p99", Value: float64(snap.Percentile(99)), IsGauge: true},
		)
	}
	return out
}

// promName sanitizes a metric name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* under the stashsim_ namespace
// ("stash.stores" → "stashsim_stash_stores").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("stashsim_") + len(name))
	b.WriteString("stashsim_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text exposition format
// (backslash, double quote, newline).
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatPromValue renders a value the way Prometheus expects: integers
// without an exponent, everything else in Go's shortest float form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm writes samples in the Prometheus text exposition format
// (version 0.0.4): one family per metric name with # HELP and # TYPE
// headers, families sorted by exposition name, series within a family
// sorted by scope label. Output is byte-stable for a fixed sample set,
// which the golden exposition test relies on.
func WriteProm(w io.Writer, samples []Sample) error {
	type series struct {
		scope string
		value float64
	}
	type family struct {
		name    string // exposition name
		raw     string // original metric name, for HELP
		isGauge bool
		series  []series
	}
	fams := make(map[string]*family)
	var order []string
	for _, s := range samples {
		name := promName(s.Name)
		f := fams[name]
		if f == nil {
			f = &family{name: name, raw: s.Name, isGauge: s.IsGauge}
			fams[name] = f
			order = append(order, name)
		}
		f.series = append(f.series, series{scope: s.Scope, value: s.Value})
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		sort.SliceStable(f.series, func(i, j int) bool { return f.series[i].scope < f.series[j].scope })
		typ := "counter"
		if f.isGauge {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s stashsim metric %s\n# TYPE %s %s\n", name, promEscape(f.raw), name, typ); err != nil {
			return err
		}
		for _, sr := range f.series {
			var err error
			if sr.scope == "" {
				_, err = fmt.Fprintf(w, "%s %s\n", name, formatPromValue(sr.value))
			} else {
				_, err = fmt.Fprintf(w, "%s{scope=\"%s\"} %s\n", name, promEscape(sr.scope), formatPromValue(sr.value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
