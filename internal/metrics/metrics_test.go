package metrics

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRegistryCountersGaugesHists(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("sw0")
	c := sc.Counter("stash.stores")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	if c2 := sc.Counter("stash.stores"); c2 != c {
		t.Fatal("re-resolving a counter must return the same handle")
	}
	sc.Gauge("fill", func() float64 { return 0.25 })
	h := sc.Hist("lat")
	h.Observe(10)
	h.Observe(20)
	if got := h.Snapshot().N(); got != 2 {
		t.Fatalf("hist N = %d, want 2", got)
	}

	reg.Scope("sw1").Counter("stash.stores").Add(7)
	if got := reg.Sum("stash.stores"); got != 12 {
		t.Fatalf("Sum = %d, want 12", got)
	}
	names, values := reg.Totals()
	if len(names) != 1 || names[0] != "stash.stores" || values[0] != 12 {
		t.Fatalf("Totals = %v %v", names, values)
	}

	var sawGauge, sawCounter bool
	reg.Each(func(scope, name string, v float64) {
		if scope == "sw0" && name == "fill" && v == 0.25 {
			sawGauge = true
		}
		if scope == "sw0" && name == "stash.stores" && v == 5 {
			sawCounter = true
		}
	})
	if !sawGauge || !sawCounter {
		t.Fatalf("Each missed entries: gauge=%v counter=%v", sawGauge, sawCounter)
	}
	tbl := reg.Table()
	if len(tbl.Rows) == 0 {
		t.Fatal("Table returned no rows")
	}
}

// TestNilFastPathNoAllocs asserts the disabled (nil-handle) observability
// path performs zero allocations: this is the benchmark guard's invariant
// that leaving the instrumentation compiled in is free by default.
func TestNilFastPathNoAllocs(t *testing.T) {
	var reg *Registry
	var c *Counter
	var h *Hist
	var tr *Tracer
	var sp *Sampler
	var wd *Watchdog
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		_ = c.Value()
		h.Observe(5)
		tr.Record(1, EvInject, 42, 0, -1, 1, 2)
		sp.MaybeSample(1000)
		wd.Observe(1000)
		_ = reg.Scope("sw0").Counter("x") // nil registry -> nil scope -> nil handle
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocated %.1f times per run, want 0", allocs)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 6; i++ {
		tr.Record(i, EvRoute, uint64(i), 0, 0, 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i) + 2; ev.Time != want {
			t.Fatalf("event %d time = %d, want %d (oldest evicted first)", i, ev.Time, want)
		}
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
}

func TestTracerJSONLValid(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(5, EvInject, 0xab00000001, 3, -1, 3, 9)
	tr.Record(9, EvRoute, 0xab00000001, 1, 4, 3, 9)
	tr.Record(30, EvEject, 0xab00000001, 9, -1, 3, 9)
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for i, line := range lines {
		var rec struct {
			T    int64  `json:"t"`
			Ev   string `json:"ev"`
			Pkt  string `json:"pkt"`
			Node int32  `json:"node"`
			Aux  int32  `json:"aux"`
			Src  int32  `json:"src"`
			Dst  int32  `json:"dst"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Pkt != "ab00000001" {
			t.Fatalf("line %d pkt = %q", i, rec.Pkt)
		}
	}
	if got := lines[0]; !strings.Contains(got, `"ev":"inject"`) {
		t.Fatalf("first line missing inject event: %s", got)
	}
}

func TestTracerChromeTraceValid(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(5, EvInject, 7, 3, -1, 3, 9)
	tr.Record(9, EvRoute, 7, 1, 4, 3, 9)
	tr.Record(12, EvStashStore, 7, 1, 2, 3, 9)
	tr.Record(30, EvEject, 7, 9, -1, 3, 9)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var begins, ends, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			begins++
		case "e":
			ends++
		case "i":
			instants++
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("async span begin/end = %d/%d, want 1/1", begins, ends)
	}
	if instants != 4 {
		t.Fatalf("instant events = %d, want 4", instants)
	}
}

func TestSampler(t *testing.T) {
	sp := NewSampler(5)
	v := 0.0
	sp.Probe("fill", func() float64 { return v })
	sp.Probe("backlog", func() float64 { return 2 * v })
	for now := int64(0); now <= 10; now++ {
		v = float64(now)
		sp.MaybeSample(now)
	}
	ts := sp.Series("fill")
	if ts == nil {
		t.Fatal("Series(fill) = nil")
	}
	times, vals := ts.Means()
	if len(times) != 3 || vals[0] != 0 || vals[1] != 5 || vals[2] != 10 {
		t.Fatalf("fill samples = %v %v, want [0 5 10] at [0 5 10]", times, vals)
	}
	tbl := sp.Table()
	if len(tbl.Header) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("table %d cols x %d rows, want 3x3", len(tbl.Header), len(tbl.Rows))
	}
	if !strings.Contains(sp.CSV(), "cycle,fill,backlog") {
		t.Fatalf("CSV header missing: %s", sp.CSV())
	}
	if sp.Series("nope") != nil {
		t.Fatal("unknown probe must return nil series")
	}
}

func TestWatchdog(t *testing.T) {
	delivered := int64(0)
	pending := true
	var out strings.Builder
	dumped := 0

	// Progressing traffic: no stall.
	wd2 := &Watchdog{
		Window:    100,
		Out:       &out,
		Delivered: func() int64 { return delivered },
		Pending:   func() bool { return pending },
		Dump:      func(w io.Writer) { dumped++ },
	}
	for now := int64(0); now <= 1000; now++ {
		if now%10 == 0 {
			delivered++
		}
		wd2.Observe(now)
	}
	if wd2.Stalls != 0 {
		t.Fatalf("progressing run produced %d stalls, want 0", wd2.Stalls)
	}

	// Frozen deliveries with pending work: stalls fire and dump.
	for now := int64(1001); now <= 1500; now++ {
		wd2.Observe(now)
	}
	if wd2.Stalls == 0 {
		t.Fatal("frozen run produced no stalls")
	}
	if !strings.Contains(out.String(), "watchdog: no deliveries") {
		t.Fatalf("stall dump missing header: %q", out.String())
	}
	if dumped == 0 {
		t.Fatal("stall did not invoke Dump")
	}
	if int64(dumped) > wd2.Stalls {
		t.Fatalf("dumped %d times for %d stalls", dumped, wd2.Stalls)
	}

	// Nothing pending: an idle network is not a stall.
	pending = false
	idle := &Watchdog{Window: 100, Delivered: func() int64 { return delivered }, Pending: func() bool { return pending }}
	for now := int64(0); now <= 1000; now++ {
		idle.Observe(now)
	}
	if idle.Stalls != 0 {
		t.Fatalf("idle run produced %d stalls, want 0", idle.Stalls)
	}
}

// TestWatchdogNoteSuppressesStall covers the fault-aware path: a
// zero-delivery window that Note explains (an active link outage) is
// reported as a one-line note, not a stall dump.
func TestWatchdogNoteSuppressesStall(t *testing.T) {
	var out strings.Builder
	dumped := 0
	outageEnd := int64(600)
	wd := &Watchdog{
		Window:    100,
		Out:       &out,
		Delivered: func() int64 { return 0 },
		Pending:   func() bool { return true },
		Dump:      func(w io.Writer) { dumped++ },
		Note: func(from, to int64) string {
			if from < outageEnd {
				return "outage active on link sw0.3->sw1.3 [0,600)"
			}
			return ""
		},
	}
	for now := int64(0); now <= 550; now++ {
		wd.Observe(now)
	}
	if wd.Stalls != 0 {
		t.Fatalf("explained windows counted as %d stalls", wd.Stalls)
	}
	if wd.Suppressed == 0 {
		t.Fatal("no suppressed windows recorded")
	}
	if dumped != 0 {
		t.Fatal("Dump invoked for an explained window")
	}
	if !strings.Contains(out.String(), "explained: outage active on link sw0.3->sw1.3") {
		t.Fatalf("note missing from output: %q", out.String())
	}
	// Once the outage clears, an ongoing freeze is a real stall again.
	for now := int64(551); now <= 1200; now++ {
		wd.Observe(now)
	}
	if wd.Stalls == 0 {
		t.Fatal("post-outage freeze produced no stall")
	}
	if dumped == 0 {
		t.Fatal("post-outage stall did not dump")
	}
}
