package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// EventKind labels one packet-lifecycle event.
type EventKind uint8

const (
	// EvInject: the packet's head flit left its source endpoint.
	EvInject EventKind = iota
	// EvRoute: a switch made the routing decision for the packet's head.
	EvRoute
	// EvStashStore: the packet's head flit arrived in a stash pool.
	EvStashStore
	// EvStashRetrieve: a stashed packet started back onto the row bus.
	EvStashRetrieve
	// EvRetransmit: a retained stash copy was re-injected after a NACK.
	EvRetransmit
	// EvEject: the packet's tail flit arrived at its destination endpoint.
	EvEject
	// EvAck: the end-to-end ACK for the packet returned to its source.
	EvAck
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"inject", "route", "stash-store", "stash-retrieve", "retransmit", "eject", "ack",
}

// String returns the event name used in the JSONL export.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one packet-lifecycle record. Node is the switch ID for switch
// events (route, stash-store, stash-retrieve, retransmit) and the endpoint
// ID for endpoint events (inject, eject, ack); Aux carries the event's
// port (route: chosen output; stash events: stash port), or -1.
type Event struct {
	Time     int64
	PktID    uint64
	Kind     EventKind
	Node     int32
	Aux      int32
	Src, Dst int32
}

// Tracer records packet-lifecycle events into a fixed-capacity ring,
// keeping the most recent events and counting the overwritten ones. A nil
// *Tracer is a no-op, so tracing can stay wired in permanently. Record is
// mutex-protected: the tracer is the one observability sink shared across
// switch scopes, and must stay safe under the parallel executor.
//
//stashsim:phase parallel -- the ring is mutex-protected; this is the one sink deliberately shared across workers
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event
	n       int
	dropped int64
}

// NewTracer returns a tracer retaining the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
//
//stashsim:phase parallel -- mutex-serialized append, callable from any worker's Step
func (t *Tracer) Record(time int64, kind EventKind, pktID uint64, node, aux, src, dst int32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{Time: time, PktID: pktID, Kind: kind, Node: node, Aux: aux, Src: src, Dst: dst}
	if t.n == len(t.buf) {
		t.buf[t.head] = ev
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.dropped++
	} else {
		i := t.head + t.n
		if i >= len(t.buf) {
			i -= len(t.buf)
		}
		t.buf[i] = ev
		t.n++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Dropped returns how many events were evicted by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// WriteJSONL writes the retained events as one JSON object per line. The
// fields are flat and schema-stable:
//
//	{"t":123,"ev":"inject","pkt":"2b00000001","node":4,"aux":-1,"src":43,"dst":7}
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(bw, `{"t":%d,"ev":%q,"pkt":"%x","node":%d,"aux":%d,"src":%d,"dst":%d}`+"\n",
			ev.Time, ev.Kind.String(), ev.PktID, ev.Node, ev.Aux, ev.Src, ev.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (loadable in chrome://tracing and Perfetto). Each packet becomes an
// async span opened at inject and closed at eject (id = packet ID), with
// the remaining lifecycle events as instant events on the thread of the
// switch/endpoint where they happened; one cycle maps to one microsecond
// of trace time. Switch events land on pid 1 ("switches"), endpoint
// events on pid 0 ("endpoints").
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith is WriteChromeTrace with an extension point: when
// extra is non-nil it is invoked with the trace's emit function after the
// packet events, letting other subsystems (the executor profiler's
// worker/phase lanes on pid 2) append events to the same trace file with
// correct comma separation.
func (t *Tracer) WriteChromeTraceWith(w io.Writer, extra func(emit func(format string, args ...any) error) error) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`+"\n"); err != nil {
		return err
	}
	wrote := false
	emit := func(format string, args ...any) error {
		if wrote {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		wrote = true
		_, err := fmt.Fprintf(bw, format, args...)
		return err
	}
	if err := emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"endpoints"}}`); err != nil {
		return err
	}
	if err := emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"switches"}}`); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		pid := 1
		switch ev.Kind {
		case EvInject, EvEject, EvAck:
			pid = 0
		}
		args := fmt.Sprintf(`{"pkt":"%x","src":%d,"dst":%d,"aux":%d}`, ev.PktID, ev.Src, ev.Dst, ev.Aux)
		switch ev.Kind {
		case EvInject:
			if err := emit(`{"name":"pkt","cat":"pkt","ph":"b","id":"%x","ts":%d,"pid":%d,"tid":%d,"args":%s}`,
				ev.PktID, ev.Time, pid, ev.Node, args); err != nil {
				return err
			}
		case EvEject:
			if err := emit(`{"name":"pkt","cat":"pkt","ph":"e","id":"%x","ts":%d,"pid":%d,"tid":%d,"args":%s}`,
				ev.PktID, ev.Time, pid, ev.Node, args); err != nil {
				return err
			}
		}
		if err := emit(`{"name":%q,"cat":"lifecycle","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":%s}`,
			ev.Kind.String(), ev.Time, pid, ev.Node, args); err != nil {
			return err
		}
	}
	if extra != nil {
		if err := extra(emit); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
