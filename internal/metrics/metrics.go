// Package metrics is the switch-level observability subsystem: a
// zero-dependency registry of named counters, gauges and histograms with
// per-switch and per-tile scopes, a fixed-interval occupancy sampler, an
// opt-in ring-buffered packet-lifecycle tracer, and a stall watchdog.
//
// The registry is designed to stay compiled into the hot path: every
// handle method is safe on a nil receiver and a nil handle is a single
// predictable branch, so instrumentation sites need no build tags and the
// disabled path (the default) performs no allocations and no map lookups.
// Handles are resolved once at wiring time. Worker-safety under the
// parallel executor comes from ownership sharding: each scope is owned by
// the component that registered it (one switch, one tile), and the
// executor pins every component to exactly one worker goroutine — so the
// per-scope counters ARE the per-worker shards, and cross-scope reads
// (Totals, Sum, Table) merge them at read time. Counter additionally uses
// atomic adds so a handle that does leak across components cannot tear;
// Hist serializes with a mutex for the same reason. Gauges are evaluated
// only at snapshot time (between cycles or after a run), never while
// components are stepping.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"stashsim/internal/stats"
)

// Counter is a monotonically increasing int64. The zero value is usable;
// a nil *Counter is a no-op handle (the disabled fast path, zero
// allocations). Increments are atomic: scope ownership already keeps each
// counter single-writer under the parallel executor, the atomics are the
// belt-and-suspenders for handles shared across components.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//stashsim:phase parallel -- atomic add; scope ownership keeps each counter single-writer anyway
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//stashsim:phase parallel -- atomic add; scope ownership keeps each counter single-writer anyway
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil handle).
//
//stashsim:phase parallel -- atomic load
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Hist is a histogram handle wrapping stats.Hist; a nil *Hist is a no-op.
// Observations serialize on an internal mutex (histogram handles are off
// the per-cycle hot path).
type Hist struct {
	mu sync.Mutex
	h  stats.Hist
}

// Observe records one observation.
//
//stashsim:phase parallel -- mutex-serialized; histogram handles may be shared across components
func (h *Hist) Observe(v int64) {
	if h != nil {
		h.mu.Lock()
		h.h.Add(v)
		h.mu.Unlock()
	}
}

// Snapshot copies the underlying histogram (nil for a nil handle).
func (h *Hist) Snapshot() *stats.Hist {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.h
	return &c
}

// Scope is a named namespace of metrics (one per switch, one per tile).
// A nil *Scope hands out nil handles, so a component wired without a
// registry carries nil handles end to end.
type Scope struct {
	name     string
	reg      *Registry
	counters map[string]*Counter
	corder   []string
	gauges   map[string]func() float64
	gorder   []string
	hists    map[string]*Hist
	horder   []string
}

// Counter returns (creating on first use) the named counter handle.
//
//stashsim:phase serial -- handle resolution is wiring-time work, not hot-path work
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
		s.corder = append(s.corder, name)
	}
	return c
}

// Gauge registers a gauge evaluated lazily at snapshot time. Re-registering
// a name replaces the previous function.
//
//stashsim:phase serial -- handle resolution is wiring-time work, not hot-path work
func (s *Scope) Gauge(name string, fn func() float64) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if _, ok := s.gauges[name]; !ok {
		s.gorder = append(s.gorder, name)
	}
	s.gauges[name] = fn
}

// Hist returns (creating on first use) the named histogram handle.
//
//stashsim:phase serial -- handle resolution is wiring-time work, not hot-path work
func (s *Scope) Hist(name string) *Hist {
	if s == nil {
		return nil
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Hist{}
		s.hists[name] = h
		s.horder = append(s.horder, name)
	}
	return h
}

// Registry holds all scopes of one simulation run. A nil *Registry hands
// out nil scopes: the entire instrumentation tree degrades to no-ops.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
	sorder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

// Scope returns (creating on first use) the named scope.
//
//stashsim:phase serial -- handle resolution is wiring-time work, not hot-path work
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scopes[name]
	if s == nil {
		s = &Scope{
			name:     name,
			reg:      r,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]func() float64),
			hists:    make(map[string]*Hist),
		}
		r.scopes[name] = s
		r.sorder = append(r.sorder, name)
	}
	return s
}

// Each visits every counter and gauge as (scope, metric, value), scopes in
// registration order, metrics in registration order within a scope.
//
//stashsim:phase serial -- cross-scope merge; probes run while the workers are parked
func (r *Registry) Each(fn func(scope, name string, value float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, cn := range s.corder {
			fn(sn, cn, float64(s.counters[cn].Value()))
		}
		for _, gn := range s.gorder {
			fn(sn, gn, s.gauges[gn]())
		}
	}
}

// Totals sums every counter by metric name across all scopes (the
// network-wide view), returned with sorted names.
//
//stashsim:phase serial -- cross-scope merge; probes run while the workers are parked
func (r *Registry) Totals() (names []string, values []int64) {
	if r == nil {
		return nil, nil
	}
	sums := make(map[string]int64)
	r.mu.Lock()
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, cn := range s.corder {
			if _, ok := sums[cn]; !ok {
				names = append(names, cn)
			}
			sums[cn] += s.counters[cn].Value()
		}
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		values = append(values, sums[n])
	}
	return names, values
}

// Sum returns the total of one counter name across all scopes.
//
//stashsim:phase serial -- cross-scope merge; probes run while the workers are parked
func (r *Registry) Sum(name string) int64 {
	if r == nil {
		return 0
	}
	var total int64
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sn := range r.sorder {
		if c, ok := r.scopes[sn].counters[name]; ok {
			total += c.Value()
		}
	}
	return total
}

// Table renders every metric as a (scope, metric, value) table. Gauges are
// formatted with 4 decimal places, counters as integers; histogram handles
// contribute count/mean/p99 summary rows.
//
//stashsim:phase serial -- cross-scope merge; probes run while the workers are parked
func (r *Registry) Table() *stats.Table {
	if r == nil {
		return &stats.Table{Header: []string{"scope", "metric", "value"}}
	}
	t := &stats.Table{Header: []string{"scope", "metric", "value"}}
	r.Each(func(scope, name string, v float64) {
		if v == float64(int64(v)) {
			t.AddRow(scope, name, fmt.Sprintf("%d", int64(v)))
		} else {
			t.AddRow(scope, name, fmt.Sprintf("%.4f", v))
		}
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sn := range r.sorder {
		s := r.scopes[sn]
		for _, hn := range s.horder {
			h := s.hists[hn].Snapshot()
			t.AddRow(sn, hn+".count", fmt.Sprintf("%d", h.N()))
			t.AddRow(sn, hn+".mean", fmt.Sprintf("%.2f", h.Mean()))
			t.AddRow(sn, hn+".p99", fmt.Sprintf("%d", h.Percentile(99)))
		}
	}
	return t
}

// TotalsTable renders the cross-scope counter sums (the compact view the
// CLI prints by default).
//
//stashsim:phase serial -- cross-scope merge; probes run while the workers are parked
func (r *Registry) TotalsTable() *stats.Table {
	if r == nil {
		return &stats.Table{Header: []string{"metric", "total"}}
	}
	t := &stats.Table{Header: []string{"metric", "total"}}
	names, values := r.Totals()
	for i, n := range names {
		t.AddRow(n, fmt.Sprintf("%d", values[i]))
	}
	return t
}
