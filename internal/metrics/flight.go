package metrics

import (
	"fmt"
	"io"
	"sync"
)

// FlightField is one column of the flight recorder: a named reader over
// live simulation state. Counter fields (Gauge false) are recorded as
// per-interval deltas of a monotone total; gauge fields are recorded as
// absolute values.
type FlightField struct {
	Name  string
	Gauge bool
	Read  func() int64
}

// FlightRecorder retains the most recent per-cycle aggregate readings in
// a preallocated ring, turning "the sim stalled" into "here are the last
// N cycles of deliveries, stash traffic, credit stalls and occupancy".
// Record is allocation-free; it is meant to be called from the serial
// PostCycle hook (once per cycle, network quiescent), and Dump/Snapshot
// may be called from the watchdog, a SIGQUIT handler, or the telemetry
// snapshot path. A nil *FlightRecorder is a no-op.
type FlightRecorder struct {
	mu     sync.Mutex
	fields []FlightField
	rows   int
	buf    []int64 // rows × (1 + len(fields)): cycle then one value per field
	prev   []int64 // previous raw reading per counter field
	n      int64   // total records ever written
}

// NewFlightRecorder returns a recorder retaining the last `rows` records
// of the given fields. rows < 1 is clamped to 1.
func NewFlightRecorder(rows int, fields ...FlightField) *FlightRecorder {
	if rows < 1 {
		rows = 1
	}
	return &FlightRecorder{
		fields: fields,
		rows:   rows,
		buf:    make([]int64, rows*(1+len(fields))),
		prev:   make([]int64, len(fields)),
	}
}

// Record captures one row at cycle now: deltas for counter fields,
// absolutes for gauges. It never allocates.
//
//stashsim:phase serial -- field readers walk live component state; runs from the PostCycle hook only
func (f *FlightRecorder) Record(now int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	stride := 1 + len(f.fields)
	row := f.buf[int(f.n%int64(f.rows))*stride:]
	row[0] = now
	for i := range f.fields {
		v := f.fields[i].Read()
		if f.fields[i].Gauge {
			row[1+i] = v
		} else {
			row[1+i] = v - f.prev[i]
			f.prev[i] = v
		}
	}
	f.n++
	f.mu.Unlock()
}

// Len returns the number of retained rows (at most the ring size).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n < int64(f.rows) {
		return int(f.n)
	}
	return f.rows
}

// FieldNames returns the column names after the leading "cycle" column.
func (f *FlightRecorder) FieldNames() []string {
	if f == nil {
		return nil
	}
	names := make([]string, len(f.fields))
	for i := range f.fields {
		names[i] = f.fields[i].Name
	}
	return names
}

// Snapshot copies up to maxRows of the most recent records, oldest first,
// each row as [cycle, field0, field1, ...]. maxRows <= 0 means all.
func (f *FlightRecorder) Snapshot(maxRows int) [][]int64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	avail := int(f.n)
	if avail > f.rows {
		avail = f.rows
	}
	if maxRows > 0 && avail > maxRows {
		avail = maxRows
	}
	stride := 1 + len(f.fields)
	out := make([][]int64, 0, avail)
	for i := avail; i > 0; i-- {
		idx := int((f.n - int64(i)) % int64(f.rows))
		row := make([]int64, stride)
		copy(row, f.buf[idx*stride:(idx+1)*stride])
		out = append(out, row)
	}
	return out
}

// Dump writes up to maxRows of the most recent records as an aligned
// table (oldest first), for watchdog stall dumps and SIGQUIT post-mortems.
// maxRows <= 0 means all retained rows.
func (f *FlightRecorder) Dump(w io.Writer, maxRows int) {
	if f == nil {
		return
	}
	rows := f.Snapshot(maxRows)
	if len(rows) == 0 {
		fmt.Fprintln(w, "flight recorder: empty")
		return
	}
	fmt.Fprintf(w, "flight recorder: last %d cycles (counters are per-cycle deltas)\n", len(rows))
	fmt.Fprintf(w, "%12s", "cycle")
	for _, fieldName := range f.FieldNames() {
		fmt.Fprintf(w, " %14s", fieldName)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%12d", row[0])
		for _, v := range row[1:] {
			fmt.Fprintf(w, " %14d", v)
		}
		fmt.Fprintln(w)
	}
}
