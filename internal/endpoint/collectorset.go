package endpoint

import "stashsim/internal/proto"

// CollectorSet shards measurement collection per endpoint so the parallel
// executor can step endpoints concurrently without synchronizing the
// recording hot path: endpoint i writes only to Shard(i), and readers fold
// the shards together in fixed shard order.
//
// The merge order is what keeps results bit-identical across worker
// counts: each shard's contents depend only on its endpoint's own
// deterministic event sequence, and Merged always combines shards
// 0,1,2,... — so float accumulation order (which is not associative) is
// the same whether the run used one worker or eight.
//
// Most methods are safe on a nil *CollectorSet (no-ops / zero values), so
// a hand-built network without collectors degrades gracefully.
type CollectorSet struct {
	shards []*Collector
}

// NewCollectorSet returns a set of n enabled collectors.
func NewCollectorSet(n int) *CollectorSet {
	cs := &CollectorSet{shards: make([]*Collector, n)}
	for i := range cs.shards {
		cs.shards[i] = NewCollector()
	}
	return cs
}

// Len returns the number of shards (0 for a nil set).
func (cs *CollectorSet) Len() int {
	if cs == nil {
		return 0
	}
	return len(cs.shards)
}

// Shard returns the i-th shard. Each endpoint must record only through its
// own shard.
func (cs *CollectorSet) Shard(i int) *Collector { return cs.shards[i] }

// SetEnabled gates recording on every shard (false during warmup).
func (cs *CollectorSet) SetEnabled(on bool) {
	if cs == nil {
		return
	}
	for _, c := range cs.shards {
		c.Enabled = on
	}
}

// Reset clears all measurements on every shard, keeping the optional-sink
// configuration.
func (cs *CollectorSet) Reset() {
	if cs == nil {
		return
	}
	for _, c := range cs.shards {
		c.Reset()
	}
}

// WithHist allocates a latency histogram for the class on every shard.
func (cs *CollectorSet) WithHist(class proto.Class) *CollectorSet {
	for _, c := range cs.shards {
		c.WithHist(class)
	}
	return cs
}

// WithSeries allocates a latency time series for the class on every shard.
func (cs *CollectorSet) WithSeries(class proto.Class, binWidth int64) *CollectorSet {
	for _, c := range cs.shards {
		c.WithSeries(class, binWidth)
	}
	return cs
}

// WithRecoveryHist allocates the recovery-latency histogram on every shard.
func (cs *CollectorSet) WithRecoveryHist() *CollectorSet {
	for _, c := range cs.shards {
		c.WithRecoveryHist()
	}
	return cs
}

// Merged folds every shard, in shard order, into one aggregate collector.
// The result is a snapshot: it does not track later recording.
func (cs *CollectorSet) Merged() *Collector {
	out := NewCollector()
	if cs == nil {
		return out
	}
	for _, c := range cs.shards {
		out.Merge(c)
	}
	return out
}

// TotalDeliveredFlits sums delivered data flits across all shards and
// classes without building a merged snapshot (cheap enough for RunUntil
// predicates polled every few hundred cycles).
func (cs *CollectorSet) TotalDeliveredFlits() int64 {
	if cs == nil {
		return 0
	}
	var n int64
	for _, c := range cs.shards {
		n += c.TotalDeliveredFlits()
	}
	return n
}

// TotalOfferedFlits sums offered data flits across all shards and classes.
func (cs *CollectorSet) TotalOfferedFlits() int64 {
	if cs == nil {
		return 0
	}
	var n int64
	for _, c := range cs.shards {
		n += c.TotalOfferedFlits()
	}
	return n
}
