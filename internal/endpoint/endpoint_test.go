package endpoint

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// harness wires a lone endpoint to loopback links so its injection and
// delivery paths can be exercised without a switch.
type harness struct {
	ep     *Endpoint
	toSw   *core.Link
	fromSw *core.Link
	cfg    *core.Config
}

func newHarness(t *testing.T, mutate func(*core.Config)) *harness {
	t.Helper()
	cfg := core.TinyConfig()
	if mutate != nil {
		mutate(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	ep := New(3, cfg, sim.NewRNG(5))
	ep.Collector = NewCollector()
	toSw := core.NewLink(1)
	fromSw := core.NewLink(1)
	ep.Attach(toSw, fromSw, cfg.InputBufFlits)
	return &harness{ep: ep, toSw: toSw, fromSw: fromSw, cfg: cfg}
}

// drain pulls all flits the endpoint injected up to and including `now`,
// returning credits the way the switch input buffer would.
func (h *harness) drain(now int64) []proto.Flit {
	var out []proto.Flit
	for {
		f, ok := h.toSw.RecvFlit(now)
		if !ok {
			return out
		}
		h.toSw.SendCredit(now, proto.Credit{VC: f.VC, Shared: f.Flags&proto.FlagShared != 0})
		out = append(out, f)
	}
}

func TestInjectionSerialization(t *testing.T) {
	h := newHarness(t, nil)
	h.ep.EnqueueMessage(0, 100, proto.ClassDefault, 1)
	for now := int64(0); now < 200; now++ {
		h.ep.Step(now)
	}
	flits := h.drain(300)
	if len(flits) != 100 {
		t.Fatalf("injected %d flits, want 100", len(flits))
	}
	// 100 flits at 10/13 rate need at least 130 cycles.
	// All flits were drained at t<=200, consistent with the rate; check
	// packetization: 24+24+24+24+4.
	sizes := map[uint64]int{}
	for _, f := range flits {
		sizes[f.PktID]++
	}
	if len(sizes) != 5 {
		t.Fatalf("message split into %d packets, want 5", len(sizes))
	}
	for id, n := range sizes {
		if n != 24 && n != 4 {
			t.Fatalf("packet %x has %d flits", id, n)
		}
	}
}

func TestInjectionRateLimit(t *testing.T) {
	h := newHarness(t, nil)
	h.ep.EnqueueMessage(0, 1000, proto.ClassDefault, 1)
	cycles := int64(130)
	for now := int64(0); now < cycles; now++ {
		h.ep.Step(now)
	}
	got := len(h.drain(cycles + 10))
	// 130 cycles at 10/13 = at most 100 flits (plus 1 for accumulator
	// boundary effects).
	if got > 101 {
		t.Fatalf("injected %d flits in %d cycles (rate violation)", got, cycles)
	}
	if got < 98 {
		t.Fatalf("injected only %d flits in %d cycles", got, cycles)
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	h := newHarness(t, nil)
	h.ep.EnqueueMessage(0, 48, proto.ClassDefault, 1)
	h.ep.EnqueueMessage(1, 48, proto.ClassDefault, 2)
	for now := int64(0); now < 300; now++ {
		h.ep.Step(now)
	}
	flits := h.drain(400)
	// Packets must be contiguous: whenever a head appears, the next
	// flits up to its tail must share its PktID.
	for i := 0; i < len(flits); {
		f := flits[i]
		if !f.Head() {
			t.Fatalf("flit %d is not a head", i)
		}
		for k := 0; k < int(f.Size); k++ {
			g := flits[i+k]
			if g.PktID != f.PktID || int(g.Seq) != k {
				t.Fatalf("packet %x interleaved at flit %d", f.PktID, i+k)
			}
		}
		i += int(f.Size)
	}
}

func TestRoundRobinAcrossDestinations(t *testing.T) {
	h := newHarness(t, nil)
	// Two destinations with multi-packet messages: packets must
	// alternate (per-packet round robin).
	h.ep.EnqueueMessage(0, 96, proto.ClassDefault, 1)
	h.ep.EnqueueMessage(1, 96, proto.ClassDefault, 2)
	var flits []proto.Flit
	for now := int64(0); now < 400; now++ {
		h.ep.Step(now)
		flits = append(flits, h.drain(now)...)
	}
	var order []int32
	for _, f := range flits {
		if f.Head() {
			order = append(order, f.Dst)
		}
	}
	if len(order) != 8 {
		t.Fatalf("%d packets", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("packets not alternating: %v", order)
		}
	}
}

func TestAckGenerationAndPriority(t *testing.T) {
	h := newHarness(t, nil)
	// Keep the endpoint busy sending a long message.
	h.ep.EnqueueMessage(0, 240, proto.ClassDefault, 1)
	// Deliver a data packet to it; the ACK must preempt the data stream
	// at the next packet boundary.
	data := proto.Flit{
		Src: 9, Dst: 3, PktID: proto.MakePktID(9, 1), Size: 1,
		Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail,
	}
	h.fromSw.SendFlit(0, data)
	var ackAt, boundary int = -1, -1
	count := 0
	for now := int64(0); now < 500; now++ {
		h.ep.Step(now)
		for _, f := range h.drain(now) {
			if f.Kind == proto.ACK {
				if f.Dst != 9 || f.PktID != data.PktID {
					t.Fatalf("bad ACK %+v", f)
				}
				ackAt = count
			} else if f.Tail() && boundary == -1 && ackAt == -1 {
				boundary = count
			}
			count++
		}
	}
	if ackAt == -1 {
		t.Fatal("no ACK generated")
	}
	if boundary != -1 && ackAt > boundary+25 {
		t.Fatalf("ACK delayed past packet boundary: ack at flit %d, boundary %d", ackAt, boundary)
	}
}

func TestNoAckWhenDisabled(t *testing.T) {
	h := newHarness(t, func(c *core.Config) { c.AcksEnabled = false })
	data := proto.Flit{
		Src: 9, Dst: 3, PktID: proto.MakePktID(9, 1), Size: 1,
		Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail,
	}
	h.fromSw.SendFlit(0, data)
	for now := int64(0); now < 50; now++ {
		h.ep.Step(now)
	}
	for _, f := range h.drain(100) {
		if f.Kind == proto.ACK {
			t.Fatal("ACK generated with acks disabled")
		}
	}
}

func TestECNWindowGatesInjection(t *testing.T) {
	h := newHarness(t, func(c *core.Config) {
		c.ECN = core.DefaultECN()
		c.ECN.WindowMax = 48 // two packets
	})
	h.ep.EnqueueMessage(0, 240, proto.ClassDefault, 1)
	for now := int64(0); now < 1000; now++ {
		h.ep.Step(now)
	}
	flits := h.drain(2000)
	if len(flits) != 48 {
		t.Fatalf("window allowed %d flits, want 48", len(flits))
	}
	// An ACK for the first packet opens the window for one more packet.
	ack := proto.Flit{
		Src: 0, Dst: 3, PktID: flits[0].PktID, MsgID: 24, Size: 1,
		Kind: proto.ACK, Flags: proto.FlagHead | proto.FlagTail,
	}
	h.fromSw.SendFlit(1000, ack)
	for now := int64(1001); now < 2000; now++ {
		h.ep.Step(now)
	}
	if got := len(h.drain(3000)); got != 24 {
		t.Fatalf("ACK released %d flits, want 24", got)
	}
}

func TestECNMarkShrinksWindow(t *testing.T) {
	h := newHarness(t, func(c *core.Config) { c.ECN = core.DefaultECN() })
	// Prime the window by sending one packet.
	h.ep.EnqueueMessage(0, 24, proto.ClassDefault, 1)
	for now := int64(0); now < 100; now++ {
		h.ep.Step(now)
	}
	pkt := h.drain(200)[0].PktID
	before := h.ep.WindowOf(0)
	ack := proto.Flit{
		Src: 0, Dst: 3, PktID: pkt, MsgID: 24, Size: 1,
		Kind: proto.ACK, Flags: proto.FlagHead | proto.FlagTail | proto.FlagECN,
	}
	h.fromSw.SendFlit(100, ack)
	h.ep.Step(101)
	h.ep.Step(102)
	after := h.ep.WindowOf(0)
	want := before * h.cfg.ECN.DecreaseNum / h.cfg.ECN.DecreaseDen
	if after != want {
		t.Fatalf("window %d -> %d, want %d", before, after, want)
	}
}

func TestECNWindowRecovery(t *testing.T) {
	h := newHarness(t, func(c *core.Config) { c.ECN = core.DefaultECN() })
	ep := h.ep
	w := ep.window(0)
	w.size = 100
	w.lastGrow = 0
	ep.growWindow(w, 300) // 10 recovery periods
	if w.size != 110 {
		t.Fatalf("window recovered to %d, want 110", w.size)
	}
	ep.growWindow(w, 1<<40)
	if w.size != h.cfg.ECN.WindowMax {
		t.Fatalf("window recovery overshot: %d", w.size)
	}
}

func TestWindowFloor(t *testing.T) {
	h := newHarness(t, func(c *core.Config) { c.ECN = core.DefaultECN() })
	w := h.ep.window(0)
	for i := 0; i < 100; i++ {
		h.ep.onAck(int64(i), &proto.Flit{
			Src: 0, MsgID: 0, Kind: proto.ACK,
			Flags: proto.FlagHead | proto.FlagTail | proto.FlagECN,
		})
	}
	if w.size != h.cfg.ECN.WindowFloor {
		t.Fatalf("window %d, want floor %d", w.size, h.cfg.ECN.WindowFloor)
	}
}

func TestErrorInjectionNacks(t *testing.T) {
	h := newHarness(t, func(c *core.Config) {
		c.ErrorRate = 1.0
		c.RetainPayload = true
	})
	data := proto.Flit{
		Src: 9, Dst: 3, PktID: proto.MakePktID(9, 1), Size: 1,
		Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail,
	}
	h.fromSw.SendFlit(0, data)
	for now := int64(0); now < 50; now++ {
		h.ep.Step(now)
	}
	flits := h.drain(100)
	if len(flits) != 1 || flits[0].Kind != proto.ACK || flits[0].Flags&proto.FlagNack == 0 {
		t.Fatalf("expected a NACK, got %+v", flits)
	}
	if h.ep.Collector.DeliveredPkts[proto.ClassDefault] != 0 {
		t.Fatal("corrupted packet was delivered")
	}
	if h.ep.Collector.Errors != 1 {
		t.Fatal("error not counted")
	}
}

func TestLatencyRecorded(t *testing.T) {
	h := newHarness(t, nil)
	data := proto.Flit{
		Src: 9, Dst: 3, PktID: proto.MakePktID(9, 1), Size: 1, Birth: 100,
		Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail, Class: proto.ClassVictim,
	}
	h.fromSw.SendFlit(499, data)
	h.ep.Step(500)
	acc := h.ep.Collector.LatAcc[proto.ClassVictim]
	if acc.N != 1 || acc.Min != 400 {
		t.Fatalf("latency acc %+v, want one sample of 400", acc)
	}
}

func TestCollectorGating(t *testing.T) {
	c := NewCollector().WithHist(proto.ClassDefault)
	c.WithSeries(proto.ClassDefault, 100)
	c.Enabled = false
	c.Packet(10, proto.ClassDefault, 5, 24)
	c.Offered(proto.ClassDefault, 24)
	c.Ack()
	c.Error()
	c.WindowShrink()
	if c.TotalDeliveredFlits() != 0 || c.TotalOfferedFlits() != 0 {
		t.Fatal("disabled collector recorded flits")
	}
	if c.LatAcc[proto.ClassDefault].N != 0 {
		t.Fatal("disabled collector recorded latency")
	}
	if c.LatHist[proto.ClassDefault].N() != 0 {
		t.Fatal("disabled collector recorded histogram sample")
	}
	if ts, _ := c.Series[proto.ClassDefault].Means(); len(ts) != 0 {
		t.Fatal("disabled collector recorded time-series sample")
	}
	if c.Acks != 0 || c.Errors != 0 || c.WindowShrinks != 0 {
		t.Fatalf("disabled collector recorded events: acks=%d errors=%d shrinks=%d",
			c.Acks, c.Errors, c.WindowShrinks)
	}
	c.Enabled = true
	c.Packet(10, proto.ClassDefault, 5, 24)
	c.Ack()
	c.Error()
	c.WindowShrink()
	if c.TotalDeliveredFlits() != 24 {
		t.Fatal("enabled collector did not record")
	}
	if c.LatHist[proto.ClassDefault].N() != 1 {
		t.Fatal("enabled collector did not record histogram sample")
	}
	if c.Acks != 1 || c.Errors != 1 || c.WindowShrinks != 1 {
		t.Fatal("enabled collector did not record events")
	}
	c.Reset()
	if c.TotalDeliveredFlits() != 0 || c.Acks != 0 {
		t.Fatal("reset did not clear")
	}
	if c.LatHist[proto.ClassDefault] == nil || c.Series[proto.ClassDefault] == nil {
		t.Fatal("reset dropped optional sink configuration")
	}
}

// TestCollectorWarmupGating drives the gate through the endpoint itself:
// a delivery while Enabled=false (warmup) must leave no trace in any sink.
func TestCollectorWarmupGating(t *testing.T) {
	h := newHarness(t, nil)
	h.ep.Collector.WithHist(proto.ClassVictim)
	h.ep.Collector.Enabled = false
	data := proto.Flit{
		Src: 9, Dst: 3, PktID: proto.MakePktID(9, 7), Size: 1, Birth: 100,
		Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail, Class: proto.ClassVictim,
	}
	h.fromSw.SendFlit(499, data)
	h.ep.Step(500)
	c := h.ep.Collector
	if c.LatAcc[proto.ClassVictim].N != 0 || c.LatHist[proto.ClassVictim].N() != 0 ||
		c.DeliveredPkts[proto.ClassVictim] != 0 {
		t.Fatal("warmup delivery was recorded")
	}
	if h.ep.RecvFlits != 1 {
		t.Fatalf("RecvFlits = %d, want 1 (watchdog progress signal must not be gated)", h.ep.RecvFlits)
	}
}

func TestSelfMessagePanics(t *testing.T) {
	h := newHarness(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.ep.EnqueueMessage(3, 10, proto.ClassDefault, 0)
}
