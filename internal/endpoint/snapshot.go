package endpoint

import (
	"sort"

	"stashsim/internal/proto"
	"stashsim/internal/snapshot"
	"stashsim/internal/stats"
)

// Checkpoint hooks for the endpoints. Link ownership is consumer-side
// (see the core package's snapshot hooks): an endpoint captures its
// fromSw link; its toSw link is captured by the switch input port that
// consumes it. The traffic generator closure itself is rebuilt by the
// harness; only its RNG stream (GenRNG) is carried across a restart.

// EncodeState appends the endpoint's full dynamic state.
//
//stashsim:phase serial -- walks partition-owned queues and maps; runs only at a cycle barrier
func (e *Endpoint) EncodeState(w *snapshot.Writer) {
	w.Section("ENDP")
	w.U64(e.rng.State())
	w.Bool(e.GenRNG != nil)
	if e.GenRNG != nil {
		w.U64(e.GenRNG.State())
	}
	e.fromSw.EncodeState(w)
	e.credits.EncodeState(w)
	w.I64(int64(e.acc))
	w.I64(int64(e.rrIdx))
	w.I64(e.queuedFlits)
	w.U32(e.pktSeq)

	// Active send queues, in active-list order (the list's order and the
	// rotation pointer are part of the arbitration state).
	w.Count(len(e.active))
	for _, dst := range e.active {
		w.I32(dst)
		q := e.queues[dst]
		w.Count(q.len())
		for i := q.head; i < len(q.pkts); i++ {
			encodePktDesc(w, &q.pkts[i])
		}
	}

	encodeCurPkt(w, &e.cur)

	w.Count(len(e.ackQ) - e.ackHead)
	for i := e.ackHead; i < len(e.ackQ); i++ {
		w.Flit(&e.ackQ[i])
	}

	// ECN windows, ascending destination order.
	dsts := make([]int32, 0, len(e.windows))
	//lint:allow determinism -- map-key collection, sorted before use
	for dst := range e.windows {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	w.Count(len(dsts))
	for _, dst := range dsts {
		win := e.windows[dst]
		w.I32(dst)
		w.I64(int64(win.size))
		w.I64(int64(win.inflight))
		w.I64(win.lastGrow)
	}

	for vc := range e.rxECN {
		w.Bool(e.rxECN[vc])
		w.Bool(e.rxBad[vc])
	}

	w.Bool(e.seen != nil)
	if e.seen != nil {
		ids := make([]uint64, 0, len(e.seen))
		//lint:allow determinism -- map-key collection, sorted before use
		for id := range e.seen {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Count(len(ids))
		for _, id := range ids {
			w.U64(id)
		}
	}

	w.Bool(e.outstanding != nil)
	if e.outstanding != nil {
		ids := make([]uint64, 0, len(e.outstanding))
		//lint:allow determinism -- map-key collection, sorted before use
		for id := range e.outstanding {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Count(len(ids))
		for _, id := range ids {
			o := e.outstanding[id]
			w.U64(id)
			encodePktDesc(w, &o.desc)
			w.I64(o.birth)
			w.I64(o.deadline)
			w.U8(o.retries)
		}
	}
	w.Count(len(e.outTimers))
	for i := range e.outTimers {
		w.I64(e.outTimers[i].deadline)
		w.U64(e.outTimers[i].pktID)
	}
	w.Count(len(e.rtxQ) - e.rtxHead)
	for i := e.rtxHead; i < len(e.rtxQ); i++ {
		w.U64(e.rtxQ[i].pktID)
		w.U8(e.rtxQ[i].size)
	}

	w.I64(e.SentFlits)
	w.I64(e.RecvFlits)
	w.I64(e.InjectedPkts)
	w.I64(e.DeliveredUnique)
	w.I64(e.DupDelivered)
	w.I64(e.Retransmits)
	w.I64(e.Abandoned)
}

// DecodeState restores the endpoint's dynamic state into a freshly built
// endpoint of the identical configuration. resumeAt is the cycle the
// restored run will execute next.
//
//stashsim:phase serial -- rewrites partition-owned queues and maps; runs only before the restored run starts
func (e *Endpoint) DecodeState(rd *snapshot.Reader, resumeAt int64) {
	rd.Section("ENDP")
	e.rng.SetState(rd.U64())
	hasGen := rd.Bool()
	if rd.Err() != nil {
		return
	}
	if hasGen != (e.GenRNG != nil) {
		if hasGen {
			rd.Failf("endpoint: snapshot carries a traffic generator RNG for endpoint %d, this run has none", e.ID)
		} else {
			rd.Failf("endpoint: this run has a traffic generator RNG for endpoint %d, snapshot has none", e.ID)
		}
		return
	}
	if hasGen {
		e.GenRNG.SetState(rd.U64())
	}
	e.fromSw.DecodeState(rd, resumeAt)
	e.credits.DecodeState(rd)
	e.acc = int(rd.I64())
	e.rrIdx = int(rd.I64())
	e.queuedFlits = rd.I64()
	e.pktSeq = rd.U32()

	n := rd.Count(4 + 4)
	if rd.Err() != nil {
		return
	}
	clear(e.queues)
	e.active = e.active[:0]
	for i := 0; i < n; i++ {
		dst := rd.I32()
		k := rd.Count(4 + 4 + 1 + 1)
		if rd.Err() != nil {
			return
		}
		q := &sendQ{pkts: make([]pktDesc, 0, k)}
		for j := 0; j < k; j++ {
			d, ok := decodePktDesc(rd)
			if !ok {
				return
			}
			q.pkts = append(q.pkts, d)
		}
		e.queues[dst] = q
		e.active = append(e.active, dst)
	}

	if !decodeCurPkt(rd, &e.cur) {
		return
	}

	n = rd.Count(proto.FlitWireSize)
	e.ackQ = e.ackQ[:0]
	e.ackHead = 0
	for i := 0; i < n; i++ {
		f := rd.Flit()
		if rd.Err() != nil {
			return
		}
		e.ackQ = append(e.ackQ, f)
	}

	n = rd.Count(4 + 8 + 8 + 8)
	if rd.Err() != nil {
		return
	}
	clear(e.windows)
	for i := 0; i < n; i++ {
		dst := rd.I32()
		win := &window{}
		win.size = int(rd.I64())
		win.inflight = int(rd.I64())
		win.lastGrow = rd.I64()
		if rd.Err() != nil {
			return
		}
		e.windows[dst] = win
	}

	for vc := range e.rxECN {
		e.rxECN[vc] = rd.Bool()
		e.rxBad[vc] = rd.Bool()
	}

	hasSeen := rd.Bool()
	if rd.Err() != nil {
		return
	}
	if hasSeen != (e.seen != nil) {
		rd.Failf("endpoint: delivery-dedup state presence differs between snapshot and this run for endpoint %d", e.ID)
		return
	}
	if hasSeen {
		n = rd.Count(8)
		if rd.Err() != nil {
			return
		}
		clear(e.seen)
		for i := 0; i < n; i++ {
			e.seen[rd.U64()] = struct{}{}
		}
	}

	hasOut := rd.Bool()
	if rd.Err() != nil {
		return
	}
	if hasOut != (e.outstanding != nil) {
		rd.Failf("endpoint: retransmission state presence differs between snapshot and this run for endpoint %d", e.ID)
		return
	}
	if hasOut {
		n = rd.Count(8 + 4 + 4 + 1 + 1 + 8 + 8 + 1)
		if rd.Err() != nil {
			return
		}
		clear(e.outstanding)
		for i := 0; i < n; i++ {
			id := rd.U64()
			o := e.newOutPkt()
			d, ok := decodePktDesc(rd)
			if !ok {
				return
			}
			o.desc = d
			o.birth = rd.I64()
			o.deadline = rd.I64()
			o.retries = rd.U8()
			if rd.Err() != nil {
				return
			}
			e.outstanding[id] = o
		}
	}
	n = rd.Count(8 + 8)
	e.outTimers = e.outTimers[:0]
	for i := 0; i < n; i++ {
		var t epTimer
		t.deadline = rd.I64()
		t.pktID = rd.U64()
		if rd.Err() != nil {
			return
		}
		e.outTimers = append(e.outTimers, t)
	}
	n = rd.Count(8 + 1)
	e.rtxQ = e.rtxQ[:0]
	e.rtxHead = 0
	for i := 0; i < n; i++ {
		var it rtxItem
		it.pktID = rd.U64()
		it.size = rd.U8()
		if rd.Err() != nil {
			return
		}
		e.rtxQ = append(e.rtxQ, it)
	}

	e.SentFlits = rd.I64()
	e.RecvFlits = rd.I64()
	e.InjectedPkts = rd.I64()
	e.DeliveredUnique = rd.I64()
	e.DupDelivered = rd.I64()
	e.Retransmits = rd.I64()
	e.Abandoned = rd.I64()
}

func encodePktDesc(w *snapshot.Writer, d *pktDesc) {
	w.I32(d.dst)
	w.U32(d.msgID)
	w.U8(d.size)
	w.U8(uint8(d.class))
}

func decodePktDesc(rd *snapshot.Reader) (pktDesc, bool) {
	var d pktDesc
	d.dst = rd.I32()
	d.msgID = rd.U32()
	d.size = rd.U8()
	c := rd.U8()
	if rd.Err() != nil {
		return d, false
	}
	if c >= uint8(proto.NumClasses) {
		rd.Failf("endpoint: packet descriptor class %d out of range [0,%d)", c, proto.NumClasses)
		return d, false
	}
	if d.size == 0 || d.size > proto.MaxPacketFlits {
		rd.Failf("endpoint: packet descriptor size %d outside [1,%d]", d.size, proto.MaxPacketFlits)
		return d, false
	}
	d.class = proto.Class(c)
	return d, true
}

// encodeCurPkt canonicalizes an inactive record to its presence bit
// alone: after a tail flit only active flips off, leaving stale fields
// from the finished packet, and those must not leak into the bytes
// (checkpoint → restore → checkpoint byte identity depends on it).
func encodeCurPkt(w *snapshot.Writer, c *curPkt) {
	w.Bool(c.active)
	if !c.active {
		return
	}
	w.Bool(c.retrans)
	encodePktDesc(w, &c.desc)
	w.U64(c.pktID)
	w.I64(c.birth)
	w.U8(c.seq)
}

func decodeCurPkt(rd *snapshot.Reader, c *curPkt) bool {
	*c = curPkt{}
	c.active = rd.Bool()
	if !c.active {
		return rd.Err() == nil
	}
	c.retrans = rd.Bool()
	d, ok := decodePktDesc(rd)
	if !ok {
		return false
	}
	c.desc = d
	c.pktID = rd.U64()
	c.birth = rd.I64()
	c.seq = rd.U8()
	return rd.Err() == nil
}

// EncodeState appends the collector's measurements and gate.
func (c *Collector) EncodeState(w *snapshot.Writer) {
	w.Section("COLL")
	w.Bool(c.Enabled)
	for i := range c.LatAcc {
		c.LatAcc[i].EncodeState(w)
		w.Bool(c.LatHist[i] != nil)
		if c.LatHist[i] != nil {
			c.LatHist[i].EncodeState(w)
		}
		w.Bool(c.Series[i] != nil)
		if c.Series[i] != nil {
			c.Series[i].EncodeState(w)
		}
		w.I64(c.OfferedFlits[i])
		w.I64(c.DeliveredFlits[i])
		w.I64(c.DeliveredPkts[i])
	}
	w.I64(c.Acks)
	w.I64(c.Errors)
	w.I64(c.WindowShrinks)
	w.I64(c.DuplicatesSuppressed)
	w.I64(c.CorruptPkts)
	w.I64(c.EndpointRetransmits)
	w.I64(c.RetransAbandons)
	w.I64(c.RecoveredPkts)
	c.RecoveryAcc.EncodeState(w)
	w.Bool(c.RecoveryHist != nil)
	if c.RecoveryHist != nil {
		c.RecoveryHist.EncodeState(w)
	}
}

// DecodeState restores the collector's measurements. Optional sinks are
// allocated on demand so a restored run records into the same shapes the
// checkpointed run had.
func (c *Collector) DecodeState(rd *snapshot.Reader) {
	rd.Section("COLL")
	c.Enabled = rd.Bool()
	for i := range c.LatAcc {
		c.LatAcc[i].DecodeState(rd)
		if rd.Bool() {
			if c.LatHist[i] == nil {
				c.LatHist[i] = &stats.Hist{}
			}
			c.LatHist[i].DecodeState(rd)
		} else {
			c.LatHist[i] = nil
		}
		if rd.Bool() {
			if c.Series[i] == nil {
				c.Series[i] = &stats.TimeSeries{}
			}
			c.Series[i].DecodeState(rd)
		} else {
			c.Series[i] = nil
		}
		c.OfferedFlits[i] = rd.I64()
		c.DeliveredFlits[i] = rd.I64()
		c.DeliveredPkts[i] = rd.I64()
		if rd.Err() != nil {
			return
		}
	}
	c.Acks = rd.I64()
	c.Errors = rd.I64()
	c.WindowShrinks = rd.I64()
	c.DuplicatesSuppressed = rd.I64()
	c.CorruptPkts = rd.I64()
	c.EndpointRetransmits = rd.I64()
	c.RetransAbandons = rd.I64()
	c.RecoveredPkts = rd.I64()
	c.RecoveryAcc.DecodeState(rd)
	if rd.Bool() {
		if c.RecoveryHist == nil {
			c.RecoveryHist = &stats.Hist{}
		}
		c.RecoveryHist.DecodeState(rd)
	} else {
		c.RecoveryHist = nil
	}
}

// EncodeState appends every shard in fixed shard order.
func (s *CollectorSet) EncodeState(w *snapshot.Writer) {
	w.Section("CSET")
	w.Count(len(s.shards))
	for _, sh := range s.shards {
		sh.EncodeState(w)
	}
}

// DecodeState restores every shard of a set built with the identical
// shard count.
func (s *CollectorSet) DecodeState(rd *snapshot.Reader) {
	rd.Section("CSET")
	if n := rd.Count(1); rd.Err() == nil && n != len(s.shards) {
		rd.Failf("endpoint: collector set has %d shards, snapshot has %d", len(s.shards), n)
	}
	if rd.Err() != nil {
		return
	}
	for _, sh := range s.shards {
		sh.DecodeState(rd)
		if rd.Err() != nil {
			return
		}
	}
}
