package endpoint

import (
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/proto"
)

// retransCfg enables source retransmission timers with short, test-sized
// timeouts on the stashless tiny config.
func retransCfg(c *core.Config) {
	c.Retrans = core.RetransParams{
		Enabled:         true,
		SwitchTimeout:   50,
		SwitchRetries:   3,
		EndpointTimeout: 100,
		EndpointRetries: 3,
		ScanEvery:       1,
	}
}

// runTo steps the endpoint through [from, to), draining injected flits
// after every cycle so link backpressure never hides a resend.
func (h *harness) runTo(from, to int64) []proto.Flit {
	var out []proto.Flit
	for now := from; now < to; now++ {
		h.ep.Step(now)
		out = append(out, h.drain(now)...)
	}
	return out
}

// packets groups drained flits by PktID, preserving first-seen order.
func packets(flits []proto.Flit) map[uint64][]proto.Flit {
	m := map[uint64][]proto.Flit{}
	for _, f := range flits {
		m[f.PktID] = append(m[f.PktID], f)
	}
	return m
}

func TestRetransTimerFiresWithoutAck(t *testing.T) {
	h := newHarness(t, retransCfg)
	h.ep.EnqueueMessage(0, 4, proto.ClassDefault, 1)
	flits := h.runTo(0, 300)
	byPkt := packets(flits)
	if len(byPkt) != 1 {
		t.Fatalf("got %d distinct PktIDs, want 1 (resends reuse the ID)", len(byPkt))
	}
	for id, fs := range byPkt {
		// Original 4 flits plus at least one full resend.
		if len(fs) < 8 {
			t.Fatalf("pkt %x: %d flits drained, want >= 8 (original + resend)", id, len(fs))
		}
		if fs[0].Flags&proto.FlagRetransmit != 0 {
			t.Fatal("original transmission carries FlagRetransmit")
		}
		rtx := fs[4]
		if rtx.Flags&proto.FlagRetransmit == 0 {
			t.Fatal("resend lacks FlagRetransmit")
		}
		if rtx.Birth != fs[0].Birth {
			t.Fatalf("resend birth %d != original %d", rtx.Birth, fs[0].Birth)
		}
	}
	if h.ep.Retransmits == 0 {
		t.Fatal("Retransmits counter not incremented")
	}
	if got := h.ep.Collector.EndpointRetransmits; got != h.ep.Retransmits {
		t.Fatalf("collector counted %d retransmits, endpoint %d", got, h.ep.Retransmits)
	}
}

func TestRetransAckCancelsTimer(t *testing.T) {
	h := newHarness(t, retransCfg)
	h.ep.EnqueueMessage(0, 4, proto.ClassDefault, 1)
	var pktID uint64
	for now := int64(0); now < 300; now++ {
		h.ep.Step(now)
		for _, f := range h.drain(now) {
			pktID = f.PktID
			if f.Tail() {
				// Acknowledge as soon as the tail leaves.
				h.fromSw.SendFlit(now, proto.Flit{
					Src: f.Dst, Dst: f.Src, MsgID: uint32(f.Size), PktID: f.PktID,
					Birth: now, Size: 1, Kind: proto.ACK,
					Flags: proto.FlagHead | proto.FlagTail, MidGroup: -1,
				})
			}
		}
	}
	if h.ep.Retransmits != 0 {
		t.Fatalf("acked packet resent %d times", h.ep.Retransmits)
	}
	if _, live := h.ep.outstanding[pktID]; live {
		t.Fatal("outstanding record survives its ACK")
	}
	if len(h.ep.outTimers) != 0 {
		// Timers self-clean on the scan after the ACK.
		t.Fatalf("%d stale timers never discarded", len(h.ep.outTimers))
	}
}

// TestRetransBackoffAndExhaustion drives one packet through the full
// retry ladder with no ACKs ever returning: each resend interval must
// follow the exponential backoff table, and after EndpointRetries the
// packet is abandoned.
func TestRetransBackoffAndExhaustion(t *testing.T) {
	h := newHarness(t, retransCfg)
	h.ep.EnqueueMessage(0, 1, proto.ClassDefault, 1)
	var sent []int64 // cycle of each (re)transmission of the head flit
	for now := int64(0); now < 3000; now++ {
		h.ep.Step(now)
		for _, f := range h.drain(now) {
			if f.Head() {
				sent = append(sent, now)
			}
		}
	}
	// retries=1..3 arm Backoff(100, 1..3) = 200, 400, 800.
	wantGaps := []int64{fault.Backoff(100, 1), fault.Backoff(100, 2), fault.Backoff(100, 3)}
	if len(sent) != 4 {
		t.Fatalf("packet transmitted %d times, want 4 (original + 3 retries)", len(sent))
	}
	for i, want := range wantGaps {
		// The first interval runs from the *birth* timer (base timeout),
		// but the resend is queued at scan time and injected within a few
		// cycles; later gaps are measured resend-to-resend and must be at
		// least the armed backoff, with only injection jitter above it.
		gap := sent[i+1] - sent[i]
		var armed int64
		if i == 0 {
			armed = 100 // initial deadline uses the base timeout
		} else {
			armed = wantGaps[i-1]
		}
		_ = want
		if gap < armed || gap > armed+20 {
			t.Fatalf("gap %d: %d cycles, want in [%d,%d]", i, gap, armed, armed+20)
		}
	}
	if h.ep.Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", h.ep.Abandoned)
	}
	if h.ep.Collector.RetransAbandons != 1 {
		t.Fatalf("collector RetransAbandons = %d, want 1", h.ep.Collector.RetransAbandons)
	}
	if len(h.ep.outstanding) != 0 {
		t.Fatal("abandoned packet still outstanding")
	}
	if got := h.ep.QueuedFlits(); got != 0 {
		t.Fatalf("queuedFlits = %d after abandonment, want 0", got)
	}
}

func TestRetransNackTriggersImmediateResend(t *testing.T) {
	h := newHarness(t, retransCfg)
	h.ep.EnqueueMessage(0, 2, proto.ClassDefault, 1)
	resent := false
	for now := int64(0); now < 80 && !resent; now++ {
		h.ep.Step(now)
		for _, f := range h.drain(now) {
			if f.Flags&proto.FlagRetransmit != 0 {
				resent = true
			}
			if f.Tail() && f.Flags&proto.FlagRetransmit == 0 {
				h.fromSw.SendFlit(now, proto.Flit{
					Src: f.Dst, Dst: f.Src, MsgID: uint32(f.Size), PktID: f.PktID,
					Birth: now, Size: 1, Kind: proto.ACK,
					Flags: proto.FlagHead | proto.FlagTail | proto.FlagNack, MidGroup: -1,
				})
			}
		}
	}
	// A NACK in a stashless mode resends well before the 100-cycle timer.
	if !resent {
		t.Fatal("NACK did not trigger a resend before the ACK timer")
	}
	if h.ep.Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", h.ep.Retransmits)
	}
}

func TestDuplicateDeliverySuppressed(t *testing.T) {
	h := newHarness(t, retransCfg)
	data := proto.Flit{
		Src: 0, Dst: 3, MsgID: 9, PktID: proto.MakePktID(0, 7), Birth: 0,
		Size: 1, Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail,
		MidGroup: -1,
	}
	h.fromSw.SendFlit(0, data)
	h.ep.Step(1)
	h.fromSw.SendFlit(1, data)
	h.ep.Step(2)
	if h.ep.DeliveredUnique != 1 {
		t.Fatalf("DeliveredUnique = %d, want 1", h.ep.DeliveredUnique)
	}
	if h.ep.DupDelivered != 1 {
		t.Fatalf("DupDelivered = %d, want 1", h.ep.DupDelivered)
	}
	if h.ep.Collector.DuplicatesSuppressed != 1 {
		t.Fatalf("collector DuplicatesSuppressed = %d, want 1", h.ep.Collector.DuplicatesSuppressed)
	}
	// Both arrivals must be ACKed or a sender whose first ACK dropped
	// would resend forever. Some may already be on the wire.
	h.ep.Step(3)
	h.ep.Step(4)
	acks := 0
	for _, f := range h.drain(5) {
		if f.Kind == proto.ACK {
			acks++
		}
	}
	acks += len(h.ep.ackQ) - h.ep.ackHead
	if acks != 2 {
		t.Fatalf("%d ACKs produced, want 2 (duplicate re-ACKed)", acks)
	}
}

func TestCorruptDataIsNacked(t *testing.T) {
	h := newHarness(t, func(c *core.Config) {
		retransCfg(c)
		c.Fault = &fault.Plan{Seed: 1, CorruptRate: 0.5}
	})
	if !h.cfg.VerifyChecksums() {
		t.Fatal("checksum verification not active")
	}
	good := proto.Flit{
		Src: 0, Dst: 3, MsgID: 9, PktID: proto.MakePktID(0, 8), Birth: 0,
		Size: 1, Kind: proto.Data, Flags: proto.FlagHead | proto.FlagTail,
		MidGroup: -1,
	}
	good.Csum = proto.FlitSum(&good)
	bad := good
	bad.Csum ^= 0x5555
	h.fromSw.SendFlit(0, bad)
	h.ep.Step(1)
	if h.ep.DeliveredUnique != 0 {
		t.Fatal("corrupt packet delivered")
	}
	if h.ep.Collector.CorruptPkts != 1 {
		t.Fatalf("CorruptPkts = %d, want 1", h.ep.Collector.CorruptPkts)
	}
	if got := len(h.ep.ackQ) - h.ep.ackHead; got != 1 {
		t.Fatalf("%d ACKs queued, want 1 NACK", got)
	}
	if h.ep.ackQ[h.ep.ackHead].Flags&proto.FlagNack == 0 {
		t.Fatal("corrupt arrival acknowledged positively")
	}
	// The clean copy then delivers normally.
	h.fromSw.SendFlit(1, good)
	h.ep.Step(2)
	if h.ep.DeliveredUnique != 1 {
		t.Fatal("clean retry not delivered")
	}
}

// TestRetransTimerArmingTable checks the armed deadline after each event
// in a scripted sequence, table-driven over the ladder's states.
func TestRetransTimerArmingTable(t *testing.T) {
	cases := []struct {
		name    string
		retries int
		base    int64
		want    int64
	}{
		{"initial", 0, 100, 100},         // startPacket arms base timeout
		{"first retry", 1, 100, 200},     // Backoff(100,1)
		{"second retry", 2, 100, 400},    // Backoff(100,2)
		{"third retry", 3, 100, 800},     // Backoff(100,3)
		{"deep saturates", 64, 100, 100 << 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got int64
			if tc.retries == 0 {
				got = tc.base
			} else {
				got = fault.Backoff(tc.base, tc.retries)
			}
			if got != tc.want {
				t.Fatalf("deadline delta = %d, want %d", got, tc.want)
			}
		})
	}
}
