package endpoint

import (
	"stashsim/internal/proto"
	"stashsim/internal/stats"
)

// Collector aggregates measurements from one or more endpoints. A
// collector is single-writer: under the parallel executor the network
// gives every endpoint its own shard (see CollectorSet) and merges them in
// fixed shard order at read time, so no synchronization is needed on the
// recording path. Measurement can be gated (warmup) and reset between
// phases.
type Collector struct {
	// Enabled gates all recording (false during warmup).
	Enabled bool

	// LatAcc accumulates packet latency per traffic class.
	LatAcc [proto.NumClasses]stats.Acc
	// LatHist, when non-nil for a class, records the full latency
	// distribution (allocate only for the classes a figure needs).
	LatHist [proto.NumClasses]*stats.Hist
	// Series, when non-nil for a class, records latency over time.
	Series [proto.NumClasses]*stats.TimeSeries

	OfferedFlits   [proto.NumClasses]int64
	DeliveredFlits [proto.NumClasses]int64
	DeliveredPkts  [proto.NumClasses]int64

	Acks          int64
	Errors        int64
	WindowShrinks int64

	// Fault-recovery accounting. DuplicatesSuppressed counts data packets
	// discarded at destinations because a copy already delivered (original
	// racing its retransmit); CorruptPkts counts checksum failures NACKed;
	// EndpointRetransmits and RetransAbandons count source-timer resends
	// and give-ups; RecoveredPkts counts deliveries of retransmitted
	// packets, whose end-to-end recovery latency feeds RecoveryAcc (and
	// RecoveryHist when allocated).
	DuplicatesSuppressed int64
	CorruptPkts          int64
	EndpointRetransmits  int64
	RetransAbandons      int64
	RecoveredPkts        int64
	RecoveryAcc          stats.Acc
	RecoveryHist         *stats.Hist
}

// NewCollector returns an enabled collector with no optional sinks.
func NewCollector() *Collector { return &Collector{Enabled: true} }

// WithHist allocates a latency histogram for the given class.
func (c *Collector) WithHist(class proto.Class) *Collector {
	c.LatHist[class] = &stats.Hist{}
	return c
}

// WithSeries allocates a latency time series for the given class.
func (c *Collector) WithSeries(class proto.Class, binWidth int64) *Collector {
	c.Series[class] = stats.NewTimeSeries(binWidth)
	return c
}

// WithRecoveryHist allocates the recovery-latency histogram.
func (c *Collector) WithRecoveryHist() *Collector {
	c.RecoveryHist = &stats.Hist{}
	return c
}

// Offered records generated load.
func (c *Collector) Offered(class proto.Class, flits int64) {
	if !c.Enabled {
		return
	}
	c.OfferedFlits[class] += flits
}

// Packet records one delivered data packet.
func (c *Collector) Packet(now int64, class proto.Class, latency, flits int64) {
	if !c.Enabled {
		return
	}
	c.LatAcc[class].Add(float64(latency))
	c.DeliveredFlits[class] += flits
	c.DeliveredPkts[class]++
	if h := c.LatHist[class]; h != nil {
		h.Add(latency)
	}
	if s := c.Series[class]; s != nil {
		s.Add(now, float64(latency))
	}
}

// Ack records one received end-to-end ACK.
func (c *Collector) Ack() {
	if !c.Enabled {
		return
	}
	c.Acks++
}

// Error records one injected delivery error (NACKed packet).
func (c *Collector) Error() {
	if !c.Enabled {
		return
	}
	c.Errors++
}

// WindowShrink records one ECN-driven window decrease.
func (c *Collector) WindowShrink() {
	if !c.Enabled {
		return
	}
	c.WindowShrinks++
}

// Duplicate records one suppressed duplicate delivery.
func (c *Collector) Duplicate() {
	if !c.Enabled {
		return
	}
	c.DuplicatesSuppressed++
}

// Corrupt records one checksum failure detected at a destination.
func (c *Collector) Corrupt() {
	if !c.Enabled {
		return
	}
	c.CorruptPkts++
}

// Retransmit records one source-timer retransmission.
func (c *Collector) Retransmit() {
	if !c.Enabled {
		return
	}
	c.EndpointRetransmits++
}

// RetransAbandon records one packet given up after retry exhaustion.
func (c *Collector) RetransAbandon() {
	if !c.Enabled {
		return
	}
	c.RetransAbandons++
}

// Recovered records the delivery of a retransmitted packet and its
// end-to-end recovery latency (delivery cycle minus original birth).
func (c *Collector) Recovered(latency int64) {
	if !c.Enabled {
		return
	}
	c.RecoveredPkts++
	c.RecoveryAcc.Add(float64(latency))
	if c.RecoveryHist != nil {
		c.RecoveryHist.Add(latency)
	}
}

// Reset clears all measurements (optional sinks keep their configuration).
func (c *Collector) Reset() {
	for i := range c.LatAcc {
		c.LatAcc[i] = stats.Acc{}
		if c.LatHist[i] != nil {
			c.LatHist[i] = &stats.Hist{}
		}
		if c.Series[i] != nil {
			c.Series[i] = stats.NewTimeSeries(c.Series[i].BinWidth)
		}
		c.OfferedFlits[i] = 0
		c.DeliveredFlits[i] = 0
		c.DeliveredPkts[i] = 0
	}
	c.Acks = 0
	c.Errors = 0
	c.WindowShrinks = 0
	c.DuplicatesSuppressed = 0
	c.CorruptPkts = 0
	c.EndpointRetransmits = 0
	c.RetransAbandons = 0
	c.RecoveredPkts = 0
	c.RecoveryAcc = stats.Acc{}
	if c.RecoveryHist != nil {
		c.RecoveryHist = &stats.Hist{}
	}
}

// Merge folds another collector into c: accumulators, histograms, time
// series and scalar counts all combine as if o's observations had been
// recorded on c. Optional sinks present on o are allocated on c as needed.
// Configuration (Enabled) is not touched.
func (c *Collector) Merge(o *Collector) {
	for i := range c.LatAcc {
		c.LatAcc[i].Merge(o.LatAcc[i])
		if o.LatHist[i] != nil {
			if c.LatHist[i] == nil {
				c.LatHist[i] = &stats.Hist{}
			}
			c.LatHist[i].Merge(o.LatHist[i])
		}
		if o.Series[i] != nil {
			if c.Series[i] == nil {
				c.Series[i] = stats.NewTimeSeries(o.Series[i].BinWidth)
			}
			c.Series[i].Merge(o.Series[i])
		}
		c.OfferedFlits[i] += o.OfferedFlits[i]
		c.DeliveredFlits[i] += o.DeliveredFlits[i]
		c.DeliveredPkts[i] += o.DeliveredPkts[i]
	}
	c.Acks += o.Acks
	c.Errors += o.Errors
	c.WindowShrinks += o.WindowShrinks
	c.DuplicatesSuppressed += o.DuplicatesSuppressed
	c.CorruptPkts += o.CorruptPkts
	c.EndpointRetransmits += o.EndpointRetransmits
	c.RetransAbandons += o.RetransAbandons
	c.RecoveredPkts += o.RecoveredPkts
	c.RecoveryAcc.Merge(o.RecoveryAcc)
	if o.RecoveryHist != nil {
		if c.RecoveryHist == nil {
			c.RecoveryHist = &stats.Hist{}
		}
		c.RecoveryHist.Merge(o.RecoveryHist)
	}
}

// TotalDeliveredFlits sums delivered data flits over all classes.
func (c *Collector) TotalDeliveredFlits() int64 {
	var n int64
	for _, v := range c.DeliveredFlits {
		n += v
	}
	return n
}

// TotalOfferedFlits sums offered data flits over all classes.
func (c *Collector) TotalOfferedFlits() int64 {
	var n int64
	for _, v := range c.OfferedFlits {
		n += v
	}
	return n
}
