// Package endpoint models network endpoints: message segmentation into
// packets, InfiniBand-style queue pairs (a send queue per destination with
// per-packet round-robin arbitration for the injection port), hardware ACK
// generation at destinations, ECN transmission windows (Section IV-B), and
// the error-injection hook of the retransmission extension.
package endpoint

import (
	"stashsim/internal/buffer"
	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/metrics"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
)

// maxQueueScan bounds the per-cycle scan over active send queues so one
// endpoint cycle stays O(1) even with thousands of blocked destinations.
const maxQueueScan = 64

// pktDesc describes one queued packet awaiting injection.
type pktDesc struct {
	dst   int32
	msgID uint32
	size  uint8
	class proto.Class
}

// sendQ is the per-destination packet queue of a queue pair.
type sendQ struct {
	pkts []pktDesc
	head int
}

func (q *sendQ) len() int { return len(q.pkts) - q.head }

func (q *sendQ) push(p pktDesc) {
	if q.head > 0 && len(q.pkts) == cap(q.pkts) {
		// Reclaim the consumed prefix instead of growing: a queue that
		// churns without ever fully draining would otherwise reallocate
		// forever.
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.pkts = append(q.pkts, p)
}

func (q *sendQ) front() *pktDesc { return &q.pkts[q.head] }

func (q *sendQ) pop() pktDesc {
	p := q.pkts[q.head]
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p
}

// window is one ECN transmission window (per destination).
type window struct {
	size     int // current window in flits
	inflight int // unacknowledged flits
	lastGrow int64
}

// curPkt is the packet currently being injected (wormhole: it finishes
// before any other traffic may use the injection channel).
type curPkt struct {
	active  bool
	retrans bool // source retransmission: reuses the original PktID/Birth
	desc    pktDesc
	pktID   uint64
	birth   int64
	seq     uint8
}

// outPkt is the source-side record of an unacknowledged data packet
// (Retrans.Enabled only): everything needed to rebuild and resend it.
type outPkt struct {
	desc     pktDesc
	birth    int64
	deadline int64 // armed ACK timer; doubles per retry
	retries  uint8
}

// epTimer is one armed source ACK timer; like the switch's retryRec,
// records are append-ordered and lazily discarded when stale.
type epTimer struct {
	deadline int64
	pktID    uint64
}

// rtxItem is one packet queued for source retransmission.
type rtxItem struct {
	pktID uint64
	size  uint8
}

// Delivery is passed to the trace engine's completion hook.
type Delivery struct {
	Now   int64
	Src   int32
	MsgID uint32
	Flits int
}

// Endpoint is one network endpoint.
type Endpoint struct {
	ID  int32
	cfg *core.Config
	rng *sim.RNG

	toSw    *core.Link
	fromSw  *core.Link
	credits *buffer.CreditCounter
	acc     int

	queues      map[int32]*sendQ
	active      []int32
	rrIdx       int
	queuedFlits int64
	cur         curPkt
	ackQ        []proto.Flit
	ackHead     int
	pktSeq      uint32

	windows map[int32]*window

	rxECN [proto.NumNetVCs]bool
	rxBad [proto.NumNetVCs]bool // checksum failure seen in the packet so far

	// Delivery dedup (DedupDelivery configs): PktIDs already delivered.
	// Duplicates are re-ACKed but not delivered twice.
	seen map[uint64]struct{}

	// Source retransmission state (Retrans.Enabled): unacknowledged data
	// packets, their armed timers, and the resend queue. outFree recycles
	// settled outPkt records so the steady-state inject/ack cycle stops
	// allocating one record per packet.
	outstanding map[uint64]*outPkt
	outFree     []*outPkt
	outTimers   []epTimer
	rtxQ        []rtxItem
	rtxHead     int

	// Gen, when non-nil, is invoked at the start of every cycle to
	// generate traffic (assigned by the harness).
	Gen func(now sim.Tick, e *Endpoint)

	// GenRNG, when non-nil, is the RNG stream driving Gen's random draws.
	// The harness assigns it alongside Gen so checkpoint/restore can carry
	// the generator stream across a restart; the closure and the snapshot
	// share the stream through this pointer.
	GenRNG *sim.RNG

	// OnDelivered, when non-nil, is invoked for every delivered data
	// packet (used by the trace replay engine).
	OnDelivered func(d Delivery)

	// Collector receives measurements. The network hands every endpoint
	// its own CollectorSet shard, so recording stays single-writer even
	// when the parallel executor steps endpoints concurrently.
	Collector *Collector

	// SentFlits counts every flit injected (data and ACK), used by
	// per-endpoint offered-load probes.
	SentFlits int64

	// RecvFlits counts every flit ejected at this endpoint. Unlike the
	// collector it is never gated by warmup, so the stall watchdog can
	// use it as an always-on progress signal.
	RecvFlits int64

	// Exactly-once delivery accounting, never warmup-gated (drain and
	// delivery assertions span the whole run): InjectedPkts counts
	// distinct data packets started (retransmissions excluded),
	// DeliveredUnique counts first deliveries at this endpoint,
	// DupDelivered counts suppressed duplicates, Retransmits counts
	// source-timer resends, and Abandoned counts packets given up after
	// retry exhaustion.
	InjectedPkts    int64
	DeliveredUnique int64
	DupDelivered    int64
	Retransmits     int64
	Abandoned       int64

	// Tracer, when non-nil, receives packet-lifecycle events (inject,
	// eject, ack) from this endpoint.
	Tracer *metrics.Tracer
}

// New builds endpoint id. Links and credits are attached by the network.
func New(id int32, cfg *core.Config, rng *sim.RNG) *Endpoint {
	e := &Endpoint{
		ID:      id,
		cfg:     cfg,
		rng:     rng.Derive(0x45505453 ^ uint64(id)),
		queues:  make(map[int32]*sendQ),
		windows: make(map[int32]*window),
	}
	if cfg.DedupDelivery() {
		e.seen = make(map[uint64]struct{})
	}
	if cfg.Retrans.Enabled {
		e.outstanding = make(map[uint64]*outPkt)
	}
	return e
}

// Attach wires the endpoint's links: toSw carries injected flits (credits
// return on it), fromSw carries ejected flits. inBufCap is the capacity of
// the switch end-port input buffer the credits mirror.
func (e *Endpoint) Attach(toSw, fromSw *core.Link, inBufCap int) {
	e.toSw = toSw
	e.fromSw = fromSw
	e.credits = buffer.NewCreditCounter(inBufCap, proto.NumNetVCs)
}

// QueuedFlits returns the backlog awaiting injection in flits.
func (e *Endpoint) QueuedFlits() int64 { return e.queuedFlits }

// AuditCredits exposes the injection credit counter for the invariant
// checker's credit-conservation audit.
func (e *Endpoint) AuditCredits() *buffer.CreditCounter { return e.credits }

// AuditLinks exposes the attached links (injection, ejection).
func (e *Endpoint) AuditLinks() (toSw, fromSw *core.Link) { return e.toSw, e.fromSw }

// EnqueueMessage segments a message into packets and queues them on the
// destination's send queue. It must not be called with dst == e.ID.
func (e *Endpoint) EnqueueMessage(dst int32, flits int, class proto.Class, msgID uint32) {
	if dst == e.ID {
		panic("endpoint: message to self")
	}
	q := e.queues[dst]
	if q == nil {
		q = &sendQ{}
		e.queues[dst] = q
	}
	wasEmpty := q.len() == 0
	for _, size := range proto.Segment(flits) {
		q.push(pktDesc{dst: dst, msgID: msgID, size: uint8(size), class: class})
	}
	e.queuedFlits += int64(flits)
	if wasEmpty {
		e.active = append(e.active, dst)
	}
	if e.Collector != nil {
		e.Collector.Offered(class, int64(flits))
	}
}

// The endpoint is a sim.Stepper so the network can drive it through the
// parallel executor alongside the switches.
var _ sim.Stepper = (*Endpoint)(nil)

// Step advances the endpoint one cycle: generate traffic, consume ejected
// flits (producing ACKs), and inject one flit when the serialization
// accumulator and credits allow.
func (e *Endpoint) Step(now sim.Tick) {
	if e.Gen != nil {
		e.Gen(now, e)
	}
	e.stepRecv(now)
	e.stepRetrans(now)
	e.stepInject(now)
}

func (e *Endpoint) stepRecv(now sim.Tick) {
	verify := e.cfg.VerifyChecksums()
	for {
		f, ok := e.fromSw.RecvFlit(now)
		if !ok {
			return
		}
		e.RecvFlits++
		if f.Head() {
			e.rxECN[f.VC] = f.Flags&proto.FlagECN != 0
			e.rxBad[f.VC] = false
		}
		if verify && proto.FlitSum(&f) != f.Csum {
			e.rxBad[f.VC] = true
		}
		if !f.Tail() {
			continue
		}
		corrupt := verify && e.rxBad[f.VC]
		if f.Kind == proto.ACK {
			if corrupt {
				// A corrupted ACK is discarded; the sender's timers
				// recover (resend -> duplicate -> suppressed -> re-ACK).
				continue
			}
			e.onAck(now, &f)
			continue
		}
		// Data packet fully arrived.
		if corrupt {
			e.pushAck(now, &f, true)
			if e.Collector != nil {
				e.Collector.Corrupt()
			}
			continue
		}
		if e.cfg.ErrorRate > 0 && e.rng.Bernoulli(e.cfg.ErrorRate) {
			// Error-injection extension: corrupt arrival, NACK it.
			e.pushAck(now, &f, true)
			if e.Collector != nil {
				e.Collector.Error()
			}
			continue
		}
		if e.seen != nil {
			if _, dup := e.seen[f.PktID]; dup {
				// Exactly-once delivery: suppress the duplicate but still
				// acknowledge it, or a sender whose first ACK was lost
				// would resend forever.
				e.DupDelivered++
				if e.Collector != nil {
					e.Collector.Duplicate()
				}
				if e.cfg.AcksEnabled {
					e.pushAck(now, &f, false)
				}
				continue
			}
			e.seen[f.PktID] = struct{}{}
		}
		e.DeliveredUnique++
		e.Tracer.Record(now, metrics.EvEject, f.PktID, e.ID, -1, f.Src, f.Dst)
		if e.Collector != nil {
			e.Collector.Packet(now, f.Class, now-f.Birth, int64(f.Size))
			if f.Flags&proto.FlagRetransmit != 0 {
				// Birth is preserved across resends, so this is the full
				// loss-to-recovery latency.
				e.Collector.Recovered(now - f.Birth)
			}
		}
		if e.OnDelivered != nil {
			e.OnDelivered(Delivery{Now: now, Src: f.Src, MsgID: f.MsgID, Flits: int(f.Size)})
		}
		if e.cfg.AcksEnabled {
			e.pushAck(now, &f, false)
		}
	}
}

// stepRetrans scans the armed source ACK timers every Retrans.ScanEvery
// cycles, queueing due packets for retransmission with exponential
// backoff and abandoning them once the retry budget is spent.
func (e *Endpoint) stepRetrans(now sim.Tick) {
	rp := &e.cfg.Retrans
	if !rp.Enabled || len(e.outTimers) == 0 {
		return
	}
	if rp.ScanEvery > 1 && now%rp.ScanEvery != 0 {
		return
	}
	n := len(e.outTimers)
	w := 0
	for i := 0; i < n; i++ {
		rec := e.outTimers[i]
		o := e.outstanding[rec.pktID]
		if o == nil || o.deadline != rec.deadline {
			continue // acknowledged or re-armed; stale record
		}
		if rec.deadline > now {
			e.outTimers[w] = rec
			w++
			continue
		}
		if int(o.retries) >= rp.EndpointRetries {
			e.abandon(rec.pktID, o)
			continue
		}
		e.resend(now, rec.pktID, o)
	}
	e.outTimers = append(e.outTimers[:w], e.outTimers[n:]...)
}

// resend charges one retry, re-arms the packet's timer with backoff, and
// queues it for injection.
func (e *Endpoint) resend(now sim.Tick, pktID uint64, o *outPkt) {
	o.retries++
	o.deadline = now + fault.Backoff(e.cfg.Retrans.EndpointTimeout, int(o.retries))
	e.outTimers = append(e.outTimers, epTimer{deadline: o.deadline, pktID: pktID})
	if e.rtxHead > 0 && len(e.rtxQ) == cap(e.rtxQ) {
		n := copy(e.rtxQ, e.rtxQ[e.rtxHead:])
		e.rtxQ = e.rtxQ[:n]
		e.rtxHead = 0
	}
	e.rtxQ = append(e.rtxQ, rtxItem{pktID: pktID, size: o.desc.size})
	e.queuedFlits += int64(o.desc.size)
	e.Retransmits++
	if e.Collector != nil {
		e.Collector.Retransmit()
	}
}

// newOutPkt draws a zeroed outstanding-packet record from the freelist,
// allocating only when it is empty. Like the switch's e2eEntry freelist it
// is deterministic LIFO reuse — record identity never reaches the wire.
func (e *Endpoint) newOutPkt() *outPkt {
	if n := len(e.outFree); n > 0 {
		o := e.outFree[n-1]
		e.outFree = e.outFree[:n-1]
		*o = outPkt{}
		return o
	}
	return &outPkt{}
}

// dropOut retires an outstanding record and recycles it.
func (e *Endpoint) dropOut(pktID uint64, o *outPkt) {
	delete(e.outstanding, pktID)
	e.outFree = append(e.outFree, o)
}

// abandon gives up on an unacknowledged packet after retry exhaustion,
// releasing its transmission-window share so the destination is not
// permanently penalized.
func (e *Endpoint) abandon(pktID uint64, o *outPkt) {
	e.dropOut(pktID, o)
	e.Abandoned++
	if e.Collector != nil {
		e.Collector.RetransAbandon()
	}
	if e.cfg.ECN.Enabled {
		w := e.window(o.desc.dst)
		w.inflight -= int(o.desc.size)
		if w.inflight < 0 {
			w.inflight = 0
		}
	}
}

// pushAck queues a hardware-generated single-flit ACK. Its MsgID field
// carries the acknowledged packet's size so the source can settle its
// transmission window, and the ECN mark is copied from the data packet.
func (e *Endpoint) pushAck(now sim.Tick, f *proto.Flit, nack bool) {
	flags := proto.FlagHead | proto.FlagTail
	if e.rxECN[f.VC] {
		flags |= proto.FlagECN
	}
	if nack {
		flags |= proto.FlagNack
	}
	ack := proto.Flit{
		Src:      e.ID,
		Dst:      f.Src,
		MsgID:    uint32(f.Size),
		PktID:    f.PktID,
		Birth:    now,
		Size:     1,
		Kind:     proto.ACK,
		Flags:    flags,
		Class:    f.Class,
		MidGroup: -1,
	}
	if e.cfg.VerifyChecksums() {
		ack.Csum = proto.FlitSum(&ack)
	}
	if e.ackHead > 0 && len(e.ackQ) == cap(e.ackQ) {
		n := copy(e.ackQ, e.ackQ[e.ackHead:])
		e.ackQ = e.ackQ[:n]
		e.ackHead = 0
	}
	e.ackQ = append(e.ackQ, ack)
}

func (e *Endpoint) stepInject(now sim.Tick) {
	e.toSw.RecvCreditsInto(now, e.credits)
	if e.acc < e.cfg.RateDen {
		e.acc += e.cfg.RateNum
	}
	if e.acc < e.cfg.RateDen {
		return
	}
	if e.credits.Avail(0) <= 0 {
		return
	}
	f, ok := e.nextFlit(now)
	if !ok {
		return
	}
	e.credits.Take(&f)
	e.toSw.SendFlit(now, f)
	e.acc -= e.cfg.RateDen
	e.SentFlits++
}

// nextFlit selects the next flit to inject: the packet in progress
// continues; otherwise ACKs have priority (they are hardware-generated and
// independent of higher-level protocols); otherwise the next eligible send
// queue starts a packet.
func (e *Endpoint) nextFlit(now sim.Tick) (proto.Flit, bool) {
	if e.cur.active {
		return e.emit(), true
	}
	if e.ackHead < len(e.ackQ) {
		f := e.ackQ[e.ackHead]
		e.ackHead++
		if e.ackHead == len(e.ackQ) {
			e.ackQ = e.ackQ[:0]
			e.ackHead = 0
		}
		return f, true
	}
	for e.rtxHead < len(e.rtxQ) {
		item := e.rtxQ[e.rtxHead]
		e.rtxHead++
		if e.rtxHead == len(e.rtxQ) {
			e.rtxQ = e.rtxQ[:0]
			e.rtxHead = 0
		}
		o := e.outstanding[item.pktID]
		if o == nil {
			// Acknowledged or abandoned while queued; drop its backlog share.
			e.queuedFlits -= int64(item.size)
			continue
		}
		e.cur = curPkt{
			active:  true,
			retrans: true,
			desc:    o.desc,
			pktID:   item.pktID,
			birth:   o.birth,
		}
		return e.emit(), true
	}
	if !e.startPacket(now) {
		return proto.Flit{}, false
	}
	return e.emit(), true
}

// startPacket picks the next destination by per-packet round robin over
// the active queue-pair send queues, honoring ECN windows.
func (e *Endpoint) startPacket(now sim.Tick) bool {
	n := len(e.active)
	if n == 0 {
		return false
	}
	scan := n
	if scan > maxQueueScan {
		scan = maxQueueScan
	}
	for i := 0; i < scan; i++ {
		k := e.rrIdx + i
		if k >= n {
			k -= n
		}
		dst := e.active[k]
		q := e.queues[dst]
		desc := *q.front()
		var w *window
		if e.cfg.ECN.Enabled {
			w = e.window(dst)
			e.growWindow(w, now)
			if w.inflight+int(desc.size) > w.size {
				continue
			}
		}
		q.pop()
		if q.len() == 0 {
			// Swap-remove the drained queue from the active list.
			e.active[k] = e.active[n-1]
			e.active = e.active[:n-1]
			if e.rrIdx >= len(e.active) {
				e.rrIdx = 0
			}
		} else {
			e.rrIdx = k + 1
			if e.rrIdx >= n {
				e.rrIdx = 0
			}
		}
		if w != nil {
			w.inflight += int(desc.size)
		}
		e.cur = curPkt{
			active: true,
			desc:   desc,
			pktID:  proto.MakePktID(e.ID, e.pktSeq),
			birth:  now,
		}
		e.pktSeq++
		e.InjectedPkts++
		if e.cfg.Retrans.Enabled {
			o := e.newOutPkt()
			o.desc = desc
			o.birth = now
			o.deadline = now + e.cfg.Retrans.EndpointTimeout
			e.outstanding[e.cur.pktID] = o
			e.outTimers = append(e.outTimers, epTimer{deadline: o.deadline, pktID: e.cur.pktID})
		}
		return true
	}
	if scan < n {
		// Rotate so a long blocked prefix cannot starve later queues.
		e.rrIdx += scan
		if e.rrIdx >= n {
			e.rrIdx -= n
		}
	}
	return false
}

// emit produces the next flit of the packet in progress.
func (e *Endpoint) emit() proto.Flit {
	c := &e.cur
	f := proto.Flit{
		Src:      e.ID,
		Dst:      c.desc.dst,
		MsgID:    c.desc.msgID,
		PktID:    c.pktID,
		Birth:    c.birth,
		Seq:      c.seq,
		Size:     c.desc.size,
		Kind:     proto.Data,
		Class:    c.desc.class,
		MidGroup: -1,
		Phase:    proto.PhaseInject,
	}
	if c.seq == 0 {
		f.Flags |= proto.FlagHead
		e.Tracer.Record(c.birth, metrics.EvInject, f.PktID, e.ID, -1, f.Src, f.Dst)
	}
	if c.seq == c.desc.size-1 {
		f.Flags |= proto.FlagTail
		c.active = false
	}
	if c.retrans {
		f.Flags |= proto.FlagRetransmit
	}
	if e.cfg.VerifyChecksums() {
		f.Csum = proto.FlitSum(&f)
	}
	c.seq++
	e.queuedFlits--
	return f
}

// onAck settles the transmission window for the acknowledged destination
// and retires (or, in modes without a switch stash covering the packet,
// resends) the source's outstanding record.
func (e *Endpoint) onAck(now sim.Tick, f *proto.Flit) {
	e.Tracer.Record(now, metrics.EvAck, f.PktID, e.ID, -1, f.Src, f.Dst)
	if e.Collector != nil {
		e.Collector.Ack()
	}
	if f.Flags&proto.FlagNack == 0 {
		if o := e.outstanding[f.PktID]; o != nil {
			e.dropOut(f.PktID, o)
		}
	} else if e.cfg.Retrans.Enabled && e.cfg.Mode != core.StashE2E {
		// NACK without a stash-resident copy: the source is the only
		// recovery path, so respond immediately rather than waiting for
		// the timer. In StashE2E the first-hop stash resends instead.
		if o := e.outstanding[f.PktID]; o != nil {
			if int(o.retries) >= e.cfg.Retrans.EndpointRetries {
				e.abandon(f.PktID, o)
			} else {
				e.resend(now, f.PktID, o)
			}
		}
	}
	if !e.cfg.ECN.Enabled {
		return
	}
	w := e.window(f.Src)
	origSize := int(f.MsgID)
	if f.Flags&proto.FlagNack == 0 {
		w.inflight -= origSize
		if w.inflight < 0 {
			w.inflight = 0
		}
	}
	if f.Flags&proto.FlagECN != 0 {
		e.growWindow(w, now)
		w.size = w.size * e.cfg.ECN.DecreaseNum / e.cfg.ECN.DecreaseDen
		if w.size < e.cfg.ECN.WindowFloor {
			w.size = e.cfg.ECN.WindowFloor
		}
		w.lastGrow = now
		if e.Collector != nil {
			e.Collector.WindowShrink()
		}
	}
}

func (e *Endpoint) window(dst int32) *window {
	w := e.windows[dst]
	if w == nil {
		w = &window{size: e.cfg.ECN.WindowMax, lastGrow: 0}
		e.windows[dst] = w
	}
	return w
}

// growWindow applies the timer-based recovery: one flit per RecoverPeriod
// cycles since the last update, capped at the maximum window.
func (e *Endpoint) growWindow(w *window, now sim.Tick) {
	if w.size >= e.cfg.ECN.WindowMax {
		w.lastGrow = now
		return
	}
	steps := (now - w.lastGrow) / e.cfg.ECN.RecoverPeriod
	if steps <= 0 {
		return
	}
	w.size += int(steps)
	if w.size > e.cfg.ECN.WindowMax {
		w.size = e.cfg.ECN.WindowMax
	}
	w.lastGrow += steps * e.cfg.ECN.RecoverPeriod
}

// WindowOf exposes a destination's current window size (tests, probes).
func (e *Endpoint) WindowOf(dst int32) int {
	if w := e.windows[dst]; w != nil {
		return w.size
	}
	return e.cfg.ECN.WindowMax
}
