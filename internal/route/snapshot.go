package route

import "stashsim/internal/snapshot"

// Checkpoint hooks. The router's only dynamic state is the RNG driving
// Valiant intermediate-group choices; topology and params are structural
// and rebuilt from the configuration.

// EncodeState appends the router's RNG stream state.
func (r *Router) EncodeState(w *snapshot.Writer) {
	w.U64(r.rng.State())
}

// DecodeState restores the router's RNG stream state.
func (r *Router) DecodeState(rd *snapshot.Reader) {
	r.rng.SetState(rd.U64())
}
