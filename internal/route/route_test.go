package route

import (
	"testing"

	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// flatOracle reports constant queue depths.
type flatOracle int

func (f flatOracle) OutputQueue(port int) int { return int(f) }

// mapOracle reports per-port depths.
type mapOracle map[int]int

func (m mapOracle) OutputQueue(port int) int { return m[port] }

func newRouter(d topo.Dragonfly, adaptive bool) *Router {
	p := DefaultParams()
	p.Adaptive = adaptive
	return New(d, p, sim.NewRNG(1))
}

func headFlit(src, dst int32) *proto.Flit {
	return &proto.Flit{
		Src: src, Dst: dst,
		Size: 1, Flags: proto.FlagHead | proto.FlagTail,
		Phase: proto.PhaseInject, MidGroup: -1,
	}
}

// walk routes a flit hop by hop from its source switch to delivery,
// returning the path of (switch, port) pairs. It fails the test if the
// path exceeds the worst-case hop count.
func walk(t *testing.T, r *Router, f *proto.Flit, oracle Oracle) []int {
	t.Helper()
	d := r.D
	sw, _ := d.EndpointSwitch(int(f.Src))
	var swPath []int
	for hop := 0; hop < 10; hop++ {
		swPath = append(swPath, sw)
		dec := r.Route(f, sw, oracle)
		if dec.Eject {
			dstSw, dstPort := d.EndpointSwitch(int(f.Dst))
			if sw != dstSw || dec.Out != dstPort {
				t.Fatalf("ejected at wrong place: sw %d port %d, want sw %d port %d",
					sw, dec.Out, dstSw, dstPort)
			}
			return swPath
		}
		if int(dec.NextVC) != int(f.Hops) && f.Hops < proto.NumNetVCs {
			t.Fatalf("hop %d: VC %d != hops %d", hop, dec.NextVC, f.Hops)
		}
		f.Phase = dec.Phase
		f.MidGroup = dec.MidGroup
		if dec.NonMinimal {
			f.Flags |= proto.FlagNonMinimal
		}
		nsw, _ := d.Neighbor(sw, dec.Out)
		f.Hops++
		sw = nsw
	}
	t.Fatalf("path from %d to %d did not terminate: %v", f.Src, f.Dst, swPath)
	return nil
}

func TestMinimalPathsReachAllPairs(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, false)
	n := d.NumEndpoints()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			f := headFlit(int32(src), int32(dst))
			path := walk(t, r, f, flatOracle(0))
			// Minimal dragonfly paths visit at most 4 switches
			// (src, gw, dst-gw, dst).
			if len(path) > 4 {
				t.Fatalf("%d->%d minimal path too long: %v", src, dst, path)
			}
		}
	}
}

func TestAdaptivePathsReachAllPairsUnderCongestion(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	// A congested oracle forces frequent Valiant diverts.
	oracle := mapOracle{}
	for p := 0; p < d.Radix(); p++ {
		oracle[p] = (p * 37) % 500
	}
	n := d.NumEndpoints()
	for src := 0; src < n; src += 3 {
		for dst := 0; dst < n; dst += 3 {
			if src == dst {
				continue
			}
			f := headFlit(int32(src), int32(dst))
			path := walk(t, r, f, oracle)
			if len(path) > 7 {
				t.Fatalf("%d->%d adaptive path too long: %v", src, dst, path)
			}
		}
	}
}

func TestVCNeverExceedsLimit(t *testing.T) {
	d := topo.Dragonfly{P: 3, A: 6, H: 3}
	r := newRouter(d, true)
	oracle := mapOracle{}
	for p := 0; p < d.Radix(); p++ {
		oracle[p] = (p * 91) % 1000
	}
	n := d.NumEndpoints()
	for src := 0; src < n; src += 7 {
		for dst := 0; dst < n; dst += 5 {
			if src == dst {
				continue
			}
			f := headFlit(int32(src), int32(dst))
			sw, _ := d.EndpointSwitch(src)
			for hop := 0; hop < 10; hop++ {
				dec := r.Route(f, sw, oracle)
				if dec.Eject {
					break
				}
				if dec.NextVC >= proto.NumNetVCs {
					t.Fatalf("VC %d exceeds the %d available", dec.NextVC, proto.NumNetVCs)
				}
				f.Phase = dec.Phase
				f.MidGroup = dec.MidGroup
				sw, _ = d.Neighbor(sw, dec.Out)
				f.Hops++
			}
		}
	}
}

func TestUGALPrefersMinimalWhenUncongested(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	// Zero queues everywhere: never divert.
	for trial := 0; trial < 200; trial++ {
		f := headFlit(0, int32(d.NumEndpoints()-1))
		dec := r.Route(f, 0, flatOracle(0))
		if dec.NonMinimal {
			t.Fatal("diverted with empty queues")
		}
	}
}

func TestUGALDivertsUnderCongestion(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	dst := int32(d.NumEndpoints() - 1)
	f := headFlit(0, dst)
	// Find the minimal first-hop port, then congest it heavily.
	min := r.Route(f, 0, flatOracle(0))
	oracle := mapOracle{min.Out: 10000}
	diverted := 0
	for trial := 0; trial < 100; trial++ {
		f := headFlit(0, dst)
		dec := r.Route(f, 0, oracle)
		if dec.NonMinimal {
			diverted++
			if dec.MidGroup < 0 {
				t.Fatal("divert without intermediate group")
			}
		}
	}
	if diverted == 0 {
		t.Fatal("never diverted despite 10000-flit minimal queue")
	}
}

func TestProgressiveReevaluationAtGateway(t *testing.T) {
	// A packet routed minimally from a non-gateway switch keeps
	// PhaseInject across the local hop, so the gateway can still divert.
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	// Choose src/dst so the minimal route needs a local hop first:
	// scan sources until the first decision is a local port.
	found := false
	for src := 0; src < d.NumEndpoints() && !found; src++ {
		for dst := 0; dst < d.NumEndpoints(); dst++ {
			if d.Group(src/d.P) == d.Group(dst/d.P) || src == dst {
				continue
			}
			f := headFlit(int32(src), int32(dst))
			sw, _ := d.EndpointSwitch(src)
			dec := r.Route(f, sw, flatOracle(0))
			if d.PortClass(dec.Out) == topo.Local && !dec.NonMinimal {
				if dec.Phase != proto.PhaseInject {
					t.Fatal("local minimal first hop must stay progressive")
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no local-first minimal route found to exercise progressiveness")
	}
}

func TestValiantCommitmentIsFinal(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	dst := int32(d.NumEndpoints() - 1)
	f := headFlit(0, dst)
	min := r.Route(f, 0, flatOracle(0))
	oracle := mapOracle{min.Out: 10000}
	// Force a divert.
	var dec Decision
	for {
		f = headFlit(0, dst)
		dec = r.Route(f, 0, oracle)
		if dec.NonMinimal {
			break
		}
	}
	f.Phase = dec.Phase
	f.MidGroup = dec.MidGroup
	if f.Phase != proto.PhaseToMid {
		t.Fatalf("diverted packet in phase %v", f.Phase)
	}
	// At the next switch the packet must keep heading to the mid group
	// even with empty queues.
	nsw, _ := d.Neighbor(0, dec.Out)
	f.Hops++
	dec2 := r.Route(f, nsw, flatOracle(0))
	if dec2.Phase == proto.PhaseInject {
		t.Fatal("Valiant commitment reopened")
	}
}

func TestRandomMidGroupExcludesSrcAndDst(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	for trial := 0; trial < 2000; trial++ {
		g, dstG := 3, 7
		m := r.randomMidGroup(g, dstG)
		if m == g || m == dstG || m < 0 || m >= d.Groups() {
			t.Fatalf("mid group %d invalid for src %d dst %d", m, g, dstG)
		}
	}
}

func TestRandomMidGroupCoversAll(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	seen := map[int]bool{}
	for trial := 0; trial < 5000; trial++ {
		seen[r.randomMidGroup(0, 1)] = true
	}
	if len(seen) != d.Groups()-2 {
		t.Fatalf("mid groups seen %d, want %d", len(seen), d.Groups()-2)
	}
}

func TestIntraGroupRoutesAreLocal(t *testing.T) {
	d := topo.Dragonfly{P: 2, A: 4, H: 2}
	r := newRouter(d, true)
	// src and dst in the same group, different switches.
	src, dst := 0, d.P*2 // switch 0 and switch 2 of group 0
	f := headFlit(int32(src), int32(dst))
	dec := r.Route(f, 0, flatOracle(1000))
	if d.PortClass(dec.Out) != topo.Local {
		t.Fatalf("intra-group route used %v port", d.PortClass(dec.Out))
	}
	if dec.NonMinimal {
		t.Fatal("intra-group route diverted")
	}
	// One local hop must reach the destination switch.
	nsw, _ := d.Neighbor(0, dec.Out)
	if nsw != 2 {
		t.Fatalf("local hop landed at switch %d, want 2", nsw)
	}
}
