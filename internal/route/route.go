// Package route implements progressive adaptive routing (PAR-style) for
// canonical dragonfly networks, using six virtual channels for deadlock
// freedom as in the paper's "PAR6/2" configuration.
//
// Deadlock avoidance: a packet's VC on each switch-to-switch channel equals
// the number of such channels it has already traversed. The longest legal
// path (local divert at the source-group gateway) uses six channels
// (l-l-g-l-g-l), so VCs increase monotonically 0..5 along every path and the
// channel-dependency graph is acyclic.
//
// Progressiveness: the minimal-vs-Valiant decision is made at injection and
// may be re-made at the source-group switch holding the minimal global link
// ("2" decision points); once a packet commits to a Valiant path or crosses
// a global link the decision is final.
package route

import (
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
)

// Params tunes the adaptive decision.
type Params struct {
	// Bias multiplies the non-minimal queue estimate (UGAL's factor 2:
	// a Valiant path is roughly twice as long as a minimal one).
	Bias int
	// Threshold is added to the biased non-minimal estimate; it damps
	// spurious diverts at low load. In flits.
	Threshold int
	// Adaptive disables Valiant diverts entirely when false (minimal
	// routing), used by unit tests and ablations.
	Adaptive bool
}

// DefaultParams returns the configuration used by the experiments. The
// threshold is calibrated against the output-queue signal (which includes
// the column-buffer backlog): low enough that hotspot victims divert, high
// enough that uniform traffic near saturation stays minimal — with the
// paper's sizes, spurious diverts below this cost ~6% saturation
// throughput.
func DefaultParams() Params {
	return Params{Bias: 2, Threshold: 12 * proto.MaxPacketFlits, Adaptive: true}
}

// Oracle exposes the switch state the adaptive decision inspects: the
// queued occupancy (flits awaiting transmission) of each output port.
type Oracle interface {
	OutputQueue(port int) int
}

// Decision is the outcome of routing a head flit at one switch.
type Decision struct {
	Out        int   // output port at this switch
	NextVC     uint8 // VC on the outgoing channel (unused for ejection)
	Eject      bool  // Out is an endpoint port
	Phase      proto.RoutePhase
	MidGroup   int16
	NonMinimal bool
}

// Router routes packets over one dragonfly.
type Router struct {
	D      topo.Dragonfly
	Params Params
	rng    *sim.RNG
}

// New builds a Router. The RNG drives Valiant intermediate-group choices.
func New(d topo.Dragonfly, p Params, rng *sim.RNG) *Router {
	return &Router{D: d, Params: p, rng: rng}
}

// minimalPort returns the output port at switch sw that advances minimally
// toward group tg (tg != group(sw) implies a global or local hop; tg ==
// group(sw) routes within the group toward switch tsw).
func (r *Router) minimalPort(sw, tg, tsw int) int {
	d := r.D
	g := d.Group(sw)
	if g == tg {
		// Within the destination (or intermediate) group.
		return d.LocalPortTo(d.SwitchInGroup(sw), d.SwitchInGroup(tsw))
	}
	k := d.GlobalLinkIndex(g, tg)
	owner := d.SwitchID(g, k/d.H)
	if owner == sw {
		return d.GlobalPort(k % d.H)
	}
	return d.LocalPortTo(d.SwitchInGroup(sw), d.SwitchInGroup(owner))
}

// gatewaySwitch returns the switch in group g owning the global link toward
// group tg.
func (r *Router) gatewaySwitch(g, tg int) int {
	d := r.D
	k := d.GlobalLinkIndex(g, tg)
	return d.SwitchID(g, k/d.H)
}

// Route computes the routing decision for head flit f at switch sw.
// The oracle supplies output-queue depths for the adaptive choice.
func (r *Router) Route(f *proto.Flit, sw int, oracle Oracle) Decision {
	d := r.D
	dstSw, dstPort := d.EndpointSwitch(int(f.Dst))
	if sw == dstSw {
		return Decision{Out: dstPort, Eject: true, Phase: proto.PhaseMinimal, MidGroup: -1}
	}
	g := d.Group(sw)
	dstG := d.Group(dstSw)
	nextVC := f.Hops
	if nextVC >= proto.NumNetVCs {
		nextVC = proto.NumNetVCs - 1
	}

	phase := f.Phase
	mid := f.MidGroup
	nonMin := f.Flags&proto.FlagNonMinimal != 0

	if phase == proto.PhaseToMid {
		if int(mid) == g {
			phase = proto.PhaseMinimal
		} else {
			return Decision{
				Out:        r.minimalPort(sw, int(mid), r.gatewaySwitch(g, int(mid))),
				NextVC:     nextVC,
				Phase:      proto.PhaseToMid,
				MidGroup:   mid,
				NonMinimal: true,
			}
		}
	}

	if phase == proto.PhaseInject && g == dstG {
		// Intra-group destination: route minimally. (Valiant within a
		// group is not modeled; intra-group paths are at most one hop.)
		phase = proto.PhaseMinimal
	}

	if phase == proto.PhaseInject {
		minOut := r.minimalPort(sw, dstG, r.gatewaySwitch(g, dstG))
		if !r.Params.Adaptive {
			return r.commitMinimal(f, sw, minOut, nextVC, dstG)
		}
		// Candidate Valiant intermediate group.
		midG := r.randomMidGroup(g, dstG)
		nonOut := r.minimalPort(sw, midG, r.gatewaySwitch(g, midG))
		qMin := oracle.OutputQueue(minOut)
		qNon := oracle.OutputQueue(nonOut)
		if qMin > r.Params.Bias*qNon+r.Params.Threshold {
			return Decision{
				Out:        nonOut,
				NextVC:     nextVC,
				Phase:      proto.PhaseToMid,
				MidGroup:   int16(midG),
				NonMinimal: true,
			}
		}
		return r.commitMinimal(f, sw, minOut, nextVC, dstG)
	}

	// Committed minimal (or Valiant past its intermediate group). Within
	// the destination group the local hop targets the destination switch
	// itself; otherwise it heads for the gateway owning the global link.
	tsw := dstSw
	if g != dstG {
		tsw = r.gatewaySwitch(g, dstG)
	}
	return Decision{
		Out:        r.minimalPort(sw, dstG, tsw),
		NextVC:     nextVC,
		Phase:      proto.PhaseMinimal,
		MidGroup:   mid,
		NonMinimal: nonMin,
	}
}

// commitMinimal decides whether a minimally-routed packet stays in the
// progressive (re-decidable) state: it does so only while the next hop is a
// local hop inside the source group, i.e. the divert decision can be
// revisited at the gateway switch.
func (r *Router) commitMinimal(f *proto.Flit, sw, out int, nextVC uint8, dstG int) Decision {
	phase := proto.PhaseMinimal
	if r.D.PortClass(out) == topo.Local && f.Hops == 0 && r.Params.Adaptive {
		phase = proto.PhaseInject // gateway may still divert
	}
	return Decision{Out: out, NextVC: nextVC, Phase: phase, MidGroup: -1}
}

// randomMidGroup picks a uniformly random group distinct from both the
// source and destination groups.
func (r *Router) randomMidGroup(g, dstG int) int {
	n := r.D.Groups()
	m := r.rng.Intn(n - 2)
	if m >= g || m >= dstG {
		// Skip over the excluded groups in ascending order.
		lo, hi := g, dstG
		if lo > hi {
			lo, hi = hi, lo
		}
		if m >= lo {
			m++
		}
		if m >= hi {
			m++
		}
	}
	return m
}
