package harness

import (
	"fmt"

	"stashsim/internal/stats"
	"stashsim/internal/trace"
	"stashsim/internal/tracegen"
)

// Fig6 reproduces Figure 6: execution time of the six DesignForward MPI
// application traces, on the baseline and the three end-to-end-reliability
// stash networks, normalized to the baseline. Ranks map contiguously onto
// endpoints, one rank per endpoint, with no computation time.
//
// Expected shape (paper): the low-load traces (AMR, MiniFE, MultiGrid,
// AMG) are within noise of 1.0 on every stash network; the bandwidth-bound
// traces (BIGFFT, FillBoundary) degrade visibly only at 25% capacity; some
// traces run slightly *faster* with stashing because the capacity limit
// self-paces endpoints and softens congestion.
func Fig6(o *Options) (*stats.Table, error) {
	t := &stats.Table{Header: []string{"Trace", "Ranks"}}
	for _, v := range e2eVariants() {
		t.Header = append(t.Header, v.name)
	}

	scale := tracegen.DefaultScale()
	base := o.base()
	scale.Ranks = base.Topo.NumEndpoints()
	if o.Quick {
		// Benchmark mode: smaller grids and fewer iterations.
		if scale.Ranks > 64 {
			scale.Ranks = 64
		}
		scale.Iters = 0.4
	}

	budget := o.scaleDur(3_000_000)
	for _, app := range tracegen.Apps() {
		tr := app.Generate(scale)
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		row := []string{app.Name, fmt.Sprint(tr.Ranks)}
		var baseCycles int64
		for i, v := range e2eVariants() {
			cfg := o.netConfig(v.mode, v.capFrac, false)
			n := o.mustNet(cfg)
			o.watchNet(n, budget/4)
			rp, err := trace.NewReplay(tr, n, 0)
			if err != nil {
				return nil, err
			}
			cycles, err := rp.Run(budget)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				baseCycles = cycles
			}
			row = append(row, fmtF(float64(cycles)/float64(baseCycles), 3))
			o.logf("fig6 %s %s: %d cycles (%.2f us) norm=%.3f",
				app.Name, v.name, cycles, cyclesToUS(cycles), float64(cycles)/float64(baseCycles))
		}
		t.AddRow(row...)
	}
	return t, o.writeCSV("fig6_traces", t)
}
