package harness

import (
	"fmt"

	"stashsim/internal/stats"
	"stashsim/internal/trace"
	"stashsim/internal/tracegen"
)

// Fig6 reproduces Figure 6: execution time of the six DesignForward MPI
// application traces, on the baseline and the three end-to-end-reliability
// stash networks, normalized to the baseline. Ranks map contiguously onto
// endpoints, one rank per endpoint, with no computation time.
//
// Expected shape (paper): the low-load traces (AMR, MiniFE, MultiGrid,
// AMG) are within noise of 1.0 on every stash network; the bandwidth-bound
// traces (BIGFFT, FillBoundary) degrade visibly only at 25% capacity; some
// traces run slightly *faster* with stashing because the capacity limit
// self-paces endpoints and softens congestion.
func Fig6(o *Options) (*stats.Table, error) {
	t := &stats.Table{Header: []string{"Trace", "Ranks"}}
	for _, v := range e2eVariants() {
		t.Header = append(t.Header, v.name)
	}

	scale := tracegen.DefaultScale()
	base := o.base()
	scale.Ranks = base.Topo.NumEndpoints()
	if o.Quick {
		// Benchmark mode: smaller grids and fewer iterations.
		if scale.Ranks > 64 {
			scale.Ranks = 64
		}
		scale.Iters = 0.4
	}

	budget := o.scaleDur(3_000_000)
	apps := tracegen.Apps()
	variants := e2eVariants()
	// Generate each trace once up front; replays share it read-only (every
	// Replay owns its bookkeeping maps), so all (app, variant) design
	// points are independent and fan out over the sweep pool. Row i of the
	// table normalizes against its own variant-0 run, which is why results
	// are collected by index and assembled only after every point is done.
	traces := make([]*trace.Trace, len(apps))
	for ai, app := range apps {
		traces[ai] = app.Generate(scale)
		if err := traces[ai].Validate(); err != nil {
			return nil, err
		}
	}
	cycles := make([]int64, len(apps)*len(variants))
	err := o.forEachPoint(len(cycles), func(i int) error {
		app := apps[i/len(variants)]
		v := variants[i%len(variants)]
		cfg := o.netConfig(v.mode, v.capFrac, false)
		n := o.mustNet(cfg)
		o.watchNet(n, budget/4)
		rp, err := trace.NewReplay(traces[i/len(variants)], n, 0)
		if err != nil {
			return err
		}
		c, err := rp.Run(budget)
		if err != nil {
			return err
		}
		cycles[i] = c
		o.logf("fig6 %s %s: %d cycles (%.2f us)", app.Name, v.name, c, cyclesToUS(c))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ai, app := range apps {
		row := []string{app.Name, fmt.Sprint(traces[ai].Ranks)}
		baseCycles := cycles[ai*len(variants)]
		for vi := range variants {
			row = append(row, fmtF(float64(cycles[ai*len(variants)+vi])/float64(baseCycles), 3))
		}
		t.AddRow(row...)
	}
	return t, o.writeCSV("fig6_traces", t)
}
