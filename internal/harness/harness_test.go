package harness

import (
	"strconv"
	"strings"
	"testing"
)

func testOpts(t *testing.T) *Options {
	t.Helper()
	return &Options{
		Preset:     "tiny",
		Quick:      true,
		Seed:       1,
		Invariants: true,
		Log:        func(format string, args ...any) { t.Logf(format, args...) },
	}
}

func cell(tb interface {
	Fatalf(string, ...any)
}, row []string, i int) float64 {
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		tb.Fatalf("cell %d = %q: %v", i, row[i], err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	total := tab.Rows[3]
	if !strings.HasPrefix(total[3], "72.") {
		t.Fatalf("total underutilization %q, paper says ~72%%", total[3])
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d applications", len(tab.Rows))
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	lat, acc, err := Fig5(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) == 0 || len(acc.Rows) == 0 {
		t.Fatal("empty tables")
	}
	// At the lowest load every network accepts what is offered.
	first := acc.Rows[0]
	load := cell(t, first, 0)
	for i := 1; i < len(first); i++ {
		if v := cell(t, first, i); v < load*0.95 || v > load*1.05 {
			t.Fatalf("network %d accepted %.3f at offered %.3f", i, v, load)
		}
	}
	// At the highest load, the 25%-capacity network accepts the least.
	last := acc.Rows[len(acc.Rows)-1]
	base, s25 := cell(t, last, 1), cell(t, last, 4)
	if s25 >= base {
		t.Fatalf("stash-25%% (%.3f) did not saturate below baseline (%.3f)", s25, base)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r, err := Fig7(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// Percentile table rows: reference, baseline, stash100, stash50.
	if len(r.InvCDF.Rows) != 4 {
		t.Fatalf("%d distribution rows", len(r.InvCDF.Rows))
	}
	// Columns: Network, p50, p90, p99, ...
	ref90 := cell(t, r.InvCDF.Rows[0], 2)
	base90 := cell(t, r.InvCDF.Rows[1], 2)
	base99 := cell(t, r.InvCDF.Rows[1], 3)
	stash99 := cell(t, r.InvCDF.Rows[2], 3)
	if base90 <= ref90 {
		t.Fatalf("aggressor did not hurt the baseline (p90 %.0f vs ref %.0f)", base90, ref90)
	}
	// On the tiny test network the distribution is noisy; require the
	// stash tail to be no worse than the baseline's (the full-scale shape
	// check lives in the small/paper-preset runs of cmd/figures).
	if stash99 > base99*1.05 {
		t.Fatalf("stashing worsened victim p99 (%.0f vs baseline %.0f)", stash99, base99)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	tab, err := Fig9(testOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// The tiny network cannot reproduce the paper's absolute ordering
	// (its victims cannot even sustain 40%% load against a saturating
	// aggressor half), so assert the structural properties only: the
	// baseline's tail latency must grow from the smallest to the
	// intermediate burst sizes (the ECN transient blind spot), and the
	// stash columns must be populated and bounded. The paper-shape
	// ordering is asserted against the small-preset results recorded in
	// EXPERIMENTS.md.
	first, mid := tab.Rows[0], tab.Rows[len(tab.Rows)/2]
	if cell(t, mid, 1) <= cell(t, first, 1) {
		t.Fatalf("baseline p90 did not grow with burstiness: %v -> %v", first, mid)
	}
	for _, row := range tab.Rows {
		for i := 1; i < len(row); i++ {
			if v := cell(t, row, i); v <= 0 || v > 1000 {
				t.Fatalf("implausible p90 %v in row %v", v, row)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	o := testOpts(t)
	tab, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d traces", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := cell(t, row, 2); v != 1.0 {
			t.Fatalf("%s baseline not normalized to 1.0: %v", row[0], v)
		}
		// Stash networks may differ but must stay within a sane factor.
		for i := 3; i < len(row); i++ {
			if v := cell(t, row, i); v < 0.5 || v > 3.0 {
				t.Fatalf("%s variant %d runtime ratio %.2f implausible", row[0], i, v)
			}
		}
	}
}

func TestCSVOutput(t *testing.T) {
	o := testOpts(t)
	o.OutDir = t.TempDir()
	if _, err := Table1(o); err != nil {
		t.Fatal(err)
	}
	if _, err := Table2(o); err != nil {
		t.Fatal(err)
	}
}
