package harness

import (
	"stashsim/internal/core"
	"stashsim/internal/endpoint"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

// hotspotScenario wires the Figure 7 workload onto a network: a victim
// uniform-random pattern at 40% load on all non-aggressor endpoints, and
// an aggressor of 4:1 oversubscribed hotspots (4 sources streaming to each
// of `spots` destinations at maximum rate) activating at `start`.
type hotspotScenario struct {
	n      *network.Network
	dsts   []int32
	srcs   []int32
	spotSw int // switch of the first hotspot destination
}

func newHotspot(o *Options, cfg *core.Config, start sim.Tick) *hotspotScenario {
	n := o.mustNet(cfg)
	d := cfg.Topo
	rng := sim.NewRNG(cfg.Seed + 2000)
	// Scale the paper's 48-source/12-destination aggressor with network
	// size: one hotspot destination per ~256 endpoints, at least 2.
	spots := len(n.Endpoints) / 256
	if spots < 2 {
		spots = 2
	}
	srcPer := 4
	// Spread hotspot destinations across distinct groups: pick endpoint 0
	// of the first switch of evenly spaced groups.
	sc := &hotspotScenario{n: n}
	groups := d.Groups()
	for i := 0; i < spots; i++ {
		g := (i*groups)/spots + 1
		if g >= groups {
			g -= groups
		}
		sw := d.SwitchID(g%groups, 0)
		sc.dsts = append(sc.dsts, int32(d.EndpointID(sw, 0)))
	}
	sc.spotSw, _ = d.EndpointSwitch(int(sc.dsts[0]))
	isDst := make(map[int32]bool, len(sc.dsts))
	for _, dst := range sc.dsts {
		isDst[dst] = true
	}
	// Aggressor sources: evenly spaced endpoints that are neither hotspot
	// destinations nor on a hotspot switch.
	isSrc := make(map[int32]bool)
	step := len(n.Endpoints) / (spots*srcPer + 1)
	if step < 1 {
		step = 1
	}
	for i := 0; len(sc.srcs) < spots*srcPer; i += step {
		id := int32(i % len(n.Endpoints))
		for isDst[id] || isSrc[id] {
			id = (id + 1) % int32(len(n.Endpoints))
		}
		isSrc[id] = true
		sc.srcs = append(sc.srcs, id)
	}
	rate := n.ChannelRate()
	k := 0
	for _, ep := range n.Endpoints {
		switch {
		case isSrc[ep.ID]:
			dst := sc.dsts[k%len(sc.dsts)]
			k++
			ep.Gen = traffic.Hotspot(dst, proto.MaxPacketFlits, proto.ClassAggressor, start)
		case isDst[ep.ID]:
			// Hotspot destinations only receive.
		default:
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.4, rate, proto.MaxPacketFlits, proto.ClassVictim, 0)
		}
	}
	o.logf("fig7 scenario: %d hotspots x %d sources on %d endpoints (spot switch %d)",
		spots, srcPer, len(n.Endpoints), sc.spotSw)
	return sc
}

// Fig7Result carries the three outputs of the Figure 7/8 runs.
type Fig7Result struct {
	Series *stats.Table // Fig 7a: victim mean latency per time bin
	InvCDF *stats.Table // Fig 7b: inverse cumulative latency distribution
	Stash  *stats.Table // Fig 8: hotspot-switch stash utilization + aggressor load
}

// Fig7 reproduces Figures 7a, 7b and 8: the transient response of an
// ECN-controlled network to the onset of a 4:1 hotspot aggressor, with and
// without congestion stashing, plus a no-aggressor baseline reference for
// the latency distribution.
//
// Expected shape (paper): at aggressor onset the baseline victim's mean
// latency spikes and its distribution grows a long tail; stashing absorbs
// the transient (flatter time series, tail cut to a few times the best
// case, more with 100% than 50% capacity); the hotspot switch's stash
// fills at onset and drains once ECN throttles the aggressor's offered
// load from ~4 to ~1 flit/cycle.
func Fig7(o *Options) (*Fig7Result, error) {
	start := o.scaleDur(usToCycles(20))
	total := o.scaleDur(usToCycles(100))
	bin := usToCycles(1)
	if o.Quick {
		bin = usToCycles(0.5)
	}

	type runOut struct {
		name   string
		series *stats.TimeSeries
		hist   *stats.Hist
		stash  []float64 // per-bin stash utilization of the hotspot switch
		agg    []float64 // per-bin aggressor offered load (flits/channel-cycle)
	}

	// The three ECN variants plus the no-aggressor reference are four
	// independent design points; runs[i] holds variant i, the last point
	// fills refHist.
	variants := congVariants()
	runs := make([]runOut, len(variants))
	var refHist *stats.Hist
	err := o.forEachPoint(len(variants)+1, func(i int) error {
		if i == len(variants) {
			// No-aggressor reference for Fig 7b.
			refCfg := o.netConfig(core.StashOff, 1.0, true)
			refSc := newHotspot(o, refCfg, 1<<62) // aggressor never starts
			refSc.n.Collectors.WithHist(proto.ClassVictim)
			refSc.n.Run(total)
			refHist = refSc.n.Collector().LatHist[proto.ClassVictim]
			return nil
		}
		v := variants[i]
		cfg := o.netConfig(v.mode, v.capFrac, true)
		sc := newHotspot(o, cfg, start)
		n := sc.n
		n.Collectors.WithHist(proto.ClassVictim)
		n.Collectors.WithSeries(proto.ClassVictim, bin)

		// Fig 8 probes on the first hotspot switch: stash utilization and
		// the offered load of its four aggressor sources.
		spotSw := n.Switches[sc.spotSw]
		var stashUtil, aggLoad []float64
		var lastSent int64
		srcsOfSpot := make([]*endpoint.Endpoint, 0, 4)
		for si, src := range sc.srcs {
			if sc.dsts[si%len(sc.dsts)] == sc.dsts[0] {
				srcsOfSpot = append(srcsOfSpot, n.Endpoints[src])
			}
		}
		probe := func() {
			capTotal := spotSw.StashCapTotal()
			util := 0.0
			if capTotal > 0 {
				util = float64(spotSw.StashUsed()) / float64(capTotal)
			}
			var sent int64
			for _, ep := range srcsOfSpot {
				sent += ep.SentFlits
			}
			perCycle := float64(sent-lastSent) / float64(bin) / n.ChannelRate()
			lastSent = sent
			stashUtil = append(stashUtil, util)
			aggLoad = append(aggLoad, perCycle)
		}
		for t := int64(0); t < total; t += bin {
			n.Run(bin)
			probe()
		}
		c := n.Collector()
		runs[i] = runOut{v.name, c.Series[proto.ClassVictim],
			c.LatHist[proto.ClassVictim], stashUtil, aggLoad}
		o.logf("fig7 %s: victim mean=%.0fns p99=%.0fns stashPeak=%.2f",
			v.name, c.LatAcc[proto.ClassVictim].Mean()/1.3,
			float64(runs[i].hist.Percentile(99))/1.3, maxOf(stashUtil))
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Fig 7a table.
	series := &stats.Table{Header: []string{"TimeUS"}}
	for _, r := range runs {
		series.Header = append(series.Header, r.name)
	}
	bins := 0
	for _, r := range runs {
		if len(r.series.Bins()) > bins {
			bins = len(r.series.Bins())
		}
	}
	for b := 0; b < bins; b++ {
		row := []string{fmtF(cyclesToUS(int64(b)*bin), 1)}
		for _, r := range runs {
			v := 0.0
			if b < len(r.series.Bins()) && r.series.Bins()[b].N > 0 {
				v = r.series.Bins()[b].Mean() / 1.3 / 1000 // us
			}
			row = append(row, fmtF(v, 3))
		}
		series.AddRow(row...)
	}

	// Fig 7b table: inverse CDF at fixed fractions.
	inv := &stats.Table{Header: []string{"Network", "p50ns", "p90ns", "p99ns", "p99.9ns", "p99.99ns", "maxns"}}
	addDist := func(name string, h *stats.Hist) {
		inv.AddRow(name,
			fmtF(float64(h.Percentile(50))/1.3, 0),
			fmtF(float64(h.Percentile(90))/1.3, 0),
			fmtF(float64(h.Percentile(99))/1.3, 0),
			fmtF(float64(h.Percentile(99.9))/1.3, 0),
			fmtF(float64(h.Percentile(99.99))/1.3, 0),
			fmtF(h.Max()/1.3, 0))
	}
	addDist("Baseline w/o Aggressor", refHist)
	for _, r := range runs {
		addDist(r.name, r.hist)
	}

	// Full inverse-CDF curves as CSV (one file, long format).
	curves := &stats.Table{Header: []string{"Network", "LatencyNS", "FractionAbove"}}
	emit := func(name string, h *stats.Hist) {
		for _, p := range h.InverseCDF() {
			curves.AddRow(name, fmtF(float64(p.Value)/1.3, 0), fmtF(p.Fraction, 8))
		}
	}
	emit("Baseline w/o Aggressor", refHist)
	for _, r := range runs {
		emit(r.name, r.hist)
	}

	// Fig 8 table.
	stash := &stats.Table{Header: []string{"TimeUS"}}
	for _, r := range runs[1:] { // stash networks only
		stash.Header = append(stash.Header, r.name+" Util", r.name+" AggLoad")
	}
	for b := 0; b < bins; b++ {
		row := []string{fmtF(cyclesToUS(int64(b)*bin), 1)}
		for _, r := range runs[1:] {
			u, a := 0.0, 0.0
			if b < len(r.stash) {
				u, a = r.stash[b], r.agg[b]
			}
			row = append(row, fmtF(u, 4), fmtF(a, 3))
		}
		stash.AddRow(row...)
	}

	if err := o.writeCSV("fig7a_series", series); err != nil {
		return nil, err
	}
	if err := o.writeCSV("fig7b_invcdf", curves); err != nil {
		return nil, err
	}
	if err := o.writeCSV("fig7b_percentiles", inv); err != nil {
		return nil, err
	}
	if err := o.writeCSV("fig8_stash", stash); err != nil {
		return nil, err
	}
	return &Fig7Result{Series: series, InvCDF: inv, Stash: stash}, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
