package harness

import (
	"stashsim/internal/core"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

// Ablations quantifies the design choices DESIGN.md calls out, on the
// end-to-end reliability configuration at full offered load (the regime
// where internal bandwidth and placement quality matter most):
//
//   - JSQ vs random stash placement (Section III-A's policy),
//   - the 1.3x internal speedup vs none (Section III-A's bandwidth fix),
//   - progressive adaptive vs minimal routing,
//   - two-bank interleaved port memory vs ideal multiported memory
//     (Section III-B).
//
// For each variant it reports saturation throughput, mean latency, and the
// stash-full stall count.
func Ablations(o *Options) (*stats.Table, error) {
	type ablation struct {
		name   string
		mutate func(*core.Config)
	}
	cases := []ablation{
		{"reference (JSQ, 1.3x, adaptive, ideal mem)", nil},
		{"random stash placement", func(c *core.Config) { c.RandomStashPlacement = true }},
		{"no internal speedup (1.0x)", func(c *core.Config) {
			c.RateNum, c.RateDen = 1, 1
			c.Lat.Endpoint = c.Lat.Endpoint * 10 / 13
			c.Lat.Local = c.Lat.Local * 10 / 13
			c.Lat.Global = c.Lat.Global * 10 / 13
		}},
		{"minimal routing", func(c *core.Config) { c.Route.Adaptive = false }},
		{"two-bank port memory", func(c *core.Config) { c.BankModel = true }},
		{"25% capacity + JSQ", func(c *core.Config) { c.StashCapFrac = 0.25 }},
		{"25% capacity + random placement", func(c *core.Config) {
			c.StashCapFrac = 0.25
			c.RandomStashPlacement = true
		}},
	}

	warm := o.scaleDur(8000)
	meas := o.scaleDur(16000)
	t := &stats.Table{Header: []string{"Variant", "Accepted", "MeanLatUS", "StashFullStalls", "BankConflicts"}}
	// Each ablation case is an independent design point.
	rows := make([][]string, len(cases))
	err := o.forEachPoint(len(cases), func(i int) error {
		a := cases[i]
		cfg := o.netConfig(core.StashE2E, 1.0, false)
		if a.mutate != nil {
			a.mutate(cfg)
		}
		n := o.mustNet(cfg)
		rng := sim.NewRNG(cfg.Seed + 4000)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			gen := rng.Derive(uint64(ep.ID))
			ep.Gen = traffic.Uniform(gen, len(n.Endpoints), nil,
				1.0, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
			ep.GenRNG = gen
		}
		if err := o.warm(n, "ablations", i, warm); err != nil {
			return err
		}
		n.Run(meas)
		c := n.Counters()
		var banks int64
		for _, s := range n.Switches {
			banks += s.BankConflicts()
		}
		// One internal cycle lasts RateNum/RateDen ns (the channel moves
		// one 10-byte flit per ns): 1/1.3 ns at the paper's speedup,
		// 1 ns at the 1.0x ablation.
		nsPerCycle := float64(cfg.RateNum) / float64(cfg.RateDen)
		rows[i] = []string{a.name,
			fmtF(n.NormalizedAccepted(meas), 3),
			fmtF(n.Collector().LatAcc[proto.ClassDefault].Mean()*nsPerCycle/1000, 3),
			fmtF(float64(c.StashFullStalls), 0),
			fmtF(float64(banks), 0)}
		o.logf("ablation %q: accepted=%.3f", a.name, n.NormalizedAccepted(meas))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, o.writeCSV("ablations", t)
}
