package harness

import (
	"fmt"

	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

// Fig9 reproduces Figure 9: victim 90th-percentile latency when sharing
// the network with a bursty "bandwidth hog". The victim runs uniform
// random at 40% load on half the endpoints; the aggressor runs uniform
// random at maximum rate on the other half, with message sizes swept from
// 1 to 512 packets per message. ECN is enabled everywhere.
//
// Expected shape (paper): the stash networks stay flat and always below
// the baseline; the baseline's tail latency climbs with burst size,
// peaking at intermediate bursts (congestion too brief for ECN, too long
// to ignore) before ECN's steady state recovers it at the largest sizes.
func Fig9(o *Options) (*stats.Table, error) {
	bursts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	if o.Quick {
		bursts = []int{1, 8, 64, 512}
	}
	warm := o.scaleDur(usToCycles(8))
	meas := o.scaleDur(usToCycles(25))

	variants := congVariants()
	t := &stats.Table{Header: []string{"BurstPkts"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name+" p90us")
	}

	// Every (burst, variant) pair is an independent design point.
	cells := make([]string, len(bursts)*len(variants))
	err := o.forEachPoint(len(cells), func(i int) error {
		b := bursts[i/len(variants)]
		v := variants[i%len(variants)]
		{
			cfg := o.netConfig(v.mode, v.capFrac, true)
			n := o.mustNet(cfg)
			n.Collectors.WithHist(proto.ClassVictim)
			rng := sim.NewRNG(cfg.Seed + 3000)
			rate := n.ChannelRate()
			half := len(n.Endpoints) / 2
			victims := make([]int32, 0, half)
			aggressors := make([]int32, 0, half)
			// Interleave halves so both classes spread over all switches.
			for _, ep := range n.Endpoints {
				if ep.ID%2 == 0 {
					victims = append(victims, ep.ID)
				} else {
					aggressors = append(aggressors, ep.ID)
				}
			}
			for _, ep := range n.Endpoints {
				r := rng.Derive(uint64(ep.ID))
				if ep.ID%2 == 0 {
					ep.Gen = traffic.Uniform(r, len(n.Endpoints), victims,
						0.4, rate, proto.MaxPacketFlits, proto.ClassVictim, 0)
				} else {
					ep.Gen = traffic.Saturating(r, len(n.Endpoints), aggressors,
						b*proto.MaxPacketFlits, proto.ClassAggressor, 0, 0)
				}
				ep.GenRNG = r
			}
			if err := o.warm(n, "fig9", i, warm); err != nil {
				return err
			}
			n.Run(meas)
			c := n.Collector()
			h := c.LatHist[proto.ClassVictim]
			p90us := float64(h.Percentile(90)) / 1.3 / 1000
			cells[i] = fmtF(p90us, 3)
			o.logf("fig9 burst=%d %s: victim p90=%.3fus mean=%.3fus acceptedV=%.3f",
				b, v.name, p90us,
				c.LatAcc[proto.ClassVictim].Mean()/1.3/1000,
				float64(c.DeliveredFlits[proto.ClassVictim])/float64(meas)/float64(half)/rate)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, b := range bursts {
		row := []string{fmt.Sprint(b)}
		for vi := range variants {
			row = append(row, cells[bi*len(variants)+vi])
		}
		t.AddRow(row...)
	}
	return t, o.writeCSV("fig9_burst", t)
}
