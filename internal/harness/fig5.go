package harness

import (
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

// Fig5 reproduces Figures 5a and 5b: uniform-random single-packet-message
// traffic with end-to-end reliability stashing, swept over offered load
// for the baseline and the 100/50/25% stash-capacity networks. It returns
// the latency-vs-load table (5a) and the offered-vs-accepted table (5b).
//
// Expected shape (paper): baseline, 100% and 50% curves are nearly
// identical, saturating near 90% (ACK bandwidth); 25% saturates early, at
// the Little's-law limit of its per-endpoint stash share (~75-78%).
func Fig5(o *Options) (*stats.Table, *stats.Table, error) {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		loads = []float64{0.2, 0.5, 0.8, 1.0}
	}
	warm := o.scaleDur(10000)
	meas := o.scaleDur(25000)

	variants := e2eVariants()
	lat := &stats.Table{Header: []string{"OfferedLoad"}}
	acc := &stats.Table{Header: []string{"OfferedLoad"}}
	for _, v := range variants {
		lat.Header = append(lat.Header, v.name)
		acc.Header = append(acc.Header, v.name)
	}

	// Every (load, variant) pair is an independent design point; fan them
	// out and assemble the tables in index order afterwards.
	type cell struct{ lat, acc string }
	cells := make([]cell, len(loads)*len(variants))
	err := o.forEachPoint(len(cells), func(i int) error {
		load := loads[i/len(variants)]
		v := variants[i%len(variants)]
		cfg := o.netConfig(v.mode, v.capFrac, false)
		n := o.mustNet(cfg)
		rng := sim.NewRNG(cfg.Seed + 1000)
		rate := n.ChannelRate()
		for _, ep := range n.Endpoints {
			gen := rng.Derive(uint64(ep.ID))
			ep.Gen = traffic.Uniform(gen, len(n.Endpoints), nil,
				load, rate, proto.MaxPacketFlits, proto.ClassDefault, 0)
			ep.GenRNG = gen
		}
		if err := o.warm(n, "fig5", i, warm); err != nil {
			return err
		}
		n.Run(meas)
		meanNS := n.Collector().LatAcc[proto.ClassDefault].Mean() / 1.3
		cells[i] = cell{fmtF(meanNS/1000, 3), fmtF(n.NormalizedAccepted(meas), 3)} // us
		o.logf("fig5 load=%.2f %s: lat=%.3fus acc=%.3f", load, v.name,
			meanNS/1000, n.NormalizedAccepted(meas))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for li, load := range loads {
		latRow := []string{fmtF(load, 2)}
		accRow := []string{fmtF(load, 2)}
		for vi := range variants {
			c := cells[li*len(variants)+vi]
			latRow = append(latRow, c.lat)
			accRow = append(accRow, c.acc)
		}
		lat.AddRow(latRow...)
		acc.AddRow(accRow...)
	}
	if err := o.writeCSV("fig5a_latency", lat); err != nil {
		return nil, nil, err
	}
	return lat, acc, o.writeCSV("fig5b_throughput", acc)
}
