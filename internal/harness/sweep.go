package harness

import (
	"fmt"
	"runtime"

	"stashsim/internal/sim"
)

// workers returns the sweep-level worker count: Options.Workers when
// positive, otherwise GOMAXPROCS.
func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachPoint is the parallel sweep runner: it evaluates fn(i) for every
// design point i in [0, n) over the bounded worker pool (sim.ParallelFor)
// and returns the error of the lowest-indexed failed point, if any.
//
// The determinism contract: each point must be self-contained — build its
// own network, derive its own RNG stream from the config seed, record into
// its own collectors — and must publish results only into slots addressed
// by its own index (cells[i] = ...). Callers assemble tables strictly in
// index order after forEachPoint returns, never in completion order, so
// every table and CSV is byte-identical whether the sweep ran on one
// worker or sixteen. Progress logging may interleave; output must not.
//
// A panicking point (o.mustNet on a bad config) is reported as that
// point's error instead of killing the process from a worker goroutine.
func (o *Options) forEachPoint(n int, fn func(i int) error) error {
	errs := make([]error, n)
	sim.ParallelFor(o.workers(), n, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("harness: design point %d panicked: %v", i, r)
			}
		}()
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
