package harness

import (
	"fmt"

	"stashsim/internal/stats"
	"stashsim/internal/topo"
	"stashsim/internal/tracegen"
)

// Table1 reproduces Table I: the link asymmetry of a canonical dragonfly
// built from symmetric 100 m-provisioned switches, and the port-weighted
// buffer underutilization (the paper's ~72%).
func Table1(o *Options) (*stats.Table, error) {
	m := topo.PaperAsymmetry()
	t := &stats.Table{Header: []string{"LinkType", "Length", "PctOfPorts", "BuffersUnderutilized"}}
	names := map[topo.LinkClass]string{
		topo.Endpoint: "Endpoint",
		topo.Local:    "Intra-group",
		topo.Global:   "Inter-group",
	}
	for _, r := range m.Rows() {
		t.AddRow(names[r.Class],
			fmt.Sprintf("< %.0fm", r.MaxLengthM),
			fmtF(r.PortsPercent*100, 0),
			fmtF(r.Underutilized*100, 0)+"%")
	}
	t.AddRow("TOTAL", "", "100", fmtF(m.TotalUnderutilized()*100, 1)+"%")
	return t, o.writeCSV("table1", t)
}

// Table2 reproduces Table II: the DesignForward application trace
// inventory, synthesized by internal/tracegen at the paper's rank counts.
func Table2(o *Options) (*stats.Table, error) {
	t := &stats.Table{Header: []string{"Application", "Description", "Ranks", "Messages", "TotalMB"}}
	for _, app := range tracegen.Apps() {
		tr := app.Generate(tracegen.DefaultScale())
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		if tr.Ranks > app.PaperRanks {
			return nil, fmt.Errorf("harness: %s generated %d ranks > paper's %d", app.Name, tr.Ranks, app.PaperRanks)
		}
		t.AddRow(app.Name, app.Description,
			fmt.Sprint(tr.Ranks),
			fmt.Sprint(tr.TotalMessages()),
			fmtF(float64(tr.TotalBytes())/(1<<20), 1))
	}
	return t, o.writeCSV("table2", t)
}
