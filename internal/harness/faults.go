package harness

import (
	"fmt"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
	"stashsim/internal/traffic"
)

// Faults quantifies the recovery ladder of the fault-injection extension:
// under a sweep of per-link packet-drop rates, it compares stash-local
// recovery (StashE2E, where the first-hop stash retransmits from its
// retained copy on an ACK timeout) against source-endpoint recovery (the
// stashless baseline, where only the source's ACK timer can resend). The
// stash sits one hop from the source with a much shorter timeout, so its
// mean loss-to-delivery recovery latency should be well below the
// endpoint's — that gap is the supplemental-storage argument of the paper
// extended to reliability.
//
// Every variant's plan also fires four staggered stash-bank failures
// mid-measure. Under the stashless baseline they are no-ops; under plain
// StashLocal each invalidated copy silently degrades its packet to the
// endpoint ladder; under StashParity (the erasure-coded tier, k=4) the
// lost copies rebuild from parity-group survivors, keeping recovery
// stash-local — the _Recon column counts those rebuilds.
//
// Every run drains fully and asserts exactly-once delivery; a row is an
// error if any variant loses or double-delivers a packet.
func Faults(o *Options) (*stats.Table, error) {
	rates := []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2}
	if o.Quick {
		rates = []float64{1e-3, 5e-3}
	}
	warm := o.scaleDur(5000)
	meas := o.scaleDur(20000)
	const drainBudget = 2_000_000

	// Four bank failures on distinct switches, staggered through the
	// middle of the measured window (every preset has >= 4 switches).
	var fails []fault.StashFail
	for i := 0; i < 4; i++ {
		fails = append(fails, fault.StashFail{
			Switch: i, Port: 0, At: warm + meas/4 + int64(i)*meas/8})
	}

	type variant struct {
		name   string
		mode   core.StashMode
		parity int
	}
	variants := []variant{
		{"StashLocal", core.StashE2E, 0},
		{"StashParity", core.StashE2E, 4},
		{"Endpoint", core.StashOff, 0},
	}

	t := &stats.Table{Header: []string{"DropRate"}}
	for _, v := range variants {
		t.Header = append(t.Header,
			v.name+"_RecLat_us", v.name+"_Recovered", v.name+"_Resends", v.name+"_Dups",
			v.name+"_Recon")
	}

	// Every (rate, variant) pair is an independent design point producing
	// five table cells.
	cells := make([][5]string, len(rates)*len(variants))
	err := o.forEachPoint(len(cells), func(i int) error {
		rate := rates[i/len(variants)]
		v := variants[i%len(variants)]
		{
			cfg := o.netConfig(v.mode, 1.0, false)
			cfg.Retrans = core.DefaultRetrans()
			if v.mode == core.StashE2E {
				cfg.RetainPayload = true
			}
			cfg.StashParity = v.parity
			cfg.Fault = &fault.Plan{Seed: cfg.Seed + 101, LinkDropRate: rate,
				StashFailures: fails}
			n := o.mustNet(cfg)
			rng := sim.NewRNG(cfg.Seed + 2000)
			chRate := n.ChannelRate()
			for _, ep := range n.Endpoints {
				gen := rng.Derive(uint64(ep.ID))
				ep.Gen = traffic.Uniform(gen, len(n.Endpoints), nil,
					0.2, chRate, proto.MaxPacketFlits, proto.ClassDefault, 0)
				ep.GenRNG = gen
			}
			if err := o.warm(n, "faults", i, warm); err != nil {
				return err
			}
			n.Run(meas)
			for _, ep := range n.Endpoints {
				ep.Gen = nil
			}
			if !n.Drain(drainBudget) {
				return fmt.Errorf("faults: %s at rate %.0e did not drain in %d cycles",
					v.name, rate, int64(drainBudget))
			}
			if err := assertExactlyOnce(n); err != nil {
				return fmt.Errorf("faults: %s at rate %.0e: %w", v.name, rate, err)
			}
			c := n.Collector()
			nc := n.Counters()
			recUS := c.RecoveryAcc.Mean() / 1300 // cycles -> us
			resends := nc.E2ERetransmits + c.EndpointRetransmits
			cells[i] = [5]string{
				fmtF(recUS, 2),
				fmt.Sprintf("%d", c.RecoveredPkts),
				fmt.Sprintf("%d", resends),
				fmt.Sprintf("%d", c.DuplicatesSuppressed),
				fmt.Sprintf("%d", nc.StashReconstructed)}
			o.logf("faults rate=%.0e %s: recovered=%d recLat=%.2fus resends=%d recon=%d",
				rate, v.name, c.RecoveredPkts, recUS, resends, nc.StashReconstructed)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%.0e", rate)}
		for vi := range variants {
			row = append(row, cells[ri*len(variants)+vi][:]...)
		}
		t.AddRow(row...)
	}
	return t, o.writeCSV("faults_recovery", t)
}

// assertExactlyOnce verifies the drained network delivered every injected
// packet exactly once.
func assertExactlyOnce(n *network.Network) error {
	injected, delivered, _, abandoned := n.DeliveryTotals()
	if abandoned != 0 {
		return fmt.Errorf("%d packets abandoned", abandoned)
	}
	if delivered != injected {
		return fmt.Errorf("injected %d but delivered %d", injected, delivered)
	}
	return nil
}
