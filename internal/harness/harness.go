// Package harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment builds
// the networks it needs, runs the paper's workload, and emits the same
// rows/series the paper reports, as an aligned text table and as CSV.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"stashsim/internal/core"
	"stashsim/internal/fault"
	"stashsim/internal/network"
	"stashsim/internal/sim"
	"stashsim/internal/stats"
)

// Options selects the scale and duration of the experiments.
type Options struct {
	// Preset selects the network scale: "tiny", "small" (default), or
	// "paper" (the full 3080-node configuration of Section V).
	Preset string
	// OutDir, when non-empty, receives one CSV file per experiment.
	OutDir string
	// Quick shortens warmup/measurement windows (used by the benchmark
	// harness so `go test -bench` finishes in minutes).
	Quick bool
	// Seed is the master random seed.
	Seed uint64
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Invariants enables the runtime invariant checker on every network
	// the experiments build (the -invariants flag of cmd/figures).
	Invariants bool
	// InvariantsEvery is the audit interval in cycles; 0 means the
	// default of 64.
	InvariantsEvery int64
	// FaultPlan, when non-nil, is injected into every experiment network
	// (the -fault-* flags of cmd/figures), with the recovery timers
	// enabled so dropped packets still deliver. The Faults experiment
	// ignores it and builds its own sweep.
	FaultPlan *fault.Plan
	// StashParity, when >= 2, erasure-codes stash copies into XOR parity
	// groups of that width on every StashE2E experiment network (the
	// -stash-parity flag of cmd/figures). Non-e2e networks ignore it, and
	// the Faults experiment overrides it per variant.
	StashParity int
	// Workers bounds the sweep-level worker pool that independent design
	// points (one network, config, RNG and collector each) fan out over;
	// 0 means GOMAXPROCS. Results are identical for any value: every
	// point's output lands in an index-addressed slot and tables are
	// assembled in index order (see forEachPoint).
	Workers int

	// Epoch is the cycle-level synchronization policy applied to every
	// experiment network (the -epoch flag of cmd/figures; see
	// network.ParseEpochPolicy). Experiment networks currently run their
	// cycles serially, so this only takes effect if an experiment opts a
	// network into cycle-level workers; results are identical either way.
	Epoch string

	// CheckpointPath, when non-empty, writes a warm snapshot of every
	// design point that runs a warmup window: at the serial barrier
	// before cycle CheckpointAt — which must fall inside the warmup
	// window — the network's full state goes to
	// <CheckpointPath>.<experiment>.<point>. RestorePath resumes each
	// such point from its matching file, paying only the remaining
	// warmup cycles; measured tables are byte-identical either way (the
	// -checkpoint/-restore flags of cmd/figures).
	CheckpointPath string
	CheckpointAt   int64
	RestorePath    string

	// ExecProfiler, when non-nil, is attached to every experiment network
	// (the -profile-exec flag of cmd/figures). Experiment networks run
	// their cycles serially — the parallelism above is sweep-level — so a
	// single one-lane profiler aggregates phase timings across every
	// design point; its recording is atomic, safe for concurrent points.
	ExecProfiler *sim.ExecProfiler

	// logMu serializes Log calls from concurrent design points.
	logMu sync.Mutex
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.logMu.Lock()
		defer o.logMu.Unlock()
		o.Log(format, args...)
	}
}

// base returns the preset's base configuration.
func (o *Options) base() *core.Config {
	var cfg *core.Config
	switch o.Preset {
	case "paper":
		cfg = core.PaperConfig()
	case "tiny":
		cfg = core.TinyConfig()
	default:
		cfg = core.SmallConfig()
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// usToCycles converts microseconds to internal cycles (1.3 cycles/ns).
func usToCycles(us float64) int64 { return int64(us * 1300) }

// cyclesToUS converts internal cycles to microseconds.
func cyclesToUS(c int64) float64 { return float64(c) / 1300 }

// scaleDur shortens durations under Quick.
func (o *Options) scaleDur(cycles int64) int64 {
	if o.Quick {
		return cycles / 5
	}
	return cycles
}

// writeCSV writes a table to OutDir/<name>.csv when OutDir is set.
func (o *Options) writeCSV(name string, t *stats.Table) error {
	if o.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(o.OutDir, name+".csv"), []byte(t.CSV()), 0o644)
}

// watchNet attaches a stall watchdog to an experiment network: a
// zero-delivery window of `window` cycles dumps every non-idle switch to
// stderr, so a deadlocked run is diagnosable instead of silently spinning
// until its budget runs out.
func (o *Options) watchNet(n *network.Network, window int64) {
	if window <= 0 {
		return
	}
	n.AttachWatchdog(window, os.Stderr)
}

// netConfig derives one of the experiment network variants from the base
// configuration.
func (o *Options) netConfig(mode core.StashMode, capFrac float64, ecn bool) *core.Config {
	cfg := o.base()
	cfg.Mode = mode
	cfg.StashCapFrac = capFrac
	if mode == core.StashE2E {
		cfg.StashParity = o.StashParity
	}
	if ecn {
		cfg.ECN = core.DefaultECN()
	}
	if o.FaultPlan != nil {
		cfg.Fault = o.FaultPlan
		cfg.Retrans = core.DefaultRetrans()
		if mode == core.StashE2E {
			cfg.RetainPayload = true
		}
	}
	return cfg
}

// variant labels one network configuration in an experiment.
type variant struct {
	name    string
	mode    core.StashMode
	capFrac float64
}

// e2eVariants are the four networks of Figures 5 and 6.
func e2eVariants() []variant {
	return []variant{
		{"Baseline", core.StashOff, 1.0},
		{"Stash 100% Cap.", core.StashE2E, 1.0},
		{"Stash 50% Cap.", core.StashE2E, 0.5},
		{"Stash 25% Cap.", core.StashE2E, 0.25},
	}
}

// congVariants are the three ECN networks of Figures 7-9.
func congVariants() []variant {
	return []variant{
		{"Baseline ECN", core.StashOff, 1.0},
		{"Stash 100% Cap.", core.StashCongestion, 1.0},
		{"Stash 50% Cap.", core.StashCongestion, 0.5},
	}
}

func (o *Options) mustNet(cfg *core.Config) *network.Network {
	n, err := network.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	pol, err := network.ParseEpochPolicy(o.Epoch)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	n.SetEpochPolicy(pol)
	if o.Invariants {
		every := o.InvariantsEvery
		if every <= 0 {
			every = 64
		}
		n.EnableInvariants(every)
	}
	if o.ExecProfiler != nil {
		if err := n.SetExecProfiler(o.ExecProfiler); err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
	}
	return n
}

// snapFile names one design point's warm-snapshot file. Points are
// independent simulations, so each gets its own file; the name depends
// only on the experiment and point index, never on sweep scheduling.
func snapFile(base, exp string, point int) string {
	return fmt.Sprintf("%s.%s.%03d", base, exp, point)
}

// warm runs one design point's warmup window, writing or loading a warm
// snapshot when the options ask for one. With RestorePath the network
// resumes from its snapshot and only the remaining warmup cycles run;
// with CheckpointPath a checkpoint of the full network state is taken at
// the serial barrier before cycle CheckpointAt. Either way the measured
// window that follows is byte-identical to a straight-through run.
func (o *Options) warm(n *network.Network, exp string, point int, cycles int64) error {
	done := int64(0)
	if o.RestorePath != "" {
		path := snapFile(o.RestorePath, exp, point)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("harness: restore: %w", err)
		}
		if err := n.Restore(data); err != nil {
			return fmt.Errorf("harness: restore %s: %w", path, err)
		}
		done = int64(n.Now)
		if done > cycles {
			return fmt.Errorf("harness: %s was checkpointed at cycle %d, past this experiment's %d-cycle warmup window",
				path, done, cycles)
		}
	}
	var ckptErr error
	if o.CheckpointPath != "" {
		if o.CheckpointAt >= cycles {
			return fmt.Errorf("harness: checkpoint cycle %d is outside %s's %d-cycle warmup window (figure checkpoints are warm snapshots)",
				o.CheckpointAt, exp, cycles)
		}
		path := snapFile(o.CheckpointPath, exp, point)
		n.ScheduleCheckpoint(o.CheckpointAt, func(now sim.Tick) {
			ckptErr = os.WriteFile(path, n.Checkpoint(now), 0o644)
		})
	}
	n.Warmup(cycles - done)
	if ckptErr != nil {
		return fmt.Errorf("harness: checkpoint: %w", ckptErr)
	}
	return nil
}

// fmtF formats a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
