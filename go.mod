module stashsim

go 1.22
