package stashsim

// The benchmark harness: one benchmark per table and figure of the paper,
// regenerating the corresponding dataset at reduced (tiny/quick) scale so
// `go test -bench=.` completes on a laptop. Full-scale datasets are
// produced by `go run ./cmd/figures -preset small|paper -out results/`.
//
// Ablation benchmarks at the bottom quantify the design choices DESIGN.md
// calls out: JSQ vs random stash placement, the 1.3x internal speedup, and
// the two-bank port-memory model.

import (
	"fmt"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/harness"
	"stashsim/internal/metrics"
	"stashsim/internal/network"
	"stashsim/internal/proto"
	"stashsim/internal/sim"
	"stashsim/internal/topo"
	"stashsim/internal/traffic"
)

func quickOpts() *harness.Options {
	return &harness.Options{Preset: "tiny", Quick: true, Seed: 1}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table2(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aLatencyVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.Fig5(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bThroughput(b *testing.B) {
	// Fig 5b comes from the same sweep as 5a; bench a single saturation
	// point so the two benchmarks report distinguishable costs.
	for i := 0; i < b.N; i++ {
		o := quickOpts()
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(1)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				1.0, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Warmup(2000)
		n.Run(5000)
		_ = n.NormalizedAccepted(5000)
		_ = o
	}
}

func BenchmarkFig6Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bLatencyDistribution(b *testing.B) {
	// The distribution is produced by the same runs as Fig 7a; bench the
	// histogram/inverse-CDF post-processing on a single congested run.
	o := quickOpts()
	r, err := harness.Fig7(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.InvCDF.CSV()
	}
}

func BenchmarkFig8StashUtilization(b *testing.B) {
	o := quickOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Stash.CSV()
	}
}

func BenchmarkFig9BurstSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig9(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// benchE2ESaturation measures accepted throughput at full offered load for
// a given config mutation, reporting it as a custom metric.
func benchE2ESaturation(b *testing.B, mutate func(*core.Config)) {
	for i := 0; i < b.N; i++ {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		if mutate != nil {
			mutate(cfg)
		}
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(5)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				1.0, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Warmup(3000)
		n.Run(8000)
		b.ReportMetric(n.NormalizedAccepted(8000), "accepted/cap")
	}
}

// BenchmarkAblationSpeedup quantifies the paper's 30% internal speedup:
// without it, the stash traffic's extra internal bandwidth demand costs
// throughput.
func BenchmarkAblationSpeedup(b *testing.B) {
	b.Run("speedup=1.3", func(b *testing.B) {
		benchE2ESaturation(b, nil)
	})
	b.Run("speedup=1.0", func(b *testing.B) {
		benchE2ESaturation(b, func(c *core.Config) {
			c.RateNum, c.RateDen = 1, 1
			// Latencies are specified in internal cycles; at 1.0x the
			// internal cycle equals the channel cycle, so rescale.
			c.Lat.Endpoint = c.Lat.Endpoint * 10 / 13
			c.Lat.Local = c.Lat.Local * 10 / 13
			c.Lat.Global = c.Lat.Global * 10 / 13
		})
	})
}

// BenchmarkAblationJSQ compares join-shortest-queue stash placement with
// uniformly random placement. With the 25% capacity restriction, balanced
// pools sustain injection longer, so JSQ should accept more throughput.
func BenchmarkAblationJSQ(b *testing.B) {
	b.Run("jsq", func(b *testing.B) {
		benchE2ESaturation(b, func(c *core.Config) { c.StashCapFrac = 0.25 })
	})
	b.Run("random", func(b *testing.B) {
		benchE2ESaturation(b, func(c *core.Config) {
			c.StashCapFrac = 0.25
			c.RandomStashPlacement = true
		})
	})
}

// BenchmarkAblationRouting compares progressive adaptive routing with
// purely minimal routing under uniform traffic.
func BenchmarkAblationRouting(b *testing.B) {
	b.Run("adaptive", func(b *testing.B) {
		benchE2ESaturation(b, nil)
	})
	b.Run("minimal", func(b *testing.B) {
		benchE2ESaturation(b, func(c *core.Config) { c.Route.Adaptive = false })
	})
}

// BenchmarkAblationBanks compares ideal 4-ported memory to the two-bank
// interleaved organization of Section III-B.
func BenchmarkAblationBanks(b *testing.B) {
	b.Run("ideal", func(b *testing.B) {
		benchE2ESaturation(b, nil)
	})
	b.Run("two-bank", func(b *testing.B) {
		benchE2ESaturation(b, func(c *core.Config) { c.BankModel = true })
	})
}

// BenchmarkSimulatorSpeed reports raw simulation throughput
// (switch-cycles per second) on the tiny network at moderate load — the
// engineering headline for the simulator substrate itself.
func BenchmarkSimulatorSpeed(b *testing.B) {
	cfg := core.TinyConfig()
	n, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.4, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(1000)
	}
	b.ReportMetric(float64(len(n.Switches))*1000, "switch-cycles/op")
}

// BenchmarkMetricsOverhead quantifies the cost of the observability layer:
// the same tiny e2e run with metrics disabled (nil handles everywhere) and
// enabled (registry + tracer + sampler attached). The disabled variant is
// the guard — it must run alloc-free inside the simulation loop, so leaving
// the instrumentation compiled in is free by default. EXPERIMENTS.md records
// the measured delta.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, observe bool) {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if observe {
			n.EnableMetrics(metrics.NewRegistry())
			n.EnableTracing(metrics.NewTracer(1 << 14))
			n.AttachSampler(500)
		}
		rng := sim.NewRNG(11)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(2000) // warm up: steady state, all buffers/pools allocated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Run(100)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkTelemetryOverhead quantifies the live-telemetry additions: the
// same tiny e2e run bare and with the executor profiler, flight recorder,
// and snapshot publisher all attached (the -profile-exec/-serve/-flight
// stack, minus the HTTP listener — serving reads only published snapshots,
// so the listener adds no per-cycle cost). EXPERIMENTS.md records the
// measured delta; the budget is <=5% enabled.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, observe bool) {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if observe {
			n.EnableMetrics(metrics.NewRegistry())
			n.EnableExecProfile(0)
			n.AttachFlight(4096)
			n.AttachTelemetry(64)
		}
		defer n.Close()
		rng := sim.NewRNG(11)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(2000) // warm up: steady state, all buffers/pools allocated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Run(100)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkInvariantOverhead quantifies the runtime invariant checker: the
// same tiny e2e run with no checker, with the default sparse audit (every
// 64 cycles, the -invariants default), and with a per-cycle audit (the
// setting the corruption tests use). EXPERIMENTS.md records the deltas.
func BenchmarkInvariantOverhead(b *testing.B) {
	run := func(b *testing.B, every int64) {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if every > 0 {
			n.EnableInvariants(every)
		}
		rng := sim.NewRNG(11)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(2000) // warm up: steady state, all buffers/pools allocated
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Run(100)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("every64", func(b *testing.B) { run(b, 64) })
	b.Run("every1", func(b *testing.B) { run(b, 1) })
}

// BenchmarkParallelExecutor measures the cycle-level parallel executor
// across worker counts on two scales: a 72-switch dragonfly and the
// paper-scale 1056-switch dragonfly (a=32, h=1, p=2). EXPERIMENTS.md
// records the resulting speedup table. On a single-CPU host the workers>1
// rows measure pure synchronization overhead (the spinning barrier has no
// second core to run on); the >=2x speedup claim needs a multi-core host.
func BenchmarkParallelExecutor(b *testing.B) {
	topos := []struct {
		name    string
		p, a, h int
		settle  int64
	}{
		// Settle well past the freelist high-water mark before timing:
		// a short settle lets pool growth leak into the timed region, and
		// with b.N varying across worker counts the amortized allocs/op
		// then differ (the once-mysterious 245 vs 257 in the committed
		// snapshot) even though the steady-state cycle is allocation-free
		// for every worker count (TestParallelSteadyStateAllocFree).
		{"sw=72", 2, 8, 1, 3000},
		{"sw=1056", 2, 32, 1, 400},
	}
	for _, tp := range topos {
		for _, load := range []float64{0.1, 0.3} {
			for _, workers := range []int{1, 2, 4} {
				// Parallel rows run both synchronization schemes: the
				// per-cycle barrier (sync=cycle) and the epoch scheduler
				// (sync=epoch, lookahead = the 650-cycle global latency).
				syncs := []string{"cycle"}
				if workers > 1 {
					syncs = []string{"cycle", "epoch"}
				}
				for _, sync := range syncs {
					name := fmt.Sprintf("%s/load=%.0f%%/workers=%d", tp.name, load*100, workers)
					if workers > 1 {
						name += "/sync=" + sync
					}
					b.Run(name, func(b *testing.B) {
						cfg := core.PaperConfig()
						cfg.Topo = topo.Dragonfly{P: tp.p, A: tp.a, H: tp.h}
						radix := cfg.Topo.Radix()
						cfg.Rows, cfg.Cols = 4, 4
						cfg.TileIn, cfg.TileOut = (radix+3)/4, (radix+3)/4
						cfg.Mode = core.StashE2E
						n, err := network.New(cfg)
						if err != nil {
							b.Fatal(err)
						}
						if workers > 1 {
							n.SetWorkers(workers)
							if sync == "cycle" {
								n.SetEpochPolicy(-1)
							}
							defer n.Close()
						}
						rng := sim.NewRNG(3)
						for _, ep := range n.Endpoints {
							ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
								load, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
						}
						n.Run(tp.settle) // settle into steady state before timing
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							n.Run(100)
						}
						b.ReportMetric(float64(len(n.Switches))*100, "switch-cycles/op")
					})
				}
			}
		}
	}
}

// BenchmarkHotPathSteadyState is the per-cycle cost of Network.Step on the
// tiny network in steady state. The "loaded" variants keep the generators
// attached (the honest per-cycle figure, injection included); the "inflight"
// variant detaches them with traffic still circulating, which is the
// configuration the zero-allocation guard measures. allocs/op must read 0
// for all variants: the freelists recycle every per-packet structure, so a
// steady-state cycle touches no allocator at any load.
func BenchmarkHotPathSteadyState(b *testing.B) {
	build := func(b *testing.B, load float64) *network.Network {
		cfg := core.TinyConfig()
		cfg.Mode = core.StashE2E
		n, err := network.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(11)
		for _, ep := range n.Endpoints {
			ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
				load, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
		}
		n.Run(20000) // steady state: pools, rings, and freelists at high water
		return n
	}
	for _, load := range []float64{0.1, 0.3} {
		b.Run(fmt.Sprintf("loaded/load=%.0f%%", load*100), func(b *testing.B) {
			n := build(b, load)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
			b.ReportMetric(float64(len(n.Switches)), "switch-cycles/op")
		})
	}
	b.Run("inflight", func(b *testing.B) {
		n := build(b, 0.3)
		for _, ep := range n.Endpoints {
			ep.Gen = nil
		}
		n.Run(50)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Step()
		}
		b.ReportMetric(float64(len(n.Switches)), "switch-cycles/op")
	})
}

// TestMetricsDisabledAllocFree is the hard form of the benchmark guard: a
// steady-state simulation step with no observability attached must not
// allocate at all, so the disabled path cannot regress silently.
func TestMetricsDisabledAllocFree(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(5000) // reach steady state so pools and buffers are warm
	// Detach the generators: injection mints fresh flits (inherent to offered
	// traffic, metrics or not), so the guard measures the switching fabric
	// alone, with plenty of in-flight traffic still exercising the
	// instrumented stash/VC/crossbar paths.
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	n.Run(50)
	allocs := testing.AllocsPerRun(200, func() { n.Step() })
	if allocs > 0 {
		t.Fatalf("in-flight Step with metrics disabled allocates %.2f/op, want 0", allocs)
	}
}

// TestParallelSteadyStateAllocFree extends the zero-allocation guard to the
// parallel executor: a steady-state cycle with four workers must not touch
// the allocator either. The workers park at the cycle-entry barrier between
// Runs and the coordinator publishes each cycle with a plain atomic store,
// so workers>1 costs synchronization time, never allocation. (AllocsPerRun
// pins GOMAXPROCS to 1; the barrier spins with Gosched, so the worker
// goroutines still make progress — slowly, which is fine for a guard.)
func TestParallelSteadyStateAllocFree(t *testing.T) {
	cfg := core.TinyConfig()
	cfg.Mode = core.StashE2E
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.SetWorkers(4)
	rng := sim.NewRNG(11)
	for _, ep := range n.Endpoints {
		ep.Gen = traffic.Uniform(rng.Derive(uint64(ep.ID)), len(n.Endpoints), nil,
			0.3, n.ChannelRate(), proto.MaxPacketFlits, proto.ClassDefault, 0)
	}
	n.Run(5000) // steady state; also spawns the worker goroutines once
	for _, ep := range n.Endpoints {
		ep.Gen = nil
	}
	n.Run(50)
	allocs := testing.AllocsPerRun(100, func() { n.Run(1) })
	if allocs > 0 {
		t.Fatalf("in-flight parallel Run(1) with 4 workers allocates %.2f/op, want 0", allocs)
	}
	// Run(1) forces 1-cycle epochs; a multi-epoch run additionally covers
	// the free-running epoch loop and the cross-partition slab drains
	// (tiny lookahead is 65, so 130 cycles is two full epochs per run).
	if la := n.EpochLookahead(); la != 65 {
		t.Fatalf("alloc guard expected the epoch executor (lookahead 65), got %d", la)
	}
	allocs = testing.AllocsPerRun(20, func() { n.Run(130) })
	if allocs > 0 {
		t.Fatalf("steady-state epoch Run(130) with 4 workers allocates %.2f/op, want 0", allocs)
	}
}
