// Package stashsim is a from-scratch, cycle-accurate reproduction of the
// SC'18 paper "Exploiting Idle Resources in a High-Radix Switch for
// Supplemental Storage" (Blumrich, Jiang, Dennison — NVIDIA).
//
// The repository contains a flit-level tiled-switch and dragonfly network
// simulator (internal/core, internal/network), the paper's stashing switch
// architecture with its two use cases — end-to-end reliability and ECN
// congestion-control assistance — an MPI-like trace replay engine with
// synthetic DesignForward application traces (internal/trace,
// internal/tracegen), and an experiment harness that regenerates every
// table and figure of the paper's evaluation (internal/harness,
// cmd/figures).
//
// See README.md for a tour and DESIGN.md for the system inventory and the
// per-experiment index. The benchmarks in bench_test.go regenerate each
// table/figure dataset at reduced scale; use cmd/figures for full runs.
package stashsim
