// Command stashlint runs the project's analyzer suite (see
// internal/analysis) over the module: determinism for the simulation
// packages, nilsafe for the metrics handles, panicstyle for every
// internal package, phasecheck and atomiccheck for the executor's
// concurrency contract, and allocfree for the //stashsim:noalloc hot
// path.
//
// Usage:
//
//	stashlint [packages]       # defaults to ./...
//	stashlint -list            # print the analyzers and their contracts
//	stashlint -json [packages] # diagnostics as a JSON array on stdout
//
// Findings print as file:line:col: message [analyzer]; the exit status is
// 1 when any finding survives its //lint:allow suppressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stashsim/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := analysis.NewLoader(".")
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stashlint: %v\n", err)
		os.Exit(2)
	}

	// One directive index across every loaded package, so phase and
	// noalloc annotations resolve over cross-package calls.
	facts := analysis.BuildFacts(pkgs...)

	diags := []jsonDiagnostic{}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			if pkg.Rel == "" || !a.Scope(pkg.Rel) {
				continue
			}
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info)
			pass.Facts = facts
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "stashlint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range pass.Diagnostics() {
				if *asJSON {
					diags = append(diags, jsonDiagnostic{
						File:     d.Pos.Filename,
						Line:     d.Pos.Line,
						Column:   d.Pos.Column,
						Message:  d.Message,
						Analyzer: d.Analyzer,
						Package:  pkg.Path,
					})
				} else {
					fmt.Println(d)
				}
				findings++
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "stashlint: %v\n", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "stashlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
