// Command stashlint runs the project's analyzer suite (see
// internal/analysis) over the module: determinism for the simulation
// packages, nilsafe for the metrics handles, panicstyle for every
// internal package.
//
// Usage:
//
//	stashlint [packages]       # defaults to ./...
//	stashlint -list            # print the analyzers and their contracts
//
// Findings print as file:line:col: message [analyzer]; the exit status is
// 1 when any finding survives its //lint:allow suppressions.
package main

import (
	"flag"
	"fmt"
	"os"

	"stashsim/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := analysis.NewLoader(".")
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stashlint: %v\n", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			if pkg.Rel == "" || !a.Scope(pkg.Rel) {
				continue
			}
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "stashlint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range pass.Diagnostics() {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "stashlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
