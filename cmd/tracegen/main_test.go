package main

import (
	"bytes"
	"reflect"
	"testing"

	"stashsim/internal/core"
	"stashsim/internal/network"
	"stashsim/internal/trace"
	"stashsim/internal/tracegen"
)

// testScale shrinks every application far below paper scale so all six
// generate, round-trip, and replay in a few seconds of wall clock.
var testScale = tracegen.Scale{Ranks: 24, Bytes: 0.02, Iters: 0.25}

// TestAppsGenerateAndRoundTrip pins the generator output for every
// Table II application to the trace text format: each trace validates,
// serializes, and parses back identical.
func TestAppsGenerateAndRoundTrip(t *testing.T) {
	for _, app := range tracegen.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			tr := app.Generate(testScale)
			if err := tr.Validate(); err != nil {
				t.Fatalf("generated trace invalid: %v", err)
			}
			if tr.TotalMessages() == 0 {
				t.Fatalf("%s generated no messages at %+v", app.Name, testScale)
			}
			if tr.TotalBytes() <= 0 {
				t.Fatalf("%s generated %d payload bytes", app.Name, tr.TotalBytes())
			}
			var buf bytes.Buffer
			if err := tr.Write(&buf); err != nil {
				t.Fatal(err)
			}
			tr2, err := trace.Read(&buf)
			if err != nil {
				t.Fatalf("re-read failed: %v", err)
			}
			if tr2.Name != tr.Name || tr2.Ranks != tr.Ranks || !reflect.DeepEqual(tr2.Events, tr.Events) {
				t.Fatalf("write/read round trip diverged for %s", app.Name)
			}
		})
	}
}

// TestAppsReplayDeliverEverything replays each scaled-down application on
// the tiny network and checks full delivery: every rank retires its event
// list and no message remains outstanding.
func TestAppsReplayDeliverEverything(t *testing.T) {
	for _, app := range tracegen.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			tr := app.Generate(testScale)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			n, err := network.New(core.TinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			r, err := trace.NewReplay(tr, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			cycles, err := r.Run(5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Done() {
				t.Fatalf("replay of %s not done after %d cycles", app.Name, cycles)
			}
			var delivered int64
			for _, ep := range n.Endpoints {
				delivered += ep.DeliveredUnique
			}
			want := int64(0)
			for _, evs := range tr.Events {
				for _, ev := range evs {
					if ev.Kind == trace.Send {
						want++
					}
				}
			}
			if delivered < want {
				t.Fatalf("%s: %d packets delivered, want at least %d messages' worth",
					app.Name, delivered, want)
			}
			t.Logf("%s: %d msgs, %d packets delivered in %d cycles",
				app.Name, tr.TotalMessages(), delivered, cycles)
		})
	}
}
