// Command tracegen synthesizes the DesignForward-like MPI traces of the
// paper's Table II and writes them in the repository's trace format.
//
// Examples:
//
//	tracegen -table2                 # print the Table II inventory
//	tracegen -app BIGFFT -out b.trace
//	tracegen -app MiniFE -ranks 342 -out m.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"stashsim/internal/stats"
	"stashsim/internal/tracegen"
)

func main() {
	table2 := flag.Bool("table2", false, "print the Table II application inventory")
	app := flag.String("app", "", "application to synthesize (BIGFFT, AMG, MultiGrid, FillBoundary, AMR, MiniFE)")
	ranks := flag.Int("ranks", 0, "cap the rank count (0 = paper's count)")
	bytes := flag.Float64("bytes", 1.0, "message size multiplier")
	iters := flag.Float64("iters", 1.0, "iteration count multiplier")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if *table2 {
		t := &stats.Table{Header: []string{"Application", "Description", "Ranks"}}
		for _, a := range tracegen.Apps() {
			t.AddRow(a.Name, a.Description, fmt.Sprint(a.PaperRanks))
		}
		fmt.Print(t)
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "need -app or -table2; see -help")
		os.Exit(2)
	}
	info, err := tracegen.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale := tracegen.Scale{Ranks: *ranks, Bytes: *bytes, Iters: *iters}
	tr := info.Generate(scale)
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d ranks, %d messages, %.2f MB\n",
		tr.Name, tr.Ranks, tr.TotalMessages(), float64(tr.TotalBytes())/(1<<20))
}
