package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: stashsim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHotPath/load=10%-8   	   51150	     29551 ns/op	        36 switch-cycles/op	      36 B/op	       0 allocs/op
BenchmarkHotPath/load=30%-8   	   18945	     72317 ns/op	        36 switch-cycles/op	      66 B/op	       0 allocs/op
some stray log line the converter must skip
BenchmarkBroken line without numbers
`

func TestConvert(t *testing.T) {
	doc, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "stashsim" {
		t.Fatalf("header parsed wrong: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkHotPath/load=10%-8" || b.Iters != 51150 {
		t.Fatalf("first benchmark parsed wrong: %+v", b)
	}
	if b.Metrics["ns/op"] != 29551 || b.Metrics["allocs/op"] != 0 || b.Metrics["switch-cycles/op"] != 36 {
		t.Fatalf("metrics parsed wrong: %+v", b.Metrics)
	}
}

func TestStamp(t *testing.T) {
	doc := &Doc{}
	stamp(doc)
	if doc.GoVersion == "" || !strings.HasPrefix(doc.GoVersion, "go") {
		t.Fatalf("go version not stamped: %q", doc.GoVersion)
	}
	if doc.Date == "" || !strings.Contains(doc.Date, "T") {
		t.Fatalf("date not RFC3339: %q", doc.Date)
	}
	// Commit may legitimately be empty outside a git checkout; in this
	// repo's tree it should resolve.
	if _, err := os.Stat(filepath.Join("..", "..", ".git")); err == nil && doc.Commit == "" {
		t.Fatal("commit not stamped inside a git checkout")
	}
}

func TestBenchKey(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkHotPath/load=10%-8": "BenchmarkHotPath/load=10%",
		"BenchmarkHotPath/load=10%":   "BenchmarkHotPath/load=10%",
		"BenchmarkPlain-16":           "BenchmarkPlain",
		"BenchmarkDash-v2":            "BenchmarkDash-v2",
	} {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", `{
	  "commit": "abc123",
	  "benchmarks": [
	    {"name": "BenchmarkA-8", "iters": 10, "metrics": {"ns/op": 1000, "allocs/op": 5}},
	    {"name": "BenchmarkGone-8", "iters": 10, "metrics": {"ns/op": 50, "allocs/op": 0}}
	  ]
	}`)
	newPath := writeDoc(t, dir, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkA-4", "iters": 10, "metrics": {"ns/op": 1100, "allocs/op": 7}},
	    {"name": "BenchmarkFresh-4", "iters": 10, "metrics": {"ns/op": 9, "allocs/op": 0}}
	  ]
	}`)
	var sb strings.Builder
	changed, err := diffFiles(&sb, oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if changed != 1 {
		t.Fatalf("want 1 alloc change, got %d:\n%s", changed, out)
	}
	for _, want := range []string{
		"commit abc123",
		"+10.0%", // 1000 -> 1100 ns/op
		"+2",     // 5 -> 7 allocs/op
		"(removed)",
		"(new)",
		"BenchmarkFresh",
		"1 benchmark(s) changed allocs/op",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffFilesBadPath(t *testing.T) {
	var sb strings.Builder
	if _, err := diffFiles(&sb, "/nonexistent/old.json", "/nonexistent/new.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
