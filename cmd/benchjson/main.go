// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, one entry per benchmark result line with every
// reported metric (ns/op, B/op, allocs/op, custom ReportMetric units). The
// Makefile bench target pipes the hot-path grid through it to produce
// BENCH_hotpath.json, the committed perf-trajectory snapshot; the text
// stream itself stays benchstat-compatible, so keep raw logs when
// comparing runs statistically.
//
// Each document is stamped with the git commit, date, and go version it
// was measured at, so a committed snapshot records its provenance.
//
// A second mode compares two snapshots:
//
//	benchjson -diff BENCH_hotpath.json /tmp/bench_new.json
//
// printing one line per benchmark with the ns/op and allocs/op deltas
// (the `make bench-diff` target). Benchmarks present in only one file
// are flagged rather than dropped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: Iters runs of Name, with Metrics holding
// each "value unit" pair from the line (e.g. "ns/op", "allocs/op").
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document. Goos/Goarch/Pkg echo the bench header and
// Commit/Date/GoVersion stamp the measurement, so a committed snapshot
// records where and when it was taken.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Commit     string   `json:"commit,omitempty"`
	Date       string   `json:"date,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two snapshot files (old new) instead of converting stdin")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		changed, err := diffFiles(os.Stdout, flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		_ = changed
		return
	}
	doc, err := convert(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	stamp(doc)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// convert parses a `go test -bench` text stream into a Doc.
func convert(r io.Reader) (*Doc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	doc := &Doc{Benchmarks: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(line[len("goos:"):])
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(line[len("goarch:"):])
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(line[len("pkg:"):])
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(line[len("cpu:"):])
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// stamp records measurement provenance. Git being unavailable (or the
// tree not being a checkout) just leaves the commit blank — the stamp is
// metadata, never a reason to drop the measurement itself.
func stamp(doc *Doc) {
	doc.Date = time.Now().UTC().Format(time.RFC3339)
	doc.GoVersion = runtime.Version()
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		doc.Commit = strings.TrimSpace(string(out))
		if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(out) > 0 {
			doc.Commit += "-dirty"
		}
	}
}

// parseLine splits "BenchmarkName-8  123  456 ns/op  0 B/op ..." into a
// Result. Lines that do not parse (e.g. a benchmark that printed output)
// are skipped rather than fatal: the converter must survive noisy logs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iters: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// loadDoc reads a snapshot file.
func loadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// benchKey strips the trailing GOMAXPROCS suffix ("-8") so snapshots
// taken on machines with different core counts still line up.
func benchKey(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diffFiles prints a per-benchmark comparison of two snapshots: ns/op
// and allocs/op with absolute and relative deltas, old rows first in the
// old file's order, then any benchmarks only the new file has. Returns
// the number of benchmarks whose allocs/op changed (the signal
// `make bench-diff` cares most about; ns/op noise is expected on shared
// machines).
func diffFiles(w io.Writer, oldPath, newPath string) (int, error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return 0, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "old: %s  (commit %s, %s)\n", oldPath, orDash(oldDoc.Commit), orDash(oldDoc.Date))
	fmt.Fprintf(w, "new: %s  (commit %s, %s)\n\n", newPath, orDash(newDoc.Commit), orDash(newDoc.Date))

	newByKey := make(map[string]Result, len(newDoc.Benchmarks))
	for _, r := range newDoc.Benchmarks {
		newByKey[benchKey(r.Name)] = r
	}
	wid := len("benchmark")
	for _, r := range oldDoc.Benchmarks {
		if n := len(benchKey(r.Name)); n > wid {
			wid = n
		}
	}
	for _, r := range newDoc.Benchmarks {
		if n := len(benchKey(r.Name)); n > wid {
			wid = n
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %8s  %14s  %8s\n", wid, "benchmark", "ns/op", "Δ%", "allocs/op", "Δ")

	allocChanges := 0
	seen := make(map[string]bool, len(oldDoc.Benchmarks))
	for _, o := range oldDoc.Benchmarks {
		key := benchKey(o.Name)
		seen[key] = true
		n, ok := newByKey[key]
		if !ok {
			fmt.Fprintf(w, "%-*s  (removed)\n", wid, key)
			continue
		}
		oldNS, newNS := o.Metrics["ns/op"], n.Metrics["ns/op"]
		oldAllocs, newAllocs := o.Metrics["allocs/op"], n.Metrics["allocs/op"]
		pct := "-"
		if oldNS > 0 {
			pct = fmt.Sprintf("%+.1f%%", 100*(newNS-oldNS)/oldNS)
		}
		dAllocs := newAllocs - oldAllocs
		if dAllocs != 0 {
			allocChanges++
		}
		fmt.Fprintf(w, "%-*s  %14.0f  %8s  %14.0f  %+8.0f\n",
			wid, key, newNS, pct, newAllocs, dAllocs)
	}
	var added []string
	for key := range newByKey {
		if !seen[key] {
			added = append(added, key)
		}
	}
	sort.Strings(added)
	for _, key := range added {
		fmt.Fprintf(w, "%-*s  (new)\n", wid, key)
	}
	if allocChanges > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) changed allocs/op\n", allocChanges)
	}
	return allocChanges, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
