// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, one entry per benchmark result line with every
// reported metric (ns/op, B/op, allocs/op, custom ReportMetric units). The
// Makefile bench target pipes the hot-path grid through it to produce
// BENCH_hotpath.json, the committed perf-trajectory snapshot; the text
// stream itself stays benchstat-compatible, so keep raw logs when
// comparing runs statistically.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: Iters runs of Name, with Metrics holding
// each "value unit" pair from the line (e.g. "ns/op", "allocs/op").
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document. Goos/Goarch/Pkg echo the bench header so a
// committed snapshot records where it was measured.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	doc := Doc{Benchmarks: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(line[len("goos:"):])
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(line[len("goarch:"):])
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(line[len("pkg:"):])
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(line[len("cpu:"):])
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine splits "BenchmarkName-8  123  456 ns/op  0 B/op ..." into a
// Result. Lines that do not parse (e.g. a benchmark that printed output)
// are skipped rather than fatal: the converter must survive noisy logs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iters: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
